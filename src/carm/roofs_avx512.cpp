/// \file roofs_avx512.cpp
/// \brief AVX-512 CARM micro-probe: 512-bit integer add peak.
///
/// Compiled with -mavx512f -mavx512bw regardless of the global architecture
/// flags; only executed after roofs.cpp confirms AVX-512 support via
/// cpu_features().

#include "roofs_detail.hpp"

#if defined(TRIGEN_KERNEL_AVX512)
#include <immintrin.h>

#include <cstdint>

#include "trigen/common/stopwatch.hpp"

namespace trigen::carm::detail {

double vector_add_peak_avx512() {
  constexpr std::uint64_t kIters = 1u << 20;
  constexpr unsigned kLanes = 16;
  __m512i a = _mm512_set1_epi32(1), b = _mm512_set1_epi32(2),
          c = _mm512_set1_epi32(3), d = _mm512_set1_epi32(4);
  const __m512i inc = _mm512_set1_epi32(1);
  const double secs = time_best_of([&] {
    for (std::uint64_t i = 0; i < kIters; ++i) {
      a = _mm512_add_epi32(a, inc);
      b = _mm512_add_epi32(b, inc);
      c = _mm512_add_epi32(c, inc);
      d = _mm512_add_epi32(d, inc);
      asm volatile("" : "+x"(a), "+x"(b), "+x"(c), "+x"(d));
    }
  });
  return 4.0 * kLanes * static_cast<double>(kIters) / secs;
}

}  // namespace trigen::carm::detail

#endif  // TRIGEN_KERNEL_AVX512
