#include "trigen/carm/memory_levels.hpp"

#include <fstream>

namespace trigen::carm {
namespace {

std::size_t parse_size(const std::string& s) {
  if (s.empty()) return 0;
  std::size_t value = 0;
  std::size_t i = 0;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
    value = value * 10 + static_cast<std::size_t>(s[i] - '0');
    ++i;
  }
  if (i < s.size() && (s[i] == 'K' || s[i] == 'k')) value *= 1024;
  if (i < s.size() && (s[i] == 'M' || s[i] == 'm')) value *= 1024 * 1024;
  return value;
}

std::size_t sysfs_cache_size(int index) {
  const std::string path = "/sys/devices/system/cpu/cpu0/cache/index" +
                           std::to_string(index) + "/size";
  std::ifstream is(path);
  std::string line;
  if (is && std::getline(is, line)) return parse_size(line);
  return 0;
}

}  // namespace

std::vector<MemoryLevel> detect_memory_levels() {
  // index0 = L1D, index1 = L1I, index2 = L2, index3 = L3 on Linux x86.
  std::size_t l1 = sysfs_cache_size(0);
  std::size_t l2 = sysfs_cache_size(2);
  std::size_t l3 = sysfs_cache_size(3);
  if (l1 == 0) l1 = 32 * 1024;
  if (l2 == 0) l2 = 1024 * 1024;

  std::vector<MemoryLevel> levels;
  levels.push_back({"L1", l1, l1 / 2});
  levels.push_back({"L2", l2, l2 / 2});
  std::size_t last = l2;
  if (l3 != 0) {
    levels.push_back({"L3", l3, l3 / 2});
    last = l3;
  }
  levels.push_back({"DRAM", 0, last * 8});
  return levels;
}

}  // namespace trigen::carm
