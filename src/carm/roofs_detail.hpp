#pragma once
/// \file roofs_detail.hpp
/// \brief Internal declarations of the per-ISA CARM micro-probes.
///
/// Same structure as src/core/kernels_detail.hpp: each vector probe lives in
/// a translation unit compiled with per-file ISA flags (roofs_avx2.cpp,
/// roofs_avx512.cpp), so a portable build still measures real vector roofs;
/// roofs.cpp dispatches at runtime via cpu_features().  Each probe returns
/// its measured rate (bytes/s for bandwidth, intops/s for compute).

#include <cstddef>

namespace trigen::carm::detail {

#if defined(TRIGEN_KERNEL_AVX2)
// Defined in roofs_avx2.cpp (compiled with -mavx2).
double load_bandwidth_avx2(std::size_t bytes);
double vector_add_peak_avx2();  ///< 8 lanes
#endif

#if defined(TRIGEN_KERNEL_AVX512)
// Defined in roofs_avx512.cpp (compiled with -mavx512f -mavx512bw).
double vector_add_peak_avx512();  ///< 16 lanes
#endif

}  // namespace trigen::carm::detail
