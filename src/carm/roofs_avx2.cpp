/// \file roofs_avx2.cpp
/// \brief AVX2 CARM micro-probes: 256-bit load bandwidth and add peak.
///
/// Compiled with -mavx2 regardless of the global architecture flags; only
/// executed after roofs.cpp confirms AVX2 support via cpu_features().

#include "roofs_detail.hpp"

#if defined(TRIGEN_KERNEL_AVX2)
#include <immintrin.h>

#include <algorithm>
#include <cstdint>

#include "trigen/common/aligned.hpp"
#include "trigen/common/stopwatch.hpp"

namespace trigen::carm::detail {
namespace {

/// Keeps the optimizer from discarding the probe loops.
void sink(const void* p) { asm volatile("" : : "g"(p) : "memory"); }

}  // namespace

double load_bandwidth_avx2(std::size_t bytes) {
  const std::size_t words = std::max<std::size_t>(bytes / 8, 64);
  aligned_vector<std::uint64_t> buf(words, 0x5555555555555555ull);

  // Enough sweeps that one measurement lasts >= ~5 ms even from L1.
  const std::size_t sweep_bytes = words * 8;
  const std::size_t reps = std::max<std::size_t>(
      1, (1u << 26) / std::max<std::size_t>(1, sweep_bytes));

  std::uint64_t acc = 0;
  const double secs = time_best_of([&] {
    for (std::size_t r = 0; r < reps; ++r) {
      const std::uint64_t* p = buf.data();
      __m256i a0 = _mm256_setzero_si256();
      __m256i a1 = _mm256_setzero_si256();
      std::size_t i = 0;
      for (; i + 8 <= words; i += 8) {
        a0 = _mm256_or_si256(
            a0, _mm256_load_si256(reinterpret_cast<const __m256i*>(p + i)));
        a1 = _mm256_or_si256(
            a1, _mm256_load_si256(reinterpret_cast<const __m256i*>(p + i + 4)));
      }
      acc += static_cast<std::uint64_t>(
          _mm256_extract_epi64(_mm256_or_si256(a0, a1), 0));
      for (; i < words; ++i) acc |= p[i];
      sink(&acc);
    }
  });
  sink(&acc);
  return static_cast<double>(sweep_bytes) * static_cast<double>(reps) / secs;
}

double vector_add_peak_avx2() {
  constexpr std::uint64_t kIters = 1u << 20;
  constexpr unsigned kLanes = 8;
  __m256i a = _mm256_set1_epi32(1), b = _mm256_set1_epi32(2),
          c = _mm256_set1_epi32(3), d = _mm256_set1_epi32(4);
  const __m256i inc = _mm256_set1_epi32(1);
  const double secs = time_best_of([&] {
    for (std::uint64_t i = 0; i < kIters; ++i) {
      a = _mm256_add_epi32(a, inc);
      b = _mm256_add_epi32(b, inc);
      c = _mm256_add_epi32(c, inc);
      d = _mm256_add_epi32(d, inc);
      asm volatile("" : "+x"(a), "+x"(b), "+x"(c), "+x"(d));
    }
  });
  return 4.0 * kLanes * static_cast<double>(kIters) / secs;
}

}  // namespace trigen::carm::detail

#endif  // TRIGEN_KERNEL_AVX2
