#include "trigen/carm/characterize.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "trigen/combinatorics/combinations.hpp"

namespace trigen::carm {

using core::CpuVersion;
using gpusim::GpuVersion;
using gpusim::OpCountModel;
using gpusim::OpMix;

OpMix cpu_op_mix(CpuVersion v, OpCountModel model) {
  if (v == CpuVersion::kV5PairCache) {
    // Steady-state cached kernel (the build phase amortizes over the B_S
    // z-SNPs of a block): 18 ANDs (z0/z1 against each cached plane; the z2
    // cells derive from the cached popcounts) and 18 POPCNTs per word per
    // triplet.  The implementation is plane-major — the word loop runs
    // inside each of the 9 plane passes — so z0/z1 are re-read per pass:
    // 9 * (1 cache + 2 z) = 27 32-bit loads per word, all L1-resident
    // (the loop-order tradeoff buys minimal register pressure).  The paper
    // predates V5 and prints no counts for it, and the kernel computes no
    // NOR (the one op the kPaper/kExact models count differently), so the
    // same mix serves both models.
    OpMix m;
    m.popcnt = 18;
    m.logic = 18;
    m.loads = 27;
    return m;
  }
  const GpuVersion mapped = v == CpuVersion::kV1Naive
                                ? GpuVersion::kV1Naive
                                : GpuVersion::kV2Split;
  return gpusim::op_mix(mapped, model);
}

KernelPoint characterize_cpu_version(const core::Detector& det, CpuVersion v,
                                     unsigned threads, OpCountModel model) {
  core::DetectorOptions opt;
  opt.version = v;
  opt.threads = threads;
  const core::DetectionResult r = det.run(opt);

  const OpMix mix = cpu_op_mix(v, model);
  const double words =
      v == CpuVersion::kV1Naive
          ? static_cast<double>(det.planes_v1().words())
          : static_cast<double>(det.planes_split().words(0) +
                                det.planes_split().words(1));
  const double total_words = words * static_cast<double>(r.combinations_evaluated);
  const double ops = total_words * (mix.popcnt + mix.logic);
  const double bytes = total_words * mix.loads * 4.0;

  KernelPoint p;
  p.name = core::cpu_version_name(v);
  p.ai = ops / bytes;
  p.gintops = ops / r.seconds / 1e9;
  p.seconds = r.seconds;
  p.elements_per_second = r.elements_per_second();
  return p;
}

std::vector<KernelPoint> characterize_cpu_ladder(
    const dataset::GenotypeMatrix& d, unsigned threads, OpCountModel model) {
  const core::Detector det(d);
  std::vector<KernelPoint> points;
  for (const CpuVersion v :
       {CpuVersion::kV1Naive, CpuVersion::kV2Split, CpuVersion::kV3Blocked,
        CpuVersion::kV4Vector, CpuVersion::kV5PairCache}) {
    points.push_back(characterize_cpu_version(det, v, threads, model));
  }
  return points;
}

std::vector<KernelPoint> characterize_gpu_ladder(
    const gpusim::GpuDeviceSpec& dev, std::size_t num_snps,
    std::size_t num_samples, OpCountModel model) {
  gpusim::WorkloadShape shape;
  shape.triplets = combinatorics::num_triplets(num_snps);
  shape.samples = num_samples;
  shape.words_total = dataset::padded_words_for(num_samples / 2) * 2;

  std::vector<KernelPoint> points;
  for (const GpuVersion v :
       {GpuVersion::kV1Naive, GpuVersion::kV2Split, GpuVersion::kV3Transposed,
        GpuVersion::kV4Tiled}) {
    const gpusim::CostEstimate e =
        estimate_gpu_cost(dev, v, shape, gpusim::LaunchConfig{}, model);
    KernelPoint p;
    p.name = gpu_version_name(v);
    p.ai = e.ai;
    p.gintops = e.gintops;
    p.seconds = e.seconds;
    p.elements_per_second = e.elements_per_second;
    points.push_back(p);
  }
  return points;
}

std::string roofline_chart(const CarmRoofs& roofs,
                           const std::vector<KernelPoint>& points, int width,
                           int height) {
  // Plot area: x = log2(AI) in [-4, 6], y = log2(GINTOP/s) auto-ranged.
  const double x_min = -4.0, x_max = 6.0;
  double y_max = 1.0;
  for (const auto& r : roofs.compute) {
    y_max = std::max(y_max, std::log2(r.intops_per_s / 1e9) + 1.0);
  }
  for (const auto& p : points) {
    y_max = std::max(y_max, std::log2(std::max(p.gintops, 1e-3)) + 1.0);
  }
  double y_min = y_max - 14.0;

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  auto plot = [&](double x, double y, char ch) {
    const int cx = static_cast<int>(std::lround((x - x_min) / (x_max - x_min) *
                                                (width - 1)));
    const int cy = static_cast<int>(std::lround((y - y_min) / (y_max - y_min) *
                                                (height - 1)));
    if (cx < 0 || cx >= width || cy < 0 || cy >= height) return;
    auto& cell = grid[static_cast<std::size_t>(height - 1 - cy)]
                     [static_cast<std::size_t>(cx)];
    // Kernel markers win over roof lines.
    if (cell == ' ' || (ch >= '1' && ch <= '9')) cell = ch;
  };

  // Memory roofs: performance = BW * AI, capped at the top compute roof.
  const double top_peak = std::log2(std::max(roofs.vector_peak(), 1.0) / 1e9);
  for (const auto& roof : roofs.memory) {
    for (int cx = 0; cx < width; ++cx) {
      const double x = x_min + (x_max - x_min) * cx / (width - 1);
      const double y =
          std::log2(roof.bytes_per_s / 1e9) + x;  // log2(BW * AI / 1e9)
      if (y <= top_peak) plot(x, y, '/');
    }
  }
  // Compute roofs: horizontal lines.
  for (const auto& roof : roofs.compute) {
    const double y = std::log2(roof.intops_per_s / 1e9);
    for (int cx = 0; cx < width; ++cx) {
      const double x = x_min + (x_max - x_min) * cx / (width - 1);
      plot(x, y, '-');
    }
  }
  // Kernel points.
  for (std::size_t i = 0; i < points.size(); ++i) {
    plot(std::log2(std::max(points[i].ai, 1e-6)),
         std::log2(std::max(points[i].gintops, 1e-6)),
         static_cast<char>('1' + static_cast<char>(i % 9)));
  }

  std::ostringstream os;
  os << "  Performance [log2 GINTOP/s] vs Arithmetic Intensity [log2 intop/byte]\n";
  for (int row = 0; row < height; ++row) {
    const double y = y_max - (y_max - y_min) * row / (height - 1);
    char label[16];
    std::snprintf(label, sizeof label, "%6.1f |", y);
    os << label << grid[static_cast<std::size_t>(row)] << '\n';
  }
  os << "        +" << std::string(static_cast<std::size_t>(width), '-') << '\n';
  os << "         " << "log2(AI): " << x_min << " .. " << x_max << "    ";
  for (std::size_t i = 0; i < points.size(); ++i) {
    os << static_cast<char>('1' + static_cast<char>(i % 9)) << "="
       << points[i].name << ' ';
  }
  os << '\n';
  return os.str();
}

std::string points_csv(const std::vector<KernelPoint>& points) {
  std::ostringstream os;
  os << "kernel,ai_intop_per_byte,gintops,seconds,elements_per_second\n";
  for (const auto& p : points) {
    os << p.name << ',' << p.ai << ',' << p.gintops << ',' << p.seconds << ','
       << p.elements_per_second << '\n';
  }
  return os.str();
}

}  // namespace trigen::carm
