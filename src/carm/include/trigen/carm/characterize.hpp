#pragma once
/// \file characterize.hpp
/// \brief CARM characterization of the detection kernels (paper Fig. 2).
///
/// A kernel is one point (AI, performance): AI comes from the analytic
/// per-word operation/byte accounting of §IV-A (see gpusim/cost_model.hpp),
/// performance is ops/time with the time measured (CPU) or modelled (GPU).
/// `roofline_chart` renders the classic log-log roofline as ASCII so each
/// bench binary reproduces Fig. 2a/2b in the terminal and as CSV.

#include <string>
#include <vector>

#include "trigen/carm/roofs.hpp"
#include "trigen/core/detector.hpp"
#include "trigen/dataset/genotype_matrix.hpp"
#include "trigen/gpusim/cost_model.hpp"
#include "trigen/gpusim/device_spec.hpp"

namespace trigen::carm {

/// One kernel's position in the CARM plane.
struct KernelPoint {
  std::string name;       ///< e.g. "V3-blocked"
  double ai = 0;          ///< [intop/byte]
  double gintops = 0;     ///< [G intop/s]
  double seconds = 0;     ///< run / modelled time
  double elements_per_second = 0;  ///< paper's combs x samples metric
};

/// Op-count accounting for a CPU ladder version (maps V1 to the naive mix
/// and V2..V4 to the phenotype-split mix).
gpusim::OpMix cpu_op_mix(core::CpuVersion v,
                         gpusim::OpCountModel model = gpusim::OpCountModel::kExact);

/// Runs one CPU version and characterizes it.
KernelPoint characterize_cpu_version(
    const core::Detector& det, core::CpuVersion v, unsigned threads = 1,
    gpusim::OpCountModel model = gpusim::OpCountModel::kExact);

/// Runs the whole CPU ladder (V1..V4) on `d`.
std::vector<KernelPoint> characterize_cpu_ladder(
    const dataset::GenotypeMatrix& d, unsigned threads = 1,
    gpusim::OpCountModel model = gpusim::OpCountModel::kExact);

/// Characterizes the GPU ladder on a modelled device via the cost model
/// (no functional execution, so it works at any workload scale).
std::vector<KernelPoint> characterize_gpu_ladder(
    const gpusim::GpuDeviceSpec& dev, std::size_t num_snps,
    std::size_t num_samples,
    gpusim::OpCountModel model = gpusim::OpCountModel::kExact);

/// Renders an ASCII log2-log2 roofline chart with the kernel points
/// labelled 1..9 in order.
std::string roofline_chart(const CarmRoofs& roofs,
                           const std::vector<KernelPoint>& points,
                           int width = 72, int height = 22);

/// CSV rendering: name, ai, gintops, seconds, elements/s.
std::string points_csv(const std::vector<KernelPoint>& points);

}  // namespace trigen::carm
