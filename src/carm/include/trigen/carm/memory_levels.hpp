#pragma once
/// \file memory_levels.hpp
/// \brief Host cache hierarchy discovery for the CARM roofs.

#include <cstddef>
#include <string>
#include <vector>

namespace trigen::carm {

/// One level of the memory hierarchy.
struct MemoryLevel {
  std::string name;          ///< "L1", "L2", "L3", "DRAM"
  std::size_t size_bytes;    ///< capacity (0 for DRAM)
  std::size_t probe_bytes;   ///< working-set size the bandwidth probe uses
};

/// Levels detected from sysfs (L1D/L2/L3) plus DRAM.  Probe working sets
/// are sized at roughly half each level's capacity so the probe stays
/// resident, and at 8x the last cache level for DRAM.
std::vector<MemoryLevel> detect_memory_levels();

}  // namespace trigen::carm
