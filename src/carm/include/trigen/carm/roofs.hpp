#pragma once
/// \file roofs.hpp
/// \brief Measured CARM ceilings: per-level load bandwidth and INT-ADD peaks.
///
/// The Cache-Aware Roofline Model [Ilic et al., IEEE CAL'14] plots
/// performance against arithmetic intensity under two families of roofs,
/// *as seen from the core*: memory roofs B_mem x AI for each level of the
/// hierarchy, and horizontal compute roofs.  The paper reads these from
/// Intel Advisor; here they are measured directly with microbenchmarks:
///
///  * bandwidth: repeated vector-load sweeps over a working set sized to
///    each cache level;
///  * compute: independent-accumulator integer ADD loops, scalar and
///    vector (the INT32 "Vector ADD Peak" / "Scalar ADD Peak" roofs of
///    Fig. 2).

#include <cstdint>
#include <string>
#include <vector>

#include "trigen/carm/memory_levels.hpp"

namespace trigen::carm {

/// One memory roof.
struct BandwidthRoof {
  std::string level;   ///< "L1", "L2", ...
  double bytes_per_s;  ///< measured load bandwidth
};

/// One compute roof.
struct ComputeRoof {
  std::string name;    ///< "scalar-add", "avx2-add", "avx512-add"
  double intops_per_s; ///< 32-bit integer operations per second
};

/// Full roof set for one core (the CARM is a per-core model; multiply by
/// core count for socket-level roofs).
struct CarmRoofs {
  std::vector<BandwidthRoof> memory;
  std::vector<ComputeRoof> compute;

  double scalar_peak() const;  ///< scalar ADD roof [intop/s]
  double vector_peak() const;  ///< widest vector ADD roof [intop/s]
  /// Bandwidth of the named level, 0 when absent.
  double bandwidth(const std::string& level) const;
};

/// Measures load bandwidth for a working set of `bytes` (single core).
double measure_load_bandwidth(std::size_t bytes);

/// Measures the scalar 64-bit integer ADD peak, reported as 32-bit
/// intop/s for comparability with the vector roofs.
double measure_scalar_add_peak();

/// Measures the widest-vector 32-bit integer ADD peak available.
/// `lanes_out` receives the lane count used (8 for AVX2, 16 for AVX-512).
double measure_vector_add_peak(unsigned* lanes_out = nullptr);

/// Measures all roofs (takes ~1 s).
CarmRoofs measure_roofs();

}  // namespace trigen::carm
