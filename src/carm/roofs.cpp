#include "trigen/carm/roofs.hpp"

#include <algorithm>

#include "trigen/common/aligned.hpp"
#include "trigen/common/stopwatch.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace trigen::carm {

double CarmRoofs::scalar_peak() const {
  for (const auto& r : compute) {
    if (r.name == "scalar-add") return r.intops_per_s;
  }
  return 0.0;
}

double CarmRoofs::vector_peak() const {
  double best = 0.0;
  for (const auto& r : compute) best = std::max(best, r.intops_per_s);
  return best;
}

double CarmRoofs::bandwidth(const std::string& level) const {
  for (const auto& r : memory) {
    if (r.level == level) return r.bytes_per_s;
  }
  return 0.0;
}

namespace {

/// Keeps the optimizer from discarding the probe loops.
void sink(const void* p) { asm volatile("" : : "g"(p) : "memory"); }

}  // namespace

double measure_load_bandwidth(std::size_t bytes) {
  const std::size_t words = std::max<std::size_t>(bytes / 8, 64);
  aligned_vector<std::uint64_t> buf(words, 0x5555555555555555ull);

  // Enough sweeps that one measurement lasts >= ~5 ms even from L1.
  const std::size_t sweep_bytes = words * 8;
  const std::size_t reps =
      std::max<std::size_t>(1, (1u << 26) / std::max<std::size_t>(1, sweep_bytes));

  std::uint64_t acc = 0;
  const double secs = time_best_of([&] {
    for (std::size_t r = 0; r < reps; ++r) {
      const std::uint64_t* p = buf.data();
#if defined(__AVX2__)
      __m256i a0 = _mm256_setzero_si256();
      __m256i a1 = _mm256_setzero_si256();
      std::size_t i = 0;
      for (; i + 8 <= words; i += 8) {
        a0 = _mm256_or_si256(
            a0, _mm256_load_si256(reinterpret_cast<const __m256i*>(p + i)));
        a1 = _mm256_or_si256(
            a1, _mm256_load_si256(reinterpret_cast<const __m256i*>(p + i + 4)));
      }
      acc += static_cast<std::uint64_t>(
          _mm256_extract_epi64(_mm256_or_si256(a0, a1), 0));
      for (; i < words; ++i) acc |= p[i];
#else
      for (std::size_t i = 0; i < words; ++i) acc |= p[i];
#endif
      sink(&acc);
    }
  });
  sink(&acc);
  return static_cast<double>(sweep_bytes) * static_cast<double>(reps) / secs;
}

double measure_scalar_add_peak() {
  // Four independent chains; the loop is add-throughput bound.
  constexpr std::uint64_t kIters = 1u << 22;
  std::uint64_t a = 1, b = 2, c = 3, d = 4;
  const double secs = time_best_of([&] {
    for (std::uint64_t i = 0; i < kIters; ++i) {
      a += i;
      b += a;
      c += i;
      d += c;
      asm volatile("" : "+r"(a), "+r"(b), "+r"(c), "+r"(d));
    }
  });
  // 4 adds per iteration, each counted as one 32-bit-class intop (the CARM
  // scalar roof of Fig. 2 is per-instruction).
  return 4.0 * static_cast<double>(kIters) / secs;
}

double measure_vector_add_peak(unsigned* lanes_out) {
  constexpr std::uint64_t kIters = 1u << 20;
#if defined(__AVX512F__)
  unsigned lanes = 16;
  __m512i a = _mm512_set1_epi32(1), b = _mm512_set1_epi32(2),
          c = _mm512_set1_epi32(3), d = _mm512_set1_epi32(4);
  const __m512i inc = _mm512_set1_epi32(1);
  const double secs = time_best_of([&] {
    for (std::uint64_t i = 0; i < kIters; ++i) {
      a = _mm512_add_epi32(a, inc);
      b = _mm512_add_epi32(b, inc);
      c = _mm512_add_epi32(c, inc);
      d = _mm512_add_epi32(d, inc);
      asm volatile("" : "+x"(a), "+x"(b), "+x"(c), "+x"(d));
    }
  });
#elif defined(__AVX2__)
  unsigned lanes = 8;
  __m256i a = _mm256_set1_epi32(1), b = _mm256_set1_epi32(2),
          c = _mm256_set1_epi32(3), d = _mm256_set1_epi32(4);
  const __m256i inc = _mm256_set1_epi32(1);
  const double secs = time_best_of([&] {
    for (std::uint64_t i = 0; i < kIters; ++i) {
      a = _mm256_add_epi32(a, inc);
      b = _mm256_add_epi32(b, inc);
      c = _mm256_add_epi32(c, inc);
      d = _mm256_add_epi32(d, inc);
      asm volatile("" : "+x"(a), "+x"(b), "+x"(c), "+x"(d));
    }
  });
#else
  unsigned lanes = 1;
  const double secs = 4.0 * static_cast<double>(kIters) /
                      measure_scalar_add_peak();
#endif
  if (lanes_out != nullptr) *lanes_out = lanes;
  return 4.0 * static_cast<double>(lanes) * static_cast<double>(kIters) / secs;
}

CarmRoofs measure_roofs() {
  CarmRoofs roofs;
  for (const auto& level : detect_memory_levels()) {
    roofs.memory.push_back(
        {level.name, measure_load_bandwidth(level.probe_bytes)});
  }
  roofs.compute.push_back({"scalar-add", measure_scalar_add_peak()});
  unsigned lanes = 1;
  const double vec = measure_vector_add_peak(&lanes);
  roofs.compute.push_back(
      {lanes >= 16 ? "avx512-add" : (lanes >= 8 ? "avx2-add" : "scalar-add2"),
       vec});
  return roofs;
}

}  // namespace trigen::carm
