#include "trigen/carm/roofs.hpp"

#include <algorithm>

#include "roofs_detail.hpp"
#include "trigen/common/aligned.hpp"
#include "trigen/common/cpuid.hpp"
#include "trigen/common/stopwatch.hpp"

// This TU is compiled portably; the vector micro-probes live in
// roofs_avx2.cpp / roofs_avx512.cpp (per-file ISA flags) and are entered
// only after cpu_features() confirms the host supports them — the same
// compile-in-everything / dispatch-at-runtime design as the core kernels.

namespace trigen::carm {

double CarmRoofs::scalar_peak() const {
  for (const auto& r : compute) {
    if (r.name == "scalar-add") return r.intops_per_s;
  }
  return 0.0;
}

double CarmRoofs::vector_peak() const {
  double best = 0.0;
  for (const auto& r : compute) best = std::max(best, r.intops_per_s);
  return best;
}

double CarmRoofs::bandwidth(const std::string& level) const {
  for (const auto& r : memory) {
    if (r.level == level) return r.bytes_per_s;
  }
  return 0.0;
}

namespace {

/// Keeps the optimizer from discarding the probe loops.
void sink(const void* p) { asm volatile("" : : "g"(p) : "memory"); }

}  // namespace

double measure_load_bandwidth(std::size_t bytes) {
#if defined(TRIGEN_KERNEL_AVX2)
  if (cpu_features().avx2) return detail::load_bandwidth_avx2(bytes);
#endif
  const std::size_t words = std::max<std::size_t>(bytes / 8, 64);
  aligned_vector<std::uint64_t> buf(words, 0x5555555555555555ull);

  // Enough sweeps that one measurement lasts >= ~5 ms even from L1.
  const std::size_t sweep_bytes = words * 8;
  const std::size_t reps =
      std::max<std::size_t>(1, (1u << 26) / std::max<std::size_t>(1, sweep_bytes));

  std::uint64_t acc = 0;
  const double secs = time_best_of([&] {
    for (std::size_t r = 0; r < reps; ++r) {
      const std::uint64_t* p = buf.data();
      for (std::size_t i = 0; i < words; ++i) acc |= p[i];
      sink(&acc);
    }
  });
  sink(&acc);
  return static_cast<double>(sweep_bytes) * static_cast<double>(reps) / secs;
}

double measure_scalar_add_peak() {
  // Four independent chains; the loop is add-throughput bound.
  constexpr std::uint64_t kIters = 1u << 22;
  std::uint64_t a = 1, b = 2, c = 3, d = 4;
  const double secs = time_best_of([&] {
    for (std::uint64_t i = 0; i < kIters; ++i) {
      a += i;
      b += a;
      c += i;
      d += c;
      asm volatile("" : "+r"(a), "+r"(b), "+r"(c), "+r"(d));
    }
  });
  // 4 adds per iteration, each counted as one 32-bit-class intop (the CARM
  // scalar roof of Fig. 2 is per-instruction).
  return 4.0 * static_cast<double>(kIters) / secs;
}

double measure_vector_add_peak(unsigned* lanes_out) {
#if defined(TRIGEN_KERNEL_AVX512)
  if (cpu_features().avx512f) {
    if (lanes_out != nullptr) *lanes_out = 16;
    return detail::vector_add_peak_avx512();
  }
#endif
#if defined(TRIGEN_KERNEL_AVX2)
  if (cpu_features().avx2) {
    if (lanes_out != nullptr) *lanes_out = 8;
    return detail::vector_add_peak_avx2();
  }
#endif
  if (lanes_out != nullptr) *lanes_out = 1;
  return measure_scalar_add_peak();
}

CarmRoofs measure_roofs() {
  CarmRoofs roofs;
  for (const auto& level : detect_memory_levels()) {
    roofs.memory.push_back(
        {level.name, measure_load_bandwidth(level.probe_bytes)});
  }
  roofs.compute.push_back({"scalar-add", measure_scalar_add_peak()});
  unsigned lanes = 1;
  const double vec = measure_vector_add_peak(&lanes);
  roofs.compute.push_back(
      {lanes >= 16 ? "avx512-add" : (lanes >= 8 ? "avx2-add" : "scalar-add2"),
       vec});
  return roofs;
}

}  // namespace trigen::carm
