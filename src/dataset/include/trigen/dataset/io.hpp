#pragma once
/// \file io.hpp
/// \brief Dataset serialization: a human-readable text format and a compact
/// binary format.
///
/// Text format (one SNP per line, MPI3SNP-sample-file flavoured):
///
///     TRIGEN1 <M> <N>
///     <N genotype chars '0'|'1'|'2'>            (M lines)
///     <N phenotype chars '0'|'1'>               (1 line)
///
/// Binary format: magic "TGBIN1\n", little-endian u64 M, u64 N, M*N raw
/// genotype bytes, N raw phenotype bytes.

#include <iosfwd>
#include <string>

#include "trigen/dataset/genotype_matrix.hpp"

namespace trigen::dataset {

/// Writes `d` in the text format.  Throws std::runtime_error on I/O failure.
void write_text(std::ostream& os, const GenotypeMatrix& d);
void write_text_file(const std::string& path, const GenotypeMatrix& d);

/// Parses the text format.  Throws std::runtime_error with a line-number
/// message on malformed input.
GenotypeMatrix read_text(std::istream& is);
GenotypeMatrix read_text_file(const std::string& path);

/// Binary round trip.
void write_binary(std::ostream& os, const GenotypeMatrix& d);
void write_binary_file(const std::string& path, const GenotypeMatrix& d);
GenotypeMatrix read_binary(std::istream& is);
GenotypeMatrix read_binary_file(const std::string& path);

}  // namespace trigen::dataset
