#pragma once
/// \file genotype_matrix.hpp
/// \brief Raw case-control SNP dataset (problem formulation, paper §III).
///
/// A dataset D has N samples and M SNPs.  D[i,j] is the genotype of SNP i
/// for sample j, taking values 0 (homozygous major allele), 1 (heterozygous)
/// or 2 (homozygous minor allele).  Each sample additionally carries a
/// phenotype: 0 (control) or 1 (case).

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace trigen::dataset {

/// Genotype value: 0, 1 or 2.
using Genotype = std::uint8_t;
/// Phenotype class: 0 = control, 1 = case.
using Phenotype = std::uint8_t;

inline constexpr int kGenotypeValues = 3;  ///< {0,1,2}
inline constexpr int kPhenotypeClasses = 2;  ///< {control, case}

/// Dense SNP-major genotype matrix with a per-sample phenotype vector.
///
/// This is the *unencoded* representation; the kernels never touch it
/// directly — they consume the bit-plane layouts built from it (see
/// bitplanes.hpp).  It is, however, the ground truth every kernel's
/// contingency tables are verified against.
class GenotypeMatrix {
 public:
  GenotypeMatrix() = default;

  /// Creates an all-zero dataset of the given shape.
  GenotypeMatrix(std::size_t num_snps, std::size_t num_samples);

  std::size_t num_snps() const { return num_snps_; }
  std::size_t num_samples() const { return num_samples_; }

  /// Genotype of SNP `snp` for sample `sample` (unchecked in release).
  Genotype at(std::size_t snp, std::size_t sample) const {
    return geno_[snp * num_samples_ + sample];
  }

  /// Sets a genotype; throws std::out_of_range / invalid_argument on misuse.
  void set(std::size_t snp, std::size_t sample, Genotype g);

  Phenotype phenotype(std::size_t sample) const { return pheno_[sample]; }
  void set_phenotype(std::size_t sample, Phenotype p);

  /// Row view over one SNP's genotypes (all samples).
  std::span<const Genotype> snp_row(std::size_t snp) const {
    return {geno_.data() + snp * num_samples_, num_samples_};
  }

  std::span<const Phenotype> phenotypes() const { return pheno_; }

  /// Number of samples in phenotype class `c`.
  std::size_t class_count(Phenotype c) const;

  /// True when every genotype is in {0,1,2} and every phenotype in {0,1}.
  bool valid() const;

  friend bool operator==(const GenotypeMatrix&, const GenotypeMatrix&) = default;

 private:
  std::size_t num_snps_ = 0;
  std::size_t num_samples_ = 0;
  std::vector<Genotype> geno_;   // SNP-major: geno_[snp * N + sample]
  std::vector<Phenotype> pheno_;  // one entry per sample
};

}  // namespace trigen::dataset
