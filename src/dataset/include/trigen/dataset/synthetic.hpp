#pragma once
/// \file synthetic.hpp
/// \brief Synthetic case-control dataset generator with planted epistasis.
///
/// The paper evaluates on "synthetic data sets equivalent to real case
/// scenarios" (§V).  This generator produces such datasets: genotypes are
/// drawn per-SNP under Hardy-Weinberg equilibrium from a minor allele
/// frequency (MAF), and the phenotype is drawn from a penetrance table — a
/// P(case | g_x, g_y, g_z) lookup over the 27 genotype combinations of a
/// planted SNP triplet (the GAMETES-style construction used throughout the
/// epistasis literature).  Datasets with a planted interaction give the
/// test suite a ground truth: the detector must rank the planted triplet
/// first.

#include <array>
#include <cstdint>
#include <optional>

#include "trigen/dataset/genotype_matrix.hpp"

namespace trigen::dataset {

/// P(case | genotype combination) over the 27 three-way genotype cells.
/// Cell index is g_x * 9 + g_y * 3 + g_z.
struct PenetranceTable {
  std::array<double, 27> p{};

  double at(int gx, int gy, int gz) const {
    return p[static_cast<std::size_t>(gx * 9 + gy * 3 + gz)];
  }
  /// All probabilities within [0,1]?
  bool valid() const;
};

/// Built-in third-order interaction shapes.
enum class InteractionModel {
  kThreshold,       ///< risk jumps when >= 3 minor alleles are present
  kXor3,            ///< risk follows the parity of the minor-allele count
  kMultiplicative,  ///< risk multiplies per minor allele (log-additive)
};

/// Builds a penetrance table for `model` with baseline case probability
/// `baseline` and effect strength `effect` (both in [0,1]; the resulting
/// probabilities are clamped to [0, 0.95]).
PenetranceTable make_penetrance(InteractionModel model, double baseline,
                                double effect);

/// Builds a penetrance table that depends only on the first two SNPs of
/// the planted triplet (a *second-order* interaction embedded in the
/// 27-cell table): used to test the pairwise detector with ground truth.
PenetranceTable make_penetrance_pairwise(InteractionModel model,
                                         double baseline, double effect);

/// A planted three-way interaction: which SNPs interact and how.
struct PlantedInteraction {
  std::array<std::size_t, 3> snps{};  ///< strictly increasing indices
  PenetranceTable penetrance;
};

/// Generation parameters.
struct SyntheticSpec {
  std::size_t num_snps = 0;
  std::size_t num_samples = 0;
  double maf_min = 0.05;  ///< minor allele frequencies drawn uniformly
  double maf_max = 0.50;  ///< from [maf_min, maf_max] per SNP
  double prevalence = 0.5;  ///< P(case) for samples not driven by a planted table
  std::uint64_t seed = 42;
  /// Planted ground-truth interaction (optional).
  std::optional<PlantedInteraction> interaction;
};

/// Generates a dataset according to `spec`.  Deterministic in `spec.seed`.
///
/// Throws std::invalid_argument when the spec is inconsistent (zero shape,
/// MAF out of range, planted SNP indices out of range or not increasing).
GenotypeMatrix generate(const SyntheticSpec& spec);

/// Generates a dataset with exactly `floor(N/2)` cases and the rest
/// controls (the balanced shape the paper's datasets use), no interaction.
GenotypeMatrix generate_balanced(std::size_t num_snps, std::size_t num_samples,
                                 std::uint64_t seed, double maf_min = 0.05,
                                 double maf_max = 0.5);

}  // namespace trigen::dataset
