#pragma once
/// \file bitplanes.hpp
/// \brief Binarized dataset layouts for every kernel version (paper §III/IV).
///
/// The paper's optimization ladder is driven by data layout:
///
///  * `BitPlanesV1`    — Fig. 1: three genotype bit-planes per SNP plus a
///                       phenotype bit-plane.  Used by the naive V1 kernels.
///  * `PhenoSplitPlanes` — §IV-A second method: the dataset is split into a
///                       control plane-set and a case plane-set, and only
///                       genotypes 0 and 1 are stored (genotype 2 is
///                       reconstructed with a NOR).  Used by CPU V2-V5
///                       and GPU V2.
///  * `TransposedPlanes` — §IV-B third method: SNP-minor (sample-word-major)
///                       layout so that consecutive GPU threads touch
///                       consecutive words (coalesced loads).  GPU V3.
///  * `TiledPlanes`    — §IV-B fourth method: SNPs grouped in tiles of BS,
///                       with the BS words of one sample-word adjacent.
///                       GPU V4.
///
/// All layouts use 32-bit words ("all approaches use 32-bit integers to
/// compress the input data set", §IV) and zero-padded tail bits.  For the
/// layouts that *infer* genotype 2 via NOR, the zero padding masquerades as
/// genotype 2; the padding bit counts are exposed so kernels can subtract
/// the constant from the (2,2,2) contingency cell instead of masking inside
/// the hot loop (see `pad_bits`).

#include <array>
#include <cstdint>
#include <vector>

#include "trigen/common/aligned.hpp"
#include "trigen/dataset/genotype_matrix.hpp"

namespace trigen::dataset {

/// Machine word carrying one bit per sample.
using Word = std::uint32_t;
inline constexpr std::size_t kWordBits = 32;

/// Number of words needed for `n` samples (no alignment padding).
constexpr std::size_t words_for(std::size_t n) {
  return (n + kWordBits - 1) / kWordBits;
}

/// Words per 64-byte vector register / cache line.
inline constexpr std::size_t kWordsPerVector = trigen::kVectorAlign / sizeof(Word);

/// `words_for(n)` rounded up so every plane is a whole number of AVX-512
/// registers; guarantees aligned vector loads never read across planes.
constexpr std::size_t padded_words_for(std::size_t n) {
  const std::size_t w = words_for(n);
  return (w + kWordsPerVector - 1) / kWordsPerVector * kWordsPerVector;
}

// ---------------------------------------------------------------------------
// V1: three genotype planes + phenotype plane (Fig. 1)
// ---------------------------------------------------------------------------

/// Naive binarized layout: for each SNP, one bit-plane per genotype value,
/// plus a single shared phenotype plane (bit set = case).
class BitPlanesV1 {
 public:
  static BitPlanesV1 build(const GenotypeMatrix& d);

  std::size_t num_snps() const { return num_snps_; }
  std::size_t num_samples() const { return num_samples_; }
  /// Padded words per plane.
  std::size_t words() const { return words_; }

  /// Plane of genotype `g` (0..2) for SNP `snp`; `words()` words long.
  const Word* plane(std::size_t snp, int g) const {
    return planes_.data() + (snp * 3 + static_cast<std::size_t>(g)) * words_;
  }
  /// Phenotype plane: bit set when the sample is a case.
  const Word* phenotype_plane() const { return pheno_.data(); }

 private:
  std::size_t num_snps_ = 0;
  std::size_t num_samples_ = 0;
  std::size_t words_ = 0;
  aligned_vector<Word> planes_;  // [snp][genotype][word]
  aligned_vector<Word> pheno_;   // [word]
};

// ---------------------------------------------------------------------------
// V2: phenotype-split, genotype-2 inferred (CPU V2-V5, GPU V2)
// ---------------------------------------------------------------------------

/// Class-split layout: one plane-set per phenotype class, storing only
/// genotypes 0 and 1.  Genotype 2 is reconstructed as NOR(g0, g1), which
/// cuts memory traffic to 2/3 and removes the phenotype plane entirely.
class PhenoSplitPlanes {
 public:
  static PhenoSplitPlanes build(const GenotypeMatrix& d);

  /// Phenotype-agnostic variant for batched multi-phenotype scans: class 0
  /// holds ALL samples in original column order (class 1 stays empty).  The
  /// case/control split is applied afterwards per partition by ANDing the
  /// cell planes against a PhenotypeBatch's packed label planes, so one set
  /// of genotype planes serves every partition of the same samples.
  static PhenoSplitPlanes build_combined(const GenotypeMatrix& d);

  std::size_t num_snps() const { return num_snps_; }
  /// Samples in class `c` (0 = controls, 1 = cases).
  std::size_t samples(int c) const { return samples_[static_cast<std::size_t>(c)]; }
  /// Padded words per plane of class `c`.
  std::size_t words(int c) const { return words_[static_cast<std::size_t>(c)]; }

  /// Zero-padding tail bits of class `c`.  NOR-based genotype-2 inference
  /// turns each of these into a phantom (2,2,2) observation; kernels must
  /// subtract this constant from that cell once per evaluated triplet.
  std::size_t pad_bits(int c) const {
    return words(c) * kWordBits - samples(c);
  }

  /// Plane of genotype `g` (0..1 only) for SNP `snp` in class `c`.
  const Word* plane(int c, std::size_t snp, int g) const {
    return planes_[static_cast<std::size_t>(c)].data() +
           (snp * 2 + static_cast<std::size_t>(g)) * words_[static_cast<std::size_t>(c)];
  }

 private:
  std::size_t num_snps_ = 0;
  std::array<std::size_t, 2> samples_{};
  std::array<std::size_t, 2> words_{};
  std::array<aligned_vector<Word>, 2> planes_;  // [snp][genotype(2)][word]
};

// ---------------------------------------------------------------------------
// Batched multi-phenotype label planes
// ---------------------------------------------------------------------------

/// P packed phenotype partitions of one sample set, in the word-interleaved
/// layout the batched kernels consume: `word_labels()[w * stride() + p]` is
/// word `w` of partition `p`'s *case* plane (bit j set = sample w*32+j is a
/// case under partition p).  Interleaving puts the P lanes of one sample
/// word contiguously, so a kernel broadcasts a genotype word once and ANDs
/// it against 8 (AVX2) or 16 (AVX-512) partitions per instruction.
///
/// `stride()` is P rounded up to `kWordsPerVector`, keeping each word-row
/// vector-aligned; surplus lanes and the tail bits beyond `num_samples()`
/// are zero, so case cells never need pad correction — only control cells
/// (derived as totals − case) inherit the combined planes' phantom
/// genotype-2 padding, exposed via `pad_bits()`.
class PhenotypeBatch {
 public:
  /// Packs `partitions` (each a per-sample 0/1 label vector of length
  /// `num_samples`) into label planes.  Throws std::invalid_argument on an
  /// empty batch, a size mismatch, or a label > 1.
  static PhenotypeBatch build(
      std::size_t num_samples,
      const std::vector<std::vector<Phenotype>>& partitions);

  /// Number of partitions P.
  std::size_t size() const { return cases_.size(); }
  std::size_t num_samples() const { return num_samples_; }
  /// Padded words per label plane (matches the combined planes' row length).
  std::size_t words() const { return words_; }
  /// Lane stride between consecutive sample words of one partition.
  std::size_t stride() const { return stride_; }
  /// Word-interleaved label planes: word `w` of partition `p` is at
  /// `word_labels()[w * stride() + p]`.
  const Word* word_labels() const { return labels_.data(); }
  /// Case count of partition `p` (its per-partition sample split).
  std::size_t cases(std::size_t p) const { return cases_[p]; }
  /// Zero-padding tail bits shared by every partition's sample space.
  std::size_t pad_bits() const { return words_ * kWordBits - num_samples_; }

 private:
  std::size_t num_samples_ = 0;
  std::size_t words_ = 0;
  std::size_t stride_ = 0;
  std::vector<std::size_t> cases_;
  aligned_vector<Word> labels_;  // [word][partition lane]
};

// ---------------------------------------------------------------------------
// V3 (GPU): transposed layout for coalesced loads
// ---------------------------------------------------------------------------

/// Sample-word-major layout: for a fixed sample word, the planes of all
/// SNPs are adjacent, so consecutive GPU threads (which own consecutive SNP
/// triplets) load consecutive memory — the coalescing condition of §IV-B.
class TransposedPlanes {
 public:
  static TransposedPlanes build(const GenotypeMatrix& d);

  std::size_t num_snps() const { return num_snps_; }
  std::size_t samples(int c) const { return samples_[static_cast<std::size_t>(c)]; }
  std::size_t words(int c) const { return words_[static_cast<std::size_t>(c)]; }
  std::size_t pad_bits(int c) const {
    return words(c) * kWordBits - samples(c);
  }

  /// Word `w` of the genotype-`g` plane of `snp` in class `c`.
  Word word(int c, std::size_t w, std::size_t snp, int g) const {
    return planes_[static_cast<std::size_t>(c)]
                  [(w * num_snps_ + snp) * 2 + static_cast<std::size_t>(g)];
  }

  /// Base pointer for cost-model / stride analysis.
  const Word* data(int c) const {
    return planes_[static_cast<std::size_t>(c)].data();
  }
  /// Distance in words between the same plane of SNP m and SNP m+1 for a
  /// fixed sample word (the coalescing stride).
  std::size_t snp_stride() const { return 2; }

 private:
  std::size_t num_snps_ = 0;
  std::array<std::size_t, 2> samples_{};
  std::array<std::size_t, 2> words_{};
  std::array<aligned_vector<Word>, 2> planes_;  // [word][snp][genotype(2)]
};

// ---------------------------------------------------------------------------
// V4 (GPU): SNP-tiled layout
// ---------------------------------------------------------------------------

/// Tiled layout: SNPs are grouped in tiles of `tile` SNPs; within a tile the
/// `tile` words belonging to one sample word are adjacent.  This bounds the
/// stride between consecutive sample words of the same SNP to `tile` words,
/// improving cache-line reuse inside a thread group of size `tile` (§IV-B).
class TiledPlanes {
 public:
  /// `tile` is the paper's BS; "for most architectures a multiple of 32/64".
  static TiledPlanes build(const GenotypeMatrix& d, std::size_t tile);

  std::size_t num_snps() const { return num_snps_; }
  std::size_t tile() const { return tile_; }
  /// SNP count rounded up to a whole number of tiles.
  std::size_t padded_snps() const { return padded_snps_; }
  std::size_t samples(int c) const { return samples_[static_cast<std::size_t>(c)]; }
  std::size_t words(int c) const { return words_[static_cast<std::size_t>(c)]; }
  std::size_t pad_bits(int c) const {
    return words(c) * kWordBits - samples(c);
  }

  Word word(int c, std::size_t w, std::size_t snp, int g) const {
    const std::size_t tile_idx = snp / tile_;
    const std::size_t in_tile = snp % tile_;
    return planes_[static_cast<std::size_t>(c)]
                  [(((tile_idx * words_[static_cast<std::size_t>(c)]) + w) * tile_ +
                    in_tile) * 2 + static_cast<std::size_t>(g)];
  }

  const Word* data(int c) const {
    return planes_[static_cast<std::size_t>(c)].data();
  }

 private:
  std::size_t num_snps_ = 0;
  std::size_t padded_snps_ = 0;
  std::size_t tile_ = 0;
  std::array<std::size_t, 2> samples_{};
  std::array<std::size_t, 2> words_{};
  std::array<aligned_vector<Word>, 2> planes_;  // [tile][word][snp-in-tile][g]
};

}  // namespace trigen::dataset
