#include "trigen/dataset/genotype_matrix.hpp"

#include <algorithm>

namespace trigen::dataset {

GenotypeMatrix::GenotypeMatrix(std::size_t num_snps, std::size_t num_samples)
    : num_snps_(num_snps),
      num_samples_(num_samples),
      geno_(num_snps * num_samples, 0),
      pheno_(num_samples, 0) {
  if (num_snps == 0 || num_samples == 0) {
    throw std::invalid_argument("GenotypeMatrix: shape must be non-zero");
  }
}

void GenotypeMatrix::set(std::size_t snp, std::size_t sample, Genotype g) {
  if (snp >= num_snps_ || sample >= num_samples_) {
    throw std::out_of_range("GenotypeMatrix::set: index out of range");
  }
  if (g > 2) {
    throw std::invalid_argument("GenotypeMatrix::set: genotype must be 0..2");
  }
  geno_[snp * num_samples_ + sample] = g;
}

void GenotypeMatrix::set_phenotype(std::size_t sample, Phenotype p) {
  if (sample >= num_samples_) {
    throw std::out_of_range("GenotypeMatrix::set_phenotype: out of range");
  }
  if (p > 1) {
    throw std::invalid_argument("GenotypeMatrix: phenotype must be 0 or 1");
  }
  pheno_[sample] = p;
}

std::size_t GenotypeMatrix::class_count(Phenotype c) const {
  return static_cast<std::size_t>(
      std::count(pheno_.begin(), pheno_.end(), c));
}

bool GenotypeMatrix::valid() const {
  const bool geno_ok =
      std::all_of(geno_.begin(), geno_.end(), [](Genotype g) { return g <= 2; });
  const bool pheno_ok = std::all_of(pheno_.begin(), pheno_.end(),
                                    [](Phenotype p) { return p <= 1; });
  return geno_ok && pheno_ok;
}

}  // namespace trigen::dataset
