#include "trigen/dataset/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "trigen/common/rng.hpp"

namespace trigen::dataset {
namespace {

/// Minor allele count contributed by one genotype value (0, 1 or 2).
int minor_alleles(int g) { return g; }

double clamp01(double p) { return std::clamp(p, 0.0, 0.95); }

/// Draws one genotype under Hardy-Weinberg equilibrium for MAF `q`:
/// P(0) = (1-q)^2, P(1) = 2q(1-q), P(2) = q^2.
Genotype sample_genotype(Xoshiro256& rng, double q) {
  const double u = rng.uniform();
  const double p0 = (1.0 - q) * (1.0 - q);
  const double p1 = p0 + 2.0 * q * (1.0 - q);
  if (u < p0) return 0;
  if (u < p1) return 1;
  return 2;
}

void validate(const SyntheticSpec& spec) {
  if (spec.num_snps == 0 || spec.num_samples == 0) {
    throw std::invalid_argument("SyntheticSpec: shape must be non-zero");
  }
  if (!(spec.maf_min >= 0.0 && spec.maf_min <= spec.maf_max &&
        spec.maf_max <= 0.5)) {
    throw std::invalid_argument("SyntheticSpec: need 0 <= maf_min <= maf_max <= 0.5");
  }
  if (spec.prevalence < 0.0 || spec.prevalence > 1.0) {
    throw std::invalid_argument("SyntheticSpec: prevalence must be in [0,1]");
  }
  if (spec.interaction) {
    const auto& s = spec.interaction->snps;
    if (!(s[0] < s[1] && s[1] < s[2] && s[2] < spec.num_snps)) {
      throw std::invalid_argument(
          "SyntheticSpec: planted SNPs must be strictly increasing and in range");
    }
    if (!spec.interaction->penetrance.valid()) {
      throw std::invalid_argument("SyntheticSpec: penetrance out of [0,1]");
    }
  }
}

}  // namespace

bool PenetranceTable::valid() const {
  return std::all_of(p.begin(), p.end(),
                     [](double v) { return v >= 0.0 && v <= 1.0; });
}

PenetranceTable make_penetrance(InteractionModel model, double baseline,
                                double effect) {
  PenetranceTable t;
  for (int gx = 0; gx < 3; ++gx) {
    for (int gy = 0; gy < 3; ++gy) {
      for (int gz = 0; gz < 3; ++gz) {
        const int alleles =
            minor_alleles(gx) + minor_alleles(gy) + minor_alleles(gz);
        double p = baseline;
        switch (model) {
          case InteractionModel::kThreshold:
            if (alleles >= 3) p = baseline + effect;
            break;
          case InteractionModel::kXor3:
            if (alleles % 2 == 1) p = baseline + effect;
            break;
          case InteractionModel::kMultiplicative:
            p = baseline * std::pow(1.0 + effect, alleles);
            break;
        }
        t.p[static_cast<std::size_t>(gx * 9 + gy * 3 + gz)] = clamp01(p);
      }
    }
  }
  return t;
}

PenetranceTable make_penetrance_pairwise(InteractionModel model,
                                         double baseline, double effect) {
  PenetranceTable t;
  for (int gx = 0; gx < 3; ++gx) {
    for (int gy = 0; gy < 3; ++gy) {
      const int alleles = minor_alleles(gx) + minor_alleles(gy);
      double p = baseline;
      switch (model) {
        case InteractionModel::kThreshold:
          if (alleles >= 2) p = baseline + effect;
          break;
        case InteractionModel::kXor3:
          if (alleles % 2 == 1) p = baseline + effect;
          break;
        case InteractionModel::kMultiplicative:
          p = baseline * std::pow(1.0 + effect, alleles);
          break;
      }
      for (int gz = 0; gz < 3; ++gz) {
        t.p[static_cast<std::size_t>(gx * 9 + gy * 3 + gz)] = clamp01(p);
      }
    }
  }
  return t;
}

GenotypeMatrix generate(const SyntheticSpec& spec) {
  validate(spec);
  Xoshiro256 rng(spec.seed);
  GenotypeMatrix d(spec.num_snps, spec.num_samples);

  // Per-SNP minor allele frequencies.
  std::vector<double> maf(spec.num_snps);
  for (auto& q : maf) {
    q = spec.maf_min + (spec.maf_max - spec.maf_min) * rng.uniform();
  }

  for (std::size_t m = 0; m < spec.num_snps; ++m) {
    for (std::size_t j = 0; j < spec.num_samples; ++j) {
      d.set(m, j, sample_genotype(rng, maf[m]));
    }
  }

  for (std::size_t j = 0; j < spec.num_samples; ++j) {
    double p_case = spec.prevalence;
    if (spec.interaction) {
      const auto& pl = *spec.interaction;
      p_case = pl.penetrance.at(d.at(pl.snps[0], j), d.at(pl.snps[1], j),
                                d.at(pl.snps[2], j));
    }
    d.set_phenotype(j, rng.bernoulli(p_case) ? 1 : 0);
  }
  return d;
}

GenotypeMatrix generate_balanced(std::size_t num_snps, std::size_t num_samples,
                                 std::uint64_t seed, double maf_min,
                                 double maf_max) {
  SyntheticSpec spec;
  spec.num_snps = num_snps;
  spec.num_samples = num_samples;
  spec.maf_min = maf_min;
  spec.maf_max = maf_max;
  spec.seed = seed;
  GenotypeMatrix d = generate(spec);
  // Overwrite phenotypes with an exactly balanced, deterministic shuffle.
  Xoshiro256 rng(seed ^ 0xB5EFB5EFB5EFB5EFull);
  std::vector<std::size_t> order(num_samples);
  for (std::size_t j = 0; j < num_samples; ++j) order[j] = j;
  for (std::size_t j = num_samples; j > 1; --j) {  // Fisher-Yates
    std::swap(order[j - 1], order[rng.bounded(j)]);
  }
  for (std::size_t j = 0; j < num_samples; ++j) {
    d.set_phenotype(order[j], j < num_samples / 2 ? 1 : 0);
  }
  return d;
}

}  // namespace trigen::dataset
