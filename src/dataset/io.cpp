#include "trigen/dataset/io.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace trigen::dataset {
namespace {

constexpr char kTextMagic[] = "TRIGEN1";
constexpr char kBinMagic[] = "TGBIN1\n";

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("trigen dataset I/O: " + what);
}

/// Upper bounds on header-declared shapes.  A corrupted header must fail
/// with a parse error, not an attempted multi-terabyte allocation.
constexpr std::uint64_t kMaxSnps = 1u << 22;       // 4M SNPs (paper max: 40k)
constexpr std::uint64_t kMaxSamples = 1u << 22;    // 4M samples
constexpr std::uint64_t kMaxEntries = 1ull << 29;  // 512M genotypes (~512 MB)

void check_shape(std::uint64_t snps, std::uint64_t samples) {
  if (snps == 0 || samples == 0) fail("zero-sized dataset in header");
  if (snps > kMaxSnps || samples > kMaxSamples ||
      snps * samples > kMaxEntries) {
    fail("implausible dataset shape in header (" + std::to_string(snps) +
         " x " + std::to_string(samples) + ")");
  }
}

std::ofstream open_out(const std::string& path, std::ios_base::openmode mode) {
  std::ofstream os(path, mode);
  if (!os) fail("cannot open '" + path + "' for writing");
  return os;
}

std::ifstream open_in(const std::string& path, std::ios_base::openmode mode) {
  std::ifstream is(path, mode);
  if (!is) fail("cannot open '" + path + "' for reading");
  return is;
}

void write_u64(std::ostream& os, std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  os.write(reinterpret_cast<const char*>(buf), 8);
}

std::uint64_t read_u64(std::istream& is) {
  unsigned char buf[8];
  is.read(reinterpret_cast<char*>(buf), 8);
  if (!is) fail("truncated binary header");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{buf[i]} << (8 * i);
  return v;
}

}  // namespace

void write_text(std::ostream& os, const GenotypeMatrix& d) {
  os << kTextMagic << ' ' << d.num_snps() << ' ' << d.num_samples() << '\n';
  std::string line(d.num_samples(), '0');
  for (std::size_t m = 0; m < d.num_snps(); ++m) {
    for (std::size_t j = 0; j < d.num_samples(); ++j) {
      line[j] = static_cast<char>('0' + d.at(m, j));
    }
    os << line << '\n';
  }
  for (std::size_t j = 0; j < d.num_samples(); ++j) {
    line[j] = static_cast<char>('0' + d.phenotype(j));
  }
  os << line << '\n';
  if (!os) fail("write failure (text)");
}

GenotypeMatrix read_text(std::istream& is) {
  std::string magic;
  std::size_t snps = 0, samples = 0;
  if (!(is >> magic >> snps >> samples)) fail("malformed text header");
  if (magic != kTextMagic) fail("bad magic, expected TRIGEN1");
  check_shape(snps, samples);
  std::string line;
  std::getline(is, line);  // consume the rest of the header line

  GenotypeMatrix d(snps, samples);
  for (std::size_t m = 0; m < snps; ++m) {
    if (!std::getline(is, line)) fail("truncated at SNP line " + std::to_string(m + 1));
    if (line.size() != samples) {
      fail("SNP line " + std::to_string(m + 1) + " has " +
           std::to_string(line.size()) + " chars, expected " +
           std::to_string(samples));
    }
    for (std::size_t j = 0; j < samples; ++j) {
      const char ch = line[j];
      if (ch < '0' || ch > '2') {
        fail("invalid genotype '" + std::string(1, ch) + "' at SNP line " +
             std::to_string(m + 1));
      }
      d.set(m, j, static_cast<Genotype>(ch - '0'));
    }
  }
  if (!std::getline(is, line)) fail("missing phenotype line");
  if (line.size() != samples) fail("phenotype line length mismatch");
  for (std::size_t j = 0; j < samples; ++j) {
    const char ch = line[j];
    if (ch != '0' && ch != '1') {
      fail("invalid phenotype '" + std::string(1, ch) + "'");
    }
    d.set_phenotype(j, static_cast<Phenotype>(ch - '0'));
  }
  return d;
}

void write_text_file(const std::string& path, const GenotypeMatrix& d) {
  auto os = open_out(path, std::ios_base::out);
  write_text(os, d);
}

GenotypeMatrix read_text_file(const std::string& path) {
  auto is = open_in(path, std::ios_base::in);
  return read_text(is);
}

void write_binary(std::ostream& os, const GenotypeMatrix& d) {
  os.write(kBinMagic, sizeof(kBinMagic) - 1);
  write_u64(os, d.num_snps());
  write_u64(os, d.num_samples());
  for (std::size_t m = 0; m < d.num_snps(); ++m) {
    const auto row = d.snp_row(m);
    os.write(reinterpret_cast<const char*>(row.data()),
             static_cast<std::streamsize>(row.size()));
  }
  const auto ph = d.phenotypes();
  os.write(reinterpret_cast<const char*>(ph.data()),
           static_cast<std::streamsize>(ph.size()));
  if (!os) fail("write failure (binary)");
}

GenotypeMatrix read_binary(std::istream& is) {
  char magic[sizeof(kBinMagic) - 1];
  is.read(magic, sizeof magic);
  if (!is || std::memcmp(magic, kBinMagic, sizeof magic) != 0) {
    fail("bad binary magic");
  }
  const std::uint64_t snps = read_u64(is);
  const std::uint64_t samples = read_u64(is);
  check_shape(snps, samples);

  GenotypeMatrix d(snps, samples);
  std::vector<std::uint8_t> row(samples);
  for (std::size_t m = 0; m < snps; ++m) {
    is.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(samples));
    if (!is) fail("truncated genotype payload");
    for (std::size_t j = 0; j < samples; ++j) {
      if (row[j] > 2) fail("invalid genotype byte in binary payload");
      d.set(m, j, row[j]);
    }
  }
  is.read(reinterpret_cast<char*>(row.data()),
          static_cast<std::streamsize>(samples));
  if (!is) fail("truncated phenotype payload");
  for (std::size_t j = 0; j < samples; ++j) {
    if (row[j] > 1) fail("invalid phenotype byte in binary payload");
    d.set_phenotype(j, row[j]);
  }
  return d;
}

void write_binary_file(const std::string& path, const GenotypeMatrix& d) {
  auto os = open_out(path, std::ios_base::binary);
  write_binary(os, d);
}

GenotypeMatrix read_binary_file(const std::string& path) {
  auto is = open_in(path, std::ios_base::binary);
  return read_binary(is);
}

}  // namespace trigen::dataset
