#include "trigen/dataset/bitplanes.hpp"

#include <stdexcept>

namespace trigen::dataset {
namespace {

/// Per-class sample index: maps sample j to its position inside the class
/// plane (controls keep their relative order, as do cases).
struct ClassIndex {
  std::array<std::vector<std::size_t>, 2> members;

  explicit ClassIndex(const GenotypeMatrix& d) {
    for (std::size_t j = 0; j < d.num_samples(); ++j) {
      members[d.phenotype(j)].push_back(j);
    }
  }
};

void set_bit(Word* plane, std::size_t pos) {
  plane[pos / kWordBits] |= Word{1} << (pos % kWordBits);
}

}  // namespace

BitPlanesV1 BitPlanesV1::build(const GenotypeMatrix& d) {
  BitPlanesV1 out;
  out.num_snps_ = d.num_snps();
  out.num_samples_ = d.num_samples();
  out.words_ = padded_words_for(d.num_samples());
  out.planes_.assign(out.num_snps_ * 3 * out.words_, 0);
  out.pheno_.assign(out.words_, 0);

  for (std::size_t j = 0; j < d.num_samples(); ++j) {
    if (d.phenotype(j) == 1) set_bit(out.pheno_.data(), j);
  }
  for (std::size_t m = 0; m < d.num_snps(); ++m) {
    for (std::size_t j = 0; j < d.num_samples(); ++j) {
      const int g = d.at(m, j);
      Word* plane = out.planes_.data() +
                    (m * 3 + static_cast<std::size_t>(g)) * out.words_;
      set_bit(plane, j);
    }
  }
  return out;
}

PhenoSplitPlanes PhenoSplitPlanes::build(const GenotypeMatrix& d) {
  PhenoSplitPlanes out;
  out.num_snps_ = d.num_snps();
  const ClassIndex idx(d);
  for (int c = 0; c < 2; ++c) {
    const auto cs = static_cast<std::size_t>(c);
    out.samples_[cs] = idx.members[cs].size();
    out.words_[cs] = padded_words_for(out.samples_[cs]);
    out.planes_[cs].assign(out.num_snps_ * 2 * out.words_[cs], 0);
  }
  for (std::size_t m = 0; m < d.num_snps(); ++m) {
    for (int c = 0; c < 2; ++c) {
      const auto cs = static_cast<std::size_t>(c);
      for (std::size_t p = 0; p < idx.members[cs].size(); ++p) {
        const int g = d.at(m, idx.members[cs][p]);
        if (g <= 1) {  // genotype 2 is implicit: NOR(plane0, plane1)
          Word* plane = out.planes_[cs].data() +
                        (m * 2 + static_cast<std::size_t>(g)) * out.words_[cs];
          set_bit(plane, p);
        }
      }
    }
  }
  return out;
}

PhenoSplitPlanes PhenoSplitPlanes::build_combined(const GenotypeMatrix& d) {
  PhenoSplitPlanes out;
  out.num_snps_ = d.num_snps();
  out.samples_[0] = d.num_samples();
  out.words_[0] = padded_words_for(out.samples_[0]);
  out.planes_[0].assign(out.num_snps_ * 2 * out.words_[0], 0);
  // Class 1 stays empty: the batched engines split per partition via label
  // planes instead of a baked-in phenotype.
  for (std::size_t m = 0; m < d.num_snps(); ++m) {
    for (std::size_t j = 0; j < d.num_samples(); ++j) {
      const int g = d.at(m, j);
      if (g <= 1) {  // genotype 2 is implicit: NOR(plane0, plane1)
        Word* plane = out.planes_[0].data() +
                      (m * 2 + static_cast<std::size_t>(g)) * out.words_[0];
        set_bit(plane, j);
      }
    }
  }
  return out;
}

PhenotypeBatch PhenotypeBatch::build(
    std::size_t num_samples,
    const std::vector<std::vector<Phenotype>>& partitions) {
  if (partitions.empty())
    throw std::invalid_argument("PhenotypeBatch: empty batch");
  PhenotypeBatch out;
  out.num_samples_ = num_samples;
  out.words_ = padded_words_for(num_samples);
  // Round the lane count to a full vector so every word-row is aligned and
  // a kernel's widest label load never crosses into the next row.
  out.stride_ =
      (partitions.size() + kWordsPerVector - 1) / kWordsPerVector *
      kWordsPerVector;
  out.cases_.resize(partitions.size());
  out.labels_.assign(out.words_ * out.stride_, 0);
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    const auto& labels = partitions[p];
    if (labels.size() != num_samples)
      throw std::invalid_argument("PhenotypeBatch: partition size mismatch");
    std::size_t cases = 0;
    for (std::size_t j = 0; j < num_samples; ++j) {
      if (labels[j] > 1)
        throw std::invalid_argument("PhenotypeBatch: label out of range");
      if (labels[j] == 1) {
        out.labels_[(j / kWordBits) * out.stride_ + p] |=
            Word{1} << (j % kWordBits);
        ++cases;
      }
    }
    out.cases_[p] = cases;
  }
  return out;
}

TransposedPlanes TransposedPlanes::build(const GenotypeMatrix& d) {
  TransposedPlanes out;
  out.num_snps_ = d.num_snps();
  const ClassIndex idx(d);
  for (int c = 0; c < 2; ++c) {
    const auto cs = static_cast<std::size_t>(c);
    out.samples_[cs] = idx.members[cs].size();
    out.words_[cs] = padded_words_for(out.samples_[cs]);
    out.planes_[cs].assign(out.words_[cs] * out.num_snps_ * 2, 0);
  }
  for (std::size_t m = 0; m < d.num_snps(); ++m) {
    for (int c = 0; c < 2; ++c) {
      const auto cs = static_cast<std::size_t>(c);
      for (std::size_t p = 0; p < idx.members[cs].size(); ++p) {
        const int g = d.at(m, idx.members[cs][p]);
        if (g <= 1) {
          const std::size_t w = p / kWordBits;
          const std::size_t bit = p % kWordBits;
          out.planes_[cs][(w * out.num_snps_ + m) * 2 +
                          static_cast<std::size_t>(g)] |= Word{1} << bit;
        }
      }
    }
  }
  return out;
}

TiledPlanes TiledPlanes::build(const GenotypeMatrix& d, std::size_t tile) {
  if (tile == 0) {
    throw std::invalid_argument("TiledPlanes: tile size must be non-zero");
  }
  TiledPlanes out;
  out.num_snps_ = d.num_snps();
  out.tile_ = tile;
  out.padded_snps_ = (d.num_snps() + tile - 1) / tile * tile;
  const ClassIndex idx(d);
  for (int c = 0; c < 2; ++c) {
    const auto cs = static_cast<std::size_t>(c);
    out.samples_[cs] = idx.members[cs].size();
    out.words_[cs] = padded_words_for(out.samples_[cs]);
    out.planes_[cs].assign(
        (out.padded_snps_ / tile) * out.words_[cs] * tile * 2, 0);
  }
  for (std::size_t m = 0; m < d.num_snps(); ++m) {
    const std::size_t tile_idx = m / tile;
    const std::size_t in_tile = m % tile;
    for (int c = 0; c < 2; ++c) {
      const auto cs = static_cast<std::size_t>(c);
      for (std::size_t p = 0; p < idx.members[cs].size(); ++p) {
        const int g = d.at(m, idx.members[cs][p]);
        if (g <= 1) {
          const std::size_t w = p / kWordBits;
          const std::size_t bit = p % kWordBits;
          const std::size_t index =
              (((tile_idx * out.words_[cs]) + w) * tile + in_tile) * 2 +
              static_cast<std::size_t>(g);
          out.planes_[cs][index] |= Word{1} << bit;
        }
      }
    }
  }
  return out;
}

}  // namespace trigen::dataset
