#include "trigen/scoring/mutual_information.hpp"

#include <cmath>

namespace trigen::scoring {

double MutualInformation::operator()(const ContingencyTable& t) const {
  const double n = static_cast<double>(t.total());
  if (n == 0.0) return 0.0;

  // H(C): class entropy.
  double h_c = 0.0;
  for (int cls = 0; cls < 2; ++cls) {
    const double p = static_cast<double>(t.class_total(cls)) / n;
    if (p > 0.0) h_c -= p * std::log(p);
  }

  // H(G) and H(G, C) in one pass over the 27 cells.
  double h_g = 0.0;
  double h_gc = 0.0;
  for (int i = 0; i < kCells; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const double joint0 = static_cast<double>(t.counts[0][idx]) / n;
    const double joint1 = static_cast<double>(t.counts[1][idx]) / n;
    const double marg = joint0 + joint1;
    if (marg > 0.0) h_g -= marg * std::log(marg);
    if (joint0 > 0.0) h_gc -= joint0 * std::log(joint0);
    if (joint1 > 0.0) h_gc -= joint1 * std::log(joint1);
  }
  return h_g + h_c - h_gc;
}

}  // namespace trigen::scoring
