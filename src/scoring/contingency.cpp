#include "trigen/scoring/contingency.hpp"

#include <stdexcept>

namespace trigen::scoring {

ContingencyTable reference_contingency(const dataset::GenotypeMatrix& d,
                                       std::size_t x, std::size_t y,
                                       std::size_t z) {
  if (x >= d.num_snps() || y >= d.num_snps() || z >= d.num_snps()) {
    throw std::out_of_range("reference_contingency: SNP index out of range");
  }
  ContingencyTable t;
  for (std::size_t j = 0; j < d.num_samples(); ++j) {
    const int cell = cell_index(d.at(x, j), d.at(y, j), d.at(z, j));
    ++t.counts[d.phenotype(j)][static_cast<std::size_t>(cell)];
  }
  return t;
}

}  // namespace trigen::scoring
