#include "trigen/scoring/k2.hpp"

#include <cmath>

namespace trigen::scoring {

LogFactorialTable::LogFactorialTable(std::uint32_t max_n) {
  table_.resize(static_cast<std::size_t>(max_n) + 1);
  table_[0] = 0.0;  // ln(0!) = 0
  double acc = 0.0;
  for (std::uint32_t n = 1; n <= max_n; ++n) {
    acc += std::log(static_cast<double>(n));
    table_[n] = acc;
  }
}

double LogFactorialTable::lgamma_fallback(std::uint32_t n) {
  return std::lgamma(static_cast<double>(n) + 1.0);
}

}  // namespace trigen::scoring
