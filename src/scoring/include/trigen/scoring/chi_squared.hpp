#pragma once
/// \file chi_squared.hpp
/// \brief Pearson chi-squared association test over the 27x2 table.
///
/// Not used by the paper's headline results but a standard alternative
/// objective in the epistasis literature (e.g. BOOST); provided as an
/// extension so downstream users can swap objectives.

#include "trigen/scoring/contingency.hpp"

namespace trigen::scoring {

class ChiSquared {
 public:
  /// Higher is better (stronger association).
  static constexpr bool kLowerIsBetter = false;

  /// Pearson X^2 statistic; cells with zero expected count are skipped.
  double operator()(const ContingencyTable& t) const;
};

}  // namespace trigen::scoring
