#pragma once
/// \file generic.hpp
/// \brief Order-agnostic scoring primitives.
///
/// The paper's objective functions are defined for any interaction order k
/// (Eq. 1 sums over I = 3^k genotype combinations).  These span-based
/// implementations back both the 27-cell triplet scorers and the pairwise
/// (9-cell) extension module.

#include <cmath>
#include <span>

#include "trigen/scoring/k2.hpp"

namespace trigen::scoring {

/// K2 score (Eq. 1) over parallel control/case cell arrays of any length.
/// Lower is better.
inline double k2_score_cells(const LogFactorialTable& logfact,
                             std::span<const std::uint32_t> controls,
                             std::span<const std::uint32_t> cases) {
  double score = 0.0;
  for (std::size_t i = 0; i < controls.size(); ++i) {
    score += logfact(controls[i] + cases[i] + 1) - logfact(controls[i]) -
             logfact(cases[i]);
  }
  return score;
}

/// Plug-in mutual information I(G; C) in nats over cell arrays of any
/// length.  Higher is better.
inline double mutual_information_cells(std::span<const std::uint32_t> controls,
                                       std::span<const std::uint32_t> cases) {
  double n = 0.0, n0 = 0.0, n1 = 0.0;
  for (std::size_t i = 0; i < controls.size(); ++i) {
    n0 += controls[i];
    n1 += cases[i];
  }
  n = n0 + n1;
  if (n == 0.0) return 0.0;

  double h_c = 0.0;
  if (n0 > 0.0) h_c -= n0 / n * std::log(n0 / n);
  if (n1 > 0.0) h_c -= n1 / n * std::log(n1 / n);

  double h_g = 0.0, h_gc = 0.0;
  for (std::size_t i = 0; i < controls.size(); ++i) {
    const double j0 = controls[i] / n;
    const double j1 = cases[i] / n;
    const double marg = j0 + j1;
    if (marg > 0.0) h_g -= marg * std::log(marg);
    if (j0 > 0.0) h_gc -= j0 * std::log(j0);
    if (j1 > 0.0) h_gc -= j1 * std::log(j1);
  }
  return h_g + h_c - h_gc;
}

/// Pearson X^2 over cell arrays of any length.  Higher is better.
inline double chi_squared_cells(std::span<const std::uint32_t> controls,
                                std::span<const std::uint32_t> cases) {
  double n0 = 0.0, n1 = 0.0;
  for (std::size_t i = 0; i < controls.size(); ++i) {
    n0 += controls[i];
    n1 += cases[i];
  }
  const double n = n0 + n1;
  if (n == 0.0) return 0.0;
  double stat = 0.0;
  for (std::size_t i = 0; i < controls.size(); ++i) {
    const double row = static_cast<double>(controls[i]) + cases[i];
    if (row == 0.0) continue;
    const double e0 = row * n0 / n;
    const double e1 = row * n1 / n;
    if (e0 > 0.0) {
      const double d = controls[i] - e0;
      stat += d * d / e0;
    }
    if (e1 > 0.0) {
      const double d = cases[i] - e1;
      stat += d * d / e1;
    }
  }
  return stat;
}

}  // namespace trigen::scoring
