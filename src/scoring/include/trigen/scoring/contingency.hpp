#pragma once
/// \file contingency.hpp
/// \brief The 27x2 frequency table at the heart of 3-way epistasis (Fig. 1).
///
/// For an evaluated SNP triplet, cell (i, j) holds the number of samples of
/// phenotype class j (0 = control, 1 = case) whose genotype combination is
/// i = g_x * 9 + g_y * 3 + g_z.  Every kernel in the repository — CPU V1-V4,
/// the GPU-simulator kernels, and the MPI3SNP-style baseline — produces this
/// exact structure, which is what makes them cross-checkable bit-for-bit.

#include <array>
#include <cstdint>

#include "trigen/dataset/genotype_matrix.hpp"

namespace trigen::scoring {

/// Number of genotype combinations for a SNP triplet: 3^3.
inline constexpr int kCells = 27;

/// Cell index for a genotype combination.
constexpr int cell_index(int gx, int gy, int gz) {
  return gx * 9 + gy * 3 + gz;
}

/// 27x2 frequency table.
struct ContingencyTable {
  /// counts[j][i]: samples of class j with genotype combination i.
  std::array<std::array<std::uint32_t, kCells>, 2> counts{};

  std::uint32_t at(int gx, int gy, int gz, int cls) const {
    return counts[static_cast<std::size_t>(cls)]
                 [static_cast<std::size_t>(cell_index(gx, gy, gz))];
  }

  /// Total samples of class `cls` accounted for.
  std::uint32_t class_total(int cls) const {
    std::uint32_t t = 0;
    for (const auto v : counts[static_cast<std::size_t>(cls)]) t += v;
    return t;
  }

  /// Total samples accounted for (both classes).
  std::uint32_t total() const { return class_total(0) + class_total(1); }

  friend bool operator==(const ContingencyTable&,
                         const ContingencyTable&) = default;
};

/// Ground-truth builder: counts genotype combinations directly from the
/// unencoded dataset with a per-sample loop.  O(N) per triplet — used only
/// by tests and the quickstart, never by the kernels.
ContingencyTable reference_contingency(const dataset::GenotypeMatrix& d,
                                       std::size_t x, std::size_t y,
                                       std::size_t z);

// ---------------------------------------------------------------------------
// Second order: the 9x2 table of a SNP pair
// ---------------------------------------------------------------------------

/// Number of genotype combinations for a SNP pair: 3^2.
inline constexpr int kPairCells = 9;

/// Cell index for a pair genotype combination.
constexpr int pair_cell_index(int gx, int gy) { return gx * 3 + gy; }

/// 9x2 frequency table (the k=2 counterpart of ContingencyTable, consumed
/// by the pairwise detector and the order-generic scorers in generic.hpp).
struct PairContingencyTable {
  /// counts[j][i]: samples of class j with genotype combination i.
  std::array<std::array<std::uint32_t, kPairCells>, 2> counts{};

  std::uint32_t at(int gx, int gy, int cls) const {
    return counts[static_cast<std::size_t>(cls)]
                 [static_cast<std::size_t>(pair_cell_index(gx, gy))];
  }

  std::uint32_t class_total(int cls) const {
    std::uint32_t t = 0;
    for (const auto v : counts[static_cast<std::size_t>(cls)]) t += v;
    return t;
  }

  std::uint32_t total() const { return class_total(0) + class_total(1); }

  friend bool operator==(const PairContingencyTable&,
                         const PairContingencyTable&) = default;
};

}  // namespace trigen::scoring
