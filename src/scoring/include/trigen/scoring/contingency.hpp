#pragma once
/// \file contingency.hpp
/// \brief The 3^k x 2 frequency table at the heart of k-way epistasis
/// (Fig. 1).
///
/// For an evaluated SNP combination, cell (i, j) holds the number of samples
/// of phenotype class j (0 = control, 1 = case) whose genotype combination
/// is i = sum g_l * 3^(k-1-l).  Every kernel in the repository — CPU V1-V5,
/// the GPU-simulator kernels, and the MPI3SNP-style baseline — produces this
/// exact structure, which is what makes them cross-checkable bit-for-bit.
/// The classic 27x2 triplet table and the 9x2 pair table are the K = 3 and
/// K = 2 instantiations of one template.

#include <array>
#include <cstdint>

#include "trigen/dataset/genotype_matrix.hpp"

namespace trigen::scoring {

/// Number of genotype combinations at interaction order `k`: 3^k.
constexpr std::size_t num_cells(unsigned k) {
  std::size_t v = 1;
  for (unsigned i = 0; i < k; ++i) v *= 3;
  return v;
}

/// Number of genotype combinations for a SNP triplet: 3^3.
inline constexpr int kCells = 27;

/// Cell index for a triplet genotype combination.
constexpr int cell_index(int gx, int gy, int gz) {
  return gx * 9 + gy * 3 + gz;
}

/// Number of genotype combinations for a SNP pair: 3^2.
inline constexpr int kPairCells = 9;

/// Cell index for a pair genotype combination.
constexpr int pair_cell_index(int gx, int gy) { return gx * 3 + gy; }

/// 3^K x 2 frequency table of one order-K SNP combination.
template <unsigned K>
struct BasicContingencyTable {
  static constexpr std::size_t kNumCells = num_cells(K);

  /// counts[j][i]: samples of class j with genotype combination i.
  std::array<std::array<std::uint32_t, kNumCells>, 2> counts{};

  /// at(g_0, ..., g_{K-1}, cls): count of class `cls` samples whose
  /// genotype combination is (g_0, ..., g_{K-1}).
  template <typename... A>
    requires(sizeof...(A) == K + 1)
  std::uint32_t at(A... args) const {
    const std::array<int, K + 1> a{static_cast<int>(args)...};
    std::size_t cell = 0;
    for (unsigned i = 0; i < K; ++i) {
      cell = cell * 3 + static_cast<std::size_t>(a[i]);
    }
    return counts[static_cast<std::size_t>(a[K])][cell];
  }

  /// Total samples of class `cls` accounted for.
  std::uint32_t class_total(int cls) const {
    std::uint32_t t = 0;
    for (const auto v : counts[static_cast<std::size_t>(cls)]) t += v;
    return t;
  }

  /// Total samples accounted for (both classes).
  std::uint32_t total() const { return class_total(0) + class_total(1); }

  friend bool operator==(const BasicContingencyTable&,
                         const BasicContingencyTable&) = default;
};

/// 27x2 frequency table of a SNP triplet.
using ContingencyTable = BasicContingencyTable<3>;

/// 9x2 frequency table of a SNP pair.
using PairContingencyTable = BasicContingencyTable<2>;

/// Ground-truth builder: counts genotype combinations directly from the
/// unencoded dataset with a per-sample loop.  O(N) per triplet — used only
/// by tests and the quickstart, never by the kernels.
ContingencyTable reference_contingency(const dataset::GenotypeMatrix& d,
                                       std::size_t x, std::size_t y,
                                       std::size_t z);

/// Order-generic ground truth: per-sample counting over an arbitrary strictly
/// increasing SNP index set.  O(N * k) per combination — tests only.
template <unsigned K>
BasicContingencyTable<K> reference_contingency_k(
    const dataset::GenotypeMatrix& d, const std::array<std::uint32_t, K>& snps) {
  BasicContingencyTable<K> t;
  for (std::size_t j = 0; j < d.num_samples(); ++j) {
    std::size_t cell = 0;
    for (unsigned i = 0; i < K; ++i) {
      cell = cell * 3 + static_cast<std::size_t>(d.at(snps[i], j));
    }
    ++t.counts[d.phenotype(j)][cell];
  }
  return t;
}

}  // namespace trigen::scoring
