#pragma once
/// \file mutual_information.hpp
/// \brief Mutual information objective — the score MPI3SNP uses.
///
/// I(G; C) = H(G) + H(C) - H(G, C) over the 27-cell genotype-combination
/// variable G and the binary class variable C, estimated from the
/// contingency table with maximum-likelihood (plug-in) probabilities.
/// MPI3SNP ranks triplets by *highest* mutual information; the baseline
/// engine uses this scorer so Table III compares like against like.

#include "trigen/scoring/contingency.hpp"

namespace trigen::scoring {

class MutualInformation {
 public:
  /// Higher is better.
  static constexpr bool kLowerIsBetter = false;

  /// Plug-in MI in nats; 0 for empty tables.
  double operator()(const ContingencyTable& t) const;
};

}  // namespace trigen::scoring
