#pragma once
/// \file k2.hpp
/// \brief Bayesian K2 score (paper Eq. 1) — the paper's objective function.
///
/// For a triplet with contingency table r:
///
///   K2 = sum_i [ log((r_i + 1)!) - sum_j log(r_ij!) ]
///
/// with i over the 27 genotype combinations, j over the two classes, and
/// r_i = r_i0 + r_i1.  The *lowest* K2 score identifies the most likely
/// epistatic combination.  The log-factorials come from a precomputed table
/// covering every count the dataset can produce, so scoring a table is 27
/// additions of table lookups — the "residual ~4% of runtime" the paper
/// reports for get_score.

#include <cstdint>
#include <vector>

#include "trigen/scoring/contingency.hpp"

namespace trigen::scoring {

/// Precomputed ln(n!) for n in [0, max_n].
class LogFactorialTable {
 public:
  /// Builds a table covering factorials up to `max_n` inclusive.
  explicit LogFactorialTable(std::uint32_t max_n);

  /// ln(n!).  Falls back to lgamma for n beyond the table (exact but slow).
  double operator()(std::uint32_t n) const {
    if (n < table_.size()) return table_[n];
    return lgamma_fallback(n);
  }

  std::uint32_t max_n() const {
    return static_cast<std::uint32_t>(table_.size() - 1);
  }

 private:
  static double lgamma_fallback(std::uint32_t n);
  std::vector<double> table_;
};

/// K2 scorer bound to a log-factorial table sized for N samples.
class K2Score {
 public:
  /// `num_samples` is the dataset's N: the largest count any cell (or class
  /// marginal + 1) can reach.
  explicit K2Score(std::uint32_t num_samples)
      : logfact_(num_samples + 1) {}

  /// Lower is better.
  static constexpr bool kLowerIsBetter = true;

  double operator()(const ContingencyTable& t) const {
    double score = 0.0;
    for (int i = 0; i < kCells; ++i) {
      const std::uint32_t r0 = t.counts[0][static_cast<std::size_t>(i)];
      const std::uint32_t r1 = t.counts[1][static_cast<std::size_t>(i)];
      score += logfact_(r0 + r1 + 1) - logfact_(r0) - logfact_(r1);
    }
    return score;
  }

  const LogFactorialTable& table() const { return logfact_; }

 private:
  LogFactorialTable logfact_;
};

}  // namespace trigen::scoring
