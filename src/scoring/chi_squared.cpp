#include "trigen/scoring/chi_squared.hpp"

namespace trigen::scoring {

double ChiSquared::operator()(const ContingencyTable& t) const {
  const double n = static_cast<double>(t.total());
  if (n == 0.0) return 0.0;
  const double n0 = static_cast<double>(t.class_total(0));
  const double n1 = static_cast<double>(t.class_total(1));

  double stat = 0.0;
  for (int i = 0; i < kCells; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const double row =
        static_cast<double>(t.counts[0][idx]) + static_cast<double>(t.counts[1][idx]);
    if (row == 0.0) continue;
    const double e0 = row * n0 / n;
    const double e1 = row * n1 / n;
    if (e0 > 0.0) {
      const double d0 = static_cast<double>(t.counts[0][idx]) - e0;
      stat += d0 * d0 / e0;
    }
    if (e1 > 0.0) {
      const double d1 = static_cast<double>(t.counts[1][idx]) - e1;
      stat += d1 * d1 / e1;
    }
  }
  return stat;
}

}  // namespace trigen::scoring
