#include "trigen/hetero/coordinator.hpp"

#include <algorithm>
#include <stdexcept>

#include "trigen/common/stopwatch.hpp"
#include "trigen/core/tiling.hpp"

namespace trigen::hetero {

HeteroEstimate estimate_hetero(double cpu_eps, double gpu_eps) {
  HeteroEstimate e;
  e.cpu_eps = cpu_eps;
  e.gpu_eps = gpu_eps;
  e.combined_eps = cpu_eps + gpu_eps;
  e.cpu_share = e.combined_eps > 0 ? cpu_eps / e.combined_eps : 0.0;
  e.speedup_vs_gpu = gpu_eps > 0 ? e.combined_eps / gpu_eps : 1.0;
  return e;
}

struct HeteroCoordinator::Impl {
  core::Detector detector;
  gpusim::GpuSimulator gpu;
  std::size_t num_snps;
  std::size_t num_samples;

  Impl(const dataset::GenotypeMatrix& d, gpusim::GpuDeviceSpec spec)
      : detector(d), gpu(std::move(spec), d), num_snps(d.num_snps()),
        num_samples(d.num_samples()) {}
};

HeteroCoordinator::HeteroCoordinator(const dataset::GenotypeMatrix& d,
                                     gpusim::GpuDeviceSpec gpu)
    : impl_(std::make_unique<Impl>(d, std::move(gpu))) {}

HeteroCoordinator::~HeteroCoordinator() = default;

HeteroResult HeteroCoordinator::run(const HeteroOptions& options) const {
  if (options.cpu_share > 1.0) {
    throw std::invalid_argument("HeteroOptions::cpu_share must be <= 1");
  }
  const std::uint64_t total = combinatorics::num_triplets(impl_->num_snps);

  // The CPU side runs at full blocked speed on a partial rank range — the
  // range-aware blocked engine is what makes the co-run competitive (§V-D
  // only pays off when the CPU is within a small factor of the GPU).  The
  // engine defaults to the pair-plane-cached V5 rung; its autotuned tiling
  // budgets L1 for the cache.
  core::DetectorOptions cpu_base;
  cpu_base.version = options.cpu_version;
  // Resolve (ISA, tiling) once — via the tuning profile when one is wired
  // in, else the analytic model — and pin it, so the calibration probe
  // below measures exactly the configuration the real partial scan runs.
  std::optional<core::KernelConfigChoice> tuned;
  if (options.config) {
    tuned = options.config(core::KernelConfigRequest{
        core::scan_kernel_family(3, cpu_base.version, false), 3,
        impl_->num_samples, 0});
    if (tuned && !core::kernel_available(tuned->isa)) tuned.reset();
  }
  cpu_base.isa = tuned ? tuned->isa : core::best_kernel_isa();
  cpu_base.isa_auto = false;
  cpu_base.objective = options.objective;
  cpu_base.threads = options.cpu_threads;
  cpu_base.tiling =
      tuned ? tuned->tiling
            : core::autotune_tiling(
                  core::detect_l1_config(),
                  core::kernel_vector_words(cpu_base.isa),
                  cpu_base.version == core::CpuVersion::kV5PairCache);

  HeteroResult result;
  result.cpu_version = cpu_base.version;
  result.cpu_isa_used = cpu_base.isa;

  double share = options.cpu_share;
  if (share < 0.0) {
    // Calibrate: measure the CPU on a small prefix, model the GPU, and
    // split so both sides finish together.  The prefix is z-aligned to the
    // tiling: [0, C(z*,3)) with z* a multiple of B_S is an exact union of
    // whole block triples, so the blocked probe spends no kernel work on
    // out-of-range triplets and elements/s reflects true V4 throughput.
    const std::uint64_t target =
        std::max<std::uint64_t>(1, std::min<std::uint64_t>(total / 10, 2000));
    const std::uint64_t bs = cpu_base.tiling.bs;
    std::uint64_t z_star = 3;
    while (combinatorics::n_choose_k(z_star, 3) < target) ++z_star;
    z_star = std::min<std::uint64_t>((z_star + bs - 1) / bs * bs,
                                     impl_->num_snps);
    const std::uint64_t sample = std::max<std::uint64_t>(
        1, std::min(combinatorics::n_choose_k(z_star, 3), total));
    core::DetectorOptions probe = cpu_base;
    probe.range = {0, sample};
    const double cpu_eps =
        impl_->detector.run(probe).elements_per_second();
    result.cpu_calibrated_eps = cpu_eps;

    gpusim::GpuRunOptions gprobe;
    gprobe.version = options.gpu_version;
    gprobe.launch = options.launch;
    gprobe.range = {0, std::max<std::uint64_t>(1, total / 10)};
    const double gpu_eps =
        impl_->gpu.run(gprobe).cost.elements_per_second;
    share = estimate_hetero(cpu_eps, gpu_eps).cpu_share;
  }

  const auto cpu_count = static_cast<std::uint64_t>(
      static_cast<double>(total) * std::clamp(share, 0.0, 1.0));

  result.cpu_share = share;
  result.cpu_triplets = cpu_count;
  result.gpu_triplets = total - cpu_count;

  core::TopK merged(options.top_k);

  if (cpu_count > 0) {
    core::DetectorOptions copt = cpu_base;
    copt.top_k = options.top_k;
    copt.range = {0, cpu_count};
    const core::DetectionResult r = impl_->detector.run(copt);
    result.cpu_seconds = r.seconds;
    result.cpu_isa_used = r.isa_used;
    for (const auto& s : r.best) merged.push(s);
  }
  if (cpu_count < total) {
    gpusim::GpuRunOptions gopt;
    gopt.version = options.gpu_version;
    gopt.objective = options.objective;
    gopt.launch = options.launch;
    gopt.top_k = options.top_k;
    gopt.range = {cpu_count, total};
    const gpusim::GpuRunResult r = impl_->gpu.run(gopt);
    result.gpu_sim_seconds = r.cost.seconds;
    for (const auto& s : r.best) merged.push(s);
  }
  result.overlap_seconds = std::max(result.cpu_seconds, result.gpu_sim_seconds);
  result.best = merged.sorted();
  return result;
}

}  // namespace trigen::hetero
