#include "trigen/hetero/coordinator.hpp"

#include <algorithm>
#include <stdexcept>

#include "trigen/common/stopwatch.hpp"

namespace trigen::hetero {

HeteroEstimate estimate_hetero(double cpu_eps, double gpu_eps) {
  HeteroEstimate e;
  e.cpu_eps = cpu_eps;
  e.gpu_eps = gpu_eps;
  e.combined_eps = cpu_eps + gpu_eps;
  e.cpu_share = e.combined_eps > 0 ? cpu_eps / e.combined_eps : 0.0;
  e.speedup_vs_gpu = gpu_eps > 0 ? e.combined_eps / gpu_eps : 1.0;
  return e;
}

struct HeteroCoordinator::Impl {
  core::Detector detector;
  gpusim::GpuSimulator gpu;
  std::size_t num_snps;
  std::size_t num_samples;

  Impl(const dataset::GenotypeMatrix& d, gpusim::GpuDeviceSpec spec)
      : detector(d), gpu(std::move(spec), d), num_snps(d.num_snps()),
        num_samples(d.num_samples()) {}
};

HeteroCoordinator::HeteroCoordinator(const dataset::GenotypeMatrix& d,
                                     gpusim::GpuDeviceSpec gpu)
    : impl_(std::make_unique<Impl>(d, std::move(gpu))) {}

HeteroCoordinator::~HeteroCoordinator() = default;

HeteroResult HeteroCoordinator::run(const HeteroOptions& options) const {
  if (options.cpu_share > 1.0) {
    throw std::invalid_argument("HeteroOptions::cpu_share must be <= 1");
  }
  const std::uint64_t total = combinatorics::num_triplets(impl_->num_snps);

  double share = options.cpu_share;
  if (share < 0.0) {
    // Calibrate: measure the CPU on a small prefix, model the GPU, and
    // split so both sides finish together.
    const std::uint64_t sample =
        std::max<std::uint64_t>(1, std::min<std::uint64_t>(total / 10, 2000));
    core::DetectorOptions probe;
    probe.version = core::CpuVersion::kV2Split;
    probe.isa = core::best_kernel_isa();
    probe.isa_auto = false;
    probe.objective = options.objective;
    probe.threads = options.cpu_threads;
    probe.range = {0, sample};
    const double cpu_eps =
        impl_->detector.run(probe).elements_per_second();

    gpusim::GpuRunOptions gprobe;
    gprobe.version = options.gpu_version;
    gprobe.launch = options.launch;
    gprobe.range = {0, std::max<std::uint64_t>(1, total / 10)};
    const double gpu_eps =
        impl_->gpu.run(gprobe).cost.elements_per_second;
    share = estimate_hetero(cpu_eps, gpu_eps).cpu_share;
  }

  const auto cpu_count = static_cast<std::uint64_t>(
      static_cast<double>(total) * std::clamp(share, 0.0, 1.0));

  HeteroResult result;
  result.cpu_share = share;
  result.cpu_triplets = cpu_count;
  result.gpu_triplets = total - cpu_count;

  core::TopK merged(options.top_k);

  if (cpu_count > 0) {
    core::DetectorOptions copt;
    copt.version = core::CpuVersion::kV2Split;
    copt.isa = core::best_kernel_isa();
    copt.isa_auto = false;
    copt.objective = options.objective;
    copt.threads = options.cpu_threads;
    copt.top_k = options.top_k;
    copt.range = {0, cpu_count};
    const core::DetectionResult r = impl_->detector.run(copt);
    result.cpu_seconds = r.seconds;
    for (const auto& s : r.best) merged.push(s);
  }
  if (cpu_count < total) {
    gpusim::GpuRunOptions gopt;
    gopt.version = options.gpu_version;
    gopt.objective = options.objective;
    gopt.launch = options.launch;
    gopt.top_k = options.top_k;
    gopt.range = {cpu_count, total};
    const gpusim::GpuRunResult r = impl_->gpu.run(gopt);
    result.gpu_sim_seconds = r.cost.seconds;
    for (const auto& s : r.best) merged.push(s);
  }
  result.overlap_seconds = std::max(result.cpu_seconds, result.gpu_sim_seconds);
  result.best = merged.sorted();
  return result;
}

}  // namespace trigen::hetero
