#pragma once
/// \file coordinator.hpp
/// \brief Heterogeneous CPU+GPU detection (paper §V-D, ref [30] style).
///
/// Splits the triplet rank space between the host CPU detector and a
/// (simulated) GPU in proportion to their throughputs, so both finish
/// together.  §V-D observes this only pays off when the CPU is within a
/// small factor of the GPU (e.g. CI3 at ~1100 Gcs/s next to a Titan RTX at
/// ~2200 adds 50%; a desktop CPU adds ~2%) — `estimate_hetero` quantifies
/// exactly that, and the projected CI3+GN1 pairing reproduces the paper's
/// "up to 3300 Giga combs x samples / s" figure.

#include <cstdint>
#include <memory>
#include <vector>

#include "trigen/core/detector.hpp"
#include "trigen/gpusim/simulator.hpp"

namespace trigen::hetero {

/// Pure-throughput composition estimate.
struct HeteroEstimate {
  double cpu_eps = 0;       ///< CPU elements/s
  double gpu_eps = 0;       ///< GPU elements/s
  double combined_eps = 0;  ///< cpu + gpu (perfect overlap)
  double cpu_share = 0;     ///< optimal fraction of ranks given to the CPU
  double speedup_vs_gpu = 1;  ///< combined / gpu-only
};

/// Optimal static split and resulting throughput for perfectly overlapped
/// devices.
HeteroEstimate estimate_hetero(double cpu_eps, double gpu_eps);

/// Options for a functional co-run.
struct HeteroOptions {
  core::Objective objective = core::Objective::kK2;
  /// Engine for the CPU share.  Defaults to the fastest rung, the
  /// pair-plane-cached blocked V5; must be a blocked version (V3/V4/V5) so
  /// the partial-range scan runs at full speed.
  core::CpuVersion cpu_version = core::CpuVersion::kV5PairCache;
  unsigned cpu_threads = 1;
  /// Fraction of the rank space handled by the CPU; negative = derive the
  /// optimal share from a calibration sample plus the GPU cost model.
  double cpu_share = -1.0;
  std::size_t top_k = 1;
  gpusim::GpuVersion gpu_version = gpusim::GpuVersion::kV4Tiled;
  gpusim::LaunchConfig launch{};
  /// Optional empirical-tuning lookup for the CPU side (see
  /// core/kernel_config.hpp).  Consulted once before calibration so probe
  /// and production scan share one pinned (ISA, tiling); a miss or unset
  /// resolver keeps the analytic model.
  core::ConfigResolver config{};
};

/// Outcome of a co-run.
struct HeteroResult {
  std::vector<core::ScoredTriplet> best;  ///< merged, best-first
  std::uint64_t cpu_triplets = 0;
  std::uint64_t gpu_triplets = 0;
  double cpu_share = 0;
  double cpu_seconds = 0;      ///< measured host time of the CPU part
  double gpu_sim_seconds = 0;  ///< modelled device time of the GPU part
  /// Simulated wall time under perfect overlap: max of the two sides.
  double overlap_seconds = 0;
  /// Engine the CPU side ran (or would run, when its share is zero): the
  /// range-partitioned blocked engine from `HeteroOptions::cpu_version`
  /// (default V5 pair-plane-cached) with the widest kernel the host
  /// supports.
  core::CpuVersion cpu_version = core::CpuVersion::kV5PairCache;
  core::KernelIsa cpu_isa_used = core::KernelIsa::kScalar;
  /// CPU elements/s measured during calibration (0 when `cpu_share` was
  /// given explicitly).
  double cpu_calibrated_eps = 0;
};

/// Coordinator bound to one dataset and one modelled GPU.
class HeteroCoordinator {
 public:
  HeteroCoordinator(const dataset::GenotypeMatrix& d,
                    gpusim::GpuDeviceSpec gpu);
  ~HeteroCoordinator();

  HeteroCoordinator(const HeteroCoordinator&) = delete;
  HeteroCoordinator& operator=(const HeteroCoordinator&) = delete;

  /// Functional co-run: CPU detector (blocked engine on a partial rank
  /// range, widest vector kernel, V5 pair-plane-cached by default) on
  /// [0, s), simulated GPU on [s, total).  Every triplet is evaluated
  /// exactly once across the two devices.
  HeteroResult run(const HeteroOptions& options = {}) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace trigen::hetero
