#include "trigen/fleet/coordinator.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <type_traits>

#ifndef _WIN32
#include <sys/stat.h>
#endif

#include "trigen/combinatorics/combinations.hpp"
#include "trigen/core/scan_csv.hpp"
#include "trigen/serve/protocol.hpp"
#include "trigen/shard/merge.hpp"
#include "trigen/shard/result_io.hpp"

namespace trigen::fleet {
namespace {

[[noreturn]] void reject(const std::string& what) {
  throw std::invalid_argument(what);
}

/// Runtime order -> compile-time instantiation (same dispatch shape as the
/// CLI and the scan server).
template <typename Fn>
void with_order(unsigned order, Fn&& fn) {
  switch (order) {
    case 2: fn(std::integral_constant<unsigned, 2>{}); return;
    case 3: fn(std::integral_constant<unsigned, 3>{}); return;
    case 4: fn(std::integral_constant<unsigned, 4>{}); return;
    case 5: fn(std::integral_constant<unsigned, 5>{}); return;
    case 6: fn(std::integral_constant<unsigned, 6>{}); return;
    default: break;
  }
  reject("order expects an interaction order in [2, " +
         std::to_string(combinatorics::kMaxOrder) + "]");
}

std::string response(const char* kind, const std::string& id,
                     const std::string& rest) {
  std::string out = kind;
  out += ' ';
  out += id.empty() ? "-" : id;
  if (!rest.empty()) {
    out += ' ';
    out += rest;
  }
  return out;
}

std::string format_fingerprint(std::uint64_t fp) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

std::string range_str(const combinatorics::RankRange& r) {
  return "[" + std::to_string(r.first) + ", " + std::to_string(r.last) + ")";
}

std::uint64_t steady_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t required_u64(const std::map<std::string, std::string>& params,
                           const char* verb, const char* key) {
  const auto it = params.find(key);
  if (it == params.end()) {
    reject(std::string(verb) + " needs " + key + "=<value>");
  }
  const char* begin = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(begin, &end, 10);
  if (end == begin || *end != '\0' || errno != 0 || it->second[0] == '-') {
    reject(std::string(verb) + " " + key + " expects an unsigned integer, "
           "got '" + it->second + "'");
  }
  return v;
}

bool has_whitespace(const std::string& s) {
  for (const char c : s) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

struct FleetCoordinator::Impl {
  CoordinatorOptions opt;
  std::string objective_name;
  std::uint64_t fingerprint = 0;
  std::uint64_t num_snps = 0;
  std::uint64_t num_samples = 0;
  std::uint64_t total = 0;

  std::string state_path;
  FleetState st;

  bool complete = false;  ///< every rank merged, final CSV rendered
  std::vector<std::string> final_lines;
  std::uint64_t reassignment_count = 0;

  mutable std::mutex mu;

  std::uint64_t now() const {
    return opt.now_ms ? opt.now_ms() : steady_now_ms();
  }
  void log(const std::string& msg) const {
    if (opt.log) opt.log(msg);
  }
  std::string spool_file(const std::string& name) const {
    return opt.spool + "/" + name;
  }
  std::string ckpt_name(std::uint64_t id) const {
    return "fleet-s" + std::to_string(id) + ".ckpt";
  }
  std::string result_name(std::uint64_t id) const {
    return "fleet-s" + std::to_string(id) + ".shard";
  }
  void persist() { write_fleet_state_file(state_path, st); }

  ShardEntry* find_shard(std::uint64_t id) {
    for (ShardEntry& e : st.shards) {
      if (e.id == id) return &e;
    }
    return nullptr;
  }

  std::uint64_t backoff_ms(std::uint32_t failures) const {
    const std::uint32_t shift = failures < 20 ? failures : 20;
    const std::uint64_t raw = opt.backoff_base_ms << shift;
    return raw < opt.backoff_cap_ms ? raw : opt.backoff_cap_ms;
  }

  /// Sorted insert + rolling compaction of the done list: any two adjacent
  /// intervals merge (shard::merge_shards_of, kContiguous) into one spool
  /// file and the inputs are unlinked once the new table is durable, so
  /// the list — and the spool — stays O(active shards) long.  Finishes
  /// with persist(); callers rely on that.
  template <unsigned K>
  void fold_done(DoneRange nd) {
    auto pos = std::lower_bound(
        st.done.begin(), st.done.end(), nd,
        [](const DoneRange& a, const DoneRange& b) {
          return a.range.first < b.range.first;
        });
    if ((pos != st.done.end() && nd.range.last > pos->range.first) ||
        (pos != st.done.begin() &&
         std::prev(pos)->range.last > nd.range.first)) {
      throw std::runtime_error(
          "fleet: completed range " + range_str(nd.range) +
          " overlaps already-merged work (internal invariant violated)");
    }
    st.done.insert(pos, std::move(nd));

    std::vector<std::string> obsolete;
    for (std::size_t i = 0; i + 1 < st.done.size();) {
      if (st.done[i].range.last != st.done[i + 1].range.first) {
        ++i;
        continue;
      }
      using Scored = core::ScoredOf<K>;
      std::vector<shard::BasicShardResult<Scored>> pair;
      pair.push_back(
          shard::read_shard_result_file_as<Scored>(spool_file(st.done[i].file)));
      pair.push_back(shard::read_shard_result_file_as<Scored>(
          spool_file(st.done[i + 1].file)));
      const auto merged =
          shard::merge_shards_of<K>(pair, shard::MergeCoverage::kContiguous);
      const std::string name =
          "fleet-m" + std::to_string(st.next_shard++) + ".shard";
      shard::write_shard_result_file(spool_file(name),
                                     shard::to_shard_result<K>(merged));
      obsolete.push_back(st.done[i].file);
      obsolete.push_back(st.done[i + 1].file);
      st.done[i] = DoneRange{merged.range, name};
      st.done.erase(st.done.begin() + static_cast<std::ptrdiff_t>(i) + 1);
    }
    persist();
    // Unlink only after the table that no longer references them is
    // durable; a crash in between leaves harmless orphans, never a
    // referenced-but-missing file.
    for (const std::string& name : obsolete) {
      std::remove(spool_file(name).c_str());
    }
  }

  /// Revokes shard `id`'s lease: harvests the worker's last durable
  /// checkpoint (its completed prefix folds into the merge tree exactly —
  /// shard::clip_to_prefix), then re-queues the remainder under a fresh
  /// shard id so the straggler's stale renew/complete/checkpoint can never
  /// collide with the new lease.  `count_failure` distinguishes crashes
  /// and bad results (backoff + quarantine accounting) from voluntary
  /// abandon (no penalty).  `rescan_from_scratch` drops the checkpoint
  /// too — used when the worker's *result* was bad, which taints its
  /// checkpoints.  Ends persisted.
  template <unsigned K>
  void requeue(std::uint64_t id, bool count_failure, bool rescan_from_scratch,
               const char* cause) {
    ShardEntry* e = find_shard(id);
    if (e == nullptr || e->state != ShardState::kLeased) return;
    using Scored = core::ScoredOf<K>;

    std::uint64_t harvested_to = e->range.first;
    if (!rescan_from_scratch) {
      const std::string ckpt = spool_file(ckpt_name(id));
      if (std::ifstream(ckpt).good()) {
        try {
          const auto c = shard::read_checkpoint_file_as<Scored>(ckpt);
          if (c.fingerprint == fingerprint && c.objective == objective_name &&
              c.top_k == st.top_k && c.range.first == e->range.first &&
              c.range.last == e->range.last &&
              c.watermark > c.range.first) {
            const std::string name =
                "fleet-p" + std::to_string(st.next_shard++) + ".shard";
            shard::write_shard_result_file(spool_file(name),
                                           shard::clip_to_prefix(c));
            harvested_to = c.watermark;
            log("harvested checkpoint prefix: shard " + std::to_string(id) +
                " ranks " +
                range_str({e->range.first, c.watermark}));
            fold_done<K>(DoneRange{{e->range.first, c.watermark}, name});
            e = find_shard(id);  // fold_done may reallocate st.shards? no,
                                 // but keep the invariant explicit
            if (e == nullptr) return;
          }
        } catch (const std::exception& ex) {
          log("discarding unusable checkpoint of shard " + std::to_string(id) +
              ": " + ex.what());
        }
      }
    }

    if (harvested_to == e->range.last) {
      // The dead worker had in fact finished scanning; its checkpoint was
      // the whole shard.  Nothing left to re-lease.
      log("shard " + std::to_string(id) +
          " fully recovered from its checkpoint; nothing to re-lease");
      st.shards.erase(st.shards.begin() + (e - st.shards.data()));
      persist();
      return;
    }

    const std::uint32_t failures = e->failures + (count_failure ? 1u : 0u);
    const std::uint64_t new_id = st.next_shard++;
    e->id = new_id;
    e->range.first = harvested_to;
    e->failures = failures;
    e->worker.clear();
    e->lease_deadline_ms = 0;
    e->watermark = harvested_to;
    if (count_failure && failures >= opt.max_failures) {
      e->state = ShardState::kQuarantined;
      e->backoff_until_ms = 0;
      log("quarantined: shard " + std::to_string(new_id) + " ranks " +
          range_str(e->range) + " after " + std::to_string(failures) +
          " failures (poison; cause: " + cause + ")");
    } else {
      e->state = ShardState::kPending;
      e->backoff_until_ms = count_failure ? now() + backoff_ms(failures) : 0;
      log("requeued: shard " + std::to_string(new_id) + " ranks " +
          range_str(e->range) + " failures " + std::to_string(failures) +
          (count_failure
               ? " backoff " + std::to_string(backoff_ms(failures)) + "ms"
               : "") +
          " (cause: " + cause + ")");
    }
    persist();
  }

  /// Lease-expiry sweep (the tick body).  Lock held.
  void expire() {
    const std::uint64_t t = now();
    std::vector<std::uint64_t> expired;
    for (const ShardEntry& e : st.shards) {
      if (e.state == ShardState::kLeased && e.lease_deadline_ms <= t) {
        expired.push_back(e.id);
      }
    }
    for (const std::uint64_t id : expired) {
      const ShardEntry* e = find_shard(id);
      if (e == nullptr) continue;
      log("lease expired: shard " + std::to_string(id) + " worker " +
          e->worker + " watermark " + std::to_string(e->watermark));
      ++reassignment_count;
      with_order(st.order, [&](auto kc) {
        this->requeue<decltype(kc)::value>(
            id, /*count_failure=*/true, /*rescan_from_scratch=*/false,
            "lease expired");
      });
    }
  }

  bool stalled() const {
    if (complete || st.shards.empty()) return false;
    for (const ShardEntry& e : st.shards) {
      if (e.state != ShardState::kQuarantined) return false;
    }
    return true;
  }

  /// When the done list has collapsed to [0, total), renders the final CSV
  /// and writes `out` durably.  Lock held.
  void maybe_finalize() {
    if (complete || !st.shards.empty()) return;
    if (st.done.size() != 1 || st.done[0].range.first != 0 ||
        st.done[0].range.last != total) {
      throw std::runtime_error(
          "fleet: no shards left but coverage is incomplete (internal "
          "invariant violated)");
    }
    with_order(st.order, [&](auto kc) {
      constexpr unsigned K = decltype(kc)::value;
      const auto r = shard::read_shard_result_file_as<core::ScoredOf<K>>(
          spool_file(st.done[0].file));
      final_lines = core::scan_csv_lines<K>(r.entries);
    });
    if (!opt.out.empty()) {
      std::string body;
      for (const std::string& line : final_lines) {
        body += line;
        body += '\n';
      }
      shard::write_text_file_durably(opt.out, "fleet-out", body);
    }
    complete = true;
    log("fleet complete: " + std::to_string(total) + " ranks merged" +
        (opt.out.empty() ? "" : "; wrote " + opt.out));
  }

  // -- Request handlers (lock held) ------------------------------------------

  std::string handle_lease(const std::string& worker) {
    expire();
    if (complete) return response("ok", worker, "drained");
    if (stalled()) return response("ok", worker, "abort reason=quarantined");

    const std::uint64_t t = now();
    ShardEntry* best = nullptr;
    for (ShardEntry& e : st.shards) {
      if (e.state != ShardState::kPending || e.backoff_until_ms > t) continue;
      if (best == nullptr || e.range.first < best->range.first) best = &e;
    }
    if (best == nullptr) {
      // Nothing leasable right now: tell the worker when to come back
      // (soonest lease deadline or backoff expiry).
      std::uint64_t next = t + 1000;
      for (const ShardEntry& e : st.shards) {
        if (e.state == ShardState::kLeased) {
          next = std::min(next, e.lease_deadline_ms);
        } else if (e.state == ShardState::kPending) {
          next = std::min(next, e.backoff_until_ms);
        }
      }
      const std::uint64_t wait =
          next > t ? std::max<std::uint64_t>(next - t, 50) : 50;
      return response("ok", worker, "wait ms=" + std::to_string(wait));
    }

    best->state = ShardState::kLeased;
    best->worker = worker;
    best->lease_deadline_ms = t + opt.lease_ms;
    best->watermark = best->range.first;
    const std::uint64_t ce =
        opt.checkpoint_every != 0
            ? opt.checkpoint_every
            : std::max<std::uint64_t>(1, best->range.size() / 64);
    log("lease granted: shard " + std::to_string(best->id) + " ranks " +
        range_str(best->range) + " -> worker " + worker);
    return response(
        "ok", worker,
        "lease shard=" + std::to_string(best->id) + " order=" +
            std::to_string(st.order) + " range=" +
            std::to_string(best->range.first) + ":" +
            std::to_string(best->range.last) + " objective=" +
            objective_name + " top=" + std::to_string(st.top_k) +
            " checkpoint_every=" + std::to_string(ce) + " lease_ms=" +
            std::to_string(opt.lease_ms) + " fingerprint=" +
            format_fingerprint(fingerprint) + " ckpt=" +
            spool_file(ckpt_name(best->id)) + " out=" +
            spool_file(result_name(best->id)));
  }

  std::string handle_renew(const std::string& worker,
                           const std::map<std::string, std::string>& params) {
    const std::uint64_t id = required_u64(params, "renew", "shard");
    const std::uint64_t wm = required_u64(params, "renew", "watermark");
    expire();
    ShardEntry* e = find_shard(id);
    if (e == nullptr || e->state != ShardState::kLeased ||
        e->worker != worker) {
      return response("error", worker,
                      "lease-lost shard=" + std::to_string(id));
    }
    if (wm < e->range.first || wm > e->range.last) {
      return response("error", worker,
                      "bad-watermark shard=" + std::to_string(id) + " " +
                          std::to_string(wm) + " outside " +
                          range_str(e->range));
    }
    e->lease_deadline_ms = now() + opt.lease_ms;
    e->watermark = std::max(e->watermark, wm);
    return response("ok", worker,
                    "renewed shard=" + std::to_string(id) +
                        " lease_ms=" + std::to_string(opt.lease_ms));
  }

  std::string handle_complete(const std::string& worker,
                              const std::map<std::string, std::string>& params) {
    const std::uint64_t id = required_u64(params, "complete", "shard");
    expire();
    ShardEntry* e = find_shard(id);
    if (e == nullptr || e->state != ShardState::kLeased ||
        e->worker != worker) {
      return response("error", worker,
                      "lease-lost shard=" + std::to_string(id));
    }

    std::string verdict;
    with_order(st.order, [&](auto kc) {
      constexpr unsigned K = decltype(kc)::value;
      using Scored = core::ScoredOf<K>;
      const std::string file = result_name(id);
      shard::BasicShardResult<Scored> r;
      try {
        r = shard::read_shard_result_file_as<Scored>(spool_file(file));
      } catch (const std::exception& ex) {
        verdict = ex.what();
        return;
      }
      if (r.fingerprint != fingerprint) {
        verdict = "result fingerprint mismatch";
      } else if (r.objective != objective_name || r.top_k != st.top_k) {
        verdict = "result objective/top_k mismatch";
      } else if (r.range.first != e->range.first ||
                 r.range.last != e->range.last) {
        verdict = "result covers " + range_str(r.range) +
                  ", lease covers " + range_str(e->range);
      } else {
        const combinatorics::RankRange range = e->range;
        log("complete: shard " + std::to_string(id) + " ranks " +
            range_str(range) + " worker " + worker);
        st.shards.erase(st.shards.begin() + (e - st.shards.data()));
        this->fold_done<K>(DoneRange{range, file});
        this->maybe_finalize();
      }
    });
    if (!verdict.empty()) {
      // The worker is alive but produced an unusable artifact — treat it
      // exactly like a failed lease (its checkpoints are equally suspect,
      // so the range rescans from scratch, with backoff + quarantine
      // accounting against repeat offenders).
      log("bad result: shard " + std::to_string(id) + " worker " + worker +
          ": " + verdict);
      with_order(st.order, [&](auto kc) {
        this->requeue<decltype(kc)::value>(
            id, /*count_failure=*/true, /*rescan_from_scratch=*/true,
            "bad result");
      });
      return response("error", worker,
                      "bad-result shard=" + std::to_string(id) + " " +
                          verdict);
    }
    return response("ok", worker, "complete shard=" + std::to_string(id));
  }

  std::string handle_abandon(const std::string& worker,
                             const std::map<std::string, std::string>& params) {
    const std::uint64_t id = required_u64(params, "abandon", "shard");
    const auto reason = params.find("reason");
    expire();
    ShardEntry* e = find_shard(id);
    if (e == nullptr || e->state != ShardState::kLeased ||
        e->worker != worker) {
      return response("error", worker,
                      "lease-lost shard=" + std::to_string(id));
    }
    log("abandoned: shard " + std::to_string(id) + " worker " + worker +
        (reason == params.end() ? "" : " reason " + reason->second));
    with_order(st.order, [&](auto kc) {
      this->requeue<decltype(kc)::value>(
          id, /*count_failure=*/false, /*rescan_from_scratch=*/false,
          "abandoned");
    });
    return response("ok", worker, "abandoned shard=" + std::to_string(id));
  }

  std::string handle_status() const {
    std::size_t pending = 0, leased = 0, quarantined = 0;
    for (const ShardEntry& e : st.shards) {
      if (e.state == ShardState::kPending) ++pending;
      if (e.state == ShardState::kLeased) ++leased;
      if (e.state == ShardState::kQuarantined) ++quarantined;
    }
    std::uint64_t done_ranks = 0;
    for (const DoneRange& d : st.done) done_ranks += d.range.size();
    std::ostringstream os;
    os << "fleet order=" << st.order << " shards=" << st.shards.size()
       << " pending=" << pending << " leased=" << leased
       << " quarantined=" << quarantined << " done_ranks=" << done_ranks
       << " total=" << total << " reassignments=" << reassignment_count
       << " complete=" << (complete ? 1 : 0);
    return response("ok", "", os.str());
  }
};

FleetCoordinator::FleetCoordinator(const dataset::GenotypeMatrix& dataset,
                                   CoordinatorOptions options)
    : impl_(std::make_unique<Impl>()) {
  Impl& im = *impl_;
  im.opt = std::move(options);
  if (im.opt.spool.empty() || has_whitespace(im.opt.spool)) {
    reject("fleet: spool directory '" + im.opt.spool +
           "' is empty or contains whitespace (spool paths travel inside "
           "protocol lines)");
  }
  if (im.opt.order < 2 || im.opt.order > combinatorics::kMaxOrder) {
    reject("fleet: order " + std::to_string(im.opt.order) +
           " outside [2, " + std::to_string(combinatorics::kMaxOrder) + "]");
  }
  if (im.opt.top_k == 0) reject("fleet: top_k must be >= 1");
  if (im.opt.lease_ms == 0) reject("fleet: lease_ms must be >= 1");
  if (im.opt.max_failures == 0) reject("fleet: max_failures must be >= 1");

  im.objective_name = core::objective_name(im.opt.objective);
  im.fingerprint = shard::dataset_fingerprint(dataset);
  im.num_snps = dataset.num_snps();
  im.num_samples = dataset.num_samples();
  try {
    im.total = combinatorics::n_choose_k(im.num_snps, im.opt.order);
  } catch (const std::overflow_error&) {
    reject("fleet: rank space exceeds 2^64: C(" +
           std::to_string(im.num_snps) + "," +
           std::to_string(im.opt.order) + ") is not addressable");
  }
#ifndef _WIN32
  ::mkdir(im.opt.spool.c_str(), 0755);  // best-effort; persist() reports
#endif
  im.state_path = im.spool_file("fleet.state");

  if (std::ifstream(im.state_path).good()) {
    im.st = read_fleet_state_file(im.state_path);
    if (im.st.fingerprint != im.fingerprint || im.st.order != im.opt.order ||
        im.st.objective != im.objective_name ||
        im.st.top_k != im.opt.top_k || im.st.num_snps != im.num_snps ||
        im.st.num_samples != im.num_samples) {
      throw std::runtime_error(
          "fleet: '" + im.state_path +
          "' belongs to a different scan (dataset fingerprint, order, "
          "objective or top_k mismatch); refusing to resume — use a fresh "
          "spool directory");
    }
    std::uint64_t done_ranks = 0;
    for (const DoneRange& d : im.st.done) done_ranks += d.range.size();
    im.log("resume: " + std::to_string(im.st.shards.size()) +
           " shards left, " + std::to_string(done_ranks) + "/" +
           std::to_string(im.total) + " ranks already merged");
  } else {
    const auto plan = shard::plan_shards(im.num_snps, im.opt.shards,
                                         im.opt.split, im.opt.block_size,
                                         im.opt.order);
    im.st.order = im.opt.order;
    im.st.fingerprint = im.fingerprint;
    im.st.num_snps = im.num_snps;
    im.st.num_samples = im.num_samples;
    im.st.objective = im.objective_name;
    im.st.top_k = im.opt.top_k;
    im.st.next_shard = plan.size();
    im.st.shards.reserve(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i) {
      ShardEntry e;
      e.id = i;
      e.range = plan[i];
      e.watermark = plan[i].first;
      im.st.shards.push_back(e);
    }
    im.persist();
    im.log("plan: " + std::to_string(plan.size()) + " shards over " +
           std::to_string(im.total) + " ranks (order " +
           std::to_string(im.opt.order) + ", fingerprint " +
           format_fingerprint(im.fingerprint) + ")");
  }
  im.maybe_finalize();
}

FleetCoordinator::~FleetCoordinator() = default;

bool FleetCoordinator::submit_line(const std::string& line,
                                   serve::EventSink sink) {
  serve::Request req;
  try {
    req = serve::parse_request(line);
  } catch (const std::invalid_argument& e) {
    sink(response("error", "", e.what()));
    return true;
  }
  std::lock_guard<std::mutex> lk(impl_->mu);
  try {
    switch (req.kind) {
      case serve::RequestKind::kPing:
        sink(response("ok", "", "pong"));
        return true;
      case serve::RequestKind::kStatus:
        sink(impl_->handle_status());
        return true;
      case serve::RequestKind::kShutdown:
        sink(response("ok", "", "shutting-down"));
        return false;
      case serve::RequestKind::kLease:
        sink(impl_->handle_lease(req.id));
        return true;
      case serve::RequestKind::kRenew:
        sink(impl_->handle_renew(req.id, req.params));
        return true;
      case serve::RequestKind::kComplete:
        sink(impl_->handle_complete(req.id, req.params));
        return true;
      case serve::RequestKind::kAbandon:
        sink(impl_->handle_abandon(req.id, req.params));
        return true;
      case serve::RequestKind::kScan:
      case serve::RequestKind::kSignificance:
      case serve::RequestKind::kCancel:
        sink(response("error", req.id,
                      "scan jobs are not served here; this is a fleet "
                      "coordinator (lease|renew|complete|abandon|status|"
                      "ping|shutdown)"));
        return true;
    }
  } catch (const std::exception& e) {
    sink(response("error", req.id, e.what()));
  }
  return true;
}

void FleetCoordinator::tick() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->expire();
}

bool FleetCoordinator::finished() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->complete || impl_->stalled();
}

bool FleetCoordinator::drain(const std::atomic<bool>*) {
  // A coordinator cannot make progress on its own — workers do the work —
  // so the EOF path of pipe mode either already finished or never will.
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->complete;
}

std::size_t FleetCoordinator::shutdown_and_checkpoint() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->persist();
  return impl_->complete ? 0 : 1;
}

std::size_t FleetCoordinator::jobs_interrupted() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  if (impl_->complete) return 0;
  return std::max<std::size_t>(1, impl_->st.shards.size());
}

std::vector<std::string> FleetCoordinator::final_csv() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->final_lines;
}

std::size_t FleetCoordinator::shards_pending() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  std::size_t n = 0;
  for (const ShardEntry& e : impl_->st.shards) {
    if (e.state == ShardState::kPending) ++n;
  }
  return n;
}

std::size_t FleetCoordinator::shards_leased() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  std::size_t n = 0;
  for (const ShardEntry& e : impl_->st.shards) {
    if (e.state == ShardState::kLeased) ++n;
  }
  return n;
}

std::size_t FleetCoordinator::shards_quarantined() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  std::size_t n = 0;
  for (const ShardEntry& e : impl_->st.shards) {
    if (e.state == ShardState::kQuarantined) ++n;
  }
  return n;
}

std::uint64_t FleetCoordinator::reassignments() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->reassignment_count;
}

}  // namespace trigen::fleet
