#include "trigen/fleet/state.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "trigen/combinatorics/combinations.hpp"
#include "trigen/shard/result_io.hpp"

namespace trigen::fleet {
namespace {

constexpr char kMagic[] = "TRIGEN-FLEET";
constexpr char kVersion[] = "v1";
constexpr char kKind[] = "fleet-state";

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(std::string(kKind) + ": " + what);
}

std::string next_token(std::istream& is, const char* what) {
  std::string tok;
  if (!(is >> tok)) fail(std::string("truncated file: missing ") + what);
  return tok;
}

void expect_key(std::istream& is, const char* key) {
  const std::string tok = next_token(is, key);
  if (tok != key) {
    fail("expected '" + std::string(key) + "', got '" + tok + "'");
  }
}

std::uint64_t parse_u64(const std::string& tok, const char* what,
                        int base = 10) {
  const char* begin = tok.c_str();
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(begin, &end, base);
  if (end == begin || *end != '\0' || errno != 0 || tok[0] == '-') {
    fail(std::string("malformed ") + what + " '" + tok + "'");
  }
  return v;
}

std::uint64_t read_u64_field(std::istream& is, const char* key,
                             int base = 10) {
  expect_key(is, key);
  return parse_u64(next_token(is, key), key, base);
}

std::string format_fingerprint(std::uint64_t fp) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

bool has_whitespace(const std::string& s) {
  for (const char c : s) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') return true;
  }
  return s.empty();
}

}  // namespace

const char* shard_state_name(ShardState s) {
  switch (s) {
    case ShardState::kPending: return "pending";
    case ShardState::kLeased: return "leased";
    case ShardState::kQuarantined: return "quarantined";
  }
  return "?";
}

void write_fleet_state_file(const std::string& path, const FleetState& s) {
  std::ostringstream os;
  os << kMagic << ' ' << kVersion << '\n'
     << "order " << s.order << '\n'
     << "fingerprint " << format_fingerprint(s.fingerprint) << '\n'
     << "snps " << s.num_snps << '\n'
     << "samples " << s.num_samples << '\n'
     << "objective " << s.objective << '\n'
     << "top_k " << s.top_k << '\n'
     << "next_shard " << s.next_shard << '\n';
  os << "shards " << s.shards.size() << '\n';
  for (const ShardEntry& e : s.shards) {
    // A lease is a promise this process made; a restarted coordinator
    // cannot honor it, so leased persists as pending (the worker's next
    // renew gets `lease-lost` and it comes back for a fresh lease).
    const ShardState persisted =
        e.state == ShardState::kLeased ? ShardState::kPending : e.state;
    os << "s " << e.id << ' ' << e.range.first << ' ' << e.range.last << ' '
       << shard_state_name(persisted) << ' ' << e.failures << '\n';
  }
  os << "done " << s.done.size() << '\n';
  for (const DoneRange& d : s.done) {
    if (has_whitespace(d.file)) {
      throw std::invalid_argument(
          std::string(kKind) + ": spool file name '" + d.file +
          "' is empty or contains whitespace (unrepresentable in the "
          "token-oriented state format)");
    }
    os << "d " << d.range.first << ' ' << d.range.last << ' ' << d.file
       << '\n';
  }
  os << "end " << kMagic << '\n';
  shard::write_text_file_durably(path, kKind, os.str());
}

FleetState read_fleet_state_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) fail("cannot open '" + path + "' for reading");

  std::string tok = next_token(is, "magic");
  if (tok != kMagic) {
    fail("bad magic '" + tok + "' (expected " + kMagic + ")");
  }
  tok = next_token(is, "format version");
  if (tok != kVersion) {
    fail("unsupported format version '" + tok + "' (expected " + kVersion +
         ")");
  }

  FleetState s;
  const std::uint64_t order = read_u64_field(is, "order");
  if (order < 2 || order > combinatorics::kMaxOrder) {
    fail("unsupported order " + std::to_string(order));
  }
  s.order = static_cast<unsigned>(order);
  s.fingerprint = read_u64_field(is, "fingerprint", 16);
  s.num_snps = read_u64_field(is, "snps");
  s.num_samples = read_u64_field(is, "samples");
  expect_key(is, "objective");
  s.objective = next_token(is, "objective name");
  s.top_k = read_u64_field(is, "top_k");
  if (s.top_k == 0) fail("top_k must be >= 1");
  s.next_shard = read_u64_field(is, "next_shard");

  std::uint64_t total = 0;
  try {
    total = combinatorics::n_choose_k(s.num_snps, s.order);
  } catch (const std::overflow_error&) {
    fail("rank space exceeds 2^64: C(" + std::to_string(s.num_snps) + "," +
         std::to_string(s.order) + ") is not addressable");
  }

  const std::uint64_t n_shards = read_u64_field(is, "shards");
  s.shards.reserve(n_shards);
  for (std::uint64_t i = 0; i < n_shards; ++i) {
    expect_key(is, "s");
    ShardEntry e;
    e.id = parse_u64(next_token(is, "shard id"), "shard id");
    e.range.first =
        parse_u64(next_token(is, "shard first"), "shard first");
    e.range.last = parse_u64(next_token(is, "shard last"), "shard last");
    const std::string state = next_token(is, "shard state");
    if (state == "pending") {
      e.state = ShardState::kPending;
    } else if (state == "quarantined") {
      e.state = ShardState::kQuarantined;
    } else {
      fail("unknown shard state '" + state + "' (pending|quarantined)");
    }
    e.failures = static_cast<std::uint32_t>(
        parse_u64(next_token(is, "shard failures"), "shard failures"));
    if (e.range.first >= e.range.last || e.range.last > total) {
      fail("shard " + std::to_string(e.id) + " has invalid range [" +
           std::to_string(e.range.first) + ", " +
           std::to_string(e.range.last) + ") for a rank space of " +
           std::to_string(total));
    }
    if (e.id >= s.next_shard) {
      fail("shard id " + std::to_string(e.id) + " >= next_shard " +
           std::to_string(s.next_shard));
    }
    s.shards.push_back(e);
  }

  const std::uint64_t n_done = read_u64_field(is, "done");
  s.done.reserve(n_done);
  for (std::uint64_t i = 0; i < n_done; ++i) {
    expect_key(is, "d");
    DoneRange d;
    d.range.first = parse_u64(next_token(is, "done first"), "done first");
    d.range.last = parse_u64(next_token(is, "done last"), "done last");
    d.file = next_token(is, "done file");
    if (d.range.first >= d.range.last || d.range.last > total) {
      fail("done range [" + std::to_string(d.range.first) + ", " +
           std::to_string(d.range.last) + ") is invalid for a rank space of " +
           std::to_string(total));
    }
    if (!s.done.empty() && d.range.first < s.done.back().range.last) {
      fail("done ranges are unsorted or overlap at [" +
           std::to_string(d.range.first) + ", " +
           std::to_string(d.range.last) + ")");
    }
    s.done.push_back(d);
  }

  expect_key(is, "end");
  tok = next_token(is, "trailer magic");
  if (tok != kMagic) {
    fail("trailer names '" + tok + "' (expected " + kMagic + ")");
  }
  std::string extra;
  if (is >> extra) {
    fail("trailing content after the end trailer: '" + extra + "'");
  }
  return s;
}

}  // namespace trigen::fleet
