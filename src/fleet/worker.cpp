#include "trigen/fleet/worker.hpp"

#include <cstdio>

#ifndef _WIN32

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include "trigen/shard/plan.hpp"
#include "trigen/shard/result_io.hpp"
#include "trigen/shard/runner.hpp"

namespace trigen::fleet {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitError = 2;
constexpr int kExitInterrupted = 3;
constexpr int kExitAborted = 4;

/// How long to wait for the coordinator's one-line reply before treating
/// the connection as lost.  Replies are computed synchronously and are
/// tiny; anything this slow means the coordinator is gone.
constexpr int kReplyTimeoutMs = 10000;

bool is_interrupted(const WorkerOptions& opt) {
  return opt.interrupted != nullptr && opt.interrupted->load();
}

/// Interrupt-aware sleep in poll-sized slices.
void sleep_ms(const WorkerOptions& opt, std::uint64_t ms) {
  const std::uint64_t slice = 50;
  while (ms > 0 && !is_interrupted(opt)) {
    const std::uint64_t step = ms < slice ? ms : slice;
    std::this_thread::sleep_for(std::chrono::milliseconds(step));
    ms -= step;
  }
}

/// One line-oriented protocol connection to the coordinator socket.
class Connection {
 public:
  ~Connection() { close(); }

  bool connected() const { return fd_ >= 0; }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    buf_.clear();
  }

  /// One connect attempt (the caller owns retry pacing/budget).
  bool connect(const std::string& path) {
    close();
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
      ::close(fd);
      return false;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(fd);
      return false;
    }
    fd_ = fd;
    return true;
  }

  /// Sends one request line and reads one reply line.  Empty optional =
  /// connection lost (already closed).
  std::optional<std::string> exchange(const std::string& line) {
    if (fd_ < 0) return std::nullopt;
    std::string out = line;
    out += '\n';
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t w =
          ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        close();
        return std::nullopt;
      }
      off += static_cast<std::size_t>(w);
    }
    return read_line();
  }

 private:
  std::optional<std::string> read_line() {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(kReplyTimeoutMs);
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        return line;
      }
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) {
        close();
        return std::nullopt;
      }
      struct pollfd p{};
      p.fd = fd_;
      p.events = POLLIN;
      const int pr = ::poll(&p, 1, static_cast<int>(left.count()));
      if (pr < 0) {
        if (errno == EINTR) continue;
        close();
        return std::nullopt;
      }
      if (pr == 0) continue;
      char chunk[4096];
      const ssize_t r = ::read(fd_, chunk, sizeof chunk);
      if (r < 0 && errno == EINTR) continue;
      if (r <= 0) {
        close();
        return std::nullopt;
      }
      buf_.append(chunk, static_cast<std::size_t>(r));
    }
  }

  int fd_ = -1;
  std::string buf_;
};

/// A coordinator reply, split into head tokens and key=value params.
struct Reply {
  std::string kind;    ///< ok | error
  std::string verb;    ///< lease | wait | drained | abort | renewed | ...
  std::map<std::string, std::string> params;
};

Reply parse_reply(const std::string& line) {
  std::istringstream is(line);
  Reply r;
  std::string tok;
  is >> r.kind;
  is >> tok;  // the worker-name echo (or '-'); not needed
  is >> r.verb;
  while (is >> tok) {
    const std::size_t eq = tok.find('=');
    if (eq != std::string::npos) {
      r.params[tok.substr(0, eq)] = tok.substr(eq + 1);
    }
  }
  return r;
}

std::uint64_t param_u64(const Reply& r, const char* key) {
  const auto it = r.params.find(key);
  if (it == r.params.end()) {
    throw std::runtime_error(std::string("coordinator reply misses ") + key);
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0' || errno != 0) {
    throw std::runtime_error(std::string("malformed ") + key + "='" +
                             it->second + "' in coordinator reply");
  }
  return v;
}

std::string param_str(const Reply& r, const char* key) {
  const auto it = r.params.find(key);
  if (it == r.params.end()) {
    throw std::runtime_error(std::string("coordinator reply misses ") + key);
  }
  return it->second;
}

core::Objective parse_objective_token(const std::string& s) {
  if (s == "k2") return core::Objective::kK2;
  if (s == "mi") return core::Objective::kMutualInformation;
  if (s == "chi2") return core::Objective::kChiSquared;
  throw std::runtime_error("coordinator granted unknown objective '" + s +
                           "'");
}

template <typename Fn>
void with_order(unsigned order, Fn&& fn) {
  switch (order) {
    case 2: fn(std::integral_constant<unsigned, 2>{}); return;
    case 3: fn(std::integral_constant<unsigned, 3>{}); return;
    case 4: fn(std::integral_constant<unsigned, 4>{}); return;
    case 5: fn(std::integral_constant<unsigned, 5>{}); return;
    case 6: fn(std::integral_constant<unsigned, 6>{}); return;
    default: break;
  }
  throw std::runtime_error("coordinator granted unsupported order " +
                           std::to_string(order));
}

/// Per-order detectors, built lazily (a fleet has one order, so exactly
/// one slot ever fills).
struct DetectorCache {
  std::unique_ptr<core::BasicDetector<2>> d2;
  std::unique_ptr<core::BasicDetector<3>> d3;
  std::unique_ptr<core::BasicDetector<4>> d4;
  std::unique_ptr<core::BasicDetector<5>> d5;
  std::unique_ptr<core::BasicDetector<6>> d6;

  template <unsigned K>
  const core::BasicDetector<K>& get(const dataset::GenotypeMatrix& d) {
    auto& slot = [this]() -> std::unique_ptr<core::BasicDetector<K>>& {
      if constexpr (K == 2) return d2;
      else if constexpr (K == 3) return d3;
      else if constexpr (K == 4) return d4;
      else if constexpr (K == 5) return d5;
      else return d6;
    }();
    if (!slot) slot = std::make_unique<core::BasicDetector<K>>(d);
    return *slot;
  }
};

/// Everything run_worker keeps across one session.
struct Session {
  const dataset::GenotypeMatrix& dataset;
  const std::string& socket_path;
  const WorkerOptions& opt;
  std::uint64_t fingerprint;
  Connection conn;
  DetectorCache detectors;

  void log(const std::string& msg) const {
    if (opt.log) opt.log(msg);
  }

  /// (Re)establishes the connection within the reconnect budget.  False =
  /// budget exhausted or interrupted.
  bool ensure_connected() {
    if (conn.connected()) return true;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(opt.reconnect_ms);
    while (!is_interrupted(opt)) {
      if (conn.connect(socket_path)) return true;
      if (std::chrono::steady_clock::now() >= deadline) return false;
      sleep_ms(opt, opt.poll_ms);
    }
    return false;
  }

  /// Request/reply with one transparent reconnect-and-resend.  All fleet
  /// requests are idempotent or safely re-askable (a duplicated lease ask
  /// just gets the next shard; a duplicated renew/complete/abandon gets
  /// `lease-lost` at worst), so the retry never double-applies work.
  std::optional<Reply> request(const std::string& line) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      if (!ensure_connected()) return std::nullopt;
      const auto raw = conn.exchange(line);
      if (raw) return parse_reply(*raw);
      // connection dropped mid-exchange; one reconnect, then resend
    }
    return std::nullopt;
  }
};

/// Outcome of scanning one granted shard.
enum class ShardOutcome {
  kCompleted,     ///< result file written, `complete` acknowledged
  kLeaseLost,     ///< coordinator re-owned the range; just move on
  kInterrupted,   ///< SIGINT/SIGTERM landed; stop the worker (exit 3)
  kDisconnected,  ///< coordinator unreachable past the budget (exit 0)
  kFailed,        ///< scan error; drop the lease and let expiry charge it
};

template <unsigned K>
ShardOutcome run_granted_shard(Session& s, const Reply& grant) {
  const std::uint64_t shard_id = param_u64(grant, "shard");
  const std::string range_spec = param_str(grant, "range");
  const std::size_t colon = range_spec.find(':');
  if (colon == std::string::npos) {
    throw std::runtime_error("malformed range='" + range_spec +
                             "' in lease grant");
  }
  combinatorics::RankRange range{
      std::strtoull(range_spec.c_str(), nullptr, 10),
      std::strtoull(range_spec.c_str() + colon + 1, nullptr, 10)};

  shard::BasicShardRunOptions<core::BasicDetectorOptions<K>> ro;
  ro.detector.objective = parse_objective_token(param_str(grant, "objective"));
  ro.detector.top_k = static_cast<std::size_t>(param_u64(grant, "top"));
  ro.detector.threads = s.opt.threads;
  ro.detector.version = s.opt.version;
  if (s.opt.isa) {
    ro.detector.isa = *s.opt.isa;
    ro.detector.isa_auto = false;
  } else {
    ro.detector.config = s.opt.config;
  }
  ro.range = range;
  ro.checkpoint_every = param_u64(grant, "checkpoint_every");
  ro.checkpoint_path = param_str(grant, "ckpt");

  const std::string shard_tag = "shard " + std::to_string(shard_id);
  bool lease_lost = false;
  bool disconnected = false;
  ro.keep_going = [&](std::uint64_t done, std::uint64_t) {
    if (is_interrupted(s.opt)) return false;
    // The renew after every durable chunk doubles as the liveness
    // heartbeat; its watermark tells the coordinator how much of the
    // shard survives us if we die right now.
    const auto reply =
        s.request("renew " + s.opt.id + " shard=" +
                  std::to_string(shard_id) + " watermark=" +
                  std::to_string(range.first + done));
    if (!reply) {
      disconnected = true;
      return false;
    }
    if (reply->kind != "ok") {
      s.log(shard_tag + ": lease lost; stopping at the checkpoint");
      lease_lost = true;
      return false;
    }
    return true;
  };

  s.log(shard_tag + ": scanning ranks [" + std::to_string(range.first) +
        ", " + std::to_string(range.last) + ")");
  const auto report = shard::run_shard_of<K>(
      s.detectors.get<K>(s.dataset), s.fingerprint, ro,
      [&](const std::string& reason) {
        s.log(shard_tag + ": discarding checkpoint (" + reason + ")");
      });

  if (!report.completed) {
    if (lease_lost) return ShardOutcome::kLeaseLost;
    if (is_interrupted(s.opt)) {
      // Best-effort hand-back so the coordinator harvests the checkpoint
      // now instead of at lease expiry.
      s.request("abandon " + s.opt.id + " shard=" + std::to_string(shard_id) +
                " reason=interrupted");
      return ShardOutcome::kInterrupted;
    }
    if (disconnected) {
      // One more reconnect attempt purely to hand the shard back.
      if (s.request("abandon " + s.opt.id + " shard=" +
                    std::to_string(shard_id) + " reason=disconnect")) {
        return ShardOutcome::kLeaseLost;  // handed back; keep working
      }
      return ShardOutcome::kDisconnected;
    }
    return ShardOutcome::kFailed;
  }

  shard::write_shard_result_file(param_str(grant, "out"), report.result);
  const auto reply = s.request("complete " + s.opt.id +
                               " shard=" + std::to_string(shard_id));
  if (!reply) return ShardOutcome::kDisconnected;
  if (reply->kind == "ok") {
    s.log(shard_tag + ": complete");
  } else {
    // lease-lost (someone else re-owned it — harmless, results are
    // deterministic) or bad-result (the coordinator rejected the file and
    // will rescan; nothing for us to fix here).
    s.log(shard_tag + ": completion not accepted: " + reply->verb);
  }
  return ShardOutcome::kCompleted;
}

}  // namespace

int run_worker(const dataset::GenotypeMatrix& dataset,
               const std::string& socket_path, const WorkerOptions& options) {
  Session s{dataset, socket_path, options,
            shard::dataset_fingerprint(dataset), {}, {}};

  while (!is_interrupted(options)) {
    const auto reply = s.request("lease " + options.id);
    if (!reply) {
      if (is_interrupted(options)) break;
      s.log("coordinator unreachable for " +
            std::to_string(options.reconnect_ms) +
            "ms; exiting (its durable state resumes the fleet)");
      return kExitOk;
    }
    if (reply->kind != "ok") {
      s.log("lease rejected: " + reply->verb);
      sleep_ms(options, options.poll_ms);
      continue;
    }
    if (reply->verb == "drained") {
      s.log("fleet drained; exiting");
      return kExitOk;
    }
    if (reply->verb == "abort") {
      s.log("fleet stalled on quarantined shards; aborting");
      return kExitAborted;
    }
    if (reply->verb == "wait") {
      sleep_ms(options, param_u64(*reply, "ms"));
      continue;
    }
    if (reply->verb == "bye") {
      // The endpoint broadcast its end-of-session farewell: the
      // coordinator finished (or was told to shut down) while our lease
      // request was in flight.  Session over either way.
      s.log("coordinator session ended; exiting");
      return kExitOk;
    }
    if (reply->verb != "lease") {
      s.log("unexpected coordinator reply verb '" + reply->verb + "'");
      sleep_ms(options, options.poll_ms);
      continue;
    }

    const std::string granted_fp = param_str(*reply, "fingerprint");
    char fp_buf[32];
    std::snprintf(fp_buf, sizeof fp_buf, "%016llx",
                  static_cast<unsigned long long>(s.fingerprint));
    if (granted_fp != fp_buf) {
      s.log("dataset mismatch: coordinator scans fingerprint " + granted_fp +
            ", this worker loaded " + fp_buf);
      return kExitError;
    }

    ShardOutcome outcome = ShardOutcome::kFailed;
    try {
      with_order(static_cast<unsigned>(param_u64(*reply, "order")),
                 [&](auto kc) {
                   outcome =
                       run_granted_shard<decltype(kc)::value>(s, *reply);
                 });
    } catch (const std::exception& e) {
      // Deliberately no abandon: letting the lease expire charges the
      // shard a failure, which is what drives the coordinator's backoff
      // and poison-shard quarantine.
      s.log(std::string("shard scan failed: ") + e.what());
      s.conn.close();
      sleep_ms(options, options.poll_ms);
      continue;
    }
    switch (outcome) {
      case ShardOutcome::kCompleted:
      case ShardOutcome::kLeaseLost:
        continue;
      case ShardOutcome::kInterrupted:
        return kExitInterrupted;
      case ShardOutcome::kDisconnected:
        s.log("coordinator unreachable; exiting (the shard checkpoint "
              "survives for harvest)");
        return kExitOk;
      case ShardOutcome::kFailed:
        sleep_ms(options, options.poll_ms);
        continue;
    }
  }
  return kExitInterrupted;
}

}  // namespace trigen::fleet

#else  // _WIN32

namespace trigen::fleet {

int run_worker(const dataset::GenotypeMatrix&, const std::string&,
               const WorkerOptions&) {
  std::fprintf(stderr, "trigen work: fleet workers require POSIX sockets\n");
  return 2;
}

}  // namespace trigen::fleet

#endif
