#pragma once
/// \file worker.hpp
/// \brief The fleet worker: lease, scan, renew, complete, repeat.
///
/// `run_worker` is the whole `trigen work` loop: connect to a
/// `trigen coordinate` Unix socket, ask for a lease, run the granted shard
/// through shard::run_shard_of with the coordinator-chosen checkpoint path
/// and cadence, send `renew` (carrying the checkpoint watermark) after
/// every durable chunk, write the shard-result file, send `complete`, and
/// come back for the next lease.  All coordination failure modes are
/// survived locally:
///
///   * `lease-lost` on a renew → stop scanning at the already-persisted
///     checkpoint and re-lease (the coordinator has re-owned the range).
///   * Connection loss → reconnect within `reconnect_ms`; an in-flight
///     shard is abandoned back to the coordinator on reconnect so its
///     checkpoint prefix is harvested promptly instead of after lease
///     expiry.  A coordinator that never comes back ends the worker with
///     exit 0 — its durable artifacts are the hand-off.
///   * A scan error (foreign checkpoint artifact, I/O failure) drops the
///     lease silently: expiry charges the shard a failure, which is what
///     feeds the coordinator's backoff/quarantine accounting for poison
///     shards.
///
/// Exit codes follow the trigen convention: 0 fleet drained (or
/// coordinator gone), 2 configuration error (wrong dataset), 3 interrupted
/// (SIGINT/SIGTERM; resumable), 4 aborted because only quarantined shards
/// remain.

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "trigen/core/detector.hpp"
#include "trigen/dataset/genotype_matrix.hpp"

namespace trigen::fleet {

struct WorkerOptions {
  /// Worker name on the wire ([A-Za-z0-9_.-]{1,64}); the CLI defaults it
  /// to w<pid>.
  std::string id = "worker";
  unsigned threads = 0;  ///< 0 = hardware concurrency
  core::CpuVersion version = core::CpuVersion::kV4Vector;
  std::optional<core::KernelIsa> isa;  ///< pin a kernel ISA (else auto/config)
  core::ConfigResolver config;         ///< tuning-profile resolver
  std::uint64_t poll_ms = 200;         ///< wait/retry granularity
  /// Budget for re-reaching a lost coordinator before giving up (exit 0).
  std::uint64_t reconnect_ms = 15000;
  std::function<void(const std::string&)> log;  ///< stderr in the CLI
  const std::atomic<bool>* interrupted = nullptr;
};

/// Runs the worker loop against the coordinator socket until the fleet is
/// drained, the coordinator disappears for longer than `reconnect_ms`, the
/// fleet stalls on quarantined shards, or an interrupt lands.  Returns the
/// process exit code (see file comment).
int run_worker(const dataset::GenotypeMatrix& dataset,
               const std::string& socket_path, const WorkerOptions& options);

}  // namespace trigen::fleet
