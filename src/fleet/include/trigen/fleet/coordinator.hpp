#pragma once
/// \file coordinator.hpp
/// \brief Lease-based fleet coordinator: elastic multi-worker scan control.
///
/// `FleetCoordinator` is the control plane behind `trigen coordinate`.  It
/// plans the colex rank space [0, C(M,k)) into shards (shard::plan_shards),
/// then leases them to `trigen work` processes over the serve line protocol
/// (`lease`/`renew`/`complete`/`abandon` verbs; pipe or Unix-socket
/// transport from serve/endpoint.hpp).  The headline property is
/// robustness with *exactness*: workers may crash, hang, straggle or return
/// garbage at any point, and the fleet still converges to a final top-k
/// byte-identical to a single-process `trigen scan` — because every shard
/// artifact is exact and the merge is exact, fault tolerance never has to
/// trade away correctness.
///
/// Liveness and failure handling:
///
///   * A lease carries a deadline; each worker renewal (sent after every
///     durable checkpoint chunk, carrying the checkpoint watermark as a
///     progress heartbeat) extends it.  The endpoint's tick() drives expiry:
///     an expired lease is revoked, the dead worker's durable checkpoint is
///     harvested — its completed prefix [first, watermark) folds into the
///     merge tree via shard::clip_to_prefix — and only the remainder
///     [watermark, last) is re-queued as a fresh shard id.
///   * Re-queued-after-failure ranges carry capped exponential backoff
///     (base·2^failures, capped), so a range that keeps killing workers
///     does not monopolize the fleet; after `max_failures` it is
///     quarantined as a poison shard and the coordinator reports the stall
///     instead of spinning or, worse, publishing a partial answer.
///   * A straggler whose lease already expired gets `lease-lost` on its
///     next renew/complete and moves on; duplicate completions of an
///     already-reassigned shard are harmless by determinism (same bytes).
///
/// Completed shards fold into a rolling merge tree: adjacent done ranges
/// are merged (shard::merge_shards_of, kContiguous) into one spool file and
/// the inputs unlinked, so coordinator memory and spool usage stay
/// O(active shards + top_k), not O(planned shards).  The lease table
/// persists fsync-atomically (state.hpp) after every transition; a killed
/// coordinator resumes from it without double-counting completed work, and
/// a coordinator re-run over a finished state simply re-emits the result.
/// The engine is transport-free and fully in-process-testable: feed
/// protocol lines to submit_line(), drive time with tick() and an injected
/// clock.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "trigen/core/detector.hpp"
#include "trigen/dataset/genotype_matrix.hpp"
#include "trigen/fleet/state.hpp"
#include "trigen/serve/server.hpp"
#include "trigen/shard/plan.hpp"

namespace trigen::fleet {

struct CoordinatorOptions {
  unsigned order = 3;
  core::Objective objective = core::Objective::kK2;
  std::uint64_t top_k = 10;
  /// Shards to plan.  More shards than workers is the point: small shards
  /// bound the work lost to a crash and feed the straggler-free tail.
  unsigned shards = 16;
  shard::SplitStrategy split = shard::SplitStrategy::kEvenRanks;
  std::uint64_t block_size = 0;  ///< kBlockAligned only
  /// Directory for all fleet artifacts: the lease table (fleet.state),
  /// per-shard checkpoints/results and merged intermediates.  Must not
  /// contain whitespace (paths travel in protocol lines).
  std::string spool = ".";
  /// Final CSV destination ("" = no file; final_csv() always serves it).
  std::string out;
  /// Lease duration; renewals (one per worker checkpoint chunk) extend it.
  /// Must comfortably exceed a worker's per-chunk scan time.
  std::uint64_t lease_ms = 10000;
  /// Checkpoint cadence leased workers are told to use; 0 = shard_size/64.
  std::uint64_t checkpoint_every = 0;
  /// Failures (lease expiries / bad results) before a range is quarantined.
  std::uint32_t max_failures = 5;
  std::uint64_t backoff_base_ms = 250;
  std::uint64_t backoff_cap_ms = 8000;
  /// Injectable monotonic clock for tests; default = steady_clock.
  std::function<std::uint64_t()> now_ms{};
  /// Operational log lines (lease grants/expiries, harvests, quarantines,
  /// completion); the CLI points this at stderr.  Never protocol output.
  std::function<void(const std::string&)> log{};
};

class FleetCoordinator final : public serve::LineService {
 public:
  /// Plans a fresh fleet scan — or resumes one when `spool`/fleet.state
  /// already holds a matching lease table (same dataset fingerprint,
  /// order, objective, top_k; anything else throws std::runtime_error
  /// instead of merging foreign work).  The dataset is only consulted for
  /// its shape and fingerprint; the coordinator never scans.
  FleetCoordinator(const dataset::GenotypeMatrix& dataset,
                   CoordinatorOptions options);
  ~FleetCoordinator() override;

  FleetCoordinator(const FleetCoordinator&) = delete;
  FleetCoordinator& operator=(const FleetCoordinator&) = delete;

  bool submit_line(const std::string& line, serve::EventSink sink) override;

  /// Lease-expiry housekeeping; called by the endpoint every poll tick and
  /// by tests driving a fake clock.
  void tick() override;

  /// True once every rank merged and the final CSV was written — the
  /// endpoint then closes down cleanly with exit 0.  Also true when every
  /// non-quarantined shard is done but poison shards remain: no progress
  /// is possible, and jobs_interrupted() reports the stall (exit 3).
  bool finished() const override;

  bool drain(const std::atomic<bool>* interrupted = nullptr) override;

  /// Persists the lease table (it already is, after every transition;
  /// this is the idempotent endpoint hook).  Returns 1 while unfinished —
  /// the state file is the resume artifact — and 0 once complete.
  std::size_t shutdown_and_checkpoint() override;

  /// 0 when the scan completed; the number of unfinished shards (pending +
  /// leased + quarantined) otherwise, making interrupted/stalled sessions
  /// exit 3 like every other resumable trigen interruption.
  std::size_t jobs_interrupted() const override;

  /// The canonical scan CSV of the finished fleet (scan_csv_lines); empty
  /// until finished() && !stalled.
  std::vector<std::string> final_csv() const;

  // Introspection (status lines, tests).
  std::size_t shards_pending() const;
  std::size_t shards_leased() const;
  std::size_t shards_quarantined() const;
  std::uint64_t reassignments() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace trigen::fleet
