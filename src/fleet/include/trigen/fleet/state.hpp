#pragma once
/// \file state.hpp
/// \brief The fleet coordinator's durable lease table.
///
/// One line-oriented text format, `TRIGEN-FLEET v1`, written with the same
/// write→fsync→rename→fsync(dir) path as the shard artifacts
/// (shard::write_text_file_durably), so a killed coordinator always finds
/// either the previous complete table or the new complete table — never a
/// torn one:
///
///   TRIGEN-FLEET v1
///   order 3
///   fingerprint <hex16>
///   snps M
///   samples N
///   objective k2
///   top_k K
///   next_shard I
///   shards n
///   s <id> <first> <last> <pending|quarantined> <failures>
///   ...
///   done n
///   d <first> <last> <spool-file-name>
///   ...
///   end TRIGEN-FLEET
///
/// Only what resuming needs is persisted.  Leases are deliberately
/// *volatile*: a shard leased at crash time is written back as `pending`,
/// because a restarted coordinator cannot trust a lease it did not grant —
/// the worker either re-leases (its renew gets `lease-lost` and it comes
/// back around) or its durable checkpoint is harvested when the fresh
/// lease's worker adopts it.  `done` ranges name spool files holding
/// completed shard results (relative to the spool directory, hence the
/// whitespace-free-name requirement); after compaction they are pairwise
/// non-adjacent and sorted by first rank.

#include <cstdint>
#include <string>
#include <vector>

#include "trigen/combinatorics/scheduler.hpp"

namespace trigen::fleet {

/// Scheduling state of one not-yet-completed shard.
enum class ShardState {
  kPending,      ///< waiting for a worker (possibly under failure backoff)
  kLeased,       ///< granted to a worker; revoked when the lease expires
  kQuarantined,  ///< failed max_failures times; never re-leased (poison)
};

const char* shard_state_name(ShardState s);

/// One not-yet-completed shard.  Everything after `failures` is volatile
/// lease bookkeeping that is never persisted (see file comment).
struct ShardEntry {
  std::uint64_t id = 0;                ///< unique within one fleet state
  combinatorics::RankRange range;
  ShardState state = ShardState::kPending;
  std::uint32_t failures = 0;          ///< lease expiries / bad results so far

  std::string worker;                  ///< holder while kLeased
  std::uint64_t lease_deadline_ms = 0; ///< revoke at this clock reading
  std::uint64_t backoff_until_ms = 0;  ///< not leasable before this reading
  std::uint64_t watermark = 0;         ///< last renewed watermark (status only)
};

/// A completed contiguous rank interval, durably spooled as a shard-result
/// file (name relative to the spool directory).
struct DoneRange {
  combinatorics::RankRange range;
  std::string file;
};

/// Everything a restarted coordinator needs to continue a fleet scan.
struct FleetState {
  unsigned order = 3;
  std::uint64_t fingerprint = 0;
  std::uint64_t num_snps = 0;
  std::uint64_t num_samples = 0;
  std::string objective;
  std::uint64_t top_k = 0;
  std::uint64_t next_shard = 0;  ///< id allocator (requeues mint fresh ids)
  std::vector<ShardEntry> shards;
  std::vector<DoneRange> done;
};

/// Atomic, crash-durable write of the lease table.  Throws
/// shard::ShardIoError (path + errno) on I/O failure and
/// std::invalid_argument when a spool file name contains whitespace (the
/// token-oriented format could not read it back).
void write_fleet_state_file(const std::string& path, const FleetState& s);

/// Strict parse-or-throw reader: bad magic, truncation, malformed fields,
/// out-of-range values and overlapping/unsorted done ranges all throw
/// std::runtime_error naming the first violation.  Leased entries come
/// back as kPending by construction of the writer.
FleetState read_fleet_state_file(const std::string& path);

}  // namespace trigen::fleet
