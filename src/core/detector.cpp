#include "trigen/core/detector.hpp"

#include <functional>
#include <stdexcept>

#include "trigen/combinatorics/block_partition.hpp"
#include "trigen/combinatorics/scheduler.hpp"
#include "trigen/common/stopwatch.hpp"
#include "trigen/core/scan_driver.hpp"
#include "trigen/scoring/chi_squared.hpp"
#include "trigen/scoring/k2.hpp"
#include "trigen/scoring/mutual_information.hpp"

namespace trigen::core {

using combinatorics::RankRange;
using combinatorics::Triplet;
using scoring::ContingencyTable;

std::string cpu_version_name(CpuVersion v) {
  switch (v) {
    case CpuVersion::kV1Naive: return "V1-naive";
    case CpuVersion::kV2Split: return "V2-split";
    case CpuVersion::kV3Blocked: return "V3-blocked";
    case CpuVersion::kV4Vector: return "V4-vector";
    case CpuVersion::kV5PairCache: return "V5-paircache";
  }
  return "unknown";
}

std::string objective_name(Objective o) {
  switch (o) {
    case Objective::kK2: return "k2";
    case Objective::kMutualInformation: return "mutual-information";
    case Objective::kChiSquared: return "chi-squared";
  }
  return "unknown";
}

struct Detector::Impl {
  std::size_t num_snps;
  std::size_t num_samples;
  dataset::BitPlanesV1 v1;
  dataset::PhenoSplitPlanes split;
};

Detector::Detector(const dataset::GenotypeMatrix& d)
    : impl_(std::make_unique<Impl>(Impl{
          d.num_snps(),
          d.num_samples(),
          dataset::BitPlanesV1::build(d),
          dataset::PhenoSplitPlanes::build(d),
      })) {
  if (d.num_snps() < 3) {
    throw std::invalid_argument("Detector: need at least 3 SNPs");
  }
  if (!d.valid()) {
    throw std::invalid_argument("Detector: dataset contains invalid values");
  }
}

Detector::~Detector() = default;

std::size_t Detector::num_snps() const { return impl_->num_snps; }
std::size_t Detector::num_samples() const { return impl_->num_samples; }
const dataset::BitPlanesV1& Detector::planes_v1() const { return impl_->v1; }
const dataset::PhenoSplitPlanes& Detector::planes_split() const {
  return impl_->split;
}

std::function<double(const ContingencyTable&)> make_normalized_scorer(
    Objective o, std::uint32_t num_samples) {
  switch (o) {
    case Objective::kK2: {
      auto k2 = std::make_shared<scoring::K2Score>(num_samples);
      return [k2](const ContingencyTable& t) { return (*k2)(t); };
    }
    case Objective::kMutualInformation:
      return [mi = scoring::MutualInformation{}](const ContingencyTable& t) {
        return -mi(t);
      };
    case Objective::kChiSquared:
      return [chi = scoring::ChiSquared{}](const ContingencyTable& t) {
        return -chi(t);
      };
  }
  throw std::invalid_argument("unknown objective");
}

namespace {

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

DetectionResult Detector::run(const DetectorOptions& options) const {
  DetectionResult result;
  result.threads_used = resolve_threads(options.threads);
  // V1 and V3 are scalar by definition; V4/V5 default to the widest
  // available strategy.  V2 honors an explicitly requested ISA (the
  // heterogeneous coordinator pairs the per-triplet path with a vector
  // kernel).
  result.isa_used = KernelIsa::kScalar;
  if (options.version == CpuVersion::kV4Vector ||
      options.version == CpuVersion::kV5PairCache) {
    result.isa_used = options.isa_auto ? best_kernel_isa() : options.isa;
  } else if (options.version == CpuVersion::kV2Split && !options.isa_auto) {
    result.isa_used = options.isa;
  }
  if (!kernel_available(result.isa_used)) {
    throw std::runtime_error("requested kernel ISA not available: " +
                             kernel_isa_name(result.isa_used));
  }
  if (options.top_k == 0) {
    throw std::invalid_argument("DetectorOptions::top_k must be >= 1");
  }

  const std::size_t m = impl_->num_snps;
  const std::uint64_t total_triplets = combinatorics::num_triplets(m);
  RankRange range = options.range;
  if (range.empty()) range = {0, total_triplets};
  if (range.last > total_triplets) {
    throw std::invalid_argument("DetectorOptions::range exceeds the space");
  }
  const bool partial = range.first != 0 || range.last != total_triplets;
  result.triplets_evaluated = range.size();
  result.elements = range.size() * impl_->num_samples;

  const auto scorer =
      options.scorer
          ? options.scorer
          : make_normalized_scorer(
                options.objective,
                static_cast<std::uint32_t>(impl_->num_samples));

  // One shared driver runs every version: it owns the fork/join, the
  // per-thread TopK accumulators, the throttled progress callback and the
  // deterministic rank-ordered merge.  The versions only differ in how a
  // scheduled work unit maps to triplets.
  ScanConfig cfg;
  cfg.threads = result.threads_used;
  cfg.chunk_size = options.chunk_size;
  cfg.progress = options.progress;
  cfg.progress_total = range.size();

  Stopwatch sw;
  TopK merged(options.top_k);
  const bool cached = options.version == CpuVersion::kV5PairCache;
  const bool blocked = options.version == CpuVersion::kV3Blocked ||
                       options.version == CpuVersion::kV4Vector || cached;
  if (!blocked) {
    // V1/V2: work unit = one triplet rank inside `range`.
    const bool naive = options.version == CpuVersion::kV1Naive;
    const KernelIsa isa = result.isa_used;
    merged = scan_topk(
        range.size(), cfg, options.top_k,
        [&](unsigned, RankRange r, TopK& top) -> std::uint64_t {
          combinatorics::for_each_triplet(
              range.first + r.first, range.first + r.last,
              [&](const Triplet& t) {
                const ContingencyTable table =
                    naive ? contingency_v1(impl_->v1, t.x, t.y, t.z)
                          : contingency_split(impl_->split, t.x, t.y, t.z,
                                              isa);
                top.push(ScoredTriplet{t, scorer(table)});
              });
          return r.size();
        });
    result.tiling_used = TilingParams{0, 0};
  } else {
    // V3/V4/V5: work unit = one block triple of the partition covering
    // `range`; emitted triplets are clipped to the range at the partition
    // boundary (interior blocks pay no per-triplet overhead).  V5 budgets
    // L1 for the pair-plane cache when autotuning.
    TilingParams tiling = options.tiling;
    if (!tiling.valid()) {
      tiling = autotune_tiling(detect_l1_config(),
                               kernel_vector_words(result.isa_used), cached);
    }
    result.tiling_used = tiling;
    const combinatorics::BlockGrid grid{m, tiling.bs};
    const combinatorics::BlockPartition part =
        combinatorics::partition_block_triples(grid, range);
    const RankRange clip = partial ? range : kFullRange;
    std::vector<BlockScratch> scratch;
    scratch.reserve(cfg.threads);
    for (unsigned t = 0; t < cfg.threads; ++t) scratch.emplace_back(tiling.bs);
    const auto scan_blocks = [&](auto&& engine_kernels) {
      return scan_topk(
          part.block_ranks.size(), cfg, options.top_k,
          [&](unsigned tid, RankRange r, TopK& top) -> std::uint64_t {
            std::uint64_t emitted = 0;
            for (std::uint64_t b = r.first; b < r.last; ++b) {
              scan_block_triple(
                  impl_->split, tiling, engine_kernels, scratch[tid],
                  unrank_block_triple(part.block_ranks.first + b), clip,
                  [&](const Triplet& t, const ContingencyTable& table) {
                    ++emitted;
                    top.push(ScoredTriplet{t, scorer(table)});
                  });
            }
            return emitted;
          });
    };
    merged = cached ? scan_blocks(get_cached_kernels(result.isa_used))
                    : scan_blocks(get_kernel(result.isa_used));
  }
  result.seconds = sw.seconds();
  result.best = merged.sorted();
  return result;
}

}  // namespace trigen::core
