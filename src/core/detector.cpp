#include "trigen/core/detector.hpp"

#include <functional>
#include <stdexcept>

#include "trigen/combinatorics/block_partition.hpp"
#include "trigen/combinatorics/scheduler.hpp"
#include "trigen/common/stopwatch.hpp"
#include "trigen/core/scan_driver.hpp"
#include "trigen/scoring/chi_squared.hpp"
#include "trigen/scoring/generic.hpp"
#include "trigen/scoring/k2.hpp"
#include "trigen/scoring/mutual_information.hpp"

namespace trigen::core {

using combinatorics::Combination;
using combinatorics::RankRange;
using scoring::ContingencyTable;

std::string cpu_version_name(CpuVersion v) {
  switch (v) {
    case CpuVersion::kV1Naive: return "V1-naive";
    case CpuVersion::kV2Split: return "V2-split";
    case CpuVersion::kV3Blocked: return "V3-blocked";
    case CpuVersion::kV4Vector: return "V4-vector";
    case CpuVersion::kV5PairCache: return "V5-paircache";
  }
  return "unknown";
}

KernelFamily scan_kernel_family(unsigned order, CpuVersion version,
                                bool batched) {
  if (batched) return KernelFamily::kFinalizeBatched;
  if (order == 2) return KernelFamily::kPairCount;
  const bool cached = version == CpuVersion::kV5PairCache;
  if (order == 3) {
    return cached ? KernelFamily::kTripleBlockCached
                  : KernelFamily::kTripleBlock;
  }
  return cached ? KernelFamily::kPrefixLadder : KernelFamily::kTupleBlock;
}

std::string objective_name(Objective o) {
  switch (o) {
    case Objective::kK2: return "k2";
    case Objective::kMutualInformation: return "mutual-information";
    case Objective::kChiSquared: return "chi-squared";
  }
  return "unknown";
}

template <unsigned K>
struct BasicDetector<K>::Impl {
  std::size_t num_snps;
  std::size_t num_samples;
  dataset::BitPlanesV1 v1;
  dataset::PhenoSplitPlanes split;
  /// Phenotype-agnostic layout (class 0 = all samples, original order) for
  /// run_batched; the per-partition split happens against PhenotypeBatch
  /// label planes instead of a baked-in phenotype.
  dataset::PhenoSplitPlanes combined;
};

template <unsigned K>
BasicDetector<K>::BasicDetector(const dataset::GenotypeMatrix& d)
    : impl_(std::make_unique<Impl>(Impl{
          d.num_snps(),
          d.num_samples(),
          dataset::BitPlanesV1::build(d),
          dataset::PhenoSplitPlanes::build(d),
          dataset::PhenoSplitPlanes::build_combined(d),
      })) {
  if (d.num_snps() < K) {
    throw std::invalid_argument("Detector: need at least " +
                                std::to_string(K) + " SNPs");
  }
  if (!d.valid()) {
    throw std::invalid_argument("Detector: dataset contains invalid values");
  }
}

template <unsigned K>
BasicDetector<K>::~BasicDetector() = default;

template <unsigned K>
std::size_t BasicDetector<K>::num_snps() const { return impl_->num_snps; }
template <unsigned K>
std::size_t BasicDetector<K>::num_samples() const {
  return impl_->num_samples;
}
template <unsigned K>
const dataset::BitPlanesV1& BasicDetector<K>::planes_v1() const {
  return impl_->v1;
}
template <unsigned K>
const dataset::PhenoSplitPlanes& BasicDetector<K>::planes_split() const {
  return impl_->split;
}

std::function<double(const ContingencyTable&)> make_normalized_scorer(
    Objective o, std::uint32_t num_samples) {
  switch (o) {
    case Objective::kK2: {
      auto k2 = std::make_shared<scoring::K2Score>(num_samples);
      return [k2](const ContingencyTable& t) { return (*k2)(t); };
    }
    case Objective::kMutualInformation:
      return [mi = scoring::MutualInformation{}](const ContingencyTable& t) {
        return -mi(t);
      };
    case Objective::kChiSquared:
      return [chi = scoring::ChiSquared{}](const ContingencyTable& t) {
        return -chi(t);
      };
  }
  throw std::invalid_argument("unknown objective");
}

template <unsigned K>
std::function<double(const scoring::BasicContingencyTable<K>&)>
make_normalized_scorer_of(Objective o, std::uint32_t num_samples) {
  if constexpr (K == 3) {
    return make_normalized_scorer(o, num_samples);
  } else {
    using Table = scoring::BasicContingencyTable<K>;
    switch (o) {
      case Objective::kK2: {
        auto logfact =
            std::make_shared<scoring::LogFactorialTable>(num_samples + 1);
        return [logfact](const Table& t) {
          return scoring::k2_score_cells(*logfact, t.counts[0], t.counts[1]);
        };
      }
      case Objective::kMutualInformation:
        return [](const Table& t) {
          return -scoring::mutual_information_cells(t.counts[0], t.counts[1]);
        };
      case Objective::kChiSquared:
        return [](const Table& t) {
          return -scoring::chi_squared_cells(t.counts[0], t.counts[1]);
        };
    }
    throw std::invalid_argument("unknown objective");
  }
}

namespace {

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// V1 evaluation at any order from the naive Fig.-1 layout: per-cell
/// genotype-plane ANDs against the phenotype / negated phenotype plane.
/// Zero-padded genotype planes contribute nothing, so no pad correction.
template <unsigned K>
scoring::BasicContingencyTable<K> contingency_v1_of(
    const dataset::BitPlanesV1& p, const Combination<K>& s) {
  scoring::BasicContingencyTable<K> t;
  const Word* pheno = p.phenotype_plane();
  for (std::size_t cell = 0; cell < scoring::num_cells(K); ++cell) {
    std::array<const Word*, K> g;
    std::size_t rem = cell;
    for (unsigned i = K; i-- > 0;) {
      g[i] = p.plane(s[i], static_cast<int>(rem % 3));
      rem /= 3;
    }
    std::uint32_t ctrl = 0;
    std::uint32_t cases = 0;
    for (std::size_t w = 0; w < p.words(); ++w) {
      Word v = g[0][w];
      for (unsigned i = 1; i < K; ++i) v &= g[i][w];
      cases += static_cast<std::uint32_t>(std::popcount(v & pheno[w]));
      ctrl += static_cast<std::uint32_t>(std::popcount(v & ~pheno[w]));
    }
    t.counts[0][cell] = ctrl;
    t.counts[1][cell] = cases;
  }
  return t;
}

}  // namespace

template <unsigned K>
scoring::BasicContingencyTable<K> BasicDetector<K>::contingency(
    const Combination<K>& snps, KernelIsa isa) const {
  for (unsigned i = 0; i < K; ++i) {
    if (snps[i] >= impl_->num_snps || (i > 0 && snps[i] <= snps[i - 1])) {
      throw std::out_of_range("Detector::contingency: bad SNP indices");
    }
  }
  const dataset::PhenoSplitPlanes& p = impl_->split;
  scoring::BasicContingencyTable<K> t;
  if constexpr (K == 3) {
    t = contingency_split(p, snps[0], snps[1], snps[2], isa);
  } else if constexpr (K == 2) {
    // The chunk popcounts of the nine x∩y intersections are the table.
    const CachedKernelSet kernels = get_cached_kernels(isa);
    for (int c = 0; c < 2; ++c) {
      std::array<std::uint32_t, 9> pops{};
      kernels.count(p.plane(c, snps[0], 0), p.plane(c, snps[0], 1),
                    p.plane(c, snps[1], 0), p.plane(c, snps[1], 1), 0,
                    p.words(c), pops.data());
      auto& row = t.counts[static_cast<std::size_t>(c)];
      for (int i = 0; i < 9; ++i) row[static_cast<std::size_t>(i)] = pops[static_cast<std::size_t>(i)];
      // NOR padding shows up as phantom (2, 2) observations.
      row[8] -= static_cast<std::uint32_t>(p.pad_bits(c));
    }
  } else {
    const GenericKernelSet kernels = get_generic_kernels(isa);
    std::array<const Word*, K> g0;
    std::array<const Word*, K> g1;
    for (int c = 0; c < 2; ++c) {
      for (unsigned i = 0; i < K; ++i) {
        g0[i] = p.plane(c, snps[i], 0);
        g1[i] = p.plane(c, snps[i], 1);
      }
      auto& row = t.counts[static_cast<std::size_t>(c)];
      kernels.direct(g0.data(), g1.data(), K, 0, p.words(c), row.data());
      // NOR padding shows up as phantom all-genotype-2 observations.
      row[scoring::num_cells(K) - 1] -=
          static_cast<std::uint32_t>(p.pad_bits(c));
    }
  }
  return t;
}

template <unsigned K>
BasicDetectionResult<K> BasicDetector<K>::run(
    const BasicDetectorOptions<K>& options) const {
  using Scored = ScoredOf<K>;
  BasicDetectionResult<K> result;
  result.threads_used = resolve_threads(options.threads);
  const bool cached = options.version == CpuVersion::kV5PairCache;
  const bool vector_version =
      options.version == CpuVersion::kV4Vector || cached;
  // Empirical tuning: when both the ISA and the tiling are still "auto",
  // a profile resolver may supply the measured-best pair for this kernel
  // family and dataset size.  A miss falls through to the analytic
  // defaults below; a choice this host cannot execute is ignored.
  std::optional<KernelConfigChoice> tuned;
  if (vector_version && options.config && options.isa_auto &&
      !options.tiling.valid()) {
    tuned = options.config(KernelConfigRequest{
        scan_kernel_family(K, options.version, false), K, impl_->num_samples,
        0});
    if (tuned && !kernel_available(tuned->isa)) tuned.reset();
  }
  // V1 and V3 are scalar by definition; V4/V5 default to the widest
  // available strategy.  V2 honors an explicitly requested ISA (the
  // heterogeneous coordinator pairs the per-combination path with a vector
  // kernel).
  result.isa_used = KernelIsa::kScalar;
  if (vector_version) {
    result.isa_used = !options.isa_auto ? options.isa
                      : tuned           ? tuned->isa
                                        : best_kernel_isa();
  } else if (options.version == CpuVersion::kV2Split && !options.isa_auto) {
    result.isa_used = options.isa;
  }
  if (!kernel_available(result.isa_used)) {
    throw std::runtime_error("requested kernel ISA not available: " +
                             kernel_isa_name(result.isa_used));
  }
  if (options.top_k == 0) {
    throw std::invalid_argument("DetectorOptions::top_k must be >= 1");
  }

  const std::size_t m = impl_->num_snps;
  const std::uint64_t total = combinatorics::n_choose_k(m, K);
  RankRange range = options.range;
  if (range.empty()) range = {0, total};
  if (range.last > total) {
    throw std::invalid_argument("DetectorOptions::range exceeds the space");
  }
  const bool partial = range.first != 0 || range.last != total;
  result.combinations_evaluated = range.size();
  result.elements = range.size() * impl_->num_samples;

  const auto scorer =
      options.scorer
          ? options.scorer
          : make_normalized_scorer_of<K>(
                options.objective,
                static_cast<std::uint32_t>(impl_->num_samples));

  // One shared driver runs every version: it owns the fork/join, the
  // per-thread TopK accumulators, the throttled progress callback and the
  // deterministic rank-ordered merge.  The versions only differ in how a
  // scheduled work unit maps to combinations.
  ScanConfig cfg;
  cfg.threads = result.threads_used;
  cfg.chunk_size = options.chunk_size;
  cfg.progress = options.progress;
  cfg.progress_total = range.size();

  Stopwatch sw;
  BasicTopK<Scored> merged(options.top_k);
  const bool blocked =
      options.version == CpuVersion::kV3Blocked || vector_version;
  if (!blocked) {
    // V1/V2: work unit = one combination rank inside `range`.
    const bool naive = options.version == CpuVersion::kV1Naive;
    const KernelIsa isa = result.isa_used;
    merged = scan_best<Scored>(
        range.size(), cfg, options.top_k,
        [&](unsigned, RankRange r, BasicTopK<Scored>& top) -> std::uint64_t {
          combinatorics::for_each_combination<K>(
              range.first + r.first, range.first + r.last,
              [&](const Combination<K>& c) {
                const scoring::BasicContingencyTable<K> table =
                    naive ? contingency_v1_of<K>(impl_->v1, c)
                          : contingency(c, isa);
                top.push(make_scored<K>(c, scorer(table)));
              });
          return r.size();
        });
    result.tiling_used = TilingParams{0, 0};
  } else {
    // V3/V4/V5: work unit = one block tuple of the partition covering
    // `range`; emitted combinations are clipped to the range at the
    // partition boundary (interior blocks pay no per-combination
    // overhead).  V5 budgets L1 for the prefix-plane ladder when
    // autotuning.
    TilingParams tiling = options.tiling;
    if (!tiling.valid() && tuned) tiling = tuned->tiling;
    if (!tiling.valid()) {
      tiling = autotune_tiling(detect_l1_config(),
                               kernel_vector_words(result.isa_used), K,
                               cached);
    }
    result.tiling_used = tiling;
    const combinatorics::BlockGrid grid{m, tiling.bs};
    const combinatorics::BlockPartition part =
        combinatorics::partition_block_tuples<K>(grid, range);
    const RankRange clip = partial ? range : kFullRange;
    // Per-thread scratch is constructed lazily by the worker that owns it,
    // not here on the submitting thread: the constructor's zero-fill is the
    // first touch of the table and prefix-plane-cache pages, so on NUMA
    // hosts they land on the scanning thread's node.
    std::vector<std::unique_ptr<TupleBlockScratch<K>>> scratch(cfg.threads);
    const auto thread_scratch = [&](unsigned tid) -> TupleBlockScratch<K>& {
      auto& sc = scratch[tid];
      if (!sc) sc = std::make_unique<TupleBlockScratch<K>>(tiling.bs);
      return *sc;
    };
    const auto scan_blocks = [&](auto&& run_block) {
      return scan_best<Scored>(
          part.block_ranks.size(), cfg, options.top_k,
          [&](unsigned tid, RankRange r,
              BasicTopK<Scored>& top) -> std::uint64_t {
            std::uint64_t emitted = 0;
            const auto on_comb = [&](const Combination<K>& c, double score) {
              ++emitted;
              top.push(make_scored<K>(c, score));
            };
            for (std::uint64_t b = r.first; b < r.last; ++b) {
              run_block(tid,
                        unrank_block_tuple<K>(part.block_ranks.first + b),
                        on_comb);
            }
            return emitted;
          });
    };
    if constexpr (K == 2) {
      // The counts-only kernel is the whole pair evaluation; V3 runs its
      // scalar variant, V4 and V5 the vector one (identical here — the
      // ladder has no rungs below order 3).
      const CachedKernelSet kernels = get_cached_kernels(result.isa_used);
      merged = scan_blocks([&](unsigned tid, const BlockTuple<2>& bt,
                               const auto& on_comb) {
        scan_block_pair(impl_->split, tiling, kernels, thread_scratch(tid),
                        BlockPair{bt[0], bt[1]}, clip,
                        [&](const combinatorics::Pair& pr,
                            const scoring::PairContingencyTable& tb) {
                          on_comb(Combination<2>{pr.x, pr.y}, scorer(tb));
                        });
      });
    } else if constexpr (K == 3) {
      // The hand-tuned three-operand kernels (all per-ISA variants) stay on
      // the hot path of the order the paper measures.
      const auto run3 = [&](auto&& engine_kernels) {
        return scan_blocks([&](unsigned tid, const BlockTuple<3>& bt,
                               const auto& on_comb) {
          scan_block_triple(impl_->split, tiling, engine_kernels,
                            thread_scratch(tid),
                            BlockTriple{bt[0], bt[1], bt[2]},
                            clip,
                            [&](const combinatorics::Triplet& tr,
                                const scoring::ContingencyTable& tb) {
                              on_comb(Combination<3>{tr.x, tr.y, tr.z},
                                      scorer(tb));
                            });
        });
      };
      merged = cached ? run3(get_cached_kernels(result.isa_used))
                      : run3(get_kernel(result.isa_used));
    } else {
      const GenericKernelSet generic = get_generic_kernels(result.isa_used);
      const auto on_table = [&](const auto& on_comb) {
        return [&scorer, on_comb](
                   const Combination<K>& c,
                   const scoring::BasicContingencyTable<K>& tb) {
          on_comb(c, scorer(tb));
        };
      };
      if (cached) {
        const CachedKernelSet ck = get_cached_kernels(result.isa_used);
        merged = scan_blocks([&](unsigned tid, const BlockTuple<K>& bt,
                                 const auto& on_comb) {
          scan_block_tuple<K>(impl_->split, tiling, ck, generic,
                              thread_scratch(tid), bt, clip,
                              on_table(on_comb));
        });
      } else {
        merged = scan_blocks([&](unsigned tid, const BlockTuple<K>& bt,
                                 const auto& on_comb) {
          scan_block_tuple<K>(impl_->split, tiling, generic,
                              thread_scratch(tid), bt, clip,
                              on_table(on_comb));
        });
      }
    }
  }
  result.seconds = sw.seconds();
  result.best = merged.sorted();
  return result;
}

template <unsigned K>
BasicBatchDetectionResult<K> BasicDetector<K>::run_batched(
    const dataset::PhenotypeBatch& batch,
    const BasicDetectorOptions<K>& options) const {
  using Scored = ScoredOf<K>;
  if (batch.num_samples() != impl_->num_samples) {
    throw std::invalid_argument(
        "run_batched: batch and dataset sample counts differ");
  }
  if (options.top_k == 0) {
    throw std::invalid_argument("DetectorOptions::top_k must be >= 1");
  }
  BasicBatchDetectionResult<K> result;
  result.threads_used = resolve_threads(options.threads);
  const std::size_t slots = batch.size();
  // Empirical tuning, as in run(): consulted only when ISA and tiling are
  // both still auto, keyed by the batched-finalize family and slot count.
  std::optional<KernelConfigChoice> tuned;
  if (options.config && options.isa_auto && !options.tiling.valid()) {
    tuned = options.config(KernelConfigRequest{
        KernelFamily::kFinalizeBatched, K, impl_->num_samples, slots});
    if (tuned && !kernel_available(tuned->isa)) tuned.reset();
  }
  result.isa_used = !options.isa_auto ? options.isa
                    : tuned           ? tuned->isa
                                      : best_kernel_isa();
  if (!kernel_available(result.isa_used)) {
    throw std::runtime_error("requested kernel ISA not available: " +
                             kernel_isa_name(result.isa_used));
  }

  const std::size_t m = impl_->num_snps;
  const std::uint64_t total = combinatorics::n_choose_k(m, K);
  RankRange range = options.range;
  if (range.empty()) range = {0, total};
  if (range.last > total) {
    throw std::invalid_argument("DetectorOptions::range exceeds the space");
  }
  const bool partial = range.first != 0 || range.last != total;
  result.combinations_evaluated = range.size();
  result.elements = range.size() * impl_->num_samples * slots;

  const auto scorer =
      options.scorer
          ? options.scorer
          : make_normalized_scorer_of<K>(
                options.objective,
                static_cast<std::uint32_t>(impl_->num_samples));

  ScanConfig cfg;
  cfg.threads = result.threads_used;
  cfg.chunk_size = options.chunk_size;
  cfg.progress = options.progress;
  cfg.progress_total = range.size();

  // Always the cached blocked engine (the whole point is amortizing the
  // ladder), with the batch-aware L1 budget: the per-tuple tables grow to
  // 1 + P slots and the resident label rows join the streamed block.
  TilingParams tiling = options.tiling;
  if (!tiling.valid() && tuned) tiling = tuned->tiling;
  if (!tiling.valid()) {
    tiling = autotune_tiling(detect_l1_config(),
                             kernel_vector_words(result.isa_used), K, true,
                             slots, batch.stride());
  }
  result.tiling_used = tiling;

  const CachedKernelSet cachedk = get_cached_kernels(result.isa_used);
  const GenericKernelSet generic = get_generic_kernels(result.isa_used);
  const BatchKernelSet bkern = get_batch_kernels(result.isa_used);

  const combinatorics::BlockGrid grid{m, tiling.bs};
  const combinatorics::BlockPartition part =
      combinatorics::partition_block_tuples<K>(grid, range);
  const RankRange clip = partial ? range : kFullRange;

  // Lazily constructed by the owning worker (NUMA first touch, as in run()).
  std::vector<std::unique_ptr<BatchTupleScratch<K>>> scratch(cfg.threads);
  const auto thread_scratch = [&](unsigned tid) -> BatchTupleScratch<K>& {
    auto& sc = scratch[tid];
    if (!sc) {
      sc = std::make_unique<BatchTupleScratch<K>>(tiling.bs, slots,
                                                  batch.stride());
    }
    return *sc;
  };

  Stopwatch sw;
  // One TopK per partition per thread; the per-partition merge keeps each
  // ranking deterministic (score-then-rank tie-break) and independent.
  std::vector<std::vector<BasicTopK<Scored>>> per_thread(
      cfg.threads,
      std::vector<BasicTopK<Scored>>(slots, BasicTopK<Scored>(options.top_k)));
  parallel_scan(
      part.block_ranks.size(), cfg, per_thread,
      [&](unsigned tid, RankRange r,
          std::vector<BasicTopK<Scored>>& acc) -> std::uint64_t {
        std::uint64_t emitted = 0;
        const auto on_table =
            [&](const Combination<K>& c, std::size_t p,
                const scoring::BasicContingencyTable<K>& tb) {
              if (p == 0) ++emitted;  // combinations, not tables
              acc[p].push(make_scored<K>(c, scorer(tb)));
            };
        for (std::uint64_t b = r.first; b < r.last; ++b) {
          const BlockTuple<K> bt =
              unrank_block_tuple<K>(part.block_ranks.first + b);
          if constexpr (K == 2) {
            scan_block_pair_batched(impl_->combined, batch, tiling, cachedk,
                                    bkern, thread_scratch(tid),
                                    BlockPair{bt[0], bt[1]}, clip, on_table);
          } else {
            scan_block_tuple_batched<K>(impl_->combined, batch, tiling,
                                        cachedk, generic, bkern,
                                        thread_scratch(tid), bt, clip,
                                        on_table);
          }
        }
        return emitted;
      });
  result.seconds = sw.seconds();
  result.best.resize(slots);
  for (std::size_t p = 0; p < slots; ++p) {
    BasicTopK<Scored> merged(options.top_k);
    for (const auto& th : per_thread) merged.merge(th[p]);
    result.best[p] = merged.sorted();
  }
  return result;
}

template class BasicDetector<2>;
template class BasicDetector<3>;
template class BasicDetector<4>;
template class BasicDetector<5>;
template class BasicDetector<6>;

template std::function<double(const scoring::BasicContingencyTable<2>&)>
make_normalized_scorer_of<2>(Objective, std::uint32_t);
template std::function<double(const scoring::BasicContingencyTable<3>&)>
make_normalized_scorer_of<3>(Objective, std::uint32_t);
template std::function<double(const scoring::BasicContingencyTable<4>&)>
make_normalized_scorer_of<4>(Objective, std::uint32_t);
template std::function<double(const scoring::BasicContingencyTable<5>&)>
make_normalized_scorer_of<5>(Objective, std::uint32_t);
template std::function<double(const scoring::BasicContingencyTable<6>&)>
make_normalized_scorer_of<6>(Objective, std::uint32_t);

}  // namespace trigen::core
