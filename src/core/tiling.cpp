#include "trigen/core/tiling.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <string>

#if defined(__linux__)
#include <sched.h>
#endif

#include "trigen/dataset/bitplanes.hpp"

namespace trigen::core {

TilingParams autotune_tiling(const L1Config& l1, std::size_t vector_words,
                             bool pair_cache) {
  return autotune_tiling(l1, vector_words, 3, pair_cache);
}

TilingParams autotune_tiling(const L1Config& l1, std::size_t vector_words,
                             unsigned order, bool cached) {
  const double way_bytes =
      static_cast<double>(l1.size_bytes) / std::max(1u, l1.ways);
  const double size_ft = way_bytes * l1.ways_for_tables;
  const double size_block = way_bytes * l1.ways_for_block;

  // B_S^order * 4 * 2 * 3^order <= size_FT
  const double cells = static_cast<double>(pow3(order));
  std::size_t bs = static_cast<std::size_t>(
      std::pow(size_ft / (4.0 * 2 * cells), 1.0 / order));
  bs = std::max<std::size_t>(1, bs);
  while (tuple_tables_bytes(bs + 1, order) <=
         static_cast<std::size_t>(size_ft)) {
    ++bs;
  }
  while (bs > 1 &&
         tuple_tables_bytes(bs, order) > static_cast<std::size_t>(size_ft)) {
    --bs;
  }

  // B_S * B_P * 4 * 2 <= size_Block, B_P a multiple of the vector width.
  // The cached engine keeps the prefix-plane ladder (rungs 2..order-1) hot
  // alongside the streamed block, so its chunk adds prefix_cache_bytes to
  // the budget.  PrefixPlaneCache rounds its per-plane stride up to a
  // whole number of AVX-512 registers, so B_P itself is rounded to that
  // granularity — stride == B_P and the budgeted footprint is the
  // allocated one.
  const bool has_cache_planes = cached && order >= 3;
  const double bytes_per_bp =
      4.0 * 2 * static_cast<double>(bs) +
      (has_cache_planes ? static_cast<double>(prefix_cache_bytes(1, order))
                        : 0.0);
  std::size_t bp = static_cast<std::size_t>(size_block / bytes_per_bp);
  const std::size_t granule =
      has_cache_planes ? std::max(vector_words, dataset::kWordsPerVector)
                       : vector_words;
  if (granule > 1) bp = bp / granule * granule;
  bp = std::max<std::size_t>(std::max<std::size_t>(1, granule), bp);

  return TilingParams{bs, bp};
}

TilingParams autotune_tiling(const L1Config& l1, std::size_t vector_words,
                             unsigned order, bool cached,
                             std::size_t batch_slots,
                             std::size_t label_stride) {
  if (batch_slots == 0) return autotune_tiling(l1, vector_words, order, cached);

  const double way_bytes =
      static_cast<double>(l1.size_bytes) / std::max(1u, l1.ways);
  const double size_block = way_bytes * l1.ways_for_block;

  // The batched engines hold 1 + P tables per live tuple (totals plus one
  // case table per partition), but unlike the sequential engine those
  // tables are only touched in a sequential writeback after each chunk's
  // word loop — they stream, they do not need L1 residency.  B_S is sized
  // for completion reuse (every extra z amortizes the per-chunk ladder and
  // label popcounts) against an L2-scale table budget; at order == 2 one
  // pair emits immediately and the plain sizing applies.
  std::size_t bs;
  const double cells = static_cast<double>(pow3(order));
  if (order >= 3) {
    constexpr double kBatchTableBudget = 512.0 * 1024.0;
    const double per_z = (1.0 + static_cast<double>(batch_slots)) * cells * 4.0;
    bs = static_cast<std::size_t>(kBatchTableBudget / per_z);
    bs = std::min<std::size_t>(std::max<std::size_t>(4, bs), 64);
  } else {
    bs = autotune_tiling(l1, vector_words, order, cached).bs;
  }

  // Streamed-block budget per word: one completion's two genotype planes
  // (only one z is hot at a time), the prefix-plane ladder, and the label
  // rows.  At real partition counts the label rows cannot be L1-resident
  // for any usable chunk anyway — they stream linearly from L2 — so the
  // chunk is floored at sixteen granules: tiny chunks only multiply the
  // per-chunk ladder builds, label-pops passes and table writebacks.
  const bool has_cache_planes = cached && order >= 3;
  const double bytes_per_bp =
      4.0 * 2 +
      (has_cache_planes ? static_cast<double>(prefix_cache_bytes(1, order))
                        : 0.0) +
      4.0 * static_cast<double>(label_stride);
  std::size_t bp = static_cast<std::size_t>(size_block / bytes_per_bp);
  const std::size_t granule =
      std::max(vector_words, dataset::kWordsPerVector);
  bp = bp / granule * granule;
  bp = std::max<std::size_t>(16 * granule, bp);

  return TilingParams{bs, bp};
}

namespace {

/// Parses e.g. "48K" from sysfs cache size files.
std::size_t parse_size(const std::string& s) {
  if (s.empty()) return 0;
  std::size_t value = 0;
  std::size_t i = 0;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
    value = value * 10 + static_cast<std::size_t>(s[i] - '0');
    ++i;
  }
  if (i < s.size() && (s[i] == 'K' || s[i] == 'k')) value *= 1024;
  if (i < s.size() && (s[i] == 'M' || s[i] == 'm')) value *= 1024 * 1024;
  return value;
}

std::string read_line(const std::string& path) {
  std::ifstream is(path);
  std::string line;
  if (is) std::getline(is, line);
  return line;
}

}  // namespace

L1Config detect_l1_config() {
  return detect_l1_config("/sys/devices/system/cpu", -1);
}

L1Config detect_l1_config(const std::string& sysfs_cpu_root, int cpu) {
  L1Config cfg;
  cfg.size_bytes = 32 * 1024;
  cfg.ways = 8;

  if (cpu < 0) {
#if defined(__linux__)
    cpu = sched_getcpu();
#endif
    if (cpu < 0) cpu = 0;
  }

  // Scan the CPU's cache index entries for the level-1 data cache rather
  // than assuming index0 — sysfs does not guarantee the ordering, and
  // per-CPU entries are what differ on hybrid parts.
  const auto probe = [&](int c) -> bool {
    const std::string base =
        sysfs_cpu_root + "/cpu" + std::to_string(c) + "/cache/index";
    for (int idx = 0; idx < 8; ++idx) {
      const std::string dir = base + std::to_string(idx) + "/";
      const std::string level = read_line(dir + "level");
      if (level.empty()) break;  // no further index entries
      if (level != "1") continue;
      const std::string type = read_line(dir + "type");
      if (type != "Data" && type != "Unified") continue;
      const std::size_t size = parse_size(read_line(dir + "size"));
      if (size == 0) return false;
      cfg.size_bytes = size;
      const unsigned w = static_cast<unsigned>(
          parse_size(read_line(dir + "ways_of_associativity")));
      if (w > 0) cfg.ways = w;
      return true;
    }
    return false;
  };
  if (!probe(cpu) && cpu != 0) probe(0);

  // Paper's split: 7 ways of tables everywhere; on wide (>=12-way) caches
  // keep one spare way for the hardware prefetcher, on 8-way caches use the
  // single remaining way for the block.
  cfg.ways_for_tables = std::min(7u, cfg.ways > 1 ? cfg.ways - 1 : 1u);
  if (cfg.ways >= 12) {
    cfg.ways_for_block = cfg.ways - cfg.ways_for_tables - 1;
  } else {
    cfg.ways_for_block = std::max(1u, cfg.ways - cfg.ways_for_tables);
  }
  return cfg;
}

}  // namespace trigen::core
