#include "trigen/core/blocked_engine.hpp"

#include <cmath>

namespace trigen::core {

using combinatorics::n_choose_k;

std::uint64_t num_block_triples(std::uint64_t nb) {
  return n_choose_k(nb + 2, 3);
}

std::uint64_t rank_block_triple(const BlockTriple& t) {
  return n_choose_k(std::uint64_t{t.b2} + 2, 3) +
         n_choose_k(std::uint64_t{t.b1} + 1, 2) + t.b0;
}

BlockTriple unrank_block_triple(std::uint64_t rank) {
  // b2 = max { c : C(c+2,3) <= rank }.
  std::uint64_t c = static_cast<std::uint64_t>(
      std::cbrt(6.0 * static_cast<double>(rank) + 1.0));
  c = c > 2 ? c - 2 : 0;
  while (n_choose_k(c + 3, 3) <= rank) ++c;
  while (c > 0 && n_choose_k(c + 2, 3) > rank) --c;
  std::uint64_t rem = rank - n_choose_k(c + 2, 3);

  // b1 = max { b : C(b+1,2) <= rem }.
  std::uint64_t b = static_cast<std::uint64_t>(
      std::sqrt(2.0 * static_cast<double>(rem) + 0.25));
  b = b > 1 ? b - 1 : 0;
  while (n_choose_k(b + 2, 2) <= rem) ++b;
  while (b > 0 && n_choose_k(b + 1, 2) > rem) --b;
  rem -= n_choose_k(b + 1, 2);

  return BlockTriple{static_cast<std::uint32_t>(rem),
                     static_cast<std::uint32_t>(b),
                     static_cast<std::uint32_t>(c)};
}

}  // namespace trigen::core
