#include <bit>
#include <stdexcept>

#include "trigen/common/cpuid.hpp"
#include "trigen/core/kernels.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace trigen::core {

namespace detail {
// Defined in kernels_scalar.cpp.
void triple_block_scalar(const Word* x0, const Word* x1, const Word* y0,
                         const Word* y1, const Word* z0, const Word* z1,
                         std::size_t w_begin, std::size_t w_end,
                         std::uint32_t* ft27);

#if defined(__AVX2__)
namespace {
/// Sum of set bits in a 256-bit register via the paper's AVX strategy:
/// four 64-bit extracts, each fed to the scalar POPCNT unit.
inline std::uint32_t popcnt256_extract(__m256i v) {
  return static_cast<std::uint32_t>(
      std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(v, 0))) +
      std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(v, 1))) +
      std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(v, 2))) +
      std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(v, 3))));
}
}  // namespace

void triple_block_avx2(const Word* x0, const Word* x1, const Word* y0,
                       const Word* y1, const Word* z0, const Word* z1,
                       std::size_t w_begin, std::size_t w_end,
                       std::uint32_t* ft27) {
  const __m256i ones = _mm256_set1_epi32(-1);
  std::size_t w = w_begin;
  for (; w + 8 <= w_end; w += 8) {
    // No vector NOR on AVX CPUs: OR followed by XOR with all-ones (§IV-A).
    __m256i xg[3], yg[3], zg[3];
    xg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x0 + w));
    xg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x1 + w));
    xg[2] = _mm256_xor_si256(_mm256_or_si256(xg[0], xg[1]), ones);
    yg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y0 + w));
    yg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y1 + w));
    yg[2] = _mm256_xor_si256(_mm256_or_si256(yg[0], yg[1]), ones);
    zg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z0 + w));
    zg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z1 + w));
    zg[2] = _mm256_xor_si256(_mm256_or_si256(zg[0], zg[1]), ones);

    int cell = 0;
    for (int gx = 0; gx < 3; ++gx) {
      for (int gy = 0; gy < 3; ++gy) {
        const __m256i xy = _mm256_and_si256(xg[gx], yg[gy]);
        for (int gz = 0; gz < 3; ++gz) {
          ft27[cell++] += popcnt256_extract(_mm256_and_si256(xy, zg[gz]));
        }
      }
    }
  }
  triple_block_scalar(x0, x1, y0, y1, z0, z1, w, w_end, ft27);
}
#endif  // __AVX2__

#if defined(__AVX2__)
void triple_block_avx2_harley_seal(const Word* x0, const Word* x1,
                                   const Word* y0, const Word* y1,
                                   const Word* z0, const Word* z1,
                                   std::size_t w_begin, std::size_t w_end,
                                   std::uint32_t* ft27) {
  // Ablation strategy: SWAR nibble-LUT popcount (Mula's algorithm) instead
  // of extract + scalar POPCNT.  Per-cell byte counts are horizontally
  // summed with SAD against zero into 64-bit lanes, which cannot overflow
  // for any realistic plane length; one final extract chain per cell.
  const __m256i ones = _mm256_set1_epi32(-1);
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc[27];
  for (auto& a : acc) a = zero;

  std::size_t w = w_begin;
  for (; w + 8 <= w_end; w += 8) {
    __m256i xg[3], yg[3], zg[3];
    xg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x0 + w));
    xg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x1 + w));
    xg[2] = _mm256_xor_si256(_mm256_or_si256(xg[0], xg[1]), ones);
    yg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y0 + w));
    yg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y1 + w));
    yg[2] = _mm256_xor_si256(_mm256_or_si256(yg[0], yg[1]), ones);
    zg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z0 + w));
    zg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z1 + w));
    zg[2] = _mm256_xor_si256(_mm256_or_si256(zg[0], zg[1]), ones);

    int cell = 0;
    for (int gx = 0; gx < 3; ++gx) {
      for (int gy = 0; gy < 3; ++gy) {
        const __m256i xy = _mm256_and_si256(xg[gx], yg[gy]);
        for (int gz = 0; gz < 3; ++gz) {
          const __m256i v = _mm256_and_si256(xy, zg[gz]);
          const __m256i lo = _mm256_and_si256(v, low_mask);
          const __m256i hi =
              _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
          const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                              _mm256_shuffle_epi8(lut, hi));
          acc[cell] = _mm256_add_epi64(acc[cell], _mm256_sad_epu8(cnt, zero));
          ++cell;
        }
      }
    }
  }
  for (int cell = 0; cell < 27; ++cell) {
    ft27[cell] += static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(_mm256_extract_epi64(acc[cell], 0)) +
        static_cast<std::uint64_t>(_mm256_extract_epi64(acc[cell], 1)) +
        static_cast<std::uint64_t>(_mm256_extract_epi64(acc[cell], 2)) +
        static_cast<std::uint64_t>(_mm256_extract_epi64(acc[cell], 3)));
  }
  triple_block_scalar(x0, x1, y0, y1, z0, z1, w, w_end, ft27);
}
#endif  // __AVX2__

#if defined(__AVX512F__) && defined(__AVX512BW__)
namespace {
/// Skylake-SP strategy: two-level extraction feeding the scalar POPCNT unit
/// (the overhead that makes CI2 the slowest CPU per core in Fig. 3).
inline std::uint32_t popcnt512_extract(__m512i v) {
  const __m256i lo = _mm512_extracti64x4_epi64(v, 0);
  const __m256i hi = _mm512_extracti64x4_epi64(v, 1);
  return popcnt256_extract(lo) + popcnt256_extract(hi);
}
}  // namespace

void triple_block_avx512_extract(const Word* x0, const Word* x1, const Word* y0,
                                 const Word* y1, const Word* z0, const Word* z1,
                                 std::size_t w_begin, std::size_t w_end,
                                 std::uint32_t* ft27) {
  const __m512i ones = _mm512_set1_epi32(-1);
  std::size_t w = w_begin;
  for (; w + 16 <= w_end; w += 16) {
    __m512i xg[3], yg[3], zg[3];
    xg[0] = _mm512_loadu_si512(reinterpret_cast<const void*>(x0 + w));
    xg[1] = _mm512_loadu_si512(reinterpret_cast<const void*>(x1 + w));
    xg[2] = _mm512_xor_si512(_mm512_or_si512(xg[0], xg[1]), ones);
    yg[0] = _mm512_loadu_si512(reinterpret_cast<const void*>(y0 + w));
    yg[1] = _mm512_loadu_si512(reinterpret_cast<const void*>(y1 + w));
    yg[2] = _mm512_xor_si512(_mm512_or_si512(yg[0], yg[1]), ones);
    zg[0] = _mm512_loadu_si512(reinterpret_cast<const void*>(z0 + w));
    zg[1] = _mm512_loadu_si512(reinterpret_cast<const void*>(z1 + w));
    zg[2] = _mm512_xor_si512(_mm512_or_si512(zg[0], zg[1]), ones);

    int cell = 0;
    for (int gx = 0; gx < 3; ++gx) {
      for (int gy = 0; gy < 3; ++gy) {
        const __m512i xy = _mm512_and_si512(xg[gx], yg[gy]);
        for (int gz = 0; gz < 3; ++gz) {
          ft27[cell++] += popcnt512_extract(_mm512_and_si512(xy, zg[gz]));
        }
      }
    }
  }
  triple_block_scalar(x0, x1, y0, y1, z0, z1, w, w_end, ft27);
}
#endif  // AVX512F && AVX512BW

#if defined(__AVX512VPOPCNTDQ__)
void triple_block_avx512_vpopcnt(const Word* x0, const Word* x1, const Word* y0,
                                 const Word* y1, const Word* z0, const Word* z1,
                                 std::size_t w_begin, std::size_t w_end,
                                 std::uint32_t* ft27) {
  // Ice Lake SP strategy (§IV-A, last paragraph): vector POPCNT per cell,
  // frequency table updated with a reduction.  The table is kept as 27
  // lane-wise vector accumulators for the duration of the word loop — the
  // per-lane count over one call is bounded by 32 bits per word, so 32-bit
  // lanes cannot overflow for any plane shorter than 2^26 words — and each
  // accumulator is reduced exactly once at the end.
  const __m512i ones = _mm512_set1_epi32(-1);
  __m512i acc[27];
  for (auto& a : acc) a = _mm512_setzero_si512();

  std::size_t w = w_begin;
  for (; w + 16 <= w_end; w += 16) {
    __m512i xg[3], yg[3], zg[3];
    xg[0] = _mm512_loadu_si512(reinterpret_cast<const void*>(x0 + w));
    xg[1] = _mm512_loadu_si512(reinterpret_cast<const void*>(x1 + w));
    xg[2] = _mm512_xor_si512(_mm512_or_si512(xg[0], xg[1]), ones);
    yg[0] = _mm512_loadu_si512(reinterpret_cast<const void*>(y0 + w));
    yg[1] = _mm512_loadu_si512(reinterpret_cast<const void*>(y1 + w));
    yg[2] = _mm512_xor_si512(_mm512_or_si512(yg[0], yg[1]), ones);
    zg[0] = _mm512_loadu_si512(reinterpret_cast<const void*>(z0 + w));
    zg[1] = _mm512_loadu_si512(reinterpret_cast<const void*>(z1 + w));
    zg[2] = _mm512_xor_si512(_mm512_or_si512(zg[0], zg[1]), ones);

    int cell = 0;
    for (int gx = 0; gx < 3; ++gx) {
      for (int gy = 0; gy < 3; ++gy) {
        const __m512i xy = _mm512_and_si512(xg[gx], yg[gy]);
        for (int gz = 0; gz < 3; ++gz) {
          acc[cell] = _mm512_add_epi32(
              acc[cell],
              _mm512_popcnt_epi32(_mm512_and_si512(xy, zg[gz])));
          ++cell;
        }
      }
    }
  }
  for (int cell = 0; cell < 27; ++cell) {
    ft27[cell] +=
        static_cast<std::uint32_t>(_mm512_reduce_add_epi32(acc[cell]));
  }
  triple_block_scalar(x0, x1, y0, y1, z0, z1, w, w_end, ft27);
}
#endif  // __AVX512VPOPCNTDQ__

}  // namespace detail

const std::vector<KernelIsa>& all_kernel_isas() {
  static const std::vector<KernelIsa> v = [] {
    std::vector<KernelIsa> out = {KernelIsa::kScalar};
#if defined(__AVX2__)
    out.push_back(KernelIsa::kAvx2);
    out.push_back(KernelIsa::kAvx2HarleySeal);
#endif
#if defined(__AVX512F__) && defined(__AVX512BW__)
    out.push_back(KernelIsa::kAvx512Extract);
#endif
#if defined(__AVX512VPOPCNTDQ__)
    out.push_back(KernelIsa::kAvx512Vpopcnt);
#endif
    return out;
  }();
  return v;
}

bool kernel_available(KernelIsa isa) {
  const auto& f = cpu_features();
  switch (isa) {
    case KernelIsa::kScalar:
      return true;
    case KernelIsa::kAvx2:
    case KernelIsa::kAvx2HarleySeal:
#if defined(__AVX2__)
      return f.avx2;
#else
      return false;
#endif
    case KernelIsa::kAvx512Extract:
#if defined(__AVX512F__) && defined(__AVX512BW__)
      return f.avx512f && f.avx512bw;
#else
      return false;
#endif
    case KernelIsa::kAvx512Vpopcnt:
#if defined(__AVX512VPOPCNTDQ__)
      return f.avx512vpopcntdq;
#else
      return false;
#endif
  }
  return false;
}

KernelIsa best_kernel_isa() {
  KernelIsa best = KernelIsa::kScalar;
  for (const KernelIsa isa : all_kernel_isas()) {
    if (kernel_available(isa)) best = isa;
  }
  return best;
}

std::string kernel_isa_name(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar: return "scalar";
    case KernelIsa::kAvx2: return "avx2";
    case KernelIsa::kAvx2HarleySeal: return "avx2-harley-seal";
    case KernelIsa::kAvx512Extract: return "avx512-extract";
    case KernelIsa::kAvx512Vpopcnt: return "avx512-vpopcnt";
  }
  return "unknown";
}

TripleBlockKernel get_kernel(KernelIsa isa) {
  if (!kernel_available(isa)) {
    throw std::runtime_error("kernel '" + kernel_isa_name(isa) +
                             "' not available on this host");
  }
  switch (isa) {
    case KernelIsa::kScalar:
      return &detail::triple_block_scalar;
#if defined(__AVX2__)
    case KernelIsa::kAvx2:
      return &detail::triple_block_avx2;
    case KernelIsa::kAvx2HarleySeal:
      return &detail::triple_block_avx2_harley_seal;
#endif
#if defined(__AVX512F__) && defined(__AVX512BW__)
    case KernelIsa::kAvx512Extract:
      return &detail::triple_block_avx512_extract;
#endif
#if defined(__AVX512VPOPCNTDQ__)
    case KernelIsa::kAvx512Vpopcnt:
      return &detail::triple_block_avx512_vpopcnt;
#endif
    default:
      throw std::runtime_error("kernel not compiled in");
  }
}

std::size_t kernel_vector_words(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar: return 1;
    case KernelIsa::kAvx2:
    case KernelIsa::kAvx2HarleySeal: return 8;
    case KernelIsa::kAvx512Extract:
    case KernelIsa::kAvx512Vpopcnt: return 16;
  }
  return 1;
}

}  // namespace trigen::core
