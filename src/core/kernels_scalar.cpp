#include <bit>
#include <stdexcept>

#include "kernels_detail.hpp"
#include "trigen/core/kernels.hpp"

namespace trigen::core {

namespace detail {

void triple_block_scalar(const Word* TRIGEN_RESTRICT x0,
                         const Word* TRIGEN_RESTRICT x1,
                         const Word* TRIGEN_RESTRICT y0,
                         const Word* TRIGEN_RESTRICT y1,
                         const Word* TRIGEN_RESTRICT z0,
                         const Word* TRIGEN_RESTRICT z1,
                         std::size_t w_begin, std::size_t w_end,
                         std::uint32_t* TRIGEN_RESTRICT ft27) {
  for (std::size_t w = w_begin; w < w_end; ++w) {
    const Word xg[3] = {x0[w], x1[w], static_cast<Word>(~(x0[w] | x1[w]))};
    const Word yg[3] = {y0[w], y1[w], static_cast<Word>(~(y0[w] | y1[w]))};
    const Word zg[3] = {z0[w], z1[w], static_cast<Word>(~(z0[w] | z1[w]))};
    int cell = 0;
    for (int gx = 0; gx < 3; ++gx) {
      for (int gy = 0; gy < 3; ++gy) {
        const Word xy = xg[gx] & yg[gy];
        for (int gz = 0; gz < 3; ++gz) {
          ft27[cell++] += static_cast<std::uint32_t>(std::popcount(xy & zg[gz]));
        }
      }
    }
  }
}

void pair_plane_build_scalar(const Word* TRIGEN_RESTRICT x0,
                             const Word* TRIGEN_RESTRICT x1,
                             const Word* TRIGEN_RESTRICT y0,
                             const Word* TRIGEN_RESTRICT y1,
                             std::size_t w_begin, std::size_t w_end,
                             Word* TRIGEN_RESTRICT xy, std::size_t stride,
                             std::uint32_t* TRIGEN_RESTRICT xy_pop9) {
  for (std::size_t w = w_begin; w < w_end; ++w) {
    const Word xg[3] = {x0[w], x1[w], static_cast<Word>(~(x0[w] | x1[w]))};
    const Word yg[3] = {y0[w], y1[w], static_cast<Word>(~(y0[w] | y1[w]))};
    const std::size_t rel = w - w_begin;
    for (int p = 0; p < 9; ++p) {
      const Word v = xg[p / 3] & yg[p % 3];
      xy[static_cast<std::size_t>(p) * stride + rel] = v;
      xy_pop9[p] += static_cast<std::uint32_t>(std::popcount(v));
    }
  }
}

void pair_plane_count_scalar(const Word* TRIGEN_RESTRICT x0,
                             const Word* TRIGEN_RESTRICT x1,
                             const Word* TRIGEN_RESTRICT y0,
                             const Word* TRIGEN_RESTRICT y1,
                             std::size_t w_begin, std::size_t w_end,
                             std::uint32_t* TRIGEN_RESTRICT xy_pop9) {
  for (std::size_t w = w_begin; w < w_end; ++w) {
    const Word xg[3] = {x0[w], x1[w], static_cast<Word>(~(x0[w] | x1[w]))};
    const Word yg[3] = {y0[w], y1[w], static_cast<Word>(~(y0[w] | y1[w]))};
    for (int p = 0; p < 9; ++p) {
      xy_pop9[p] +=
          static_cast<std::uint32_t>(std::popcount(xg[p / 3] & yg[p % 3]));
    }
  }
}

void triple_block_cached_scalar(const Word* TRIGEN_RESTRICT xy,
                                std::size_t stride,
                                const std::uint32_t* TRIGEN_RESTRICT xy_pop9,
                                const Word* TRIGEN_RESTRICT z0,
                                const Word* TRIGEN_RESTRICT z1,
                                std::size_t w_begin, std::size_t w_end,
                                std::uint32_t* TRIGEN_RESTRICT ft27) {
  const std::size_t n = w_end - w_begin;
  for (int p = 0; p < 9; ++p) {
    const Word* TRIGEN_RESTRICT xyp =
        xy + static_cast<std::size_t>(p) * stride;
    std::uint32_t c0 = 0;
    std::uint32_t c1 = 0;
    for (std::size_t r = 0; r < n; ++r) {
      const Word v = xyp[r];
      c0 += static_cast<std::uint32_t>(std::popcount(v & z0[w_begin + r]));
      c1 += static_cast<std::uint32_t>(std::popcount(v & z1[w_begin + r]));
    }
    const int cell = (p / 3) * 9 + (p % 3) * 3;
    ft27[cell] += c0;
    ft27[cell + 1] += c1;
    ft27[cell + 2] += xy_pop9[p] - c0 - c1;
  }
}

void prefix_extend_scalar(const Word* TRIGEN_RESTRICT prefix,
                          std::size_t count, std::size_t stride,
                          const Word* TRIGEN_RESTRICT s0,
                          const Word* TRIGEN_RESTRICT s1, std::size_t w_begin,
                          std::size_t w_end, Word* TRIGEN_RESTRICT out,
                          std::size_t out_stride,
                          std::uint32_t* TRIGEN_RESTRICT out_pops) {
  const std::size_t n = w_end - w_begin;
  for (std::size_t t = 0; t < count; ++t) {
    const Word* TRIGEN_RESTRICT pt = prefix + t * stride;
    Word* TRIGEN_RESTRICT o0 = out + (t * 3 + 0) * out_stride;
    Word* TRIGEN_RESTRICT o1 = out + (t * 3 + 1) * out_stride;
    Word* TRIGEN_RESTRICT o2 = out + (t * 3 + 2) * out_stride;
    std::uint32_t c0 = 0, c1 = 0, c2 = 0;
    for (std::size_t r = 0; r < n; ++r) {
      const Word p = pt[r];
      const Word a = p & s0[w_begin + r];
      const Word b = p & s1[w_begin + r];
      // Partition identity: a and b are disjoint subsets of p, so the
      // genotype-2 child (padding included, like the NOR planes) is the
      // XOR remainder.
      const Word c = p ^ a ^ b;
      o0[r] = a;
      o1[r] = b;
      o2[r] = c;
      c0 += static_cast<std::uint32_t>(std::popcount(a));
      c1 += static_cast<std::uint32_t>(std::popcount(b));
      c2 += static_cast<std::uint32_t>(std::popcount(c));
    }
    if (out_pops != nullptr) {
      out_pops[t * 3 + 0] += c0;
      out_pops[t * 3 + 1] += c1;
      out_pops[t * 3 + 2] += c2;
    }
  }
}

void prefix_final_scalar(const Word* TRIGEN_RESTRICT prefix, std::size_t count,
                         std::size_t stride,
                         const std::uint32_t* TRIGEN_RESTRICT prefix_pops,
                         const Word* TRIGEN_RESTRICT z0,
                         const Word* TRIGEN_RESTRICT z1, std::size_t w_begin,
                         std::size_t w_end,
                         std::uint32_t* TRIGEN_RESTRICT ft) {
  const std::size_t n = w_end - w_begin;
  for (std::size_t t = 0; t < count; ++t) {
    const Word* TRIGEN_RESTRICT pt = prefix + t * stride;
    std::uint32_t c0 = 0;
    std::uint32_t c1 = 0;
    for (std::size_t r = 0; r < n; ++r) {
      const Word v = pt[r];
      c0 += static_cast<std::uint32_t>(std::popcount(v & z0[w_begin + r]));
      c1 += static_cast<std::uint32_t>(std::popcount(v & z1[w_begin + r]));
    }
    ft[t * 3 + 0] += c0;
    ft[t * 3 + 1] += c1;
    ft[t * 3 + 2] += prefix_pops[t] - c0 - c1;
  }
}

void tuple_block_scalar(const Word* const* TRIGEN_RESTRICT g0,
                        const Word* const* TRIGEN_RESTRICT g1, unsigned k,
                        std::size_t w_begin, std::size_t w_end,
                        std::uint32_t* TRIGEN_RESTRICT ft) {
  Word g[combinatorics::kMaxOrder][3];
  for (std::size_t w = w_begin; w < w_end; ++w) {
    for (unsigned i = 0; i < k; ++i) {
      g[i][0] = g0[i][w];
      g[i][1] = g1[i][w];
      g[i][2] = static_cast<Word>(~(g[i][0] | g[i][1]));
    }
    // Depth-first product over the k genotype axes, reusing each partial
    // AND across its three children; cell = sum g_j * 3^(k-1-j).
    const auto descend = [&](const auto& self, unsigned i, Word acc,
                             std::size_t cell) -> void {
      if (i == k) {
        ft[cell] += static_cast<std::uint32_t>(std::popcount(acc));
        return;
      }
      for (int gi = 0; gi < 3; ++gi) {
        self(self, i + 1, acc & g[i][gi], cell * 3 + static_cast<std::size_t>(gi));
      }
    };
    descend(descend, 0, ~Word{0}, 0);
  }
}

void batch_label_pops_scalar(const Word* TRIGEN_RESTRICT prefix,
                             std::size_t count, std::size_t stride,
                             const Word* TRIGEN_RESTRICT labels,
                             std::size_t num_labels, std::size_t lstride,
                             std::size_t w_begin, std::size_t w_end,
                             std::uint32_t* TRIGEN_RESTRICT label_pops) {
  const std::size_t n = w_end - w_begin;
  for (std::size_t t = 0; t < count; ++t) {
    const Word* TRIGEN_RESTRICT pt = prefix + t * stride;
    for (std::size_t r = 0; r < n; ++r) {
      const Word v = pt[r];
      if (v == 0) continue;  // prefix planes thin out at deeper rungs
      const Word* TRIGEN_RESTRICT row = labels + (w_begin + r) * lstride;
      for (std::size_t p = 0; p < num_labels; ++p) {
        label_pops[t * lstride + p] +=
            static_cast<std::uint32_t>(std::popcount(v & row[p]));
      }
    }
  }
}

void batch_final_scalar(const Word* TRIGEN_RESTRICT prefix, std::size_t count,
                        std::size_t stride,
                        const std::uint32_t* TRIGEN_RESTRICT prefix_pops,
                        const std::uint32_t* TRIGEN_RESTRICT label_pops,
                        const Word* TRIGEN_RESTRICT z0,
                        const Word* TRIGEN_RESTRICT z1,
                        const Word* TRIGEN_RESTRICT labels,
                        std::size_t num_labels, std::size_t lstride,
                        std::size_t w_begin, std::size_t w_end,
                        std::uint32_t* TRIGEN_RESTRICT ft,
                        std::size_t ft_stride) {
  const std::size_t n = w_end - w_begin;
  for (std::size_t t = 0; t < count; ++t) {
    const Word* TRIGEN_RESTRICT pt = prefix + t * stride;
    std::uint32_t c0 = 0;
    std::uint32_t c1 = 0;
    for (std::size_t r = 0; r < n; ++r) {
      c0 += static_cast<std::uint32_t>(std::popcount(pt[r] & z0[w_begin + r]));
      c1 += static_cast<std::uint32_t>(std::popcount(pt[r] & z1[w_begin + r]));
    }
    ft[t * 3 + 0] += c0;
    ft[t * 3 + 1] += c1;
    ft[t * 3 + 2] += prefix_pops[t] - c0 - c1;
    // Partition identity per label lane: the genotype-2 case cell is the
    // chunk's |prefix ∩ L_p| minus the two counted case cells, so each
    // partition costs two AND+POPCNT streams instead of a third pass.
    for (std::size_t p = 0; p < num_labels; ++p) {
      std::uint32_t a0 = 0;
      std::uint32_t a1 = 0;
      for (std::size_t r = 0; r < n; ++r) {
        const Word v = pt[r];
        if (v == 0) continue;
        const Word l = labels[(w_begin + r) * lstride + p];
        a0 +=
            static_cast<std::uint32_t>(std::popcount(v & z0[w_begin + r] & l));
        a1 +=
            static_cast<std::uint32_t>(std::popcount(v & z1[w_begin + r] & l));
      }
      std::uint32_t* TRIGEN_RESTRICT ftp = ft + (1 + p) * ft_stride + t * 3;
      ftp[0] += a0;
      ftp[1] += a1;
      ftp[2] += label_pops[t * lstride + p] - a0 - a1;
    }
  }
}

}  // namespace detail

scoring::ContingencyTable contingency_v1(const dataset::BitPlanesV1& p,
                                         std::size_t x, std::size_t y,
                                         std::size_t z) {
  scoring::ContingencyTable t;
  const Word* pheno = p.phenotype_plane();
  for (int gx = 0; gx < 3; ++gx) {
    const Word* px = p.plane(x, gx);
    for (int gy = 0; gy < 3; ++gy) {
      const Word* py = p.plane(y, gy);
      for (int gz = 0; gz < 3; ++gz) {
        const Word* pz = p.plane(z, gz);
        const auto cell =
            static_cast<std::size_t>(scoring::cell_index(gx, gy, gz));
        std::uint32_t ctrl = 0;
        std::uint32_t cases = 0;
        for (std::size_t w = 0; w < p.words(); ++w) {
          const Word g = px[w] & py[w] & pz[w];
          cases += static_cast<std::uint32_t>(std::popcount(g & pheno[w]));
          ctrl += static_cast<std::uint32_t>(std::popcount(g & ~pheno[w]));
        }
        t.counts[0][cell] = ctrl;
        t.counts[1][cell] = cases;
      }
    }
  }
  return t;
}

scoring::ContingencyTable contingency_split(const dataset::PhenoSplitPlanes& p,
                                            std::size_t x, std::size_t y,
                                            std::size_t z, KernelIsa isa) {
  const TripleBlockKernel kernel = get_kernel(isa);
  scoring::ContingencyTable t;
  for (int c = 0; c < 2; ++c) {
    kernel(p.plane(c, x, 0), p.plane(c, x, 1), p.plane(c, y, 0),
           p.plane(c, y, 1), p.plane(c, z, 0), p.plane(c, z, 1), 0, p.words(c),
           t.counts[static_cast<std::size_t>(c)].data());
    // NOR padding shows up as phantom (2,2,2) observations.
    t.counts[static_cast<std::size_t>(c)][26] -=
        static_cast<std::uint32_t>(p.pad_bits(c));
  }
  return t;
}

}  // namespace trigen::core
