/// \file kernels_dispatch.cpp
/// \brief Runtime kernel registry and dispatcher (paper §IV-A).
///
/// Compiled WITHOUT any ISA-specific flags: this translation unit must be
/// executable on any x86-64 (or non-x86) host, because it runs before — and
/// decides whether — any vector code is entered.  Which per-ISA variants the
/// build compiled in arrives via the TRIGEN_KERNEL_* compile definitions
/// (see src/core/CMakeLists.txt); whether the host can execute them is
/// answered by cpu_features().  Both must agree before get_kernel() hands
/// out a vector kernel — runtime dispatch is the single authority on what
/// executes.

#include <stdexcept>

#include "kernels_detail.hpp"
#include "trigen/common/cpuid.hpp"
#include "trigen/core/kernel_config.hpp"
#include "trigen/core/kernels.hpp"

namespace trigen::core {

const std::vector<KernelIsa>& all_kernel_isas() {
  static const std::vector<KernelIsa> v = [] {
    std::vector<KernelIsa> out = {KernelIsa::kScalar};
#if defined(TRIGEN_KERNEL_AVX2)
    out.push_back(KernelIsa::kAvx2);
    out.push_back(KernelIsa::kAvx2HarleySeal);
#endif
#if defined(TRIGEN_KERNEL_AVX512)
    out.push_back(KernelIsa::kAvx512Extract);
#endif
#if defined(TRIGEN_KERNEL_AVX512VPOPCNT)
    out.push_back(KernelIsa::kAvx512Vpopcnt);
#endif
    return out;
  }();
  return v;
}

bool kernel_available(KernelIsa isa) {
  const auto& f = cpu_features();
  switch (isa) {
    case KernelIsa::kScalar:
      return true;
    case KernelIsa::kAvx2:
    case KernelIsa::kAvx2HarleySeal:
#if defined(TRIGEN_KERNEL_AVX2)
      return f.avx2;
#else
      return false;
#endif
    case KernelIsa::kAvx512Extract:
#if defined(TRIGEN_KERNEL_AVX512)
      return f.avx512f && f.avx512bw;
#else
      return false;
#endif
    case KernelIsa::kAvx512Vpopcnt:
#if defined(TRIGEN_KERNEL_AVX512VPOPCNT)
      return f.avx512f && f.avx512bw && f.avx512vpopcntdq;
#else
      return false;
#endif
  }
  return false;
}

KernelIsa best_kernel_isa() {
  KernelIsa best = KernelIsa::kScalar;
  for (const KernelIsa isa : all_kernel_isas()) {
    if (kernel_available(isa)) best = isa;
  }
  return best;
}

std::string kernel_isa_name(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar: return "scalar";
    case KernelIsa::kAvx2: return "avx2";
    case KernelIsa::kAvx2HarleySeal: return "avx2-harley-seal";
    case KernelIsa::kAvx512Extract: return "avx512-extract";
    case KernelIsa::kAvx512Vpopcnt: return "avx512-vpopcnt";
  }
  return "unknown";
}

std::optional<KernelIsa> parse_kernel_isa(const std::string& name) {
  for (const KernelIsa isa : all_kernel_isas()) {
    if (kernel_isa_name(isa) == name) return isa;
  }
  return std::nullopt;
}

std::string kernel_family_name(KernelFamily f) {
  switch (f) {
    case KernelFamily::kPairCount: return "pair_count";
    case KernelFamily::kTripleBlock: return "triple_block";
    case KernelFamily::kTripleBlockCached: return "triple_block_cached";
    case KernelFamily::kPairPlaneBuild: return "pair_plane_build";
    case KernelFamily::kTupleBlock: return "tuple_block";
    case KernelFamily::kPrefixLadder: return "prefix_ladder";
    case KernelFamily::kFinalizeBatched: return "finalize_batched";
  }
  return "unknown";
}

std::optional<KernelFamily> parse_kernel_family(const std::string& name) {
  static const KernelFamily all[] = {
      KernelFamily::kPairCount,       KernelFamily::kTripleBlock,
      KernelFamily::kTripleBlockCached, KernelFamily::kPairPlaneBuild,
      KernelFamily::kTupleBlock,      KernelFamily::kPrefixLadder,
      KernelFamily::kFinalizeBatched,
  };
  for (const KernelFamily f : all) {
    if (kernel_family_name(f) == name) return f;
  }
  return std::nullopt;
}

TripleBlockKernel get_kernel(KernelIsa isa) {
  if (!kernel_available(isa)) {
    throw std::runtime_error("kernel '" + kernel_isa_name(isa) +
                             "' not available on this host");
  }
  switch (isa) {
    case KernelIsa::kScalar:
      return &detail::triple_block_scalar;
#if defined(TRIGEN_KERNEL_AVX2)
    case KernelIsa::kAvx2:
      return &detail::triple_block_avx2;
    case KernelIsa::kAvx2HarleySeal:
      return &detail::triple_block_avx2_harley_seal;
#endif
#if defined(TRIGEN_KERNEL_AVX512)
    case KernelIsa::kAvx512Extract:
      return &detail::triple_block_avx512_extract;
#endif
#if defined(TRIGEN_KERNEL_AVX512VPOPCNT)
    case KernelIsa::kAvx512Vpopcnt:
      return &detail::triple_block_avx512_vpopcnt;
#endif
    default:
      throw std::runtime_error("kernel not compiled in");
  }
}

CachedKernelSet get_cached_kernels(KernelIsa isa) {
  if (!kernel_available(isa)) {
    throw std::runtime_error("kernel '" + kernel_isa_name(isa) +
                             "' not available on this host");
  }
  switch (isa) {
    case KernelIsa::kScalar:
      return {&detail::pair_plane_build_scalar,
              &detail::triple_block_cached_scalar,
              &detail::pair_plane_count_scalar};
#if defined(TRIGEN_KERNEL_AVX2)
    case KernelIsa::kAvx2:
      return {&detail::pair_plane_build_avx2,
              &detail::triple_block_cached_avx2,
              &detail::pair_plane_count_avx2};
    case KernelIsa::kAvx2HarleySeal:
      return {&detail::pair_plane_build_avx2_harley_seal,
              &detail::triple_block_cached_avx2_harley_seal,
              &detail::pair_plane_count_avx2_harley_seal};
#endif
#if defined(TRIGEN_KERNEL_AVX512)
    case KernelIsa::kAvx512Extract:
      return {&detail::pair_plane_build_avx512_extract,
              &detail::triple_block_cached_avx512_extract,
              &detail::pair_plane_count_avx512_extract};
#endif
#if defined(TRIGEN_KERNEL_AVX512VPOPCNT)
    case KernelIsa::kAvx512Vpopcnt:
      return {&detail::pair_plane_build_avx512_vpopcnt,
              &detail::triple_block_cached_avx512_vpopcnt,
              &detail::pair_plane_count_avx512_vpopcnt};
#endif
    default:
      throw std::runtime_error("kernel not compiled in");
  }
}

GenericKernelSet get_generic_kernels(KernelIsa isa) {
  if (!kernel_available(isa)) {
    throw std::runtime_error("kernel '" + kernel_isa_name(isa) +
                             "' not available on this host");
  }
  // Scalar stays scalar; every vector strategy maps to the widest compiled
  // generic path.  An AVX-512-capable host always executes AVX2, and every
  // variant is exact, so results are bit-identical across the mapping.
  if (isa == KernelIsa::kScalar) {
    return {&detail::prefix_extend_scalar, &detail::prefix_final_scalar,
            &detail::tuple_block_scalar};
  }
#if defined(TRIGEN_KERNEL_AVX2)
  return {&detail::prefix_extend_avx2, &detail::prefix_final_avx2,
          &detail::tuple_block_avx2};
#else
  return {&detail::prefix_extend_scalar, &detail::prefix_final_scalar,
          &detail::tuple_block_scalar};
#endif
}

BatchKernelSet get_batch_kernels(KernelIsa isa) {
  if (!kernel_available(isa)) {
    throw std::runtime_error("kernel '" + kernel_isa_name(isa) +
                             "' not available on this host");
  }
  switch (isa) {
    case KernelIsa::kScalar:
      return {&detail::batch_label_pops_scalar, &detail::batch_final_scalar};
#if defined(TRIGEN_KERNEL_AVX2)
    case KernelIsa::kAvx2:
    case KernelIsa::kAvx2HarleySeal:
      // Per-dword popcounts need the nibble LUT regardless of the triple
      // kernel's popcount strategy, so both AVX2 variants share one batch
      // implementation (exact, hence bit-identical across the mapping).
      return {&detail::batch_label_pops_avx2, &detail::batch_final_avx2};
#endif
#if defined(TRIGEN_KERNEL_AVX512)
    case KernelIsa::kAvx512Extract:
      return {&detail::batch_label_pops_avx512, &detail::batch_final_avx512};
#endif
#if defined(TRIGEN_KERNEL_AVX512VPOPCNT)
    case KernelIsa::kAvx512Vpopcnt:
      return {&detail::batch_label_pops_avx512_vpopcnt,
              &detail::batch_final_avx512_vpopcnt};
#endif
    default:
      throw std::runtime_error("kernel not compiled in");
  }
}

std::size_t kernel_vector_words(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar: return 1;
    case KernelIsa::kAvx2:
    case KernelIsa::kAvx2HarleySeal: return 8;
    case KernelIsa::kAvx512Extract:
    case KernelIsa::kAvx512Vpopcnt: return 16;
  }
  return 1;
}

}  // namespace trigen::core
