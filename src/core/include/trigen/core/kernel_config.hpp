#pragma once
/// \file kernel_config.hpp
/// \brief The (ISA, tiling) resolution seam between scans and the autotuner.
///
/// The analytic L1 model (tiling.hpp) and `best_kernel_isa()` give every
/// scan a reasonable default configuration, but the measured ranking flips
/// per kernel family and working-set size (see BENCH_cpu.json).  This
/// header defines the seam through which an *empirical* source of truth —
/// trigen::tune's per-host profile of measured winners — overrides those
/// defaults without the core depending on the tuner:
///
///   * `KernelFamily` names the kernel family that dominates a scan
///     configuration (the unit the tuner measures and keys entries by);
///   * `KernelConfigRequest` describes what a scan is about to run;
///   * a `ConfigResolver` (stored on ScanOptionsBase::config) maps a
///     request to a measured `KernelConfigChoice`, or nullopt to fall back
///     to the analytic model.
///
/// The detector consults the resolver only when both the ISA and the
/// tiling are still "auto" — an explicit `--isa` or tiling pin always
/// wins, and a mixed measured-ISA/explicit-tiling configuration (whose
/// measurement would be meaningless) can never arise.

#include <cstddef>
#include <functional>
#include <optional>
#include <string>

#include "trigen/core/kernels.hpp"
#include "trigen/core/tiling.hpp"

namespace trigen::core {

/// The kernel family a scan configuration's hot loop is dominated by.
/// These are the measurement units of the empirical autotuner: one family
/// per (order band, ladder rung), plus the V5 build phase on its own (its
/// ISA ranking differs from the whole-scan families it feeds).
enum class KernelFamily {
  kPairCount,          ///< order 2, counts-only pair kernel (V3–V5)
  kTripleBlock,        ///< order 3, direct triple-block kernel (V4)
  kTripleBlockCached,  ///< order 3, pair-plane-cached two-phase V5
  kPairPlaneBuild,     ///< V5 phase 1 in isolation (nine-plane build)
  kTupleBlock,         ///< order >= 4, direct order-generic kernel (V4)
  kPrefixLadder,       ///< order >= 4, prefix-extend + finalize ladder (V5)
  kFinalizeBatched,    ///< batched multi-phenotype finalize (run_batched)
};

/// Stable lowercase name used in profile files and reports
/// ("pair_count", "triple_block", ...).
std::string kernel_family_name(KernelFamily f);

/// Inverse of kernel_family_name; nullopt for unknown names.
std::optional<KernelFamily> parse_kernel_family(const std::string& name);

/// What a scan is about to run, in the tuner's key space.
struct KernelConfigRequest {
  KernelFamily family = KernelFamily::kTripleBlock;
  unsigned order = 3;
  std::size_t n_samples = 0;    ///< dataset samples (bucketed by the tuner)
  std::size_t batch_slots = 0;  ///< partitions of a batched run; 0 = plain
};

/// A measured winner: the ISA and tiling to run the request with.
struct KernelConfigChoice {
  KernelIsa isa = KernelIsa::kScalar;
  TilingParams tiling{0, 0};
};

/// Profile lookup callback.  Returning nullopt (no entry for this host /
/// family / size bucket — e.g. a profile tuned for a different dataset
/// scale) falls back to best_kernel_isa() + the analytic tiling model.
using ConfigResolver =
    std::function<std::optional<KernelConfigChoice>(const KernelConfigRequest&)>;

}  // namespace trigen::core
