#pragma once
/// \file tiling.hpp
/// \brief Loop-tiling parameter selection (paper §IV-A).
///
/// The blocked kernels process B_S^3 SNP triplets against B_P sample words
/// at a time.  The paper sizes both so the frequency-table array and the
/// data block fit in the L1 data cache:
///
///   B_S^3 * beta_int * 2 * 27      <= size_FT      (frequency tables)
///   B_S   * B_P * beta_int * 2     <= size_Block   (bit-plane block)
///
/// with beta_int = 4 B.  E.g. Ice Lake SP (48 kB, 12-way L1D): 7 ways for
/// the tables (28 kB) and 4 ways for the block (16 kB) give B_S <= 5.1 and
/// B_P <= 409.6, i.e. the paper's <5, 400> configuration.

#include <cstddef>
#include <string>

namespace trigen::core {

/// Block sizes for the tiled engine.  `bp_words` counts 32-bit sample words
/// (the beta_int units of the paper's formula).
struct TilingParams {
  std::size_t bs = 5;         ///< SNPs per block (B_S)
  std::size_t bp_words = 400; ///< sample words per block (B_P)

  bool valid() const { return bs > 0 && bp_words > 0; }
};

/// Description of the L1 data cache used to derive tiling parameters.
struct L1Config {
  std::size_t size_bytes = 48 * 1024;
  unsigned ways = 12;
  unsigned ways_for_tables = 7;  ///< ways reserved for the frequency tables
  unsigned ways_for_block = 4;   ///< ways reserved for the streamed block
};

/// Applies the paper's sizing formulas to `l1`.  `vector_words` rounds
/// bp_words down to a multiple of the kernel's vector width ("B_P is
/// rounded to the closest multiple of the number of 32-bit integers that
/// fit in the vector registers").  When `pair_cache` is set (the V5
/// engine), the streamed-block budget additionally covers the nine cached
/// x∩y planes, so B_P solves B_S*B_P*4*2 + 9*B_P*4 <= size_Block instead
/// of the plain two-plane-stream formula.
TilingParams autotune_tiling(const L1Config& l1, std::size_t vector_words,
                             bool pair_cache = false);

/// Order-generic sizing: B_S solves B_S^order * 4 * 2 * 3^order <= size_FT
/// (the tables of one block tuple hold 3^order cells per class), and the
/// streamed-block budget covers the prefix-plane ladder when `cached` is
/// set: rungs 2..order-1 hold sum 3^j planes of B_P words each.  The
/// 3-argument overload above is exactly `order == 3` with `cached ==
/// pair_cache`.
TilingParams autotune_tiling(const L1Config& l1, std::size_t vector_words,
                             unsigned order, bool cached);

/// Batch-aware sizing for multi-phenotype scans: the frequency-table budget
/// covers 1 + `batch_slots` tables per tuple (totals plus one case table per
/// partition; the batched engines keep per-z tables live, so the per-tuple
/// term is (1+P)*3^order*4 bytes), and the streamed-block budget adds the
/// resident label planes — `label_stride` lanes (the PhenotypeBatch stride)
/// per sample word.  `batch_slots == 0` degrades to the overload above.
TilingParams autotune_tiling(const L1Config& l1, std::size_t vector_words,
                             unsigned order, bool cached,
                             std::size_t batch_slots,
                             std::size_t label_stride);

/// Reads the host's L1D geometry from sysfs; falls back to 32 kB / 8-way
/// when unavailable.  Way split follows the paper: 7 ways for tables, the
/// remainder minus one (prefetcher headroom on >=12-way caches) for blocks.
/// The geometry is read for the CPU the calling thread is currently
/// running on (sched_getcpu) — not cpu0, which reports the wrong L1 for
/// worker threads pinned to E-cores on hybrid parts — scanning that CPU's
/// cache index entries for the level-1 data cache instead of assuming
/// index0.
L1Config detect_l1_config();

/// Injectable form for unit tests and explicit pinning: `sysfs_cpu_root`
/// replaces "/sys/devices/system/cpu" (the directory holding cpuN/), and
/// `cpu` picks the CPU to read (-1 = the calling thread's current CPU,
/// falling back to cpu0 when its entries are missing).
L1Config detect_l1_config(const std::string& sysfs_cpu_root, int cpu = -1);

/// 3^k, the genotype-cell count of one class at interaction order k.
constexpr std::size_t pow3(unsigned k) {
  std::size_t v = 1;
  for (unsigned i = 0; i < k; ++i) v *= 3;
  return v;
}

/// Bytes the frequency tables of one order-k block tuple occupy:
/// B_S^k * 4 * 2 * 3^k.
constexpr std::size_t tuple_tables_bytes(std::size_t bs, unsigned order) {
  std::size_t tuples = 1;
  for (unsigned i = 0; i < order; ++i) tuples *= bs;
  return tuples * 4 * 2 * pow3(order);
}

/// Bytes the prefix-plane ladder occupies for a B_P-word chunk at order k:
/// rungs 2..k-1 hold sum 3^j intersection planes of 32-bit words (zero for
/// k <= 2, the nine-plane pair cache for k == 3).
constexpr std::size_t prefix_cache_bytes(std::size_t bp_words, unsigned order) {
  std::size_t planes = 0;
  for (unsigned j = 2; j < order; ++j) planes += pow3(j);
  return planes * bp_words * 4;
}

/// Bytes the frequency tables of one block-triple occupy.
constexpr std::size_t tables_bytes(std::size_t bs) {
  return bs * bs * bs * 4 * 2 * 27;
}

/// Bytes one B_S x B_P bit-plane block occupies.
constexpr std::size_t block_bytes(std::size_t bs, std::size_t bp_words) {
  return bs * bp_words * 4 * 2;
}

/// Bytes the V5 pair-plane cache occupies for a B_P-word chunk (nine x∩y
/// intersection planes of 32-bit words).
constexpr std::size_t pair_cache_bytes(std::size_t bp_words) {
  return 9 * bp_words * 4;
}

}  // namespace trigen::core
