#pragma once
/// \file blocked_engine.hpp
/// \brief Cache-blocked triple evaluation (paper Algorithm 1, V3/V4).
///
/// The engine walks SNP *block* triples (b0 <= b1 <= b2, each covering B_S
/// SNPs).  For one block triple it holds the frequency tables of all
/// <= B_S^3 contained SNP triplets in an L1-resident array, and streams the
/// sample dimension in B_P-word chunks, so every loaded cache line is
/// reused by up to B_S^2 triplets before eviction.  This is the paper's V3;
/// selecting a vector kernel turns it into V4.
///
/// The block-triple rank math and the rank-range -> block-triple mapping
/// live in trigen/combinatorics/block_partition.hpp; the names are
/// re-exported here for the engine's callers.

#include <array>
#include <cstdint>
#include <vector>

#include "trigen/combinatorics/block_partition.hpp"
#include "trigen/combinatorics/combinations.hpp"
#include "trigen/core/kernels.hpp"
#include "trigen/core/tiling.hpp"
#include "trigen/dataset/bitplanes.hpp"
#include "trigen/scoring/contingency.hpp"

namespace trigen::core {

using combinatorics::BlockPair;
using combinatorics::BlockTriple;
using combinatorics::num_block_pairs;
using combinatorics::num_block_triples;
using combinatorics::rank_block_pair;
using combinatorics::rank_block_triple;
using combinatorics::unrank_block_pair;
using combinatorics::unrank_block_triple;

/// Clip sentinel: covers every possible rank, i.e. "no filtering".
inline constexpr combinatorics::RankRange kFullRange{
    0, ~std::uint64_t{0}};

/// Per-thread scratch: frequency tables for all triplets of a block triple.
/// Layout: [local_triple][class][27] uint32; local_triple =
/// ((i0-base0)*B_S + (i1-base1))*B_S + (i2-base2).
class BlockScratch {
 public:
  explicit BlockScratch(std::size_t bs)
      : bs_(bs), ft_(bs * bs * bs * 2 * scoring::kCells) {}

  std::size_t bs() const { return bs_; }
  std::uint32_t* table(std::size_t local, int cls) {
    return ft_.data() +
           (local * 2 + static_cast<std::size_t>(cls)) * scoring::kCells;
  }
  void clear() { std::fill(ft_.begin(), ft_.end(), 0u); }

 private:
  std::size_t bs_;
  std::vector<std::uint32_t> ft_;
};

/// Evaluates every SNP triplet inside block triple `bt` whose colex rank
/// lies in `clip` and calls `on_table(Triplet, const ContingencyTable&)`
/// for each.  `kernel` is the triple-block kernel to use; `scratch.bs()`
/// must equal `tiling.bs`.
///
/// Clipping is rank-aware in three tiers: a block triple whose span misses
/// `clip` entirely returns before any kernel work; a block triple fully
/// inside `clip` (the interior of a partition) runs with zero per-triplet
/// overhead; only the partition's boundary blocks filter each emission by
/// rank.  Pass `kFullRange` (the default overload below) to disable
/// clipping altogether.
template <typename OnTable>
void scan_block_triple(const dataset::PhenoSplitPlanes& planes,
                       const TilingParams& tiling, TripleBlockKernel kernel,
                       BlockScratch& scratch, const BlockTriple& bt,
                       const combinatorics::RankRange& clip,
                       OnTable&& on_table) {
  const std::size_t bs = tiling.bs;
  const std::size_t m = planes.num_snps();
  const std::size_t base0 = bt.b0 * bs;
  const std::size_t base1 = bt.b1 * bs;
  const std::size_t base2 = bt.b2 * bs;
  const std::size_t end0 = std::min(base0 + bs, m);
  const std::size_t end1 = std::min(base1 + bs, m);
  const std::size_t end2 = std::min(base2 + bs, m);
  if (base0 >= m || base1 >= m || base2 >= m) return;

  bool filter = false;
  if (clip.first != kFullRange.first || clip.last != kFullRange.last) {
    const combinatorics::RankRange span =
        block_triplet_span(combinatorics::BlockGrid{m, bs}, bt);
    if (span.empty() || span.last <= clip.first || span.first >= clip.last) {
      return;  // no triplet of this block triple is in range
    }
    filter = span.first < clip.first || span.last > clip.last;
  }

  scratch.clear();

  // Sample-blocked accumulation: for each class, stream B_P words at a
  // time through all triplets of the block triple (Algorithm 1 loop order).
  for (int c = 0; c < 2; ++c) {
    const std::size_t words = planes.words(c);
    for (std::size_t w0 = 0; w0 < words; w0 += tiling.bp_words) {
      const std::size_t w1 = std::min(w0 + tiling.bp_words, words);
      for (std::size_t i0 = base0; i0 < end0; ++i0) {
        for (std::size_t i1 = std::max(base1, i0 + 1); i1 < end1; ++i1) {
          for (std::size_t i2 = std::max(base2, i1 + 1); i2 < end2; ++i2) {
            const std::size_t local =
                ((i0 - base0) * bs + (i1 - base1)) * bs + (i2 - base2);
            kernel(planes.plane(c, i0, 0), planes.plane(c, i0, 1),
                   planes.plane(c, i1, 0), planes.plane(c, i1, 1),
                   planes.plane(c, i2, 0), planes.plane(c, i2, 1), w0, w1,
                   scratch.table(local, c));
          }
        }
      }
    }
  }

  // Finalize: fold the NOR padding out of cell (2,2,2) and emit tables.
  for (std::size_t i0 = base0; i0 < end0; ++i0) {
    for (std::size_t i1 = std::max(base1, i0 + 1); i1 < end1; ++i1) {
      for (std::size_t i2 = std::max(base2, i1 + 1); i2 < end2; ++i2) {
        const combinatorics::Triplet trip{static_cast<std::uint32_t>(i0),
                                          static_cast<std::uint32_t>(i1),
                                          static_cast<std::uint32_t>(i2)};
        if (filter) {
          const std::uint64_t rank = combinatorics::rank_triplet(trip);
          if (rank < clip.first || rank >= clip.last) continue;
        }
        const std::size_t local =
            ((i0 - base0) * bs + (i1 - base1)) * bs + (i2 - base2);
        scoring::ContingencyTable t;
        for (int c = 0; c < 2; ++c) {
          const std::uint32_t* ft = scratch.table(local, c);
          auto& row = t.counts[static_cast<std::size_t>(c)];
          for (int i = 0; i < scoring::kCells; ++i) {
            row[static_cast<std::size_t>(i)] = ft[i];
          }
          row[26] -= static_cast<std::uint32_t>(planes.pad_bits(c));
        }
        on_table(trip, t);
      }
    }
  }
}

/// Unclipped scan: every triplet of the block triple is emitted.
template <typename OnTable>
void scan_block_triple(const dataset::PhenoSplitPlanes& planes,
                       const TilingParams& tiling, TripleBlockKernel kernel,
                       BlockScratch& scratch, const BlockTriple& bt,
                       OnTable&& on_table) {
  scan_block_triple(planes, tiling, kernel, scratch, bt, kFullRange,
                    static_cast<OnTable&&>(on_table));
}

// ---------------------------------------------------------------------------
// Second order: the blocked pair engine
// ---------------------------------------------------------------------------

/// Per-thread scratch for the blocked pair engine: frequency tables for all
/// pairs of a block pair.  The pair path drives the *triple* kernel with a
/// constant z operand (see scan_block_pair), so the raw accumulation is
/// still 27 cells wide; the finalize step extracts the 9 pair cells.
/// Layout: [local_pair][class][27] uint32; local_pair =
/// (i0-base0)*B_S + (i1-base1).
class PairBlockScratch {
 public:
  explicit PairBlockScratch(std::size_t bs)
      : bs_(bs), ft_(bs * bs * 2 * scoring::kCells) {}

  std::size_t bs() const { return bs_; }
  std::uint32_t* table(std::size_t local, int cls) {
    return ft_.data() +
           (local * 2 + static_cast<std::size_t>(cls)) * scoring::kCells;
  }
  void clear() { std::fill(ft_.begin(), ft_.end(), 0u); }

 private:
  std::size_t bs_;
  std::vector<std::uint32_t> ft_;
};

/// Constant per-class z operand that pins g_z = 0: the genotype-0 plane is
/// all ones and the genotype-1 plane all zeros, so NOR-inferred genotype 2
/// is empty and cells (g_x, g_y, 0) of the 27-cell kernel output hold the
/// 9-cell pair table.  `ones[c]` / `zeros[c]` must each span
/// `planes.words(c)` words (PairDetector builds them once per dataset).
struct ConstantZPlanes {
  std::array<const Word*, 2> ones{};
  std::array<const Word*, 2> zeros{};
};

/// Evaluates every SNP pair inside block pair `bp` whose colex rank lies in
/// `clip` and calls `on_table(combinatorics::Pair, const
/// scoring::PairContingencyTable&)` for each.  Mirrors scan_block_triple:
/// the same per-ISA triple-block kernel, the same sample-dimension tiling,
/// and the same three-tier rank clipping (span miss -> skip, interior ->
/// no per-pair overhead, boundary -> per-pair rank filter).
template <typename OnTable>
void scan_block_pair(const dataset::PhenoSplitPlanes& planes,
                     const TilingParams& tiling, TripleBlockKernel kernel,
                     PairBlockScratch& scratch, const ConstantZPlanes& z,
                     const BlockPair& bp,
                     const combinatorics::RankRange& clip,
                     OnTable&& on_table) {
  const std::size_t bs = tiling.bs;
  const std::size_t m = planes.num_snps();
  const std::size_t base0 = bp.b0 * bs;
  const std::size_t base1 = bp.b1 * bs;
  const std::size_t end0 = std::min(base0 + bs, m);
  const std::size_t end1 = std::min(base1 + bs, m);
  if (base0 >= m || base1 >= m) return;

  bool filter = false;
  if (clip.first != kFullRange.first || clip.last != kFullRange.last) {
    const combinatorics::RankRange span =
        block_pair_span(combinatorics::BlockGrid{m, bs}, bp);
    if (span.empty() || span.last <= clip.first || span.first >= clip.last) {
      return;  // no pair of this block pair is in range
    }
    filter = span.first < clip.first || span.last > clip.last;
  }

  scratch.clear();

  // Sample-blocked accumulation: for each class, stream B_P words at a
  // time through all pairs of the block pair (Algorithm 1 loop order with
  // the innermost SNP level removed).
  for (int c = 0; c < 2; ++c) {
    const std::size_t words = planes.words(c);
    const Word* z0 = z.ones[static_cast<std::size_t>(c)];
    const Word* z1 = z.zeros[static_cast<std::size_t>(c)];
    for (std::size_t w0 = 0; w0 < words; w0 += tiling.bp_words) {
      const std::size_t w1 = std::min(w0 + tiling.bp_words, words);
      for (std::size_t i0 = base0; i0 < end0; ++i0) {
        for (std::size_t i1 = std::max(base1, i0 + 1); i1 < end1; ++i1) {
          const std::size_t local = (i0 - base0) * bs + (i1 - base1);
          kernel(planes.plane(c, i0, 0), planes.plane(c, i0, 1),
                 planes.plane(c, i1, 0), planes.plane(c, i1, 1), z0, z1, w0,
                 w1, scratch.table(local, c));
        }
      }
    }
  }

  // Finalize: extract the g_z = 0 cells, fold the NOR padding out of pair
  // cell (2,2) — padding tail bits read as (2, 2, 0) — and emit tables.
  for (std::size_t i0 = base0; i0 < end0; ++i0) {
    for (std::size_t i1 = std::max(base1, i0 + 1); i1 < end1; ++i1) {
      const combinatorics::Pair pair{static_cast<std::uint32_t>(i0),
                                     static_cast<std::uint32_t>(i1)};
      if (filter) {
        const std::uint64_t rank = combinatorics::rank_pair(pair);
        if (rank < clip.first || rank >= clip.last) continue;
      }
      const std::size_t local = (i0 - base0) * bs + (i1 - base1);
      scoring::PairContingencyTable t;
      for (int c = 0; c < 2; ++c) {
        const std::uint32_t* ft = scratch.table(local, c);
        auto& row = t.counts[static_cast<std::size_t>(c)];
        for (int gx = 0; gx < 3; ++gx) {
          for (int gy = 0; gy < 3; ++gy) {
            row[static_cast<std::size_t>(scoring::pair_cell_index(gx, gy))] =
                ft[scoring::cell_index(gx, gy, 0)];
          }
        }
        row[8] -= static_cast<std::uint32_t>(planes.pad_bits(c));
      }
      on_table(pair, t);
    }
  }
}

/// Unclipped scan: every pair of the block pair is emitted.
template <typename OnTable>
void scan_block_pair(const dataset::PhenoSplitPlanes& planes,
                     const TilingParams& tiling, TripleBlockKernel kernel,
                     PairBlockScratch& scratch, const ConstantZPlanes& z,
                     const BlockPair& bp, OnTable&& on_table) {
  scan_block_pair(planes, tiling, kernel, scratch, z, bp, kFullRange,
                  static_cast<OnTable&&>(on_table));
}

}  // namespace trigen::core
