#pragma once
/// \file blocked_engine.hpp
/// \brief Cache-blocked triple evaluation (paper Algorithm 1, V3/V4/V5).
///
/// The engine walks SNP *block* triples (b0 <= b1 <= b2, each covering B_S
/// SNPs).  For one block triple it holds the frequency tables of all
/// <= B_S^3 contained SNP triplets in an L1-resident array, and streams the
/// sample dimension in B_P-word chunks, so every loaded cache line is
/// reused by up to B_S^2 triplets before eviction.  This is the paper's V3;
/// selecting a vector kernel turns it into V4.
///
/// V5 goes one step further: all B_S z-SNPs of a block share the same
/// (x, y) pair, so the nine x∩y intersection planes are materialized once
/// per (i0, i1, sample-chunk) in a PairPlaneCache (plus their popcounts)
/// and the z loop runs the two-operand cached kernel against them.  The
/// pair engine degenerates to the build phase alone: the cached plane
/// popcounts *are* the 9-cell pair table of the chunk.
///
/// The block-triple rank math and the rank-range -> block-triple mapping
/// live in trigen/combinatorics/block_partition.hpp; the names are
/// re-exported here for the engine's callers.

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "trigen/combinatorics/block_partition.hpp"
#include "trigen/combinatorics/combinations.hpp"
#include "trigen/common/aligned.hpp"
#include "trigen/core/kernels.hpp"
#include "trigen/core/tiling.hpp"
#include "trigen/dataset/bitplanes.hpp"
#include "trigen/scoring/contingency.hpp"

namespace trigen::core {

using combinatorics::BlockPair;
using combinatorics::BlockTriple;
using combinatorics::num_block_pairs;
using combinatorics::num_block_triples;
using combinatorics::rank_block_pair;
using combinatorics::rank_block_triple;
using combinatorics::unrank_block_pair;
using combinatorics::unrank_block_triple;

/// Clip sentinel: covers every possible rank, i.e. "no filtering".
inline constexpr combinatorics::RankRange kFullRange{
    0, ~std::uint64_t{0}};

/// V5 per-thread scratch: the nine x∩y intersection planes of the current
/// (i0, i1, sample-chunk) plus their chunk popcounts.  Planes are stored
/// with a common stride rounded up to a whole number of AVX-512 registers,
/// so every plane start stays 64-byte aligned (aligned_vector provides the
/// base alignment).
class PairPlaneCache {
 public:
  /// Grows the per-plane capacity to at least `words` (never shrinks, so a
  /// scan reuses one allocation across every chunk and block).
  void ensure(std::size_t words) {
    const std::size_t s = (words + dataset::kWordsPerVector - 1) /
                          dataset::kWordsPerVector * dataset::kWordsPerVector;
    if (s > stride_) {
      stride_ = s;
      planes_.assign(9 * s, 0);
    }
  }

  Word* planes() { return planes_.data(); }
  const Word* planes() const { return planes_.data(); }
  std::size_t stride() const { return stride_; }

  /// Chunk popcounts of the nine planes; zeroed by the engine before each
  /// build call.
  std::uint32_t* pops() { return pops_.data(); }
  const std::uint32_t* pops() const { return pops_.data(); }

 private:
  std::size_t stride_ = 0;
  aligned_vector<Word> planes_;
  std::array<std::uint32_t, 9> pops_{};
};

/// Per-thread scratch: frequency tables for all triplets of a block triple.
/// Layout: [local_triple][class][27] uint32; local_triple =
/// ((i0-base0)*B_S + (i1-base1))*B_S + (i2-base2).
class BlockScratch {
 public:
  explicit BlockScratch(std::size_t bs)
      : bs_(bs), ft_(bs * bs * bs * 2 * scoring::kCells) {}

  std::size_t bs() const { return bs_; }
  std::uint32_t* table(std::size_t local, int cls) {
    return ft_.data() +
           (local * 2 + static_cast<std::size_t>(cls)) * scoring::kCells;
  }
  /// Zeroes only the tables (both classes) of locals [first, last) — the
  /// engine clears exactly the triplets a block triple evaluates, so tail
  /// and diagonal blocks skip the untouched bulk of the bs^3 array.
  void clear_tables(std::size_t first, std::size_t last) {
    std::fill(ft_.begin() +
                  static_cast<std::ptrdiff_t>(first * 2 * scoring::kCells),
              ft_.begin() +
                  static_cast<std::ptrdiff_t>(last * 2 * scoring::kCells),
              0u);
  }
  /// V5 pair-plane cache (unused and unallocated for V3/V4 scans).
  PairPlaneCache& pair_cache() { return cache_; }

 private:
  std::size_t bs_;
  std::vector<std::uint32_t> ft_;
  PairPlaneCache cache_;
};

namespace engine_detail {

/// Shared skeleton of the blocked triple scan: block bounds, three-tier
/// rank clipping, targeted scratch clear and table emission.  `accumulate`
/// fills the scratch tables for all in-block triplets; the V4 (direct
/// kernel) and V5 (cached two-phase) engines differ only there.
template <typename Accumulate, typename OnTable>
void scan_block_triple_impl(const dataset::PhenoSplitPlanes& planes,
                            const TilingParams& tiling, BlockScratch& scratch,
                            const BlockTriple& bt,
                            const combinatorics::RankRange& clip,
                            Accumulate&& accumulate, OnTable&& on_table) {
  const std::size_t bs = tiling.bs;
  const std::size_t m = planes.num_snps();
  const std::size_t base0 = bt.b0 * bs;
  const std::size_t base1 = bt.b1 * bs;
  const std::size_t base2 = bt.b2 * bs;
  const std::size_t end0 = std::min(base0 + bs, m);
  const std::size_t end1 = std::min(base1 + bs, m);
  const std::size_t end2 = std::min(base2 + bs, m);
  if (base0 >= m || base1 >= m || base2 >= m) return;

  bool filter = false;
  if (clip.first != kFullRange.first || clip.last != kFullRange.last) {
    const combinatorics::RankRange span =
        block_triplet_span(combinatorics::BlockGrid{m, bs}, bt);
    if (span.empty() || span.last <= clip.first || span.first >= clip.last) {
      return;  // no triplet of this block triple is in range
    }
    filter = span.first < clip.first || span.last > clip.last;
  }

  // Clear only the tables this block triple accumulates into: tail blocks
  // cover fewer than bs SNPs per axis and diagonal blocks only the strict
  // upper-triangular locals, so a full bs^3 clear would zero (and finalize
  // would skip) mostly untouched memory.
  for (std::size_t i0 = base0; i0 < end0; ++i0) {
    for (std::size_t i1 = std::max(base1, i0 + 1); i1 < end1; ++i1) {
      const std::size_t z_first = std::max(base2, i1 + 1);
      if (z_first >= end2) continue;
      const std::size_t lo =
          ((i0 - base0) * bs + (i1 - base1)) * bs + (z_first - base2);
      scratch.clear_tables(lo, lo + (end2 - z_first));
    }
  }

  accumulate(base0, end0, base1, end1, base2, end2);

  // Finalize: fold the NOR padding out of cell (2,2,2) and emit tables.
  for (std::size_t i0 = base0; i0 < end0; ++i0) {
    for (std::size_t i1 = std::max(base1, i0 + 1); i1 < end1; ++i1) {
      for (std::size_t i2 = std::max(base2, i1 + 1); i2 < end2; ++i2) {
        const combinatorics::Triplet trip{static_cast<std::uint32_t>(i0),
                                          static_cast<std::uint32_t>(i1),
                                          static_cast<std::uint32_t>(i2)};
        if (filter) {
          const std::uint64_t rank = combinatorics::rank_triplet(trip);
          if (rank < clip.first || rank >= clip.last) continue;
        }
        const std::size_t local =
            ((i0 - base0) * bs + (i1 - base1)) * bs + (i2 - base2);
        scoring::ContingencyTable t;
        for (int c = 0; c < 2; ++c) {
          const std::uint32_t* ft = scratch.table(local, c);
          auto& row = t.counts[static_cast<std::size_t>(c)];
          for (int i = 0; i < scoring::kCells; ++i) {
            row[static_cast<std::size_t>(i)] = ft[i];
          }
          row[26] -= static_cast<std::uint32_t>(planes.pad_bits(c));
        }
        on_table(trip, t);
      }
    }
  }
}

}  // namespace engine_detail

/// Evaluates every SNP triplet inside block triple `bt` whose colex rank
/// lies in `clip` and calls `on_table(Triplet, const ContingencyTable&)`
/// for each.  `kernel` is the triple-block kernel to use; `scratch.bs()`
/// must equal `tiling.bs`.
///
/// Clipping is rank-aware in three tiers: a block triple whose span misses
/// `clip` entirely returns before any kernel work; a block triple fully
/// inside `clip` (the interior of a partition) runs with zero per-triplet
/// overhead; only the partition's boundary blocks filter each emission by
/// rank.  Pass `kFullRange` (the default overload below) to disable
/// clipping altogether.
template <typename OnTable>
void scan_block_triple(const dataset::PhenoSplitPlanes& planes,
                       const TilingParams& tiling, TripleBlockKernel kernel,
                       BlockScratch& scratch, const BlockTriple& bt,
                       const combinatorics::RankRange& clip,
                       OnTable&& on_table) {
  const std::size_t bs = tiling.bs;
  engine_detail::scan_block_triple_impl(
      planes, tiling, scratch, bt, clip,
      [&](std::size_t base0, std::size_t end0, std::size_t base1,
          std::size_t end1, std::size_t base2, std::size_t end2) {
        // Sample-blocked accumulation: for each class, stream B_P words at
        // a time through all triplets of the block triple (Algorithm 1
        // loop order).
        for (int c = 0; c < 2; ++c) {
          const std::size_t words = planes.words(c);
          for (std::size_t w0 = 0; w0 < words; w0 += tiling.bp_words) {
            const std::size_t w1 = std::min(w0 + tiling.bp_words, words);
            for (std::size_t i0 = base0; i0 < end0; ++i0) {
              for (std::size_t i1 = std::max(base1, i0 + 1); i1 < end1;
                   ++i1) {
                for (std::size_t i2 = std::max(base2, i1 + 1); i2 < end2;
                     ++i2) {
                  const std::size_t local =
                      ((i0 - base0) * bs + (i1 - base1)) * bs + (i2 - base2);
                  kernel(planes.plane(c, i0, 0), planes.plane(c, i0, 1),
                         planes.plane(c, i1, 0), planes.plane(c, i1, 1),
                         planes.plane(c, i2, 0), planes.plane(c, i2, 1), w0,
                         w1, scratch.table(local, c));
                }
              }
            }
          }
        }
      },
      static_cast<OnTable&&>(on_table));
}

/// Unclipped scan: every triplet of the block triple is emitted.
template <typename OnTable>
void scan_block_triple(const dataset::PhenoSplitPlanes& planes,
                       const TilingParams& tiling, TripleBlockKernel kernel,
                       BlockScratch& scratch, const BlockTriple& bt,
                       OnTable&& on_table) {
  scan_block_triple(planes, tiling, kernel, scratch, bt, kFullRange,
                    static_cast<OnTable&&>(on_table));
}

/// V5: same walk as above, but the x∩y planes of each (i0, i1) are built
/// once per sample chunk into `scratch.pair_cache()` and the z loop runs
/// the two-operand cached kernel — the x/y plane streams and their nine
/// intersection ANDs leave the innermost loop entirely, and the z-NOR
/// plane is never materialized (cells (gx, gy, 2) derive from the cached
/// chunk popcounts).  Bit-identical to the direct kernels for every clip.
template <typename OnTable>
void scan_block_triple(const dataset::PhenoSplitPlanes& planes,
                       const TilingParams& tiling,
                       const CachedKernelSet& kernels, BlockScratch& scratch,
                       const BlockTriple& bt,
                       const combinatorics::RankRange& clip,
                       OnTable&& on_table) {
  const std::size_t bs = tiling.bs;
  PairPlaneCache& cache = scratch.pair_cache();
  cache.ensure(tiling.bp_words);
  engine_detail::scan_block_triple_impl(
      planes, tiling, scratch, bt, clip,
      [&](std::size_t base0, std::size_t end0, std::size_t base1,
          std::size_t end1, std::size_t base2, std::size_t end2) {
        for (int c = 0; c < 2; ++c) {
          const std::size_t words = planes.words(c);
          for (std::size_t w0 = 0; w0 < words; w0 += tiling.bp_words) {
            const std::size_t w1 = std::min(w0 + tiling.bp_words, words);
            for (std::size_t i0 = base0; i0 < end0; ++i0) {
              for (std::size_t i1 = std::max(base1, i0 + 1); i1 < end1;
                   ++i1) {
                const std::size_t z_first = std::max(base2, i1 + 1);
                if (z_first >= end2) continue;
                std::fill(cache.pops(), cache.pops() + 9, 0u);
                kernels.build(planes.plane(c, i0, 0), planes.plane(c, i0, 1),
                              planes.plane(c, i1, 0), planes.plane(c, i1, 1),
                              w0, w1, cache.planes(), cache.stride(),
                              cache.pops());
                for (std::size_t i2 = z_first; i2 < end2; ++i2) {
                  const std::size_t local =
                      ((i0 - base0) * bs + (i1 - base1)) * bs + (i2 - base2);
                  kernels.cached(cache.planes(), cache.stride(), cache.pops(),
                                 planes.plane(c, i2, 0),
                                 planes.plane(c, i2, 1), w0, w1,
                                 scratch.table(local, c));
                }
              }
            }
          }
        }
      },
      static_cast<OnTable&&>(on_table));
}

/// Unclipped V5 scan: every triplet of the block triple is emitted.
template <typename OnTable>
void scan_block_triple(const dataset::PhenoSplitPlanes& planes,
                       const TilingParams& tiling,
                       const CachedKernelSet& kernels, BlockScratch& scratch,
                       const BlockTriple& bt, OnTable&& on_table) {
  scan_block_triple(planes, tiling, kernels, scratch, bt, kFullRange,
                    static_cast<OnTable&&>(on_table));
}

// ---------------------------------------------------------------------------
// Second order: the blocked pair engine
// ---------------------------------------------------------------------------

/// Per-thread scratch for the blocked pair engine: frequency tables for all
/// pairs of a block pair.  The pair path drives the *triple* kernel with a
/// constant z operand (see scan_block_pair), so the raw accumulation is
/// still 27 cells wide; the finalize step extracts the 9 pair cells.
/// Layout: [local_pair][class][27] uint32; local_pair =
/// (i0-base0)*B_S + (i1-base1).
class PairBlockScratch {
 public:
  explicit PairBlockScratch(std::size_t bs)
      : bs_(bs), ft_(bs * bs * 2 * scoring::kCells) {}

  std::size_t bs() const { return bs_; }
  std::uint32_t* table(std::size_t local, int cls) {
    return ft_.data() +
           (local * 2 + static_cast<std::size_t>(cls)) * scoring::kCells;
  }
  /// Zeroes only the tables (both classes) of locals [first, last) — the
  /// engine clears exactly the pairs a block pair evaluates.
  void clear_tables(std::size_t first, std::size_t last) {
    std::fill(ft_.begin() +
                  static_cast<std::ptrdiff_t>(first * 2 * scoring::kCells),
              ft_.begin() +
                  static_cast<std::ptrdiff_t>(last * 2 * scoring::kCells),
              0u);
  }

 private:
  std::size_t bs_;
  std::vector<std::uint32_t> ft_;
};

/// Constant per-class z operand that pins g_z = 0: the genotype-0 plane is
/// all ones and the genotype-1 plane all zeros, so NOR-inferred genotype 2
/// is empty and cells (g_x, g_y, 0) of the 27-cell kernel output hold the
/// 9-cell pair table.  `ones[c]` / `zeros[c]` must each span
/// `planes.words(c)` words (PairDetector builds them once per dataset).
struct ConstantZPlanes {
  std::array<const Word*, 2> ones{};
  std::array<const Word*, 2> zeros{};
};

namespace engine_detail {

/// Shared skeleton of the blocked pair scan, mirroring
/// scan_block_triple_impl.
template <typename Accumulate, typename OnTable>
void scan_block_pair_impl(const dataset::PhenoSplitPlanes& planes,
                          const TilingParams& tiling,
                          PairBlockScratch& scratch, const BlockPair& bp,
                          const combinatorics::RankRange& clip,
                          Accumulate&& accumulate, OnTable&& on_table) {
  const std::size_t bs = tiling.bs;
  const std::size_t m = planes.num_snps();
  const std::size_t base0 = bp.b0 * bs;
  const std::size_t base1 = bp.b1 * bs;
  const std::size_t end0 = std::min(base0 + bs, m);
  const std::size_t end1 = std::min(base1 + bs, m);
  if (base0 >= m || base1 >= m) return;

  bool filter = false;
  if (clip.first != kFullRange.first || clip.last != kFullRange.last) {
    const combinatorics::RankRange span =
        block_pair_span(combinatorics::BlockGrid{m, bs}, bp);
    if (span.empty() || span.last <= clip.first || span.first >= clip.last) {
      return;  // no pair of this block pair is in range
    }
    filter = span.first < clip.first || span.last > clip.last;
  }

  // Clear only the tables this block pair accumulates into.
  for (std::size_t i0 = base0; i0 < end0; ++i0) {
    const std::size_t y_first = std::max(base1, i0 + 1);
    if (y_first >= end1) continue;
    const std::size_t lo = (i0 - base0) * bs + (y_first - base1);
    scratch.clear_tables(lo, lo + (end1 - y_first));
  }

  accumulate(base0, end0, base1, end1);

  // Finalize: extract the g_z = 0 cells, fold the NOR padding out of pair
  // cell (2,2) — padding tail bits read as (2, 2, 0) — and emit tables.
  for (std::size_t i0 = base0; i0 < end0; ++i0) {
    for (std::size_t i1 = std::max(base1, i0 + 1); i1 < end1; ++i1) {
      const combinatorics::Pair pair{static_cast<std::uint32_t>(i0),
                                     static_cast<std::uint32_t>(i1)};
      if (filter) {
        const std::uint64_t rank = combinatorics::rank_pair(pair);
        if (rank < clip.first || rank >= clip.last) continue;
      }
      const std::size_t local = (i0 - base0) * bs + (i1 - base1);
      scoring::PairContingencyTable t;
      for (int c = 0; c < 2; ++c) {
        const std::uint32_t* ft = scratch.table(local, c);
        auto& row = t.counts[static_cast<std::size_t>(c)];
        for (int gx = 0; gx < 3; ++gx) {
          for (int gy = 0; gy < 3; ++gy) {
            row[static_cast<std::size_t>(scoring::pair_cell_index(gx, gy))] =
                ft[scoring::cell_index(gx, gy, 0)];
          }
        }
        row[8] -= static_cast<std::uint32_t>(planes.pad_bits(c));
      }
      on_table(pair, t);
    }
  }
}

}  // namespace engine_detail

/// Evaluates every SNP pair inside block pair `bp` whose colex rank lies in
/// `clip` and calls `on_table(combinatorics::Pair, const
/// scoring::PairContingencyTable&)` for each.  Mirrors scan_block_triple:
/// the same per-ISA triple-block kernel, the same sample-dimension tiling,
/// and the same three-tier rank clipping (span miss -> skip, interior ->
/// no per-pair overhead, boundary -> per-pair rank filter).
template <typename OnTable>
void scan_block_pair(const dataset::PhenoSplitPlanes& planes,
                     const TilingParams& tiling, TripleBlockKernel kernel,
                     PairBlockScratch& scratch, const ConstantZPlanes& z,
                     const BlockPair& bp,
                     const combinatorics::RankRange& clip,
                     OnTable&& on_table) {
  const std::size_t bs = tiling.bs;
  engine_detail::scan_block_pair_impl(
      planes, tiling, scratch, bp, clip,
      [&](std::size_t base0, std::size_t end0, std::size_t base1,
          std::size_t end1) {
        // Sample-blocked accumulation: for each class, stream B_P words at
        // a time through all pairs of the block pair (Algorithm 1 loop
        // order with the innermost SNP level removed).
        for (int c = 0; c < 2; ++c) {
          const std::size_t words = planes.words(c);
          const Word* z0 = z.ones[static_cast<std::size_t>(c)];
          const Word* z1 = z.zeros[static_cast<std::size_t>(c)];
          for (std::size_t w0 = 0; w0 < words; w0 += tiling.bp_words) {
            const std::size_t w1 = std::min(w0 + tiling.bp_words, words);
            for (std::size_t i0 = base0; i0 < end0; ++i0) {
              for (std::size_t i1 = std::max(base1, i0 + 1); i1 < end1;
                   ++i1) {
                const std::size_t local = (i0 - base0) * bs + (i1 - base1);
                kernel(planes.plane(c, i0, 0), planes.plane(c, i0, 1),
                       planes.plane(c, i1, 0), planes.plane(c, i1, 1), z0,
                       z1, w0, w1, scratch.table(local, c));
              }
            }
          }
        }
      },
      static_cast<OnTable&&>(on_table));
}

/// Unclipped scan: every pair of the block pair is emitted.
template <typename OnTable>
void scan_block_pair(const dataset::PhenoSplitPlanes& planes,
                     const TilingParams& tiling, TripleBlockKernel kernel,
                     PairBlockScratch& scratch, const ConstantZPlanes& z,
                     const BlockPair& bp, OnTable&& on_table) {
  scan_block_pair(planes, tiling, kernel, scratch, z, bp, kFullRange,
                  static_cast<OnTable&&>(on_table));
}

/// V5 pair scan: the counts phase *is* the whole evaluation.  The chunk
/// popcounts of the nine x∩y intersection planes are exactly the pair
/// table cells (g_x, g_y) restricted to this chunk — g_z is pinned to 0
/// with no constant z operand, no 27-cell AND/POPCNT sweep, and no z plane
/// stream at all.  The counts-only kernel never materializes the planes
/// (nothing would read them), so the pair path retires zero stores and
/// needs no L1 cache budget.  Needs no ConstantZPlanes; bit-identical to
/// the V4 pair path.
template <typename OnTable>
void scan_block_pair(const dataset::PhenoSplitPlanes& planes,
                     const TilingParams& tiling,
                     const CachedKernelSet& kernels, PairBlockScratch& scratch,
                     const BlockPair& bp,
                     const combinatorics::RankRange& clip,
                     OnTable&& on_table) {
  const std::size_t bs = tiling.bs;
  engine_detail::scan_block_pair_impl(
      planes, tiling, scratch, bp, clip,
      [&](std::size_t base0, std::size_t end0, std::size_t base1,
          std::size_t end1) {
        for (int c = 0; c < 2; ++c) {
          const std::size_t words = planes.words(c);
          for (std::size_t w0 = 0; w0 < words; w0 += tiling.bp_words) {
            const std::size_t w1 = std::min(w0 + tiling.bp_words, words);
            for (std::size_t i0 = base0; i0 < end0; ++i0) {
              for (std::size_t i1 = std::max(base1, i0 + 1); i1 < end1;
                   ++i1) {
                std::array<std::uint32_t, 9> pops{};
                kernels.count(planes.plane(c, i0, 0), planes.plane(c, i0, 1),
                              planes.plane(c, i1, 0), planes.plane(c, i1, 1),
                              w0, w1, pops.data());
                const std::size_t local = (i0 - base0) * bs + (i1 - base1);
                std::uint32_t* ft = scratch.table(local, c);
                for (int p = 0; p < 9; ++p) {
                  ft[scoring::cell_index(p / 3, p % 3, 0)] += pops[p];
                }
              }
            }
          }
        }
      },
      static_cast<OnTable&&>(on_table));
}

/// Unclipped V5 pair scan: every pair of the block pair is emitted.
template <typename OnTable>
void scan_block_pair(const dataset::PhenoSplitPlanes& planes,
                     const TilingParams& tiling,
                     const CachedKernelSet& kernels, PairBlockScratch& scratch,
                     const BlockPair& bp, OnTable&& on_table) {
  scan_block_pair(planes, tiling, kernels, scratch, bp, kFullRange,
                  static_cast<OnTable&&>(on_table));
}

}  // namespace trigen::core
