#pragma once
/// \file blocked_engine.hpp
/// \brief Cache-blocked combination evaluation at any order k >= 2 (paper
/// Algorithm 1, V3/V4/V5, order-generalized).
///
/// The engine walks SNP *block* tuples (b_0 <= ... <= b_{k-1}, each covering
/// B_S SNPs).  For one block tuple it holds the frequency tables of all
/// <= B_S^k contained SNP combinations in an L1-resident array, and streams
/// the sample dimension in B_P-word chunks, so every loaded cache line is
/// reused by up to B_S^{k-1} combinations before eviction.  This is the
/// paper's V3; selecting a vector kernel turns it into V4.
///
/// V5 goes one step further with a recursive *prefix-plane ladder*: all B_S
/// last-axis SNPs of a block tuple share the same length-(k-1) prefix, so
/// the ladder materializes, once per (prefix, sample-chunk), the 3^j
/// intersection planes of each j-SNP prefix (rung j, j = 2..k-1).  Rung 2
/// is built directly from two SNPs' genotype planes; rung j+1 extends rung
/// j by ANDing each plane with one SNP's two stored planes and deriving the
/// third child from the partition identity (the three genotype planes of a
/// SNP partition every sample bit, padding included).  The last rung's
/// planes and popcounts then resolve all three final-axis cells with two
/// ANDs + two POPCNTs per word.  At k = 3 the ladder is exactly the nine
/// x∩y planes of the original pair-plane cache; at k = 2 it degenerates to
/// the counts-only kernel (the chunk popcounts *are* the 9-cell table).
///
/// The block-tuple rank math and the rank-range -> block-tuple mapping live
/// in trigen/combinatorics/block_partition.hpp; the names are re-exported
/// here for the engine's callers.

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "trigen/combinatorics/block_partition.hpp"
#include "trigen/combinatorics/combinations.hpp"
#include "trigen/common/aligned.hpp"
#include "trigen/core/kernels.hpp"
#include "trigen/core/tiling.hpp"
#include "trigen/dataset/bitplanes.hpp"
#include "trigen/scoring/contingency.hpp"

namespace trigen::core {

using combinatorics::BlockPair;
using combinatorics::BlockTriple;
using combinatorics::BlockTuple;
using combinatorics::num_block_pairs;
using combinatorics::num_block_triples;
using combinatorics::num_block_tuples;
using combinatorics::rank_block_pair;
using combinatorics::rank_block_triple;
using combinatorics::rank_block_tuple;
using combinatorics::unrank_block_pair;
using combinatorics::unrank_block_triple;
using combinatorics::unrank_block_tuple;

/// Clip sentinel: covers every possible rank, i.e. "no filtering".
inline constexpr combinatorics::RankRange kFullRange{
    0, ~std::uint64_t{0}};

/// Per-thread scratch for the V5 prefix-plane ladder: rung j
/// (j = 2..order-1) holds the 3^j intersection planes of the current j-SNP
/// prefix restricted to the current sample chunk, plus their chunk
/// popcounts.  Planes share one stride rounded up to a whole number of
/// AVX-512 registers, so every plane start stays 64-byte aligned
/// (aligned_vector provides the base alignment).  At order 3 the ladder is
/// the original pair-plane cache: rung 2's nine x∩y planes and popcounts.
class PrefixPlaneCache {
 public:
  /// Grows the ladder to cover rungs 2..order-1 with at least `words` of
  /// per-plane capacity (never shrinks, so a scan reuses one allocation
  /// across every chunk and block).
  void ensure(unsigned order, std::size_t words) {
    const std::size_t s = (words + dataset::kWordsPerVector - 1) /
                          dataset::kWordsPerVector * dataset::kWordsPerVector;
    if (s <= stride_ && order <= order_) return;
    stride_ = std::max(s, stride_);
    order_ = std::max(std::max(order, 3u), order_);
    std::size_t planes = 0;
    for (unsigned j = 2; j < order_; ++j) planes += pow3(j);
    planes_.assign(planes * stride_, 0);
    pops_.assign(planes, 0);
  }
  /// Pair-plane compatibility surface: rung 2 only (order 3).
  void ensure(std::size_t words) { ensure(3, words); }

  /// Planes of rung `j` (3^j planes of stride() words each).
  Word* rung(unsigned j) { return planes_.data() + rung_offset(j) * stride_; }
  const Word* rung(unsigned j) const {
    return planes_.data() + rung_offset(j) * stride_;
  }
  /// Chunk popcounts of rung `j`'s planes; zeroed by the engine before the
  /// build/extend call that fills them.
  std::uint32_t* rung_pops(unsigned j) { return pops_.data() + rung_offset(j); }
  const std::uint32_t* rung_pops(unsigned j) const {
    return pops_.data() + rung_offset(j);
  }

  /// Rung-2 accessors, the original PairPlaneCache API: the nine x∩y
  /// planes and their chunk popcounts.
  Word* planes() { return rung(2); }
  const Word* planes() const { return rung(2); }
  std::uint32_t* pops() { return rung_pops(2); }
  const std::uint32_t* pops() const { return rung_pops(2); }

  std::size_t stride() const { return stride_; }

 private:
  /// Planes below rung j: sum of 3^i for i in [2, j).
  static std::size_t rung_offset(unsigned j) {
    std::size_t off = 0;
    for (unsigned i = 2; i < j; ++i) off += pow3(i);
    return off;
  }

  unsigned order_ = 0;
  std::size_t stride_ = 0;
  aligned_vector<Word> planes_;
  std::vector<std::uint32_t> pops_;
};

/// The K = 3 ladder (rung 2 alone) is the original pair-plane cache.
using PairPlaneCache = PrefixPlaneCache;

/// Per-thread scratch: frequency tables for all combinations of a block
/// tuple.  Layout: [local][class][3^K] uint32; local =
/// sum (i_j - base_j) * B_S^{K-1-j}.
template <unsigned K>
class TupleBlockScratch {
 public:
  static constexpr std::size_t kCells = scoring::num_cells(K);

  explicit TupleBlockScratch(std::size_t bs)
      : bs_(bs), ft_(locals(bs) * 2 * kCells) {}

  std::size_t bs() const { return bs_; }
  std::uint32_t* table(std::size_t local, int cls) {
    return ft_.data() + (local * 2 + static_cast<std::size_t>(cls)) * kCells;
  }
  /// Zeroes only the tables (both classes) of locals [first, last) — the
  /// engine clears exactly the combinations a block tuple evaluates, so
  /// tail and diagonal blocks skip the untouched bulk of the bs^K array.
  void clear_tables(std::size_t first, std::size_t last) {
    std::fill(ft_.begin() + static_cast<std::ptrdiff_t>(first * 2 * kCells),
              ft_.begin() + static_cast<std::ptrdiff_t>(last * 2 * kCells),
              0u);
  }
  /// V5 prefix-plane ladder (unused and unallocated for V3/V4 scans).
  PrefixPlaneCache& prefix_cache() { return cache_; }
  /// Historical name for the K = 3 ladder.
  PairPlaneCache& pair_cache() { return cache_; }

 private:
  static std::size_t locals(std::size_t bs) {
    std::size_t v = 1;
    for (unsigned i = 0; i < K; ++i) v *= bs;
    return v;
  }

  std::size_t bs_;
  std::vector<std::uint32_t> ft_;
  PrefixPlaneCache cache_;
};

/// Triplet scratch: bs^3 tables of 27 cells.
using BlockScratch = TupleBlockScratch<3>;
/// Pair scratch: bs^2 tables of 9 cells.
using PairBlockScratch = TupleBlockScratch<2>;

namespace engine_detail {

/// Shared skeleton of the blocked scan at any order: block bounds,
/// three-tier rank clipping, targeted scratch clear and table emission.
/// `accumulate(base, end)` fills the scratch tables for all in-block
/// combinations; the direct-kernel (V3/V4) and ladder (V5) engines differ
/// only there.  `on_table(const Combination<K>&, const
/// BasicContingencyTable<K>&)` receives each emitted combination.
template <unsigned K, typename Accumulate, typename OnTable>
void scan_block_tuple_impl(const dataset::PhenoSplitPlanes& planes,
                           const TilingParams& tiling,
                           TupleBlockScratch<K>& scratch,
                           const BlockTuple<K>& bt,
                           const combinatorics::RankRange& clip,
                           Accumulate&& accumulate, OnTable&& on_table) {
  static_assert(K >= 2 && K <= combinatorics::kMaxOrder);
  const std::size_t bs = tiling.bs;
  const std::size_t m = planes.num_snps();
  std::array<std::size_t, K> base;
  std::array<std::size_t, K> end;
  for (unsigned j = 0; j < K; ++j) {
    base[j] = bt[j] * bs;
    if (base[j] >= m) return;
    end[j] = std::min(base[j] + bs, m);
  }

  bool filter = false;
  if (clip.first != kFullRange.first || clip.last != kFullRange.last) {
    const combinatorics::RankRange span = combinatorics::block_tuple_span<K>(
        combinatorics::BlockGrid{m, bs}, bt);
    if (span.empty() || span.last <= clip.first || span.first >= clip.last) {
      return;  // no combination of this block tuple is in range
    }
    filter = span.first < clip.first || span.last > clip.last;
  }

  // Clear only the tables this block tuple accumulates into: tail blocks
  // cover fewer than bs SNPs per axis and diagonal blocks only the strictly
  // increasing locals, so a full bs^K clear would zero (and finalize would
  // skip) mostly untouched memory.  The last axis of every valid prefix is
  // a contiguous local run.
  {
    const auto walk = [&](const auto& self, unsigned j, std::size_t prev,
                          std::size_t local) -> void {
      if (j == K - 1) {
        const std::size_t z_first = std::max(base[j], prev + 1);
        if (z_first >= end[j]) return;
        const std::size_t lo = local * bs + (z_first - base[j]);
        scratch.clear_tables(lo, lo + (end[j] - z_first));
        return;
      }
      const std::size_t first =
          j == 0 ? base[0] : std::max(base[j], prev + 1);
      for (std::size_t i = first; i < end[j]; ++i) {
        self(self, j + 1, i, local * bs + (i - base[j]));
      }
    };
    walk(walk, 0, 0, 0);
  }

  accumulate(base, end);

  // Finalize: fold the NOR padding out of the all-genotype-2 cell and emit
  // tables.
  {
    combinatorics::Combination<K> comb{};
    const auto walk = [&](const auto& self, unsigned j, std::size_t prev,
                          std::size_t local) -> void {
      if (j == K) {
        if (filter) {
          const std::uint64_t rank = combinatorics::rank_combination<K>(comb);
          if (rank < clip.first || rank >= clip.last) return;
        }
        scoring::BasicContingencyTable<K> t;
        for (int c = 0; c < 2; ++c) {
          const std::uint32_t* ft = scratch.table(local, c);
          auto& row = t.counts[static_cast<std::size_t>(c)];
          for (std::size_t i = 0; i < TupleBlockScratch<K>::kCells; ++i) {
            row[i] = ft[i];
          }
          // NOR padding shows up as phantom all-genotype-2 observations.
          row[TupleBlockScratch<K>::kCells - 1] -=
              static_cast<std::uint32_t>(planes.pad_bits(c));
        }
        on_table(static_cast<const combinatorics::Combination<K>&>(comb), t);
        return;
      }
      const std::size_t first =
          j == 0 ? base[0] : std::max(base[j], prev + 1);
      for (std::size_t i = first; i < end[j]; ++i) {
        comb[j] = static_cast<std::uint32_t>(i);
        self(self, j + 1, i, local * bs + (i - base[j]));
      }
    };
    walk(walk, 0, 0, 0);
  }
}

/// True when an index `i` chosen for axis `j` still admits a strictly
/// increasing completion through axes j+1..K-1 (the axis bounds are
/// monotone, so the greedy chain is the only candidate).
template <unsigned K>
bool has_completion(const std::array<std::size_t, K>& base,
                    const std::array<std::size_t, K>& end, unsigned j,
                    std::size_t i) {
  std::size_t p = i;
  for (unsigned l = j + 1; l < K; ++l) {
    p = std::max(base[l], p + 1);
    if (p >= end[l]) return false;
  }
  return true;
}

}  // namespace engine_detail

// ---------------------------------------------------------------------------
// Order-generic entry points
// ---------------------------------------------------------------------------

/// Evaluates every order-K SNP combination inside block tuple `bt` whose
/// colex rank lies in `clip` and calls `on_table(const Combination<K>&,
/// const BasicContingencyTable<K>&)` for each, using the direct (V3/V4)
/// order-generic kernel.  `scratch.bs()` must equal `tiling.bs`.
///
/// Clipping is rank-aware in three tiers: a block tuple whose span misses
/// `clip` entirely returns before any kernel work; a block tuple fully
/// inside `clip` (the interior of a partition) runs with zero
/// per-combination overhead; only the partition's boundary blocks filter
/// each emission by rank.  Pass `kFullRange` to disable clipping.
template <unsigned K, typename OnTable>
void scan_block_tuple(const dataset::PhenoSplitPlanes& planes,
                      const TilingParams& tiling,
                      const GenericKernelSet& kernels,
                      TupleBlockScratch<K>& scratch, const BlockTuple<K>& bt,
                      const combinatorics::RankRange& clip,
                      OnTable&& on_table) {
  const std::size_t bs = tiling.bs;
  engine_detail::scan_block_tuple_impl<K>(
      planes, tiling, scratch, bt, clip,
      [&](const std::array<std::size_t, K>& base,
          const std::array<std::size_t, K>& end) {
        // Sample-blocked accumulation: for each class, stream B_P words at
        // a time through all combinations of the block tuple (Algorithm 1
        // loop order, generalized to K axes).
        std::array<const Word*, K> g0;
        std::array<const Word*, K> g1;
        for (int c = 0; c < 2; ++c) {
          const std::size_t words = planes.words(c);
          for (std::size_t w0 = 0; w0 < words; w0 += tiling.bp_words) {
            const std::size_t w1 = std::min(w0 + tiling.bp_words, words);
            const auto walk = [&](const auto& self, unsigned j,
                                  std::size_t prev,
                                  std::size_t local) -> void {
              if (j == K) {
                kernels.direct(g0.data(), g1.data(), K, w0, w1,
                               scratch.table(local, c));
                return;
              }
              const std::size_t first =
                  j == 0 ? base[0] : std::max(base[j], prev + 1);
              for (std::size_t i = first; i < end[j]; ++i) {
                g0[j] = planes.plane(c, i, 0);
                g1[j] = planes.plane(c, i, 1);
                self(self, j + 1, i, local * bs + (i - base[j]));
              }
            };
            walk(walk, 0, 0, 0);
          }
        }
      },
      static_cast<OnTable&&>(on_table));
}

/// Unclipped direct scan: every combination of the block tuple is emitted.
template <unsigned K, typename OnTable>
void scan_block_tuple(const dataset::PhenoSplitPlanes& planes,
                      const TilingParams& tiling,
                      const GenericKernelSet& kernels,
                      TupleBlockScratch<K>& scratch, const BlockTuple<K>& bt,
                      OnTable&& on_table) {
  scan_block_tuple<K>(planes, tiling, kernels, scratch, bt, kFullRange,
                      static_cast<OnTable&&>(on_table));
}

/// V5 at any order K >= 3: the recursive prefix-plane ladder.  Rung 2 (the
/// 3^2 planes of the two leading SNPs) is built once per (prefix,
/// sample-chunk) by the per-ISA build kernel; each deeper rung j+1 extends
/// rung j by one SNP (two ANDs per plane, third child by the partition
/// identity); the last rung's planes and popcounts resolve all final-axis
/// cells with the two-operand finalize kernel — the prefix streams leave
/// the innermost loop entirely, and no genotype-2 plane of any prefix SNP
/// is ever materialized.  Bit-identical to the direct kernels for every
/// clip.
template <unsigned K, typename OnTable>
void scan_block_tuple(const dataset::PhenoSplitPlanes& planes,
                      const TilingParams& tiling,
                      const CachedKernelSet& cached,
                      const GenericKernelSet& generic,
                      TupleBlockScratch<K>& scratch, const BlockTuple<K>& bt,
                      const combinatorics::RankRange& clip,
                      OnTable&& on_table) {
  static_assert(K >= 3, "the prefix-plane ladder needs a length-2 prefix; "
                        "use the counts-only pair path for K == 2");
  const std::size_t bs = tiling.bs;
  PrefixPlaneCache& cache = scratch.prefix_cache();
  cache.ensure(K, tiling.bp_words);
  engine_detail::scan_block_tuple_impl<K>(
      planes, tiling, scratch, bt, clip,
      [&](const std::array<std::size_t, K>& base,
          const std::array<std::size_t, K>& end) {
        for (int c = 0; c < 2; ++c) {
          const std::size_t words = planes.words(c);
          for (std::size_t w0 = 0; w0 < words; w0 += tiling.bp_words) {
            const std::size_t w1 = std::min(w0 + tiling.bp_words, words);
            // walk(j, prev, local): indices for axes < j are chosen and
            // rung j (if j >= 2) holds the planes of that prefix.
            const auto walk = [&](const auto& self, unsigned j,
                                  std::size_t prev,
                                  std::size_t local) -> void {
              if (j == K - 1) {
                const std::size_t count = pow3(j);
                for (std::size_t i = std::max(base[j], prev + 1); i < end[j];
                     ++i) {
                  generic.finalize(cache.rung(j), count, cache.stride(),
                                   cache.rung_pops(j), planes.plane(c, i, 0),
                                   planes.plane(c, i, 1), w0, w1,
                                   scratch.table(local * bs + (i - base[j]),
                                                 c));
                }
                return;
              }
              const std::size_t first =
                  j == 0 ? base[0] : std::max(base[j], prev + 1);
              for (std::size_t i = first; i < end[j]; ++i) {
                if (!engine_detail::has_completion<K>(base, end, j, i)) {
                  continue;  // dead subtree: don't build planes nobody reads
                }
                if (j == 1) {
                  std::fill(cache.rung_pops(2), cache.rung_pops(2) + 9, 0u);
                  cached.build(planes.plane(c, prev, 0),
                               planes.plane(c, prev, 1),
                               planes.plane(c, i, 0), planes.plane(c, i, 1),
                               w0, w1, cache.rung(2), cache.stride(),
                               cache.rung_pops(2));
                } else if (j >= 2) {
                  // Only the last rung's popcounts feed the finalize
                  // kernel; intermediate rungs skip the POPCNT work.
                  std::uint32_t* pops = nullptr;
                  if (j + 1 == K - 1) {
                    pops = cache.rung_pops(j + 1);
                    std::fill(pops, pops + pow3(j + 1), 0u);
                  }
                  generic.extend(cache.rung(j), pow3(j), cache.stride(),
                                 planes.plane(c, i, 0), planes.plane(c, i, 1),
                                 w0, w1, cache.rung(j + 1), cache.stride(),
                                 pops);
                }
                self(self, j + 1, i, local * bs + (i - base[j]));
              }
            };
            walk(walk, 0, 0, 0);
          }
        }
      },
      static_cast<OnTable&&>(on_table));
}

/// Unclipped ladder scan: every combination of the block tuple is emitted.
template <unsigned K, typename OnTable>
void scan_block_tuple(const dataset::PhenoSplitPlanes& planes,
                      const TilingParams& tiling,
                      const CachedKernelSet& cached,
                      const GenericKernelSet& generic,
                      TupleBlockScratch<K>& scratch, const BlockTuple<K>& bt,
                      OnTable&& on_table) {
  scan_block_tuple<K>(planes, tiling, cached, generic, scratch, bt,
                      kFullRange, static_cast<OnTable&&>(on_table));
}

// ---------------------------------------------------------------------------
// Third order: the per-ISA triplet instantiation
// ---------------------------------------------------------------------------

/// Evaluates every SNP triplet inside block triple `bt` whose colex rank
/// lies in `clip` and calls `on_table(Triplet, const ContingencyTable&)`
/// for each.  `kernel` is the per-ISA triple-block kernel; `scratch.bs()`
/// must equal `tiling.bs`.  This is the K = 3 instantiation of the generic
/// engine skeleton, keeping the hand-tuned three-operand kernels (including
/// their AVX-512 variants) on the hot path.
template <typename OnTable>
void scan_block_triple(const dataset::PhenoSplitPlanes& planes,
                       const TilingParams& tiling, TripleBlockKernel kernel,
                       BlockScratch& scratch, const BlockTriple& bt,
                       const combinatorics::RankRange& clip,
                       OnTable&& on_table) {
  const std::size_t bs = tiling.bs;
  engine_detail::scan_block_tuple_impl<3>(
      planes, tiling, scratch, BlockTuple<3>{bt.b0, bt.b1, bt.b2}, clip,
      [&](const std::array<std::size_t, 3>& base,
          const std::array<std::size_t, 3>& end) {
        // Sample-blocked accumulation: for each class, stream B_P words at
        // a time through all triplets of the block triple (Algorithm 1
        // loop order).
        for (int c = 0; c < 2; ++c) {
          const std::size_t words = planes.words(c);
          for (std::size_t w0 = 0; w0 < words; w0 += tiling.bp_words) {
            const std::size_t w1 = std::min(w0 + tiling.bp_words, words);
            for (std::size_t i0 = base[0]; i0 < end[0]; ++i0) {
              for (std::size_t i1 = std::max(base[1], i0 + 1); i1 < end[1];
                   ++i1) {
                for (std::size_t i2 = std::max(base[2], i1 + 1); i2 < end[2];
                     ++i2) {
                  const std::size_t local =
                      ((i0 - base[0]) * bs + (i1 - base[1])) * bs +
                      (i2 - base[2]);
                  kernel(planes.plane(c, i0, 0), planes.plane(c, i0, 1),
                         planes.plane(c, i1, 0), planes.plane(c, i1, 1),
                         planes.plane(c, i2, 0), planes.plane(c, i2, 1), w0,
                         w1, scratch.table(local, c));
                }
              }
            }
          }
        }
      },
      [&](const combinatorics::Combination<3>& c,
          const scoring::ContingencyTable& t) {
        on_table(combinatorics::Triplet{c[0], c[1], c[2]}, t);
      });
}

/// Unclipped scan: every triplet of the block triple is emitted.
template <typename OnTable>
void scan_block_triple(const dataset::PhenoSplitPlanes& planes,
                       const TilingParams& tiling, TripleBlockKernel kernel,
                       BlockScratch& scratch, const BlockTriple& bt,
                       OnTable&& on_table) {
  scan_block_triple(planes, tiling, kernel, scratch, bt, kFullRange,
                    static_cast<OnTable&&>(on_table));
}

/// V5 at order 3: same walk as above, but the x∩y planes of each (i0, i1)
/// are built once per sample chunk into the ladder's rung 2 and the z loop
/// runs the two-operand cached kernel — the x/y plane streams and their
/// nine intersection ANDs leave the innermost loop entirely, and the z-NOR
/// plane is never materialized (cells (gx, gy, 2) derive from the cached
/// chunk popcounts).  Bit-identical to the direct kernels for every clip.
template <typename OnTable>
void scan_block_triple(const dataset::PhenoSplitPlanes& planes,
                       const TilingParams& tiling,
                       const CachedKernelSet& kernels, BlockScratch& scratch,
                       const BlockTriple& bt,
                       const combinatorics::RankRange& clip,
                       OnTable&& on_table) {
  const std::size_t bs = tiling.bs;
  PairPlaneCache& cache = scratch.pair_cache();
  cache.ensure(tiling.bp_words);
  engine_detail::scan_block_tuple_impl<3>(
      planes, tiling, scratch, BlockTuple<3>{bt.b0, bt.b1, bt.b2}, clip,
      [&](const std::array<std::size_t, 3>& base,
          const std::array<std::size_t, 3>& end) {
        for (int c = 0; c < 2; ++c) {
          const std::size_t words = planes.words(c);
          for (std::size_t w0 = 0; w0 < words; w0 += tiling.bp_words) {
            const std::size_t w1 = std::min(w0 + tiling.bp_words, words);
            for (std::size_t i0 = base[0]; i0 < end[0]; ++i0) {
              for (std::size_t i1 = std::max(base[1], i0 + 1); i1 < end[1];
                   ++i1) {
                const std::size_t z_first = std::max(base[2], i1 + 1);
                if (z_first >= end[2]) continue;
                std::fill(cache.pops(), cache.pops() + 9, 0u);
                kernels.build(planes.plane(c, i0, 0), planes.plane(c, i0, 1),
                              planes.plane(c, i1, 0), planes.plane(c, i1, 1),
                              w0, w1, cache.planes(), cache.stride(),
                              cache.pops());
                for (std::size_t i2 = z_first; i2 < end[2]; ++i2) {
                  const std::size_t local =
                      ((i0 - base[0]) * bs + (i1 - base[1])) * bs +
                      (i2 - base[2]);
                  kernels.cached(cache.planes(), cache.stride(), cache.pops(),
                                 planes.plane(c, i2, 0),
                                 planes.plane(c, i2, 1), w0, w1,
                                 scratch.table(local, c));
                }
              }
            }
          }
        }
      },
      [&](const combinatorics::Combination<3>& c,
          const scoring::ContingencyTable& t) {
        on_table(combinatorics::Triplet{c[0], c[1], c[2]}, t);
      });
}

/// Unclipped V5 scan: every triplet of the block triple is emitted.
template <typename OnTable>
void scan_block_triple(const dataset::PhenoSplitPlanes& planes,
                       const TilingParams& tiling,
                       const CachedKernelSet& kernels, BlockScratch& scratch,
                       const BlockTriple& bt, OnTable&& on_table) {
  scan_block_triple(planes, tiling, kernels, scratch, bt, kFullRange,
                    static_cast<OnTable&&>(on_table));
}

// ---------------------------------------------------------------------------
// Second order: the counts-only pair instantiation
// ---------------------------------------------------------------------------

/// Evaluates every SNP pair inside block pair `bp` whose colex rank lies in
/// `clip` and calls `on_table(combinatorics::Pair, const
/// scoring::PairContingencyTable&)` for each.  The counts phase *is* the
/// whole evaluation: the chunk popcounts of the nine x∩y intersections are
/// exactly the pair table cells restricted to this chunk — no third
/// operand, no 27-cell sweep, and no materialized planes (the counts-only
/// kernel retires zero stores and needs no L1 cache budget).  This is the
/// K = 2 instantiation of the generic engine skeleton, shared by V3 (scalar
/// kernel), V4 and V5 (identical here — the ladder has no rungs below
/// order 3).
template <typename OnTable>
void scan_block_pair(const dataset::PhenoSplitPlanes& planes,
                     const TilingParams& tiling,
                     const CachedKernelSet& kernels, PairBlockScratch& scratch,
                     const BlockPair& bp,
                     const combinatorics::RankRange& clip,
                     OnTable&& on_table) {
  const std::size_t bs = tiling.bs;
  engine_detail::scan_block_tuple_impl<2>(
      planes, tiling, scratch, BlockTuple<2>{bp.b0, bp.b1}, clip,
      [&](const std::array<std::size_t, 2>& base,
          const std::array<std::size_t, 2>& end) {
        for (int c = 0; c < 2; ++c) {
          const std::size_t words = planes.words(c);
          for (std::size_t w0 = 0; w0 < words; w0 += tiling.bp_words) {
            const std::size_t w1 = std::min(w0 + tiling.bp_words, words);
            for (std::size_t i0 = base[0]; i0 < end[0]; ++i0) {
              for (std::size_t i1 = std::max(base[1], i0 + 1); i1 < end[1];
                   ++i1) {
                std::array<std::uint32_t, 9> pops{};
                kernels.count(planes.plane(c, i0, 0), planes.plane(c, i0, 1),
                              planes.plane(c, i1, 0), planes.plane(c, i1, 1),
                              w0, w1, pops.data());
                const std::size_t local =
                    (i0 - base[0]) * bs + (i1 - base[1]);
                std::uint32_t* ft = scratch.table(local, c);
                for (int p = 0; p < 9; ++p) ft[p] += pops[static_cast<std::size_t>(p)];
              }
            }
          }
        }
      },
      [&](const combinatorics::Combination<2>& c,
          const scoring::PairContingencyTable& t) {
        on_table(combinatorics::Pair{c[0], c[1]}, t);
      });
}

/// Unclipped pair scan: every pair of the block pair is emitted.
template <typename OnTable>
void scan_block_pair(const dataset::PhenoSplitPlanes& planes,
                     const TilingParams& tiling,
                     const CachedKernelSet& kernels, PairBlockScratch& scratch,
                     const BlockPair& bp, OnTable&& on_table) {
  scan_block_pair(planes, tiling, kernels, scratch, bp, kFullRange,
                  static_cast<OnTable&&>(on_table));
}

// ---------------------------------------------------------------------------
// Batched multi-phenotype engines
// ---------------------------------------------------------------------------

/// Per-thread scratch of the batched engines: the prefix-plane ladder, the
/// chunk |prefix ∩ label| popcounts, and the live (1 + P)-slot tables (slot
/// 0 totals, slot 1+p the case table of partition p).  At order >= 3 the
/// tables of all final-axis combinations of one prefix are live together
/// (B_S of them); at order 2 one pair emits before the next starts.
template <unsigned K>
class BatchTupleScratch {
 public:
  static constexpr std::size_t kCells = scoring::num_cells(K);
  /// Planes the label-popcount kernel runs against: the materialized pair
  /// planes at order 2, the last ladder rung otherwise.
  static constexpr std::size_t kPrefixPlanes = K == 2 ? 9 : pow3(K - 1);

  BatchTupleScratch(std::size_t bs, std::size_t slots, std::size_t lstride)
      : bs_(bs),
        slots_(slots),
        tables_((K >= 3 ? bs : 1) * (1 + slots) * kCells),
        label_pops_(kPrefixPlanes * lstride) {}

  std::size_t bs() const { return bs_; }
  std::size_t slots() const { return slots_; }
  /// The (1 + P)-slot table group of final-axis combination `z_rel`.
  std::uint32_t* tables(std::size_t z_rel) {
    return tables_.data() + z_rel * (1 + slots_) * kCells;
  }
  /// Zeroes the table groups of final-axis combinations [0, z_count).
  void clear_tables(std::size_t z_count) {
    std::fill(tables_.begin(),
              tables_.begin() + static_cast<std::ptrdiff_t>(
                                    z_count * (1 + slots_) * kCells),
              0u);
  }
  std::uint32_t* label_pops() { return label_pops_.data(); }
  PrefixPlaneCache& prefix_cache() { return cache_; }

 private:
  std::size_t bs_;
  std::size_t slots_;
  std::vector<std::uint32_t> tables_;
  std::vector<std::uint32_t> label_pops_;
  PrefixPlaneCache cache_;
};

/// Batched ladder scan at any order K >= 3: evaluates every combination of
/// block tuple `bt` within `clip` against ALL partitions of `batch` in one
/// pass, and calls `on_table(const Combination<K>&, std::size_t partition,
/// const BasicContingencyTable<K>&)` for each (partition index ascending
/// within a combination).
///
/// `planes` must be the phenotype-agnostic combined layout
/// (`PhenoSplitPlanes::build_combined`): the ladder streams class 0 (all
/// samples) exactly once per prefix and chunk, the batch kernel counts
/// |prefix ∩ L_p| once per chunk, and each final-axis SNP then costs two
/// broadcast-AND-popcount streams per partition — the plane streaming and
/// ladder build are amortized across all P partitions.  Tables are exact
/// integer counts, so every partition's result is bit-identical to a
/// dedicated sequential scan of that partition.
template <unsigned K, typename OnTable>
void scan_block_tuple_batched(const dataset::PhenoSplitPlanes& planes,
                              const dataset::PhenotypeBatch& batch,
                              const TilingParams& tiling,
                              const CachedKernelSet& cached,
                              const GenericKernelSet& generic,
                              const BatchKernelSet& bkern,
                              BatchTupleScratch<K>& scratch,
                              const BlockTuple<K>& bt,
                              const combinatorics::RankRange& clip,
                              OnTable&& on_table) {
  static_assert(K >= 3, "the batched ladder needs a length-2 prefix; "
                        "use scan_block_pair_batched for K == 2");
  constexpr std::size_t kCells = BatchTupleScratch<K>::kCells;
  const std::size_t bs = tiling.bs;
  const std::size_t m = planes.num_snps();
  std::array<std::size_t, K> base;
  std::array<std::size_t, K> end;
  for (unsigned j = 0; j < K; ++j) {
    base[j] = bt[j] * bs;
    if (base[j] >= m) return;
    end[j] = std::min(base[j] + bs, m);
  }

  bool filter = false;
  if (clip.first != kFullRange.first || clip.last != kFullRange.last) {
    const combinatorics::RankRange span = combinatorics::block_tuple_span<K>(
        combinatorics::BlockGrid{m, bs}, bt);
    if (span.empty() || span.last <= clip.first || span.first >= clip.last) {
      return;
    }
    filter = span.first < clip.first || span.last > clip.last;
  }

  const std::size_t num_labels = batch.size();
  const std::size_t lstride = batch.stride();
  const Word* labels = batch.word_labels();
  const std::size_t words = planes.words(0);
  const std::size_t pad = planes.pad_bits(0);
  PrefixPlaneCache& cache = scratch.prefix_cache();
  cache.ensure(K, tiling.bp_words);
  constexpr std::size_t count = pow3(K - 1);

  combinatorics::Combination<K> comb{};
  const auto process_prefix = [&]() {
    const std::size_t z_first =
        std::max(base[K - 1], static_cast<std::size_t>(comb[K - 2]) + 1);
    if (z_first >= end[K - 1]) return;
    const std::size_t z_count = end[K - 1] - z_first;
    scratch.clear_tables(z_count);
    // Chunk loop inside the prefix: the ladder and the per-chunk label
    // popcounts are built once and reused by every final-axis SNP and
    // every partition.
    for (std::size_t w0 = 0; w0 < words; w0 += tiling.bp_words) {
      const std::size_t w1 = std::min(w0 + tiling.bp_words, words);
      std::fill(cache.rung_pops(2), cache.rung_pops(2) + 9, 0u);
      cached.build(planes.plane(0, comb[0], 0), planes.plane(0, comb[0], 1),
                   planes.plane(0, comb[1], 0), planes.plane(0, comb[1], 1),
                   w0, w1, cache.rung(2), cache.stride(), cache.rung_pops(2));
      for (unsigned j = 2; j + 1 < K; ++j) {
        std::uint32_t* pops = nullptr;
        if (j + 1 == K - 1) {
          pops = cache.rung_pops(j + 1);
          std::fill(pops, pops + pow3(j + 1), 0u);
        }
        generic.extend(cache.rung(j), pow3(j), cache.stride(),
                       planes.plane(0, comb[j], 0),
                       planes.plane(0, comb[j], 1), w0, w1, cache.rung(j + 1),
                       cache.stride(), pops);
      }
      const Word* last = cache.rung(K - 1);
      std::fill(scratch.label_pops(),
                scratch.label_pops() + count * lstride, 0u);
      bkern.label_pops(last, count, cache.stride(), labels, num_labels,
                       lstride, w0, w1, scratch.label_pops());
      for (std::size_t z = z_first; z < end[K - 1]; ++z) {
        bkern.finalize(last, count, cache.stride(), cache.rung_pops(K - 1),
                       scratch.label_pops(), planes.plane(0, z, 0),
                       planes.plane(0, z, 1), labels, num_labels, lstride, w0,
                       w1, scratch.tables(z - z_first), kCells);
      }
    }
    // Emit: slot 0 holds the phenotype-independent totals, slot 1+p the
    // exact case table of partition p (label planes are zero-padded).  The
    // control table is totals − case; only it inherits the combined
    // planes' phantom all-genotype-2 padding.
    for (std::size_t z = z_first; z < end[K - 1]; ++z) {
      comb[K - 1] = static_cast<std::uint32_t>(z);
      if (filter) {
        const std::uint64_t rank = combinatorics::rank_combination<K>(comb);
        if (rank < clip.first || rank >= clip.last) continue;
      }
      const std::uint32_t* group = scratch.tables(z - z_first);
      for (std::size_t p = 0; p < num_labels; ++p) {
        const std::uint32_t* case_ft = group + (1 + p) * kCells;
        scoring::BasicContingencyTable<K> t;
        for (std::size_t i = 0; i < kCells; ++i) {
          t.counts[1][i] = case_ft[i];
          t.counts[0][i] = group[i] - case_ft[i];
        }
        t.counts[0][kCells - 1] -= static_cast<std::uint32_t>(pad);
        on_table(static_cast<const combinatorics::Combination<K>&>(comb), p,
                 t);
      }
    }
  };

  const auto walk = [&](const auto& self, unsigned j,
                        std::size_t prev) -> void {
    if (j == K - 1) {
      process_prefix();
      return;
    }
    const std::size_t first = j == 0 ? base[0] : std::max(base[j], prev + 1);
    for (std::size_t i = first; i < end[j]; ++i) {
      if (!engine_detail::has_completion<K>(base, end, j, i)) continue;
      comb[j] = static_cast<std::uint32_t>(i);
      self(self, j + 1, i);
    }
  };
  walk(walk, 0, 0);
}

/// Batched pair scan (K == 2): the nine x∩y planes of each pair are
/// materialized once per chunk; their chunk popcounts are the totals and
/// one label-popcount pass per chunk yields every partition's case cells
/// directly — there is no final axis, so no finalize kernel is involved.
/// Calls `on_table(const Combination<2>&, std::size_t partition, const
/// PairContingencyTable&)`.
template <typename OnTable>
void scan_block_pair_batched(const dataset::PhenoSplitPlanes& planes,
                             const dataset::PhenotypeBatch& batch,
                             const TilingParams& tiling,
                             const CachedKernelSet& cached,
                             const BatchKernelSet& bkern,
                             BatchTupleScratch<2>& scratch,
                             const BlockPair& bp,
                             const combinatorics::RankRange& clip,
                             OnTable&& on_table) {
  const std::size_t bs = tiling.bs;
  const std::size_t m = planes.num_snps();
  std::array<std::size_t, 2> base{bp.b0 * bs, bp.b1 * bs};
  if (base[0] >= m || base[1] >= m) return;
  const std::array<std::size_t, 2> end{std::min(base[0] + bs, m),
                                       std::min(base[1] + bs, m)};

  bool filter = false;
  if (clip.first != kFullRange.first || clip.last != kFullRange.last) {
    const combinatorics::RankRange span = combinatorics::block_tuple_span<2>(
        combinatorics::BlockGrid{m, bs}, BlockTuple<2>{bp.b0, bp.b1});
    if (span.empty() || span.last <= clip.first || span.first >= clip.last) {
      return;
    }
    filter = span.first < clip.first || span.last > clip.last;
  }

  const std::size_t num_labels = batch.size();
  const std::size_t lstride = batch.stride();
  const Word* labels = batch.word_labels();
  const std::size_t words = planes.words(0);
  const std::size_t pad = planes.pad_bits(0);
  PrefixPlaneCache& cache = scratch.prefix_cache();
  cache.ensure(3, tiling.bp_words);

  combinatorics::Combination<2> comb{};
  for (std::size_t i0 = base[0]; i0 < end[0]; ++i0) {
    for (std::size_t i1 = std::max(base[1], i0 + 1); i1 < end[1]; ++i1) {
      comb[0] = static_cast<std::uint32_t>(i0);
      comb[1] = static_cast<std::uint32_t>(i1);
      if (filter) {
        const std::uint64_t rank = combinatorics::rank_combination<2>(comb);
        if (rank < clip.first || rank >= clip.last) continue;
      }
      scratch.clear_tables(1);
      std::uint32_t* table = scratch.tables(0);
      for (std::size_t w0 = 0; w0 < words; w0 += tiling.bp_words) {
        const std::size_t w1 = std::min(w0 + tiling.bp_words, words);
        std::fill(cache.rung_pops(2), cache.rung_pops(2) + 9, 0u);
        cached.build(planes.plane(0, i0, 0), planes.plane(0, i0, 1),
                     planes.plane(0, i1, 0), planes.plane(0, i1, 1), w0, w1,
                     cache.rung(2), cache.stride(), cache.rung_pops(2));
        std::fill(scratch.label_pops(), scratch.label_pops() + 9 * lstride,
                  0u);
        bkern.label_pops(cache.rung(2), 9, cache.stride(), labels, num_labels,
                         lstride, w0, w1, scratch.label_pops());
        for (std::size_t t = 0; t < 9; ++t) {
          table[t] += cache.rung_pops(2)[t];
          for (std::size_t p = 0; p < num_labels; ++p) {
            table[(1 + p) * 9 + t] += scratch.label_pops()[t * lstride + p];
          }
        }
      }
      for (std::size_t p = 0; p < num_labels; ++p) {
        const std::uint32_t* case_ft = table + (1 + p) * 9;
        scoring::PairContingencyTable t;
        for (std::size_t i = 0; i < 9; ++i) {
          t.counts[1][i] = case_ft[i];
          t.counts[0][i] = table[i] - case_ft[i];
        }
        t.counts[0][8] -= static_cast<std::uint32_t>(pad);
        on_table(static_cast<const combinatorics::Combination<2>&>(comb), p,
                 t);
      }
    }
  }
}

}  // namespace trigen::core
