#pragma once
/// \file detector.hpp
/// \brief Public façade: exhaustive k-way epistasis detection on CPU.
///
/// Usage:
/// \code
///   using namespace trigen;
///   dataset::GenotypeMatrix d = dataset::read_text_file("study.tg");
///   core::Detector det(d);                     // = BasicDetector<3>
///   core::DetectorOptions opt;                 // defaults: V4, K2, auto ISA
///   core::DetectionResult r = det.run(opt);
///   // r.best.front().triplet is the most likely epistatic triplet.
/// \endcode
///
/// `BasicDetector<K>` runs the same stack at any interaction order
/// K in [2, combinatorics::kMaxOrder]: `Detector` (K = 3) and the pairwise
/// module's `PairDetector` (K = 2) are aliases of it.  The five
/// `CpuVersion`s implement the paper's optimization ladder plus the
/// prefix-plane-cached V5 extension; all produce identical results, they
/// only differ in speed (and are cross-checked against each other in the
/// test suite).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "trigen/combinatorics/scheduler.hpp"
#include "trigen/core/blocked_engine.hpp"
#include "trigen/core/kernel_config.hpp"
#include "trigen/core/kernels.hpp"
#include "trigen/core/scan_driver.hpp"
#include "trigen/core/tiling.hpp"
#include "trigen/core/topk.hpp"
#include "trigen/dataset/bitplanes.hpp"
#include "trigen/dataset/genotype_matrix.hpp"

namespace trigen::core {

/// Which rung of the paper's CPU optimization ladder to run.
enum class CpuVersion {
  kV1Naive,      ///< Fig.-1 layout, phenotype ANDs (memory bound, §IV-A)
  kV2Split,      ///< phenotype-split planes, genotype-2 inferred via NOR
  kV3Blocked,    ///< + loop tiling to L1 (Algorithm 1)
  kV4Vector,     ///< + vector intrinsics (per-ISA POPCNT strategy)
  kV5PairCache,  ///< + the prefix-plane ladder: the 3^j intersection planes
                 ///< of every j-SNP prefix (j = 2..k-1) are built once per
                 ///< (prefix, sample-chunk) and shared by all B_S last-axis
                 ///< SNPs, cutting the hot loop to two ANDs + two POPCNTs
                 ///< per cached plane and word (same per-ISA strategies,
                 ///< bit-identical results).  At k = 2 the counts-only pair
                 ///< path makes this identical to V4.
};

std::string cpu_version_name(CpuVersion v);

/// The kernel family that dominates an order-`order` scan at `version`
/// (`batched` overrides both: run_batched always ends in the batched
/// finalize).  This is the family a detector asks its ConfigResolver about.
KernelFamily scan_kernel_family(unsigned order, CpuVersion version,
                                bool batched);

/// Objective function for ranking combinations.
enum class Objective {
  kK2,                 ///< Bayesian K2 score (paper Eq. 1; lower is better)
  kMutualInformation,  ///< MPI3SNP's objective (higher is better)
  kChiSquared,         ///< Pearson X^2 (higher is better)
};

std::string objective_name(Objective o);

/// Scorer for `o` normalized to lower-is-better (MI and X^2 are negated),
/// sized for datasets of `num_samples`.  Shared by the CPU detector, the
/// GPU simulator and the baseline engine so scores are comparable.
std::function<double(const scoring::ContingencyTable&)> make_normalized_scorer(
    Objective o, std::uint32_t num_samples);

/// Order-generic scorer factory: the 3^K-cell counterpart of
/// make_normalized_scorer (which it delegates to at K = 3), normalized to
/// lower-is-better and sized for datasets of `num_samples`.
template <unsigned K>
std::function<double(const scoring::BasicContingencyTable<K>&)>
make_normalized_scorer_of(Objective o, std::uint32_t num_samples);

/// Scan parameters shared by every interaction order.  Zero-valued fields
/// mean "auto".
struct ScanOptionsBase {
  /// Default stays V4 until the fig3 benchmarks justify flipping; opt into
  /// the prefix-plane-cached engine with kV5PairCache (CLI: --version 5).
  CpuVersion version = CpuVersion::kV4Vector;
  /// Vector strategy for V4/V5 (ignored by V1/V3, which are scalar by
  /// definition).  Defaults to the widest the host supports.
  KernelIsa isa = KernelIsa::kScalar;
  bool isa_auto = true;  ///< when true, `isa` is replaced by best_kernel_isa()
  Objective objective = Objective::kK2;
  unsigned threads = 1;       ///< 0 = hardware_concurrency
  std::uint64_t chunk_size = 0;  ///< scheduler chunk; 0 = auto
  TilingParams tiling{0, 0};  ///< {0,0} = autotune from the host L1D
  std::size_t top_k = 1;      ///< how many best combinations to report
  /// Restrict the scan to a combination-rank sub-range (heterogeneous
  /// CPU+GPU splits, sharded/multi-node scans).  Empty means the full
  /// space.  All five versions accept any sub-range: the per-combination
  /// versions (V1/V2) iterate it directly, the blocked versions (V3/V4/V5)
  /// map it to block tuples and clip only at the partition's boundary
  /// blocks, so a union of partial scans over any full-coverage split
  /// reproduces the full scan combination-for-combination.  For
  /// production-scale range orchestration — planning shards,
  /// checkpoint/resume, portable result files and the exact merge — use
  /// `trigen::shard` (src/shard/) instead of driving this field by hand.
  combinatorics::RankRange range{0, 0};
  /// Optional progress callback, reported in combinations scanned out of
  /// `range.size()` (serialized, monotone; runs on worker threads).
  ProgressFn progress{};
  /// Optional empirical-tuning lookup (see kernel_config.hpp; trigen::tune
  /// provides one from a per-host TRIGEN-TUNE profile).  Consulted by the
  /// vector versions (V4/V5) and run_batched only when `isa_auto` is set
  /// AND `tiling` is invalid — an explicit pin of either field keeps the
  /// whole configuration explicit/analytic.  A miss, an unset resolver, or
  /// a choice whose ISA this host cannot execute falls back to
  /// best_kernel_isa() and the analytic autotune_tiling model.  Results
  /// are bit-identical either way; only speed differs.
  ConfigResolver config{};
};

/// Detection parameters for the order-K scan.
template <unsigned K>
struct BasicDetectorOptions : ScanOptionsBase {
  /// Optional pre-built scorer overriding `objective` (must be normalized
  /// to lower-is-better, e.g. from make_normalized_scorer_of<K>).  Lets
  /// repeated scans — permutation testing above all — share one
  /// log-factorial table instead of rebuilding scorer state per run.
  std::function<double(const scoring::BasicContingencyTable<K>&)> scorer{};
};

/// Detection parameters for the 3-way scan.
using DetectorOptions = BasicDetectorOptions<3>;

/// Injects the default normalized scorer for `objective` when none is set
/// — the shared prelude of every repeated-scan harness (shard runner,
/// permutation tests), order-generic.
template <unsigned K>
void ensure_default_scorer(BasicDetectorOptions<K>& opt,
                           std::size_t num_samples) {
  if (!opt.scorer) {
    opt.scorer = make_normalized_scorer_of<K>(
        opt.objective, static_cast<std::uint32_t>(num_samples));
  }
}

/// Execution statistics shared by every scan result, independent of order.
struct ScanStats {
  /// The paper's "elements" metric: combinations x samples.
  std::uint64_t elements = 0;
  double seconds = 0.0;
  /// Effective configuration after auto-resolution.
  KernelIsa isa_used = KernelIsa::kScalar;
  TilingParams tiling_used{0, 0};
  unsigned threads_used = 1;

  /// Elements per second (the paper's headline performance metric).
  double elements_per_second() const {
    return seconds > 0.0 ? static_cast<double>(elements) / seconds : 0.0;
  }
};

/// Outcome of an order-K detection run.
template <unsigned K>
struct BasicDetectionResult : ScanStats {
  /// Best combinations, best-first.  Scores are normalized to
  /// lower-is-better (MI and X^2 are negated; K2 is reported as-is).
  std::vector<ScoredOf<K>> best;
  std::uint64_t combinations_evaluated = 0;
};

/// Outcome of a 3-way detection run.
using DetectionResult = BasicDetectionResult<3>;

/// Outcome of a batched multi-phenotype run: one independent top-k ranking
/// per partition of the batch, from a single pass over the genotype data.
template <unsigned K>
struct BasicBatchDetectionResult : ScanStats {
  /// `best[p]` is the best-first ranking of partition p, identical to what
  /// a dedicated run() over that partition's phenotype would report.
  std::vector<std::vector<ScoredOf<K>>> best;
  /// Combinations evaluated (counted once, not per partition).
  std::uint64_t combinations_evaluated = 0;
};

/// Exhaustive order-K detector over one dataset.  Thread-safe for
/// concurrent run() calls; the bit-plane layouts are built once at
/// construction.
template <unsigned K>
class BasicDetector {
  static_assert(K >= 2 && K <= combinatorics::kMaxOrder);

 public:
  explicit BasicDetector(const dataset::GenotypeMatrix& d);
  ~BasicDetector();

  BasicDetector(const BasicDetector&) = delete;
  BasicDetector& operator=(const BasicDetector&) = delete;

  /// Runs exhaustive detection; throws std::invalid_argument for
  /// inconsistent options and std::runtime_error for unavailable ISAs.
  /// All five versions produce bit-identical results for any rank range
  /// (cross-checked in the test suite); they differ only in speed.
  BasicDetectionResult<K> run(const BasicDetectorOptions<K>& options = {}) const;

  /// Scores every combination against ALL partitions of `batch` in one
  /// pass: the genotype streaming and prefix-plane ladder are built once
  /// per (prefix, chunk) and amortized across partitions, so P partitions
  /// cost far less than P runs.  Each partition's ranking is bit-identical
  /// to a dedicated run() with that partition as the phenotype (same
  /// integer tables, same scorer, same deterministic merge).  Always runs
  /// the cached blocked engine; `options.version` is ignored.  This is the
  /// engine under permutation testing (observed + shuffled nulls = one
  /// batch) and multi-trait scans.
  BasicBatchDetectionResult<K> run_batched(
      const dataset::PhenotypeBatch& batch,
      const BasicDetectorOptions<K>& options = {}) const;

  /// Reference per-combination evaluation through the bitwise kernels over
  /// the full sample range — the cross-check the blocked paths are
  /// validated against (and the V2 per-combination scan path).
  scoring::BasicContingencyTable<K> contingency(
      const combinatorics::Combination<K>& snps,
      KernelIsa isa = KernelIsa::kScalar) const;

  /// Pairwise-API compatibility form of contingency().
  scoring::PairContingencyTable contingency(
      std::size_t x, std::size_t y,
      KernelIsa isa = KernelIsa::kScalar) const
    requires(K == 2)
  {
    return contingency(
        combinatorics::Combination<2>{static_cast<std::uint32_t>(x),
                                      static_cast<std::uint32_t>(y)},
        isa);
  }

  std::size_t num_snps() const;
  std::size_t num_samples() const;

  /// Layout accessors (used by benches and the CARM characterization).
  const dataset::BitPlanesV1& planes_v1() const;
  const dataset::PhenoSplitPlanes& planes_split() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Exhaustive 3-way detector: the order the paper (and this repo) grew up
/// with.
using Detector = BasicDetector<3>;

extern template class BasicDetector<2>;
extern template class BasicDetector<3>;
extern template class BasicDetector<4>;
extern template class BasicDetector<5>;
extern template class BasicDetector<6>;

extern template std::function<double(const scoring::BasicContingencyTable<2>&)>
make_normalized_scorer_of<2>(Objective, std::uint32_t);
extern template std::function<double(const scoring::BasicContingencyTable<3>&)>
make_normalized_scorer_of<3>(Objective, std::uint32_t);
extern template std::function<double(const scoring::BasicContingencyTable<4>&)>
make_normalized_scorer_of<4>(Objective, std::uint32_t);
extern template std::function<double(const scoring::BasicContingencyTable<5>&)>
make_normalized_scorer_of<5>(Objective, std::uint32_t);
extern template std::function<double(const scoring::BasicContingencyTable<6>&)>
make_normalized_scorer_of<6>(Objective, std::uint32_t);

}  // namespace trigen::core
