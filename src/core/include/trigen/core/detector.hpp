#pragma once
/// \file detector.hpp
/// \brief Public façade: exhaustive three-way epistasis detection on CPU.
///
/// Usage:
/// \code
///   using namespace trigen;
///   dataset::GenotypeMatrix d = dataset::read_text_file("study.tg");
///   core::Detector det(d);
///   core::DetectorOptions opt;                 // defaults: V4, K2, auto ISA
///   core::DetectionResult r = det.run(opt);
///   // r.best.front().triplet is the most likely epistatic triplet.
/// \endcode
///
/// The five `CpuVersion`s implement the paper's optimization ladder plus
/// the pair-plane-cached V5 extension; all produce identical results, they
/// only differ in speed (and are cross-checked against each other in the
/// test suite).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "trigen/combinatorics/scheduler.hpp"
#include "trigen/core/blocked_engine.hpp"
#include "trigen/core/kernels.hpp"
#include "trigen/core/scan_driver.hpp"
#include "trigen/core/tiling.hpp"
#include "trigen/core/topk.hpp"
#include "trigen/dataset/bitplanes.hpp"
#include "trigen/dataset/genotype_matrix.hpp"

namespace trigen::core {

/// Which rung of the paper's CPU optimization ladder to run.
enum class CpuVersion {
  kV1Naive,      ///< Fig.-1 layout, phenotype ANDs (memory bound, §IV-A)
  kV2Split,      ///< phenotype-split planes, genotype-2 inferred via NOR
  kV3Blocked,    ///< + loop tiling to L1 (Algorithm 1)
  kV4Vector,     ///< + vector intrinsics (per-ISA POPCNT strategy)
  kV5PairCache,  ///< + x∩y planes cached per (x, y, sample-chunk): the
                 ///< nine intersection planes and their popcounts are built
                 ///< once and shared by all B_S z-SNPs, cutting the hot
                 ///< loop to 18 ANDs + 18 POPCNTs per word (same per-ISA
                 ///< strategies, bit-identical results)
};

std::string cpu_version_name(CpuVersion v);

/// Objective function for ranking triplets.
enum class Objective {
  kK2,                 ///< Bayesian K2 score (paper Eq. 1; lower is better)
  kMutualInformation,  ///< MPI3SNP's objective (higher is better)
  kChiSquared,         ///< Pearson X^2 (higher is better)
};

std::string objective_name(Objective o);

/// Scorer for `o` normalized to lower-is-better (MI and X^2 are negated),
/// sized for datasets of `num_samples`.  Shared by the CPU detector, the
/// GPU simulator and the baseline engine so scores are comparable.
std::function<double(const scoring::ContingencyTable&)> make_normalized_scorer(
    Objective o, std::uint32_t num_samples);

/// Scan parameters shared by every interaction order (the 3-way Detector
/// and the 2-way PairDetector derive their option structs from this, each
/// adding only its order-specific scorer hook).  Zero-valued fields mean
/// "auto".
struct ScanOptionsBase {
  /// Default stays V4 until the fig3 benchmarks justify flipping; opt into
  /// the pair-plane-cached engine with kV5PairCache (CLI: --version 5).
  CpuVersion version = CpuVersion::kV4Vector;
  /// Vector strategy for V4/V5 (ignored by V1/V3, which are scalar by
  /// definition).  Defaults to the widest the host supports.
  KernelIsa isa = KernelIsa::kScalar;
  bool isa_auto = true;  ///< when true, `isa` is replaced by best_kernel_isa()
  Objective objective = Objective::kK2;
  unsigned threads = 1;       ///< 0 = hardware_concurrency
  std::uint64_t chunk_size = 0;  ///< scheduler chunk; 0 = auto
  TilingParams tiling{0, 0};  ///< {0,0} = autotune from the host L1D
  std::size_t top_k = 1;      ///< how many best combinations to report
  /// Restrict the scan to a combination-rank sub-range (heterogeneous
  /// CPU+GPU splits, sharded/multi-node scans).  Empty means the full
  /// space.  All five versions accept any sub-range: the per-combination
  /// versions (V1/V2) iterate it directly, the blocked versions (V3/V4/V5)
  /// map it to block tuples and clip only at the partition's boundary
  /// blocks, so a union of partial scans over any full-coverage split
  /// reproduces the full scan combination-for-combination.  For
  /// production-scale range orchestration — planning shards,
  /// checkpoint/resume, portable result files and the exact merge — use
  /// `trigen::shard` (src/shard/) instead of driving this field by hand.
  combinatorics::RankRange range{0, 0};
  /// Optional progress callback, reported in combinations scanned out of
  /// `range.size()` (serialized, monotone; runs on worker threads).
  ProgressFn progress{};
};

/// Detection parameters for the 3-way scan.
struct DetectorOptions : ScanOptionsBase {
  /// Optional pre-built scorer overriding `objective` (must be normalized
  /// to lower-is-better, e.g. from make_normalized_scorer).  Lets repeated
  /// scans — permutation testing above all — share one log-factorial
  /// table instead of rebuilding scorer state per run.
  std::function<double(const scoring::ContingencyTable&)> scorer{};
};

/// Execution statistics shared by every scan result, independent of order.
struct ScanStats {
  /// The paper's "elements" metric: combinations x samples.
  std::uint64_t elements = 0;
  double seconds = 0.0;
  /// Effective configuration after auto-resolution.
  KernelIsa isa_used = KernelIsa::kScalar;
  TilingParams tiling_used{0, 0};
  unsigned threads_used = 1;

  /// Elements per second (the paper's headline performance metric).
  double elements_per_second() const {
    return seconds > 0.0 ? static_cast<double>(elements) / seconds : 0.0;
  }
};

/// Outcome of a 3-way detection run.
struct DetectionResult : ScanStats {
  /// Best triplets, best-first.  Scores are normalized to lower-is-better
  /// (MI and X^2 are negated; K2 is reported as-is).
  std::vector<ScoredTriplet> best;
  std::uint64_t triplets_evaluated = 0;
};

/// Exhaustive 3-way detector over one dataset.  Thread-safe for concurrent
/// run() calls; the bit-plane layouts are built once at construction.
class Detector {
 public:
  explicit Detector(const dataset::GenotypeMatrix& d);
  ~Detector();

  Detector(const Detector&) = delete;
  Detector& operator=(const Detector&) = delete;

  /// Runs exhaustive detection; throws std::invalid_argument for
  /// inconsistent options and std::runtime_error for unavailable ISAs.
  DetectionResult run(const DetectorOptions& options = {}) const;

  std::size_t num_snps() const;
  std::size_t num_samples() const;

  /// Layout accessors (used by benches and the CARM characterization).
  const dataset::BitPlanesV1& planes_v1() const;
  const dataset::PhenoSplitPlanes& planes_split() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace trigen::core
