#pragma once
/// \file scan_csv.hpp
/// \brief The canonical CSV rendering of a top-k scan result.
///
/// `trigen scan`/`scan2`/`merge` print this section and shell pipelines
/// diff it byte-for-byte against other runs; the resident server streams
/// the very same lines as its scan-job payload.  Keeping the formatting in
/// one place is what makes "a serve job is bit-identical to the standalone
/// CLI run" checkable with `diff` instead of a promise.  Orders 2 and 3
/// keep their historical snp_x/snp_y/snp_z column names.

#include <cstdio>
#include <string>
#include <vector>

#include "trigen/core/topk.hpp"

namespace trigen::core {

/// Header line of the order-K scan CSV (no trailing newline).
template <unsigned K>
std::string scan_csv_header() {
  std::string hdr = "rank";
  if constexpr (K <= 3) {
    constexpr const char* kAxes[3] = {",snp_x", ",snp_y", ",snp_z"};
    for (unsigned i = 0; i < K; ++i) hdr += kAxes[i];
  } else {
    for (unsigned i = 0; i < K; ++i) hdr += ",snp_" + std::to_string(i);
  }
  return hdr + ",score";
}

/// One data row: 1-based rank, the combination's SNPs, and the score with
/// the CLI's historical %.6f formatting (no trailing newline).
template <unsigned K>
std::string scan_csv_row(std::size_t rank, const ScoredOf<K>& entry) {
  std::string row = std::to_string(rank);
  for (const std::uint32_t s : snps_of<K>(entry)) {
    row += ',';
    row += std::to_string(s);
  }
  char score[40];
  std::snprintf(score, sizeof score, ",%.6f", entry.score);
  return row + score;
}

/// The full CSV section (header + rows), one string per line.
template <unsigned K>
std::vector<std::string> scan_csv_lines(const std::vector<ScoredOf<K>>& best) {
  std::vector<std::string> lines;
  lines.reserve(best.size() + 1);
  lines.push_back(scan_csv_header<K>());
  for (std::size_t i = 0; i < best.size(); ++i) {
    lines.push_back(scan_csv_row<K>(i + 1, best[i]));
  }
  return lines;
}

}  // namespace trigen::core
