#pragma once
/// \file topk.hpp
/// \brief Bounded best-K accumulator for detection results.
///
/// Each worker thread keeps its own TopK (no synchronization in the hot
/// loop, §IV-A) and the detector merges them at the end.  Ordering is
/// normalized to lower-is-better; ties break on combination rank so results
/// are deterministic under any thread count.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "trigen/combinatorics/combinations.hpp"

namespace trigen::core {

/// One scored SNP triplet.
struct ScoredTriplet {
  combinatorics::Triplet triplet{};
  double score = 0.0;  ///< normalized: lower is better

  friend bool operator<(const ScoredTriplet& a, const ScoredTriplet& b) {
    if (a.score != b.score) return a.score < b.score;
    return combinatorics::rank_triplet(a.triplet) <
           combinatorics::rank_triplet(b.triplet);
  }
};

/// Keeps the K best (lowest-score) triplets seen so far.
class TopK {
 public:
  explicit TopK(std::size_t k) : k_(k == 0 ? 1 : k) {}

  void push(const ScoredTriplet& s) {
    if (entries_.size() < k_) {
      entries_.push_back(s);
      std::push_heap(entries_.begin(), entries_.end());  // max-heap on worst
      return;
    }
    if (s < entries_.front()) {
      std::pop_heap(entries_.begin(), entries_.end());
      entries_.back() = s;
      std::push_heap(entries_.begin(), entries_.end());
    }
  }

  /// Merge another accumulator into this one.
  void merge(const TopK& other) {
    for (const auto& e : other.entries_) push(e);
  }

  /// Entries best-first.
  std::vector<ScoredTriplet> sorted() const {
    std::vector<ScoredTriplet> out = entries_;
    std::sort(out.begin(), out.end());
    return out;
  }

  std::size_t capacity() const { return k_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  std::size_t k_;
  std::vector<ScoredTriplet> entries_;  // max-heap: front() is the worst kept
};

}  // namespace trigen::core
