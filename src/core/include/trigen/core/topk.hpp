#pragma once
/// \file topk.hpp
/// \brief Bounded best-K accumulator for detection results (any order).
///
/// Each worker thread keeps its own accumulator (no synchronization in the
/// hot loop, §IV-A) and the detector merges them at the end.  Ordering is
/// normalized to lower-is-better; ties break on combination rank so results
/// are deterministic under any thread count.  The accumulator is generic
/// over the scored-combination type: `ScoredTriplet` for the 3-way scans,
/// `ScoredPair` for the 2-way scans — anything with a strict-weak `<` whose
/// tie-break is a total order.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "trigen/combinatorics/combinations.hpp"

namespace trigen::core {

/// One scored SNP triplet.
struct ScoredTriplet {
  combinatorics::Triplet triplet{};
  double score = 0.0;  ///< normalized: lower is better

  friend bool operator<(const ScoredTriplet& a, const ScoredTriplet& b) {
    if (a.score != b.score) return a.score < b.score;
    return combinatorics::rank_triplet(a.triplet) <
           combinatorics::rank_triplet(b.triplet);
  }
};

/// One scored SNP pair (the k=2 counterpart of ScoredTriplet).
struct ScoredPair {
  std::uint32_t x = 0, y = 0;
  double score = 0.0;  ///< normalized: lower is better

  friend bool operator<(const ScoredPair& a, const ScoredPair& b) {
    if (a.score != b.score) return a.score < b.score;
    return combinatorics::rank_pair({a.x, a.y}) <
           combinatorics::rank_pair({b.x, b.y});
  }
};

/// One scored order-K SNP combination (the generic counterpart of
/// ScoredTriplet / ScoredPair, used by the order-generic scan stack for
/// K >= 4).
template <unsigned K>
struct ScoredTuple {
  combinatorics::Combination<K> snps{};
  double score = 0.0;  ///< normalized: lower is better

  friend bool operator<(const ScoredTuple& a, const ScoredTuple& b) {
    if (a.score != b.score) return a.score < b.score;
    return combinatorics::rank_combination<K>(a.snps) <
           combinatorics::rank_combination<K>(b.snps);
  }
};

namespace topk_detail {
template <unsigned K>
struct ScoredOf_ {
  using type = ScoredTuple<K>;
};
template <>
struct ScoredOf_<2> {
  using type = ScoredPair;
};
template <>
struct ScoredOf_<3> {
  using type = ScoredTriplet;
};
}  // namespace topk_detail

/// The scored-combination type of interaction order K: ScoredPair for K=2
/// and ScoredTriplet for K=3 (their named members are part of the public
/// API), ScoredTuple<K> beyond.
template <unsigned K>
using ScoredOf = typename topk_detail::ScoredOf_<K>::type;

/// Builds a ScoredOf<K> from a combination and its score.
template <unsigned K>
ScoredOf<K> make_scored(const combinatorics::Combination<K>& c, double score) {
  if constexpr (K == 2) {
    return ScoredPair{c[0], c[1], score};
  } else if constexpr (K == 3) {
    return ScoredTriplet{combinatorics::Triplet{c[0], c[1], c[2]}, score};
  } else {
    return ScoredTuple<K>{c, score};
  }
}

/// The SNP indices of a ScoredOf<K> as a Combination<K>.
template <unsigned K>
combinatorics::Combination<K> snps_of(const ScoredOf<K>& s) {
  if constexpr (K == 2) {
    return {s.x, s.y};
  } else if constexpr (K == 3) {
    return {s.triplet.x, s.triplet.y, s.triplet.z};
  } else {
    return s.snps;
  }
}

/// Keeps the K best (lowest-ordered) combinations seen so far.
template <typename Scored>
class BasicTopK {
 public:
  explicit BasicTopK(std::size_t k) : k_(k == 0 ? 1 : k) {}

  void push(const Scored& s) {
    if (entries_.size() < k_) {
      entries_.push_back(s);
      std::push_heap(entries_.begin(), entries_.end());  // max-heap on worst
      return;
    }
    if (s < entries_.front()) {
      std::pop_heap(entries_.begin(), entries_.end());
      entries_.back() = s;
      std::push_heap(entries_.begin(), entries_.end());
    }
  }

  /// Merge another accumulator into this one.
  void merge(const BasicTopK& other) {
    for (const auto& e : other.entries_) push(e);
  }

  /// Entries best-first.
  std::vector<Scored> sorted() const {
    std::vector<Scored> out = entries_;
    std::sort(out.begin(), out.end());
    return out;
  }

  std::size_t capacity() const { return k_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  std::size_t k_;
  std::vector<Scored> entries_;  // max-heap: front() is the worst kept
};

using TopK = BasicTopK<ScoredTriplet>;
using PairTopK = BasicTopK<ScoredPair>;

}  // namespace trigen::core
