#pragma once
/// \file scan_driver.hpp
/// \brief Shared fork/join scan driver for every exhaustive detector path.
///
/// All four CPU versions, the pairwise detector and any future sharded
/// engine share the same execution skeleton: a dynamic chunk scheduler over
/// contiguous work units, one accumulator per worker thread (no hot-loop
/// synchronization, §IV-A), an optional throttled progress callback, and a
/// deterministic reduction at the end.  `parallel_scan` owns that skeleton;
/// `scan_topk` specializes it for triplet top-k accumulation with the
/// rank-tie-broken merge that makes results identical under any thread
/// count, chunk size or rank-range partition.

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "trigen/combinatorics/scheduler.hpp"
#include "trigen/common/numa.hpp"
#include "trigen/core/topk.hpp"

namespace trigen::core {

/// Progress callback: `done` out of `total` progress units.  Invocations
/// are serialized and monotone in `done`; the callback runs on worker
/// threads, so it must not touch the scan's inputs.
using ProgressFn =
    std::function<void(std::uint64_t done, std::uint64_t total)>;

/// Resolved scheduling parameters for one scan.
struct ScanConfig {
  unsigned threads = 1;          ///< resolved worker count (>= 1)
  std::uint64_t chunk_size = 0;  ///< scheduler chunk in work units; 0 = auto
  ProgressFn progress{};         ///< optional progress callback
  std::uint64_t progress_total = 0;  ///< reported as `total` to `progress`
};

/// Runs `body(thread_id, unit_range, accumulator)` over dynamically
/// scheduled chunks of [0, total_units) on `cfg.threads` workers, thread
/// `t` accumulating into `per_thread[t]`.  `body` returns the number of
/// progress units the chunk completed (work units and progress units may
/// differ: the blocked engine schedules block triples but reports
/// triplets).  `per_thread.size()` must be >= `cfg.threads`.
template <typename Accumulator, typename Body>
void parallel_scan(std::uint64_t total_units, const ScanConfig& cfg,
                   std::vector<Accumulator>& per_thread, Body&& body) {
  const std::uint64_t chunk =
      cfg.chunk_size != 0
          ? cfg.chunk_size
          : combinatorics::default_chunk_size(total_units, cfg.threads);
  combinatorics::ChunkScheduler sched(total_units, chunk);
  std::mutex progress_mu;
  std::uint64_t done = 0;  // guarded by progress_mu; monotone by construction
  combinatorics::run_workers(
      sched, cfg.threads,
      [&](unsigned tid, combinatorics::ChunkScheduler& s) {
        // Spread workers round-robin across NUMA nodes (no-op on one-node
        // hosts) before any allocation: the detectors construct per-thread
        // scratch lazily on this thread, so its first touch — and with it
        // the page placement — happens on the node the worker now runs on.
        bind_thread_round_robin(numa_topology(), tid);
        Accumulator& acc = per_thread[tid];
        for (auto r = s.next(); !r.empty(); r = s.next()) {
          const std::uint64_t weight = body(tid, r, acc);
          if (cfg.progress) {
            std::lock_guard<std::mutex> lock(progress_mu);
            done += weight;
            cfg.progress(done, cfg.progress_total);
          }
        }
      });
}

/// Top-k specialization: per-thread `BasicTopK<Scored>` accumulators plus
/// the final rank-ordered merge.  Because the scored types break score ties
/// by combination rank, the merged k-best set is unique — the result is
/// deterministic for any thread count and work split.  `Scored` is
/// `ScoredTriplet` for the 3-way scans and `ScoredPair` for the 2-way
/// scans; `scan_topk` below fixes the former for the existing callers.
template <typename Scored, typename Body>
BasicTopK<Scored> scan_best(std::uint64_t total_units, const ScanConfig& cfg,
                            std::size_t top_k, Body&& body) {
  std::vector<BasicTopK<Scored>> per_thread(cfg.threads,
                                            BasicTopK<Scored>(top_k));
  parallel_scan(total_units, cfg, per_thread,
                static_cast<Body&&>(body));
  BasicTopK<Scored> merged(top_k);
  for (const BasicTopK<Scored>& t : per_thread) merged.merge(t);
  return merged;
}

/// Triplet shorthand used by the 3-way detector paths.
template <typename Body>
TopK scan_topk(std::uint64_t total_units, const ScanConfig& cfg,
               std::size_t top_k, Body&& body) {
  return scan_best<ScoredTriplet>(total_units, cfg, top_k,
                                  static_cast<Body&&>(body));
}

}  // namespace trigen::core
