#pragma once
/// \file kernels.hpp
/// \brief Contingency-table construction kernels (paper §IV-A, Algorithm 1).
///
/// The computational core of epistasis detection is filling the 27x2
/// frequency table for a SNP triplet.  Two kernel shapes exist:
///
///  * the **V1 kernel** consumes the naive `BitPlanesV1` layout: three
///    genotype planes per SNP plus the phenotype plane — 27 genotype
///    combinations x 2 classes x (4 ANDs + 1 POPCNT) per word;
///  * the **triple-block kernel** consumes one phenotype class of the
///    `PhenoSplitPlanes` layout over a word range: genotype 2 is inferred
///    by NOR, there is no phenotype AND, and the word range allows the
///    blocked engine (V3/V4/V5) to tile the sample dimension.
///
/// The triple-block kernel has one implementation per vectorization
/// strategy (scalar, AVX2, AVX-512 + extracts, AVX-512 + VPOPCNTDQ),
/// matching the per-ISA strategies of the paper's V4; the scalar
/// implementation doubles as the V2/V3 kernel.
///
/// The **V5 pair-plane-cached** kernels split the work in two phases so
/// the x∩y intersections are computed once per (x, y) instead of once per
/// (x, y, z): `pair_plane_build` materializes the nine genotype
/// intersection planes xg∩yg for one sample-word chunk (plus their
/// popcounts), and `triple_block_cached` combines them with a z operand.
/// Because the three z genotype planes partition every sample bit,
/// |xy∩z2| = |xy| - |xy∩z0| - |xy∩z1|: the cached kernel needs only 18
/// ANDs + 18 POPCNTs per word against V4's 42 ANDs + 27 POPCNTs, never
/// materializes the z NOR plane, and streams two plane operands instead
/// of six.  Both phases exist per ISA and are exact, so V5 is
/// bit-identical to V2-V4.
///
/// NOR padding: plane tail bits are zero, so the inferred genotype-2 plane
/// has ones there and the kernels over-count cell (2,2,2) by exactly the
/// class's padding-bit count.  Callers subtract `PhenoSplitPlanes::pad_bits`
/// once per class after the last word block (see blocked_engine.cpp) —
/// keeping the hot loop mask-free.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "trigen/combinatorics/combinations.hpp"
#include "trigen/dataset/bitplanes.hpp"
#include "trigen/scoring/contingency.hpp"

namespace trigen::core {

using dataset::Word;

/// Accumulates the 27 genotype-combination counts of one phenotype class
/// for the triplet whose class planes are (x0,x1), (y0,y1), (z0,z1), over
/// words [w_begin, w_end).  Adds into `ft27` (not zeroed here).
using TripleBlockKernel = void (*)(const Word* x0, const Word* x1,
                                   const Word* y0, const Word* y1,
                                   const Word* z0, const Word* z1,
                                   std::size_t w_begin, std::size_t w_end,
                                   std::uint32_t* ft27);

/// V5 phase 1: materializes the nine x∩y genotype intersection planes of
/// one (x, y) SNP pair for words [w_begin, w_end).  Plane p = gx*3 + gy is
/// written to `xy[p*stride + (w - w_begin)]`; each plane's popcount over
/// the chunk is *added* into `xy_pop9[p]` (callers zero it per chunk).
/// `stride` must be >= w_end - w_begin; planes start 64-byte aligned when
/// `xy` is 64-byte aligned and `stride` is a multiple of 16 words.
using PairPlaneBuildKernel = void (*)(const Word* x0, const Word* x1,
                                      const Word* y0, const Word* y1,
                                      std::size_t w_begin, std::size_t w_end,
                                      Word* xy, std::size_t stride,
                                      std::uint32_t* xy_pop9);

/// V5 phase 2: accumulates the 27 counts of one triplet from the cached
/// planes of its (x, y) pair plus the z operand planes.  The cache is read
/// at relative offsets [0, w_end - w_begin); z0/z1 are indexed absolutely
/// at [w_begin, w_end).  Cells (gx, gy, 2) are derived from the chunk
/// popcounts: |xy ∩ z2| = xy_pop9[p] - |xy ∩ z0| - |xy ∩ z1| (the z
/// genotype planes partition every bit, padding included, so the phantom
/// (2,2,2) padding observations behave exactly as in the direct kernels).
/// Adds into `ft27` (not zeroed here).
using TripleBlockCachedKernel = void (*)(const Word* xy, std::size_t stride,
                                         const std::uint32_t* xy_pop9,
                                         const Word* z0, const Word* z1,
                                         std::size_t w_begin,
                                         std::size_t w_end,
                                         std::uint32_t* ft27);

/// Counts-only sibling of the build phase: accumulates the nine x∩y
/// intersection-plane popcounts over [w_begin, w_end) into `xy_pop9`
/// without materializing the planes.  The blocked *pair* engine consumes
/// only the popcounts (they are the 9-cell pair table of the chunk), so it
/// uses this variant and retires no stores at all.
using PairPlaneCountKernel = void (*)(const Word* x0, const Word* x1,
                                      const Word* y0, const Word* y1,
                                      std::size_t w_begin, std::size_t w_end,
                                      std::uint32_t* xy_pop9);

/// The V5 phases for one vectorization strategy.
struct CachedKernelSet {
  PairPlaneBuildKernel build = nullptr;
  TripleBlockCachedKernel cached = nullptr;
  PairPlaneCountKernel count = nullptr;
};

// ---------------------------------------------------------------------------
// Order-generic kernels (the K >= 4 rungs of the prefix-plane ladder)
// ---------------------------------------------------------------------------
//
// The V5 identity generalizes to any order: rung j of the ladder holds the
// 3^j genotype intersection planes of a j-SNP prefix.  Extending the
// prefix by one SNP ANDs each cached plane P with the SNP's two explicit
// genotype planes and derives the third child from the partition identity
// (the SNP's three genotype planes partition every sample bit, padding
// included, so P∩s2 = P ^ (P∩s0) ^ (P∩s1)).  The final SNP never
// materializes planes at all: |P∩z2| = |P| - |P∩z0| - |P∩z1|, exactly the
// triple-cached kernel with 3^(K-2) prefixes instead of 9.  The k=2/k=3
// engines keep their dedicated kernels above; these runtime-count variants
// serve K >= 4 (scalar + AVX2; the AVX-512 strategies dispatch to the
// widest compiled generic path).

/// Ladder extension: for each of `count` cached prefix planes
/// (`prefix[t*stride + rel]`, rel in [0, w_end - w_begin)), writes the
/// three child planes P∩s0, P∩s1, P∩s2 to `out[(t*3 + g)*out_stride +
/// rel]`.  s0/s1 are indexed absolutely at [w_begin, w_end).  When
/// `out_pops` is non-null the child plane popcounts over the chunk are
/// *added* into `out_pops[t*3 + g]` (callers zero per chunk) — needed only
/// when the output rung is the final cached rung K-1.
using PrefixExtendKernel = void (*)(const Word* prefix, std::size_t count,
                                    std::size_t stride, const Word* s0,
                                    const Word* s1, std::size_t w_begin,
                                    std::size_t w_end, Word* out,
                                    std::size_t out_stride,
                                    std::uint32_t* out_pops);

/// Ladder final rung: accumulates the 3^K counts of one combination from
/// the `count` = 3^(K-1) cached prefix planes plus the last SNP's operand
/// planes; cell layout ft[t*3 + g] matches cell = sum g_j * 3^(K-1-j).
/// Semantics otherwise identical to TripleBlockCachedKernel (which is this
/// kernel with count = 9).  Adds into `ft` (not zeroed here).
using PrefixFinalKernel = void (*)(const Word* prefix, std::size_t count,
                                   std::size_t stride,
                                   const std::uint32_t* prefix_pops,
                                   const Word* z0, const Word* z1,
                                   std::size_t w_begin, std::size_t w_end,
                                   std::uint32_t* ft);

/// Direct (uncached) order-k contingency kernel, the V4 analogue for
/// K >= 4: `g0[i]`/`g1[i]` are SNP i's two explicit genotype planes
/// (genotype 2 inferred by NOR), and the 3^k cell counts are accumulated
/// into `ft` with cell = sum g_j * 3^(k-1-j).  Requires 2 <= k <=
/// combinatorics::kMaxOrder.  Adds into `ft` (not zeroed here).
using TupleBlockKernel = void (*)(const Word* const* g0, const Word* const* g1,
                                  unsigned k, std::size_t w_begin,
                                  std::size_t w_end, std::uint32_t* ft);

/// The order-generic kernel family for one vectorization strategy.
struct GenericKernelSet {
  PrefixExtendKernel extend = nullptr;
  PrefixFinalKernel finalize = nullptr;
  TupleBlockKernel direct = nullptr;
};

// ---------------------------------------------------------------------------
// Batched multi-phenotype kernels (P partitions per cached-prefix pass)
// ---------------------------------------------------------------------------
//
// Everything upstream of the final case/control split — streaming genotype
// planes, building the prefix-plane ladder — is phenotype-independent.  The
// batched kernels exploit that: the engine builds the ladder over *combined*
// planes (all samples, no class split) once, and the final popcount pass
// scores P phenotype partitions at a time against a word-interleaved label
// matrix `labels[w * lstride + p]` (lane p of row w is word w of partition
// p's case plane; rows are padded to a whole vector register).  Per cell
// word u = prefix ∩ z the vector kernels broadcast u and AND it against 8
// or 16 label lanes per instruction, so the marginal cost of one extra
// phenotype is ~1/8 (AVX2) or ~1/16 (AVX-512) of a dedicated pass.  Label
// planes have zero tail bits, so case counts need no padding correction;
// control rows are derived as totals - cases with the usual all-genotype-2
// padding subtraction on the totals side.

/// Chunk popcounts |prefix_t ∩ L_p| for every cached plane t and label lane
/// p: `label_pops[t * lstride + p]` is *added to* (callers zero per chunk).
/// The prefix planes are read at relative offsets [0, w_end - w_begin);
/// labels are indexed absolutely as `labels[w * lstride + p]`.  These are
/// the batch analogue of the ladder's rung popcounts: computed once per
/// (prefix, chunk) and amortized over every last-axis SNP, they resolve the
/// per-partition genotype-2 case cells via the partition identity.
using BatchLabelPopsKernel = void (*)(const Word* prefix, std::size_t count,
                                      std::size_t stride, const Word* labels,
                                      std::size_t num_labels,
                                      std::size_t lstride, std::size_t w_begin,
                                      std::size_t w_end,
                                      std::uint32_t* label_pops);

/// Batched finalize: accumulates, from `count` cached prefix planes plus
/// the last SNP's operand planes, the totals table AND one case table per
/// label lane.  `ft` holds 1 + num_labels consecutive tables of `ft_stride`
/// cells each (cell = t*3 + g, as in PrefixFinalKernel): slot 0 is the
/// totals table (all samples; genotype-2 cells from `prefix_pops`), slot
/// 1 + p the case table of partition p (genotype-2 cells from
/// `label_pops[t * lstride + p]`).  Adds into `ft` (not zeroed here).
using BatchFinalKernel = void (*)(const Word* prefix, std::size_t count,
                                  std::size_t stride,
                                  const std::uint32_t* prefix_pops,
                                  const std::uint32_t* label_pops,
                                  const Word* z0, const Word* z1,
                                  const Word* labels, std::size_t num_labels,
                                  std::size_t lstride, std::size_t w_begin,
                                  std::size_t w_end, std::uint32_t* ft,
                                  std::size_t ft_stride);

/// The batched multi-phenotype kernel pair for one vectorization strategy.
struct BatchKernelSet {
  BatchLabelPopsKernel label_pops = nullptr;
  BatchFinalKernel finalize = nullptr;
};

/// Vectorization strategy of the triple-block kernel.
enum class KernelIsa {
  kScalar,         ///< 32-bit words, builtin POPCNT (V2/V3 and AVX-less V4)
  kAvx2,           ///< 256-bit AND/NOR, 4x extract + scalar POPCNT
  kAvx2HarleySeal, ///< 256-bit AND/NOR, vpshufb nibble-LUT popcount
                   ///< (ablation: the SWAR alternative to extract+POPCNT
                   ///< on AVX CPUs without vector POPCNT)
  kAvx512Extract,  ///< 512-bit AND/NOR, extracti64x4 + extract + scalar POPCNT
  kAvx512Vpopcnt,  ///< 512-bit AND/NOR, VPOPCNTDQ + per-cell reduce
};

/// All strategies compiled into this binary.
const std::vector<KernelIsa>& all_kernel_isas();

/// True when the host CPU can execute `isa`.
bool kernel_available(KernelIsa isa);

/// Widest strategy available on the host.
KernelIsa best_kernel_isa();

std::string kernel_isa_name(KernelIsa isa);

/// Inverse of kernel_isa_name ("scalar", "avx2", "avx2-harley-seal",
/// "avx512-extract", "avx512-vpopcnt"); nullopt for unknown names.  Only
/// names of strategies compiled into this binary resolve — callers decide
/// whether an unavailable-on-this-host strategy is an error (the CLI's
/// --isa / TRIGEN_ISA validation) or a fallback.
std::optional<KernelIsa> parse_kernel_isa(const std::string& name);

/// Fetch the kernel for `isa`; throws std::runtime_error if unavailable.
TripleBlockKernel get_kernel(KernelIsa isa);

/// Fetch the V5 two-phase kernel set for `isa`; throws std::runtime_error
/// if unavailable.  Availability is identical to get_kernel's: every ISA
/// that carries a triple-block kernel carries the cached pair as well.
CachedKernelSet get_cached_kernels(KernelIsa isa);

/// Fetch the order-generic kernel family for `isa`; throws
/// std::runtime_error if unavailable.  The scalar strategy maps to the
/// scalar generics; every vector strategy maps to the widest compiled
/// generic path (AVX2 when built, scalar otherwise) — any host that can
/// execute an AVX-512 strategy can execute AVX2, and the generics are
/// exact on every path.
GenericKernelSet get_generic_kernels(KernelIsa isa);

/// Fetch the batched multi-phenotype kernels for `isa`; throws
/// std::runtime_error if unavailable.  The scalar strategy maps to the
/// scalar batch kernels; both AVX2 strategies share one LUT-based variant
/// (per-dword popcounts need the nibble LUT regardless of the triple
/// kernel's popcount strategy); the AVX-512 strategies keep dedicated
/// variants.  Every variant is exact, so batched scans are bit-identical
/// across the mapping.
BatchKernelSet get_batch_kernels(KernelIsa isa);

/// Words processed per kernel iteration (1, 8 or 16): callers sizing word
/// blocks should use multiples of this for full-vector main loops.
std::size_t kernel_vector_words(KernelIsa isa);

// ---------------------------------------------------------------------------
// Whole-triplet conveniences
// ---------------------------------------------------------------------------

/// V1: naive evaluation from the Fig.-1 layout (AND with the phenotype /
/// negated phenotype planes, all three genotype planes explicit).
scoring::ContingencyTable contingency_v1(const dataset::BitPlanesV1& p,
                                         std::size_t x, std::size_t y,
                                         std::size_t z);

/// V2+: evaluation from the phenotype-split layout using the triple-block
/// kernel for `isa` over the full sample range, with the (2,2,2) padding
/// correction applied.
scoring::ContingencyTable contingency_split(const dataset::PhenoSplitPlanes& p,
                                            std::size_t x, std::size_t y,
                                            std::size_t z,
                                            KernelIsa isa = KernelIsa::kScalar);

}  // namespace trigen::core
