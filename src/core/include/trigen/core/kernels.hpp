#pragma once
/// \file kernels.hpp
/// \brief Contingency-table construction kernels (paper §IV-A, Algorithm 1).
///
/// The computational core of epistasis detection is filling the 27x2
/// frequency table for a SNP triplet.  Two kernel shapes exist:
///
///  * the **V1 kernel** consumes the naive `BitPlanesV1` layout: three
///    genotype planes per SNP plus the phenotype plane — 27 genotype
///    combinations x 2 classes x (4 ANDs + 1 POPCNT) per word;
///  * the **triple-block kernel** consumes one phenotype class of the
///    `PhenoSplitPlanes` layout over a word range: genotype 2 is inferred
///    by NOR, there is no phenotype AND, and the word range allows the
///    blocked engine (V3/V4) to tile the sample dimension.
///
/// The triple-block kernel has one implementation per vectorization
/// strategy (scalar, AVX2, AVX-512 + extracts, AVX-512 + VPOPCNTDQ),
/// matching the per-ISA strategies of the paper's V4; the scalar
/// implementation doubles as the V2/V3 kernel.
///
/// NOR padding: plane tail bits are zero, so the inferred genotype-2 plane
/// has ones there and the kernels over-count cell (2,2,2) by exactly the
/// class's padding-bit count.  Callers subtract `PhenoSplitPlanes::pad_bits`
/// once per class after the last word block (see blocked_engine.cpp) —
/// keeping the hot loop mask-free.

#include <cstdint>
#include <string>
#include <vector>

#include "trigen/dataset/bitplanes.hpp"
#include "trigen/scoring/contingency.hpp"

namespace trigen::core {

using dataset::Word;

/// Accumulates the 27 genotype-combination counts of one phenotype class
/// for the triplet whose class planes are (x0,x1), (y0,y1), (z0,z1), over
/// words [w_begin, w_end).  Adds into `ft27` (not zeroed here).
using TripleBlockKernel = void (*)(const Word* x0, const Word* x1,
                                   const Word* y0, const Word* y1,
                                   const Word* z0, const Word* z1,
                                   std::size_t w_begin, std::size_t w_end,
                                   std::uint32_t* ft27);

/// Vectorization strategy of the triple-block kernel.
enum class KernelIsa {
  kScalar,         ///< 32-bit words, builtin POPCNT (V2/V3 and AVX-less V4)
  kAvx2,           ///< 256-bit AND/NOR, 4x extract + scalar POPCNT
  kAvx2HarleySeal, ///< 256-bit AND/NOR, vpshufb nibble-LUT popcount
                   ///< (ablation: the SWAR alternative to extract+POPCNT
                   ///< on AVX CPUs without vector POPCNT)
  kAvx512Extract,  ///< 512-bit AND/NOR, extracti64x4 + extract + scalar POPCNT
  kAvx512Vpopcnt,  ///< 512-bit AND/NOR, VPOPCNTDQ + per-cell reduce
};

/// All strategies compiled into this binary.
const std::vector<KernelIsa>& all_kernel_isas();

/// True when the host CPU can execute `isa`.
bool kernel_available(KernelIsa isa);

/// Widest strategy available on the host.
KernelIsa best_kernel_isa();

std::string kernel_isa_name(KernelIsa isa);

/// Fetch the kernel for `isa`; throws std::runtime_error if unavailable.
TripleBlockKernel get_kernel(KernelIsa isa);

/// Words processed per kernel iteration (1, 8 or 16): callers sizing word
/// blocks should use multiples of this for full-vector main loops.
std::size_t kernel_vector_words(KernelIsa isa);

// ---------------------------------------------------------------------------
// Whole-triplet conveniences
// ---------------------------------------------------------------------------

/// V1: naive evaluation from the Fig.-1 layout (AND with the phenotype /
/// negated phenotype planes, all three genotype planes explicit).
scoring::ContingencyTable contingency_v1(const dataset::BitPlanesV1& p,
                                         std::size_t x, std::size_t y,
                                         std::size_t z);

/// V2+: evaluation from the phenotype-split layout using the triple-block
/// kernel for `isa` over the full sample range, with the (2,2,2) padding
/// correction applied.
scoring::ContingencyTable contingency_split(const dataset::PhenoSplitPlanes& p,
                                            std::size_t x, std::size_t y,
                                            std::size_t z,
                                            KernelIsa isa = KernelIsa::kScalar);

}  // namespace trigen::core
