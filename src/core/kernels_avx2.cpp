/// \file kernels_avx2.cpp
/// \brief AVX2 triple-block kernels (paper §IV-A, the "AVX" V4 strategy).
///
/// This translation unit is compiled with -mavx2 regardless of the global
/// architecture flags; nothing here may run unless the runtime dispatcher
/// has confirmed AVX2 support via cpu_features().

#include "kernels_detail.hpp"

#include <bit>

#if defined(TRIGEN_KERNEL_AVX2)
#include <immintrin.h>

namespace trigen::core::detail {
namespace {

/// Sum of set bits in a 256-bit register via the paper's AVX strategy:
/// four 64-bit extracts, each fed to the scalar POPCNT unit.
inline std::uint32_t popcnt256_extract(__m256i v) {
  return static_cast<std::uint32_t>(
      std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(v, 0))) +
      std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(v, 1))) +
      std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(v, 2))) +
      std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(v, 3))));
}

}  // namespace

void triple_block_avx2(const Word* x0, const Word* x1, const Word* y0,
                       const Word* y1, const Word* z0, const Word* z1,
                       std::size_t w_begin, std::size_t w_end,
                       std::uint32_t* ft27) {
  const __m256i ones = _mm256_set1_epi32(-1);
  std::size_t w = w_begin;
  for (; w + 8 <= w_end; w += 8) {
    // No vector NOR on AVX CPUs: OR followed by XOR with all-ones (§IV-A).
    __m256i xg[3], yg[3], zg[3];
    xg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x0 + w));
    xg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x1 + w));
    xg[2] = _mm256_xor_si256(_mm256_or_si256(xg[0], xg[1]), ones);
    yg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y0 + w));
    yg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y1 + w));
    yg[2] = _mm256_xor_si256(_mm256_or_si256(yg[0], yg[1]), ones);
    zg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z0 + w));
    zg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z1 + w));
    zg[2] = _mm256_xor_si256(_mm256_or_si256(zg[0], zg[1]), ones);

    int cell = 0;
    for (int gx = 0; gx < 3; ++gx) {
      for (int gy = 0; gy < 3; ++gy) {
        const __m256i xy = _mm256_and_si256(xg[gx], yg[gy]);
        for (int gz = 0; gz < 3; ++gz) {
          ft27[cell++] += popcnt256_extract(_mm256_and_si256(xy, zg[gz]));
        }
      }
    }
  }
  triple_block_scalar(x0, x1, y0, y1, z0, z1, w, w_end, ft27);
}

void triple_block_avx2_harley_seal(const Word* x0, const Word* x1,
                                   const Word* y0, const Word* y1,
                                   const Word* z0, const Word* z1,
                                   std::size_t w_begin, std::size_t w_end,
                                   std::uint32_t* ft27) {
  // Ablation strategy: SWAR nibble-LUT popcount (Mula's algorithm) instead
  // of extract + scalar POPCNT.  Per-cell byte counts are horizontally
  // summed with SAD against zero into 64-bit lanes, which cannot overflow
  // for any realistic plane length; one final extract chain per cell.
  const __m256i ones = _mm256_set1_epi32(-1);
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc[27];
  for (auto& a : acc) a = zero;

  std::size_t w = w_begin;
  for (; w + 8 <= w_end; w += 8) {
    __m256i xg[3], yg[3], zg[3];
    xg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x0 + w));
    xg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x1 + w));
    xg[2] = _mm256_xor_si256(_mm256_or_si256(xg[0], xg[1]), ones);
    yg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y0 + w));
    yg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y1 + w));
    yg[2] = _mm256_xor_si256(_mm256_or_si256(yg[0], yg[1]), ones);
    zg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z0 + w));
    zg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z1 + w));
    zg[2] = _mm256_xor_si256(_mm256_or_si256(zg[0], zg[1]), ones);

    int cell = 0;
    for (int gx = 0; gx < 3; ++gx) {
      for (int gy = 0; gy < 3; ++gy) {
        const __m256i xy = _mm256_and_si256(xg[gx], yg[gy]);
        for (int gz = 0; gz < 3; ++gz) {
          const __m256i v = _mm256_and_si256(xy, zg[gz]);
          const __m256i lo = _mm256_and_si256(v, low_mask);
          const __m256i hi =
              _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
          const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                              _mm256_shuffle_epi8(lut, hi));
          acc[cell] = _mm256_add_epi64(acc[cell], _mm256_sad_epu8(cnt, zero));
          ++cell;
        }
      }
    }
  }
  for (int cell = 0; cell < 27; ++cell) {
    ft27[cell] += static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(_mm256_extract_epi64(acc[cell], 0)) +
        static_cast<std::uint64_t>(_mm256_extract_epi64(acc[cell], 1)) +
        static_cast<std::uint64_t>(_mm256_extract_epi64(acc[cell], 2)) +
        static_cast<std::uint64_t>(_mm256_extract_epi64(acc[cell], 3)));
  }
  triple_block_scalar(x0, x1, y0, y1, z0, z1, w, w_end, ft27);
}

}  // namespace trigen::core::detail

#endif  // TRIGEN_KERNEL_AVX2
