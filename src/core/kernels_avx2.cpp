/// \file kernels_avx2.cpp
/// \brief AVX2 triple-block kernels (paper §IV-A, the "AVX" V4 strategy).
///
/// This translation unit is compiled with -mavx2 regardless of the global
/// architecture flags; nothing here may run unless the runtime dispatcher
/// has confirmed AVX2 support via cpu_features().

#include "kernels_detail.hpp"

#include <bit>

#if defined(TRIGEN_KERNEL_AVX2)
#include <immintrin.h>

namespace trigen::core::detail {
namespace {

/// Sum of set bits in a 256-bit register via the paper's AVX strategy:
/// four 64-bit extracts, each fed to the scalar POPCNT unit.
inline std::uint32_t popcnt256_extract(__m256i v) {
  return static_cast<std::uint32_t>(
      std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(v, 0))) +
      std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(v, 1))) +
      std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(v, 2))) +
      std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(v, 3))));
}

/// Per-byte set-bit counts of `v` via the Harley-Seal nibble LUT (Mula's
/// algorithm): the SWAR alternative to extract + scalar POPCNT.
inline __m256i hs_popcnt_bytes(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

/// Folds the per-byte counts of `v` into `acc`'s four 64-bit lanes (SAD
/// against zero cannot overflow for any realistic plane length).
inline __m256i hs_accumulate(__m256i acc, __m256i v) {
  return _mm256_add_epi64(
      acc, _mm256_sad_epu8(hs_popcnt_bytes(v), _mm256_setzero_si256()));
}

/// Horizontal sum of the four 64-bit lanes of a SAD accumulator.
inline std::uint32_t hsum_sad256(__m256i acc) {
  return static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 0)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 1)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 2)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 3)));
}

}  // namespace

void triple_block_avx2(const Word* TRIGEN_RESTRICT x0,
                       const Word* TRIGEN_RESTRICT x1,
                       const Word* TRIGEN_RESTRICT y0,
                       const Word* TRIGEN_RESTRICT y1,
                       const Word* TRIGEN_RESTRICT z0,
                       const Word* TRIGEN_RESTRICT z1,
                       std::size_t w_begin, std::size_t w_end,
                       std::uint32_t* TRIGEN_RESTRICT ft27) {
  const __m256i ones = _mm256_set1_epi32(-1);
  std::size_t w = w_begin;
  for (; w + 8 <= w_end; w += 8) {
    // No vector NOR on AVX CPUs: OR followed by XOR with all-ones (§IV-A).
    __m256i xg[3], yg[3], zg[3];
    xg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x0 + w));
    xg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x1 + w));
    xg[2] = _mm256_xor_si256(_mm256_or_si256(xg[0], xg[1]), ones);
    yg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y0 + w));
    yg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y1 + w));
    yg[2] = _mm256_xor_si256(_mm256_or_si256(yg[0], yg[1]), ones);
    zg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z0 + w));
    zg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z1 + w));
    zg[2] = _mm256_xor_si256(_mm256_or_si256(zg[0], zg[1]), ones);

    int cell = 0;
    for (int gx = 0; gx < 3; ++gx) {
      for (int gy = 0; gy < 3; ++gy) {
        const __m256i xy = _mm256_and_si256(xg[gx], yg[gy]);
        for (int gz = 0; gz < 3; ++gz) {
          ft27[cell++] += popcnt256_extract(_mm256_and_si256(xy, zg[gz]));
        }
      }
    }
  }
  triple_block_scalar(x0, x1, y0, y1, z0, z1, w, w_end, ft27);
}

void triple_block_avx2_harley_seal(const Word* TRIGEN_RESTRICT x0,
                                   const Word* TRIGEN_RESTRICT x1,
                                   const Word* TRIGEN_RESTRICT y0,
                                   const Word* TRIGEN_RESTRICT y1,
                                   const Word* TRIGEN_RESTRICT z0,
                                   const Word* TRIGEN_RESTRICT z1,
                                   std::size_t w_begin, std::size_t w_end,
                                   std::uint32_t* TRIGEN_RESTRICT ft27) {
  // Ablation strategy: nibble-LUT popcount bytes folded with SAD into
  // 64-bit lanes per cell; one final extract chain per cell.
  const __m256i ones = _mm256_set1_epi32(-1);
  __m256i acc[27];
  for (auto& a : acc) a = _mm256_setzero_si256();

  std::size_t w = w_begin;
  for (; w + 8 <= w_end; w += 8) {
    __m256i xg[3], yg[3], zg[3];
    xg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x0 + w));
    xg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x1 + w));
    xg[2] = _mm256_xor_si256(_mm256_or_si256(xg[0], xg[1]), ones);
    yg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y0 + w));
    yg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y1 + w));
    yg[2] = _mm256_xor_si256(_mm256_or_si256(yg[0], yg[1]), ones);
    zg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z0 + w));
    zg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z1 + w));
    zg[2] = _mm256_xor_si256(_mm256_or_si256(zg[0], zg[1]), ones);

    int cell = 0;
    for (int gx = 0; gx < 3; ++gx) {
      for (int gy = 0; gy < 3; ++gy) {
        const __m256i xy = _mm256_and_si256(xg[gx], yg[gy]);
        for (int gz = 0; gz < 3; ++gz) {
          acc[cell] = hs_accumulate(acc[cell], _mm256_and_si256(xy, zg[gz]));
          ++cell;
        }
      }
    }
  }
  for (int cell = 0; cell < 27; ++cell) {
    ft27[cell] += hsum_sad256(acc[cell]);
  }
  triple_block_scalar(x0, x1, y0, y1, z0, z1, w, w_end, ft27);
}

void pair_plane_build_avx2(const Word* TRIGEN_RESTRICT x0,
                           const Word* TRIGEN_RESTRICT x1,
                           const Word* TRIGEN_RESTRICT y0,
                           const Word* TRIGEN_RESTRICT y1,
                           std::size_t w_begin, std::size_t w_end,
                           Word* TRIGEN_RESTRICT xy, std::size_t stride,
                           std::uint32_t* TRIGEN_RESTRICT xy_pop9) {
  const __m256i ones = _mm256_set1_epi32(-1);
  std::size_t w = w_begin;
  for (; w + 8 <= w_end; w += 8) {
    __m256i xg[3], yg[3];
    xg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x0 + w));
    xg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x1 + w));
    xg[2] = _mm256_xor_si256(_mm256_or_si256(xg[0], xg[1]), ones);
    yg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y0 + w));
    yg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y1 + w));
    yg[2] = _mm256_xor_si256(_mm256_or_si256(yg[0], yg[1]), ones);
    const std::size_t rel = w - w_begin;
    for (int p = 0; p < 9; ++p) {
      const __m256i v = _mm256_and_si256(xg[p / 3], yg[p % 3]);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(
                              xy + static_cast<std::size_t>(p) * stride + rel),
                          v);
      xy_pop9[p] += popcnt256_extract(v);
    }
  }
  pair_plane_build_scalar(x0, x1, y0, y1, w, w_end, xy + (w - w_begin),
                          stride, xy_pop9);
}

void triple_block_cached_avx2(const Word* TRIGEN_RESTRICT xy,
                              std::size_t stride,
                              const std::uint32_t* TRIGEN_RESTRICT xy_pop9,
                              const Word* TRIGEN_RESTRICT z0,
                              const Word* TRIGEN_RESTRICT z1,
                              std::size_t w_begin, std::size_t w_end,
                              std::uint32_t* TRIGEN_RESTRICT ft27) {
  for (int p = 0; p < 9; ++p) {
    const Word* TRIGEN_RESTRICT xyp =
        xy + static_cast<std::size_t>(p) * stride;
    std::uint32_t c0 = 0;
    std::uint32_t c1 = 0;
    std::size_t w = w_begin;
    for (; w + 8 <= w_end; w += 8) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(xyp + (w - w_begin)));
      c0 += popcnt256_extract(_mm256_and_si256(
          v, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z0 + w))));
      c1 += popcnt256_extract(_mm256_and_si256(
          v, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z1 + w))));
    }
    for (; w < w_end; ++w) {
      const Word v = xyp[w - w_begin];
      c0 += static_cast<std::uint32_t>(std::popcount(v & z0[w]));
      c1 += static_cast<std::uint32_t>(std::popcount(v & z1[w]));
    }
    const int cell = (p / 3) * 9 + (p % 3) * 3;
    ft27[cell] += c0;
    ft27[cell + 1] += c1;
    ft27[cell + 2] += xy_pop9[p] - c0 - c1;
  }
}

void pair_plane_count_avx2(const Word* TRIGEN_RESTRICT x0,
                           const Word* TRIGEN_RESTRICT x1,
                           const Word* TRIGEN_RESTRICT y0,
                           const Word* TRIGEN_RESTRICT y1,
                           std::size_t w_begin, std::size_t w_end,
                           std::uint32_t* TRIGEN_RESTRICT xy_pop9) {
  const __m256i ones = _mm256_set1_epi32(-1);
  std::size_t w = w_begin;
  for (; w + 8 <= w_end; w += 8) {
    __m256i xg[3], yg[3];
    xg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x0 + w));
    xg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x1 + w));
    xg[2] = _mm256_xor_si256(_mm256_or_si256(xg[0], xg[1]), ones);
    yg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y0 + w));
    yg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y1 + w));
    yg[2] = _mm256_xor_si256(_mm256_or_si256(yg[0], yg[1]), ones);
    for (int p = 0; p < 9; ++p) {
      xy_pop9[p] += popcnt256_extract(_mm256_and_si256(xg[p / 3], yg[p % 3]));
    }
  }
  pair_plane_count_scalar(x0, x1, y0, y1, w, w_end, xy_pop9);
}

void pair_plane_build_avx2_harley_seal(
    const Word* TRIGEN_RESTRICT x0, const Word* TRIGEN_RESTRICT x1,
    const Word* TRIGEN_RESTRICT y0, const Word* TRIGEN_RESTRICT y1,
    std::size_t w_begin, std::size_t w_end, Word* TRIGEN_RESTRICT xy,
    std::size_t stride, std::uint32_t* TRIGEN_RESTRICT xy_pop9) {
  const __m256i ones = _mm256_set1_epi32(-1);
  __m256i acc[9];
  for (auto& a : acc) a = _mm256_setzero_si256();

  std::size_t w = w_begin;
  for (; w + 8 <= w_end; w += 8) {
    __m256i xg[3], yg[3];
    xg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x0 + w));
    xg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x1 + w));
    xg[2] = _mm256_xor_si256(_mm256_or_si256(xg[0], xg[1]), ones);
    yg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y0 + w));
    yg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y1 + w));
    yg[2] = _mm256_xor_si256(_mm256_or_si256(yg[0], yg[1]), ones);
    const std::size_t rel = w - w_begin;
    for (int p = 0; p < 9; ++p) {
      const __m256i v = _mm256_and_si256(xg[p / 3], yg[p % 3]);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(
                              xy + static_cast<std::size_t>(p) * stride + rel),
                          v);
      acc[p] = hs_accumulate(acc[p], v);
    }
  }
  for (int p = 0; p < 9; ++p) {
    xy_pop9[p] += hsum_sad256(acc[p]);
  }
  pair_plane_build_scalar(x0, x1, y0, y1, w, w_end, xy + (w - w_begin),
                          stride, xy_pop9);
}

void pair_plane_count_avx2_harley_seal(
    const Word* TRIGEN_RESTRICT x0, const Word* TRIGEN_RESTRICT x1,
    const Word* TRIGEN_RESTRICT y0, const Word* TRIGEN_RESTRICT y1,
    std::size_t w_begin, std::size_t w_end,
    std::uint32_t* TRIGEN_RESTRICT xy_pop9) {
  const __m256i ones = _mm256_set1_epi32(-1);
  __m256i acc[9];
  for (auto& a : acc) a = _mm256_setzero_si256();

  std::size_t w = w_begin;
  for (; w + 8 <= w_end; w += 8) {
    __m256i xg[3], yg[3];
    xg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x0 + w));
    xg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x1 + w));
    xg[2] = _mm256_xor_si256(_mm256_or_si256(xg[0], xg[1]), ones);
    yg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y0 + w));
    yg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y1 + w));
    yg[2] = _mm256_xor_si256(_mm256_or_si256(yg[0], yg[1]), ones);
    for (int p = 0; p < 9; ++p) {
      acc[p] = hs_accumulate(acc[p], _mm256_and_si256(xg[p / 3], yg[p % 3]));
    }
  }
  for (int p = 0; p < 9; ++p) {
    xy_pop9[p] += hsum_sad256(acc[p]);
  }
  pair_plane_count_scalar(x0, x1, y0, y1, w, w_end, xy_pop9);
}

void triple_block_cached_avx2_harley_seal(
    const Word* TRIGEN_RESTRICT xy, std::size_t stride,
    const std::uint32_t* TRIGEN_RESTRICT xy_pop9,
    const Word* TRIGEN_RESTRICT z0, const Word* TRIGEN_RESTRICT z1,
    std::size_t w_begin, std::size_t w_end,
    std::uint32_t* TRIGEN_RESTRICT ft27) {
  for (int p = 0; p < 9; ++p) {
    const Word* TRIGEN_RESTRICT xyp =
        xy + static_cast<std::size_t>(p) * stride;
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    std::size_t w = w_begin;
    for (; w + 8 <= w_end; w += 8) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(xyp + (w - w_begin)));
      acc0 = hs_accumulate(
          acc0, _mm256_and_si256(v, _mm256_loadu_si256(
                                        reinterpret_cast<const __m256i*>(
                                            z0 + w))));
      acc1 = hs_accumulate(
          acc1, _mm256_and_si256(v, _mm256_loadu_si256(
                                        reinterpret_cast<const __m256i*>(
                                            z1 + w))));
    }
    std::uint32_t c0 = hsum_sad256(acc0);
    std::uint32_t c1 = hsum_sad256(acc1);
    for (; w < w_end; ++w) {
      const Word v = xyp[w - w_begin];
      c0 += static_cast<std::uint32_t>(std::popcount(v & z0[w]));
      c1 += static_cast<std::uint32_t>(std::popcount(v & z1[w]));
    }
    const int cell = (p / 3) * 9 + (p % 3) * 3;
    ft27[cell] += c0;
    ft27[cell + 1] += c1;
    ft27[cell + 2] += xy_pop9[p] - c0 - c1;
  }
}

void prefix_extend_avx2(const Word* TRIGEN_RESTRICT prefix, std::size_t count,
                        std::size_t stride, const Word* TRIGEN_RESTRICT s0,
                        const Word* TRIGEN_RESTRICT s1, std::size_t w_begin,
                        std::size_t w_end, Word* TRIGEN_RESTRICT out,
                        std::size_t out_stride,
                        std::uint32_t* TRIGEN_RESTRICT out_pops) {
  const std::size_t n = w_end - w_begin;
  for (std::size_t t = 0; t < count; ++t) {
    const Word* TRIGEN_RESTRICT pt = prefix + t * stride;
    Word* TRIGEN_RESTRICT o0 = out + (t * 3 + 0) * out_stride;
    Word* TRIGEN_RESTRICT o1 = out + (t * 3 + 1) * out_stride;
    Word* TRIGEN_RESTRICT o2 = out + (t * 3 + 2) * out_stride;
    std::uint32_t c0 = 0, c1 = 0, c2 = 0;
    std::size_t r = 0;
    for (; r + 8 <= n; r += 8) {
      const __m256i p =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pt + r));
      const __m256i a = _mm256_and_si256(
          p, _mm256_loadu_si256(
                 reinterpret_cast<const __m256i*>(s0 + w_begin + r)));
      const __m256i b = _mm256_and_si256(
          p, _mm256_loadu_si256(
                 reinterpret_cast<const __m256i*>(s1 + w_begin + r)));
      const __m256i c = _mm256_xor_si256(_mm256_xor_si256(p, a), b);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(o0 + r), a);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(o1 + r), b);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(o2 + r), c);
      c0 += popcnt256_extract(a);
      c1 += popcnt256_extract(b);
      c2 += popcnt256_extract(c);
    }
    for (; r < n; ++r) {
      const Word p = pt[r];
      const Word a = p & s0[w_begin + r];
      const Word b = p & s1[w_begin + r];
      const Word c = p ^ a ^ b;
      o0[r] = a;
      o1[r] = b;
      o2[r] = c;
      c0 += static_cast<std::uint32_t>(std::popcount(a));
      c1 += static_cast<std::uint32_t>(std::popcount(b));
      c2 += static_cast<std::uint32_t>(std::popcount(c));
    }
    if (out_pops != nullptr) {
      out_pops[t * 3 + 0] += c0;
      out_pops[t * 3 + 1] += c1;
      out_pops[t * 3 + 2] += c2;
    }
  }
}

void prefix_final_avx2(const Word* TRIGEN_RESTRICT prefix, std::size_t count,
                       std::size_t stride,
                       const std::uint32_t* TRIGEN_RESTRICT prefix_pops,
                       const Word* TRIGEN_RESTRICT z0,
                       const Word* TRIGEN_RESTRICT z1, std::size_t w_begin,
                       std::size_t w_end, std::uint32_t* TRIGEN_RESTRICT ft) {
  const std::size_t n = w_end - w_begin;
  for (std::size_t t = 0; t < count; ++t) {
    const Word* TRIGEN_RESTRICT pt = prefix + t * stride;
    std::uint32_t c0 = 0;
    std::uint32_t c1 = 0;
    std::size_t r = 0;
    for (; r + 8 <= n; r += 8) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pt + r));
      c0 += popcnt256_extract(_mm256_and_si256(
          v, _mm256_loadu_si256(
                 reinterpret_cast<const __m256i*>(z0 + w_begin + r))));
      c1 += popcnt256_extract(_mm256_and_si256(
          v, _mm256_loadu_si256(
                 reinterpret_cast<const __m256i*>(z1 + w_begin + r))));
    }
    for (; r < n; ++r) {
      const Word v = pt[r];
      c0 += static_cast<std::uint32_t>(std::popcount(v & z0[w_begin + r]));
      c1 += static_cast<std::uint32_t>(std::popcount(v & z1[w_begin + r]));
    }
    ft[t * 3 + 0] += c0;
    ft[t * 3 + 1] += c1;
    ft[t * 3 + 2] += prefix_pops[t] - c0 - c1;
  }
}

void tuple_block_avx2(const Word* const* TRIGEN_RESTRICT g0,
                      const Word* const* TRIGEN_RESTRICT g1, unsigned k,
                      std::size_t w_begin, std::size_t w_end,
                      std::uint32_t* TRIGEN_RESTRICT ft) {
  const __m256i ones = _mm256_set1_epi32(-1);
  __m256i g[combinatorics::kMaxOrder][3];
  std::size_t w = w_begin;
  for (; w + 8 <= w_end; w += 8) {
    for (unsigned i = 0; i < k; ++i) {
      g[i][0] =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(g0[i] + w));
      g[i][1] =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(g1[i] + w));
      g[i][2] = _mm256_xor_si256(_mm256_or_si256(g[i][0], g[i][1]), ones);
    }
    const auto descend = [&](const auto& self, unsigned i, __m256i acc,
                             std::size_t cell) -> void {
      if (i == k) {
        ft[cell] += popcnt256_extract(acc);
        return;
      }
      for (int gi = 0; gi < 3; ++gi) {
        self(self, i + 1, _mm256_and_si256(acc, g[i][gi]),
             cell * 3 + static_cast<std::size_t>(gi));
      }
    };
    descend(descend, 0, ones, 0);
  }
  tuple_block_scalar(g0, g1, k, w, w_end, ft);
}

}  // namespace trigen::core::detail

#endif  // TRIGEN_KERNEL_AVX2
