/// \file kernels_avx2.cpp
/// \brief AVX2 triple-block kernels (paper §IV-A, the "AVX" V4 strategy).
///
/// This translation unit is compiled with -mavx2 regardless of the global
/// architecture flags; nothing here may run unless the runtime dispatcher
/// has confirmed AVX2 support via cpu_features().

#include "kernels_detail.hpp"

#include <bit>

#if defined(TRIGEN_KERNEL_AVX2)
#include <immintrin.h>

namespace trigen::core::detail {
namespace {

/// Sum of set bits in a 256-bit register via the paper's AVX strategy:
/// four 64-bit extracts, each fed to the scalar POPCNT unit.
inline std::uint32_t popcnt256_extract(__m256i v) {
  return static_cast<std::uint32_t>(
      std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(v, 0))) +
      std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(v, 1))) +
      std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(v, 2))) +
      std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(v, 3))));
}

/// Per-byte set-bit counts of `v` via the Harley-Seal nibble LUT (Mula's
/// algorithm): the SWAR alternative to extract + scalar POPCNT.
inline __m256i hs_popcnt_bytes(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

/// Folds the per-byte counts of `v` into `acc`'s four 64-bit lanes (SAD
/// against zero cannot overflow for any realistic plane length).
inline __m256i hs_accumulate(__m256i acc, __m256i v) {
  return _mm256_add_epi64(
      acc, _mm256_sad_epu8(hs_popcnt_bytes(v), _mm256_setzero_si256()));
}

/// Per-32-bit-lane set-bit counts: nibble-LUT bytes summed into dwords via
/// maddubs(×1) + madd(×1).  Keeps counts lane-separated, which the batched
/// kernels need (one label partition per dword lane).
inline __m256i lane_popcnt_epi32(__m256i v) {
  return _mm256_madd_epi16(
      _mm256_maddubs_epi16(hs_popcnt_bytes(v), _mm256_set1_epi8(1)),
      _mm256_set1_epi16(1));
}

/// Horizontal sum of the four 64-bit lanes of a SAD accumulator.
inline std::uint32_t hsum_sad256(__m256i acc) {
  return static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 0)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 1)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 2)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 3)));
}

}  // namespace

void triple_block_avx2(const Word* TRIGEN_RESTRICT x0,
                       const Word* TRIGEN_RESTRICT x1,
                       const Word* TRIGEN_RESTRICT y0,
                       const Word* TRIGEN_RESTRICT y1,
                       const Word* TRIGEN_RESTRICT z0,
                       const Word* TRIGEN_RESTRICT z1,
                       std::size_t w_begin, std::size_t w_end,
                       std::uint32_t* TRIGEN_RESTRICT ft27) {
  const __m256i ones = _mm256_set1_epi32(-1);
  std::size_t w = w_begin;
  for (; w + 8 <= w_end; w += 8) {
    // No vector NOR on AVX CPUs: OR followed by XOR with all-ones (§IV-A).
    __m256i xg[3], yg[3], zg[3];
    xg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x0 + w));
    xg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x1 + w));
    xg[2] = _mm256_xor_si256(_mm256_or_si256(xg[0], xg[1]), ones);
    yg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y0 + w));
    yg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y1 + w));
    yg[2] = _mm256_xor_si256(_mm256_or_si256(yg[0], yg[1]), ones);
    zg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z0 + w));
    zg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z1 + w));
    zg[2] = _mm256_xor_si256(_mm256_or_si256(zg[0], zg[1]), ones);

    int cell = 0;
    for (int gx = 0; gx < 3; ++gx) {
      for (int gy = 0; gy < 3; ++gy) {
        const __m256i xy = _mm256_and_si256(xg[gx], yg[gy]);
        for (int gz = 0; gz < 3; ++gz) {
          ft27[cell++] += popcnt256_extract(_mm256_and_si256(xy, zg[gz]));
        }
      }
    }
  }
  triple_block_scalar(x0, x1, y0, y1, z0, z1, w, w_end, ft27);
}

void triple_block_avx2_harley_seal(const Word* TRIGEN_RESTRICT x0,
                                   const Word* TRIGEN_RESTRICT x1,
                                   const Word* TRIGEN_RESTRICT y0,
                                   const Word* TRIGEN_RESTRICT y1,
                                   const Word* TRIGEN_RESTRICT z0,
                                   const Word* TRIGEN_RESTRICT z1,
                                   std::size_t w_begin, std::size_t w_end,
                                   std::uint32_t* TRIGEN_RESTRICT ft27) {
  // Ablation strategy: nibble-LUT popcount bytes folded with SAD into
  // 64-bit lanes per cell; one final extract chain per cell.
  const __m256i ones = _mm256_set1_epi32(-1);
  __m256i acc[27];
  for (auto& a : acc) a = _mm256_setzero_si256();

  std::size_t w = w_begin;
  for (; w + 8 <= w_end; w += 8) {
    __m256i xg[3], yg[3], zg[3];
    xg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x0 + w));
    xg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x1 + w));
    xg[2] = _mm256_xor_si256(_mm256_or_si256(xg[0], xg[1]), ones);
    yg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y0 + w));
    yg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y1 + w));
    yg[2] = _mm256_xor_si256(_mm256_or_si256(yg[0], yg[1]), ones);
    zg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z0 + w));
    zg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z1 + w));
    zg[2] = _mm256_xor_si256(_mm256_or_si256(zg[0], zg[1]), ones);

    int cell = 0;
    for (int gx = 0; gx < 3; ++gx) {
      for (int gy = 0; gy < 3; ++gy) {
        const __m256i xy = _mm256_and_si256(xg[gx], yg[gy]);
        for (int gz = 0; gz < 3; ++gz) {
          acc[cell] = hs_accumulate(acc[cell], _mm256_and_si256(xy, zg[gz]));
          ++cell;
        }
      }
    }
  }
  for (int cell = 0; cell < 27; ++cell) {
    ft27[cell] += hsum_sad256(acc[cell]);
  }
  triple_block_scalar(x0, x1, y0, y1, z0, z1, w, w_end, ft27);
}

void pair_plane_build_avx2(const Word* TRIGEN_RESTRICT x0,
                           const Word* TRIGEN_RESTRICT x1,
                           const Word* TRIGEN_RESTRICT y0,
                           const Word* TRIGEN_RESTRICT y1,
                           std::size_t w_begin, std::size_t w_end,
                           Word* TRIGEN_RESTRICT xy, std::size_t stride,
                           std::uint32_t* TRIGEN_RESTRICT xy_pop9) {
  const __m256i ones = _mm256_set1_epi32(-1);
  std::size_t w = w_begin;
  for (; w + 8 <= w_end; w += 8) {
    __m256i xg[3], yg[3];
    xg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x0 + w));
    xg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x1 + w));
    xg[2] = _mm256_xor_si256(_mm256_or_si256(xg[0], xg[1]), ones);
    yg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y0 + w));
    yg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y1 + w));
    yg[2] = _mm256_xor_si256(_mm256_or_si256(yg[0], yg[1]), ones);
    const std::size_t rel = w - w_begin;
    for (int p = 0; p < 9; ++p) {
      const __m256i v = _mm256_and_si256(xg[p / 3], yg[p % 3]);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(
                              xy + static_cast<std::size_t>(p) * stride + rel),
                          v);
      xy_pop9[p] += popcnt256_extract(v);
    }
  }
  pair_plane_build_scalar(x0, x1, y0, y1, w, w_end, xy + (w - w_begin),
                          stride, xy_pop9);
}

void triple_block_cached_avx2(const Word* TRIGEN_RESTRICT xy,
                              std::size_t stride,
                              const std::uint32_t* TRIGEN_RESTRICT xy_pop9,
                              const Word* TRIGEN_RESTRICT z0,
                              const Word* TRIGEN_RESTRICT z1,
                              std::size_t w_begin, std::size_t w_end,
                              std::uint32_t* TRIGEN_RESTRICT ft27) {
  for (int p = 0; p < 9; ++p) {
    const Word* TRIGEN_RESTRICT xyp =
        xy + static_cast<std::size_t>(p) * stride;
    std::uint32_t c0 = 0;
    std::uint32_t c1 = 0;
    std::size_t w = w_begin;
    for (; w + 8 <= w_end; w += 8) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(xyp + (w - w_begin)));
      c0 += popcnt256_extract(_mm256_and_si256(
          v, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z0 + w))));
      c1 += popcnt256_extract(_mm256_and_si256(
          v, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z1 + w))));
    }
    for (; w < w_end; ++w) {
      const Word v = xyp[w - w_begin];
      c0 += static_cast<std::uint32_t>(std::popcount(v & z0[w]));
      c1 += static_cast<std::uint32_t>(std::popcount(v & z1[w]));
    }
    const int cell = (p / 3) * 9 + (p % 3) * 3;
    ft27[cell] += c0;
    ft27[cell + 1] += c1;
    ft27[cell + 2] += xy_pop9[p] - c0 - c1;
  }
}

void pair_plane_count_avx2(const Word* TRIGEN_RESTRICT x0,
                           const Word* TRIGEN_RESTRICT x1,
                           const Word* TRIGEN_RESTRICT y0,
                           const Word* TRIGEN_RESTRICT y1,
                           std::size_t w_begin, std::size_t w_end,
                           std::uint32_t* TRIGEN_RESTRICT xy_pop9) {
  const __m256i ones = _mm256_set1_epi32(-1);
  std::size_t w = w_begin;
  for (; w + 8 <= w_end; w += 8) {
    __m256i xg[3], yg[3];
    xg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x0 + w));
    xg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x1 + w));
    xg[2] = _mm256_xor_si256(_mm256_or_si256(xg[0], xg[1]), ones);
    yg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y0 + w));
    yg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y1 + w));
    yg[2] = _mm256_xor_si256(_mm256_or_si256(yg[0], yg[1]), ones);
    for (int p = 0; p < 9; ++p) {
      xy_pop9[p] += popcnt256_extract(_mm256_and_si256(xg[p / 3], yg[p % 3]));
    }
  }
  pair_plane_count_scalar(x0, x1, y0, y1, w, w_end, xy_pop9);
}

void pair_plane_build_avx2_harley_seal(
    const Word* TRIGEN_RESTRICT x0, const Word* TRIGEN_RESTRICT x1,
    const Word* TRIGEN_RESTRICT y0, const Word* TRIGEN_RESTRICT y1,
    std::size_t w_begin, std::size_t w_end, Word* TRIGEN_RESTRICT xy,
    std::size_t stride, std::uint32_t* TRIGEN_RESTRICT xy_pop9) {
  const __m256i ones = _mm256_set1_epi32(-1);
  __m256i acc[9];
  for (auto& a : acc) a = _mm256_setzero_si256();

  std::size_t w = w_begin;
  for (; w + 8 <= w_end; w += 8) {
    __m256i xg[3], yg[3];
    xg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x0 + w));
    xg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x1 + w));
    xg[2] = _mm256_xor_si256(_mm256_or_si256(xg[0], xg[1]), ones);
    yg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y0 + w));
    yg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y1 + w));
    yg[2] = _mm256_xor_si256(_mm256_or_si256(yg[0], yg[1]), ones);
    const std::size_t rel = w - w_begin;
    for (int p = 0; p < 9; ++p) {
      const __m256i v = _mm256_and_si256(xg[p / 3], yg[p % 3]);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(
                              xy + static_cast<std::size_t>(p) * stride + rel),
                          v);
      acc[p] = hs_accumulate(acc[p], v);
    }
  }
  for (int p = 0; p < 9; ++p) {
    xy_pop9[p] += hsum_sad256(acc[p]);
  }
  pair_plane_build_scalar(x0, x1, y0, y1, w, w_end, xy + (w - w_begin),
                          stride, xy_pop9);
}

void pair_plane_count_avx2_harley_seal(
    const Word* TRIGEN_RESTRICT x0, const Word* TRIGEN_RESTRICT x1,
    const Word* TRIGEN_RESTRICT y0, const Word* TRIGEN_RESTRICT y1,
    std::size_t w_begin, std::size_t w_end,
    std::uint32_t* TRIGEN_RESTRICT xy_pop9) {
  const __m256i ones = _mm256_set1_epi32(-1);
  __m256i acc[9];
  for (auto& a : acc) a = _mm256_setzero_si256();

  std::size_t w = w_begin;
  for (; w + 8 <= w_end; w += 8) {
    __m256i xg[3], yg[3];
    xg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x0 + w));
    xg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x1 + w));
    xg[2] = _mm256_xor_si256(_mm256_or_si256(xg[0], xg[1]), ones);
    yg[0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y0 + w));
    yg[1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y1 + w));
    yg[2] = _mm256_xor_si256(_mm256_or_si256(yg[0], yg[1]), ones);
    for (int p = 0; p < 9; ++p) {
      acc[p] = hs_accumulate(acc[p], _mm256_and_si256(xg[p / 3], yg[p % 3]));
    }
  }
  for (int p = 0; p < 9; ++p) {
    xy_pop9[p] += hsum_sad256(acc[p]);
  }
  pair_plane_count_scalar(x0, x1, y0, y1, w, w_end, xy_pop9);
}

void triple_block_cached_avx2_harley_seal(
    const Word* TRIGEN_RESTRICT xy, std::size_t stride,
    const std::uint32_t* TRIGEN_RESTRICT xy_pop9,
    const Word* TRIGEN_RESTRICT z0, const Word* TRIGEN_RESTRICT z1,
    std::size_t w_begin, std::size_t w_end,
    std::uint32_t* TRIGEN_RESTRICT ft27) {
  for (int p = 0; p < 9; ++p) {
    const Word* TRIGEN_RESTRICT xyp =
        xy + static_cast<std::size_t>(p) * stride;
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    std::size_t w = w_begin;
    for (; w + 8 <= w_end; w += 8) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(xyp + (w - w_begin)));
      acc0 = hs_accumulate(
          acc0, _mm256_and_si256(v, _mm256_loadu_si256(
                                        reinterpret_cast<const __m256i*>(
                                            z0 + w))));
      acc1 = hs_accumulate(
          acc1, _mm256_and_si256(v, _mm256_loadu_si256(
                                        reinterpret_cast<const __m256i*>(
                                            z1 + w))));
    }
    std::uint32_t c0 = hsum_sad256(acc0);
    std::uint32_t c1 = hsum_sad256(acc1);
    for (; w < w_end; ++w) {
      const Word v = xyp[w - w_begin];
      c0 += static_cast<std::uint32_t>(std::popcount(v & z0[w]));
      c1 += static_cast<std::uint32_t>(std::popcount(v & z1[w]));
    }
    const int cell = (p / 3) * 9 + (p % 3) * 3;
    ft27[cell] += c0;
    ft27[cell + 1] += c1;
    ft27[cell + 2] += xy_pop9[p] - c0 - c1;
  }
}

void prefix_extend_avx2(const Word* TRIGEN_RESTRICT prefix, std::size_t count,
                        std::size_t stride, const Word* TRIGEN_RESTRICT s0,
                        const Word* TRIGEN_RESTRICT s1, std::size_t w_begin,
                        std::size_t w_end, Word* TRIGEN_RESTRICT out,
                        std::size_t out_stride,
                        std::uint32_t* TRIGEN_RESTRICT out_pops) {
  const std::size_t n = w_end - w_begin;
  for (std::size_t t = 0; t < count; ++t) {
    const Word* TRIGEN_RESTRICT pt = prefix + t * stride;
    Word* TRIGEN_RESTRICT o0 = out + (t * 3 + 0) * out_stride;
    Word* TRIGEN_RESTRICT o1 = out + (t * 3 + 1) * out_stride;
    Word* TRIGEN_RESTRICT o2 = out + (t * 3 + 2) * out_stride;
    std::uint32_t c0 = 0, c1 = 0, c2 = 0;
    std::size_t r = 0;
    for (; r + 8 <= n; r += 8) {
      const __m256i p =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pt + r));
      const __m256i a = _mm256_and_si256(
          p, _mm256_loadu_si256(
                 reinterpret_cast<const __m256i*>(s0 + w_begin + r)));
      const __m256i b = _mm256_and_si256(
          p, _mm256_loadu_si256(
                 reinterpret_cast<const __m256i*>(s1 + w_begin + r)));
      const __m256i c = _mm256_xor_si256(_mm256_xor_si256(p, a), b);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(o0 + r), a);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(o1 + r), b);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(o2 + r), c);
      c0 += popcnt256_extract(a);
      c1 += popcnt256_extract(b);
      c2 += popcnt256_extract(c);
    }
    for (; r < n; ++r) {
      const Word p = pt[r];
      const Word a = p & s0[w_begin + r];
      const Word b = p & s1[w_begin + r];
      const Word c = p ^ a ^ b;
      o0[r] = a;
      o1[r] = b;
      o2[r] = c;
      c0 += static_cast<std::uint32_t>(std::popcount(a));
      c1 += static_cast<std::uint32_t>(std::popcount(b));
      c2 += static_cast<std::uint32_t>(std::popcount(c));
    }
    if (out_pops != nullptr) {
      out_pops[t * 3 + 0] += c0;
      out_pops[t * 3 + 1] += c1;
      out_pops[t * 3 + 2] += c2;
    }
  }
}

void prefix_final_avx2(const Word* TRIGEN_RESTRICT prefix, std::size_t count,
                       std::size_t stride,
                       const std::uint32_t* TRIGEN_RESTRICT prefix_pops,
                       const Word* TRIGEN_RESTRICT z0,
                       const Word* TRIGEN_RESTRICT z1, std::size_t w_begin,
                       std::size_t w_end, std::uint32_t* TRIGEN_RESTRICT ft) {
  const std::size_t n = w_end - w_begin;
  for (std::size_t t = 0; t < count; ++t) {
    const Word* TRIGEN_RESTRICT pt = prefix + t * stride;
    std::uint32_t c0 = 0;
    std::uint32_t c1 = 0;
    std::size_t r = 0;
    for (; r + 8 <= n; r += 8) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pt + r));
      c0 += popcnt256_extract(_mm256_and_si256(
          v, _mm256_loadu_si256(
                 reinterpret_cast<const __m256i*>(z0 + w_begin + r))));
      c1 += popcnt256_extract(_mm256_and_si256(
          v, _mm256_loadu_si256(
                 reinterpret_cast<const __m256i*>(z1 + w_begin + r))));
    }
    for (; r < n; ++r) {
      const Word v = pt[r];
      c0 += static_cast<std::uint32_t>(std::popcount(v & z0[w_begin + r]));
      c1 += static_cast<std::uint32_t>(std::popcount(v & z1[w_begin + r]));
    }
    ft[t * 3 + 0] += c0;
    ft[t * 3 + 1] += c1;
    ft[t * 3 + 2] += prefix_pops[t] - c0 - c1;
  }
}

void tuple_block_avx2(const Word* const* TRIGEN_RESTRICT g0,
                      const Word* const* TRIGEN_RESTRICT g1, unsigned k,
                      std::size_t w_begin, std::size_t w_end,
                      std::uint32_t* TRIGEN_RESTRICT ft) {
  const __m256i ones = _mm256_set1_epi32(-1);
  __m256i g[combinatorics::kMaxOrder][3];
  std::size_t w = w_begin;
  for (; w + 8 <= w_end; w += 8) {
    for (unsigned i = 0; i < k; ++i) {
      g[i][0] =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(g0[i] + w));
      g[i][1] =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(g1[i] + w));
      g[i][2] = _mm256_xor_si256(_mm256_or_si256(g[i][0], g[i][1]), ones);
    }
    const auto descend = [&](const auto& self, unsigned i, __m256i acc,
                             std::size_t cell) -> void {
      if (i == k) {
        ft[cell] += popcnt256_extract(acc);
        return;
      }
      for (int gi = 0; gi < 3; ++gi) {
        self(self, i + 1, _mm256_and_si256(acc, g[i][gi]),
             cell * 3 + static_cast<std::size_t>(gi));
      }
    };
    descend(descend, 0, ones, 0);
  }
  tuple_block_scalar(g0, g1, k, w, w_end, ft);
}

namespace {

// Batched label-pops over a window of G eight-lane label groups: one pass
// over the words, the prefix word broadcast once, G register accumulators.
// G is capped at 4 — AVX2 has sixteen ymm registers and lane_popcnt_epi32
// needs scratch, so wider windows would spill.
template <int G>
void batch_label_pops_window_avx2(
    const Word* TRIGEN_RESTRICT prefix, std::size_t count, std::size_t stride,
    const Word* TRIGEN_RESTRICT labels, std::size_t p_begin,
    std::size_t p_last, std::size_t lstride, std::size_t w_begin,
    std::size_t w_end, std::uint32_t* TRIGEN_RESTRICT label_pops) {
  const std::size_t n = w_end - w_begin;
  for (std::size_t t = 0; t < count; ++t) {
    const Word* TRIGEN_RESTRICT pt = prefix + t * stride;
    __m256i acc[G];
    for (int g = 0; g < G; ++g) acc[g] = _mm256_setzero_si256();
    for (std::size_t r = 0; r < n; ++r) {
      const Word v = pt[r];
      if (v == 0) continue;
      const Word* TRIGEN_RESTRICT row =
          labels + (w_begin + r) * lstride + p_begin;
      const __m256i b = _mm256_set1_epi32(static_cast<int>(v));
      for (int g = 0; g < G; ++g) {
        const __m256i l = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(row + 8 * g));
        acc[g] = _mm256_add_epi32(
            acc[g], lane_popcnt_epi32(_mm256_and_si256(b, l)));
      }
    }
    alignas(32) std::uint32_t lanes[8];
    for (int g = 0; g < G; ++g) {
      const std::size_t pg = p_begin + 8 * static_cast<std::size_t>(g);
      const std::size_t pe = pg + 8 < p_last ? pg + 8 : p_last;
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc[g]);
      for (std::size_t p = pg; p < pe; ++p)
        label_pops[t * lstride + p] += lanes[p - pg];
    }
  }
}

// Batched finalize over a window of G label groups: u0/u1, the per-chunk
// totals and the two broadcasts are computed once per word and amortized
// across all 8*G partitions.  G is capped at 2 (2*G accumulators plus the
// popcount scratch must fit sixteen ymm registers).
template <int G>
void batch_final_window_avx2(
    const Word* TRIGEN_RESTRICT prefix, std::size_t count, std::size_t stride,
    const std::uint32_t* TRIGEN_RESTRICT prefix_pops,
    const std::uint32_t* TRIGEN_RESTRICT label_pops,
    const Word* TRIGEN_RESTRICT z0, const Word* TRIGEN_RESTRICT z1,
    const Word* TRIGEN_RESTRICT labels, std::size_t p_begin,
    std::size_t p_last, std::size_t lstride, std::size_t w_begin,
    std::size_t w_end, std::uint32_t* TRIGEN_RESTRICT ft,
    std::size_t ft_stride, bool totals_pass) {
  const std::size_t n = w_end - w_begin;
  for (std::size_t t = 0; t < count; ++t) {
    const Word* TRIGEN_RESTRICT pt = prefix + t * stride;
    __m256i a0[G];
    __m256i a1[G];
    for (int g = 0; g < G; ++g) {
      a0[g] = _mm256_setzero_si256();
      a1[g] = _mm256_setzero_si256();
    }
    std::uint32_t c0 = 0;
    std::uint32_t c1 = 0;
    for (std::size_t r = 0; r < n; ++r) {
      const Word u0 = pt[r] & z0[w_begin + r];
      const Word u1 = pt[r] & z1[w_begin + r];
      if (totals_pass) {
        c0 += static_cast<std::uint32_t>(std::popcount(u0));
        c1 += static_cast<std::uint32_t>(std::popcount(u1));
      }
      if ((u0 | u1) == 0) continue;
      const Word* TRIGEN_RESTRICT row =
          labels + (w_begin + r) * lstride + p_begin;
      const __m256i b0 = _mm256_set1_epi32(static_cast<int>(u0));
      const __m256i b1 = _mm256_set1_epi32(static_cast<int>(u1));
      for (int g = 0; g < G; ++g) {
        const __m256i l = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(row + 8 * g));
        a0[g] = _mm256_add_epi32(
            a0[g], lane_popcnt_epi32(_mm256_and_si256(b0, l)));
        a1[g] = _mm256_add_epi32(
            a1[g], lane_popcnt_epi32(_mm256_and_si256(b1, l)));
      }
    }
    if (totals_pass) {
      ft[t * 3 + 0] += c0;
      ft[t * 3 + 1] += c1;
      ft[t * 3 + 2] += prefix_pops[t] - c0 - c1;
    }
    alignas(32) std::uint32_t l0[8];
    alignas(32) std::uint32_t l1[8];
    for (int g = 0; g < G; ++g) {
      const std::size_t pg = p_begin + 8 * static_cast<std::size_t>(g);
      const std::size_t pe = pg + 8 < p_last ? pg + 8 : p_last;
      _mm256_store_si256(reinterpret_cast<__m256i*>(l0), a0[g]);
      _mm256_store_si256(reinterpret_cast<__m256i*>(l1), a1[g]);
      for (std::size_t p = pg; p < pe; ++p) {
        const std::uint32_t v0 = l0[p - pg];
        const std::uint32_t v1 = l1[p - pg];
        std::uint32_t* TRIGEN_RESTRICT ftp = ft + (1 + p) * ft_stride + t * 3;
        ftp[0] += v0;
        ftp[1] += v1;
        ftp[2] += label_pops[t * lstride + p] - v0 - v1;
      }
    }
  }
}

}  // namespace

void batch_label_pops_avx2(const Word* TRIGEN_RESTRICT prefix,
                           std::size_t count, std::size_t stride,
                           const Word* TRIGEN_RESTRICT labels,
                           std::size_t num_labels, std::size_t lstride,
                           std::size_t w_begin, std::size_t w_end,
                           std::uint32_t* TRIGEN_RESTRICT label_pops) {
  // Vectorized across label lanes, not words: each prefix word is broadcast
  // and ANDed against eight partitions' label words at once.  Lane count is
  // independent of the word range, so there is no scalar word tail.
  for (std::size_t p0 = 0; p0 < num_labels;) {
    const std::size_t left = (num_labels - p0 + 7) / 8;
    const std::size_t g = left < 4 ? left : 4;
    const std::size_t pe = p0 + 8 * g < num_labels ? p0 + 8 * g : num_labels;
    switch (g) {
#define TRIGEN_BLP_CASE(G)                                                \
  case G:                                                                 \
    batch_label_pops_window_avx2<G>(prefix, count, stride, labels, p0,    \
                                    pe, lstride, w_begin, w_end,          \
                                    label_pops);                          \
    break;
      TRIGEN_BLP_CASE(1)
      TRIGEN_BLP_CASE(2)
      TRIGEN_BLP_CASE(3)
      TRIGEN_BLP_CASE(4)
#undef TRIGEN_BLP_CASE
      default: break;
    }
    p0 += 8 * g;
  }
}

void batch_final_avx2(const Word* TRIGEN_RESTRICT prefix, std::size_t count,
                      std::size_t stride,
                      const std::uint32_t* TRIGEN_RESTRICT prefix_pops,
                      const std::uint32_t* TRIGEN_RESTRICT label_pops,
                      const Word* TRIGEN_RESTRICT z0,
                      const Word* TRIGEN_RESTRICT z1,
                      const Word* TRIGEN_RESTRICT labels,
                      std::size_t num_labels, std::size_t lstride,
                      std::size_t w_begin, std::size_t w_end,
                      std::uint32_t* TRIGEN_RESTRICT ft,
                      std::size_t ft_stride) {
  bool totals_pass = true;
  for (std::size_t p0 = 0; p0 < num_labels;) {
    const std::size_t left = (num_labels - p0 + 7) / 8;
    const std::size_t g = left < 2 ? left : 2;
    const std::size_t pe = p0 + 8 * g < num_labels ? p0 + 8 * g : num_labels;
    switch (g) {
#define TRIGEN_BF_CASE(G)                                                 \
  case G:                                                                 \
    batch_final_window_avx2<G>(prefix, count, stride, prefix_pops,        \
                               label_pops, z0, z1, labels, p0, pe,        \
                               lstride, w_begin, w_end, ft, ft_stride,    \
                               totals_pass);                              \
    break;
      TRIGEN_BF_CASE(1)
      TRIGEN_BF_CASE(2)
#undef TRIGEN_BF_CASE
      default: break;
    }
    totals_pass = false;
    p0 += 8 * g;
  }
}

}  // namespace trigen::core::detail

#endif  // TRIGEN_KERNEL_AVX2
