/// \file kernels_avx512vpopcnt.cpp
/// \brief AVX-512 VPOPCNTDQ triple-block kernel (Ice Lake SP strategy).
///
/// Compiled with -mavx512f -mavx512bw -mavx512vpopcntdq regardless of the
/// global architecture flags; only executed after the runtime dispatcher
/// confirms support.

#include "kernels_detail.hpp"

#include <bit>

#if defined(TRIGEN_KERNEL_AVX512VPOPCNT)
#include <immintrin.h>

namespace trigen::core::detail {

void triple_block_avx512_vpopcnt(const Word* TRIGEN_RESTRICT x0,
                                 const Word* TRIGEN_RESTRICT x1,
                                 const Word* TRIGEN_RESTRICT y0,
                                 const Word* TRIGEN_RESTRICT y1,
                                 const Word* TRIGEN_RESTRICT z0,
                                 const Word* TRIGEN_RESTRICT z1,
                                 std::size_t w_begin, std::size_t w_end,
                                 std::uint32_t* TRIGEN_RESTRICT ft27) {
  // Ice Lake SP strategy (§IV-A, last paragraph): vector POPCNT per cell,
  // frequency table updated with a reduction.  The table is kept as 27
  // lane-wise vector accumulators for the duration of the word loop — the
  // per-lane count over one call is bounded by 32 bits per word, so 32-bit
  // lanes cannot overflow for any plane shorter than 2^26 words — and each
  // accumulator is reduced exactly once at the end.
  const __m512i ones = _mm512_set1_epi32(-1);
  __m512i acc[27];
  for (auto& a : acc) a = _mm512_setzero_si512();

  std::size_t w = w_begin;
  for (; w + 16 <= w_end; w += 16) {
    __m512i xg[3], yg[3], zg[3];
    xg[0] = _mm512_loadu_si512(reinterpret_cast<const void*>(x0 + w));
    xg[1] = _mm512_loadu_si512(reinterpret_cast<const void*>(x1 + w));
    xg[2] = _mm512_xor_si512(_mm512_or_si512(xg[0], xg[1]), ones);
    yg[0] = _mm512_loadu_si512(reinterpret_cast<const void*>(y0 + w));
    yg[1] = _mm512_loadu_si512(reinterpret_cast<const void*>(y1 + w));
    yg[2] = _mm512_xor_si512(_mm512_or_si512(yg[0], yg[1]), ones);
    zg[0] = _mm512_loadu_si512(reinterpret_cast<const void*>(z0 + w));
    zg[1] = _mm512_loadu_si512(reinterpret_cast<const void*>(z1 + w));
    zg[2] = _mm512_xor_si512(_mm512_or_si512(zg[0], zg[1]), ones);

    int cell = 0;
    for (int gx = 0; gx < 3; ++gx) {
      for (int gy = 0; gy < 3; ++gy) {
        const __m512i xy = _mm512_and_si512(xg[gx], yg[gy]);
        for (int gz = 0; gz < 3; ++gz) {
          acc[cell] = _mm512_add_epi32(
              acc[cell],
              _mm512_popcnt_epi32(_mm512_and_si512(xy, zg[gz])));
          ++cell;
        }
      }
    }
  }
  for (int cell = 0; cell < 27; ++cell) {
    ft27[cell] +=
        static_cast<std::uint32_t>(_mm512_reduce_add_epi32(acc[cell]));
  }
  triple_block_scalar(x0, x1, y0, y1, z0, z1, w, w_end, ft27);
}

void pair_plane_build_avx512_vpopcnt(
    const Word* TRIGEN_RESTRICT x0, const Word* TRIGEN_RESTRICT x1,
    const Word* TRIGEN_RESTRICT y0, const Word* TRIGEN_RESTRICT y1,
    std::size_t w_begin, std::size_t w_end, Word* TRIGEN_RESTRICT xy,
    std::size_t stride, std::uint32_t* TRIGEN_RESTRICT xy_pop9) {
  const __m512i ones = _mm512_set1_epi32(-1);
  __m512i acc[9];
  for (auto& a : acc) a = _mm512_setzero_si512();

  std::size_t w = w_begin;
  for (; w + 16 <= w_end; w += 16) {
    __m512i xg[3], yg[3];
    xg[0] = _mm512_loadu_si512(reinterpret_cast<const void*>(x0 + w));
    xg[1] = _mm512_loadu_si512(reinterpret_cast<const void*>(x1 + w));
    xg[2] = _mm512_xor_si512(_mm512_or_si512(xg[0], xg[1]), ones);
    yg[0] = _mm512_loadu_si512(reinterpret_cast<const void*>(y0 + w));
    yg[1] = _mm512_loadu_si512(reinterpret_cast<const void*>(y1 + w));
    yg[2] = _mm512_xor_si512(_mm512_or_si512(yg[0], yg[1]), ones);
    const std::size_t rel = w - w_begin;
    for (int p = 0; p < 9; ++p) {
      const __m512i v = _mm512_and_si512(xg[p / 3], yg[p % 3]);
      _mm512_storeu_si512(
          reinterpret_cast<void*>(xy + static_cast<std::size_t>(p) * stride +
                                  rel),
          v);
      acc[p] = _mm512_add_epi32(acc[p], _mm512_popcnt_epi32(v));
    }
  }
  for (int p = 0; p < 9; ++p) {
    xy_pop9[p] +=
        static_cast<std::uint32_t>(_mm512_reduce_add_epi32(acc[p]));
  }
  pair_plane_build_scalar(x0, x1, y0, y1, w, w_end, xy + (w - w_begin),
                          stride, xy_pop9);
}

void pair_plane_count_avx512_vpopcnt(
    const Word* TRIGEN_RESTRICT x0, const Word* TRIGEN_RESTRICT x1,
    const Word* TRIGEN_RESTRICT y0, const Word* TRIGEN_RESTRICT y1,
    std::size_t w_begin, std::size_t w_end,
    std::uint32_t* TRIGEN_RESTRICT xy_pop9) {
  const __m512i ones = _mm512_set1_epi32(-1);
  __m512i acc[9];
  for (auto& a : acc) a = _mm512_setzero_si512();

  std::size_t w = w_begin;
  for (; w + 16 <= w_end; w += 16) {
    __m512i xg[3], yg[3];
    xg[0] = _mm512_loadu_si512(reinterpret_cast<const void*>(x0 + w));
    xg[1] = _mm512_loadu_si512(reinterpret_cast<const void*>(x1 + w));
    xg[2] = _mm512_xor_si512(_mm512_or_si512(xg[0], xg[1]), ones);
    yg[0] = _mm512_loadu_si512(reinterpret_cast<const void*>(y0 + w));
    yg[1] = _mm512_loadu_si512(reinterpret_cast<const void*>(y1 + w));
    yg[2] = _mm512_xor_si512(_mm512_or_si512(yg[0], yg[1]), ones);
    for (int p = 0; p < 9; ++p) {
      acc[p] = _mm512_add_epi32(
          acc[p],
          _mm512_popcnt_epi32(_mm512_and_si512(xg[p / 3], yg[p % 3])));
    }
  }
  for (int p = 0; p < 9; ++p) {
    xy_pop9[p] +=
        static_cast<std::uint32_t>(_mm512_reduce_add_epi32(acc[p]));
  }
  pair_plane_count_scalar(x0, x1, y0, y1, w, w_end, xy_pop9);
}

void triple_block_cached_avx512_vpopcnt(
    const Word* TRIGEN_RESTRICT xy, std::size_t stride,
    const std::uint32_t* TRIGEN_RESTRICT xy_pop9,
    const Word* TRIGEN_RESTRICT z0, const Word* TRIGEN_RESTRICT z1,
    std::size_t w_begin, std::size_t w_end,
    std::uint32_t* TRIGEN_RESTRICT ft27) {
  for (int p = 0; p < 9; ++p) {
    const Word* TRIGEN_RESTRICT xyp =
        xy + static_cast<std::size_t>(p) * stride;
    __m512i acc0 = _mm512_setzero_si512();
    __m512i acc1 = _mm512_setzero_si512();
    std::size_t w = w_begin;
    for (; w + 16 <= w_end; w += 16) {
      const __m512i v =
          _mm512_loadu_si512(reinterpret_cast<const void*>(xyp + (w - w_begin)));
      acc0 = _mm512_add_epi32(
          acc0, _mm512_popcnt_epi32(_mm512_and_si512(
                    v, _mm512_loadu_si512(
                           reinterpret_cast<const void*>(z0 + w)))));
      acc1 = _mm512_add_epi32(
          acc1, _mm512_popcnt_epi32(_mm512_and_si512(
                    v, _mm512_loadu_si512(
                           reinterpret_cast<const void*>(z1 + w)))));
    }
    std::uint32_t c0 =
        static_cast<std::uint32_t>(_mm512_reduce_add_epi32(acc0));
    std::uint32_t c1 =
        static_cast<std::uint32_t>(_mm512_reduce_add_epi32(acc1));
    for (; w < w_end; ++w) {
      const Word v = xyp[w - w_begin];
      c0 += static_cast<std::uint32_t>(std::popcount(v & z0[w]));
      c1 += static_cast<std::uint32_t>(std::popcount(v & z1[w]));
    }
    const int cell = (p / 3) * 9 + (p % 3) * 3;
    ft27[cell] += c0;
    ft27[cell + 1] += c1;
    ft27[cell + 2] += xy_pop9[p] - c0 - c1;
  }
}

namespace {

// Batched label-pops over a window of G sixteen-lane label groups: one pass
// over the words, the prefix word broadcast once, G register accumulators,
// native per-dword VPOPCNTD popcounts — no LUT, no vector-width word tail.
template <int G>
void batch_label_pops_window_vpopcnt(
    const Word* TRIGEN_RESTRICT prefix, std::size_t count, std::size_t stride,
    const Word* TRIGEN_RESTRICT labels, std::size_t p_begin,
    std::size_t p_last, std::size_t lstride, std::size_t w_begin,
    std::size_t w_end, std::uint32_t* TRIGEN_RESTRICT label_pops) {
  const std::size_t n = w_end - w_begin;
  for (std::size_t t = 0; t < count; ++t) {
    const Word* TRIGEN_RESTRICT pt = prefix + t * stride;
    __m512i acc[G];
    for (int g = 0; g < G; ++g) acc[g] = _mm512_setzero_si512();
    for (std::size_t r = 0; r < n; ++r) {
      const Word v = pt[r];
      if (v == 0) continue;
      const Word* TRIGEN_RESTRICT row =
          labels + (w_begin + r) * lstride + p_begin;
      const __m512i b = _mm512_set1_epi32(static_cast<int>(v));
      for (int g = 0; g < G; ++g) {
        const __m512i l = _mm512_loadu_si512(
            reinterpret_cast<const void*>(row + 16 * g));
        acc[g] = _mm512_add_epi32(
            acc[g], _mm512_popcnt_epi32(_mm512_and_si512(b, l)));
      }
    }
    alignas(64) std::uint32_t lanes[16];
    for (int g = 0; g < G; ++g) {
      const std::size_t pg = p_begin + 16 * static_cast<std::size_t>(g);
      const std::size_t pe = pg + 16 < p_last ? pg + 16 : p_last;
      _mm512_store_si512(reinterpret_cast<void*>(lanes), acc[g]);
      for (std::size_t p = pg; p < pe; ++p)
        label_pops[t * lstride + p] += lanes[p - pg];
    }
  }
}

// Batched finalize over a window of G label groups: u0/u1, the per-chunk
// totals and the two broadcasts are computed once per word and amortized
// across all 16*G partitions, with 2*G register accumulators.
template <int G>
void batch_final_window_vpopcnt(
    const Word* TRIGEN_RESTRICT prefix, std::size_t count, std::size_t stride,
    const std::uint32_t* TRIGEN_RESTRICT prefix_pops,
    const std::uint32_t* TRIGEN_RESTRICT label_pops,
    const Word* TRIGEN_RESTRICT z0, const Word* TRIGEN_RESTRICT z1,
    const Word* TRIGEN_RESTRICT labels, std::size_t p_begin,
    std::size_t p_last, std::size_t lstride, std::size_t w_begin,
    std::size_t w_end, std::uint32_t* TRIGEN_RESTRICT ft,
    std::size_t ft_stride, bool totals_pass) {
  const std::size_t n = w_end - w_begin;
  for (std::size_t t = 0; t < count; ++t) {
    const Word* TRIGEN_RESTRICT pt = prefix + t * stride;
    __m512i a0[G];
    __m512i a1[G];
    for (int g = 0; g < G; ++g) {
      a0[g] = _mm512_setzero_si512();
      a1[g] = _mm512_setzero_si512();
    }
    std::uint32_t c0 = 0;
    std::uint32_t c1 = 0;
    for (std::size_t r = 0; r < n; ++r) {
      const Word u0 = pt[r] & z0[w_begin + r];
      const Word u1 = pt[r] & z1[w_begin + r];
      if (totals_pass) {
        c0 += static_cast<std::uint32_t>(std::popcount(u0));
        c1 += static_cast<std::uint32_t>(std::popcount(u1));
      }
      if ((u0 | u1) == 0) continue;
      const Word* TRIGEN_RESTRICT row =
          labels + (w_begin + r) * lstride + p_begin;
      const __m512i b0 = _mm512_set1_epi32(static_cast<int>(u0));
      const __m512i b1 = _mm512_set1_epi32(static_cast<int>(u1));
      for (int g = 0; g < G; ++g) {
        const __m512i l = _mm512_loadu_si512(
            reinterpret_cast<const void*>(row + 16 * g));
        a0[g] = _mm512_add_epi32(
            a0[g], _mm512_popcnt_epi32(_mm512_and_si512(b0, l)));
        a1[g] = _mm512_add_epi32(
            a1[g], _mm512_popcnt_epi32(_mm512_and_si512(b1, l)));
      }
    }
    if (totals_pass) {
      ft[t * 3 + 0] += c0;
      ft[t * 3 + 1] += c1;
      ft[t * 3 + 2] += prefix_pops[t] - c0 - c1;
    }
    alignas(64) std::uint32_t l0[16];
    alignas(64) std::uint32_t l1[16];
    for (int g = 0; g < G; ++g) {
      const std::size_t pg = p_begin + 16 * static_cast<std::size_t>(g);
      const std::size_t pe = pg + 16 < p_last ? pg + 16 : p_last;
      _mm512_store_si512(reinterpret_cast<void*>(l0), a0[g]);
      _mm512_store_si512(reinterpret_cast<void*>(l1), a1[g]);
      for (std::size_t p = pg; p < pe; ++p) {
        const std::uint32_t v0 = l0[p - pg];
        const std::uint32_t v1 = l1[p - pg];
        std::uint32_t* TRIGEN_RESTRICT ftp = ft + (1 + p) * ft_stride + t * 3;
        ftp[0] += v0;
        ftp[1] += v1;
        ftp[2] += label_pops[t * lstride + p] - v0 - v1;
      }
    }
  }
}

}  // namespace

void batch_label_pops_avx512_vpopcnt(
    const Word* TRIGEN_RESTRICT prefix, std::size_t count, std::size_t stride,
    const Word* TRIGEN_RESTRICT labels, std::size_t num_labels,
    std::size_t lstride, std::size_t w_begin, std::size_t w_end,
    std::uint32_t* TRIGEN_RESTRICT label_pops) {
  for (std::size_t p0 = 0; p0 < num_labels;) {
    const std::size_t left = (num_labels - p0 + 15) / 16;
    const std::size_t g = left < 8 ? left : 8;
    const std::size_t pe =
        p0 + 16 * g < num_labels ? p0 + 16 * g : num_labels;
    switch (g) {
#define TRIGEN_BLP_CASE(G)                                                  \
  case G:                                                                   \
    batch_label_pops_window_vpopcnt<G>(prefix, count, stride, labels, p0,   \
                                       pe, lstride, w_begin, w_end,         \
                                       label_pops);                         \
    break;
      TRIGEN_BLP_CASE(1)
      TRIGEN_BLP_CASE(2)
      TRIGEN_BLP_CASE(3)
      TRIGEN_BLP_CASE(4)
      TRIGEN_BLP_CASE(5)
      TRIGEN_BLP_CASE(6)
      TRIGEN_BLP_CASE(7)
      TRIGEN_BLP_CASE(8)
#undef TRIGEN_BLP_CASE
      default: break;
    }
    p0 += 16 * g;
  }
}

void batch_final_avx512_vpopcnt(
    const Word* TRIGEN_RESTRICT prefix, std::size_t count, std::size_t stride,
    const std::uint32_t* TRIGEN_RESTRICT prefix_pops,
    const std::uint32_t* TRIGEN_RESTRICT label_pops,
    const Word* TRIGEN_RESTRICT z0, const Word* TRIGEN_RESTRICT z1,
    const Word* TRIGEN_RESTRICT labels, std::size_t num_labels,
    std::size_t lstride, std::size_t w_begin, std::size_t w_end,
    std::uint32_t* TRIGEN_RESTRICT ft, std::size_t ft_stride) {
  bool totals_pass = true;
  for (std::size_t p0 = 0; p0 < num_labels;) {
    const std::size_t left = (num_labels - p0 + 15) / 16;
    const std::size_t g = left < 8 ? left : 8;
    const std::size_t pe =
        p0 + 16 * g < num_labels ? p0 + 16 * g : num_labels;
    switch (g) {
#define TRIGEN_BF_CASE(G)                                                   \
  case G:                                                                   \
    batch_final_window_vpopcnt<G>(prefix, count, stride, prefix_pops,       \
                                  label_pops, z0, z1, labels, p0, pe,       \
                                  lstride, w_begin, w_end, ft, ft_stride,   \
                                  totals_pass);                             \
    break;
      TRIGEN_BF_CASE(1)
      TRIGEN_BF_CASE(2)
      TRIGEN_BF_CASE(3)
      TRIGEN_BF_CASE(4)
      TRIGEN_BF_CASE(5)
      TRIGEN_BF_CASE(6)
      TRIGEN_BF_CASE(7)
      TRIGEN_BF_CASE(8)
#undef TRIGEN_BF_CASE
      default: break;
    }
    totals_pass = false;
    p0 += 16 * g;
  }
}

}  // namespace trigen::core::detail

#endif  // TRIGEN_KERNEL_AVX512VPOPCNT
