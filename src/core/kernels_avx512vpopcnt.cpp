/// \file kernels_avx512vpopcnt.cpp
/// \brief AVX-512 VPOPCNTDQ triple-block kernel (Ice Lake SP strategy).
///
/// Compiled with -mavx512f -mavx512bw -mavx512vpopcntdq regardless of the
/// global architecture flags; only executed after the runtime dispatcher
/// confirms support.

#include "kernels_detail.hpp"

#include <bit>

#if defined(TRIGEN_KERNEL_AVX512VPOPCNT)
#include <immintrin.h>

namespace trigen::core::detail {

void triple_block_avx512_vpopcnt(const Word* TRIGEN_RESTRICT x0,
                                 const Word* TRIGEN_RESTRICT x1,
                                 const Word* TRIGEN_RESTRICT y0,
                                 const Word* TRIGEN_RESTRICT y1,
                                 const Word* TRIGEN_RESTRICT z0,
                                 const Word* TRIGEN_RESTRICT z1,
                                 std::size_t w_begin, std::size_t w_end,
                                 std::uint32_t* TRIGEN_RESTRICT ft27) {
  // Ice Lake SP strategy (§IV-A, last paragraph): vector POPCNT per cell,
  // frequency table updated with a reduction.  The table is kept as 27
  // lane-wise vector accumulators for the duration of the word loop — the
  // per-lane count over one call is bounded by 32 bits per word, so 32-bit
  // lanes cannot overflow for any plane shorter than 2^26 words — and each
  // accumulator is reduced exactly once at the end.
  const __m512i ones = _mm512_set1_epi32(-1);
  __m512i acc[27];
  for (auto& a : acc) a = _mm512_setzero_si512();

  std::size_t w = w_begin;
  for (; w + 16 <= w_end; w += 16) {
    __m512i xg[3], yg[3], zg[3];
    xg[0] = _mm512_loadu_si512(reinterpret_cast<const void*>(x0 + w));
    xg[1] = _mm512_loadu_si512(reinterpret_cast<const void*>(x1 + w));
    xg[2] = _mm512_xor_si512(_mm512_or_si512(xg[0], xg[1]), ones);
    yg[0] = _mm512_loadu_si512(reinterpret_cast<const void*>(y0 + w));
    yg[1] = _mm512_loadu_si512(reinterpret_cast<const void*>(y1 + w));
    yg[2] = _mm512_xor_si512(_mm512_or_si512(yg[0], yg[1]), ones);
    zg[0] = _mm512_loadu_si512(reinterpret_cast<const void*>(z0 + w));
    zg[1] = _mm512_loadu_si512(reinterpret_cast<const void*>(z1 + w));
    zg[2] = _mm512_xor_si512(_mm512_or_si512(zg[0], zg[1]), ones);

    int cell = 0;
    for (int gx = 0; gx < 3; ++gx) {
      for (int gy = 0; gy < 3; ++gy) {
        const __m512i xy = _mm512_and_si512(xg[gx], yg[gy]);
        for (int gz = 0; gz < 3; ++gz) {
          acc[cell] = _mm512_add_epi32(
              acc[cell],
              _mm512_popcnt_epi32(_mm512_and_si512(xy, zg[gz])));
          ++cell;
        }
      }
    }
  }
  for (int cell = 0; cell < 27; ++cell) {
    ft27[cell] +=
        static_cast<std::uint32_t>(_mm512_reduce_add_epi32(acc[cell]));
  }
  triple_block_scalar(x0, x1, y0, y1, z0, z1, w, w_end, ft27);
}

void pair_plane_build_avx512_vpopcnt(
    const Word* TRIGEN_RESTRICT x0, const Word* TRIGEN_RESTRICT x1,
    const Word* TRIGEN_RESTRICT y0, const Word* TRIGEN_RESTRICT y1,
    std::size_t w_begin, std::size_t w_end, Word* TRIGEN_RESTRICT xy,
    std::size_t stride, std::uint32_t* TRIGEN_RESTRICT xy_pop9) {
  const __m512i ones = _mm512_set1_epi32(-1);
  __m512i acc[9];
  for (auto& a : acc) a = _mm512_setzero_si512();

  std::size_t w = w_begin;
  for (; w + 16 <= w_end; w += 16) {
    __m512i xg[3], yg[3];
    xg[0] = _mm512_loadu_si512(reinterpret_cast<const void*>(x0 + w));
    xg[1] = _mm512_loadu_si512(reinterpret_cast<const void*>(x1 + w));
    xg[2] = _mm512_xor_si512(_mm512_or_si512(xg[0], xg[1]), ones);
    yg[0] = _mm512_loadu_si512(reinterpret_cast<const void*>(y0 + w));
    yg[1] = _mm512_loadu_si512(reinterpret_cast<const void*>(y1 + w));
    yg[2] = _mm512_xor_si512(_mm512_or_si512(yg[0], yg[1]), ones);
    const std::size_t rel = w - w_begin;
    for (int p = 0; p < 9; ++p) {
      const __m512i v = _mm512_and_si512(xg[p / 3], yg[p % 3]);
      _mm512_storeu_si512(
          reinterpret_cast<void*>(xy + static_cast<std::size_t>(p) * stride +
                                  rel),
          v);
      acc[p] = _mm512_add_epi32(acc[p], _mm512_popcnt_epi32(v));
    }
  }
  for (int p = 0; p < 9; ++p) {
    xy_pop9[p] +=
        static_cast<std::uint32_t>(_mm512_reduce_add_epi32(acc[p]));
  }
  pair_plane_build_scalar(x0, x1, y0, y1, w, w_end, xy + (w - w_begin),
                          stride, xy_pop9);
}

void pair_plane_count_avx512_vpopcnt(
    const Word* TRIGEN_RESTRICT x0, const Word* TRIGEN_RESTRICT x1,
    const Word* TRIGEN_RESTRICT y0, const Word* TRIGEN_RESTRICT y1,
    std::size_t w_begin, std::size_t w_end,
    std::uint32_t* TRIGEN_RESTRICT xy_pop9) {
  const __m512i ones = _mm512_set1_epi32(-1);
  __m512i acc[9];
  for (auto& a : acc) a = _mm512_setzero_si512();

  std::size_t w = w_begin;
  for (; w + 16 <= w_end; w += 16) {
    __m512i xg[3], yg[3];
    xg[0] = _mm512_loadu_si512(reinterpret_cast<const void*>(x0 + w));
    xg[1] = _mm512_loadu_si512(reinterpret_cast<const void*>(x1 + w));
    xg[2] = _mm512_xor_si512(_mm512_or_si512(xg[0], xg[1]), ones);
    yg[0] = _mm512_loadu_si512(reinterpret_cast<const void*>(y0 + w));
    yg[1] = _mm512_loadu_si512(reinterpret_cast<const void*>(y1 + w));
    yg[2] = _mm512_xor_si512(_mm512_or_si512(yg[0], yg[1]), ones);
    for (int p = 0; p < 9; ++p) {
      acc[p] = _mm512_add_epi32(
          acc[p],
          _mm512_popcnt_epi32(_mm512_and_si512(xg[p / 3], yg[p % 3])));
    }
  }
  for (int p = 0; p < 9; ++p) {
    xy_pop9[p] +=
        static_cast<std::uint32_t>(_mm512_reduce_add_epi32(acc[p]));
  }
  pair_plane_count_scalar(x0, x1, y0, y1, w, w_end, xy_pop9);
}

void triple_block_cached_avx512_vpopcnt(
    const Word* TRIGEN_RESTRICT xy, std::size_t stride,
    const std::uint32_t* TRIGEN_RESTRICT xy_pop9,
    const Word* TRIGEN_RESTRICT z0, const Word* TRIGEN_RESTRICT z1,
    std::size_t w_begin, std::size_t w_end,
    std::uint32_t* TRIGEN_RESTRICT ft27) {
  for (int p = 0; p < 9; ++p) {
    const Word* TRIGEN_RESTRICT xyp =
        xy + static_cast<std::size_t>(p) * stride;
    __m512i acc0 = _mm512_setzero_si512();
    __m512i acc1 = _mm512_setzero_si512();
    std::size_t w = w_begin;
    for (; w + 16 <= w_end; w += 16) {
      const __m512i v =
          _mm512_loadu_si512(reinterpret_cast<const void*>(xyp + (w - w_begin)));
      acc0 = _mm512_add_epi32(
          acc0, _mm512_popcnt_epi32(_mm512_and_si512(
                    v, _mm512_loadu_si512(
                           reinterpret_cast<const void*>(z0 + w)))));
      acc1 = _mm512_add_epi32(
          acc1, _mm512_popcnt_epi32(_mm512_and_si512(
                    v, _mm512_loadu_si512(
                           reinterpret_cast<const void*>(z1 + w)))));
    }
    std::uint32_t c0 =
        static_cast<std::uint32_t>(_mm512_reduce_add_epi32(acc0));
    std::uint32_t c1 =
        static_cast<std::uint32_t>(_mm512_reduce_add_epi32(acc1));
    for (; w < w_end; ++w) {
      const Word v = xyp[w - w_begin];
      c0 += static_cast<std::uint32_t>(std::popcount(v & z0[w]));
      c1 += static_cast<std::uint32_t>(std::popcount(v & z1[w]));
    }
    const int cell = (p / 3) * 9 + (p % 3) * 3;
    ft27[cell] += c0;
    ft27[cell + 1] += c1;
    ft27[cell + 2] += xy_pop9[p] - c0 - c1;
  }
}

}  // namespace trigen::core::detail

#endif  // TRIGEN_KERNEL_AVX512VPOPCNT
