#pragma once
/// \file kernels_detail.hpp
/// \brief Internal declarations of the per-ISA triple-block kernel
/// implementations.
///
/// Each vector implementation lives in its own translation unit
/// (kernels_avx2.cpp, kernels_avx512.cpp, kernels_avx512vpopcnt.cpp) that the
/// build system compiles with exactly the ISA flags that implementation
/// needs (-mavx2 / -mavx512f -mavx512bw / -mavx512vpopcntdq).  The dispatch
/// registry in kernels_dispatch.cpp is compiled portably and selects among
/// them at runtime via cpu_features(), so a binary built without
/// -march=native still carries every variant the compiler can emit and never
/// executes one the host cannot run.
///
/// Which variants were compiled in is communicated by the build system
/// through the TRIGEN_KERNEL_AVX2 / TRIGEN_KERNEL_AVX512 /
/// TRIGEN_KERNEL_AVX512VPOPCNT macros (target-wide compile definitions).
///
/// Every kernel parameter is __restrict-qualified: the engine never passes
/// aliasing planes (SNP indices of a combination are strictly increasing,
/// the pair path's constant z operands are dedicated buffers, and the V5
/// cache is written only by the build phase), and the qualifier lets the
/// compiler keep plane words in registers across the unrolled cell loops.

#include <cstddef>
#include <cstdint>

#include "trigen/core/kernels.hpp"

#if defined(_MSC_VER)
#define TRIGEN_RESTRICT __restrict
#else
#define TRIGEN_RESTRICT __restrict__
#endif

namespace trigen::core::detail {

// Defined in kernels_scalar.cpp; always present.
void triple_block_scalar(const Word* TRIGEN_RESTRICT x0,
                         const Word* TRIGEN_RESTRICT x1,
                         const Word* TRIGEN_RESTRICT y0,
                         const Word* TRIGEN_RESTRICT y1,
                         const Word* TRIGEN_RESTRICT z0,
                         const Word* TRIGEN_RESTRICT z1,
                         std::size_t w_begin, std::size_t w_end,
                         std::uint32_t* TRIGEN_RESTRICT ft27);
void pair_plane_build_scalar(const Word* TRIGEN_RESTRICT x0,
                             const Word* TRIGEN_RESTRICT x1,
                             const Word* TRIGEN_RESTRICT y0,
                             const Word* TRIGEN_RESTRICT y1,
                             std::size_t w_begin, std::size_t w_end,
                             Word* TRIGEN_RESTRICT xy, std::size_t stride,
                             std::uint32_t* TRIGEN_RESTRICT xy_pop9);
void triple_block_cached_scalar(const Word* TRIGEN_RESTRICT xy,
                                std::size_t stride,
                                const std::uint32_t* TRIGEN_RESTRICT xy_pop9,
                                const Word* TRIGEN_RESTRICT z0,
                                const Word* TRIGEN_RESTRICT z1,
                                std::size_t w_begin, std::size_t w_end,
                                std::uint32_t* TRIGEN_RESTRICT ft27);
void pair_plane_count_scalar(const Word* TRIGEN_RESTRICT x0,
                             const Word* TRIGEN_RESTRICT x1,
                             const Word* TRIGEN_RESTRICT y0,
                             const Word* TRIGEN_RESTRICT y1,
                             std::size_t w_begin, std::size_t w_end,
                             std::uint32_t* TRIGEN_RESTRICT xy_pop9);
void prefix_extend_scalar(const Word* TRIGEN_RESTRICT prefix,
                          std::size_t count, std::size_t stride,
                          const Word* TRIGEN_RESTRICT s0,
                          const Word* TRIGEN_RESTRICT s1, std::size_t w_begin,
                          std::size_t w_end, Word* TRIGEN_RESTRICT out,
                          std::size_t out_stride,
                          std::uint32_t* TRIGEN_RESTRICT out_pops);
void prefix_final_scalar(const Word* TRIGEN_RESTRICT prefix, std::size_t count,
                         std::size_t stride,
                         const std::uint32_t* TRIGEN_RESTRICT prefix_pops,
                         const Word* TRIGEN_RESTRICT z0,
                         const Word* TRIGEN_RESTRICT z1, std::size_t w_begin,
                         std::size_t w_end, std::uint32_t* TRIGEN_RESTRICT ft);
void tuple_block_scalar(const Word* const* TRIGEN_RESTRICT g0,
                        const Word* const* TRIGEN_RESTRICT g1, unsigned k,
                        std::size_t w_begin, std::size_t w_end,
                        std::uint32_t* TRIGEN_RESTRICT ft);
void batch_label_pops_scalar(const Word* TRIGEN_RESTRICT prefix,
                             std::size_t count, std::size_t stride,
                             const Word* TRIGEN_RESTRICT labels,
                             std::size_t num_labels, std::size_t lstride,
                             std::size_t w_begin, std::size_t w_end,
                             std::uint32_t* TRIGEN_RESTRICT label_pops);
void batch_final_scalar(const Word* TRIGEN_RESTRICT prefix, std::size_t count,
                        std::size_t stride,
                        const std::uint32_t* TRIGEN_RESTRICT prefix_pops,
                        const std::uint32_t* TRIGEN_RESTRICT label_pops,
                        const Word* TRIGEN_RESTRICT z0,
                        const Word* TRIGEN_RESTRICT z1,
                        const Word* TRIGEN_RESTRICT labels,
                        std::size_t num_labels, std::size_t lstride,
                        std::size_t w_begin, std::size_t w_end,
                        std::uint32_t* TRIGEN_RESTRICT ft,
                        std::size_t ft_stride);

#if defined(TRIGEN_KERNEL_AVX2)
// Defined in kernels_avx2.cpp (compiled with -mavx2).
void triple_block_avx2(const Word* TRIGEN_RESTRICT x0,
                       const Word* TRIGEN_RESTRICT x1,
                       const Word* TRIGEN_RESTRICT y0,
                       const Word* TRIGEN_RESTRICT y1,
                       const Word* TRIGEN_RESTRICT z0,
                       const Word* TRIGEN_RESTRICT z1,
                       std::size_t w_begin, std::size_t w_end,
                       std::uint32_t* TRIGEN_RESTRICT ft27);
void triple_block_avx2_harley_seal(const Word* TRIGEN_RESTRICT x0,
                                   const Word* TRIGEN_RESTRICT x1,
                                   const Word* TRIGEN_RESTRICT y0,
                                   const Word* TRIGEN_RESTRICT y1,
                                   const Word* TRIGEN_RESTRICT z0,
                                   const Word* TRIGEN_RESTRICT z1,
                                   std::size_t w_begin, std::size_t w_end,
                                   std::uint32_t* TRIGEN_RESTRICT ft27);
void pair_plane_build_avx2(const Word* TRIGEN_RESTRICT x0,
                           const Word* TRIGEN_RESTRICT x1,
                           const Word* TRIGEN_RESTRICT y0,
                           const Word* TRIGEN_RESTRICT y1,
                           std::size_t w_begin, std::size_t w_end,
                           Word* TRIGEN_RESTRICT xy, std::size_t stride,
                           std::uint32_t* TRIGEN_RESTRICT xy_pop9);
void triple_block_cached_avx2(const Word* TRIGEN_RESTRICT xy,
                              std::size_t stride,
                              const std::uint32_t* TRIGEN_RESTRICT xy_pop9,
                              const Word* TRIGEN_RESTRICT z0,
                              const Word* TRIGEN_RESTRICT z1,
                              std::size_t w_begin, std::size_t w_end,
                              std::uint32_t* TRIGEN_RESTRICT ft27);
void pair_plane_count_avx2(const Word* TRIGEN_RESTRICT x0,
                           const Word* TRIGEN_RESTRICT x1,
                           const Word* TRIGEN_RESTRICT y0,
                           const Word* TRIGEN_RESTRICT y1,
                           std::size_t w_begin, std::size_t w_end,
                           std::uint32_t* TRIGEN_RESTRICT xy_pop9);
void pair_plane_build_avx2_harley_seal(
    const Word* TRIGEN_RESTRICT x0, const Word* TRIGEN_RESTRICT x1,
    const Word* TRIGEN_RESTRICT y0, const Word* TRIGEN_RESTRICT y1,
    std::size_t w_begin, std::size_t w_end, Word* TRIGEN_RESTRICT xy,
    std::size_t stride, std::uint32_t* TRIGEN_RESTRICT xy_pop9);
void triple_block_cached_avx2_harley_seal(
    const Word* TRIGEN_RESTRICT xy, std::size_t stride,
    const std::uint32_t* TRIGEN_RESTRICT xy_pop9,
    const Word* TRIGEN_RESTRICT z0, const Word* TRIGEN_RESTRICT z1,
    std::size_t w_begin, std::size_t w_end,
    std::uint32_t* TRIGEN_RESTRICT ft27);
void pair_plane_count_avx2_harley_seal(
    const Word* TRIGEN_RESTRICT x0, const Word* TRIGEN_RESTRICT x1,
    const Word* TRIGEN_RESTRICT y0, const Word* TRIGEN_RESTRICT y1,
    std::size_t w_begin, std::size_t w_end,
    std::uint32_t* TRIGEN_RESTRICT xy_pop9);
void prefix_extend_avx2(const Word* TRIGEN_RESTRICT prefix, std::size_t count,
                        std::size_t stride, const Word* TRIGEN_RESTRICT s0,
                        const Word* TRIGEN_RESTRICT s1, std::size_t w_begin,
                        std::size_t w_end, Word* TRIGEN_RESTRICT out,
                        std::size_t out_stride,
                        std::uint32_t* TRIGEN_RESTRICT out_pops);
void prefix_final_avx2(const Word* TRIGEN_RESTRICT prefix, std::size_t count,
                       std::size_t stride,
                       const std::uint32_t* TRIGEN_RESTRICT prefix_pops,
                       const Word* TRIGEN_RESTRICT z0,
                       const Word* TRIGEN_RESTRICT z1, std::size_t w_begin,
                       std::size_t w_end, std::uint32_t* TRIGEN_RESTRICT ft);
void tuple_block_avx2(const Word* const* TRIGEN_RESTRICT g0,
                      const Word* const* TRIGEN_RESTRICT g1, unsigned k,
                      std::size_t w_begin, std::size_t w_end,
                      std::uint32_t* TRIGEN_RESTRICT ft);
void batch_label_pops_avx2(const Word* TRIGEN_RESTRICT prefix,
                           std::size_t count, std::size_t stride,
                           const Word* TRIGEN_RESTRICT labels,
                           std::size_t num_labels, std::size_t lstride,
                           std::size_t w_begin, std::size_t w_end,
                           std::uint32_t* TRIGEN_RESTRICT label_pops);
void batch_final_avx2(const Word* TRIGEN_RESTRICT prefix, std::size_t count,
                      std::size_t stride,
                      const std::uint32_t* TRIGEN_RESTRICT prefix_pops,
                      const std::uint32_t* TRIGEN_RESTRICT label_pops,
                      const Word* TRIGEN_RESTRICT z0,
                      const Word* TRIGEN_RESTRICT z1,
                      const Word* TRIGEN_RESTRICT labels,
                      std::size_t num_labels, std::size_t lstride,
                      std::size_t w_begin, std::size_t w_end,
                      std::uint32_t* TRIGEN_RESTRICT ft,
                      std::size_t ft_stride);
#endif

#if defined(TRIGEN_KERNEL_AVX512)
// Defined in kernels_avx512.cpp (compiled with -mavx512f -mavx512bw).
void triple_block_avx512_extract(const Word* TRIGEN_RESTRICT x0,
                                 const Word* TRIGEN_RESTRICT x1,
                                 const Word* TRIGEN_RESTRICT y0,
                                 const Word* TRIGEN_RESTRICT y1,
                                 const Word* TRIGEN_RESTRICT z0,
                                 const Word* TRIGEN_RESTRICT z1,
                                 std::size_t w_begin, std::size_t w_end,
                                 std::uint32_t* TRIGEN_RESTRICT ft27);
void pair_plane_build_avx512_extract(
    const Word* TRIGEN_RESTRICT x0, const Word* TRIGEN_RESTRICT x1,
    const Word* TRIGEN_RESTRICT y0, const Word* TRIGEN_RESTRICT y1,
    std::size_t w_begin, std::size_t w_end, Word* TRIGEN_RESTRICT xy,
    std::size_t stride, std::uint32_t* TRIGEN_RESTRICT xy_pop9);
void triple_block_cached_avx512_extract(
    const Word* TRIGEN_RESTRICT xy, std::size_t stride,
    const std::uint32_t* TRIGEN_RESTRICT xy_pop9,
    const Word* TRIGEN_RESTRICT z0, const Word* TRIGEN_RESTRICT z1,
    std::size_t w_begin, std::size_t w_end,
    std::uint32_t* TRIGEN_RESTRICT ft27);
void pair_plane_count_avx512_extract(
    const Word* TRIGEN_RESTRICT x0, const Word* TRIGEN_RESTRICT x1,
    const Word* TRIGEN_RESTRICT y0, const Word* TRIGEN_RESTRICT y1,
    std::size_t w_begin, std::size_t w_end,
    std::uint32_t* TRIGEN_RESTRICT xy_pop9);
void batch_label_pops_avx512(const Word* TRIGEN_RESTRICT prefix,
                             std::size_t count, std::size_t stride,
                             const Word* TRIGEN_RESTRICT labels,
                             std::size_t num_labels, std::size_t lstride,
                             std::size_t w_begin, std::size_t w_end,
                             std::uint32_t* TRIGEN_RESTRICT label_pops);
void batch_final_avx512(const Word* TRIGEN_RESTRICT prefix, std::size_t count,
                        std::size_t stride,
                        const std::uint32_t* TRIGEN_RESTRICT prefix_pops,
                        const std::uint32_t* TRIGEN_RESTRICT label_pops,
                        const Word* TRIGEN_RESTRICT z0,
                        const Word* TRIGEN_RESTRICT z1,
                        const Word* TRIGEN_RESTRICT labels,
                        std::size_t num_labels, std::size_t lstride,
                        std::size_t w_begin, std::size_t w_end,
                        std::uint32_t* TRIGEN_RESTRICT ft,
                        std::size_t ft_stride);
#endif

#if defined(TRIGEN_KERNEL_AVX512VPOPCNT)
// Defined in kernels_avx512vpopcnt.cpp (compiled with -mavx512vpopcntdq).
void triple_block_avx512_vpopcnt(const Word* TRIGEN_RESTRICT x0,
                                 const Word* TRIGEN_RESTRICT x1,
                                 const Word* TRIGEN_RESTRICT y0,
                                 const Word* TRIGEN_RESTRICT y1,
                                 const Word* TRIGEN_RESTRICT z0,
                                 const Word* TRIGEN_RESTRICT z1,
                                 std::size_t w_begin, std::size_t w_end,
                                 std::uint32_t* TRIGEN_RESTRICT ft27);
void pair_plane_build_avx512_vpopcnt(
    const Word* TRIGEN_RESTRICT x0, const Word* TRIGEN_RESTRICT x1,
    const Word* TRIGEN_RESTRICT y0, const Word* TRIGEN_RESTRICT y1,
    std::size_t w_begin, std::size_t w_end, Word* TRIGEN_RESTRICT xy,
    std::size_t stride, std::uint32_t* TRIGEN_RESTRICT xy_pop9);
void triple_block_cached_avx512_vpopcnt(
    const Word* TRIGEN_RESTRICT xy, std::size_t stride,
    const std::uint32_t* TRIGEN_RESTRICT xy_pop9,
    const Word* TRIGEN_RESTRICT z0, const Word* TRIGEN_RESTRICT z1,
    std::size_t w_begin, std::size_t w_end,
    std::uint32_t* TRIGEN_RESTRICT ft27);
void pair_plane_count_avx512_vpopcnt(
    const Word* TRIGEN_RESTRICT x0, const Word* TRIGEN_RESTRICT x1,
    const Word* TRIGEN_RESTRICT y0, const Word* TRIGEN_RESTRICT y1,
    std::size_t w_begin, std::size_t w_end,
    std::uint32_t* TRIGEN_RESTRICT xy_pop9);
void batch_label_pops_avx512_vpopcnt(
    const Word* TRIGEN_RESTRICT prefix, std::size_t count, std::size_t stride,
    const Word* TRIGEN_RESTRICT labels, std::size_t num_labels,
    std::size_t lstride, std::size_t w_begin, std::size_t w_end,
    std::uint32_t* TRIGEN_RESTRICT label_pops);
void batch_final_avx512_vpopcnt(
    const Word* TRIGEN_RESTRICT prefix, std::size_t count, std::size_t stride,
    const std::uint32_t* TRIGEN_RESTRICT prefix_pops,
    const std::uint32_t* TRIGEN_RESTRICT label_pops,
    const Word* TRIGEN_RESTRICT z0, const Word* TRIGEN_RESTRICT z1,
    const Word* TRIGEN_RESTRICT labels, std::size_t num_labels,
    std::size_t lstride, std::size_t w_begin, std::size_t w_end,
    std::uint32_t* TRIGEN_RESTRICT ft, std::size_t ft_stride);
#endif

}  // namespace trigen::core::detail
