#pragma once
/// \file kernels_detail.hpp
/// \brief Internal declarations of the per-ISA triple-block kernel
/// implementations.
///
/// Each vector implementation lives in its own translation unit
/// (kernels_avx2.cpp, kernels_avx512.cpp, kernels_avx512vpopcnt.cpp) that the
/// build system compiles with exactly the ISA flags that implementation
/// needs (-mavx2 / -mavx512f -mavx512bw / -mavx512vpopcntdq).  The dispatch
/// registry in kernels_dispatch.cpp is compiled portably and selects among
/// them at runtime via cpu_features(), so a binary built without
/// -march=native still carries every variant the compiler can emit and never
/// executes one the host cannot run.
///
/// Which variants were compiled in is communicated by the build system
/// through the TRIGEN_KERNEL_AVX2 / TRIGEN_KERNEL_AVX512 /
/// TRIGEN_KERNEL_AVX512VPOPCNT macros (target-wide compile definitions).

#include <cstddef>
#include <cstdint>

#include "trigen/core/kernels.hpp"

namespace trigen::core::detail {

// Defined in kernels_scalar.cpp; always present.
void triple_block_scalar(const Word* x0, const Word* x1, const Word* y0,
                         const Word* y1, const Word* z0, const Word* z1,
                         std::size_t w_begin, std::size_t w_end,
                         std::uint32_t* ft27);

#if defined(TRIGEN_KERNEL_AVX2)
// Defined in kernels_avx2.cpp (compiled with -mavx2).
void triple_block_avx2(const Word* x0, const Word* x1, const Word* y0,
                       const Word* y1, const Word* z0, const Word* z1,
                       std::size_t w_begin, std::size_t w_end,
                       std::uint32_t* ft27);
void triple_block_avx2_harley_seal(const Word* x0, const Word* x1,
                                   const Word* y0, const Word* y1,
                                   const Word* z0, const Word* z1,
                                   std::size_t w_begin, std::size_t w_end,
                                   std::uint32_t* ft27);
#endif

#if defined(TRIGEN_KERNEL_AVX512)
// Defined in kernels_avx512.cpp (compiled with -mavx512f -mavx512bw).
void triple_block_avx512_extract(const Word* x0, const Word* x1, const Word* y0,
                                 const Word* y1, const Word* z0, const Word* z1,
                                 std::size_t w_begin, std::size_t w_end,
                                 std::uint32_t* ft27);
#endif

#if defined(TRIGEN_KERNEL_AVX512VPOPCNT)
// Defined in kernels_avx512vpopcnt.cpp (compiled with -mavx512vpopcntdq).
void triple_block_avx512_vpopcnt(const Word* x0, const Word* x1, const Word* y0,
                                 const Word* y1, const Word* z0, const Word* z1,
                                 std::size_t w_begin, std::size_t w_end,
                                 std::uint32_t* ft27);
#endif

}  // namespace trigen::core::detail
