/// \file kernels_avx512.cpp
/// \brief AVX-512 + extract triple-block kernel (Skylake-SP strategy).
///
/// Compiled with -mavx512f -mavx512bw regardless of the global architecture
/// flags; only executed after the runtime dispatcher confirms support.

#include "kernels_detail.hpp"

#include <bit>

#if defined(TRIGEN_KERNEL_AVX512)
#include <immintrin.h>

namespace trigen::core::detail {
namespace {

/// Skylake-SP strategy: two-level extraction feeding the scalar POPCNT unit
/// (the overhead that makes CI2 the slowest CPU per core in Fig. 3).
inline std::uint32_t popcnt512_extract(__m512i v) {
  const __m256i lo = _mm512_extracti64x4_epi64(v, 0);
  const __m256i hi = _mm512_extracti64x4_epi64(v, 1);
  return static_cast<std::uint32_t>(
      std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(lo, 0))) +
      std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(lo, 1))) +
      std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(lo, 2))) +
      std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(lo, 3))) +
      std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(hi, 0))) +
      std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(hi, 1))) +
      std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(hi, 2))) +
      std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(hi, 3))));
}

}  // namespace

void triple_block_avx512_extract(const Word* TRIGEN_RESTRICT x0,
                                 const Word* TRIGEN_RESTRICT x1,
                                 const Word* TRIGEN_RESTRICT y0,
                                 const Word* TRIGEN_RESTRICT y1,
                                 const Word* TRIGEN_RESTRICT z0,
                                 const Word* TRIGEN_RESTRICT z1,
                                 std::size_t w_begin, std::size_t w_end,
                                 std::uint32_t* TRIGEN_RESTRICT ft27) {
  const __m512i ones = _mm512_set1_epi32(-1);
  std::size_t w = w_begin;
  for (; w + 16 <= w_end; w += 16) {
    __m512i xg[3], yg[3], zg[3];
    xg[0] = _mm512_loadu_si512(reinterpret_cast<const void*>(x0 + w));
    xg[1] = _mm512_loadu_si512(reinterpret_cast<const void*>(x1 + w));
    xg[2] = _mm512_xor_si512(_mm512_or_si512(xg[0], xg[1]), ones);
    yg[0] = _mm512_loadu_si512(reinterpret_cast<const void*>(y0 + w));
    yg[1] = _mm512_loadu_si512(reinterpret_cast<const void*>(y1 + w));
    yg[2] = _mm512_xor_si512(_mm512_or_si512(yg[0], yg[1]), ones);
    zg[0] = _mm512_loadu_si512(reinterpret_cast<const void*>(z0 + w));
    zg[1] = _mm512_loadu_si512(reinterpret_cast<const void*>(z1 + w));
    zg[2] = _mm512_xor_si512(_mm512_or_si512(zg[0], zg[1]), ones);

    int cell = 0;
    for (int gx = 0; gx < 3; ++gx) {
      for (int gy = 0; gy < 3; ++gy) {
        const __m512i xy = _mm512_and_si512(xg[gx], yg[gy]);
        for (int gz = 0; gz < 3; ++gz) {
          ft27[cell++] += popcnt512_extract(_mm512_and_si512(xy, zg[gz]));
        }
      }
    }
  }
  triple_block_scalar(x0, x1, y0, y1, z0, z1, w, w_end, ft27);
}

void pair_plane_build_avx512_extract(
    const Word* TRIGEN_RESTRICT x0, const Word* TRIGEN_RESTRICT x1,
    const Word* TRIGEN_RESTRICT y0, const Word* TRIGEN_RESTRICT y1,
    std::size_t w_begin, std::size_t w_end, Word* TRIGEN_RESTRICT xy,
    std::size_t stride, std::uint32_t* TRIGEN_RESTRICT xy_pop9) {
  const __m512i ones = _mm512_set1_epi32(-1);
  std::size_t w = w_begin;
  for (; w + 16 <= w_end; w += 16) {
    __m512i xg[3], yg[3];
    xg[0] = _mm512_loadu_si512(reinterpret_cast<const void*>(x0 + w));
    xg[1] = _mm512_loadu_si512(reinterpret_cast<const void*>(x1 + w));
    xg[2] = _mm512_xor_si512(_mm512_or_si512(xg[0], xg[1]), ones);
    yg[0] = _mm512_loadu_si512(reinterpret_cast<const void*>(y0 + w));
    yg[1] = _mm512_loadu_si512(reinterpret_cast<const void*>(y1 + w));
    yg[2] = _mm512_xor_si512(_mm512_or_si512(yg[0], yg[1]), ones);
    const std::size_t rel = w - w_begin;
    for (int p = 0; p < 9; ++p) {
      const __m512i v = _mm512_and_si512(xg[p / 3], yg[p % 3]);
      _mm512_storeu_si512(
          reinterpret_cast<void*>(xy + static_cast<std::size_t>(p) * stride +
                                  rel),
          v);
      xy_pop9[p] += popcnt512_extract(v);
    }
  }
  pair_plane_build_scalar(x0, x1, y0, y1, w, w_end, xy + (w - w_begin),
                          stride, xy_pop9);
}

void pair_plane_count_avx512_extract(
    const Word* TRIGEN_RESTRICT x0, const Word* TRIGEN_RESTRICT x1,
    const Word* TRIGEN_RESTRICT y0, const Word* TRIGEN_RESTRICT y1,
    std::size_t w_begin, std::size_t w_end,
    std::uint32_t* TRIGEN_RESTRICT xy_pop9) {
  const __m512i ones = _mm512_set1_epi32(-1);
  std::size_t w = w_begin;
  for (; w + 16 <= w_end; w += 16) {
    __m512i xg[3], yg[3];
    xg[0] = _mm512_loadu_si512(reinterpret_cast<const void*>(x0 + w));
    xg[1] = _mm512_loadu_si512(reinterpret_cast<const void*>(x1 + w));
    xg[2] = _mm512_xor_si512(_mm512_or_si512(xg[0], xg[1]), ones);
    yg[0] = _mm512_loadu_si512(reinterpret_cast<const void*>(y0 + w));
    yg[1] = _mm512_loadu_si512(reinterpret_cast<const void*>(y1 + w));
    yg[2] = _mm512_xor_si512(_mm512_or_si512(yg[0], yg[1]), ones);
    for (int p = 0; p < 9; ++p) {
      xy_pop9[p] += popcnt512_extract(_mm512_and_si512(xg[p / 3], yg[p % 3]));
    }
  }
  pair_plane_count_scalar(x0, x1, y0, y1, w, w_end, xy_pop9);
}

void triple_block_cached_avx512_extract(
    const Word* TRIGEN_RESTRICT xy, std::size_t stride,
    const std::uint32_t* TRIGEN_RESTRICT xy_pop9,
    const Word* TRIGEN_RESTRICT z0, const Word* TRIGEN_RESTRICT z1,
    std::size_t w_begin, std::size_t w_end,
    std::uint32_t* TRIGEN_RESTRICT ft27) {
  for (int p = 0; p < 9; ++p) {
    const Word* TRIGEN_RESTRICT xyp =
        xy + static_cast<std::size_t>(p) * stride;
    std::uint32_t c0 = 0;
    std::uint32_t c1 = 0;
    std::size_t w = w_begin;
    for (; w + 16 <= w_end; w += 16) {
      const __m512i v =
          _mm512_loadu_si512(reinterpret_cast<const void*>(xyp + (w - w_begin)));
      c0 += popcnt512_extract(_mm512_and_si512(
          v, _mm512_loadu_si512(reinterpret_cast<const void*>(z0 + w))));
      c1 += popcnt512_extract(_mm512_and_si512(
          v, _mm512_loadu_si512(reinterpret_cast<const void*>(z1 + w))));
    }
    for (; w < w_end; ++w) {
      const Word v = xyp[w - w_begin];
      c0 += static_cast<std::uint32_t>(std::popcount(v & z0[w]));
      c1 += static_cast<std::uint32_t>(std::popcount(v & z1[w]));
    }
    const int cell = (p / 3) * 9 + (p % 3) * 3;
    ft27[cell] += c0;
    ft27[cell + 1] += c1;
    ft27[cell + 2] += xy_pop9[p] - c0 - c1;
  }
}

}  // namespace trigen::core::detail

#endif  // TRIGEN_KERNEL_AVX512
