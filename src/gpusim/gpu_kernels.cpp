#include "trigen/gpusim/gpu_kernels.hpp"

#include <bit>

#include "trigen/core/kernels.hpp"

namespace trigen::gpusim {

using dataset::Word;

std::string gpu_version_name(GpuVersion v) {
  switch (v) {
    case GpuVersion::kV1Naive: return "V1-naive";
    case GpuVersion::kV2Split: return "V2-split";
    case GpuVersion::kV3Transposed: return "V3-transposed";
    case GpuVersion::kV4Tiled: return "V4-tiled";
  }
  return "unknown";
}

scoring::ContingencyTable gpu_thread_v1(const dataset::BitPlanesV1& p,
                                        std::size_t x, std::size_t y,
                                        std::size_t z) {
  // Identical arithmetic to the CPU V1 kernel; on the GPU this is executed
  // by one thread with strided (gather-like) loads.
  return core::contingency_v1(p, x, y, z);
}

scoring::ContingencyTable gpu_thread_v2(const dataset::PhenoSplitPlanes& p,
                                        std::size_t x, std::size_t y,
                                        std::size_t z) {
  return core::contingency_split(p, x, y, z, core::KernelIsa::kScalar);
}

namespace {

/// Algorithm 2 body over a layout with a `word(c, w, snp, g)` accessor.
template <typename Layout>
scoring::ContingencyTable algorithm2(const Layout& p, std::size_t x,
                                     std::size_t y, std::size_t z) {
  scoring::ContingencyTable t;
  for (int c = 0; c < 2; ++c) {
    auto& row = t.counts[static_cast<std::size_t>(c)];
    for (std::size_t w = 0; w < p.words(c); ++w) {
      Word xg[3], yg[3], zg[3];
      xg[0] = p.word(c, w, x, 0);
      xg[1] = p.word(c, w, x, 1);
      xg[2] = ~(xg[0] | xg[1]);
      yg[0] = p.word(c, w, y, 0);
      yg[1] = p.word(c, w, y, 1);
      yg[2] = ~(yg[0] | yg[1]);
      zg[0] = p.word(c, w, z, 0);
      zg[1] = p.word(c, w, z, 1);
      zg[2] = ~(zg[0] | zg[1]);
      int cell = 0;
      for (int gx = 0; gx < 3; ++gx) {
        for (int gy = 0; gy < 3; ++gy) {
          const Word xy = xg[gx] & yg[gy];
          for (int gz = 0; gz < 3; ++gz) {
            row[static_cast<std::size_t>(cell++)] +=
                static_cast<std::uint32_t>(std::popcount(xy & zg[gz]));
          }
        }
      }
    }
    row[26] -= static_cast<std::uint32_t>(p.pad_bits(c));
  }
  return t;
}

}  // namespace

scoring::ContingencyTable gpu_thread_v3(const dataset::TransposedPlanes& p,
                                        std::size_t x, std::size_t y,
                                        std::size_t z) {
  return algorithm2(p, x, y, z);
}

scoring::ContingencyTable gpu_thread_v4(const dataset::TiledPlanes& p,
                                        std::size_t x, std::size_t y,
                                        std::size_t z) {
  return algorithm2(p, x, y, z);
}

}  // namespace trigen::gpusim
