#include "trigen/gpusim/simulator.hpp"

#include <stdexcept>

#include "trigen/common/stopwatch.hpp"

namespace trigen::gpusim {

using combinatorics::Triplet;
using scoring::ContingencyTable;

struct GpuSimulator::Impl {
  GpuDeviceSpec spec;
  std::size_t num_snps;
  std::size_t num_samples;
  std::uint64_t words_total;
  dataset::BitPlanesV1 v1;
  dataset::PhenoSplitPlanes split;
  dataset::TransposedPlanes transposed;
  dataset::TiledPlanes tiled;
};

GpuSimulator::GpuSimulator(GpuDeviceSpec spec,
                           const dataset::GenotypeMatrix& d) {
  if (d.num_snps() < 3) {
    throw std::invalid_argument("GpuSimulator: need at least 3 SNPs");
  }
  // Tile width: 64 for most devices (a multiple of 32/64, §IV-B); built
  // once here with the default and rebuilt lazily is unnecessary since the
  // tiled accessor is tile-size agnostic functionally.
  constexpr std::size_t kTile = 64;
  auto split = dataset::PhenoSplitPlanes::build(d);
  const std::uint64_t words_total = split.words(0) + split.words(1);
  impl_ = std::make_unique<Impl>(Impl{
      std::move(spec),
      d.num_snps(),
      d.num_samples(),
      words_total,
      dataset::BitPlanesV1::build(d),
      std::move(split),
      dataset::TransposedPlanes::build(d),
      dataset::TiledPlanes::build(d, kTile),
  });
}

GpuSimulator::~GpuSimulator() = default;

const GpuDeviceSpec& GpuSimulator::spec() const { return impl_->spec; }
std::size_t GpuSimulator::num_snps() const { return impl_->num_snps; }
std::size_t GpuSimulator::num_samples() const { return impl_->num_samples; }

GpuRunResult GpuSimulator::run(const GpuRunOptions& options) const {
  if (options.top_k == 0) {
    throw std::invalid_argument("GpuRunOptions::top_k must be >= 1");
  }
  if (options.launch.bsched == 0 || options.launch.bs == 0) {
    throw std::invalid_argument("GpuRunOptions: launch parameters must be non-zero");
  }
  const std::uint64_t total = combinatorics::num_triplets(impl_->num_snps);
  combinatorics::RankRange range = options.range;
  if (range.empty()) range = {0, total};
  if (range.last > total) {
    throw std::invalid_argument("GpuRunOptions: rank range exceeds space");
  }

  GpuRunResult result;
  result.triplets = range.size();
  result.elements = range.size() * impl_->num_samples;

  // One enqueue covers B_Sched^3 combinations (§IV-B).
  const std::uint64_t per_launch =
      static_cast<std::uint64_t>(options.launch.bsched) *
      options.launch.bsched * options.launch.bsched;
  result.launches = (range.size() + per_launch - 1) / per_launch;

  const auto scorer = core::make_normalized_scorer(
      options.objective, static_cast<std::uint32_t>(impl_->num_samples));

  core::TopK top(options.top_k);
  Stopwatch sw;
  // Functional execution: per-thread work of Algorithm 2, one thread per
  // combination, in launch order.
  combinatorics::for_each_triplet(
      range.first, range.last, [&](const Triplet& t) {
        ContingencyTable table;
        switch (options.version) {
          case GpuVersion::kV1Naive:
            table = gpu_thread_v1(impl_->v1, t.x, t.y, t.z);
            break;
          case GpuVersion::kV2Split:
            table = gpu_thread_v2(impl_->split, t.x, t.y, t.z);
            break;
          case GpuVersion::kV3Transposed:
            table = gpu_thread_v3(impl_->transposed, t.x, t.y, t.z);
            break;
          case GpuVersion::kV4Tiled:
            table = gpu_thread_v4(impl_->tiled, t.x, t.y, t.z);
            break;
        }
        top.push(core::ScoredTriplet{t, scorer(table)});
      });
  result.host_seconds = sw.seconds();
  result.best = top.sorted();

  WorkloadShape shape{range.size(), impl_->num_samples, impl_->words_total};
  result.cost = estimate_gpu_cost(impl_->spec, options.version, shape,
                                  options.launch);
  return result;
}

}  // namespace trigen::gpusim
