#include "trigen/gpusim/device_spec.hpp"

#include <stdexcept>

namespace trigen::gpusim {

std::string vendor_name(Vendor v) {
  switch (v) {
    case Vendor::kIntel: return "Intel";
    case Vendor::kNvidia: return "NVIDIA";
    case Vendor::kAmd: return "AMD";
  }
  return "unknown";
}

namespace {

// Vendor-level sustained-efficiency calibration (fraction of the peak
// POPCNT throughput of Table II a tuned kernel sustains).  Values were
// fitted once against the paper's Fig. 4b per-cycle-per-CU measurements:
// NVIDIA/AMD kernels sustain ~80% of peak; the Intel Gen9.5/Gen12 EUs
// co-issue poorly for this instruction mix and sustain ~45%.
constexpr double kEffNvidia = 0.80;
constexpr double kEffAmd = 0.80;
constexpr double kEffIntel = 0.45;

std::vector<GpuDeviceSpec> make_gpu_db() {
  // id, name, arch, vendor, GHz, CUs, stream cores, POPCNT/CU/cycle,
  // mem BW [GB/s], TDP [W], efficiency.
  return {
      {"GI1", "Intel Graphics UHD P630", "Gen9.5", Vendor::kIntel, 1.200, 24,
       192, 4, 41.6, 15, kEffIntel},
      {"GI2", "Intel Iris Xe MAX", "Gen12", Vendor::kIntel, 1.650, 96, 768, 4,
       68.0, 25, kEffIntel},
      {"GN1", "NVIDIA Titan Xp", "Pascal", Vendor::kNvidia, 1.582, 30, 3840,
       32, 547.6, 250, kEffNvidia},
      {"GN2", "NVIDIA Titan V", "Volta", Vendor::kNvidia, 1.455, 80, 5120, 16,
       652.8, 250, kEffNvidia},
      {"GN3", "NVIDIA Titan RTX", "Turing", Vendor::kNvidia, 1.770, 72, 4608,
       16, 672.0, 280, kEffNvidia},
      {"GN4", "NVIDIA A100 (250W)", "Ampere", Vendor::kNvidia, 1.410, 108,
       6912, 16, 1555.0, 250, kEffNvidia},
      {"GA1", "AMD Radeon Pro VII", "Vega20", Vendor::kAmd, 1.700, 60, 3840,
       12, 1024.0, 250, kEffAmd},
      {"GA2", "AMD Instinct Mi100", "CDNA", Vendor::kAmd, 1.502, 120, 7680,
       12, 1228.8, 300, kEffAmd},
      {"GA3", "AMD Radeon RX 6900 XT", "RDNA2", Vendor::kAmd, 2.250, 80, 5120,
       10, 512.0, 300, kEffAmd},
  };
}

std::vector<CpuDeviceSpec> make_cpu_db() {
  // id, name, arch, GHz, cores, vector bits, vector POPCNT, L1D, ways, TDP.
  return {
      {"CI1", "Intel Core i7-8700K", "SKL", 3.7, 6, 256, false, 32 * 1024, 8,
       95},
      {"CI2", "(2x) Intel Xeon Gold 6140", "SKX", 2.3, 36, 512, false,
       32 * 1024, 8, 2 * 140},
      {"CI3", "(2x) Intel Xeon Platinum 8360Y", "ICX", 2.4, 72, 512, true,
       48 * 1024, 12, 2 * 250},
      {"CA1", "AMD EPYC 7601", "Zen", 2.2, 64, 128, false, 32 * 1024, 8, 180},
      {"CA2", "AMD EPYC 7302P", "Zen2", 3.0, 16, 256, false, 32 * 1024, 8,
       155},
  };
}

}  // namespace

const std::vector<GpuDeviceSpec>& gpu_device_db() {
  static const std::vector<GpuDeviceSpec> db = make_gpu_db();
  return db;
}

const GpuDeviceSpec& gpu_device(const std::string& id) {
  for (const auto& d : gpu_device_db()) {
    if (d.id == id) return d;
  }
  throw std::invalid_argument("unknown GPU device id: " + id);
}

const std::vector<CpuDeviceSpec>& cpu_device_db() {
  static const std::vector<CpuDeviceSpec> db = make_cpu_db();
  return db;
}

const CpuDeviceSpec& cpu_device(const std::string& id) {
  for (const auto& d : cpu_device_db()) {
    if (d.id == id) return d;
  }
  throw std::invalid_argument("unknown CPU device id: " + id);
}

}  // namespace trigen::gpusim
