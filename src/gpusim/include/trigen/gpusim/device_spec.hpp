#pragma once
/// \file device_spec.hpp
/// \brief Device model database: the 5 CPUs and 8 GPUs of paper Tables I/II.
///
/// No physical GPU is attached to this build environment, so the GPU side
/// of the paper is reproduced with an execution-model simulator (see
/// simulator.hpp).  The simulator is parameterized by these specs; the
/// micro-architectural numbers (compute units, stream cores, POPCNT/CU/
/// cycle, frequencies) are copied from Tables I and II, and the memory
/// bandwidths / TDPs from the public vendor datasheets of each card (the
/// paper quotes TDPs for GI2 and GN3 in §V-D, which match these values).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace trigen::gpusim {

/// GPU vendor, used for vendor-level defaults in the cost model.
enum class Vendor { kIntel, kNvidia, kAmd };

std::string vendor_name(Vendor v);

/// One GPU device (paper Table II row + datasheet bandwidth/TDP).
struct GpuDeviceSpec {
  std::string id;      ///< paper system id, e.g. "GN1"
  std::string name;    ///< marketing name, e.g. "NVIDIA Titan Xp"
  std::string arch;    ///< micro-architecture, e.g. "Pascal"
  Vendor vendor = Vendor::kNvidia;
  double boost_ghz = 1.0;          ///< boost frequency [GHz]
  unsigned compute_units = 1;      ///< SMs / EU-subslices / CUs
  unsigned stream_cores = 1;       ///< CUDA cores / SIMD instances / stream cores
  double popcnt_per_cu_cycle = 1;  ///< POPCNT throughput per CU per cycle (Table II)
  double mem_bw_gbs = 100;         ///< DRAM bandwidth [GB/s] (datasheet)
  double tdp_w = 100;              ///< board power [W] (datasheet)
  /// Fraction of peak POPCNT throughput a well-tuned kernel sustains.
  /// Calibrated per vendor so that absolute per-CU numbers land in the
  /// paper's measured range; the *ranking* is independent of it.
  double compute_efficiency = 0.8;

  /// Stream cores per compute unit.
  double cores_per_cu() const {
    return static_cast<double>(stream_cores) / compute_units;
  }
};

/// One CPU device (paper Table I row).
struct CpuDeviceSpec {
  std::string id;    ///< e.g. "CI3"
  std::string name;  ///< e.g. "(2x) Intel Xeon Platinum 8360Y"
  std::string arch;  ///< e.g. "ICX"
  double base_ghz = 1.0;
  unsigned cores = 1;        ///< total cores (both sockets where applicable)
  unsigned vector_bits = 256;  ///< widest supported vector ISA
  bool vector_popcnt = false;  ///< AVX512-VPOPCNTDQ support (Ice Lake SP+)
  std::size_t l1d_bytes = 32 * 1024;
  unsigned l1d_ways = 8;
  double tdp_w = 100;

  /// 32-bit lanes in the vector registers.
  unsigned vector_lanes() const { return vector_bits / 32; }
};

/// The 8 GPUs of Table II.
const std::vector<GpuDeviceSpec>& gpu_device_db();

/// Plus GI1's host CPU pairing used in Table III ([30] row) — all 9 GPUs
/// referenced anywhere in the evaluation (Table II lists 9 rows including
/// both Intel parts).
const GpuDeviceSpec& gpu_device(const std::string& id);

/// The 5 CPUs of Table I.
const std::vector<CpuDeviceSpec>& cpu_device_db();
const CpuDeviceSpec& cpu_device(const std::string& id);

}  // namespace trigen::gpusim
