#pragma once
/// \file cost_model.hpp
/// \brief Analytic performance model of the GPU (and projected CPU) runs.
///
/// The simulator separates *function* (gpu_kernels.hpp, bit-exact) from
/// *performance*, which this model estimates with a roofline over two
/// ceilings derived from the paper's own analysis (§V-C/D):
///
///  1. **Compute**: the paper shows the tuned kernels are bound by POPCNT
///     throughput: CUs x POPCNT/CU/cycle x frequency (Table II), derated by
///     a vendor-calibrated sustained-efficiency factor.  Non-POPCNT logic
///     ops execute on the full stream-core pool and are modelled as a
///     second ceiling.
///  2. **Memory**: DRAM traffic = useful bytes / (coalescing efficiency x
///     reuse).  Row-major layouts (V1/V2) waste 7/8 of every transaction
///     (one 4-byte word used per 32-byte transaction); the transposed
///     layout (V3) is fully coalesced; SNP-plane reuse across the B_Sched^3
///     combinations of one launch is what actually lifts V3/V4 out of the
///     DRAM roof.
///
/// Per-word operation counts follow §IV-A.  The paper's published counts
/// (162 for V1, 57 for V2+) hoist the NORs and count one "AND step" per
/// cell; the exact per-instruction counts are also provided — CARM reports
/// can print either convention (see DESIGN.md §7).

#include <cstdint>
#include <string>

#include "trigen/gpusim/device_spec.hpp"
#include "trigen/gpusim/gpu_kernels.hpp"

namespace trigen::gpusim {

/// Shape of one exhaustive scan.
struct WorkloadShape {
  std::uint64_t triplets = 0;   ///< combinations evaluated
  std::uint64_t samples = 0;    ///< N (cases + controls)
  std::uint64_t words_total = 0;  ///< sample words per SNP summed over classes
};

/// Op-count conventions (DESIGN.md §7).
enum class OpCountModel {
  kPaper,  ///< 162 (V1) / 57 (V2+) ops per word, as printed in §IV-A
  kExact,  ///< per-instruction count incl. hoisted NORs and X&Y partials
};

/// Per-word instruction mix of one version.
struct OpMix {
  double popcnt = 0;  ///< POPCNT instructions per sample word per triplet
  double logic = 0;   ///< AND/OR/XOR instructions per sample word per triplet
  double loads = 0;   ///< 32-bit loads per sample word per triplet
  double total() const { return popcnt + logic + loads; }
};

/// Instruction mix per word for `v` under `model` (loads excluded from the
/// "compute instructions" the paper counts; reported separately).
OpMix op_mix(GpuVersion v, OpCountModel model = OpCountModel::kExact);

/// Arithmetic intensity [intop/byte] of version `v` — compute instructions
/// over bytes of memory traffic — for the CARM plots.
double arithmetic_intensity(GpuVersion v,
                            OpCountModel model = OpCountModel::kExact);

/// Launch configuration <B_Sched, B_S> of §IV-B.
struct LaunchConfig {
  std::size_t bsched = 256;  ///< combinations block edge per enqueue
  std::size_t bs = 64;       ///< SNP tile width / thread-group size
};

/// Where the roofline landed.
enum class BoundBy { kPopcnt, kLogic, kMemory };
std::string bound_by_name(BoundBy b);

/// Cost estimate of one scan.
struct CostEstimate {
  double seconds = 0;          ///< simulated wall time
  double t_popcnt = 0;         ///< POPCNT-ceiling time
  double t_logic = 0;          ///< logic-ceiling time
  double t_memory = 0;         ///< DRAM-ceiling time
  BoundBy bound = BoundBy::kPopcnt;
  double elements_per_second = 0;  ///< paper metric: combs x samples / s
  double gintops = 0;          ///< compute throughput achieved [GINTOP/s]
  double ai = 0;               ///< arithmetic intensity [intop/byte]
};

/// Roofline estimate for device `dev`, version `v`, workload `w`.
CostEstimate estimate_gpu_cost(const GpuDeviceSpec& dev, GpuVersion v,
                               const WorkloadShape& w,
                               const LaunchConfig& launch = {},
                               OpCountModel model = OpCountModel::kExact);

/// Energy estimate: elements per joule at TDP (§V-D efficiency discussion).
double elements_per_joule(const GpuDeviceSpec& dev, double elements_per_second);

// ---------------------------------------------------------------------------
// CPU projection (Fig. 3 / Table III CPU rows)
// ---------------------------------------------------------------------------

/// Vectorization strategy class of a CPU (drives the per-core rate).
enum class CpuStrategyClass {
  kAvx128ScalarPopcnt,   ///< Zen: 128-bit vectors + scalar POPCNT
  kAvx256ScalarPopcnt,   ///< SKL/Zen2: 256-bit vectors + scalar POPCNT
  kAvx512ScalarPopcnt,   ///< SKX: 512-bit vectors + double-extract POPCNT
  kAvx512VectorPopcnt,   ///< ICX: VPOPCNTDQ
};

std::string cpu_strategy_name(CpuStrategyClass c);

/// Elements/cycle/core rates per strategy class.  Defaults are the paper's
/// Fig.-3b measurements; the Fig.-3 bench replaces entries with rates
/// measured on the host for every ISA the host can execute.
struct CpuIsaRates {
  double avx128 = 1.70;
  double avx256 = 1.66;
  double avx512_extract = 1.40;
  double avx512_vpopcnt = 6.40;

  double rate(CpuStrategyClass c) const;
};

/// Strategy class a CPU spec uses when allowed to use its widest ISA
/// (`use_avx512 = false` forces the AVX fallback the paper also measures).
CpuStrategyClass cpu_strategy(const CpuDeviceSpec& dev, bool use_avx512);

/// Projected elements/second for a Table-I CPU.
double project_cpu_elements_per_sec(const CpuDeviceSpec& dev, bool use_avx512,
                                    const CpuIsaRates& rates = {});

}  // namespace trigen::gpusim
