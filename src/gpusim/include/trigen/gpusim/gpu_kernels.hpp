#pragma once
/// \file gpu_kernels.hpp
/// \brief Functional host execution of the paper's GPU kernels (§IV-B).
///
/// These functions execute, on the host, exactly the per-thread work of
/// Algorithm 2 for each GPU version, reading the same data layout the GPU
/// version would read.  They make the simulator *functionally* exact — a
/// simulated run produces bit-identical contingency tables and scores to
/// the CPU detector — while the performance side is handled by the cost
/// model (cost_model.hpp).

#include "trigen/dataset/bitplanes.hpp"
#include "trigen/scoring/contingency.hpp"

namespace trigen::gpusim {

/// Which rung of the paper's GPU optimization ladder.
enum class GpuVersion {
  kV1Naive,       ///< Fig.-1 layout, one thread per combination
  kV2Split,       ///< phenotype-split planes, genotype-2 inferred
  kV3Transposed,  ///< + SNP-minor layout (coalesced loads)
  kV4Tiled,       ///< + BS-wide SNP tiles (Algorithm 2 as printed)
};

std::string gpu_version_name(GpuVersion v);

/// One GPU thread of GPU V1: naive layout.
scoring::ContingencyTable gpu_thread_v1(const dataset::BitPlanesV1& p,
                                        std::size_t x, std::size_t y,
                                        std::size_t z);

/// One GPU thread of GPU V2: phenotype-split planes, SNP-major (the
/// uncoalesced access pattern).
scoring::ContingencyTable gpu_thread_v2(const dataset::PhenoSplitPlanes& p,
                                        std::size_t x, std::size_t y,
                                        std::size_t z);

/// One GPU thread of GPU V3: transposed layout.
scoring::ContingencyTable gpu_thread_v3(const dataset::TransposedPlanes& p,
                                        std::size_t x, std::size_t y,
                                        std::size_t z);

/// One GPU thread of GPU V4: tiled layout (Algorithm 2).
scoring::ContingencyTable gpu_thread_v4(const dataset::TiledPlanes& p,
                                        std::size_t x, std::size_t y,
                                        std::size_t z);

}  // namespace trigen::gpusim
