#pragma once
/// \file simulator.hpp
/// \brief GPU execution simulator: functional run + performance estimate.
///
/// Substitution for the paper's physical GPUs (see DESIGN.md §2).  A
/// `GpuSimulator` owns the data layouts each GPU version would allocate on
/// the device, executes the per-thread work of Algorithm 2 on the host
/// (bit-exact), and attaches a roofline cost estimate for the modelled
/// device.  Launch semantics follow §IV-B: the combination space is cut in
/// B_Sched^3-combination enqueues; each thread keeps a running best score
/// and the final reduction happens on the host side.

#include <cstdint>
#include <memory>
#include <vector>

#include "trigen/combinatorics/scheduler.hpp"
#include "trigen/core/detector.hpp"
#include "trigen/core/topk.hpp"
#include "trigen/dataset/genotype_matrix.hpp"
#include "trigen/gpusim/cost_model.hpp"
#include "trigen/gpusim/device_spec.hpp"
#include "trigen/gpusim/gpu_kernels.hpp"

namespace trigen::gpusim {

/// Options for one simulated scan.
struct GpuRunOptions {
  GpuVersion version = GpuVersion::kV4Tiled;
  core::Objective objective = core::Objective::kK2;
  LaunchConfig launch{};
  std::size_t top_k = 1;
  /// Restrict to a rank sub-range (used by the heterogeneous scheduler);
  /// empty means the full combination space.
  combinatorics::RankRange range{0, 0};
};

/// Outcome of a simulated scan.
struct GpuRunResult {
  std::vector<core::ScoredTriplet> best;  ///< best-first, normalized scores
  std::uint64_t triplets = 0;
  std::uint64_t elements = 0;   ///< triplets x samples
  std::uint64_t launches = 0;   ///< kernel enqueues (B_Sched^3 each)
  double host_seconds = 0;      ///< wall time of the functional execution
  CostEstimate cost;            ///< simulated device performance
};

/// Simulator instance bound to one device model and one dataset.
class GpuSimulator {
 public:
  GpuSimulator(GpuDeviceSpec spec, const dataset::GenotypeMatrix& d);
  ~GpuSimulator();

  GpuSimulator(const GpuSimulator&) = delete;
  GpuSimulator& operator=(const GpuSimulator&) = delete;

  /// Functionally executes the scan and estimates device time.
  GpuRunResult run(const GpuRunOptions& options = {}) const;

  const GpuDeviceSpec& spec() const;
  std::size_t num_snps() const;
  std::size_t num_samples() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace trigen::gpusim
