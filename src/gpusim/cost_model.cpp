#include "trigen/gpusim/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace trigen::gpusim {

namespace {

/// Bytes of bit-plane data one triplet touches per sample word: V1 reads
/// nine genotype planes plus the phenotype plane; V2+ read six planes.
double bytes_per_word(GpuVersion v) {
  return v == GpuVersion::kV1Naive ? 10.0 * 4.0 : 6.0 * 4.0;
}

/// DRAM coalescing efficiency: fraction of each memory transaction that is
/// useful.  SNP-major layouts serve one 4-byte word per 32-byte transaction.
double coalescing_efficiency(GpuVersion v) {
  switch (v) {
    case GpuVersion::kV1Naive:
    case GpuVersion::kV2Split:
      return 4.0 / 32.0;
    case GpuVersion::kV3Transposed:
    case GpuVersion::kV4Tiled:
      return 1.0;
  }
  return 1.0;
}

/// Cross-thread reuse of loaded planes within one kernel enqueue: each SNP
/// plane participates in O(B_Sched^2) of the B_Sched^3 combinations, so a
/// cached plane word serves that many threads.  The naive/uncoalesced
/// versions scatter accesses and get no reuse; the tiled layout doubles
/// effective reuse versus plain transposition by keeping a tile's planes in
/// the same cache lines (§IV-B).
double reuse_factor(GpuVersion v, const LaunchConfig& launch) {
  constexpr double kReuseCap = 1 << 20;
  const double bsched2 =
      static_cast<double>(launch.bsched) * static_cast<double>(launch.bsched);
  switch (v) {
    case GpuVersion::kV1Naive:
    case GpuVersion::kV2Split:
      return 1.0;
    case GpuVersion::kV3Transposed:
      return std::min(bsched2, kReuseCap);
    case GpuVersion::kV4Tiled:
      return std::min(2.0 * bsched2, kReuseCap);
  }
  return 1.0;
}

/// Sustained-efficiency multiplier applied to the compute ceilings.  V3
/// sustains slightly less than V4: without the SNP tiles, thread groups
/// straddle cache lines and the load pipes stall more often — the small
/// V3->V4 gap visible in Fig. 2b.
double version_compute_scale(GpuVersion v) {
  return v == GpuVersion::kV3Transposed ? 0.85 : 1.0;
}

}  // namespace

OpMix op_mix(GpuVersion v, OpCountModel model) {
  OpMix m;
  const bool naive = v == GpuVersion::kV1Naive;
  if (model == OpCountModel::kPaper) {
    // §IV-A as printed: 27 x 6 = 162 for V1; (3 NOR + 1 AND + 1 POPCNT
    // per cell) = 3 + 27 + 27 = 57 for V2+.
    if (naive) {
      m.popcnt = 54;  // 2 per cell (case + control)
      m.logic = 108;  // 4 AND-steps per cell
    } else {
      m.popcnt = 27;
      m.logic = 30;  // 3 hoisted NORs + 27 AND-steps
    }
  } else {
    if (naive) {
      // Per cell: AND(x,y), AND(.,z), AND(.,ph), AND(.,~ph) + one NOT for
      // ~ph per word + 2 POPCNT.
      m.popcnt = 54;
      m.logic = 27 * 4 + 1;
    } else {
      // 3 NOR = 6 ops (OR + XOR, no native NOR), 9 X&Y partials, 27 XYZ
      // ANDs, 27 POPCNT.
      m.popcnt = 27;
      m.logic = 6 + 9 + 27;
    }
  }
  m.loads = naive ? 10 : 6;
  return m;
}

double arithmetic_intensity(GpuVersion v, OpCountModel model) {
  const OpMix m = op_mix(v, model);
  return (m.popcnt + m.logic) / bytes_per_word(v);
}

std::string bound_by_name(BoundBy b) {
  switch (b) {
    case BoundBy::kPopcnt: return "popcnt";
    case BoundBy::kLogic: return "logic";
    case BoundBy::kMemory: return "memory";
  }
  return "unknown";
}

CostEstimate estimate_gpu_cost(const GpuDeviceSpec& dev, GpuVersion v,
                               const WorkloadShape& w,
                               const LaunchConfig& launch,
                               OpCountModel model) {
  if (w.triplets == 0 || w.samples == 0 || w.words_total == 0) {
    throw std::invalid_argument("estimate_gpu_cost: empty workload");
  }
  const OpMix mix = op_mix(v, model);
  const double words = static_cast<double>(w.triplets) *
                       static_cast<double>(w.words_total);
  const double freq = dev.boost_ghz * 1e9;
  const double eff = dev.compute_efficiency * version_compute_scale(v);

  CostEstimate e;
  // Compute ceilings.
  const double popcnt_rate =
      static_cast<double>(dev.compute_units) * dev.popcnt_per_cu_cycle * freq;
  const double logic_rate = static_cast<double>(dev.stream_cores) * freq;
  e.t_popcnt = words * mix.popcnt / (popcnt_rate * eff);
  e.t_logic = words * mix.logic / (logic_rate * eff);

  // Memory ceiling.
  const double traffic =
      words * bytes_per_word(v) /
      (coalescing_efficiency(v) * reuse_factor(v, launch));
  e.t_memory = traffic / (dev.mem_bw_gbs * 1e9);

  e.seconds = std::max({e.t_popcnt, e.t_logic, e.t_memory});
  e.bound = e.seconds == e.t_memory  ? BoundBy::kMemory
            : e.seconds == e.t_popcnt ? BoundBy::kPopcnt
                                      : BoundBy::kLogic;
  const double elements = static_cast<double>(w.triplets) *
                          static_cast<double>(w.samples);
  e.elements_per_second = elements / e.seconds;
  e.gintops = words * (mix.popcnt + mix.logic) / e.seconds / 1e9;
  e.ai = arithmetic_intensity(v, model);
  return e;
}

double elements_per_joule(const GpuDeviceSpec& dev,
                          double elements_per_second) {
  return dev.tdp_w > 0 ? elements_per_second / dev.tdp_w : 0.0;
}

std::string cpu_strategy_name(CpuStrategyClass c) {
  switch (c) {
    case CpuStrategyClass::kAvx128ScalarPopcnt: return "avx128+scalar-popcnt";
    case CpuStrategyClass::kAvx256ScalarPopcnt: return "avx256+scalar-popcnt";
    case CpuStrategyClass::kAvx512ScalarPopcnt: return "avx512+scalar-popcnt";
    case CpuStrategyClass::kAvx512VectorPopcnt: return "avx512+vpopcntdq";
  }
  return "unknown";
}

double CpuIsaRates::rate(CpuStrategyClass c) const {
  switch (c) {
    case CpuStrategyClass::kAvx128ScalarPopcnt: return avx128;
    case CpuStrategyClass::kAvx256ScalarPopcnt: return avx256;
    case CpuStrategyClass::kAvx512ScalarPopcnt: return avx512_extract;
    case CpuStrategyClass::kAvx512VectorPopcnt: return avx512_vpopcnt;
  }
  return 0.0;
}

CpuStrategyClass cpu_strategy(const CpuDeviceSpec& dev, bool use_avx512) {
  if (dev.vector_bits >= 512 && use_avx512) {
    return dev.vector_popcnt ? CpuStrategyClass::kAvx512VectorPopcnt
                             : CpuStrategyClass::kAvx512ScalarPopcnt;
  }
  if (dev.vector_bits >= 256 || dev.vector_bits >= 512) {
    return CpuStrategyClass::kAvx256ScalarPopcnt;
  }
  return CpuStrategyClass::kAvx128ScalarPopcnt;
}

double project_cpu_elements_per_sec(const CpuDeviceSpec& dev, bool use_avx512,
                                    const CpuIsaRates& rates) {
  const CpuStrategyClass c = cpu_strategy(dev, use_avx512);
  return rates.rate(c) * dev.base_ghz * 1e9 * dev.cores;
}

}  // namespace trigen::gpusim
