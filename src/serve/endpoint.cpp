#include "trigen/serve/endpoint.hpp"

#include <cstdio>

#ifndef _WIN32

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

namespace trigen::serve {
namespace {

/// A client that disconnects mid-reply turns the next write into SIGPIPE,
/// whose default action kills the process — a vanishing worker must never
/// take the coordinator down with it.  MSG_NOSIGNAL already covers socket
/// writes, but pipe mode writes to a plain fd; ignoring the signal
/// process-wide closes that hole, and both endpoints do it on entry so
/// embedders (tests, the CLI) are covered without their own handler.
void ignore_sigpipe() { std::signal(SIGPIPE, SIG_IGN); }

constexpr int kExitOk = 0;
constexpr int kExitError = 2;
constexpr int kExitInterrupted = 3;
constexpr int kPollMs = 200;  ///< idle-wait granularity for signal checks

/// EINTR-safe full write.  Returns false when the peer is gone (EPIPE /
/// ECONNRESET) or the fd is otherwise unwritable.
bool write_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
#ifdef MSG_NOSIGNAL
    ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0 && errno == ENOTSOCK) w = ::write(fd, data + off, n - off);
#else
    ssize_t w = ::write(fd, data + off, n - off);
#endif
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

/// One output stream shared by the submitting thread and the workers.
/// Sinks hold it by shared_ptr, so a job can outlive its client: once the
/// connection drops, `open` flips and later events vanish instead of
/// writing to a dead fd.
struct SinkState {
  explicit SinkState(int fd) : fd(fd) {}
  std::mutex mu;
  int fd;
  bool open = true;

  void emit(const std::string& line) {
    std::lock_guard<std::mutex> lk(mu);
    if (!open) return;
    std::string out = line;
    out += '\n';
    if (!write_all(fd, out.data(), out.size())) open = false;
  }
};

using SinkPtr = std::shared_ptr<SinkState>;

EventSink sink_of(const SinkPtr& s) {
  return [s](const std::string& line) { s->emit(line); };
}

/// Graceful end-of-session: checkpoint incomplete jobs, tell the client,
/// and map the outcome to an exit status.
int finish(LineService& service, const SinkPtr& sink) {
  const std::size_t written = service.shutdown_and_checkpoint();
  sink->emit("ok - bye interrupted=" +
             std::to_string(service.jobs_interrupted()) +
             " checkpointed=" + std::to_string(written));
  return service.jobs_interrupted() > 0 ? kExitInterrupted : kExitOk;
}

}  // namespace

int run_pipe_endpoint(LineService& service, int in_fd, int out_fd,
                      const std::atomic<bool>& interrupted) {
  ignore_sigpipe();
  auto sink = std::make_shared<SinkState>(out_fd);
  std::string buf;
  bool eof = false;
  bool want_shutdown = false;
  while (!eof && !want_shutdown && !interrupted.load()) {
    service.tick();
    if (service.finished()) break;
    struct pollfd p{};
    p.fd = in_fd;
    p.events = POLLIN;
    const int pr = ::poll(&p, 1, kPollMs);
    if (pr < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "serve: poll failed: %s\n", std::strerror(errno));
      return kExitError;
    }
    if (pr == 0) continue;
    char chunk[4096];
    const ssize_t r = ::read(in_fd, chunk, sizeof chunk);
    if (r < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "serve: read failed: %s\n", std::strerror(errno));
      return kExitError;
    }
    if (r == 0) {
      eof = true;
      break;
    }
    buf.append(chunk, static_cast<std::size_t>(r));
    std::size_t nl;
    while (!want_shutdown && (nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (!service.submit_line(line, sink_of(sink))) want_shutdown = true;
    }
  }
  if (eof && !buf.empty()) {
    // a final unterminated line still counts as a request
    if (!service.submit_line(buf, sink_of(sink))) want_shutdown = true;
  }
  if (!want_shutdown && !interrupted.load() && !service.finished()) {
    // EOF path: no more requests are coming; run everything to completion
    // (unless a signal lands mid-drain).
    if (service.drain(&interrupted)) {
      sink->emit("ok - bye interrupted=0 checkpointed=0");
      return kExitOk;
    }
  }
  return finish(service, sink);
}

int run_socket_endpoint(LineService& service, const std::string& path,
                        const std::atomic<bool>& interrupted) {
  ignore_sigpipe();
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::fprintf(stderr, "serve: socket failed: %s\n", std::strerror(errno));
    return kExitError;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "serve: socket path too long: %s\n", path.c_str());
    ::close(listener);
    return kExitError;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listener, 8) != 0) {
    std::fprintf(stderr, "serve: cannot listen on %s: %s\n", path.c_str(),
                 std::strerror(errno));
    ::close(listener);
    return kExitError;
  }

  struct Conn {
    int fd;
    SinkPtr sink;
    std::string buf;
  };
  std::vector<Conn> conns;
  bool want_shutdown = false;
  int status = kExitOk;

  auto drop = [&](std::size_t i) {
    {
      std::lock_guard<std::mutex> lk(conns[i].sink->mu);
      conns[i].sink->open = false;
    }
    ::close(conns[i].fd);
    conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
  };

  while (!want_shutdown && !interrupted.load()) {
    service.tick();
    if (service.finished()) break;
    std::vector<pollfd> fds(conns.size() + 1);
    fds[0] = {listener, POLLIN, 0};
    for (std::size_t i = 0; i < conns.size(); ++i) {
      fds[i + 1] = {conns[i].fd, POLLIN, 0};
    }
    const int pr = ::poll(fds.data(), fds.size(), kPollMs);
    if (pr < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "serve: poll failed: %s\n", std::strerror(errno));
      status = kExitError;
      break;
    }
    if (pr == 0) continue;
    if (fds[0].revents & POLLIN) {
      const int fd = ::accept(listener, nullptr, nullptr);
      if (fd >= 0) {
        conns.push_back({fd, std::make_shared<SinkState>(fd), {}});
      }
    }
    // iterate backwards so drop() does not shift unvisited entries; only
    // over the connections that were actually polled — a connection
    // accepted above has no pollfd entry (fds[i + 1] would read past the
    // vector and the garbage could look like POLLERR, dropping it unread)
    for (std::size_t i = fds.size() - 1; i-- > 0;) {
      const short re = fds[i + 1].revents;
      if (re == 0) continue;
      if (re & (POLLERR | POLLHUP | POLLNVAL)) {
        drop(i);
        continue;
      }
      char chunk[4096];
      const ssize_t r = ::read(conns[i].fd, chunk, sizeof chunk);
      if (r <= 0) {
        if (r < 0 && errno == EINTR) continue;
        drop(i);
        continue;
      }
      conns[i].buf.append(chunk, static_cast<std::size_t>(r));
      std::size_t nl;
      while (!want_shutdown &&
             (nl = conns[i].buf.find('\n')) != std::string::npos) {
        std::string line = conns[i].buf.substr(0, nl);
        conns[i].buf.erase(0, nl + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        if (!service.submit_line(line, sink_of(conns[i].sink))) {
          want_shutdown = true;
        }
      }
    }
  }

  if (status == kExitOk) {
    const std::size_t written = service.shutdown_and_checkpoint();
    const std::string bye =
        "ok - bye interrupted=" + std::to_string(service.jobs_interrupted()) +
        " checkpointed=" + std::to_string(written);
    for (Conn& c : conns) c.sink->emit(bye);
    status = service.jobs_interrupted() > 0 ? kExitInterrupted : kExitOk;
  }
  for (std::size_t i = conns.size(); i-- > 0;) drop(i);
  ::close(listener);
  ::unlink(path.c_str());
  return status;
}

}  // namespace trigen::serve

#else  // _WIN32

namespace trigen::serve {

int run_pipe_endpoint(LineService&, int, int, const std::atomic<bool>&) {
  std::fprintf(stderr, "serve: pipe endpoint requires POSIX\n");
  return 2;
}

int run_socket_endpoint(LineService&, const std::string&,
                        const std::atomic<bool>&) {
  std::fprintf(stderr, "serve: socket endpoint requires POSIX\n");
  return 2;
}

}  // namespace trigen::serve

#endif
