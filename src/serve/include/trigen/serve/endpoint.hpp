#pragma once
/// \file endpoint.hpp
/// \brief Transports for line-protocol services (scan server, fleet
/// coordinator).
///
/// Two endpoints drive any `LineService`:
///
///   * **Pipe mode** reads request lines from one file descriptor and
///     writes response lines to another — `trigen serve` on stdin/stdout.
///     EOF on the input means "no more requests": the endpoint drains the
///     live jobs to completion and exits cleanly.
///   * **Socket mode** listens on a Unix-domain stream socket, serving any
///     number of concurrent clients; each client's responses go only to
///     its own connection.  A `shutdown` request from any client stops the
///     whole service.
///
/// Both honor an external interrupt flag (the CLI's SIGINT/SIGTERM
/// handler): the moment it reads true, the endpoint performs the graceful
/// drain-and-checkpoint shutdown and returns the resumable exit status.
/// Reads poll with a short timeout rather than block, so a signal during
/// an idle wait is noticed within ~200ms; the service's `tick()` hook runs
/// on the same cadence (lease-expiry housekeeping), and once `finished()`
/// reports true the endpoint closes down cleanly on its own.
///
/// Clients may vanish at any moment — including mid-reply.  Both endpoints
/// ignore SIGPIPE process-wide on entry (writes also use MSG_NOSIGNAL where
/// the fd is a socket), so a dying worker can only ever cost its own
/// connection, never the coordinator process; the affected sink is muted
/// and the service keeps running (tested in tests/test_serve.cpp).
///
/// Return value of both: 0 when every accepted job completed, 3
/// (kExitInterrupted) when shutdown or a signal left interrupted jobs
/// behind (checkpointed where the job type supports it), 2 on transport
/// errors.  POSIX-only; on other platforms they return 2 with an error
/// message.

#include <atomic>
#include <string>

#include "trigen/serve/server.hpp"

namespace trigen::serve {

/// Serves requests from `in_fd` (responses to `out_fd`) until EOF,
/// `shutdown`, interrupt, or the service reporting finished().
int run_pipe_endpoint(LineService& service, int in_fd, int out_fd,
                      const std::atomic<bool>& interrupted);

/// Binds `path` as a Unix-domain stream socket and serves clients until a
/// `shutdown` request, interrupt, or the service reporting finished().
/// Removes the socket file on exit.
int run_socket_endpoint(LineService& service, const std::string& path,
                        const std::atomic<bool>& interrupted);

}  // namespace trigen::serve
