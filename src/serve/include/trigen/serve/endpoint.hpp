#pragma once
/// \file endpoint.hpp
/// \brief Transports for the resident scan server.
///
/// Two endpoints drive a `ScanServer`:
///
///   * **Pipe mode** reads request lines from one file descriptor and
///     writes response lines to another — `trigen serve` on stdin/stdout.
///     EOF on the input means "no more requests": the endpoint drains the
///     live jobs to completion and exits cleanly.
///   * **Socket mode** listens on a Unix-domain stream socket, serving any
///     number of concurrent clients; each client's responses go only to
///     its own connection.  A `shutdown` request from any client stops the
///     whole server.
///
/// Both honor an external interrupt flag (the CLI's SIGINT/SIGTERM
/// handler): the moment it reads true, the endpoint performs the graceful
/// drain-and-checkpoint shutdown and returns the resumable exit status.
/// Reads poll with a short timeout rather than block, so a signal during
/// an idle wait is noticed within ~200ms.
///
/// Return value of both: 0 when every accepted job completed, 3
/// (kExitInterrupted) when shutdown or a signal left interrupted jobs
/// behind (checkpointed where the job type supports it), 2 on transport
/// errors.  POSIX-only; on other platforms they return 2 with an error
/// message.

#include <atomic>
#include <string>

#include "trigen/serve/server.hpp"

namespace trigen::serve {

/// Serves requests from `in_fd` (responses to `out_fd`) until EOF,
/// `shutdown`, or interrupt.
int run_pipe_endpoint(ScanServer& server, int in_fd, int out_fd,
                      const std::atomic<bool>& interrupted);

/// Binds `path` as a Unix-domain stream socket and serves clients until a
/// `shutdown` request or interrupt.  Removes the socket file on exit.
int run_socket_endpoint(ScanServer& server, const std::string& path,
                        const std::atomic<bool>& interrupted);

}  // namespace trigen::serve
