#pragma once
/// \file server.hpp
/// \brief The resident scan server: one loaded dataset, an async job queue.
///
/// `ScanServer` is the engine behind `trigen serve`.  It loads a dataset
/// (and lazily, one set of bitplanes per interaction order) exactly once
/// and then services a queue of jobs — `scan`/top-k at any order in
/// [2, combinatorics::kMaxOrder] and batched multi-phenotype
/// `significance` (permutation) tests — concurrently on one shared worker
/// pool:
///
///   * Every job's rank range is cut into chunks; the pool's workers pull
///     chunks round-robin across all live jobs, so a short job never
///     starves behind a long one and adding a job never spawns threads.
///   * Chunk results commit in rank order into a per-job accumulator with
///     the same rank-tie-broken top-k merge as the standalone CLI, so a
///     job's payload is bit-identical to the equivalent `trigen scan` /
///     `trigen significance` invocation (the smoke tests diff them).
///   * The in-order commit means a job always has a valid contiguous
///     completed prefix — exactly what the shard module's checkpoint
///     format persists.  Graceful shutdown drains in-flight chunks and
///     writes one checkpoint per incomplete scan job; `trigen scan
///     --checkpoint` resumes it to the exact full result.
///
/// Requests and responses are the line protocol of protocol.hpp; the
/// transport (stdin/stdout pipe or a Unix-domain socket) lives in
/// endpoint.hpp.  The engine itself is transport-free and fully
/// in-process-testable: feed lines to submit_line(), collect event lines
/// from the sink.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "trigen/core/kernel_config.hpp"
#include "trigen/dataset/genotype_matrix.hpp"
#include "trigen/serve/protocol.hpp"

namespace trigen::serve {

/// Receives one protocol response line (no trailing newline).  Called from
/// worker threads and the submitting thread; the sink must serialize its
/// own output.
using EventSink = std::function<void(const std::string& line)>;

/// What an endpoint (endpoint.hpp) needs from the engine it transports:
/// line-in/lines-out request handling plus lifecycle hooks.  Two
/// implementations exist — `ScanServer` below (resident scan jobs) and
/// `fleet::FleetCoordinator` (shard leasing) — sharing the pipe and
/// Unix-socket transports verbatim.
class LineService {
 public:
  virtual ~LineService() = default;

  /// Parses and executes one request line, emitting every response to
  /// `sink` as protocol lines.  Returns false when the request asks the
  /// service to shut down: the endpoint stops feeding lines and calls
  /// shutdown_and_checkpoint().
  virtual bool submit_line(const std::string& line, EventSink sink) = 0;

  /// Called by the endpoint on every poll iteration (~200ms) regardless of
  /// traffic — the hook for time-based housekeeping such as lease expiry.
  virtual void tick() {}

  /// True once the service's work is done and the endpoint should close
  /// down cleanly of its own accord (a coordinator whose last shard
  /// merged).  A resident server is never "finished" — it serves until
  /// told to stop.
  virtual bool finished() const { return false; }

  /// Blocks until outstanding work completes (the EOF path of pipe mode).
  /// Polls `interrupted` when non-null; false means work was still pending
  /// when the flag flipped (or the service cannot make progress without
  /// more clients), true means everything drained.
  virtual bool drain(const std::atomic<bool>* interrupted = nullptr) = 0;

  /// Graceful shutdown: persist whatever makes the session resumable and
  /// stop accepting work.  Returns the number of checkpoint artifacts
  /// written.  Idempotent.
  virtual std::size_t shutdown_and_checkpoint() = 0;

  /// Work items left incomplete by shutdown — nonzero means the session
  /// should exit 3 (resumable interruption) rather than 0.
  virtual std::size_t jobs_interrupted() const = 0;
};

struct ServeOptions {
  /// Worker pool size shared by all jobs; 0 = hardware_concurrency.
  unsigned threads = 0;
  /// Ranks per scheduled chunk; 0 sizes chunks per job (aiming for enough
  /// chunks that the pool interleaves jobs and shutdown drains quickly).
  std::uint64_t chunk = 0;
  /// Directory for shutdown checkpoints of incomplete scan jobs
  /// ("serve-<jobid>.ckpt").  Must exist.
  std::string checkpoint_dir = ".";
  /// Optional empirical-tuning lookup applied to every job's detector
  /// options (see core/kernel_config.hpp; `trigen serve --profile` wires a
  /// per-host TRIGEN-TUNE profile in).  Jobs resolve through it only in
  /// the default auto configuration; results are bit-identical either way.
  core::ConfigResolver config{};
};

class ScanServer final : public LineService {
 public:
  /// Takes ownership of the dataset; bitplanes are built once per
  /// interaction order on first use and reused by every later job.
  ScanServer(dataset::GenotypeMatrix dataset, ServeOptions options);
  ~ScanServer() override;

  ScanServer(const ScanServer&) = delete;
  ScanServer& operator=(const ScanServer&) = delete;

  /// Parses and executes one request line.  Every response — acceptance,
  /// rejection, and all later events of an accepted job — goes to `sink`
  /// as protocol lines.  Malformed or semantically invalid requests emit
  /// one `error` line and leave the server fully operational.  Returns
  /// false when the request was `shutdown`: stop feeding lines and call
  /// shutdown_and_checkpoint().
  bool submit_line(const std::string& line, EventSink sink) override;

  /// Blocks until every live job has finished (the EOF path of pipe mode).
  /// Polls `interrupted` when non-null and returns false the moment it
  /// reads true with jobs still live; true when everything drained.
  bool drain(const std::atomic<bool>* interrupted = nullptr) override;

  /// Graceful drain-and-checkpoint shutdown: stops issuing new chunks,
  /// waits for in-flight chunks to land, then checkpoints every incomplete
  /// scan job into `checkpoint_dir` (emitting an `event <id> checkpoint`
  /// line each; significance jobs are not resumable and abort with an
  /// `error` event).  Returns the number of checkpoint files written.
  /// Idempotent; the server accepts no further work afterwards.
  std::size_t shutdown_and_checkpoint() override;

  /// Jobs that were incomplete when shutdown_and_checkpoint ran (whether
  /// checkpointed or aborted) — nonzero means the session should exit 3.
  std::size_t jobs_interrupted() const override;

  /// Currently live (queued or running) jobs.
  std::size_t jobs_live() const;

  const dataset::GenotypeMatrix& data() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace trigen::serve
