#pragma once
/// \file server.hpp
/// \brief The resident scan server: one loaded dataset, an async job queue.
///
/// `ScanServer` is the engine behind `trigen serve`.  It loads a dataset
/// (and lazily, one set of bitplanes per interaction order) exactly once
/// and then services a queue of jobs — `scan`/top-k at any order in
/// [2, combinatorics::kMaxOrder] and batched multi-phenotype
/// `significance` (permutation) tests — concurrently on one shared worker
/// pool:
///
///   * Every job's rank range is cut into chunks; the pool's workers pull
///     chunks round-robin across all live jobs, so a short job never
///     starves behind a long one and adding a job never spawns threads.
///   * Chunk results commit in rank order into a per-job accumulator with
///     the same rank-tie-broken top-k merge as the standalone CLI, so a
///     job's payload is bit-identical to the equivalent `trigen scan` /
///     `trigen significance` invocation (the smoke tests diff them).
///   * The in-order commit means a job always has a valid contiguous
///     completed prefix — exactly what the shard module's checkpoint
///     format persists.  Graceful shutdown drains in-flight chunks and
///     writes one checkpoint per incomplete scan job; `trigen scan
///     --checkpoint` resumes it to the exact full result.
///
/// Requests and responses are the line protocol of protocol.hpp; the
/// transport (stdin/stdout pipe or a Unix-domain socket) lives in
/// endpoint.hpp.  The engine itself is transport-free and fully
/// in-process-testable: feed lines to submit_line(), collect event lines
/// from the sink.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "trigen/core/kernel_config.hpp"
#include "trigen/dataset/genotype_matrix.hpp"
#include "trigen/serve/protocol.hpp"

namespace trigen::serve {

/// Receives one protocol response line (no trailing newline).  Called from
/// worker threads and the submitting thread; the sink must serialize its
/// own output.
using EventSink = std::function<void(const std::string& line)>;

struct ServeOptions {
  /// Worker pool size shared by all jobs; 0 = hardware_concurrency.
  unsigned threads = 0;
  /// Ranks per scheduled chunk; 0 sizes chunks per job (aiming for enough
  /// chunks that the pool interleaves jobs and shutdown drains quickly).
  std::uint64_t chunk = 0;
  /// Directory for shutdown checkpoints of incomplete scan jobs
  /// ("serve-<jobid>.ckpt").  Must exist.
  std::string checkpoint_dir = ".";
  /// Optional empirical-tuning lookup applied to every job's detector
  /// options (see core/kernel_config.hpp; `trigen serve --profile` wires a
  /// per-host TRIGEN-TUNE profile in).  Jobs resolve through it only in
  /// the default auto configuration; results are bit-identical either way.
  core::ConfigResolver config{};
};

class ScanServer {
 public:
  /// Takes ownership of the dataset; bitplanes are built once per
  /// interaction order on first use and reused by every later job.
  ScanServer(dataset::GenotypeMatrix dataset, ServeOptions options);
  ~ScanServer();

  ScanServer(const ScanServer&) = delete;
  ScanServer& operator=(const ScanServer&) = delete;

  /// Parses and executes one request line.  Every response — acceptance,
  /// rejection, and all later events of an accepted job — goes to `sink`
  /// as protocol lines.  Malformed or semantically invalid requests emit
  /// one `error` line and leave the server fully operational.  Returns
  /// false when the request was `shutdown`: stop feeding lines and call
  /// shutdown_and_checkpoint().
  bool submit_line(const std::string& line, EventSink sink);

  /// Blocks until every live job has finished (the EOF path of pipe mode).
  /// Polls `interrupted` when non-null and returns false the moment it
  /// reads true with jobs still live; true when everything drained.
  bool drain(const std::atomic<bool>* interrupted = nullptr);

  /// Graceful drain-and-checkpoint shutdown: stops issuing new chunks,
  /// waits for in-flight chunks to land, then checkpoints every incomplete
  /// scan job into `checkpoint_dir` (emitting an `event <id> checkpoint`
  /// line each; significance jobs are not resumable and abort with an
  /// `error` event).  Returns the number of checkpoint files written.
  /// Idempotent; the server accepts no further work afterwards.
  std::size_t shutdown_and_checkpoint();

  /// Jobs that were incomplete when shutdown_and_checkpoint ran (whether
  /// checkpointed or aborted) — nonzero means the session should exit 3.
  std::size_t jobs_interrupted() const;

  /// Currently live (queued or running) jobs.
  std::size_t jobs_live() const;

  const dataset::GenotypeMatrix& data() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace trigen::serve
