#pragma once
/// \file protocol.hpp
/// \brief The line-delimited request protocol of the resident scan server.
///
/// One request per line, whitespace-separated tokens:
///
///     scan <id> [order=K] [objective=k2|mi|chi2] [top=N] [version=1..5]
///               [range=FIRST:LAST]
///     significance <id> [order=K] [objective=k2|mi|chi2]
///               [permutations=N] [seed=S]
///     cancel <id>
///     status
///     ping
///     shutdown
///
/// plus the fleet-coordination verbs spoken by `trigen work` against a
/// `trigen coordinate` service (same transports, same response shapes; a
/// plain scan server rejects them with a precise error and vice versa):
///
///     lease <worker>
///     renew <worker> shard=<id> watermark=<rank>
///     complete <worker> shard=<id>
///     abandon <worker> shard=<id> [reason=<token>]
///
/// `<id>` is a client-chosen job token of [A-Za-z0-9_.-]{1,64} — it tags
/// every event the server emits for the job and names the job's shutdown
/// checkpoint file, hence the conservative charset.  The fleet verbs reuse
/// the same slot and charset for the *worker* name.  Responses are
/// line-delimited too, first token = kind, second = job id (`-` when no job
/// is involved):
///
///     ok <id|-> <detail...>          request accepted / acknowledged
///     event <id> progress <done> <total>
///     event <id> checkpoint <path> watermark=<rank>
///     data <id> <payload line>       one line of the job's result payload
///     done <id> <detail...>          job complete; payload fully streamed
///     error <id|-> <message>         rejected request or failed job
///
/// A scan job's payload is exactly the CSV section `trigen scan` prints
/// (core/scan_csv.hpp); a significance job's payload is exactly the report
/// `trigen significance` prints (stats/report.hpp).  Stripping the
/// `data <id> ` prefix therefore yields output diffable byte-for-byte
/// against the standalone CLI.
///
/// Parsing is purely syntactic here (verb shape, id charset, key=value
/// form, no duplicate/unknown keys); semantic validation (ranges, orders,
/// value bounds) happens in the server, which knows the dataset.

#include <map>
#include <stdexcept>
#include <string>

namespace trigen::serve {

enum class RequestKind {
  kScan,
  kSignificance,
  kCancel,
  kStatus,
  kPing,
  kShutdown,
  // Fleet-coordination verbs (lease-based shard orchestration).
  kLease,
  kRenew,
  kComplete,
  kAbandon,
};

/// One parsed request line.
struct Request {
  RequestKind kind = RequestKind::kPing;
  std::string id;  ///< job token (or worker name); empty for status/ping/shutdown
  std::map<std::string, std::string> params;  ///< key=value options, verbatim
};

/// True when `id` is a well-formed job token: [A-Za-z0-9_.-]{1,64}.
bool valid_job_id(const std::string& id);

/// Parses one request line.  Throws std::invalid_argument with a precise,
/// client-facing message on anything malformed: unknown verb, missing or
/// invalid job id, a token that is not key=value, an unknown or duplicate
/// key for the verb, or trailing tokens on verbs that take none.
Request parse_request(const std::string& line);

}  // namespace trigen::serve
