#include "trigen/serve/protocol.hpp"

#include <set>
#include <sstream>
#include <vector>

namespace trigen::serve {
namespace {

[[noreturn]] void reject(const std::string& what) {
  throw std::invalid_argument(what);
}

const std::set<std::string>& keys_of(RequestKind kind) {
  static const std::set<std::string> scan = {"order", "objective", "top",
                                             "version", "range"};
  static const std::set<std::string> significance = {
      "order", "objective", "permutations", "seed"};
  static const std::set<std::string> renew = {"shard", "watermark"};
  static const std::set<std::string> complete = {"shard"};
  static const std::set<std::string> abandon = {"shard", "reason"};
  static const std::set<std::string> none;
  switch (kind) {
    case RequestKind::kScan: return scan;
    case RequestKind::kSignificance: return significance;
    case RequestKind::kRenew: return renew;
    case RequestKind::kComplete: return complete;
    case RequestKind::kAbandon: return abandon;
    default: return none;
  }
}

}  // namespace

bool valid_job_id(const std::string& id) {
  if (id.empty() || id.size() > 64) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

Request parse_request(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> tokens;
  for (std::string tok; is >> tok;) tokens.push_back(tok);
  if (tokens.empty()) reject("empty request");

  Request r;
  const std::string& verb = tokens[0];
  if (verb == "scan") {
    r.kind = RequestKind::kScan;
  } else if (verb == "significance") {
    r.kind = RequestKind::kSignificance;
  } else if (verb == "cancel") {
    r.kind = RequestKind::kCancel;
  } else if (verb == "status") {
    r.kind = RequestKind::kStatus;
  } else if (verb == "ping") {
    r.kind = RequestKind::kPing;
  } else if (verb == "shutdown") {
    r.kind = RequestKind::kShutdown;
  } else if (verb == "lease") {
    r.kind = RequestKind::kLease;
  } else if (verb == "renew") {
    r.kind = RequestKind::kRenew;
  } else if (verb == "complete") {
    r.kind = RequestKind::kComplete;
  } else if (verb == "abandon") {
    r.kind = RequestKind::kAbandon;
  } else {
    reject("unknown request '" + verb +
           "' (scan|significance|cancel|status|ping|shutdown"
           "|lease|renew|complete|abandon)");
  }

  const bool takes_id =
      r.kind == RequestKind::kScan || r.kind == RequestKind::kSignificance ||
      r.kind == RequestKind::kCancel || r.kind == RequestKind::kLease ||
      r.kind == RequestKind::kRenew || r.kind == RequestKind::kComplete ||
      r.kind == RequestKind::kAbandon;
  std::size_t next = 1;
  if (takes_id) {
    const char* noun = r.kind == RequestKind::kScan ||
                               r.kind == RequestKind::kSignificance ||
                               r.kind == RequestKind::kCancel
                           ? "job id"
                           : "worker name";
    if (tokens.size() < 2) reject(verb + " needs a " + noun);
    r.id = tokens[1];
    if (!valid_job_id(r.id)) {
      reject("invalid " + std::string(noun) + " '" + r.id +
             "' ([A-Za-z0-9_.-]{1,64})");
    }
    next = 2;
  }

  const std::set<std::string>& allowed = keys_of(r.kind);
  for (; next < tokens.size(); ++next) {
    const std::string& tok = tokens[next];
    if (allowed.empty()) {
      reject(verb + " takes no options, got '" + tok + "'");
    }
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= tok.size()) {
      reject("expected key=value, got '" + tok + "'");
    }
    const std::string key = tok.substr(0, eq);
    if (allowed.count(key) == 0) {
      std::string names;
      for (const std::string& k : allowed) {
        if (!names.empty()) names += '|';
        names += k;
      }
      reject("unknown " + verb + " option '" + key + "' (" + names + ")");
    }
    if (!r.params.emplace(key, tok.substr(eq + 1)).second) {
      reject("duplicate option '" + key + "'");
    }
  }
  return r;
}

}  // namespace trigen::serve
