#include "trigen/serve/server.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "trigen/common/rng.hpp"
#include "trigen/core/detector.hpp"
#include "trigen/core/scan_csv.hpp"
#include "trigen/dataset/bitplanes.hpp"
#include "trigen/shard/plan.hpp"
#include "trigen/shard/result_io.hpp"
#include "trigen/stats/report.hpp"

namespace trigen::serve {
namespace {

// -- Small protocol-side helpers --------------------------------------------

std::string response(const char* kind, const std::string& id,
                     const std::string& rest) {
  std::string s = kind;
  s += ' ';
  s += id.empty() ? "-" : id;
  if (!rest.empty()) {
    s += ' ';
    s += rest;
  }
  return s;
}

[[noreturn]] void reject(const std::string& what) {
  throw std::invalid_argument(what);
}

/// Strict non-negative integer parse for a request parameter; mirrors the
/// CLI's Args::get_uint contract (a `permutations=-1` must fail loudly).
std::uint64_t param_u64(const std::map<std::string, std::string>& params,
                        const char* key, std::uint64_t fallback) {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  const std::string& v = it->second;
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
  if (v.empty() || v[0] == '-' || end == v.c_str() || *end != '\0' ||
      errno == ERANGE) {
    reject(std::string(key) + " expects a non-negative integer, got '" + v +
           "'");
  }
  return parsed;
}

core::Objective param_objective(
    const std::map<std::string, std::string>& params) {
  const auto it = params.find("objective");
  const std::string v = it == params.end() ? "k2" : it->second;
  if (v == "k2") return core::Objective::kK2;
  if (v == "mi") return core::Objective::kMutualInformation;
  if (v == "chi2") return core::Objective::kChiSquared;
  reject("unknown objective '" + v + "' (k2|mi|chi2)");
}

core::CpuVersion param_version(
    const std::map<std::string, std::string>& params) {
  switch (param_u64(params, "version", 4)) {
    case 1: return core::CpuVersion::kV1Naive;
    case 2: return core::CpuVersion::kV2Split;
    case 3: return core::CpuVersion::kV3Blocked;
    case 4: return core::CpuVersion::kV4Vector;
    case 5: return core::CpuVersion::kV5PairCache;
    default: reject("version expects 1..5");
  }
}

/// Runtime order -> compile-time instantiation (same dispatch shape as the
/// CLI's cmd_scan).
template <typename Fn>
void with_order(unsigned order, Fn&& fn) {
  switch (order) {
    case 2: fn(std::integral_constant<unsigned, 2>{}); return;
    case 3: fn(std::integral_constant<unsigned, 3>{}); return;
    case 4: fn(std::integral_constant<unsigned, 4>{}); return;
    case 5: fn(std::integral_constant<unsigned, 5>{}); return;
    case 6: fn(std::integral_constant<unsigned, 6>{}); return;
    default: break;
  }
  reject("order expects an interaction order in [2, " +
         std::to_string(combinatorics::kMaxOrder) + "]");
}

/// C(M, K), with the >2^64 overflow turned into a client-facing rejection.
std::uint64_t rank_space(std::uint64_t num_snps, unsigned order) {
  try {
    return combinatorics::n_choose_k(num_snps, order);
  } catch (const std::overflow_error&) {
    reject("rank space exceeds 2^64: C(" + std::to_string(num_snps) + "," +
           std::to_string(order) + ") is not addressable");
  }
}

// -- Jobs -------------------------------------------------------------------

/// One queued/running job.  Scheduling state (chunk cursor, in-flight
/// count, cancellation request) is guarded by the *server* mutex; result
/// state (pending chunk results, committed prefix, emitted events) by the
/// per-job mutex.  Lock order is always server -> job, and run_chunk takes
/// only the job mutex, so workers never serialize on the server lock while
/// computing.
class JobBase {
 public:
  JobBase(std::string id, combinatorics::RankRange range, std::uint64_t chunk)
      : id(std::move(id)),
        range(range),
        chunk(chunk),
        next_issue(range.first) {}
  virtual ~JobBase() = default;

  // --- scheduling; caller holds the server mutex ---
  bool has_claimable() const { return !cancelled && next_issue < range.last; }
  combinatorics::RankRange claim() {
    const std::uint64_t first = next_issue;
    next_issue = std::min(first + chunk, range.last);
    return {first, next_issue};
  }

  /// Runs one claimed chunk on a worker thread and commits its result.
  virtual void run_chunk(const combinatorics::RankRange& r) = 0;
  /// All events emitted (completed, failed or cancelled) — nothing left to
  /// do once in-flight chunks land.
  virtual bool settled() = 0;
  /// Would lose work if the server stopped now.
  virtual bool incomplete() = 0;
  /// Suppresses any further result events (cancel / shutdown-abort).
  virtual void mark_cancelled() = 0;
  /// Persists shutdown state: scan jobs write a shard-module checkpoint
  /// into `dir` and return true; non-resumable jobs emit an error event
  /// and return false.
  virtual bool shutdown_persist(const std::string& dir) = 0;
  /// Committed progress (done, total) for status reports.
  virtual std::pair<std::uint64_t, std::uint64_t> progress_snapshot() = 0;

  const std::string id;
  const combinatorics::RankRange range;
  const std::uint64_t chunk;
  std::uint64_t next_issue;      ///< server-mutex guarded chunk cursor
  std::uint64_t inflight = 0;    ///< server-mutex guarded
  bool cancelled = false;        ///< server-mutex guarded (claim barrier)
};

/// Shared chunk-commit skeleton: chunk results land in a pending map and
/// commit strictly in rank order, so the job always consists of a fully
/// merged contiguous prefix [range.first, watermark) plus in-flight /
/// out-of-order suffix chunks.  That prefix is simultaneously (a) the
/// deterministic partial result the same rank-split would produce in the
/// standalone CLI and (b) a valid shard-module checkpoint.
template <typename ChunkValue, typename Derived>
class OrderedCommitJob : public JobBase {
 public:
  OrderedCommitJob(std::string id, EventSink sink,
                   combinatorics::RankRange range, std::uint64_t chunk)
      : JobBase(std::move(id), range, chunk),
        sink_(std::move(sink)),
        watermark_(range.first) {}

  void run_chunk(const combinatorics::RankRange& r) override {
    ChunkValue value{};
    double secs = 0.0;
    std::string err;
    try {
      value = static_cast<Derived*>(this)->execute(r, secs);
    } catch (const std::exception& e) {
      err = e.what();
    }
    std::lock_guard<std::mutex> lk(jm_);
    if (failed_ || cancelled_events_) return;
    if (!err.empty()) {
      failed_ = true;
      sink_(response("error", id, err));
      return;
    }
    seconds_ += secs;
    pending_.emplace(r.first, std::make_pair(r.last, std::move(value)));
    const std::uint64_t before = watermark_;
    while (!pending_.empty() && pending_.begin()->first == watermark_) {
      static_cast<Derived*>(this)->fold(pending_.begin()->second.second);
      watermark_ = pending_.begin()->second.first;
      pending_.erase(pending_.begin());
    }
    if (watermark_ != before) {
      sink_(response("event", id,
                     "progress " + std::to_string(watermark_ - range.first) +
                         " " + std::to_string(range.size())));
    }
    if (watermark_ == range.last && !done_) {
      done_ = true;
      for (const std::string& line : static_cast<Derived*>(this)->payload()) {
        sink_(response("data", id, line));
      }
      sink_(response("done", id, static_cast<Derived*>(this)->done_detail()));
    }
  }

  bool settled() override {
    std::lock_guard<std::mutex> lk(jm_);
    return done_ || failed_ || cancelled_events_;
  }
  bool incomplete() override {
    std::lock_guard<std::mutex> lk(jm_);
    return !done_ && !failed_ && !cancelled_events_;
  }
  void mark_cancelled() override {
    std::lock_guard<std::mutex> lk(jm_);
    cancelled_events_ = true;
  }
  std::pair<std::uint64_t, std::uint64_t> progress_snapshot() override {
    std::lock_guard<std::mutex> lk(jm_);
    return {watermark_ - range.first, range.size()};
  }

 protected:
  EventSink sink_;
  std::mutex jm_;
  std::map<std::uint64_t, std::pair<std::uint64_t, ChunkValue>> pending_;
  std::uint64_t watermark_;  ///< commit frontier: [range.first, watermark_) merged
  double seconds_ = 0.0;
  bool done_ = false;
  bool failed_ = false;
  bool cancelled_events_ = false;
};

/// An order-K top-k scan job; payload = the CLI's scan CSV section.
template <unsigned K>
class ScanJob final
    : public OrderedCommitJob<std::vector<core::ScoredOf<K>>, ScanJob<K>> {
  using Scored = core::ScoredOf<K>;
  using Base = OrderedCommitJob<std::vector<Scored>, ScanJob<K>>;

 public:
  ScanJob(std::string id, EventSink sink,
          std::shared_ptr<const core::BasicDetector<K>> det,
          core::BasicDetectorOptions<K> dopt, combinatorics::RankRange range,
          std::uint64_t chunk, std::uint64_t fingerprint)
      : Base(std::move(id), std::move(sink), range, chunk),
        det_(std::move(det)),
        dopt_(std::move(dopt)),
        fingerprint_(fingerprint),
        committed_(dopt_.top_k) {}

  std::vector<Scored> execute(const combinatorics::RankRange& r,
                              double& secs) {
    core::BasicDetectorOptions<K> o = dopt_;
    o.range = r;
    auto res = det_->run(o);
    secs = res.seconds;
    return std::move(res.best);
  }
  void fold(std::vector<Scored>& entries) {
    for (const Scored& e : entries) committed_.push(e);
  }
  std::vector<std::string> payload() {
    return core::scan_csv_lines<K>(committed_.sorted());
  }
  std::string done_detail() {
    return "scanned=" + std::to_string(this->range.size());
  }

  bool shutdown_persist(const std::string& dir) override {
    std::lock_guard<std::mutex> lk(this->jm_);
    if (this->done_ || this->failed_ || this->cancelled_events_) return false;
    shard::BasicCheckpoint<Scored> c;
    c.fingerprint = fingerprint_;
    c.num_snps = det_->num_snps();
    c.num_samples = det_->num_samples();
    c.objective = core::objective_name(dopt_.objective);
    c.top_k = dopt_.top_k;
    c.range = this->range;
    c.watermark = this->watermark_;
    c.seconds = this->seconds_;
    c.entries = committed_.sorted();
    const std::string path = dir + "/serve-" + this->id + ".ckpt";
    try {
      shard::write_checkpoint_file(path, c);
    } catch (const std::exception& e) {
      this->sink_(response("error", this->id,
                           std::string("checkpoint failed: ") + e.what()));
      return false;
    }
    this->sink_(response("event", this->id,
                         "checkpoint " + path + " watermark=" +
                             std::to_string(this->watermark_)));
    this->cancelled_events_ = true;  // no further events after persisting
    return true;
  }

 private:
  std::shared_ptr<const core::BasicDetector<K>> det_;
  core::BasicDetectorOptions<K> dopt_;
  std::uint64_t fingerprint_;
  core::BasicTopK<Scored> committed_;  ///< jm-guarded with the base state
};

/// A batched multi-phenotype permutation test job: partition 0 is the
/// observed labeling, partitions 1..P the shuffled nulls (same SplitMix64
/// seed stream as stats::permutation_test_of), all scored in one batched
/// pass chunked over the rank space.  Payload = the CLI's significance
/// report.  Not resumable: the per-partition state has no checkpoint
/// format, so shutdown aborts it with an error event.
template <unsigned K>
class SignificanceJob final
    : public OrderedCommitJob<std::vector<std::vector<core::ScoredOf<K>>>,
                              SignificanceJob<K>> {
  using Scored = core::ScoredOf<K>;
  using Base =
      OrderedCommitJob<std::vector<std::vector<Scored>>, SignificanceJob<K>>;

 public:
  SignificanceJob(std::string id, EventSink sink,
                  std::shared_ptr<const core::BasicDetector<K>> det,
                  core::BasicDetectorOptions<K> dopt,
                  dataset::PhenotypeBatch batch, unsigned permutations,
                  combinatorics::RankRange range, std::uint64_t chunk)
      : Base(std::move(id), std::move(sink), range, chunk),
        det_(std::move(det)),
        dopt_(std::move(dopt)),
        batch_(std::move(batch)),
        permutations_(permutations),
        part_best_(batch_.size(), core::BasicTopK<Scored>(1)) {}

  std::vector<std::vector<Scored>> execute(const combinatorics::RankRange& r,
                                           double& secs) {
    core::BasicDetectorOptions<K> o = dopt_;
    o.range = r;
    auto res = det_->run_batched(batch_, o);
    secs = res.seconds;
    return std::move(res.best);
  }
  void fold(std::vector<std::vector<Scored>>& best) {
    for (std::size_t p = 0; p < best.size(); ++p) {
      for (const Scored& e : best[p]) part_best_[p].push(e);
    }
  }
  std::vector<std::string> payload() {
    stats::BasicPermutationTestResult<K> r;
    r.observed = part_best_[0].sorted().front();
    r.null_scores.reserve(permutations_);
    unsigned as_good = 0;
    for (std::size_t p = 1; p < part_best_.size(); ++p) {
      const double s = part_best_[p].sorted().front().score;
      r.null_scores.push_back(s);
      if (s <= r.observed.score) ++as_good;
    }
    r.p_value = static_cast<double>(1 + as_good) /
                static_cast<double>(permutations_ + 1);
    return stats::significance_report<K>(r, permutations_);
  }
  std::string done_detail() {
    return "permutations=" + std::to_string(permutations_);
  }

  bool shutdown_persist(const std::string&) override {
    std::lock_guard<std::mutex> lk(this->jm_);
    if (this->done_ || this->failed_ || this->cancelled_events_) return false;
    this->sink_(response("error", this->id,
                         "interrupted before completion; significance jobs "
                         "are not resumable"));
    this->cancelled_events_ = true;
    return false;
  }

 private:
  std::shared_ptr<const core::BasicDetector<K>> det_;
  core::BasicDetectorOptions<K> dopt_;
  const dataset::PhenotypeBatch batch_;
  const unsigned permutations_;
  std::vector<core::BasicTopK<Scored>> part_best_;  ///< jm-guarded
};

}  // namespace

// -- Server -----------------------------------------------------------------

struct ScanServer::Impl {
  dataset::GenotypeMatrix d;
  ServeOptions opt;
  std::uint64_t fingerprint = 0;
  unsigned pool_size = 1;

  /// One detector (= one set of bitplanes) per interaction order, built on
  /// first use and shared by every later job of that order.
  std::mutex det_mu;
  std::array<std::shared_ptr<void>, combinatorics::kMaxOrder + 1> det_slots;

  mutable std::mutex mu;
  std::condition_variable work_cv;
  std::condition_variable idle_cv;
  std::vector<std::shared_ptr<JobBase>> jobs;
  std::size_t rr = 0;  ///< round-robin job cursor: no job starves another
  bool accepting = true;
  bool stopping = false;
  bool shutdown_ran = false;
  std::size_t interrupted = 0;
  std::vector<std::thread> workers;

  template <unsigned K>
  std::shared_ptr<const core::BasicDetector<K>> detector() {
    std::lock_guard<std::mutex> lk(det_mu);
    auto& slot = det_slots[K];
    if (!slot) slot = std::make_shared<core::BasicDetector<K>>(d);
    return std::static_pointer_cast<const core::BasicDetector<K>>(slot);
  }

  std::uint64_t chunk_for(std::uint64_t ranks) const {
    if (opt.chunk != 0) return opt.chunk;
    // Enough chunks that the pool interleaves concurrent jobs and a
    // shutdown only waits for small in-flight pieces, few enough that the
    // per-chunk detector-call overhead stays negligible.
    return std::max<std::uint64_t>(
        1, ranks / std::max<std::uint64_t>(64, 4ull * pool_size));
  }

  bool any_claimable() const {
    for (const auto& j : jobs) {
      if (j->has_claimable()) return true;
    }
    return false;
  }

  std::uint64_t inflight_total() const {
    std::uint64_t n = 0;
    for (const auto& j : jobs) n += j->inflight;
    return n;
  }

  void worker_loop() {
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
      work_cv.wait(lk, [&] {
        return stopping || (accepting && any_claimable());
      });
      if (stopping) return;
      std::shared_ptr<JobBase> job;
      combinatorics::RankRange r;
      const std::size_t n = jobs.size();
      for (std::size_t i = 0; i < n; ++i) {
        auto& candidate = jobs[(rr + i) % n];
        if (!candidate->has_claimable()) continue;
        r = candidate->claim();
        job = candidate;
        rr = (rr + i + 1) % n;
        break;
      }
      if (!job) continue;
      ++job->inflight;
      lk.unlock();
      job->run_chunk(r);
      lk.lock();
      --job->inflight;
      if (job->inflight == 0 && job->settled()) {
        jobs.erase(std::find(jobs.begin(), jobs.end(), job));
        if (rr >= jobs.size()) rr = 0;
      }
      idle_cv.notify_all();
    }
  }

  void add_job(std::shared_ptr<JobBase> job, const EventSink& sink,
               const std::string& accepted_detail) {
    std::lock_guard<std::mutex> lk(mu);
    if (!accepting) reject("server is shutting down");
    for (const auto& j : jobs) {
      if (j->id == job->id) reject("job id '" + job->id + "' is in use");
    }
    // `ok` is emitted under the lock so it always precedes the job's first
    // worker event on this sink.
    sink(response("ok", job->id, accepted_detail));
    jobs.push_back(std::move(job));
    work_cv.notify_all();
  }

  void submit_scan(const Request& req, const EventSink& sink) {
    const unsigned order =
        static_cast<unsigned>(param_u64(req.params, "order", 3));
    with_order(order, [&](auto kc) {
      constexpr unsigned K = decltype(kc)::value;
      core::BasicDetectorOptions<K> dopt;
      dopt.objective = param_objective(req.params);
      dopt.top_k =
          static_cast<std::size_t>(param_u64(req.params, "top", 10));
      if (dopt.top_k == 0) reject("top expects >= 1");
      dopt.version = param_version(req.params);
      dopt.threads = 1;  // parallelism comes from the shared pool
      dopt.config = opt.config;
      core::ensure_default_scorer(dopt, d.num_samples());
      const std::uint64_t total = rank_space(d.num_snps(), K);
      combinatorics::RankRange range{0, total};
      if (const auto it = req.params.find("range"); it != req.params.end()) {
        unsigned long long first = 0, last = 0;
        if (std::sscanf(it->second.c_str(), "%llu:%llu", &first, &last) != 2 ||
            first >= last || last > total) {
          reject("range expects FIRST:LAST with FIRST < LAST <= " +
                 std::to_string(total));
        }
        range = {first, last};
      }
      if (total == 0) reject("dataset has no order-" + std::to_string(K) +
                             " combinations");
      auto job = std::make_shared<ScanJob<K>>(
          req.id, sink, detector<K>(), std::move(dopt), range,
          chunk_for(range.size()), fingerprint);
      add_job(std::move(job), sink,
              "accepted scan order=" + std::to_string(K) +
                  " ranks=" + std::to_string(range.size()));
    });
  }

  void submit_significance(const Request& req, const EventSink& sink) {
    const unsigned order =
        static_cast<unsigned>(param_u64(req.params, "order", 3));
    with_order(order, [&](auto kc) {
      constexpr unsigned K = decltype(kc)::value;
      const auto permutations =
          static_cast<unsigned>(param_u64(req.params, "permutations", 19));
      if (permutations == 0) reject("permutations expects >= 1");
      const std::uint64_t seed = param_u64(req.params, "seed", 7);
      core::BasicDetectorOptions<K> dopt;
      dopt.objective = param_objective(req.params);
      dopt.top_k = 1;
      dopt.threads = 1;
      dopt.config = opt.config;
      core::ensure_default_scorer(dopt, d.num_samples());
      const std::uint64_t total = rank_space(d.num_snps(), K);
      if (total == 0) reject("dataset has no order-" + std::to_string(K) +
                             " combinations");
      // Partition 0 = observed labels; 1..P = nulls off the same SplitMix64
      // stream as stats::permutation_test_of, so the payload is
      // bit-identical to `trigen significance`.
      std::vector<std::vector<dataset::Phenotype>> parts;
      parts.reserve(permutations + 1);
      std::vector<dataset::Phenotype> observed(d.num_samples());
      for (std::size_t j = 0; j < d.num_samples(); ++j) {
        observed[j] = d.phenotype(j);
      }
      parts.push_back(std::move(observed));
      SplitMix64 seeds(seed);
      for (unsigned p = 0; p < permutations; ++p) {
        parts.push_back(stats::shuffled_labels(d, seeds.next()));
      }
      auto batch = dataset::PhenotypeBatch::build(d.num_samples(), parts);
      auto job = std::make_shared<SignificanceJob<K>>(
          req.id, sink, detector<K>(), std::move(dopt), std::move(batch),
          permutations, combinatorics::RankRange{0, total},
          chunk_for(total));
      add_job(std::move(job), sink,
              "accepted significance order=" + std::to_string(K) +
                  " permutations=" + std::to_string(permutations) +
                  " ranks=" + std::to_string(total));
    });
  }

  void cancel(const Request& req, const EventSink& sink) {
    std::lock_guard<std::mutex> lk(mu);
    for (auto it = jobs.begin(); it != jobs.end(); ++it) {
      if ((*it)->id != req.id) continue;
      (*it)->cancelled = true;       // stop issuing chunks
      (*it)->mark_cancelled();       // suppress further result events
      sink(response("ok", req.id, "cancelled"));
      if ((*it)->inflight == 0) {
        jobs.erase(it);
        if (rr >= jobs.size()) rr = 0;
        idle_cv.notify_all();
      }
      return;
    }
    sink(response("error", req.id, "no live job '" + req.id + "'"));
  }

  void status(const EventSink& sink) {
    std::lock_guard<std::mutex> lk(mu);
    for (const auto& j : jobs) {
      const auto [done, total] = j->progress_snapshot();
      sink(response("event", j->id,
                    "progress " + std::to_string(done) + " " +
                        std::to_string(total)));
    }
    sink(response("ok", "", "jobs=" + std::to_string(jobs.size())));
  }
};

ScanServer::ScanServer(dataset::GenotypeMatrix dataset, ServeOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->d = std::move(dataset);
  impl_->opt = std::move(options);
  impl_->fingerprint = shard::dataset_fingerprint(impl_->d);
  impl_->pool_size = impl_->opt.threads != 0
                         ? impl_->opt.threads
                         : std::max(1u, std::thread::hardware_concurrency());
  if (impl_->opt.checkpoint_dir.empty()) impl_->opt.checkpoint_dir = ".";
  impl_->workers.reserve(impl_->pool_size);
  for (unsigned t = 0; t < impl_->pool_size; ++t) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ScanServer::~ScanServer() {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->accepting = false;
    impl_->stopping = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& w : impl_->workers) w.join();
}

bool ScanServer::submit_line(const std::string& line, EventSink sink) {
  Request req;
  try {
    req = parse_request(line);
  } catch (const std::invalid_argument& e) {
    sink(response("error", "", e.what()));
    return true;
  }
  try {
    switch (req.kind) {
      case RequestKind::kPing:
        sink(response("ok", "", "pong"));
        return true;
      case RequestKind::kStatus:
        impl_->status(sink);
        return true;
      case RequestKind::kShutdown:
        sink(response("ok", "", "shutting-down"));
        return false;
      case RequestKind::kCancel:
        impl_->cancel(req, sink);
        return true;
      case RequestKind::kScan:
        impl_->submit_scan(req, sink);
        return true;
      case RequestKind::kSignificance:
        impl_->submit_significance(req, sink);
        return true;
      case RequestKind::kLease:
      case RequestKind::kRenew:
      case RequestKind::kComplete:
      case RequestKind::kAbandon:
        sink(response("error", req.id,
                      "fleet-coordination request on a scan server; connect "
                      "to a `trigen coordinate` endpoint instead"));
        return true;
    }
  } catch (const std::exception& e) {
    sink(response("error", req.id, e.what()));
  }
  return true;
}

bool ScanServer::drain(const std::atomic<bool>* interrupted) {
  std::unique_lock<std::mutex> lk(impl_->mu);
  while (!impl_->jobs.empty()) {
    if (interrupted != nullptr && interrupted->load()) return false;
    impl_->idle_cv.wait_for(lk, std::chrono::milliseconds(50));
  }
  return true;
}

std::size_t ScanServer::shutdown_and_checkpoint() {
  std::unique_lock<std::mutex> lk(impl_->mu);
  if (impl_->shutdown_ran) return 0;
  impl_->shutdown_ran = true;
  impl_->accepting = false;  // workers stop claiming chunks
  impl_->idle_cv.wait(lk, [&] { return impl_->inflight_total() == 0; });
  std::size_t written = 0;
  for (const auto& j : impl_->jobs) {
    if (!j->incomplete()) continue;
    ++impl_->interrupted;
    if (j->shutdown_persist(impl_->opt.checkpoint_dir)) ++written;
  }
  impl_->jobs.clear();
  impl_->rr = 0;
  return written;
}

std::size_t ScanServer::jobs_interrupted() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->interrupted;
}

std::size_t ScanServer::jobs_live() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->jobs.size();
}

const dataset::GenotypeMatrix& ScanServer::data() const { return impl_->d; }

}  // namespace trigen::serve
