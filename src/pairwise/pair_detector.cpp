#include "trigen/pairwise/pair_detector.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "trigen/combinatorics/scheduler.hpp"
#include "trigen/common/aligned.hpp"
#include "trigen/common/stopwatch.hpp"
#include "trigen/core/scan_driver.hpp"
#include "trigen/scoring/generic.hpp"

namespace trigen::pairwise {

using combinatorics::n_choose_k;
using dataset::Word;

PairTable reference_pair_table(const dataset::GenotypeMatrix& d,
                               std::size_t x, std::size_t y) {
  if (x >= d.num_snps() || y >= d.num_snps()) {
    throw std::out_of_range("reference_pair_table: SNP index out of range");
  }
  PairTable t;
  for (std::size_t j = 0; j < d.num_samples(); ++j) {
    t.counts[d.phenotype(j)]
            [static_cast<std::size_t>(d.at(x, j) * 3 + d.at(y, j))]++;
  }
  return t;
}

std::uint64_t rank_pair(std::uint32_t x, std::uint32_t y) {
  return n_choose_k(y, 2) + x;
}

std::uint64_t num_pairs(std::uint64_t m) { return n_choose_k(m, 2); }

namespace {

std::pair<std::uint32_t, std::uint32_t> unrank_pair(std::uint64_t rank) {
  // y = max { b : C(b,2) <= rank }.
  std::uint64_t y = static_cast<std::uint64_t>(
      std::sqrt(2.0 * static_cast<double>(rank) + 0.25) + 0.5);
  if (y < 1) y = 1;
  while (n_choose_k(y + 1, 2) <= rank) ++y;
  while (n_choose_k(y, 2) > rank) --y;
  return {static_cast<std::uint32_t>(rank - n_choose_k(y, 2)),
          static_cast<std::uint32_t>(y)};
}

/// Normalized (lower-is-better) scorer over the 9 pair cells.
std::function<double(const PairTable&)> make_pair_scorer(
    core::Objective o, std::uint32_t num_samples) {
  switch (o) {
    case core::Objective::kK2: {
      auto logfact =
          std::make_shared<scoring::LogFactorialTable>(num_samples + 1);
      return [logfact](const PairTable& t) {
        return scoring::k2_score_cells(*logfact, t.counts[0], t.counts[1]);
      };
    }
    case core::Objective::kMutualInformation:
      return [](const PairTable& t) {
        return -scoring::mutual_information_cells(t.counts[0], t.counts[1]);
      };
    case core::Objective::kChiSquared:
      return [](const PairTable& t) {
        return -scoring::chi_squared_cells(t.counts[0], t.counts[1]);
      };
  }
  throw std::invalid_argument("unknown objective");
}

}  // namespace

struct PairDetector::Impl {
  std::size_t num_snps = 0;
  std::size_t num_samples = 0;
  dataset::PhenoSplitPlanes split;
  /// Synthetic third-SNP planes: genotype-0 all-ones, genotype-1 all-zeros.
  /// Feeding them as the Z operand of the *triple* kernel pins g_z to 0, so
  /// cells (g_x, g_y, 0) of the 27-cell output hold the 9-cell pair table —
  /// which lets the pairwise path reuse every vectorized kernel unchanged.
  std::array<aligned_vector<Word>, 2> ones;
  std::array<aligned_vector<Word>, 2> zeros;
};

PairDetector::PairDetector(const dataset::GenotypeMatrix& d)
    : impl_(std::make_unique<Impl>()) {
  if (d.num_snps() < 2) {
    throw std::invalid_argument("PairDetector: need at least 2 SNPs");
  }
  impl_->num_snps = d.num_snps();
  impl_->num_samples = d.num_samples();
  impl_->split = dataset::PhenoSplitPlanes::build(d);
  for (int c = 0; c < 2; ++c) {
    const auto cs = static_cast<std::size_t>(c);
    impl_->ones[cs].assign(impl_->split.words(c), ~Word{0});
    impl_->zeros[cs].assign(impl_->split.words(c), 0);
  }
}

PairDetector::~PairDetector() = default;

std::size_t PairDetector::num_snps() const { return impl_->num_snps; }
std::size_t PairDetector::num_samples() const { return impl_->num_samples; }

PairTable PairDetector::contingency(std::size_t x, std::size_t y,
                                    core::KernelIsa isa) const {
  if (x >= impl_->num_snps || y >= impl_->num_snps || x == y) {
    throw std::out_of_range("PairDetector::contingency: bad SNP indices");
  }
  const core::TripleBlockKernel kernel = core::get_kernel(isa);
  PairTable out;
  for (int c = 0; c < 2; ++c) {
    const auto cs = static_cast<std::size_t>(c);
    std::uint32_t ft27[27] = {};
    kernel(impl_->split.plane(c, x, 0), impl_->split.plane(c, x, 1),
           impl_->split.plane(c, y, 0), impl_->split.plane(c, y, 1),
           impl_->ones[cs].data(), impl_->zeros[cs].data(), 0,
           impl_->split.words(c), ft27);
    for (int gx = 0; gx < 3; ++gx) {
      for (int gy = 0; gy < 3; ++gy) {
        out.counts[cs][static_cast<std::size_t>(gx * 3 + gy)] =
            ft27[gx * 9 + gy * 3 + 0];
      }
    }
    // Padding tail bits read as (g_x=2, g_y=2, g_z=0).
    out.counts[cs][8] -= static_cast<std::uint32_t>(impl_->split.pad_bits(c));
  }
  return out;
}

PairDetectionResult PairDetector::run(const PairDetectorOptions& options) const {
  if (options.top_k == 0) {
    throw std::invalid_argument("PairDetectorOptions::top_k must be >= 1");
  }
  PairDetectionResult result;
  result.isa_used =
      options.isa_auto ? core::best_kernel_isa() : options.isa;
  if (!core::kernel_available(result.isa_used)) {
    throw std::runtime_error("requested kernel ISA not available");
  }
  unsigned threads = options.threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }

  const std::uint64_t total = num_pairs(impl_->num_snps);
  result.pairs_evaluated = total;
  result.elements = total * impl_->num_samples;

  const auto scorer = make_pair_scorer(
      options.objective, static_cast<std::uint32_t>(impl_->num_samples));

  struct Best {
    std::vector<ScoredPair> entries;  // sorted ascending, <= top_k
  };
  std::vector<Best> per_thread(threads);
  auto push = [&](Best& best, const ScoredPair& s, std::size_t k) {
    auto it = std::lower_bound(
        best.entries.begin(), best.entries.end(), s,
        [](const ScoredPair& a, const ScoredPair& b) {
          if (a.score != b.score) return a.score < b.score;
          return rank_pair(a.x, a.y) < rank_pair(b.x, b.y);
        });
    best.entries.insert(it, s);
    if (best.entries.size() > k) best.entries.pop_back();
  };

  // Shared scan driver: same fork/join, chunking and progress skeleton as
  // the 3-way detector, with pair-rank work units.
  core::ScanConfig cfg;
  cfg.threads = threads;
  cfg.progress = options.progress;
  cfg.progress_total = total;
  Stopwatch sw;
  core::parallel_scan(
      total, cfg, per_thread,
      [&](unsigned, combinatorics::RankRange range,
          Best& best) -> std::uint64_t {
        auto [x, y] = unrank_pair(range.first);
        for (std::uint64_t r = range.first; r < range.last; ++r) {
          const PairTable t = contingency(x, y, result.isa_used);
          push(best, ScoredPair{x, y, scorer(t)}, options.top_k);
          if (x + 1 < y) {  // colex successor
            ++x;
          } else {
            ++y;
            x = 0;
          }
        }
        return range.size();
      });
  result.seconds = sw.seconds();

  Best merged;
  for (const auto& b : per_thread) {
    for (const auto& s : b.entries) push(merged, s, options.top_k);
  }
  result.best = std::move(merged.entries);
  return result;
}

}  // namespace trigen::pairwise
