#include "trigen/pairwise/pair_detector.hpp"

#include <algorithm>
#include <bit>
#include <functional>
#include <stdexcept>

#include "trigen/combinatorics/block_partition.hpp"
#include "trigen/combinatorics/scheduler.hpp"
#include "trigen/common/aligned.hpp"
#include "trigen/common/stopwatch.hpp"
#include "trigen/core/blocked_engine.hpp"
#include "trigen/core/scan_driver.hpp"
#include "trigen/dataset/bitplanes.hpp"
#include "trigen/scoring/generic.hpp"

namespace trigen::pairwise {

using combinatorics::RankRange;
using dataset::Word;

PairTable reference_pair_table(const dataset::GenotypeMatrix& d,
                               std::size_t x, std::size_t y) {
  if (x >= d.num_snps() || y >= d.num_snps()) {
    throw std::out_of_range("reference_pair_table: SNP index out of range");
  }
  PairTable t;
  for (std::size_t j = 0; j < d.num_samples(); ++j) {
    t.counts[d.phenotype(j)]
            [static_cast<std::size_t>(d.at(x, j) * 3 + d.at(y, j))]++;
  }
  return t;
}

std::function<double(const PairTable&)> make_normalized_pair_scorer(
    core::Objective o, std::uint32_t num_samples) {
  switch (o) {
    case core::Objective::kK2: {
      auto logfact =
          std::make_shared<scoring::LogFactorialTable>(num_samples + 1);
      return [logfact](const PairTable& t) {
        return scoring::k2_score_cells(*logfact, t.counts[0], t.counts[1]);
      };
    }
    case core::Objective::kMutualInformation:
      return [](const PairTable& t) {
        return -scoring::mutual_information_cells(t.counts[0], t.counts[1]);
      };
    case core::Objective::kChiSquared:
      return [](const PairTable& t) {
        return -scoring::chi_squared_cells(t.counts[0], t.counts[1]);
      };
  }
  throw std::invalid_argument("unknown objective");
}

namespace {

/// V1 pair evaluation from the naive Fig.-1 layout: genotype-plane ANDs
/// against the phenotype / negated phenotype plane (the 2-way instance of
/// core::contingency_v1).  Zero-padded genotype planes contribute nothing.
PairTable pair_contingency_v1(const dataset::BitPlanesV1& p, std::size_t x,
                              std::size_t y) {
  PairTable t;
  const Word* pheno = p.phenotype_plane();
  for (int gx = 0; gx < 3; ++gx) {
    const Word* px = p.plane(x, gx);
    for (int gy = 0; gy < 3; ++gy) {
      const Word* py = p.plane(y, gy);
      const auto cell =
          static_cast<std::size_t>(scoring::pair_cell_index(gx, gy));
      std::uint32_t ctrl = 0;
      std::uint32_t cases = 0;
      for (std::size_t w = 0; w < p.words(); ++w) {
        const Word g = px[w] & py[w];
        cases += static_cast<std::uint32_t>(std::popcount(g & pheno[w]));
        ctrl += static_cast<std::uint32_t>(std::popcount(g & ~pheno[w]));
      }
      t.counts[0][cell] = ctrl;
      t.counts[1][cell] = cases;
    }
  }
  return t;
}

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

struct PairDetector::Impl {
  std::size_t num_snps = 0;
  std::size_t num_samples = 0;
  dataset::BitPlanesV1 v1;
  dataset::PhenoSplitPlanes split;
  /// Synthetic third-SNP planes: genotype-0 all-ones, genotype-1 all-zeros.
  /// Feeding them as the Z operand of the *triple* kernel pins g_z to 0, so
  /// cells (g_x, g_y, 0) of the 27-cell output hold the 9-cell pair table —
  /// which lets the pairwise path reuse every vectorized kernel unchanged.
  std::array<aligned_vector<Word>, 2> ones;
  std::array<aligned_vector<Word>, 2> zeros;

  core::ConstantZPlanes z_planes() const {
    return core::ConstantZPlanes{{ones[0].data(), ones[1].data()},
                                 {zeros[0].data(), zeros[1].data()}};
  }
};

PairDetector::PairDetector(const dataset::GenotypeMatrix& d)
    : impl_(std::make_unique<Impl>()) {
  if (d.num_snps() < 2) {
    throw std::invalid_argument("PairDetector: need at least 2 SNPs");
  }
  if (!d.valid()) {
    throw std::invalid_argument(
        "PairDetector: dataset contains invalid values");
  }
  impl_->num_snps = d.num_snps();
  impl_->num_samples = d.num_samples();
  impl_->v1 = dataset::BitPlanesV1::build(d);
  impl_->split = dataset::PhenoSplitPlanes::build(d);
  for (int c = 0; c < 2; ++c) {
    const auto cs = static_cast<std::size_t>(c);
    impl_->ones[cs].assign(impl_->split.words(c), ~Word{0});
    impl_->zeros[cs].assign(impl_->split.words(c), 0);
  }
}

PairDetector::~PairDetector() = default;

std::size_t PairDetector::num_snps() const { return impl_->num_snps; }
std::size_t PairDetector::num_samples() const { return impl_->num_samples; }

PairTable PairDetector::contingency(std::size_t x, std::size_t y,
                                    core::KernelIsa isa) const {
  if (x >= impl_->num_snps || y >= impl_->num_snps || x == y) {
    throw std::out_of_range("PairDetector::contingency: bad SNP indices");
  }
  const core::TripleBlockKernel kernel = core::get_kernel(isa);
  PairTable out;
  for (int c = 0; c < 2; ++c) {
    const auto cs = static_cast<std::size_t>(c);
    std::uint32_t ft27[27] = {};
    kernel(impl_->split.plane(c, x, 0), impl_->split.plane(c, x, 1),
           impl_->split.plane(c, y, 0), impl_->split.plane(c, y, 1),
           impl_->ones[cs].data(), impl_->zeros[cs].data(), 0,
           impl_->split.words(c), ft27);
    for (int gx = 0; gx < 3; ++gx) {
      for (int gy = 0; gy < 3; ++gy) {
        out.counts[cs][static_cast<std::size_t>(gx * 3 + gy)] =
            ft27[gx * 9 + gy * 3 + 0];
      }
    }
    // Padding tail bits read as (g_x=2, g_y=2, g_z=0).
    out.counts[cs][8] -= static_cast<std::uint32_t>(impl_->split.pad_bits(c));
  }
  return out;
}

PairDetectionResult PairDetector::run(const PairDetectorOptions& options) const {
  PairDetectionResult result;
  result.threads_used = resolve_threads(options.threads);
  // Same ISA resolution as the 3-way detector: V1 and V3 are scalar by
  // definition, V4/V5 default to the widest available strategy, V2 honors
  // an explicitly requested ISA.
  result.isa_used = core::KernelIsa::kScalar;
  if (options.version == core::CpuVersion::kV4Vector ||
      options.version == core::CpuVersion::kV5PairCache) {
    result.isa_used =
        options.isa_auto ? core::best_kernel_isa() : options.isa;
  } else if (options.version == core::CpuVersion::kV2Split &&
             !options.isa_auto) {
    result.isa_used = options.isa;
  }
  if (!core::kernel_available(result.isa_used)) {
    throw std::runtime_error("requested kernel ISA not available: " +
                             core::kernel_isa_name(result.isa_used));
  }
  if (options.top_k == 0) {
    throw std::invalid_argument("PairDetectorOptions::top_k must be >= 1");
  }

  const std::size_t m = impl_->num_snps;
  const std::uint64_t total = num_pairs(m);
  RankRange range = options.range;
  if (range.empty()) range = {0, total};
  if (range.last > total) {
    throw std::invalid_argument(
        "PairDetectorOptions::range exceeds the space");
  }
  const bool partial = range.first != 0 || range.last != total;
  result.pairs_evaluated = range.size();
  result.elements = range.size() * impl_->num_samples;

  const auto scorer =
      options.scorer
          ? options.scorer
          : make_normalized_pair_scorer(
                options.objective,
                static_cast<std::uint32_t>(impl_->num_samples));

  core::ScanConfig cfg;
  cfg.threads = result.threads_used;
  cfg.chunk_size = options.chunk_size;
  cfg.progress = options.progress;
  cfg.progress_total = range.size();

  Stopwatch sw;
  core::PairTopK merged(options.top_k);
  const bool cached = options.version == core::CpuVersion::kV5PairCache;
  const bool blocked = options.version == core::CpuVersion::kV3Blocked ||
                       options.version == core::CpuVersion::kV4Vector ||
                       cached;
  if (!blocked) {
    // V1/V2: work unit = one pair rank inside `range`.
    const bool naive = options.version == core::CpuVersion::kV1Naive;
    const core::KernelIsa isa = result.isa_used;
    merged = core::scan_best<ScoredPair>(
        range.size(), cfg, options.top_k,
        [&](unsigned, RankRange r, core::PairTopK& top) -> std::uint64_t {
          combinatorics::for_each_pair(
              range.first + r.first, range.first + r.last,
              [&](const combinatorics::Pair& p) {
                const PairTable table =
                    naive ? pair_contingency_v1(impl_->v1, p.x, p.y)
                          : contingency(p.x, p.y, isa);
                top.push(ScoredPair{p.x, p.y, scorer(table)});
              });
          return r.size();
        });
    result.tiling_used = core::TilingParams{0, 0};
  } else {
    // V3/V4/V5: work unit = one block pair of the partition covering
    // `range`; emitted pairs are clipped to the range at the partition
    // boundary (interior blocks pay no per-pair overhead).  The V5 rung
    // reads the pair table straight off the x∩y plane popcounts — no
    // constant z operand, no 27-cell sweep, and no materialized planes
    // (counts-only kernel), so no L1 budget beyond V4's is needed (see
    // scan_block_pair).
    core::TilingParams tiling = options.tiling;
    if (!tiling.valid()) {
      tiling = core::autotune_tiling(
          core::detect_l1_config(),
          core::kernel_vector_words(result.isa_used));
    }
    result.tiling_used = tiling;
    const combinatorics::BlockGrid grid{m, tiling.bs};
    const combinatorics::BlockPartition part =
        combinatorics::partition_block_pairs(grid, range);
    const RankRange clip = partial ? range : core::kFullRange;
    std::vector<core::PairBlockScratch> scratch;
    scratch.reserve(cfg.threads);
    for (unsigned t = 0; t < cfg.threads; ++t) scratch.emplace_back(tiling.bs);
    const auto scan_blocks = [&](auto&& run_block) {
      return core::scan_best<ScoredPair>(
          part.block_ranks.size(), cfg, options.top_k,
          [&](unsigned tid, RankRange r,
              core::PairTopK& top) -> std::uint64_t {
            std::uint64_t emitted = 0;
            const auto on_table = [&](const combinatorics::Pair& p,
                                      const PairTable& table) {
              ++emitted;
              top.push(ScoredPair{p.x, p.y, scorer(table)});
            };
            for (std::uint64_t b = r.first; b < r.last; ++b) {
              run_block(
                  tid,
                  combinatorics::unrank_block_pair(part.block_ranks.first + b),
                  on_table);
            }
            return emitted;
          });
    };
    if (cached) {
      const core::CachedKernelSet kernels =
          core::get_cached_kernels(result.isa_used);
      merged = scan_blocks([&](unsigned tid, const core::BlockPair& bp,
                               const auto& on_table) {
        core::scan_block_pair(impl_->split, tiling, kernels, scratch[tid], bp,
                              clip, on_table);
      });
    } else {
      const core::TripleBlockKernel kernel =
          core::get_kernel(result.isa_used);
      const core::ConstantZPlanes z = impl_->z_planes();
      merged = scan_blocks([&](unsigned tid, const core::BlockPair& bp,
                               const auto& on_table) {
        core::scan_block_pair(impl_->split, tiling, kernel, scratch[tid], z,
                              bp, clip, on_table);
      });
    }
  }
  result.seconds = sw.seconds();
  result.best = merged.sorted();
  return result;
}

}  // namespace trigen::pairwise
