#include "trigen/pairwise/pair_detector.hpp"

#include <stdexcept>

namespace trigen::pairwise {

PairTable reference_pair_table(const dataset::GenotypeMatrix& d,
                               std::size_t x, std::size_t y) {
  if (x >= d.num_snps() || y >= d.num_snps()) {
    throw std::out_of_range("reference_pair_table: SNP index out of range");
  }
  PairTable t;
  for (std::size_t j = 0; j < d.num_samples(); ++j) {
    t.counts[d.phenotype(j)]
            [static_cast<std::size_t>(d.at(x, j) * 3 + d.at(y, j))]++;
  }
  return t;
}

}  // namespace trigen::pairwise
