#pragma once
/// \file pair_detector.hpp
/// \brief Second-order (pairwise) exhaustive epistasis detection.
///
/// Extension beyond the paper's headline: the related-work systems it
/// benchmarks its lineage against (BOOST, GBOOST, epiSNP, GWIS_FI) are
/// *pairwise* tools, and diseases like Crohn's are driven by second-order
/// interactions (§I).  This module runs all C(M,2) pairs through the same
/// stack as the 3-way detector: the phenotype-split bit-plane layout, the
/// full V1-V4 optimization ladder (naive planes, split planes, L1 blocking,
/// per-ISA vectorization), the shared scan driver, and rank-range
/// partitioning — so every orchestration layer built for triplets (sharding,
/// checkpoint/resume, merge, permutation testing) works for pairs too.
/// Options and results derive from the same order-generic bases as the
/// triplet detector (core::ScanOptionsBase / core::ScanStats).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "trigen/core/detector.hpp"
#include "trigen/dataset/genotype_matrix.hpp"
#include "trigen/scoring/contingency.hpp"

namespace trigen::pairwise {

/// One scored SNP pair (shared with the order-generic top-k machinery).
using ScoredPair = core::ScoredPair;

/// 9x2 frequency table for a SNP pair: counts[class][g_x * 3 + g_y].
using PairTable = scoring::PairContingencyTable;

/// Ground-truth pair table by per-sample counting (tests, quickchecks).
PairTable reference_pair_table(const dataset::GenotypeMatrix& d,
                               std::size_t x, std::size_t y);

/// Pair rank in colex order: rank(x < y) = C(y,2) + x.
inline std::uint64_t rank_pair(std::uint32_t x, std::uint32_t y) {
  return combinatorics::rank_pair({x, y});
}
/// Number of pairs: C(M, 2).
inline std::uint64_t num_pairs(std::uint64_t m) {
  return combinatorics::num_pairs(m);
}

/// Scorer for `o` over the 9 pair cells, normalized to lower-is-better
/// (MI and X^2 are negated), sized for datasets of `num_samples`.  The
/// pairwise counterpart of core::make_normalized_scorer, shared by the
/// detector, the shard runner and the permutation test so repeated scans
/// reuse one log-factorial table.
std::function<double(const PairTable&)> make_normalized_pair_scorer(
    core::Objective o, std::uint32_t num_samples);

/// Detection parameters for the 2-way scan.  All order-generic fields
/// (version, ISA, threads, chunking, tiling, top_k, rank range, progress)
/// come from core::ScanOptionsBase; `range` addresses the colex pair rank
/// space [0, C(M,2)).
struct PairDetectorOptions : core::ScanOptionsBase {
  /// Optional pre-built scorer overriding `objective` (must be normalized
  /// to lower-is-better, e.g. from make_normalized_pair_scorer).
  std::function<double(const PairTable&)> scorer{};
};

/// Injects the default normalized scorer for `objective` when none is set
/// — the shared prelude of every repeated-scan harness (shard runner,
/// permutation tests), overloaded per interaction order.
inline void ensure_default_scorer(core::DetectorOptions& opt,
                                  std::size_t num_samples) {
  if (!opt.scorer) {
    opt.scorer = core::make_normalized_scorer(
        opt.objective, static_cast<std::uint32_t>(num_samples));
  }
}
inline void ensure_default_scorer(PairDetectorOptions& opt,
                                  std::size_t num_samples) {
  if (!opt.scorer) {
    opt.scorer = make_normalized_pair_scorer(
        opt.objective, static_cast<std::uint32_t>(num_samples));
  }
}

/// Outcome of a 2-way detection run.
struct PairDetectionResult : core::ScanStats {
  std::vector<ScoredPair> best;  ///< best-first
  std::uint64_t pairs_evaluated = 0;
};

/// Exhaustive 2-way detector over one dataset.  Thread-safe for concurrent
/// run() calls; the bit-plane layouts are built once at construction.
class PairDetector {
 public:
  explicit PairDetector(const dataset::GenotypeMatrix& d);
  ~PairDetector();

  PairDetector(const PairDetector&) = delete;
  PairDetector& operator=(const PairDetector&) = delete;

  /// Runs exhaustive detection; throws std::invalid_argument for
  /// inconsistent options and std::runtime_error for unavailable ISAs.
  /// All four versions produce bit-identical results for any rank range
  /// (cross-checked in the test suite); they differ only in speed.
  PairDetectionResult run(const PairDetectorOptions& options = {}) const;

  /// Reference per-pair evaluation through the bitwise kernel over the
  /// full sample range — the cross-check the blocked path is validated
  /// against (and the V2 per-pair scan path).
  PairTable contingency(std::size_t x, std::size_t y,
                        core::KernelIsa isa = core::KernelIsa::kScalar) const;

  std::size_t num_snps() const;
  std::size_t num_samples() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace trigen::pairwise
