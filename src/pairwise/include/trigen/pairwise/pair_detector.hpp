#pragma once
/// \file pair_detector.hpp
/// \brief Second-order (pairwise) exhaustive epistasis detection.
///
/// Extension beyond the paper's headline: the related-work systems it
/// benchmarks its lineage against (BOOST, GBOOST, epiSNP, GWIS_FI) are
/// *pairwise* tools, and diseases like Crohn's are driven by second-order
/// interactions (§I).  The pairwise scan is the K = 2 instantiation of the
/// order-generic stack — `PairDetector` *is* `core::BasicDetector<2>` — so
/// every layer built for triplets (the V1-V5 ladder, per-ISA kernels,
/// rank-range partitioning, sharding, checkpoint/resume, merge, permutation
/// testing) works for pairs by construction.  This header keeps the
/// historical pairwise names as aliases.

#include <cstdint>
#include <functional>

#include "trigen/core/detector.hpp"
#include "trigen/dataset/genotype_matrix.hpp"
#include "trigen/scoring/contingency.hpp"

namespace trigen::pairwise {

/// One scored SNP pair (shared with the order-generic top-k machinery).
using ScoredPair = core::ScoredPair;

/// 9x2 frequency table for a SNP pair: counts[class][g_x * 3 + g_y].
using PairTable = scoring::PairContingencyTable;

/// Ground-truth pair table by per-sample counting (tests, quickchecks).
PairTable reference_pair_table(const dataset::GenotypeMatrix& d,
                               std::size_t x, std::size_t y);

/// Pair rank in colex order: rank(x < y) = C(y,2) + x.
inline std::uint64_t rank_pair(std::uint32_t x, std::uint32_t y) {
  return combinatorics::rank_pair({x, y});
}
/// Number of pairs: C(M, 2).
inline std::uint64_t num_pairs(std::uint64_t m) {
  return combinatorics::num_pairs(m);
}

/// Scorer for `o` over the 9 pair cells, normalized to lower-is-better
/// (MI and X^2 are negated), sized for datasets of `num_samples` — the
/// K = 2 instance of core::make_normalized_scorer_of.
inline std::function<double(const PairTable&)> make_normalized_pair_scorer(
    core::Objective o, std::uint32_t num_samples) {
  return core::make_normalized_scorer_of<2>(o, num_samples);
}

/// Detection parameters for the 2-way scan; `range` addresses the colex
/// pair rank space [0, C(M,2)).
using PairDetectorOptions = core::BasicDetectorOptions<2>;

/// The shared repeated-scan prelude, re-exported for both orders
/// (historically overloaded here before it went order-generic).
using core::ensure_default_scorer;

/// Outcome of a 2-way detection run.
using PairDetectionResult = core::BasicDetectionResult<2>;

/// Exhaustive 2-way detector over one dataset.
using PairDetector = core::BasicDetector<2>;

}  // namespace trigen::pairwise
