#pragma once
/// \file pair_detector.hpp
/// \brief Second-order (pairwise) exhaustive epistasis detection.
///
/// Extension beyond the paper's headline: the related-work systems it
/// benchmarks its lineage against (BOOST, GBOOST, epiSNP, GWIS_FI) are
/// *pairwise* tools, and diseases like Crohn's are driven by second-order
/// interactions (§I).  This module reuses the phenotype-split bit-plane
/// layout and the per-ISA vector strategies to evaluate all C(M,2) pairs
/// with 9x2 contingency tables.

#include <cstdint>
#include <memory>
#include <vector>

#include "trigen/core/detector.hpp"
#include "trigen/dataset/genotype_matrix.hpp"

namespace trigen::pairwise {

/// One scored SNP pair.
struct ScoredPair {
  std::uint32_t x = 0, y = 0;
  double score = 0.0;  ///< normalized: lower is better
};

/// 9x2 frequency table for a SNP pair.
struct PairTable {
  /// counts[class][g_x * 3 + g_y]
  std::array<std::array<std::uint32_t, 9>, 2> counts{};
  friend bool operator==(const PairTable&, const PairTable&) = default;
};

/// Ground-truth pair table by per-sample counting (tests, quickchecks).
PairTable reference_pair_table(const dataset::GenotypeMatrix& d,
                               std::size_t x, std::size_t y);

/// Pair rank in colex order: rank(x < y) = C(y,2) + x.
std::uint64_t rank_pair(std::uint32_t x, std::uint32_t y);
/// Number of pairs: C(M, 2).
std::uint64_t num_pairs(std::uint64_t m);

/// Options mirror core::DetectorOptions where meaningful.
struct PairDetectorOptions {
  core::Objective objective = core::Objective::kK2;
  core::KernelIsa isa = core::KernelIsa::kScalar;
  bool isa_auto = true;
  unsigned threads = 1;
  std::size_t top_k = 1;
  /// Optional progress callback in pairs scanned (see core::ProgressFn).
  core::ProgressFn progress{};
};

struct PairDetectionResult {
  std::vector<ScoredPair> best;  ///< best-first
  std::uint64_t pairs_evaluated = 0;
  std::uint64_t elements = 0;  ///< pairs x samples
  double seconds = 0.0;
  core::KernelIsa isa_used = core::KernelIsa::kScalar;

  double elements_per_second() const {
    return seconds > 0.0 ? static_cast<double>(elements) / seconds : 0.0;
  }
};

/// Exhaustive 2-way detector over one dataset.
class PairDetector {
 public:
  explicit PairDetector(const dataset::GenotypeMatrix& d);
  ~PairDetector();

  PairDetector(const PairDetector&) = delete;
  PairDetector& operator=(const PairDetector&) = delete;

  PairDetectionResult run(const PairDetectorOptions& options = {}) const;

  /// Pair contingency via the bitwise kernel (cross-checked against
  /// reference_pair_table in tests).
  PairTable contingency(std::size_t x, std::size_t y,
                        core::KernelIsa isa = core::KernelIsa::kScalar) const;

  std::size_t num_snps() const;
  std::size_t num_samples() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace trigen::pairwise
