#include "trigen/shard/merge.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "trigen/combinatorics/combinations.hpp"

namespace trigen::shard {
namespace {

[[noreturn]] void reject(const std::string& what) {
  throw std::runtime_error("shard merge: " + what);
}

std::string range_str(const combinatorics::RankRange& r) {
  return "[" + std::to_string(r.first) + ", " + std::to_string(r.last) + ")";
}

/// The shared merge body.
template <typename Scored, typename ResultT>
BasicMergedScan<ResultT> merge_impl(
    const std::vector<BasicShardResult<Scored>>& shards,
    MergeCoverage coverage) {
  if (shards.empty()) {
    throw std::invalid_argument("shard merge: no shard results to merge");
  }

  const BasicShardResult<Scored>& ref = shards.front();
  for (const BasicShardResult<Scored>& s : shards) {
    if (s.fingerprint != ref.fingerprint) {
      reject("fingerprint mismatch: shard " + range_str(s.range) +
             " was scanned against a different dataset than shard " +
             range_str(ref.range));
    }
    if (s.num_snps != ref.num_snps || s.num_samples != ref.num_samples) {
      reject("dataset shape mismatch: shard " + range_str(s.range) + " has " +
             std::to_string(s.num_snps) + " x " +
             std::to_string(s.num_samples) + ", shard " +
             range_str(ref.range) + " has " + std::to_string(ref.num_snps) +
             " x " + std::to_string(ref.num_samples));
    }
    if (s.objective != ref.objective) {
      reject("objective mismatch: shard " + range_str(s.range) + " used '" +
             s.objective + "', shard " + range_str(ref.range) + " used '" +
             ref.objective + "'");
    }
    if (s.top_k != ref.top_k) {
      reject("top_k mismatch: shard " + range_str(s.range) + " kept " +
             std::to_string(s.top_k) + " entries, shard " +
             range_str(ref.range) + " kept " + std::to_string(ref.top_k));
    }
  }

  // Coverage check: sorted by first rank, the ranges must tile [0, total).
  std::vector<const BasicShardResult<Scored>*> by_rank;
  by_rank.reserve(shards.size());
  for (const BasicShardResult<Scored>& s : shards) by_rank.push_back(&s);
  std::sort(by_rank.begin(), by_rank.end(),
            [](const BasicShardResult<Scored>* a,
               const BasicShardResult<Scored>* b) {
              return a->range.first < b->range.first;
            });
  const std::uint64_t total = OrderTraits<Scored>::space(ref.num_snps);
  const bool full = coverage == MergeCoverage::kFullScan;
  std::uint64_t expect = full ? 0 : by_rank.front()->range.first;
  for (const BasicShardResult<Scored>* s : by_rank) {
    if (s->range.first > expect) {
      reject("coverage gap: ranks [" + std::to_string(expect) + ", " +
             std::to_string(s->range.first) + ") are in no shard");
    }
    if (s->range.first < expect) {
      reject("overlapping shards: shard " + range_str(s->range) +
             " re-covers ranks below " + std::to_string(expect));
    }
    expect = s->range.last;
  }
  if (full && expect < total) {
    reject("coverage gap: ranks [" + std::to_string(expect) + ", " +
           std::to_string(total) + ") are in no shard");
  }

  BasicMergedScan<ResultT> m;
  m.range = {by_rank.front()->range.first, expect};
  m.fingerprint = ref.fingerprint;
  m.num_snps = ref.num_snps;
  m.num_samples = ref.num_samples;
  m.objective = ref.objective;
  m.top_k = ref.top_k;
  m.num_shards = shards.size();

  core::BasicTopK<Scored> acc(static_cast<std::size_t>(ref.top_k));
  for (const BasicShardResult<Scored>& s : shards) {
    for (const auto& e : s.entries) acc.push(e);
    m.result.combinations_evaluated += s.range.size();
    m.result.seconds += s.seconds;
    m.max_shard_seconds = std::max(m.max_shard_seconds, s.seconds);
  }
  m.result.elements = m.result.combinations_evaluated * ref.num_samples;
  m.result.best = acc.sorted();
  return m;
}

template <typename Scored, typename ResultT>
BasicShardResult<Scored> to_shard_result_impl(
    const BasicMergedScan<ResultT>& m) {
  BasicShardResult<Scored> r;
  r.fingerprint = m.fingerprint;
  r.num_snps = m.num_snps;
  r.num_samples = m.num_samples;
  r.objective = m.objective;
  r.top_k = m.top_k;
  r.range = m.range;
  r.seconds = m.result.seconds;
  r.entries = m.result.best;
  return r;
}

}  // namespace

template <unsigned K>
MergedScanOf<K> merge_shards_of(
    const std::vector<BasicShardResult<core::ScoredOf<K>>>& shards,
    MergeCoverage coverage) {
  return merge_impl<core::ScoredOf<K>, core::BasicDetectionResult<K>>(
      shards, coverage);
}

template <unsigned K>
BasicShardResult<core::ScoredOf<K>> to_shard_result(const MergedScanOf<K>& m) {
  return to_shard_result_impl<core::ScoredOf<K>>(m);
}

template MergedScanOf<2> merge_shards_of<2>(
    const std::vector<BasicShardResult<core::ScoredOf<2>>>&, MergeCoverage);
template MergedScanOf<3> merge_shards_of<3>(
    const std::vector<BasicShardResult<core::ScoredOf<3>>>&, MergeCoverage);
template MergedScanOf<4> merge_shards_of<4>(
    const std::vector<BasicShardResult<core::ScoredOf<4>>>&, MergeCoverage);
template MergedScanOf<5> merge_shards_of<5>(
    const std::vector<BasicShardResult<core::ScoredOf<5>>>&, MergeCoverage);
template MergedScanOf<6> merge_shards_of<6>(
    const std::vector<BasicShardResult<core::ScoredOf<6>>>&, MergeCoverage);

template BasicShardResult<core::ScoredOf<2>> to_shard_result<2>(
    const MergedScanOf<2>&);
template BasicShardResult<core::ScoredOf<3>> to_shard_result<3>(
    const MergedScanOf<3>&);
template BasicShardResult<core::ScoredOf<4>> to_shard_result<4>(
    const MergedScanOf<4>&);
template BasicShardResult<core::ScoredOf<5>> to_shard_result<5>(
    const MergedScanOf<5>&);
template BasicShardResult<core::ScoredOf<6>> to_shard_result<6>(
    const MergedScanOf<6>&);

}  // namespace trigen::shard
