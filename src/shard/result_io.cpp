#include "trigen/shard/result_io.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#ifndef _WIN32
#include <fcntl.h>
#include <time.h>
#include <unistd.h>
#endif

#include "trigen/combinatorics/combinations.hpp"

namespace trigen::shard {
namespace {

constexpr char kShardMagic[] = "TRIGEN-SHARD";
constexpr char kCheckpointMagic[] = "TRIGEN-CHECKPOINT";
/// Writers emit v2 (with the `order` field); readers also accept the
/// pre-pairwise v1, whose order is 3 by definition.
constexpr char kFormatVersion[] = "v2";
constexpr char kLegacyVersion[] = "v1";

/// Plausibility bounds mirroring dataset I/O: a corrupted header must fail
/// with a parse error, not an absurd allocation or a 64-bit overflow in
/// C(M,k).
constexpr std::uint64_t kMaxSnps = 1u << 22;
constexpr std::uint64_t kMaxSamples = 1u << 22;
constexpr std::uint64_t kMaxTopK = 1u << 24;

[[noreturn]] void fail(const char* kind, const std::string& what) {
  throw std::runtime_error(std::string(kind) + ": " + what);
}

std::string next_token(std::istream& is, const char* kind, const char* what) {
  std::string tok;
  if (!(is >> tok)) {
    fail(kind, std::string("truncated file: missing ") + what);
  }
  return tok;
}

void expect_key(std::istream& is, const char* kind, const char* key) {
  const std::string tok = next_token(is, kind, key);
  if (tok != key) {
    fail(kind, "expected '" + std::string(key) + "', got '" + tok + "'");
  }
}

std::uint64_t parse_u64(const std::string& tok, const char* kind,
                        const char* what, int base = 10) {
  const char* begin = tok.c_str();
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(begin, &end, base);
  if (end == begin || *end != '\0' || errno != 0 || tok[0] == '-') {
    fail(kind, std::string("malformed ") + what + " '" + tok + "'");
  }
  return v;
}

std::uint64_t read_u64_field(std::istream& is, const char* kind,
                             const char* key, int base = 10) {
  expect_key(is, kind, key);
  return parse_u64(next_token(is, kind, key), kind, key, base);
}

double read_double(std::istream& is, const char* kind, const char* what) {
  const std::string tok = next_token(is, kind, what);
  const char* begin = tok.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin || *end != '\0') {
    fail(kind, std::string("malformed ") + what + " '" + tok + "'");
  }
  return v;
}

/// `%a` hex float: exact double round trip, locale-independent.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

std::string format_fingerprint(std::uint64_t fp) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

/// Header fields shared by both formats, in file order.
struct Header {
  std::uint64_t fingerprint = 0;
  std::uint64_t num_snps = 0;
  std::uint64_t num_samples = 0;
  std::string objective;
  std::uint64_t top_k = 0;
  combinatorics::RankRange range;
};

void write_header(std::ostream& os, const char* magic, unsigned order,
                  const Header& h) {
  os << magic << ' ' << kFormatVersion << '\n'
     << "order " << order << '\n'
     << "fingerprint " << format_fingerprint(h.fingerprint) << '\n'
     << "snps " << h.num_snps << '\n'
     << "samples " << h.num_samples << '\n'
     << "objective " << h.objective << '\n'
     << "top_k " << h.top_k << '\n'
     << "range " << h.range.first << ' ' << h.range.last << '\n';
}

/// Reads magic + version + order (v2) or magic + version (v1, order 3).
/// Fails on anything else; a wrong-order file is rejected here with a
/// precise message rather than misread downstream.  `expected_order` 0
/// accepts any supported order (the probing mode of probe_shard_order).
unsigned read_preamble(std::istream& is, const char* magic, const char* kind,
                       unsigned expected_order) {
  std::string tok;
  if (!(is >> tok)) fail(kind, "empty file");
  if (tok != magic) {
    fail(kind, "bad magic '" + tok + "' (expected " + magic + ")");
  }
  tok = next_token(is, kind, "format version");
  unsigned order = 3;  // v1 predates pairwise shards: always a triplet scan
  if (tok == kFormatVersion) {
    const std::uint64_t o = read_u64_field(is, kind, "order");
    if (o < 2 || o > combinatorics::kMaxOrder) {
      fail(kind, "unsupported order " + std::to_string(o) +
                     " (this build reads orders 2.." +
                     std::to_string(combinatorics::kMaxOrder) + ")");
    }
    order = static_cast<unsigned>(o);
  } else if (tok != kLegacyVersion) {
    fail(kind, "unsupported format version '" + tok + "' (expected " +
                   kFormatVersion + " or " + kLegacyVersion + ")");
  }
  if (expected_order != 0 && order != expected_order) {
    fail(kind, "order mismatch: file holds an order-" +
                   std::to_string(order) + " scan, but an order-" +
                   std::to_string(expected_order) +
                   " artifact was requested");
  }
  return order;
}

template <unsigned Order>
Header read_header(std::istream& is, const char* magic, const char* kind) {
  read_preamble(is, magic, kind, Order);
  Header h;
  h.fingerprint = read_u64_field(is, kind, "fingerprint", 16);
  h.num_snps = read_u64_field(is, kind, "snps");
  h.num_samples = read_u64_field(is, kind, "samples");
  if (h.num_snps < Order || h.num_snps > kMaxSnps || h.num_samples == 0 ||
      h.num_samples > kMaxSamples) {
    fail(kind, "implausible dataset shape (" + std::to_string(h.num_snps) +
                   " x " + std::to_string(h.num_samples) + ")");
  }
  expect_key(is, kind, "objective");
  h.objective = next_token(is, kind, "objective name");
  h.top_k = read_u64_field(is, kind, "top_k");
  if (h.top_k == 0 || h.top_k > kMaxTopK) {
    fail(kind, "implausible top_k " + std::to_string(h.top_k));
  }
  expect_key(is, kind, "range");
  h.range.first = parse_u64(next_token(is, kind, "range first"), kind,
                            "range first");
  h.range.last = parse_u64(next_token(is, kind, "range last"), kind,
                           "range last");
  // At order >= 4 a plausible SNP count can still overflow the u64 rank
  // fields; such a scan is unrepresentable in this format.
  std::uint64_t total = 0;
  try {
    total = combinatorics::n_choose_k(h.num_snps, Order);
  } catch (const std::overflow_error&) {
    fail(kind, "rank space exceeds 2^64: C(" + std::to_string(h.num_snps) +
                   "," + std::to_string(Order) + ") is not addressable");
  }
  if (h.range.first >= h.range.last || h.range.last > total) {
    fail(kind, "invalid range [" + std::to_string(h.range.first) + ", " +
                   std::to_string(h.range.last) + ") for C(" +
                   std::to_string(h.num_snps) + "," + std::to_string(Order) +
                   ") = " + std::to_string(total));
  }
  return h;
}

template <typename Scored>
void write_entries(std::ostream& os, const std::vector<Scored>& entries) {
  using Traits = OrderTraits<Scored>;
  os << "entries " << entries.size() << '\n';
  for (const auto& e : entries) {
    os << 'e';
    for (const std::uint32_t snp : Traits::snps(e)) os << ' ' << snp;
    os << ' ' << format_double(e.score) << '\n';
  }
}

/// Reads and validates the entry list: count == min(top_k, covered ranks),
/// each combination strictly increasing and inside the covered rank
/// interval, list strictly ascending in (score, rank) — i.e. exactly a
/// top-k dump.
template <typename Scored>
std::vector<Scored> read_entries(std::istream& is, const char* kind,
                                 const Header& h, std::uint64_t covered) {
  using Traits = OrderTraits<Scored>;
  const std::uint64_t n = read_u64_field(is, kind, "entries");
  const std::uint64_t expected = std::min<std::uint64_t>(h.top_k, covered);
  if (n != expected) {
    fail(kind, "entry count " + std::to_string(n) + " != min(top_k=" +
                   std::to_string(h.top_k) + ", covered=" +
                   std::to_string(covered) + ") = " +
                   std::to_string(expected));
  }
  std::vector<Scored> entries;
  entries.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    expect_key(is, kind, "e");
    std::array<std::uint32_t, Traits::kOrder> snps{};
    bool increasing = true;
    for (unsigned j = 0; j < Traits::kOrder; ++j) {
      snps[j] = static_cast<std::uint32_t>(
          parse_u64(next_token(is, kind, "entry snp"), kind, "entry snp"));
      if (j > 0 && snps[j] <= snps[j - 1]) increasing = false;
    }
    const double score = read_double(is, kind, "entry score");
    if (!increasing || snps[Traits::kOrder - 1] >= h.num_snps) {
      fail(kind, "entry " + std::to_string(i) + " is not a strictly " +
                     "increasing order-" + std::to_string(Traits::kOrder) +
                     " combination below " + std::to_string(h.num_snps));
    }
    const Scored s = Traits::make(snps, score);
    const std::uint64_t rank = Traits::rank(s);
    if (rank < h.range.first || rank >= h.range.first + covered) {
      fail(kind, "entry " + std::to_string(i) + " rank " +
                     std::to_string(rank) + " outside the covered ranks [" +
                     std::to_string(h.range.first) + ", " +
                     std::to_string(h.range.first + covered) + ")");
    }
    if (!entries.empty() && !(entries.back() < s)) {
      fail(kind, "entries are not strictly ascending in (score, rank) at "
                 "index " + std::to_string(i));
    }
    entries.push_back(s);
  }
  return entries;
}

void read_trailer(std::istream& is, const char* kind, const char* magic) {
  expect_key(is, kind, "end");
  const std::string tok = next_token(is, kind, "trailer magic");
  if (tok != magic) {
    fail(kind, "trailer names '" + tok + "' (expected " + magic + ")");
  }
  std::string extra;
  if (is >> extra) {
    fail(kind, "trailing content after the end trailer: '" + extra + "'");
  }
}

/// EINTR/EAGAIN-class errno values: the syscall may succeed if simply
/// retried, so the writers below retry them with bounded backoff instead of
/// failing the artifact (and ultimately the whole shard) on the first
/// signal-interrupted write.
bool transient_errno(int e) {
  return e == EINTR || e == EAGAIN
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
         || e == EWOULDBLOCK
#endif
      ;
}

/// Every durable-write failure surfaces the path, strerror(errno), the raw
/// errno, and — when retries were spent — how many, as a ShardIoError whose
/// transient() classification tells run_shard whether re-attempting the
/// whole write is worthwhile.
[[noreturn]] void fail_io(const char* kind, const char* op,
                          const std::string& path, int err, int retries = 0) {
  std::string msg = std::string(kind) + ": " + op + " '" + path +
                    "' failed: " + std::strerror(err) + " (errno " +
                    std::to_string(err) + ")";
  if (retries > 0) {
    msg += " after " + std::to_string(retries) + " retries";
  }
  throw ShardIoError(msg, path, err, transient_errno(err));
}

#ifndef _WIN32
/// Retry budget for EAGAIN-class failures on one durable write; EINTR
/// retries are free (immediate) and uncounted, since a signal storm should
/// never translate into artifact loss.
constexpr int kMaxTransientRetries = 8;

void backoff_sleep(int attempt) {
  // 1, 2, 4, ... ms, capped at 64ms: ~127ms worst-case total, long enough
  // to ride out a transient EAGAIN without stalling a scan noticeably.
  struct timespec ts = {0, (1L << (attempt < 6 ? attempt : 6)) * 1000000L};
  ::nanosleep(&ts, nullptr);
}

/// Durably writes `data` to `tmp`: the file contents are fsynced before the
/// caller renames, so a crash or power loss after the rename can never land
/// a truncated/empty file under the final name — the corruption the `end`
/// trailer exists to detect must come from outside, never from us.
void write_durable(const std::string& tmp, const char* kind,
                   const std::string& data) {
  int fd = -1;
  for (int attempt = 0;; ++attempt) {
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) break;
    if (errno == EINTR) continue;
    if (transient_errno(errno) && attempt < kMaxTransientRetries) {
      backoff_sleep(attempt);
      continue;
    }
    fail_io(kind, "open for writing", tmp, errno, attempt);
  }
  std::size_t off = 0;
  int retries = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      const int err = errno;
      if (err == EINTR) continue;
      if (transient_errno(err) && retries < kMaxTransientRetries) {
        backoff_sleep(retries++);
        continue;
      }
      ::close(fd);
      fail_io(kind, "write", tmp, err, retries);
    }
    off += static_cast<std::size_t>(n);
  }
  while (::fsync(fd) != 0) {
    const int err = errno;
    if (err == EINTR) continue;
    ::close(fd);
    fail_io(kind, "fsync", tmp, err);
  }
  if (::close(fd) != 0 && errno != EINTR) {
    // EINTR on close counts as closed (POSIX leaves the fd state
    // unspecified; retrying risks closing a reused descriptor).
    fail_io(kind, "close", tmp, errno);
  }
}

/// Best-effort fsync of the directory holding `path`, making the rename
/// itself durable (POSIX only persists the new directory entry once the
/// directory is synced).  Failure is not fatal: the file contents are
/// already safe, and some filesystems refuse directory fsync.
void sync_parent_directory(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}
#else
void write_durable(const std::string& tmp, const char* kind,
                   const std::string& data) {
  std::ofstream os(tmp, std::ios_base::trunc | std::ios_base::binary);
  if (!os) fail_io(kind, "open for writing", tmp, errno);
  os.write(data.data(), static_cast<std::streamsize>(data.size()));
  os.flush();
  if (!os) fail_io(kind, "write", tmp, errno);
}

void sync_parent_directory(const std::string&) {}
#endif

/// Atomic, crash-durable write: the full body is rendered in memory, fsynced
/// into a temp file alongside the target, renamed over it, and the parent
/// directory is synced so the rename survives power loss.  Readers therefore
/// only ever observe either the old complete file or the new complete file.
template <typename WriteFn>
void write_file_atomically(const std::string& path, const char* kind,
                           WriteFn&& write_fn) {
  std::ostringstream body;
  write_fn(body);
  if (!body) fail(kind, "render failure for '" + path + "'");
  const std::string tmp = path + ".tmp";
  write_durable(tmp, kind, body.str());
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    fail_io(kind, "rename over", path, err);
  }
  sync_parent_directory(path);
}

std::ifstream open_for_read(const std::string& path, const char* kind) {
  std::ifstream is(path);
  if (!is) fail(kind, "cannot open '" + path + "' for reading");
  return is;
}

// -- Generic format bodies ---------------------------------------------------

template <typename Scored>
void write_shard_result_impl(std::ostream& os,
                             const BasicShardResult<Scored>& r) {
  write_header(os, kShardMagic, OrderTraits<Scored>::kOrder,
               Header{r.fingerprint, r.num_snps, r.num_samples, r.objective,
                      r.top_k, r.range});
  os << "seconds " << format_double(r.seconds) << '\n';
  write_entries(os, r.entries);
  os << "end " << kShardMagic << '\n';
}

template <typename Scored>
BasicShardResult<Scored> read_shard_result_impl(std::istream& is) {
  const char* kind = "shard-result";
  const Header h =
      read_header<OrderTraits<Scored>::kOrder>(is, kShardMagic, kind);
  BasicShardResult<Scored> r;
  r.fingerprint = h.fingerprint;
  r.num_snps = h.num_snps;
  r.num_samples = h.num_samples;
  r.objective = h.objective;
  r.top_k = h.top_k;
  r.range = h.range;
  expect_key(is, kind, "seconds");
  r.seconds = read_double(is, kind, "seconds");
  r.entries = read_entries<Scored>(is, kind, h, h.range.size());
  read_trailer(is, kind, kShardMagic);
  return r;
}

template <typename Scored>
void write_checkpoint_impl(std::ostream& os,
                           const BasicCheckpoint<Scored>& c) {
  write_header(os, kCheckpointMagic, OrderTraits<Scored>::kOrder,
               Header{c.fingerprint, c.num_snps, c.num_samples, c.objective,
                      c.top_k, c.range});
  os << "watermark " << c.watermark << '\n';
  os << "seconds " << format_double(c.seconds) << '\n';
  write_entries(os, c.entries);
  os << "end " << kCheckpointMagic << '\n';
}

template <typename Scored>
BasicCheckpoint<Scored> read_checkpoint_impl(std::istream& is) {
  const char* kind = "checkpoint";
  const Header h =
      read_header<OrderTraits<Scored>::kOrder>(is, kCheckpointMagic, kind);
  BasicCheckpoint<Scored> c;
  c.fingerprint = h.fingerprint;
  c.num_snps = h.num_snps;
  c.num_samples = h.num_samples;
  c.objective = h.objective;
  c.top_k = h.top_k;
  c.range = h.range;
  c.watermark = read_u64_field(is, kind, "watermark");
  if (c.watermark < c.range.first || c.watermark > c.range.last) {
    fail(kind, "watermark " + std::to_string(c.watermark) +
                   " outside range [" + std::to_string(c.range.first) + ", " +
                   std::to_string(c.range.last) + "]");
  }
  expect_key(is, kind, "seconds");
  c.seconds = read_double(is, kind, "seconds");
  c.entries = read_entries<Scored>(is, kind, h, c.watermark - c.range.first);
  read_trailer(is, kind, kCheckpointMagic);
  return c;
}

}  // namespace

void write_text_file_durably(const std::string& path, const char* kind,
                             const std::string& body) {
  write_file_atomically(path, kind,
                        [&](std::ostream& os) { os << body; });
}

template <typename Scored>
void write_shard_result(std::ostream& os, const BasicShardResult<Scored>& r) {
  write_shard_result_impl(os, r);
}

template <typename Scored>
BasicShardResult<Scored> read_shard_result_as(std::istream& is) {
  return read_shard_result_impl<Scored>(is);
}

template <typename Scored>
void write_shard_result_file(const std::string& path,
                             const BasicShardResult<Scored>& r) {
  write_file_atomically(path, "shard-result", [&](std::ostream& os) {
    write_shard_result_impl(os, r);
  });
}

template <typename Scored>
BasicShardResult<Scored> read_shard_result_file_as(const std::string& path) {
  auto is = open_for_read(path, "shard-result");
  return read_shard_result_impl<Scored>(is);
}

template <typename Scored>
void write_checkpoint(std::ostream& os, const BasicCheckpoint<Scored>& c) {
  write_checkpoint_impl(os, c);
}

template <typename Scored>
BasicCheckpoint<Scored> read_checkpoint_as(std::istream& is) {
  return read_checkpoint_impl<Scored>(is);
}

template <typename Scored>
void write_checkpoint_file(const std::string& path,
                           const BasicCheckpoint<Scored>& c) {
  write_file_atomically(path, "checkpoint", [&](std::ostream& os) {
    write_checkpoint_impl(os, c);
  });
}

template <typename Scored>
BasicCheckpoint<Scored> read_checkpoint_file_as(const std::string& path) {
  auto is = open_for_read(path, "checkpoint");
  return read_checkpoint_impl<Scored>(is);
}

// One instantiation per supported interaction order.
#define TRIGEN_SHARD_IO_INSTANTIATE(S)                                        \
  template void write_shard_result<S>(std::ostream&,                          \
                                      const BasicShardResult<S>&);            \
  template BasicShardResult<S> read_shard_result_as<S>(std::istream&);        \
  template void write_shard_result_file<S>(const std::string&,               \
                                           const BasicShardResult<S>&);       \
  template BasicShardResult<S> read_shard_result_file_as<S>(                  \
      const std::string&);                                                    \
  template void write_checkpoint<S>(std::ostream&, const BasicCheckpoint<S>&);\
  template BasicCheckpoint<S> read_checkpoint_as<S>(std::istream&);           \
  template void write_checkpoint_file<S>(const std::string&,                  \
                                         const BasicCheckpoint<S>&);          \
  template BasicCheckpoint<S> read_checkpoint_file_as<S>(const std::string&);

TRIGEN_SHARD_IO_INSTANTIATE(core::ScoredPair)
TRIGEN_SHARD_IO_INSTANTIATE(core::ScoredTriplet)
TRIGEN_SHARD_IO_INSTANTIATE(core::ScoredTuple<4>)
TRIGEN_SHARD_IO_INSTANTIATE(core::ScoredTuple<5>)
TRIGEN_SHARD_IO_INSTANTIATE(core::ScoredTuple<6>)
#undef TRIGEN_SHARD_IO_INSTANTIATE

unsigned probe_shard_order(const std::string& path) {
  const char* kind = "shard-result";
  auto is = open_for_read(path, kind);
  return read_preamble(is, kShardMagic, kind, /*expected_order=*/0);
}

}  // namespace trigen::shard
