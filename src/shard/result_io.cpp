#include "trigen/shard/result_io.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "trigen/combinatorics/combinations.hpp"

namespace trigen::shard {
namespace {

constexpr char kShardMagic[] = "TRIGEN-SHARD";
constexpr char kCheckpointMagic[] = "TRIGEN-CHECKPOINT";
constexpr char kFormatVersion[] = "v1";

/// Plausibility bounds mirroring dataset I/O: a corrupted header must fail
/// with a parse error, not an absurd allocation or a 64-bit overflow in
/// C(M,3).
constexpr std::uint64_t kMaxSnps = 1u << 22;
constexpr std::uint64_t kMaxSamples = 1u << 22;
constexpr std::uint64_t kMaxTopK = 1u << 24;

[[noreturn]] void fail(const char* kind, const std::string& what) {
  throw std::runtime_error(std::string(kind) + ": " + what);
}

std::string next_token(std::istream& is, const char* kind, const char* what) {
  std::string tok;
  if (!(is >> tok)) {
    fail(kind, std::string("truncated file: missing ") + what);
  }
  return tok;
}

void expect_key(std::istream& is, const char* kind, const char* key) {
  const std::string tok = next_token(is, kind, key);
  if (tok != key) {
    fail(kind, "expected '" + std::string(key) + "', got '" + tok + "'");
  }
}

std::uint64_t parse_u64(const std::string& tok, const char* kind,
                        const char* what, int base = 10) {
  const char* begin = tok.c_str();
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(begin, &end, base);
  if (end == begin || *end != '\0' || errno != 0 || tok[0] == '-') {
    fail(kind, std::string("malformed ") + what + " '" + tok + "'");
  }
  return v;
}

std::uint64_t read_u64_field(std::istream& is, const char* kind,
                             const char* key, int base = 10) {
  expect_key(is, kind, key);
  return parse_u64(next_token(is, kind, key), kind, key, base);
}

double read_double(std::istream& is, const char* kind, const char* what) {
  const std::string tok = next_token(is, kind, what);
  const char* begin = tok.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin || *end != '\0') {
    fail(kind, std::string("malformed ") + what + " '" + tok + "'");
  }
  return v;
}

/// `%a` hex float: exact double round trip, locale-independent.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

std::string format_fingerprint(std::uint64_t fp) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

/// Header fields shared by both formats, in file order.
struct Header {
  std::uint64_t fingerprint = 0;
  std::uint64_t num_snps = 0;
  std::uint64_t num_samples = 0;
  std::string objective;
  std::uint64_t top_k = 0;
  combinatorics::RankRange range;
};

void write_header(std::ostream& os, const char* magic, const Header& h) {
  os << magic << ' ' << kFormatVersion << '\n'
     << "fingerprint " << format_fingerprint(h.fingerprint) << '\n'
     << "snps " << h.num_snps << '\n'
     << "samples " << h.num_samples << '\n'
     << "objective " << h.objective << '\n'
     << "top_k " << h.top_k << '\n'
     << "range " << h.range.first << ' ' << h.range.last << '\n';
}

Header read_header(std::istream& is, const char* magic, const char* kind) {
  std::string tok;
  if (!(is >> tok)) fail(kind, "empty file");
  if (tok != magic) {
    fail(kind, "bad magic '" + tok + "' (expected " + magic + ")");
  }
  tok = next_token(is, kind, "format version");
  if (tok != kFormatVersion) {
    fail(kind, "unsupported format version '" + tok + "' (expected " +
                   kFormatVersion + ")");
  }
  Header h;
  h.fingerprint = read_u64_field(is, kind, "fingerprint", 16);
  h.num_snps = read_u64_field(is, kind, "snps");
  h.num_samples = read_u64_field(is, kind, "samples");
  if (h.num_snps < 3 || h.num_snps > kMaxSnps || h.num_samples == 0 ||
      h.num_samples > kMaxSamples) {
    fail(kind, "implausible dataset shape (" + std::to_string(h.num_snps) +
                   " x " + std::to_string(h.num_samples) + ")");
  }
  expect_key(is, kind, "objective");
  h.objective = next_token(is, kind, "objective name");
  h.top_k = read_u64_field(is, kind, "top_k");
  if (h.top_k == 0 || h.top_k > kMaxTopK) {
    fail(kind, "implausible top_k " + std::to_string(h.top_k));
  }
  expect_key(is, kind, "range");
  h.range.first = parse_u64(next_token(is, kind, "range first"), kind,
                            "range first");
  h.range.last = parse_u64(next_token(is, kind, "range last"), kind,
                           "range last");
  const std::uint64_t total = combinatorics::num_triplets(h.num_snps);
  if (h.range.first >= h.range.last || h.range.last > total) {
    fail(kind, "invalid range [" + std::to_string(h.range.first) + ", " +
                   std::to_string(h.range.last) + ") for C(" +
                   std::to_string(h.num_snps) + ",3) = " +
                   std::to_string(total));
  }
  return h;
}

void write_entries(std::ostream& os,
                   const std::vector<core::ScoredTriplet>& entries) {
  os << "entries " << entries.size() << '\n';
  for (const auto& e : entries) {
    os << "e " << e.triplet.x << ' ' << e.triplet.y << ' ' << e.triplet.z
       << ' ' << format_double(e.score) << '\n';
  }
}

/// Reads and validates the entry list: count == min(top_k, covered ranks),
/// each triplet strictly increasing and inside the covered rank interval,
/// list strictly ascending in (score, rank) — i.e. exactly a TopK dump.
std::vector<core::ScoredTriplet> read_entries(std::istream& is,
                                              const char* kind,
                                              const Header& h,
                                              std::uint64_t covered) {
  const std::uint64_t n = read_u64_field(is, kind, "entries");
  const std::uint64_t expected = std::min<std::uint64_t>(h.top_k, covered);
  if (n != expected) {
    fail(kind, "entry count " + std::to_string(n) + " != min(top_k=" +
                   std::to_string(h.top_k) + ", covered=" +
                   std::to_string(covered) + ") = " +
                   std::to_string(expected));
  }
  std::vector<core::ScoredTriplet> entries;
  entries.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    expect_key(is, kind, "e");
    core::ScoredTriplet s;
    s.triplet.x = static_cast<std::uint32_t>(
        parse_u64(next_token(is, kind, "entry snp"), kind, "entry snp"));
    s.triplet.y = static_cast<std::uint32_t>(
        parse_u64(next_token(is, kind, "entry snp"), kind, "entry snp"));
    s.triplet.z = static_cast<std::uint32_t>(
        parse_u64(next_token(is, kind, "entry snp"), kind, "entry snp"));
    s.score = read_double(is, kind, "entry score");
    if (!(s.triplet.x < s.triplet.y && s.triplet.y < s.triplet.z &&
          s.triplet.z < h.num_snps)) {
      fail(kind, "entry " + std::to_string(i) + " is not a strictly " +
                     "increasing triplet below " + std::to_string(h.num_snps));
    }
    const std::uint64_t rank = combinatorics::rank_triplet(s.triplet);
    if (rank < h.range.first || rank >= h.range.first + covered) {
      fail(kind, "entry " + std::to_string(i) + " rank " +
                     std::to_string(rank) + " outside the covered ranks [" +
                     std::to_string(h.range.first) + ", " +
                     std::to_string(h.range.first + covered) + ")");
    }
    if (!entries.empty() && !(entries.back() < s)) {
      fail(kind, "entries are not strictly ascending in (score, rank) at "
                 "index " + std::to_string(i));
    }
    entries.push_back(s);
  }
  return entries;
}

void read_trailer(std::istream& is, const char* kind, const char* magic) {
  expect_key(is, kind, "end");
  const std::string tok = next_token(is, kind, "trailer magic");
  if (tok != magic) {
    fail(kind, "trailer names '" + tok + "' (expected " + magic + ")");
  }
  std::string extra;
  if (is >> extra) {
    fail(kind, "trailing content after the end trailer: '" + extra + "'");
  }
}

/// Atomic write: temp file alongside the target, fsync-free rename.
template <typename WriteFn>
void write_file_atomically(const std::string& path, const char* kind,
                           WriteFn&& write_fn) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios_base::trunc);
    if (!os) fail(kind, "cannot open '" + tmp + "' for writing");
    write_fn(os);
    os.flush();
    if (!os) fail(kind, "write failure on '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail(kind, "cannot rename '" + tmp + "' to '" + path + "'");
  }
}

std::ifstream open_for_read(const std::string& path, const char* kind) {
  std::ifstream is(path);
  if (!is) fail(kind, "cannot open '" + path + "' for reading");
  return is;
}

}  // namespace

void write_shard_result(std::ostream& os, const ShardResult& r) {
  write_header(os, kShardMagic,
               Header{r.fingerprint, r.num_snps, r.num_samples, r.objective,
                      r.top_k, r.range});
  os << "seconds " << format_double(r.seconds) << '\n';
  write_entries(os, r.entries);
  os << "end " << kShardMagic << '\n';
}

ShardResult read_shard_result(std::istream& is) {
  const char* kind = "shard-result";
  const Header h = read_header(is, kShardMagic, kind);
  ShardResult r;
  r.fingerprint = h.fingerprint;
  r.num_snps = h.num_snps;
  r.num_samples = h.num_samples;
  r.objective = h.objective;
  r.top_k = h.top_k;
  r.range = h.range;
  expect_key(is, kind, "seconds");
  r.seconds = read_double(is, kind, "seconds");
  r.entries = read_entries(is, kind, h, h.range.size());
  read_trailer(is, kind, kShardMagic);
  return r;
}

void write_shard_result_file(const std::string& path, const ShardResult& r) {
  write_file_atomically(path, "shard-result",
                        [&](std::ostream& os) { write_shard_result(os, r); });
}

ShardResult read_shard_result_file(const std::string& path) {
  auto is = open_for_read(path, "shard-result");
  return read_shard_result(is);
}

void write_checkpoint(std::ostream& os, const Checkpoint& c) {
  write_header(os, kCheckpointMagic,
               Header{c.fingerprint, c.num_snps, c.num_samples, c.objective,
                      c.top_k, c.range});
  os << "watermark " << c.watermark << '\n';
  os << "seconds " << format_double(c.seconds) << '\n';
  write_entries(os, c.entries);
  os << "end " << kCheckpointMagic << '\n';
}

Checkpoint read_checkpoint(std::istream& is) {
  const char* kind = "checkpoint";
  const Header h = read_header(is, kCheckpointMagic, kind);
  Checkpoint c;
  c.fingerprint = h.fingerprint;
  c.num_snps = h.num_snps;
  c.num_samples = h.num_samples;
  c.objective = h.objective;
  c.top_k = h.top_k;
  c.range = h.range;
  c.watermark = read_u64_field(is, kind, "watermark");
  if (c.watermark < c.range.first || c.watermark > c.range.last) {
    fail(kind, "watermark " + std::to_string(c.watermark) +
                   " outside range [" + std::to_string(c.range.first) + ", " +
                   std::to_string(c.range.last) + "]");
  }
  expect_key(is, kind, "seconds");
  c.seconds = read_double(is, kind, "seconds");
  c.entries = read_entries(is, kind, h, c.watermark - c.range.first);
  read_trailer(is, kind, kCheckpointMagic);
  return c;
}

void write_checkpoint_file(const std::string& path, const Checkpoint& c) {
  write_file_atomically(path, "checkpoint",
                        [&](std::ostream& os) { write_checkpoint(os, c); });
}

Checkpoint read_checkpoint_file(const std::string& path) {
  auto is = open_for_read(path, "checkpoint");
  return read_checkpoint(is);
}

}  // namespace trigen::shard
