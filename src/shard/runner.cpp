#include "trigen/shard/runner.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>

#include "trigen/combinatorics/combinations.hpp"

namespace trigen::shard {
namespace {

[[noreturn]] void stale(const std::string& what) {
  throw std::runtime_error("shard runner: stale checkpoint: " + what);
}

/// A transiently failing checkpoint write (EINTR/EAGAIN exhaustion inside
/// the durable writer) must not cost the whole shard's progress: retry the
/// complete write a few times with escalating backoff before giving up.
/// Non-transient failures (missing directory, permissions, disk full) and
/// exhausted retries propagate the writer's ShardIoError, which already
/// names the path and errno.
template <typename Scored>
void write_checkpoint_with_retry(const std::string& path,
                                 const BasicCheckpoint<Scored>& c) {
  constexpr int kAttempts = 3;
  for (int attempt = 1;; ++attempt) {
    try {
      write_checkpoint_file(path, c);
      return;
    } catch (const ShardIoError& e) {
      if (!e.transient() || attempt >= kAttempts) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(10 << attempt));
    }
  }
}

/// Loads and validates an existing checkpoint.  A checkpoint for a
/// *different* scan is a hard error (merging it would corrupt results); an
/// unparseable file is survivable damage — report it and rescan.
template <typename Scored>
std::optional<BasicCheckpoint<Scored>> adopt_checkpoint(
    const std::string& path, std::uint64_t fingerprint,
    const combinatorics::RankRange& range, std::uint64_t top_k,
    const std::string& objective,
    const std::function<void(const std::string&)>& on_discarded) {
  if (!std::ifstream(path).good()) return std::nullopt;  // fresh start
  BasicCheckpoint<Scored> c;
  try {
    c = read_checkpoint_file_as<Scored>(path);
  } catch (const std::runtime_error& e) {
    if (on_discarded) on_discarded(e.what());
    return std::nullopt;
  }
  if (c.fingerprint != fingerprint) {
    stale("'" + path + "' was written for a different dataset (fingerprint " +
          std::to_string(c.fingerprint) + " != " +
          std::to_string(fingerprint) + ")");
  }
  if (c.range.first != range.first || c.range.last != range.last) {
    stale("'" + path + "' covers ranks [" + std::to_string(c.range.first) +
          ", " + std::to_string(c.range.last) + "), this shard covers [" +
          std::to_string(range.first) + ", " + std::to_string(range.last) +
          ")");
  }
  if (c.top_k != top_k) {
    stale("'" + path + "' has top_k " + std::to_string(c.top_k) +
          ", this scan wants " + std::to_string(top_k));
  }
  if (c.objective != objective) {
    stale("'" + path + "' used objective '" + c.objective +
          "', this scan uses '" + objective + "'");
  }
  return c;
}

/// The shared runner body: everything order-specific comes in through
/// `Scored` (entry type + rank space via OrderTraits) and the detector /
/// options types.
template <typename Scored, typename Detector, typename Options>
BasicShardRunReport<Scored> run_shard_impl(
    const Detector& detector, std::uint64_t fingerprint,
    const BasicShardRunOptions<Options>& options,
    const std::function<void(const std::string&)>& on_checkpoint_discarded) {
  using Traits = OrderTraits<Scored>;
  const std::uint64_t total = Traits::space(detector.num_snps());
  const combinatorics::RankRange range = options.range;
  if (range.empty() || range.last > total) {
    throw std::invalid_argument(
        "run_shard: shard range [" + std::to_string(range.first) + ", " +
        std::to_string(range.last) + ") is empty or exceeds C(M," +
        std::to_string(Traits::kOrder) + ") = " + std::to_string(total));
  }
  if (options.detector.top_k == 0) {
    throw std::invalid_argument("run_shard: top_k must be >= 1");
  }

  const std::uint64_t top_k = options.detector.top_k;
  const std::string objective =
      core::objective_name(options.detector.objective);

  BasicShardRunReport<Scored> report;
  report.result.fingerprint = fingerprint;
  report.result.num_snps = detector.num_snps();
  report.result.num_samples = detector.num_samples();
  report.result.objective = objective;
  report.result.top_k = top_k;
  report.result.range = range;
  report.resumed_from = range.first;

  core::BasicTopK<Scored> acc(top_k);
  std::uint64_t watermark = range.first;
  double seconds = 0.0;

  if (!options.checkpoint_path.empty()) {
    if (const auto c = adopt_checkpoint<Scored>(
            options.checkpoint_path, fingerprint, range, top_k, objective,
            on_checkpoint_discarded)) {
      watermark = c->watermark;
      seconds = c->seconds;
      for (const auto& e : c->entries) acc.push(e);
      report.resumed = true;
      report.resumed_from = watermark;
    }
  }

  const std::uint64_t interval =
      options.checkpoint_every != 0
          ? options.checkpoint_every
          : std::max<std::uint64_t>(1, range.size() / 64);

  Options dopt = options.detector;
  // Progress is shard-relative and owned by the runner; a caller-supplied
  // detector.progress would see chunk-local counts, so it is ignored in
  // favor of BasicShardRunOptions::progress.
  dopt.progress = {};
  core::ensure_default_scorer(dopt, detector.num_samples());
  if (options.progress) options.progress(watermark - range.first, range.size());

  while (watermark < range.last) {
    const std::uint64_t next =
        std::min(watermark + interval, range.last);
    dopt.range = {watermark, next};
    if (options.progress) {
      dopt.progress = [&progress = options.progress,
                       offset = watermark - range.first,
                       shard_total = range.size()](std::uint64_t done,
                                                   std::uint64_t) {
        progress(offset + done, shard_total);
      };
    }
    const auto r = detector.run(dopt);
    for (const auto& e : r.best) acc.push(e);
    seconds += r.seconds;
    watermark = next;
    if (!options.checkpoint_path.empty()) {
      BasicCheckpoint<Scored> c;
      c.fingerprint = fingerprint;
      c.num_snps = report.result.num_snps;
      c.num_samples = report.result.num_samples;
      c.objective = objective;
      c.top_k = top_k;
      c.range = range;
      c.watermark = watermark;
      c.seconds = seconds;
      c.entries = acc.sorted();
      write_checkpoint_with_retry(options.checkpoint_path, c);
      ++report.checkpoints_written;
    }
    if (options.keep_going && watermark < range.last &&
        !options.keep_going(watermark - range.first, range.size())) {
      break;
    }
  }

  report.result.seconds = seconds;
  report.result.entries = acc.sorted();
  report.completed = watermark == range.last;
  return report;
}

}  // namespace

template <unsigned K>
BasicShardRunReport<core::ScoredOf<K>> run_shard_of(
    const core::BasicDetector<K>& detector, std::uint64_t fingerprint,
    const BasicShardRunOptions<core::BasicDetectorOptions<K>>& options,
    const std::function<void(const std::string&)>& on_checkpoint_discarded) {
  return run_shard_impl<core::ScoredOf<K>>(detector, fingerprint, options,
                                           on_checkpoint_discarded);
}

template BasicShardRunReport<core::ScoredOf<2>> run_shard_of<2>(
    const core::BasicDetector<2>&, std::uint64_t,
    const BasicShardRunOptions<core::BasicDetectorOptions<2>>&,
    const std::function<void(const std::string&)>&);
template BasicShardRunReport<core::ScoredOf<3>> run_shard_of<3>(
    const core::BasicDetector<3>&, std::uint64_t,
    const BasicShardRunOptions<core::BasicDetectorOptions<3>>&,
    const std::function<void(const std::string&)>&);
template BasicShardRunReport<core::ScoredOf<4>> run_shard_of<4>(
    const core::BasicDetector<4>&, std::uint64_t,
    const BasicShardRunOptions<core::BasicDetectorOptions<4>>&,
    const std::function<void(const std::string&)>&);
template BasicShardRunReport<core::ScoredOf<5>> run_shard_of<5>(
    const core::BasicDetector<5>&, std::uint64_t,
    const BasicShardRunOptions<core::BasicDetectorOptions<5>>&,
    const std::function<void(const std::string&)>&);
template BasicShardRunReport<core::ScoredOf<6>> run_shard_of<6>(
    const core::BasicDetector<6>&, std::uint64_t,
    const BasicShardRunOptions<core::BasicDetectorOptions<6>>&,
    const std::function<void(const std::string&)>&);

}  // namespace trigen::shard
