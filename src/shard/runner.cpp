#include "trigen/shard/runner.hpp"

#include <algorithm>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>

#include "trigen/combinatorics/combinations.hpp"

namespace trigen::shard {
namespace {

[[noreturn]] void stale(const std::string& what) {
  throw std::runtime_error("shard runner: stale checkpoint: " + what);
}

/// Loads and validates an existing checkpoint.  A checkpoint for a
/// *different* scan is a hard error (merging it would corrupt results); an
/// unparseable file is survivable damage — report it and rescan.
std::optional<Checkpoint> adopt_checkpoint(
    const std::string& path, std::uint64_t fingerprint,
    const combinatorics::RankRange& range, std::uint64_t top_k,
    const std::string& objective,
    const std::function<void(const std::string&)>& on_discarded) {
  if (!std::ifstream(path).good()) return std::nullopt;  // fresh start
  Checkpoint c;
  try {
    c = read_checkpoint_file(path);
  } catch (const std::runtime_error& e) {
    if (on_discarded) on_discarded(e.what());
    return std::nullopt;
  }
  if (c.fingerprint != fingerprint) {
    stale("'" + path + "' was written for a different dataset (fingerprint " +
          std::to_string(c.fingerprint) + " != " +
          std::to_string(fingerprint) + ")");
  }
  if (c.range.first != range.first || c.range.last != range.last) {
    stale("'" + path + "' covers ranks [" + std::to_string(c.range.first) +
          ", " + std::to_string(c.range.last) + "), this shard covers [" +
          std::to_string(range.first) + ", " + std::to_string(range.last) +
          ")");
  }
  if (c.top_k != top_k) {
    stale("'" + path + "' has top_k " + std::to_string(c.top_k) +
          ", this scan wants " + std::to_string(top_k));
  }
  if (c.objective != objective) {
    stale("'" + path + "' used objective '" + c.objective +
          "', this scan uses '" + objective + "'");
  }
  return c;
}

}  // namespace

ShardRunReport run_shard(
    const core::Detector& detector, std::uint64_t fingerprint,
    const ShardRunOptions& options,
    const std::function<void(const std::string&)>& on_checkpoint_discarded) {
  const std::uint64_t total =
      combinatorics::num_triplets(detector.num_snps());
  const combinatorics::RankRange range = options.range;
  if (range.empty() || range.last > total) {
    throw std::invalid_argument(
        "run_shard: shard range [" + std::to_string(range.first) + ", " +
        std::to_string(range.last) + ") is empty or exceeds C(M,3) = " +
        std::to_string(total));
  }
  if (options.detector.top_k == 0) {
    throw std::invalid_argument("run_shard: top_k must be >= 1");
  }

  const std::uint64_t top_k = options.detector.top_k;
  const std::string objective = core::objective_name(options.detector.objective);

  ShardRunReport report;
  report.result.fingerprint = fingerprint;
  report.result.num_snps = detector.num_snps();
  report.result.num_samples = detector.num_samples();
  report.result.objective = objective;
  report.result.top_k = top_k;
  report.result.range = range;
  report.resumed_from = range.first;

  core::TopK acc(top_k);
  std::uint64_t watermark = range.first;
  double seconds = 0.0;

  if (!options.checkpoint_path.empty()) {
    if (const auto c = adopt_checkpoint(options.checkpoint_path, fingerprint,
                                        range, top_k, objective,
                                        on_checkpoint_discarded)) {
      watermark = c->watermark;
      seconds = c->seconds;
      for (const auto& e : c->entries) acc.push(e);
      report.resumed = true;
      report.resumed_from = watermark;
    }
  }

  const std::uint64_t interval =
      options.checkpoint_every != 0
          ? options.checkpoint_every
          : std::max<std::uint64_t>(1, range.size() / 64);

  core::DetectorOptions dopt = options.detector;
  // Progress is shard-relative and owned by the runner; a caller-supplied
  // detector.progress would see chunk-local counts, so it is ignored in
  // favor of ShardRunOptions::progress.
  dopt.progress = {};
  if (!dopt.scorer) {
    dopt.scorer = core::make_normalized_scorer(
        dopt.objective, static_cast<std::uint32_t>(detector.num_samples()));
  }
  if (options.progress) options.progress(watermark - range.first, range.size());

  while (watermark < range.last) {
    const std::uint64_t next =
        std::min(watermark + interval, range.last);
    dopt.range = {watermark, next};
    if (options.progress) {
      dopt.progress = [&progress = options.progress,
                       offset = watermark - range.first,
                       shard_total = range.size()](std::uint64_t done,
                                                   std::uint64_t) {
        progress(offset + done, shard_total);
      };
    }
    const core::DetectionResult r = detector.run(dopt);
    for (const auto& e : r.best) acc.push(e);
    seconds += r.seconds;
    watermark = next;
    if (!options.checkpoint_path.empty()) {
      Checkpoint c;
      c.fingerprint = fingerprint;
      c.num_snps = report.result.num_snps;
      c.num_samples = report.result.num_samples;
      c.objective = objective;
      c.top_k = top_k;
      c.range = range;
      c.watermark = watermark;
      c.seconds = seconds;
      c.entries = acc.sorted();
      write_checkpoint_file(options.checkpoint_path, c);
      ++report.checkpoints_written;
    }
    if (options.keep_going && watermark < range.last &&
        !options.keep_going(watermark - range.first, range.size())) {
      break;
    }
  }

  report.result.seconds = seconds;
  report.result.entries = acc.sorted();
  report.completed = watermark == range.last;
  return report;
}

}  // namespace trigen::shard
