#pragma once
/// \file result_io.hpp
/// \brief Portable on-disk artifacts of a sharded scan.
///
/// Two line-oriented text formats, each with a versioned magic line, the
/// dataset fingerprint, and an explicit `end` trailer so truncation is
/// always detected:
///
///   TRIGEN-SHARD v1          TRIGEN-CHECKPOINT v1
///   fingerprint <hex16>      fingerprint <hex16>
///   snps M                   snps M
///   samples N                samples N
///   objective k2             objective k2
///   top_k K                  top_k K
///   range FIRST LAST         range FIRST LAST
///   seconds S                watermark W
///   entries n                seconds S
///   e x y z <score-hex>      entries n
///   ...                      e x y z <score-hex>
///   end TRIGEN-SHARD         ...
///                            end TRIGEN-CHECKPOINT
///
/// Scores are serialized as C99 hex floats (`%a`), so a write/read round
/// trip reproduces the exact double bits and a merge of shard files is
/// bit-identical to the in-memory merge.  Readers validate everything —
/// magic, version, field order, range sanity, entry ordering (strictly
/// ascending in (score, triplet rank)), ranks inside the declared range,
/// entry count == min(top_k, covered ranks) — and throw std::runtime_error
/// with a message naming the first violation.  A shard-result file is only
/// ever written for a *completed* range; the checkpoint's `watermark` is
/// the end of the completed rank prefix, and its entries are the top-k of
/// [range.first, watermark).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trigen/combinatorics/scheduler.hpp"
#include "trigen/core/topk.hpp"

namespace trigen::shard {

/// Completed scan of one rank-range shard.
struct ShardResult {
  std::uint64_t fingerprint = 0;   ///< dataset_fingerprint() of the input
  std::uint64_t num_snps = 0;
  std::uint64_t num_samples = 0;
  std::string objective;           ///< core::objective_name() of the scorer
  std::uint64_t top_k = 0;
  combinatorics::RankRange range;  ///< covered triplet ranks (half-open)
  double seconds = 0.0;            ///< compute time spent on this shard
  std::vector<core::ScoredTriplet> entries;  ///< best-first, rank-tie-broken
};

/// Persistent progress of a partially scanned shard.
struct Checkpoint {
  std::uint64_t fingerprint = 0;
  std::uint64_t num_snps = 0;
  std::uint64_t num_samples = 0;
  std::string objective;
  std::uint64_t top_k = 0;
  combinatorics::RankRange range;
  std::uint64_t watermark = 0;  ///< ranks [range.first, watermark) are done
  double seconds = 0.0;
  std::vector<core::ScoredTriplet> entries;
};

void write_shard_result(std::ostream& os, const ShardResult& r);
ShardResult read_shard_result(std::istream& is);
/// File variants write atomically (temp file + rename), so a crash mid-write
/// never leaves a half-written artifact under the final name.
void write_shard_result_file(const std::string& path, const ShardResult& r);
ShardResult read_shard_result_file(const std::string& path);

void write_checkpoint(std::ostream& os, const Checkpoint& c);
Checkpoint read_checkpoint(std::istream& is);
void write_checkpoint_file(const std::string& path, const Checkpoint& c);
Checkpoint read_checkpoint_file(const std::string& path);

}  // namespace trigen::shard
