#pragma once
/// \file result_io.hpp
/// \brief Portable on-disk artifacts of a sharded scan (any order).
///
/// Two line-oriented text formats, each with a versioned magic line, the
/// interaction order, the dataset fingerprint, and an explicit `end`
/// trailer so truncation is always detected:
///
///   TRIGEN-SHARD v2          TRIGEN-CHECKPOINT v2
///   order 3                  order 3
///   fingerprint <hex16>      fingerprint <hex16>
///   snps M                   snps M
///   samples N                samples N
///   objective k2             objective k2
///   top_k K                  top_k K
///   range FIRST LAST         range FIRST LAST
///   seconds S                watermark W
///   entries n                seconds S
///   e x y z <score-hex>      entries n
///   ...                      e x y z <score-hex>
///   end TRIGEN-SHARD         ...
///                            end TRIGEN-CHECKPOINT
///
/// `order` is the interaction order k of the scan, any value in
/// [2, combinatorics::kMaxOrder]: ranks address the colex space
/// [0, C(M,k)) and each entry line carries k SNP indices
/// (`e x y z <score-hex>` for order 3, `e x y <score-hex>` for order 2,
/// and so on).  A dataset whose C(M,k) exceeds 2^64 is rejected with a
/// precise "rank space exceeds 2^64" error — the rank fields could not
/// address it.  The v1 formats —
/// identical except that the `order` line is absent — predate pairwise
/// sharding and are still read (their order is 3 by definition); writers
/// always emit v2.  Reading a file of the wrong order throws a precise
/// "order mismatch" error instead of misinterpreting ranks.
///
/// Scores are serialized as C99 hex floats (`%a`), so a write/read round
/// trip reproduces the exact double bits and a merge of shard files is
/// bit-identical to the in-memory merge.  Readers validate everything —
/// magic, version, order, field order, range sanity, entry ordering
/// (strictly ascending in (score, combination rank)), ranks inside the
/// declared range, entry count == min(top_k, covered ranks) — and throw
/// std::runtime_error with a message naming the first violation.  A
/// shard-result file is only ever written for a *completed* range; the
/// checkpoint's `watermark` is the end of the completed rank prefix, and
/// its entries are the top-k of [range.first, watermark).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trigen/combinatorics/scheduler.hpp"
#include "trigen/core/topk.hpp"
#include "trigen/shard/order.hpp"

namespace trigen::shard {

/// Completed scan of one rank-range shard, generic over the scored-entry
/// type (core::ScoredOf<K>: ScoredTriplet for order 3, ScoredPair for
/// order 2, ScoredTuple<K> beyond).
template <typename Scored>
struct BasicShardResult {
  std::uint64_t fingerprint = 0;   ///< dataset_fingerprint() of the input
  std::uint64_t num_snps = 0;
  std::uint64_t num_samples = 0;
  std::string objective;           ///< core::objective_name() of the scorer
  std::uint64_t top_k = 0;
  combinatorics::RankRange range;  ///< covered combination ranks (half-open)
  double seconds = 0.0;            ///< compute time spent on this shard
  std::vector<Scored> entries;     ///< best-first, rank-tie-broken
};

using ShardResult = BasicShardResult<core::ScoredTriplet>;
using PairShardResult = BasicShardResult<core::ScoredPair>;

/// Persistent progress of a partially scanned shard.
template <typename Scored>
struct BasicCheckpoint {
  std::uint64_t fingerprint = 0;
  std::uint64_t num_snps = 0;
  std::uint64_t num_samples = 0;
  std::string objective;
  std::uint64_t top_k = 0;
  combinatorics::RankRange range;
  std::uint64_t watermark = 0;  ///< ranks [range.first, watermark) are done
  double seconds = 0.0;
  std::vector<Scored> entries;
};

using Checkpoint = BasicCheckpoint<core::ScoredTriplet>;
using PairCheckpoint = BasicCheckpoint<core::ScoredPair>;

// Writers deduce the artifact's entry type; readers are parameterized on
// it (the `_as` suffix marks the explicit-argument form).  All are
// instantiated for every order in [2, combinatorics::kMaxOrder] in
// result_io.cpp.  File variants write atomically and crash-durably: the
// body is fsynced into a temp file before the rename and the parent
// directory is synced afterwards, so neither a crash mid-write nor a power
// loss right after the rename can leave a truncated artifact under the
// final name.

template <typename Scored>
void write_shard_result(std::ostream& os, const BasicShardResult<Scored>& r);
template <typename Scored>
BasicShardResult<Scored> read_shard_result_as(std::istream& is);
template <typename Scored>
void write_shard_result_file(const std::string& path,
                             const BasicShardResult<Scored>& r);
template <typename Scored>
BasicShardResult<Scored> read_shard_result_file_as(const std::string& path);

template <typename Scored>
void write_checkpoint(std::ostream& os, const BasicCheckpoint<Scored>& c);
template <typename Scored>
BasicCheckpoint<Scored> read_checkpoint_as(std::istream& is);
template <typename Scored>
void write_checkpoint_file(const std::string& path,
                           const BasicCheckpoint<Scored>& c);
template <typename Scored>
BasicCheckpoint<Scored> read_checkpoint_file_as(const std::string& path);

// Historical per-order reader names.

inline ShardResult read_shard_result(std::istream& is) {
  return read_shard_result_as<core::ScoredTriplet>(is);
}
inline PairShardResult read_pair_shard_result(std::istream& is) {
  return read_shard_result_as<core::ScoredPair>(is);
}
inline ShardResult read_shard_result_file(const std::string& path) {
  return read_shard_result_file_as<core::ScoredTriplet>(path);
}
inline PairShardResult read_pair_shard_result_file(const std::string& path) {
  return read_shard_result_file_as<core::ScoredPair>(path);
}
inline Checkpoint read_checkpoint(std::istream& is) {
  return read_checkpoint_as<core::ScoredTriplet>(is);
}
inline PairCheckpoint read_pair_checkpoint(std::istream& is) {
  return read_checkpoint_as<core::ScoredPair>(is);
}
inline Checkpoint read_checkpoint_file(const std::string& path) {
  return read_checkpoint_file_as<core::ScoredTriplet>(path);
}
inline PairCheckpoint read_pair_checkpoint_file(const std::string& path) {
  return read_checkpoint_file_as<core::ScoredPair>(path);
}

/// Reads just enough of a shard-result file to report its interaction
/// order (3 for v1 files, the `order` field for v2) so callers — above
/// all `trigen merge` — can dispatch to the right reader.  Throws
/// std::runtime_error for unreadable files, bad magic or unsupported
/// versions/orders.
unsigned probe_shard_order(const std::string& path);

}  // namespace trigen::shard
