#pragma once
/// \file result_io.hpp
/// \brief Portable on-disk artifacts of a sharded scan (any order).
///
/// Two line-oriented text formats, each with a versioned magic line, the
/// interaction order, the dataset fingerprint, and an explicit `end`
/// trailer so truncation is always detected:
///
///   TRIGEN-SHARD v2          TRIGEN-CHECKPOINT v2
///   order 3                  order 3
///   fingerprint <hex16>      fingerprint <hex16>
///   snps M                   snps M
///   samples N                samples N
///   objective k2             objective k2
///   top_k K                  top_k K
///   range FIRST LAST         range FIRST LAST
///   seconds S                watermark W
///   entries n                seconds S
///   e x y z <score-hex>      entries n
///   ...                      e x y z <score-hex>
///   end TRIGEN-SHARD         ...
///                            end TRIGEN-CHECKPOINT
///
/// `order` is the interaction order k of the scan, any value in
/// [2, combinatorics::kMaxOrder]: ranks address the colex space
/// [0, C(M,k)) and each entry line carries k SNP indices
/// (`e x y z <score-hex>` for order 3, `e x y <score-hex>` for order 2,
/// and so on).  A dataset whose C(M,k) exceeds 2^64 is rejected with a
/// precise "rank space exceeds 2^64" error — the rank fields could not
/// address it.  The v1 formats —
/// identical except that the `order` line is absent — predate pairwise
/// sharding and are still read (their order is 3 by definition); writers
/// always emit v2.  Reading a file of the wrong order throws a precise
/// "order mismatch" error instead of misinterpreting ranks.
///
/// Scores are serialized as C99 hex floats (`%a`), so a write/read round
/// trip reproduces the exact double bits and a merge of shard files is
/// bit-identical to the in-memory merge.  Readers validate everything —
/// magic, version, order, field order, range sanity, entry ordering
/// (strictly ascending in (score, combination rank)), ranks inside the
/// declared range, entry count == min(top_k, covered ranks) — and throw
/// std::runtime_error with a message naming the first violation.  A
/// shard-result file is only ever written for a *completed* range; the
/// checkpoint's `watermark` is the end of the completed rank prefix, and
/// its entries are the top-k of [range.first, watermark).

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "trigen/combinatorics/scheduler.hpp"
#include "trigen/core/topk.hpp"
#include "trigen/shard/order.hpp"

namespace trigen::shard {

/// Thrown when an OS-level step of a durable artifact write fails after the
/// writer's own bounded retries.  Carries the path and errno so callers can
/// report precisely, and a transient/permanent classification: EINTR/EAGAIN
/// exhaustion is transient (retrying the whole write may succeed, which
/// run_shard does for checkpoints), ENOENT/EACCES/ENOSPC-class failures are
/// not.
class ShardIoError : public std::runtime_error {
 public:
  ShardIoError(const std::string& what, std::string path, int error_number,
               bool transient)
      : std::runtime_error(what),
        path_(std::move(path)),
        error_number_(error_number),
        transient_(transient) {}

  const std::string& path() const { return path_; }
  int error_number() const { return error_number_; }
  bool transient() const { return transient_; }

 private:
  std::string path_;
  int error_number_;
  bool transient_;
};

/// Completed scan of one rank-range shard, generic over the scored-entry
/// type (core::ScoredOf<K>: ScoredTriplet for order 3, ScoredPair for
/// order 2, ScoredTuple<K> beyond).
template <typename Scored>
struct BasicShardResult {
  std::uint64_t fingerprint = 0;   ///< dataset_fingerprint() of the input
  std::uint64_t num_snps = 0;
  std::uint64_t num_samples = 0;
  std::string objective;           ///< core::objective_name() of the scorer
  std::uint64_t top_k = 0;
  combinatorics::RankRange range;  ///< covered combination ranks (half-open)
  double seconds = 0.0;            ///< compute time spent on this shard
  std::vector<Scored> entries;     ///< best-first, rank-tie-broken
};

using ShardResult = BasicShardResult<core::ScoredTriplet>;
using PairShardResult = BasicShardResult<core::ScoredPair>;

/// Persistent progress of a partially scanned shard.
template <typename Scored>
struct BasicCheckpoint {
  std::uint64_t fingerprint = 0;
  std::uint64_t num_snps = 0;
  std::uint64_t num_samples = 0;
  std::string objective;
  std::uint64_t top_k = 0;
  combinatorics::RankRange range;
  std::uint64_t watermark = 0;  ///< ranks [range.first, watermark) are done
  double seconds = 0.0;
  std::vector<Scored> entries;
};

using Checkpoint = BasicCheckpoint<core::ScoredTriplet>;
using PairCheckpoint = BasicCheckpoint<core::ScoredPair>;

// Writers deduce the artifact's entry type; readers are parameterized on
// it (the `_as` suffix marks the explicit-argument form).  All are
// instantiated for every order in [2, combinatorics::kMaxOrder] in
// result_io.cpp.  File variants write atomically and crash-durably: the
// body is fsynced into a temp file before the rename and the parent
// directory is synced afterwards, so neither a crash mid-write nor a power
// loss right after the rename can leave a truncated artifact under the
// final name.

template <typename Scored>
void write_shard_result(std::ostream& os, const BasicShardResult<Scored>& r);
template <typename Scored>
BasicShardResult<Scored> read_shard_result_as(std::istream& is);
template <typename Scored>
void write_shard_result_file(const std::string& path,
                             const BasicShardResult<Scored>& r);
template <typename Scored>
BasicShardResult<Scored> read_shard_result_file_as(const std::string& path);

template <typename Scored>
void write_checkpoint(std::ostream& os, const BasicCheckpoint<Scored>& c);
template <typename Scored>
BasicCheckpoint<Scored> read_checkpoint_as(std::istream& is);
template <typename Scored>
void write_checkpoint_file(const std::string& path,
                           const BasicCheckpoint<Scored>& c);
template <typename Scored>
BasicCheckpoint<Scored> read_checkpoint_file_as(const std::string& path);

/// The write→fsync→rename→fsync(parent dir) path every durable trigen
/// artifact uses (shard results, checkpoints, tuning profiles via their own
/// copy, and the fleet coordinator's lease table): `body` is rendered in
/// memory by the caller, fsynced into `path + ".tmp"` — retrying
/// EINTR/EAGAIN with bounded backoff — renamed over `path`, and the parent
/// directory is synced so the rename survives power loss.  `kind` names the
/// artifact in error messages.  Throws ShardIoError (path + errno +
/// transient classification) when retries are exhausted or a non-retryable
/// step fails.
void write_text_file_durably(const std::string& path, const char* kind,
                             const std::string& body);

// -- Re-splitting a live shard off its last durable checkpoint ---------------
//
// A partially scanned shard is exactly (a) the completed prefix
// [range.first, watermark), whose checkpointed entries are by construction a
// valid top-k shard result over that interval, plus (b) the untouched
// remainder [watermark, range.last).  clip_to_prefix / remaining_range split
// a checkpoint along that seam; this is what lets a fleet coordinator
// harvest a dead worker's durable progress and re-lease only the remainder:
// merging clip_to_prefix(c) with a scan of remaining_range(c) is
// bit-identical to scanning the whole shard (property-tested at orders 2-4
// in tests/test_fleet.cpp).

/// The completed prefix of a checkpoint as a standalone shard result over
/// [range.first, watermark).  Throws std::invalid_argument when the
/// checkpoint has no completed ranks (watermark == range.first): an empty
/// shard result is unrepresentable, and the caller should simply re-lease
/// the whole range.
template <typename Scored>
BasicShardResult<Scored> clip_to_prefix(const BasicCheckpoint<Scored>& c) {
  if (c.watermark <= c.range.first) {
    throw std::invalid_argument(
        "clip_to_prefix: checkpoint over [" + std::to_string(c.range.first) +
        ", " + std::to_string(c.range.last) + ") has no completed prefix");
  }
  BasicShardResult<Scored> r;
  r.fingerprint = c.fingerprint;
  r.num_snps = c.num_snps;
  r.num_samples = c.num_samples;
  r.objective = c.objective;
  r.top_k = c.top_k;
  r.range = combinatorics::RankRange{c.range.first, c.watermark};
  r.seconds = c.seconds;
  r.entries = c.entries;
  return r;
}

/// The unscanned remainder of a checkpointed shard (possibly empty when the
/// worker checkpointed the full range but died before writing the result).
template <typename Scored>
combinatorics::RankRange remaining_range(const BasicCheckpoint<Scored>& c) {
  return combinatorics::RankRange{c.watermark, c.range.last};
}

// Historical per-order reader names.

inline ShardResult read_shard_result(std::istream& is) {
  return read_shard_result_as<core::ScoredTriplet>(is);
}
inline PairShardResult read_pair_shard_result(std::istream& is) {
  return read_shard_result_as<core::ScoredPair>(is);
}
inline ShardResult read_shard_result_file(const std::string& path) {
  return read_shard_result_file_as<core::ScoredTriplet>(path);
}
inline PairShardResult read_pair_shard_result_file(const std::string& path) {
  return read_shard_result_file_as<core::ScoredPair>(path);
}
inline Checkpoint read_checkpoint(std::istream& is) {
  return read_checkpoint_as<core::ScoredTriplet>(is);
}
inline PairCheckpoint read_pair_checkpoint(std::istream& is) {
  return read_checkpoint_as<core::ScoredPair>(is);
}
inline Checkpoint read_checkpoint_file(const std::string& path) {
  return read_checkpoint_file_as<core::ScoredTriplet>(path);
}
inline PairCheckpoint read_pair_checkpoint_file(const std::string& path) {
  return read_checkpoint_file_as<core::ScoredPair>(path);
}

/// Reads just enough of a shard-result file to report its interaction
/// order (3 for v1 files, the `order` field for v2) so callers — above
/// all `trigen merge` — can dispatch to the right reader.  Throws
/// std::runtime_error for unreadable files, bad magic or unsupported
/// versions/orders.
unsigned probe_shard_order(const std::string& path);

}  // namespace trigen::shard
