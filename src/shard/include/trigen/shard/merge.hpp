#pragma once
/// \file merge.hpp
/// \brief Deterministic fold of shard results into one scan answer.
///
/// Because per-shard top-k sets are computed with the same rank-tie-broken
/// ordering the full scan uses, the k best combinations of the whole space
/// are each inside their own shard's top-k — so merging any full-coverage
/// set of shard results reproduces the unsharded scan top-k exactly
/// (scores bit-for-bit, order included), in whatever order the shards are
/// presented.  The merge refuses anything that would silently break that
/// guarantee: mixed fingerprints/objectives/top_k, overlapping shards, or
/// coverage gaps.  Every interaction order merges through one shared
/// implementation, `merge_shards_of<K>`; `merge_shards` (3-way) and
/// `merge_pair_shards` (2-way) are its historical entry points.  Order
/// mixing is impossible by construction — the readers in result_io.hpp
/// already reject files of the wrong order.

#include <vector>

#include "trigen/core/detector.hpp"
#include "trigen/pairwise/pair_detector.hpp"
#include "trigen/shard/result_io.hpp"

namespace trigen::shard {

/// A merged scan plus shard-level accounting, generic over the per-order
/// result type (core::BasicDetectionResult<K>).
template <typename ResultT>
struct BasicMergedScan {
  /// Equivalent scan result over `range`: `best`, the evaluated-count
  /// field, `elements` and `seconds` (sum of per-shard compute seconds)
  /// are filled; the hardware fields keep their defaults (shards may have
  /// run anywhere).
  ResultT result;
  /// Contiguous rank interval the inputs covered ([0, C(M,k)) unless a
  /// partial merge was requested).
  combinatorics::RankRange range;
  std::uint64_t fingerprint = 0;
  std::uint64_t num_snps = 0;
  std::uint64_t num_samples = 0;
  std::string objective;
  std::uint64_t top_k = 0;
  std::uint64_t num_shards = 0;
  /// Longest single shard: the wall-clock lower bound when shards ran in
  /// parallel (aggregate throughput = elements / max_shard_seconds).
  double max_shard_seconds = 0.0;
};

/// The merged-scan type of interaction order K.
template <unsigned K>
using MergedScanOf = BasicMergedScan<core::BasicDetectionResult<K>>;

using MergedScan = MergedScanOf<3>;
using PairMergedScan = MergedScanOf<2>;

/// What a merge must cover.
enum class MergeCoverage {
  kFullScan,    ///< exactly [0, C(M,k)): the unsharded-scan reconstruction
  kContiguous,  ///< any contiguous [lo, hi): an intermediate (tree) merge
};

/// Merges order-K shard results tiling one contiguous rank interval
/// exactly once, in any order — with kFullScan (the default), that
/// interval must be the whole space.  Throws std::invalid_argument when
/// `shards` is empty and std::runtime_error naming the offending shards
/// for fingerprint / header mismatches, overlaps and gaps.  A kContiguous
/// merge returns a result equivalent to one shard scanned over the
/// combined range, so intermediate merges compose: merging the
/// intermediates (e.g. one per rack) reproduces the single-level merge
/// exactly.
template <unsigned K>
MergedScanOf<K> merge_shards_of(
    const std::vector<BasicShardResult<core::ScoredOf<K>>>& shards,
    MergeCoverage coverage = MergeCoverage::kFullScan);

/// Merges 3-way shard results (= merge_shards_of<3>).
inline MergedScan merge_shards(
    const std::vector<ShardResult>& shards,
    MergeCoverage coverage = MergeCoverage::kFullScan) {
  return merge_shards_of<3>(shards, coverage);
}

/// Merges 2-way shard results (= merge_shards_of<2>).
inline PairMergedScan merge_pair_shards(
    const std::vector<PairShardResult>& shards,
    MergeCoverage coverage = MergeCoverage::kFullScan) {
  return merge_shards_of<2>(shards, coverage);
}

/// The merged scan repackaged as a shard result over `m.range` — the
/// artifact an intermediate merge writes for the next merge level.
template <unsigned K>
BasicShardResult<core::ScoredOf<K>> to_shard_result(const MergedScanOf<K>& m);

extern template MergedScanOf<2> merge_shards_of<2>(
    const std::vector<BasicShardResult<core::ScoredOf<2>>>&, MergeCoverage);
extern template MergedScanOf<3> merge_shards_of<3>(
    const std::vector<BasicShardResult<core::ScoredOf<3>>>&, MergeCoverage);
extern template MergedScanOf<4> merge_shards_of<4>(
    const std::vector<BasicShardResult<core::ScoredOf<4>>>&, MergeCoverage);
extern template MergedScanOf<5> merge_shards_of<5>(
    const std::vector<BasicShardResult<core::ScoredOf<5>>>&, MergeCoverage);
extern template MergedScanOf<6> merge_shards_of<6>(
    const std::vector<BasicShardResult<core::ScoredOf<6>>>&, MergeCoverage);

extern template BasicShardResult<core::ScoredOf<2>> to_shard_result<2>(
    const MergedScanOf<2>&);
extern template BasicShardResult<core::ScoredOf<3>> to_shard_result<3>(
    const MergedScanOf<3>&);
extern template BasicShardResult<core::ScoredOf<4>> to_shard_result<4>(
    const MergedScanOf<4>&);
extern template BasicShardResult<core::ScoredOf<5>> to_shard_result<5>(
    const MergedScanOf<5>&);
extern template BasicShardResult<core::ScoredOf<6>> to_shard_result<6>(
    const MergedScanOf<6>&);

}  // namespace trigen::shard
