#pragma once
/// \file merge.hpp
/// \brief Deterministic fold of shard results into one scan answer.
///
/// Because per-shard top-k sets are computed with the same rank-tie-broken
/// ordering the full scan uses, the k best combinations of the whole space
/// are each inside their own shard's top-k — so merging any full-coverage
/// set of shard results reproduces the unsharded scan top-k exactly
/// (scores bit-for-bit, order included), in whatever order the shards are
/// presented.  The merge refuses anything that would silently break that
/// guarantee: mixed fingerprints/objectives/top_k, overlapping shards, or
/// coverage gaps.  Both interaction orders merge through one shared
/// implementation: `merge_shards` for 3-way shard results,
/// `merge_pair_shards` for 2-way ones (order mixing is impossible by
/// construction — the readers in result_io.hpp already reject files of the
/// wrong order).

#include <vector>

#include "trigen/core/detector.hpp"
#include "trigen/pairwise/pair_detector.hpp"
#include "trigen/shard/result_io.hpp"

namespace trigen::shard {

/// A merged scan plus shard-level accounting, generic over the per-order
/// result type (core::DetectionResult / pairwise::PairDetectionResult).
template <typename ResultT>
struct BasicMergedScan {
  /// Equivalent scan result over `range`: `best`, the evaluated-count
  /// field, `elements` and `seconds` (sum of per-shard compute seconds)
  /// are filled; the hardware fields keep their defaults (shards may have
  /// run anywhere).
  ResultT result;
  /// Contiguous rank interval the inputs covered ([0, C(M,k)) unless a
  /// partial merge was requested).
  combinatorics::RankRange range;
  std::uint64_t fingerprint = 0;
  std::uint64_t num_snps = 0;
  std::uint64_t num_samples = 0;
  std::string objective;
  std::uint64_t top_k = 0;
  std::uint64_t num_shards = 0;
  /// Longest single shard: the wall-clock lower bound when shards ran in
  /// parallel (aggregate throughput = elements / max_shard_seconds).
  double max_shard_seconds = 0.0;
};

using MergedScan = BasicMergedScan<core::DetectionResult>;
using PairMergedScan = BasicMergedScan<pairwise::PairDetectionResult>;

/// What a merge must cover.
enum class MergeCoverage {
  kFullScan,    ///< exactly [0, C(M,k)): the unsharded-scan reconstruction
  kContiguous,  ///< any contiguous [lo, hi): an intermediate (tree) merge
};

/// Merges shard results tiling one contiguous rank interval exactly once,
/// in any order — with kFullScan (the default), that interval must be the
/// whole space.  Throws std::invalid_argument when `shards` is empty and
/// std::runtime_error naming the offending shards for fingerprint /
/// header mismatches, overlaps and gaps.  A kContiguous merge returns a
/// result equivalent to one shard scanned over the combined range, so
/// intermediate merges compose: merging the intermediates (e.g. one per
/// rack) reproduces the single-level merge exactly.
MergedScan merge_shards(const std::vector<ShardResult>& shards,
                        MergeCoverage coverage = MergeCoverage::kFullScan);

/// Same contract for 2-way shard results.
PairMergedScan merge_pair_shards(
    const std::vector<PairShardResult>& shards,
    MergeCoverage coverage = MergeCoverage::kFullScan);

/// The merged scan repackaged as a shard result over `m.range` — the
/// artifact an intermediate merge writes for the next merge level.
ShardResult to_shard_result(const MergedScan& m);
PairShardResult to_shard_result(const PairMergedScan& m);

}  // namespace trigen::shard
