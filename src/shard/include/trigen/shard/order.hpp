#pragma once
/// \file order.hpp
/// \brief Interaction-order traits for the shard layer.
///
/// The shard formats, runner and merge are generic over the interaction
/// order of the scan they orchestrate: order 3 (the paper's headline
/// triplet scan) and order 2 (the BOOST-class pairwise scan).  Everything
/// order-specific — the scored-entry type, the size of the rank space, the
/// colex rank of an entry, and how an entry's SNP indices serialize — is
/// captured here once, so adding an order (k = 4, covariate strata) means
/// adding a specialization, not forking the orchestration code.

#include <array>
#include <cstdint>

#include "trigen/combinatorics/combinations.hpp"
#include "trigen/core/topk.hpp"

namespace trigen::shard {

template <typename Scored>
struct OrderTraits;

template <>
struct OrderTraits<core::ScoredTriplet> {
  static constexpr unsigned kOrder = 3;
  /// Size of the rank space: C(m, 3).
  static std::uint64_t space(std::uint64_t m) {
    return combinatorics::num_triplets(m);
  }
  static std::uint64_t rank(const core::ScoredTriplet& s) {
    return combinatorics::rank_triplet(s.triplet);
  }
  static std::array<std::uint32_t, kOrder> snps(const core::ScoredTriplet& s) {
    return {s.triplet.x, s.triplet.y, s.triplet.z};
  }
  static core::ScoredTriplet make(const std::array<std::uint32_t, kOrder>& v,
                                  double score) {
    return {combinatorics::Triplet{v[0], v[1], v[2]}, score};
  }
};

template <>
struct OrderTraits<core::ScoredPair> {
  static constexpr unsigned kOrder = 2;
  /// Size of the rank space: C(m, 2).
  static std::uint64_t space(std::uint64_t m) {
    return combinatorics::num_pairs(m);
  }
  static std::uint64_t rank(const core::ScoredPair& s) {
    return combinatorics::rank_pair({s.x, s.y});
  }
  static std::array<std::uint32_t, kOrder> snps(const core::ScoredPair& s) {
    return {s.x, s.y};
  }
  static core::ScoredPair make(const std::array<std::uint32_t, kOrder>& v,
                               double score) {
    return {v[0], v[1], score};
  }
};

}  // namespace trigen::shard
