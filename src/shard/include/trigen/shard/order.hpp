#pragma once
/// \file order.hpp
/// \brief Interaction-order traits for the shard layer.
///
/// The shard formats, runner and merge are generic over the interaction
/// order of the scan they orchestrate: every k in
/// [2, combinatorics::kMaxOrder].  Everything order-specific — the
/// scored-entry type, the size of the rank space, the colex rank of an
/// entry, and how an entry's SNP indices serialize — is captured here
/// once: the named k=2/k=3 entry types get explicit specializations (their
/// members are part of the public API), every other order comes from the
/// ScoredTuple<K> partial specialization.

#include <array>
#include <cstdint>

#include "trigen/combinatorics/combinations.hpp"
#include "trigen/core/topk.hpp"

namespace trigen::shard {

template <typename Scored>
struct OrderTraits;

template <unsigned K>
struct OrderTraits<core::ScoredTuple<K>> {
  static constexpr unsigned kOrder = K;
  /// Size of the rank space: C(m, K).
  static std::uint64_t space(std::uint64_t m) {
    return combinatorics::n_choose_k(m, K);
  }
  static std::uint64_t rank(const core::ScoredTuple<K>& s) {
    return combinatorics::rank_combination<K>(s.snps);
  }
  static std::array<std::uint32_t, kOrder> snps(
      const core::ScoredTuple<K>& s) {
    return s.snps;
  }
  static core::ScoredTuple<K> make(const std::array<std::uint32_t, kOrder>& v,
                                   double score) {
    return {v, score};
  }
};

template <>
struct OrderTraits<core::ScoredTriplet> {
  static constexpr unsigned kOrder = 3;
  /// Size of the rank space: C(m, 3).
  static std::uint64_t space(std::uint64_t m) {
    return combinatorics::num_triplets(m);
  }
  static std::uint64_t rank(const core::ScoredTriplet& s) {
    return combinatorics::rank_triplet(s.triplet);
  }
  static std::array<std::uint32_t, kOrder> snps(const core::ScoredTriplet& s) {
    return {s.triplet.x, s.triplet.y, s.triplet.z};
  }
  static core::ScoredTriplet make(const std::array<std::uint32_t, kOrder>& v,
                                  double score) {
    return {combinatorics::Triplet{v[0], v[1], v[2]}, score};
  }
};

template <>
struct OrderTraits<core::ScoredPair> {
  static constexpr unsigned kOrder = 2;
  /// Size of the rank space: C(m, 2).
  static std::uint64_t space(std::uint64_t m) {
    return combinatorics::num_pairs(m);
  }
  static std::uint64_t rank(const core::ScoredPair& s) {
    return combinatorics::rank_pair({s.x, s.y});
  }
  static std::array<std::uint32_t, kOrder> snps(const core::ScoredPair& s) {
    return {s.x, s.y};
  }
  static core::ScoredPair make(const std::array<std::uint32_t, kOrder>& v,
                               double score) {
    return {v[0], v[1], score};
  }
};

/// The traits of interaction order K, addressed by order instead of entry
/// type (K = 2 and 3 resolve to the ScoredPair/ScoredTriplet
/// specializations through core::ScoredOf).
template <unsigned K>
using OrderTraitsOf = OrderTraits<core::ScoredOf<K>>;

}  // namespace trigen::shard
