#pragma once
/// \file runner.hpp
/// \brief Checkpointing, resumable execution of one shard of a scan plan.
///
/// The runner cuts its shard into sequential *checkpoint chunks* and runs
/// the detector on each (the detector parallelizes within the chunk).
/// After every chunk it folds the chunk's top-k into the shard accumulator
/// and — when a checkpoint path is set — atomically persists the completed
/// watermark plus the in-progress top-k.  A killed worker therefore loses
/// at most one chunk of work, and because the rank-tie-broken top-k merge
/// is exact under any partition (see scan_driver.hpp), the resumed shard's
/// result is identical to an uninterrupted run, entry for entry and bit
/// for bit.
///
/// The runner is order-generic: `run_shard_of<K>` drives the order-K
/// `core::BasicDetector<K>` for any K in [2, combinatorics::kMaxOrder];
/// `run_shard` and `run_pair_shard` are its historical K = 3 / K = 2
/// entry points.

#include <cstdint>
#include <functional>
#include <string>

#include "trigen/combinatorics/scheduler.hpp"
#include "trigen/core/detector.hpp"
#include "trigen/pairwise/pair_detector.hpp"
#include "trigen/shard/result_io.hpp"

namespace trigen::shard {

template <typename DetectorOptionsT>
struct BasicShardRunOptions {
  /// Scan configuration (version, ISA, threads, tiling, objective, top_k).
  /// `detector.range` and `detector.progress` are ignored: the runner owns
  /// the range, and progress is reported shard-relative through `progress`
  /// below.  A custom `detector.scorer` is allowed but then `objective`
  /// must still name it truthfully — it is what merge validates across
  /// shards.
  DetectorOptionsT detector;
  /// Combination ranks this shard covers; must be non-empty and within
  /// [0, C(M,k)).
  combinatorics::RankRange range;
  /// Ranks scanned between checkpoints; 0 picks range.size()/64 (>= 1).
  std::uint64_t checkpoint_every = 0;
  /// Checkpoint file; empty disables checkpointing (and resume).
  std::string checkpoint_path;
  /// Forwarded scan progress over the whole shard (resumed ranks count as
  /// already done).
  core::ProgressFn progress;
  /// Polled after each completed (and persisted) checkpoint chunk with the
  /// ranks done so far; returning false stops the run cleanly — the
  /// checkpoint on disk stays valid and a later run resumes from it.
  std::function<bool(std::uint64_t done, std::uint64_t total)> keep_going;
};

using ShardRunOptions = BasicShardRunOptions<core::DetectorOptions>;
using PairShardRunOptions = BasicShardRunOptions<pairwise::PairDetectorOptions>;

template <typename Scored>
struct BasicShardRunReport {
  /// Shard header + top-k.  Complete only when `completed`; on an early
  /// stop it reflects the checkpointed prefix.
  BasicShardResult<Scored> result;
  bool completed = false;
  /// True when a valid checkpoint was adopted instead of starting fresh.
  bool resumed = false;
  std::uint64_t resumed_from = 0;  ///< adopted watermark (range.first if not)
  std::uint64_t checkpoints_written = 0;
};

using ShardRunReport = BasicShardRunReport<core::ScoredTriplet>;
using PairShardRunReport = BasicShardRunReport<core::ScoredPair>;

/// Runs (or resumes) one shard of an order-K scan.  Throws
/// std::invalid_argument for a bad range and std::runtime_error when an
/// existing checkpoint belongs to a different dataset/range/objective/
/// top_k (stale artifacts are never silently overwritten).  An
/// unreadable/truncated checkpoint — the footprint of a crash predating
/// the atomic write, or external damage — is reported via
/// `on_checkpoint_discarded` (when set) and the shard restarts from its
/// beginning, which is always safe.
template <unsigned K>
BasicShardRunReport<core::ScoredOf<K>> run_shard_of(
    const core::BasicDetector<K>& detector, std::uint64_t fingerprint,
    const BasicShardRunOptions<core::BasicDetectorOptions<K>>& options,
    const std::function<void(const std::string& reason)>&
        on_checkpoint_discarded = {});

/// One shard of a 3-way scan (= run_shard_of<3>).
inline ShardRunReport run_shard(
    const core::Detector& detector, std::uint64_t fingerprint,
    const ShardRunOptions& options,
    const std::function<void(const std::string& reason)>&
        on_checkpoint_discarded = {}) {
  return run_shard_of<3>(detector, fingerprint, options,
                         on_checkpoint_discarded);
}

/// One shard of a 2-way scan (= run_shard_of<2>).
inline PairShardRunReport run_pair_shard(
    const pairwise::PairDetector& detector, std::uint64_t fingerprint,
    const PairShardRunOptions& options,
    const std::function<void(const std::string& reason)>&
        on_checkpoint_discarded = {}) {
  return run_shard_of<2>(detector, fingerprint, options,
                         on_checkpoint_discarded);
}

extern template BasicShardRunReport<core::ScoredOf<2>> run_shard_of<2>(
    const core::BasicDetector<2>&, std::uint64_t,
    const BasicShardRunOptions<core::BasicDetectorOptions<2>>&,
    const std::function<void(const std::string&)>&);
extern template BasicShardRunReport<core::ScoredOf<3>> run_shard_of<3>(
    const core::BasicDetector<3>&, std::uint64_t,
    const BasicShardRunOptions<core::BasicDetectorOptions<3>>&,
    const std::function<void(const std::string&)>&);
extern template BasicShardRunReport<core::ScoredOf<4>> run_shard_of<4>(
    const core::BasicDetector<4>&, std::uint64_t,
    const BasicShardRunOptions<core::BasicDetectorOptions<4>>&,
    const std::function<void(const std::string&)>&);
extern template BasicShardRunReport<core::ScoredOf<5>> run_shard_of<5>(
    const core::BasicDetector<5>&, std::uint64_t,
    const BasicShardRunOptions<core::BasicDetectorOptions<5>>&,
    const std::function<void(const std::string&)>&);
extern template BasicShardRunReport<core::ScoredOf<6>> run_shard_of<6>(
    const core::BasicDetector<6>&, std::uint64_t,
    const BasicShardRunOptions<core::BasicDetectorOptions<6>>&,
    const std::function<void(const std::string&)>&);

}  // namespace trigen::shard
