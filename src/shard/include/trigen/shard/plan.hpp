#pragma once
/// \file plan.hpp
/// \brief Splitting one exhaustive scan across W independent shard workers.
///
/// A *scan plan* cuts the colex combination rank space [0, C(M,k)) — any
/// interaction order k in [2, combinatorics::kMaxOrder] — into W contiguous,
/// non-empty, non-overlapping rank ranges.  Each shard is an ordinary
/// `range` scan (`DetectorOptions::range` / `PairDetectorOptions::range`),
/// so any worker — another process, another node, a resumed crash survivor
/// — produces a result that merges exactly (see merge.hpp).  The plan also
/// carries a content fingerprint of the dataset so artifacts produced
/// against a different (or edited) dataset are rejected instead of
/// silently merged.

#include <cstdint>
#include <vector>

#include "trigen/combinatorics/scheduler.hpp"
#include "trigen/dataset/genotype_matrix.hpp"

namespace trigen::shard {

/// Stable 64-bit content fingerprint of a dataset: shape, every genotype
/// and every phenotype (FNV-1a).  Independent of host, build and file
/// representation (text and binary round-trips of the same data agree).
std::uint64_t dataset_fingerprint(const dataset::GenotypeMatrix& d);

/// How shard boundaries are chosen.
enum class SplitStrategy {
  /// Equal-size rank ranges: shard i covers [total*i/W, total*(i+1)/W).
  kEvenRanks,
  /// Boundaries snapped to whole top-level block layers of a `block_size`
  /// grid — rank C(b*block_size, k) cuts — so no block tuple of the tiled
  /// V3/V4/V5 engines straddles a shard boundary and boundary clipping is
  /// free.
  kBlockAligned,
};

/// Splits [0, C(num_snps, order)) into `workers` shards.  `order` is the
/// interaction order of the scan being planned, any value in
/// [2, combinatorics::kMaxOrder].  Throws std::invalid_argument when
/// workers == 0, order is outside that interval,
/// workers > C(num_snps, order), or a block-aligned split cannot produce
/// `workers` non-empty shards (too few block layers).  `block_size` (SNPs
/// per block, B_S) is only used by kBlockAligned and must match the grid
/// the workers will scan with for the alignment to pay off; correctness
/// never depends on it.
std::vector<combinatorics::RankRange> plan_shards(
    std::uint64_t num_snps, unsigned workers,
    SplitStrategy strategy = SplitStrategy::kEvenRanks,
    std::uint64_t block_size = 0, unsigned order = 3);

}  // namespace trigen::shard
