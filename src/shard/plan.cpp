#include "trigen/shard/plan.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "trigen/combinatorics/combinations.hpp"

namespace trigen::shard {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  fnv_bytes(h, buf, sizeof buf);
}

}  // namespace

std::uint64_t dataset_fingerprint(const dataset::GenotypeMatrix& d) {
  std::uint64_t h = kFnvOffset;
  fnv_u64(h, d.num_snps());
  fnv_u64(h, d.num_samples());
  for (std::size_t m = 0; m < d.num_snps(); ++m) {
    const auto row = d.snp_row(m);
    fnv_bytes(h, row.data(), row.size());
  }
  const auto ph = d.phenotypes();
  fnv_bytes(h, ph.data(), ph.size());
  return h;
}

std::vector<combinatorics::RankRange> plan_shards(std::uint64_t num_snps,
                                                  unsigned workers,
                                                  SplitStrategy strategy,
                                                  std::uint64_t block_size,
                                                  unsigned order) {
  if (order < 2 || order > combinatorics::kMaxOrder) {
    throw std::invalid_argument(
        "plan_shards: order must be in [2, " +
        std::to_string(combinatorics::kMaxOrder) + "], got " +
        std::to_string(order));
  }
  const std::uint64_t total = combinatorics::n_choose_k(num_snps, order);
  if (workers == 0) {
    throw std::invalid_argument("plan_shards: workers must be >= 1");
  }
  if (workers > total) {
    throw std::invalid_argument(
        "plan_shards: " + std::to_string(workers) + " workers for only " +
        std::to_string(total) + " order-" + std::to_string(order) +
        " combinations would leave empty shards");
  }

  // Boundary ranks between shards: boundaries[i] ends shard i.  Even split
  // first; kBlockAligned then snaps each interior boundary to a block-layer
  // cut C(b*bs, 3), keeping the sequence strictly increasing.
  std::vector<std::uint64_t> bounds(workers);
  for (unsigned i = 0; i < workers; ++i) {
    bounds[i] = total * (i + 1) / workers;
  }
  if (strategy == SplitStrategy::kBlockAligned) {
    if (block_size == 0) {
      throw std::invalid_argument(
          "plan_shards: block-aligned split needs block_size >= 1");
    }
    std::vector<std::uint64_t> cuts;  // strictly increasing, in (0, total)
    for (std::uint64_t z = block_size; z < num_snps; z += block_size) {
      const std::uint64_t c = combinatorics::n_choose_k(z, order);
      if (c > 0 && c < total) cuts.push_back(c);
    }
    if (cuts.size() + 1 < workers) {
      throw std::invalid_argument(
          "plan_shards: block-aligned split has only " +
          std::to_string(cuts.size() + 1) + " block layers for " +
          std::to_string(workers) + " workers; lower the worker count, "
          "shrink block_size, or use the even split");
    }
    std::uint64_t prev = 0;
    for (unsigned i = 0; i + 1 < workers; ++i) {
      // Largest cut <= the even target, but strictly after the previous
      // boundary and early enough to leave one cut per remaining shard.
      const auto it = std::upper_bound(cuts.begin(), cuts.end(), bounds[i]);
      std::size_t pick = static_cast<std::size_t>(it - cuts.begin());
      pick = pick == 0 ? 0 : pick - 1;
      const std::size_t lo = [&] {
        const auto after_prev =
            std::upper_bound(cuts.begin(), cuts.end(), prev);
        return static_cast<std::size_t>(after_prev - cuts.begin());
      }();
      const std::size_t hi = cuts.size() - (workers - 1 - i);
      pick = std::clamp(pick, lo, hi);
      bounds[i] = cuts[pick];
      prev = bounds[i];
    }
  }

  std::vector<combinatorics::RankRange> shards(workers);
  std::uint64_t first = 0;
  for (unsigned i = 0; i < workers; ++i) {
    shards[i] = {first, bounds[i]};
    first = bounds[i];
  }
  return shards;
}

}  // namespace trigen::shard
