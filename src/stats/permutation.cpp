#include "trigen/stats/permutation.hpp"

#include <algorithm>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "trigen/common/rng.hpp"
#include "trigen/dataset/bitplanes.hpp"

namespace trigen::stats {

std::vector<dataset::Phenotype> shuffled_labels(
    const dataset::GenotypeMatrix& d, std::uint64_t seed) {
  std::vector<dataset::Phenotype> labels(d.num_samples());
  for (std::size_t j = 0; j < d.num_samples(); ++j) {
    labels[j] = d.phenotype(j);
  }
  Xoshiro256 rng(seed);
  for (std::size_t j = labels.size(); j > 1; --j) {  // Fisher-Yates
    std::swap(labels[j - 1], labels[rng.bounded(j)]);
  }
  return labels;
}

dataset::GenotypeMatrix shuffle_phenotypes(const dataset::GenotypeMatrix& d,
                                           std::uint64_t seed) {
  dataset::GenotypeMatrix out = d;
  const std::vector<dataset::Phenotype> labels = shuffled_labels(d, seed);
  for (std::size_t j = 0; j < labels.size(); ++j) {
    out.set_phenotype(j, labels[j]);
  }
  return out;
}

namespace {

/// Legacy sequential body: one full scan per permutation.  Kept as the
/// cross-check target for the batched path and as the low-memory fallback.
/// One working matrix is reused across all permutations — only the label
/// byte per sample changes, never the genotype payload.
template <unsigned K>
BasicPermutationTestResult<K> permutation_test_sequential(
    const dataset::GenotypeMatrix& d, unsigned permutations,
    std::uint64_t seed, core::BasicDetectorOptions<K> dopt) {
  using Detector = core::BasicDetector<K>;
  BasicPermutationTestResult<K> result;
  {
    const Detector det(d);
    const auto observed = det.run(dopt);
    result.observed = observed.best.front();
    // Pin the auto-resolved execution config so the null scans reuse it
    // through the shared driver instead of re-detecting ISA, L1 geometry
    // and tiling once per permutation.
    dopt.isa = observed.isa_used;
    dopt.isa_auto = false;
    dopt.threads = observed.threads_used;
    if (observed.tiling_used.valid()) dopt.tiling = observed.tiling_used;
  }

  result.null_scores.reserve(permutations);
  SplitMix64 seeds(seed);
  dataset::GenotypeMatrix working = d;  // single copy, relabeled per null
  unsigned as_good = 0;
  for (unsigned p = 0; p < permutations; ++p) {
    const std::vector<dataset::Phenotype> labels =
        shuffled_labels(d, seeds.next());
    for (std::size_t j = 0; j < labels.size(); ++j) {
      working.set_phenotype(j, labels[j]);
    }
    const Detector det(working);
    const double best = det.run(dopt).best.front().score;
    result.null_scores.push_back(best);
    if (best <= result.observed.score) ++as_good;
  }
  result.p_value = static_cast<double>(1 + as_good) /
                   static_cast<double>(permutations + 1);
  return result;
}

/// Batched body: observed + all nulls become partitions of one (or a few)
/// multi-phenotype scans — the genotype streaming and prefix-plane ladder
/// are paid once per chunk instead of once per permutation.  Seed stream,
/// integer tables and the deterministic merge match the sequential path
/// exactly, so results are bit-identical.
template <unsigned K>
BasicPermutationTestResult<K> permutation_test_batched(
    const dataset::GenotypeMatrix& d, unsigned permutations,
    std::uint64_t seed, unsigned batch, core::BasicDetectorOptions<K> dopt) {
  using Detector = core::BasicDetector<K>;
  BasicPermutationTestResult<K> result;
  result.null_scores.resize(permutations);

  // Partition 0 is the observed labeling; the same SplitMix64 stream as the
  // sequential path seeds each null's Fisher-Yates shuffle.
  std::vector<std::vector<dataset::Phenotype>> parts;
  parts.reserve(permutations + 1);
  {
    std::vector<dataset::Phenotype> observed(d.num_samples());
    for (std::size_t j = 0; j < d.num_samples(); ++j) {
      observed[j] = d.phenotype(j);
    }
    parts.push_back(std::move(observed));
  }
  SplitMix64 seeds(seed);
  for (unsigned p = 0; p < permutations; ++p) {
    parts.push_back(shuffled_labels(d, seeds.next()));
  }

  const Detector det(d);
  const std::size_t total = parts.size();
  const std::size_t chunk = batch == 0 ? total : batch;
  bool pinned = false;
  for (std::size_t first = 0; first < total; first += chunk) {
    const std::size_t count = std::min(chunk, total - first);
    std::vector<std::vector<dataset::Phenotype>> chunk_parts(
        std::make_move_iterator(parts.begin() +
                                static_cast<std::ptrdiff_t>(first)),
        std::make_move_iterator(parts.begin() +
                                static_cast<std::ptrdiff_t>(first + count)));
    const dataset::PhenotypeBatch labels =
        dataset::PhenotypeBatch::build(d.num_samples(), chunk_parts);
    const auto res = det.run_batched(labels, dopt);
    if (!pinned) {
      // Pin the auto-resolved config for the remaining chunks.
      dopt.isa = res.isa_used;
      dopt.isa_auto = false;
      dopt.threads = res.threads_used;
      if (res.tiling_used.valid()) dopt.tiling = res.tiling_used;
      pinned = true;
    }
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t slot = first + i;
      if (slot == 0) {
        result.observed = res.best[i].front();
      } else {
        result.null_scores[slot - 1] = res.best[i].front().score;
      }
    }
  }

  unsigned as_good = 0;
  for (const double s : result.null_scores) {
    if (s <= result.observed.score) ++as_good;
  }
  result.p_value = static_cast<double>(1 + as_good) /
                   static_cast<double>(permutations + 1);
  return result;
}

}  // namespace

template <unsigned K>
BasicPermutationTestResult<K> permutation_test_of(
    const dataset::GenotypeMatrix& d,
    const BasicPermutationTestOptions<K>& options) {
  if (options.permutations == 0) {
    throw std::invalid_argument("permutation_test: need >= 1 permutation");
  }
  // Every scan of the test shares one normalized scorer (the K2
  // log-factorial table depends only on the sample count, which
  // permutation preserves).
  core::BasicDetectorOptions<K> dopt = options.detector;
  dopt.top_k = 1;
  core::ensure_default_scorer(dopt, d.num_samples());
  if (options.batch == 1) {
    return permutation_test_sequential<K>(d, options.permutations,
                                          options.seed, std::move(dopt));
  }
  return permutation_test_batched<K>(d, options.permutations, options.seed,
                                     options.batch, std::move(dopt));
}

template BasicPermutationTestResult<2> permutation_test_of<2>(
    const dataset::GenotypeMatrix&, const BasicPermutationTestOptions<2>&);
template BasicPermutationTestResult<3> permutation_test_of<3>(
    const dataset::GenotypeMatrix&, const BasicPermutationTestOptions<3>&);
template BasicPermutationTestResult<4> permutation_test_of<4>(
    const dataset::GenotypeMatrix&, const BasicPermutationTestOptions<4>&);
template BasicPermutationTestResult<5> permutation_test_of<5>(
    const dataset::GenotypeMatrix&, const BasicPermutationTestOptions<5>&);
template BasicPermutationTestResult<6> permutation_test_of<6>(
    const dataset::GenotypeMatrix&, const BasicPermutationTestOptions<6>&);

}  // namespace trigen::stats
