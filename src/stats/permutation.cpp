#include "trigen/stats/permutation.hpp"

#include <stdexcept>

#include "trigen/common/rng.hpp"

namespace trigen::stats {

dataset::GenotypeMatrix shuffle_phenotypes(const dataset::GenotypeMatrix& d,
                                           std::uint64_t seed) {
  dataset::GenotypeMatrix out = d;
  std::vector<dataset::Phenotype> labels(d.num_samples());
  for (std::size_t j = 0; j < d.num_samples(); ++j) {
    labels[j] = d.phenotype(j);
  }
  Xoshiro256 rng(seed);
  for (std::size_t j = labels.size(); j > 1; --j) {  // Fisher-Yates
    std::swap(labels[j - 1], labels[rng.bounded(j)]);
  }
  for (std::size_t j = 0; j < labels.size(); ++j) {
    out.set_phenotype(j, labels[j]);
  }
  return out;
}

namespace {

/// The shared test body, generic over the interaction order: `Detector`
/// is core::BasicDetector<K>, `Result` the matching
/// BasicPermutationTestResult<K>.
template <typename Detector, typename Result, typename Options>
Result permutation_test_impl(const dataset::GenotypeMatrix& d,
                             unsigned permutations, std::uint64_t seed,
                             Options dopt) {
  if (permutations == 0) {
    throw std::invalid_argument("permutation_test: need >= 1 permutation");
  }
  // Every scan of the test shares one normalized scorer (the K2
  // log-factorial table depends only on the sample count, which
  // permutation preserves).
  dopt.top_k = 1;
  core::ensure_default_scorer(dopt, d.num_samples());

  Result result;
  {
    const Detector det(d);
    const auto observed = det.run(dopt);
    result.observed = observed.best.front();
    // Pin the auto-resolved execution config so the null scans reuse it
    // through the shared driver instead of re-detecting ISA, L1 geometry
    // and tiling once per permutation.
    dopt.isa = observed.isa_used;
    dopt.isa_auto = false;
    dopt.threads = observed.threads_used;
    if (observed.tiling_used.valid()) dopt.tiling = observed.tiling_used;
  }

  result.null_scores.reserve(permutations);
  SplitMix64 seeds(seed);
  unsigned as_good = 0;
  for (unsigned p = 0; p < permutations; ++p) {
    const auto shuffled = shuffle_phenotypes(d, seeds.next());
    const Detector det(shuffled);
    const double best = det.run(dopt).best.front().score;
    result.null_scores.push_back(best);
    if (best <= result.observed.score) ++as_good;
  }
  result.p_value = static_cast<double>(1 + as_good) /
                   static_cast<double>(permutations + 1);
  return result;
}

}  // namespace

template <unsigned K>
BasicPermutationTestResult<K> permutation_test_of(
    const dataset::GenotypeMatrix& d,
    const BasicPermutationTestOptions<K>& options) {
  return permutation_test_impl<core::BasicDetector<K>,
                               BasicPermutationTestResult<K>>(
      d, options.permutations, options.seed, options.detector);
}

template BasicPermutationTestResult<2> permutation_test_of<2>(
    const dataset::GenotypeMatrix&, const BasicPermutationTestOptions<2>&);
template BasicPermutationTestResult<3> permutation_test_of<3>(
    const dataset::GenotypeMatrix&, const BasicPermutationTestOptions<3>&);
template BasicPermutationTestResult<4> permutation_test_of<4>(
    const dataset::GenotypeMatrix&, const BasicPermutationTestOptions<4>&);
template BasicPermutationTestResult<5> permutation_test_of<5>(
    const dataset::GenotypeMatrix&, const BasicPermutationTestOptions<5>&);
template BasicPermutationTestResult<6> permutation_test_of<6>(
    const dataset::GenotypeMatrix&, const BasicPermutationTestOptions<6>&);

}  // namespace trigen::stats
