#include "trigen/stats/permutation.hpp"

#include <stdexcept>

#include "trigen/common/rng.hpp"

namespace trigen::stats {

dataset::GenotypeMatrix shuffle_phenotypes(const dataset::GenotypeMatrix& d,
                                           std::uint64_t seed) {
  dataset::GenotypeMatrix out = d;
  std::vector<dataset::Phenotype> labels(d.num_samples());
  for (std::size_t j = 0; j < d.num_samples(); ++j) {
    labels[j] = d.phenotype(j);
  }
  Xoshiro256 rng(seed);
  for (std::size_t j = labels.size(); j > 1; --j) {  // Fisher-Yates
    std::swap(labels[j - 1], labels[rng.bounded(j)]);
  }
  for (std::size_t j = 0; j < labels.size(); ++j) {
    out.set_phenotype(j, labels[j]);
  }
  return out;
}

PermutationTestResult permutation_test(const dataset::GenotypeMatrix& d,
                                       const PermutationTestOptions& options) {
  if (options.permutations == 0) {
    throw std::invalid_argument("permutation_test: need >= 1 permutation");
  }
  core::DetectorOptions dopt = options.detector;
  dopt.top_k = 1;
  // Every scan shares one normalized scorer (the K2 log-factorial table
  // depends only on the sample count, which permutation preserves).
  if (!dopt.scorer) {
    dopt.scorer = core::make_normalized_scorer(
        dopt.objective, static_cast<std::uint32_t>(d.num_samples()));
  }

  PermutationTestResult result;
  {
    const core::Detector det(d);
    const core::DetectionResult observed = det.run(dopt);
    result.observed = observed.best.front();
    // Pin the auto-resolved execution config so the null scans reuse it
    // through the shared driver instead of re-detecting ISA, L1 geometry
    // and tiling once per permutation.
    dopt.isa = observed.isa_used;
    dopt.isa_auto = false;
    dopt.threads = observed.threads_used;
    if (observed.tiling_used.valid()) dopt.tiling = observed.tiling_used;
  }

  result.null_scores.reserve(options.permutations);
  SplitMix64 seeds(options.seed);
  unsigned as_good = 0;
  for (unsigned p = 0; p < options.permutations; ++p) {
    const auto shuffled = shuffle_phenotypes(d, seeds.next());
    const core::Detector det(shuffled);
    const double best = det.run(dopt).best.front().score;
    result.null_scores.push_back(best);
    if (best <= result.observed.score) ++as_good;
  }
  result.p_value = static_cast<double>(1 + as_good) /
                   static_cast<double>(options.permutations + 1);
  return result;
}

}  // namespace trigen::stats
