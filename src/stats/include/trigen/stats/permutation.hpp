#pragma once
/// \file permutation.hpp
/// \brief Permutation-based significance testing for detected interactions.
///
/// Exhaustive search always returns *some* best triplet; whether it means
/// anything requires a null distribution.  The standard GWAS procedure —
/// used by the BOOST/MPI3SNP tool family the paper builds on — is phenotype
/// permutation: shuffle the case/control labels (destroying any genotype-
/// phenotype association while preserving genotype LD structure), re-run
/// the full scan, and record the best null score.  The empirical p-value
/// of the observed best score is
///
///     p = (1 + #{null best <= observed}) / (permutations + 1)
///
/// (normalized lower-is-better scores; the +1 terms give the standard
/// unbiased estimator).

#include <cstdint>
#include <vector>

#include "trigen/core/detector.hpp"
#include "trigen/pairwise/pair_detector.hpp"

namespace trigen::stats {

struct PermutationTestOptions {
  unsigned permutations = 50;  ///< null scans (each is a full exhaustive run)
  std::uint64_t seed = 7;      ///< shuffle seed (deterministic)
  core::DetectorOptions detector;  ///< configuration for every scan
};

struct PermutationTestResult {
  core::ScoredTriplet observed;      ///< best triplet on the real labels
  std::vector<double> null_scores;   ///< best normalized score per permutation
  double p_value = 1.0;

  /// True when the observed association is stronger than every null scan.
  bool significant_at(double alpha) const { return p_value <= alpha; }
};

/// Runs the full permutation test.  Cost: (permutations + 1) exhaustive
/// scans; use the V4 kernel and multiple threads for real datasets.
/// Throws std::invalid_argument for zero permutations.
PermutationTestResult permutation_test(const dataset::GenotypeMatrix& d,
                                       const PermutationTestOptions& options);

/// Second-order significance testing: the same phenotype-permutation
/// procedure over the pairwise scan (the BOOST/GBOOST setting).  Both
/// orders share one implementation — the observed scan pins the resolved
/// ISA/threads/tiling and one normalized scorer is shared across every
/// null scan.
struct PairPermutationTestOptions {
  unsigned permutations = 50;
  std::uint64_t seed = 7;
  pairwise::PairDetectorOptions detector;  ///< configuration for every scan
};

struct PairPermutationTestResult {
  core::ScoredPair observed;         ///< best pair on the real labels
  std::vector<double> null_scores;   ///< best normalized score per permutation
  double p_value = 1.0;

  bool significant_at(double alpha) const { return p_value <= alpha; }
};

/// Runs the pairwise permutation test; same contract as permutation_test.
PairPermutationTestResult pair_permutation_test(
    const dataset::GenotypeMatrix& d,
    const PairPermutationTestOptions& options);

/// Phenotype-shuffled copy of `d` (Fisher-Yates, deterministic in `seed`);
/// exposed for tests and custom pipelines.
dataset::GenotypeMatrix shuffle_phenotypes(const dataset::GenotypeMatrix& d,
                                           std::uint64_t seed);

}  // namespace trigen::stats
