#pragma once
/// \file permutation.hpp
/// \brief Permutation-based significance testing for detected interactions.
///
/// Exhaustive search always returns *some* best triplet; whether it means
/// anything requires a null distribution.  The standard GWAS procedure —
/// used by the BOOST/MPI3SNP tool family the paper builds on — is phenotype
/// permutation: shuffle the case/control labels (destroying any genotype-
/// phenotype association while preserving genotype LD structure), re-run
/// the full scan, and record the best null score.  The empirical p-value
/// of the observed best score is
///
///     p = (1 + #{null best <= observed}) / (permutations + 1)
///
/// (normalized lower-is-better scores; the +1 terms give the standard
/// unbiased estimator).

#include <cstdint>
#include <vector>

#include "trigen/core/detector.hpp"
#include "trigen/pairwise/pair_detector.hpp"

namespace trigen::stats {

/// Options of the order-K permutation test.
template <unsigned K>
struct BasicPermutationTestOptions {
  unsigned permutations = 50;  ///< null scans (each is a full exhaustive run)
  std::uint64_t seed = 7;      ///< shuffle seed (deterministic)
  /// Partitions scored per batched scan.  0 (the default) scores observed +
  /// every null in ONE batched pass — the genotype streaming and
  /// prefix-plane ladder are amortized across all of them, making the test
  /// ~P× cheaper than sequential re-scans.  1 selects the legacy
  /// sequential path (one scan per permutation; the cross-check target and
  /// the low-memory fallback).  Values >= 2 chunk the batched pass, capping
  /// the live per-thread tables when permutations is very large.  Every
  /// setting is bit-identical: same seeds, same integer tables, same
  /// observed top-k and p-value.
  unsigned batch = 0;
  core::BasicDetectorOptions<K> detector;  ///< configuration for every scan
};

/// Result of the order-K permutation test.
template <unsigned K>
struct BasicPermutationTestResult {
  core::ScoredOf<K> observed;        ///< best combination on the real labels
  std::vector<double> null_scores;   ///< best normalized score per permutation
  double p_value = 1.0;

  /// True when the observed association is stronger than every null scan.
  bool significant_at(double alpha) const { return p_value <= alpha; }
};

using PermutationTestOptions = BasicPermutationTestOptions<3>;
using PermutationTestResult = BasicPermutationTestResult<3>;
/// Second-order significance testing: the same phenotype-permutation
/// procedure over the pairwise scan (the BOOST/GBOOST setting).
using PairPermutationTestOptions = BasicPermutationTestOptions<2>;
using PairPermutationTestResult = BasicPermutationTestResult<2>;

/// Runs the full order-K permutation test.  Cost: (permutations + 1)
/// exhaustive scans; use the V4/V5 kernels and multiple threads for real
/// datasets.  Every order shares one implementation — the observed scan
/// pins the resolved ISA/threads/tiling and one normalized scorer is
/// shared across every null scan.  Throws std::invalid_argument for zero
/// permutations.
template <unsigned K>
BasicPermutationTestResult<K> permutation_test_of(
    const dataset::GenotypeMatrix& d,
    const BasicPermutationTestOptions<K>& options);

/// The 3-way permutation test (= permutation_test_of<3>).
inline PermutationTestResult permutation_test(
    const dataset::GenotypeMatrix& d, const PermutationTestOptions& options) {
  return permutation_test_of<3>(d, options);
}

/// The pairwise permutation test (= permutation_test_of<2>).
inline PairPermutationTestResult pair_permutation_test(
    const dataset::GenotypeMatrix& d,
    const PairPermutationTestOptions& options) {
  return permutation_test_of<2>(d, options);
}

extern template BasicPermutationTestResult<2> permutation_test_of<2>(
    const dataset::GenotypeMatrix&, const BasicPermutationTestOptions<2>&);
extern template BasicPermutationTestResult<3> permutation_test_of<3>(
    const dataset::GenotypeMatrix&, const BasicPermutationTestOptions<3>&);
extern template BasicPermutationTestResult<4> permutation_test_of<4>(
    const dataset::GenotypeMatrix&, const BasicPermutationTestOptions<4>&);
extern template BasicPermutationTestResult<5> permutation_test_of<5>(
    const dataset::GenotypeMatrix&, const BasicPermutationTestOptions<5>&);
extern template BasicPermutationTestResult<6> permutation_test_of<6>(
    const dataset::GenotypeMatrix&, const BasicPermutationTestOptions<6>&);

/// Shuffled label vector of `d` (Fisher-Yates, deterministic in `seed`) —
/// the label-plane-only shuffle both test paths are built on: no genotype
/// plane is copied per permutation.
std::vector<dataset::Phenotype> shuffled_labels(
    const dataset::GenotypeMatrix& d, std::uint64_t seed);

/// Phenotype-shuffled copy of `d` (Fisher-Yates, deterministic in `seed`);
/// exposed for tests and custom pipelines.  Identical shuffle stream as
/// shuffled_labels(d, seed) — callers that only need the labels should
/// prefer it and skip the genotype copy.
dataset::GenotypeMatrix shuffle_phenotypes(const dataset::GenotypeMatrix& d,
                                           std::uint64_t seed);

}  // namespace trigen::stats
