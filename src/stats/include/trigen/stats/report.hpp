#pragma once
/// \file report.hpp
/// \brief The canonical text rendering of a permutation-test result.
///
/// `trigen significance` prints these lines and the resident server streams
/// the very same ones as its significance-job payload, so `diff` can prove
/// the two paths agree down to the last formatted digit.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "trigen/stats/permutation.hpp"

namespace trigen::stats {

/// The three report lines of an order-K permutation test, in print order:
/// observed best, null-score range, empirical p-value (no trailing
/// newlines).  `permutations` is the configured null-scan count (always
/// equal to r.null_scores.size() for a completed test).
template <unsigned K>
std::vector<std::string> significance_report(
    const BasicPermutationTestResult<K>& r, unsigned permutations) {
  std::vector<std::string> lines;
  std::string obs;
  for (const std::uint32_t s : core::snps_of<K>(r.observed)) {
    if (!obs.empty()) obs += ',';
    obs += std::to_string(s);
  }
  char buf[160];
  std::snprintf(buf, sizeof buf, "observed best: (%s) score %.4f",
                obs.c_str(), r.observed.score);
  lines.emplace_back(buf);
  double null_min = 1e300, null_max = -1e300;
  for (const double s : r.null_scores) {
    null_min = std::min(null_min, s);
    null_max = std::max(null_max, s);
  }
  std::snprintf(buf, sizeof buf,
                "null best scores over %u permutations: [%.4f, %.4f]",
                permutations, null_min, null_max);
  lines.emplace_back(buf);
  std::snprintf(buf, sizeof buf,
                "empirical p-value: %.4f (%ssignificant at 0.05)", r.p_value,
                r.significant_at(0.05) ? "" : "NOT ");
  lines.emplace_back(buf);
  return lines;
}

}  // namespace trigen::stats
