#include "trigen/tune/profile.hpp"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "trigen/common/cpuid.hpp"
#include "trigen/common/numa.hpp"
#include "trigen/core/tiling.hpp"
#include "trigen/dataset/bitplanes.hpp"

namespace trigen::tune {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("tune-profile: " + what);
}

constexpr char kMagic[] = "TRIGEN-TUNE";
constexpr unsigned kVersion = 1;

std::uint64_t fnv1a64(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t fnv1a64_u64(std::uint64_t h, std::uint64_t v) {
  // Fixed-width little-endian so the digest is byte-order independent.
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  return fnv1a64(h, b, sizeof(b));
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

}  // namespace

std::uint64_t HostFingerprint::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64 offset basis
  h = fnv1a64(h, cpu_brand.data(), cpu_brand.size());
  h = fnv1a64_u64(h, feature_mask);
  h = fnv1a64_u64(h, l1_size_bytes);
  h = fnv1a64_u64(h, l1_ways);
  h = fnv1a64_u64(h, numa_nodes);
  return h;
}

const HostFingerprint& this_host_fingerprint() {
  static const HostFingerprint fp = [] {
    HostFingerprint f;
    f.cpu_brand = cpu_brand_string();
    const CpuFeatures& feats = cpu_features();
    f.feature_mask = (feats.sse42 ? 1u : 0u) | (feats.avx2 ? 2u : 0u) |
                     (feats.avx512f ? 4u : 0u) | (feats.avx512bw ? 8u : 0u) |
                     (feats.avx512vl ? 16u : 0u) |
                     (feats.avx512vpopcntdq ? 32u : 0u);
    const core::L1Config l1 = core::detect_l1_config();
    f.l1_size_bytes = l1.size_bytes;
    f.l1_ways = l1.ways;
    f.numa_nodes = numa_topology().nodes();
    return f;
  }();
  return fp;
}

std::uint64_t sample_bucket_words(std::size_t n_samples) {
  const std::size_t words = dataset::padded_words_for(n_samples);
  std::uint64_t bucket = 16;  // floor: tiny inputs share one bucket
  while (bucket < words) bucket <<= 1;
  return bucket;
}

std::uint64_t batch_slot_bucket(std::size_t slots) {
  if (slots == 0) return 0;
  std::uint64_t bucket = 8;
  while (bucket < slots && bucket < 64) bucket <<= 1;
  return bucket;
}

const ProfileEntry* TuningProfile::find(const ProfileKey& key) const {
  const auto it = entries.find(key);
  return it == entries.end() ? nullptr : &it->second;
}

void TuningProfile::merge_from(const TuningProfile& other) {
  for (const auto& [key, entry] : other.entries) entries[key] = entry;
}

std::string serialize_profile(const TuningProfile& profile) {
  std::ostringstream os;
  os << kMagic << " v" << kVersion << "\n";
  os << "host " << hex16(profile.host.digest()) << "\n";
  os << "cpu " << profile.host.cpu_brand << "\n";
  char mask[16];
  std::snprintf(mask, sizeof(mask), "%x", profile.host.feature_mask);
  os << "features " << mask << "\n";
  os << "l1 " << profile.host.l1_size_bytes << " " << profile.host.l1_ways
     << "\n";
  os << "numa " << profile.host.numa_nodes << "\n";
  os << "entries " << profile.entries.size() << "\n";
  for (const auto& [key, e] : profile.entries) {
    os << "entry " << core::kernel_family_name(key.family) << " " << key.order
       << " " << key.bucket_words << " " << key.batch_slots << " "
       << core::kernel_isa_name(e.isa) << " " << e.tiling.bs << " "
       << e.tiling.bp_words << " " << format_double(e.throughput) << " "
       << core::kernel_isa_name(e.analytic_isa) << " " << e.analytic_tiling.bs
       << " " << e.analytic_tiling.bp_words << " "
       << format_double(e.analytic_throughput) << "\n";
  }
  os << "end\n";
  return os.str();
}

namespace {

/// Line cursor with the "truncated" diagnostics baked in.
struct LineReader {
  std::istringstream is;
  explicit LineReader(const std::string& text) : is(text) {}

  std::string next(const char* expecting) {
    std::string line;
    if (!std::getline(is, line))
      fail(std::string("truncated file: missing ") + expecting);
    return line;
  }
};

/// Splits `line` on single spaces; the leading token names the record.
std::vector<std::string> fields_of(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t pos = 0;
  while (pos <= line.size()) {
    const std::size_t sp = line.find(' ', pos);
    if (sp == std::string::npos) {
      fields.push_back(line.substr(pos));
      break;
    }
    fields.push_back(line.substr(pos, sp - pos));
    pos = sp + 1;
  }
  return fields;
}

std::uint64_t parse_u64(const std::string& s, const char* what) {
  if (s.empty()) fail(std::string("empty ") + what);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size())
    fail(std::string("malformed ") + what + " '" + s + "'");
  return v;
}

std::uint32_t parse_hex32(const std::string& s, const char* what) {
  if (s.empty()) fail(std::string("empty ") + what);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 16);
  if (errno != 0 || end != s.c_str() + s.size() || v > 0xffffffffull)
    fail(std::string("malformed ") + what + " '" + s + "'");
  return static_cast<std::uint32_t>(v);
}

double parse_throughput(const std::string& s, const char* what) {
  if (s.empty()) fail(std::string("empty ") + what);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size() || v < 0.0)
    fail(std::string("malformed ") + what + " '" + s + "'");
  return v;
}

}  // namespace

TuningProfile parse_profile(const std::string& text) {
  LineReader lines(text);

  const std::string magic = lines.next("magic line");
  if (magic.rfind(kMagic, 0) != 0)
    fail("bad magic: expected '" + std::string(kMagic) + " v" +
         std::to_string(kVersion) + "', got '" + magic + "'");
  if (magic != std::string(kMagic) + " v" + std::to_string(kVersion))
    fail("unsupported version '" + magic.substr(std::strlen(kMagic) + 1) +
         "' (this build reads v" + std::to_string(kVersion) + ")");

  TuningProfile profile;

  const auto record = [&](const char* name) {
    const std::string line = lines.next(name);
    const std::string prefix = std::string(name) + " ";
    if (line.rfind(prefix, 0) != 0)
      fail(std::string("expected '") + name + "' record, got '" + line + "'");
    return line.substr(prefix.size());
  };

  const std::string host_hex = record("host");
  if (host_hex.size() != 16 ||
      host_hex.find_first_not_of("0123456789abcdef") != std::string::npos)
    fail("malformed host digest '" + host_hex + "'");
  errno = 0;
  char* end = nullptr;
  const std::uint64_t claimed_digest =
      std::strtoull(host_hex.c_str(), &end, 16);
  if (errno != 0 || end != host_hex.c_str() + host_hex.size())
    fail("malformed host digest '" + host_hex + "'");

  profile.host.cpu_brand = record("cpu");
  profile.host.feature_mask = parse_hex32(record("features"), "feature mask");

  const std::vector<std::string> l1 = fields_of(record("l1"));
  if (l1.size() != 2) fail("malformed l1 record: expected '<size> <ways>'");
  profile.host.l1_size_bytes =
      static_cast<std::size_t>(parse_u64(l1[0], "l1 size"));
  profile.host.l1_ways = static_cast<unsigned>(parse_u64(l1[1], "l1 ways"));
  if (profile.host.l1_size_bytes == 0 ||
      profile.host.l1_size_bytes > (64u << 20) || profile.host.l1_ways == 0 ||
      profile.host.l1_ways > 64)
    fail("implausible l1 geometry " + std::to_string(profile.host.l1_size_bytes) +
         "/" + std::to_string(profile.host.l1_ways));

  profile.host.numa_nodes =
      static_cast<unsigned>(parse_u64(record("numa"), "numa node count"));
  if (profile.host.numa_nodes == 0 || profile.host.numa_nodes > 1024)
    fail("implausible numa node count " +
         std::to_string(profile.host.numa_nodes));

  if (profile.host.digest() != claimed_digest)
    fail("host digest mismatch: header claims " + host_hex +
         " but the host fields hash to " + hex16(profile.host.digest()) +
         " (corrupt or hand-edited profile)");

  const std::uint64_t count = parse_u64(record("entries"), "entry count");
  if (count > 100000) fail("implausible entry count " + std::to_string(count));

  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string line = lines.next("entry line");
    const std::vector<std::string> f = fields_of(line);
    if (f.size() != 13 || f[0] != "entry")
      fail("malformed entry line '" + line +
           "' (expected 'entry' plus 12 fields)");
    ProfileKey key;
    const auto family = core::parse_kernel_family(f[1]);
    if (!family) fail("unknown kernel family '" + f[1] + "'");
    key.family = *family;
    key.order = static_cast<unsigned>(parse_u64(f[2], "order"));
    if (key.order < 2 || key.order > 16)
      fail("implausible order " + f[2]);
    key.bucket_words = parse_u64(f[3], "bucket words");
    key.batch_slots = parse_u64(f[4], "batch slots");
    ProfileEntry e;
    const auto isa = core::parse_kernel_isa(f[5]);
    if (!isa) fail("unknown kernel isa '" + f[5] + "'");
    e.isa = *isa;
    e.tiling.bs = static_cast<std::size_t>(parse_u64(f[6], "tiling bs"));
    e.tiling.bp_words =
        static_cast<std::size_t>(parse_u64(f[7], "tiling bp_words"));
    if (!e.tiling.valid()) fail("invalid tiling in entry '" + line + "'");
    e.throughput = parse_throughput(f[8], "throughput");
    const auto aisa = core::parse_kernel_isa(f[9]);
    if (!aisa) fail("unknown analytic isa '" + f[9] + "'");
    e.analytic_isa = *aisa;
    e.analytic_tiling.bs =
        static_cast<std::size_t>(parse_u64(f[10], "analytic bs"));
    e.analytic_tiling.bp_words =
        static_cast<std::size_t>(parse_u64(f[11], "analytic bp_words"));
    e.analytic_throughput = parse_throughput(f[12], "analytic throughput");
    if (!profile.entries.emplace(key, e).second)
      fail("duplicate entry for " + core::kernel_family_name(key.family) +
           " order " + std::to_string(key.order));
  }

  const std::string trailer = lines.next("'end' trailer");
  if (trailer != "end")
    fail("expected 'end' trailer, got '" + trailer + "' (truncated file?)");
  return profile;
}

TuningProfile read_profile_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) fail("cannot open '" + path + "': " + std::strerror(errno));
  std::ostringstream buf;
  buf << is.rdbuf();
  if (is.bad()) fail("read error on '" + path + "'");
  return parse_profile(buf.str());
}

void write_profile_file(const std::string& path, const TuningProfile& profile) {
  const std::string body = serialize_profile(profile);

  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (slash != std::string::npos) {
    // Create missing parents (mkdir -p); EEXIST along the way is fine.
    std::string sofar = dir[0] == '/' ? "/" : "";
    std::istringstream parts(dir);
    std::string part;
    while (std::getline(parts, part, '/')) {
      if (part.empty()) continue;
      if (!sofar.empty() && sofar != "/") sofar += '/';
      sofar += part;
      if (::mkdir(sofar.c_str(), 0777) != 0 && errno != EEXIST)
        fail("cannot create directory '" + sofar +
             "': " + std::strerror(errno));
    }
  }

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot create '" + tmp + "': " + std::strerror(errno));
  std::size_t written = 0;
  while (written < body.size()) {
    const ssize_t n = ::write(fd, body.data() + written, body.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      fail("write to '" + tmp + "' failed: " + std::strerror(err));
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    fail("fsync of '" + tmp + "' failed: " + std::strerror(err));
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    fail("rename to '" + path + "' failed: " + std::strerror(err));
  }
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);  // make the rename itself durable; best effort
    ::close(dfd);
  }
}

TuningProfile load_profile_for_this_host(const std::string& path) {
  TuningProfile profile = read_profile_file(path);
  const HostFingerprint& here = this_host_fingerprint();
  if (profile.host.digest() != here.digest())
    fail("profile '" + path + "' was tuned for a different host (its cpu: '" +
         profile.host.cpu_brand + "', digest " + hex16(profile.host.digest()) +
         "; this host: '" + here.cpu_brand + "', digest " +
         hex16(here.digest()) + ") — re-run `trigen tune`");
  return profile;
}

core::ConfigResolver make_resolver(
    std::shared_ptr<const TuningProfile> profile) {
  return [profile = std::move(profile)](const core::KernelConfigRequest& req)
             -> std::optional<core::KernelConfigChoice> {
    if (!profile) return std::nullopt;
    ProfileKey key;
    key.family = req.family;
    key.order = req.order;
    key.bucket_words = sample_bucket_words(req.n_samples);
    key.batch_slots = batch_slot_bucket(req.batch_slots);
    const ProfileEntry* e = profile->find(key);
    if (!e) return std::nullopt;
    return core::KernelConfigChoice{e->isa, e->tiling};
  };
}

std::string default_profile_path() {
  if (const char* env = std::getenv("TRIGEN_TUNE_PROFILE"); env && *env)
    return env;
  if (const char* xdg = std::getenv("XDG_CACHE_HOME"); xdg && *xdg)
    return std::string(xdg) + "/trigen/tune-v1.profile";
  if (const char* home = std::getenv("HOME"); home && *home)
    return std::string(home) + "/.cache/trigen/tune-v1.profile";
  return "trigen-tune.profile";
}

}  // namespace trigen::tune
