#include "trigen/tune/microbench.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <random>
#include <set>
#include <sstream>
#include <stdexcept>

#include "trigen/common/aligned.hpp"
#include "trigen/core/detector.hpp"
#include "trigen/dataset/synthetic.hpp"

namespace trigen::tune {

namespace {

using core::KernelIsa;
using core::TilingParams;

/// Smallest SNP panel whose C(m, k) meets `target` combinations — keeps
/// the measured work roughly constant across orders (C(200,2), C(50,3)
/// and C(33,4) are all ~20k) so no rung dominates the grid's wall clock.
std::size_t panel_snps(unsigned order, std::uint64_t target) {
  std::size_t m = order + 1;
  for (;; ++m) {
    // C(m, order), bailing early once past target.
    std::uint64_t c = 1;
    for (unsigned i = 0; i < order; ++i) c = c * (m - i) / (i + 1);
    if (c >= target) return m;
    if (m > 4096) return m;  // unreachable for sane targets
  }
}

/// Tiling neighborhood around the analytic point: the analytic point
/// itself (tagged), B_S +/- 1, and B_P at half/double — coarse on purpose;
/// the L1 cliff is what we are probing for, not a 1% plateau.
std::vector<std::pair<TilingParams, bool>> tiling_candidates(
    const TilingParams& analytic, std::size_t vector_words, bool quick) {
  std::vector<std::pair<TilingParams, bool>> out;
  const auto push = [&](std::size_t bs, std::size_t bp, bool is_analytic) {
    if (bs == 0) return;
    bp = std::max(vector_words, bp / vector_words * vector_words);
    for (const auto& [t, a] : out) {
      if (t.bs == bs && t.bp_words == bp) return;
    }
    out.push_back({TilingParams{bs, bp}, is_analytic});
  };
  push(analytic.bs, analytic.bp_words, true);
  push(analytic.bs + 1, analytic.bp_words, false);
  if (!quick) {
    push(analytic.bs - 1, analytic.bp_words, false);
    push(analytic.bs, analytic.bp_words / 2, false);
    push(analytic.bs, analytic.bp_words * 2, false);
  }
  return out;
}

std::vector<KernelIsa> compiled_isas() {
  std::vector<KernelIsa> out;
  for (const KernelIsa isa : core::all_kernel_isas()) {
    if (core::kernel_available(isa)) out.push_back(isa);
  }
  return out;
}

double best_of_reps(unsigned reps, const std::function<double()>& run) {
  double best = 0.0;
  for (unsigned r = 0; r < reps; ++r) best = std::max(best, run());
  return best;
}

struct GridContext {
  const TuneOptions& opt;
  std::vector<KernelIsa> isas;
  core::L1Config l1;
  unsigned reps;
  std::uint64_t target_combos;
  std::vector<FamilyResult>& results;

  void log(const std::string& line) const {
    if (opt.log) opt.log(line);
  }

  /// Runs the (ISA x tiling) grid for one family with `measure(isa,
  /// tiling)` returning elements/second, picks the winner, and records the
  /// analytic baseline (best_kernel_isa + its analytic tiling, which
  /// `analytic_tiling(isa)` supplies per vector width).
  void measure_family(
      const ProfileKey& key,
      const std::function<TilingParams(KernelIsa)>& analytic_tiling,
      const std::function<double(KernelIsa, const TilingParams&)>& measure) {
    FamilyResult fr;
    fr.key = key;
    const KernelIsa model_isa = core::best_kernel_isa();
    for (const KernelIsa isa : isas) {
      const TilingParams base = analytic_tiling(isa);
      for (const auto& [tiling, is_analytic] : tiling_candidates(
               base, core::kernel_vector_words(isa), opt.quick)) {
        TuneCandidate c;
        c.isa = isa;
        c.tiling = tiling;
        c.analytic = is_analytic && isa == model_isa;
        c.throughput =
            best_of_reps(reps, [&] { return measure(isa, tiling); });
        fr.candidates.push_back(c);
      }
    }
    const auto winner = std::max_element(
        fr.candidates.begin(), fr.candidates.end(),
        [](const TuneCandidate& a, const TuneCandidate& b) {
          return a.throughput < b.throughput;
        });
    const auto analytic = std::find_if(
        fr.candidates.begin(), fr.candidates.end(),
        [](const TuneCandidate& c) { return c.analytic; });
    fr.entry.isa = winner->isa;
    fr.entry.tiling = winner->tiling;
    fr.entry.throughput = winner->throughput;
    if (analytic != fr.candidates.end()) {
      fr.entry.analytic_isa = analytic->isa;
      fr.entry.analytic_tiling = analytic->tiling;
      fr.entry.analytic_throughput = analytic->throughput;
    }
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%s order %u: winner %s <%zu,%zu> %.3g el/s "
                  "(analytic %s: %.3g el/s)",
                  core::kernel_family_name(key.family).c_str(), key.order,
                  core::kernel_isa_name(fr.entry.isa).c_str(),
                  fr.entry.tiling.bs, fr.entry.tiling.bp_words,
                  fr.entry.throughput,
                  core::kernel_isa_name(fr.entry.analytic_isa).c_str(),
                  fr.entry.analytic_throughput);
    log(line);
    results.push_back(std::move(fr));
  }
};

/// Scan-path measurement for one order: a synthetic dataset sized for the
/// requested sample bucket, one detector, one shared scorer, and runs with
/// the ISA and tiling pinned so the measurement is of exactly the
/// configuration the profile would later resolve.
template <unsigned K>
void measure_order(GridContext& ctx) {
  const std::size_t snps = panel_snps(K, ctx.target_combos);
  const dataset::GenotypeMatrix data = dataset::generate_balanced(
      snps, ctx.opt.n_samples, ctx.opt.seed + K);
  const core::BasicDetector<K> detector(data);
  const auto scorer = core::make_normalized_scorer_of<K>(
      core::Objective::kK2, static_cast<std::uint32_t>(ctx.opt.n_samples));

  const auto scan_throughput = [&](core::CpuVersion version, KernelIsa isa,
                                   const TilingParams& tiling) {
    core::BasicDetectorOptions<K> o;
    o.version = version;
    o.isa = isa;
    o.isa_auto = false;
    o.tiling = tiling;
    o.threads = 1;
    o.scorer = scorer;
    return detector.run(o).elements_per_second();
  };

  const std::uint64_t bucket = sample_bucket_words(ctx.opt.n_samples);
  const auto versions = {core::CpuVersion::kV4Vector,
                         core::CpuVersion::kV5PairCache};
  for (const core::CpuVersion version : versions) {
    // At K = 2 the counts-only pair path makes V5 identical to V4; one
    // measurement covers the single kPairCount family.
    if (K == 2 && version == core::CpuVersion::kV5PairCache) continue;
    const bool cached = version == core::CpuVersion::kV5PairCache;
    ProfileKey key;
    key.family = core::scan_kernel_family(K, version, false);
    key.order = K;
    key.bucket_words = bucket;
    ctx.measure_family(
        key,
        [&](KernelIsa isa) {
          return core::autotune_tiling(ctx.l1, core::kernel_vector_words(isa),
                                       K, cached);
        },
        [&](KernelIsa isa, const TilingParams& tiling) {
          return scan_throughput(version, isa, tiling);
        });
  }

  // The batched finalize rides the order-3 grid pass (its key is
  // per-order anyway; measuring it once at the canonical order keeps the
  // grid small while covering the permutation-testing hot path).
  if (K == 3 && ctx.opt.batch_slots > 0) {
    std::mt19937_64 rng(ctx.opt.seed ^ 0x9e3779b97f4a7c15ull);
    std::vector<std::vector<dataset::Phenotype>> parts(
        ctx.opt.batch_slots,
        std::vector<dataset::Phenotype>(ctx.opt.n_samples));
    for (auto& p : parts) {
      for (auto& v : p) v = static_cast<dataset::Phenotype>(rng() & 1);
    }
    const dataset::PhenotypeBatch batch =
        dataset::PhenotypeBatch::build(ctx.opt.n_samples, parts);
    ProfileKey key;
    key.family = core::KernelFamily::kFinalizeBatched;
    key.order = K;
    key.bucket_words = bucket;
    key.batch_slots = batch_slot_bucket(ctx.opt.batch_slots);
    ctx.measure_family(
        key,
        [&](KernelIsa isa) {
          return core::autotune_tiling(ctx.l1, core::kernel_vector_words(isa),
                                       K, true, batch.size(), batch.stride());
        },
        [&](KernelIsa isa, const TilingParams& tiling) {
          core::BasicDetectorOptions<K> o;
          o.isa = isa;
          o.isa_auto = false;
          o.tiling = tiling;
          o.threads = 1;
          o.scorer = scorer;
          return detector.run_batched(batch, o).elements_per_second();
        });
  }

  // pair_plane_build, timed standalone against the raw kernel: the only
  // family without a dedicated detector path (it also rides inside every
  // V5 number above; this entry exists so the bench fold can compare the
  // build phase across ISAs in isolation).  Throughput is in the same
  // elements metric: pairs x samples.
  if (K == 3) {
    const dataset::PhenoSplitPlanes& planes = detector.planes_split();
    const std::size_t words = planes.words(0);
    ProfileKey key;
    key.family = core::KernelFamily::kPairPlaneBuild;
    key.order = K;
    key.bucket_words = bucket;
    ctx.measure_family(
        key,
        [&](KernelIsa isa) {
          return core::autotune_tiling(ctx.l1, core::kernel_vector_words(isa),
                                       K, true);
        },
        [&](KernelIsa isa, const TilingParams& tiling) {
          const core::CachedKernelSet kset = core::get_cached_kernels(isa);
          const std::size_t stride =
              (std::min(tiling.bp_words, words) + 15) / 16 * 16;
          aligned_vector<core::Word> xy(9 * stride);
          std::uint32_t pop9[9];
          const std::size_t pairs = std::min<std::size_t>(
              snps * (snps - 1) / 2, ctx.opt.quick ? 512 : 2048);
          const auto t0 = std::chrono::steady_clock::now();
          std::size_t measured = 0;
          for (std::size_t x = 0; x < snps && measured < pairs; ++x) {
            for (std::size_t y = x + 1; y < snps && measured < pairs; ++y) {
              for (std::size_t w = 0; w < words; w += tiling.bp_words) {
                const std::size_t w_end =
                    std::min(words, w + tiling.bp_words);
                std::fill(pop9, pop9 + 9, 0u);
                kset.build(planes.plane(0, x, 0), planes.plane(0, x, 1),
                           planes.plane(0, y, 0), planes.plane(0, y, 1), w,
                           w_end, xy.data(), stride, pop9);
              }
              ++measured;
            }
          }
          const double seconds =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
          const double elements = static_cast<double>(measured) *
                                  static_cast<double>(planes.samples(0));
          return seconds > 0.0 ? elements / seconds : 0.0;
        });
  }
}

}  // namespace

TuningProfile TuneReport::to_profile() const {
  TuningProfile profile;
  profile.host = host;
  for (const FamilyResult& fr : results) profile.entries[fr.key] = fr.entry;
  return profile;
}

TuneReport run_tuning_grid(const TuneOptions& options) {
  for (const unsigned k : options.orders) {
    if (k < 2 || k > 6)
      throw std::invalid_argument("tune: order " + std::to_string(k) +
                                  " out of range [2, 6]");
  }
  if (options.n_samples == 0)
    throw std::invalid_argument("tune: n_samples must be positive");

  TuneReport report;
  report.host = this_host_fingerprint();

  GridContext ctx{options,
                  compiled_isas(),
                  core::detect_l1_config(),
                  options.quick ? 1u : 3u,
                  options.quick ? 2000ull : 20000ull,
                  report.results};

  const std::set<unsigned> orders(options.orders.begin(),
                                  options.orders.end());
  for (const unsigned k : orders) {
    switch (k) {
      case 2: measure_order<2>(ctx); break;
      case 3: measure_order<3>(ctx); break;
      case 4: measure_order<4>(ctx); break;
      case 5: measure_order<5>(ctx); break;
      case 6: measure_order<6>(ctx); break;
    }
  }
  return report;
}

std::string tune_report_json(const TuneReport& report) {
  std::ostringstream os;
  os << "{\n";
  bool first = true;
  for (const FamilyResult& fr : report.results) {
    if (!first) os << ",\n";
    first = false;
    os << "  \"tune/" << core::kernel_family_name(fr.key.family) << "/order"
       << fr.key.order << "/w" << fr.key.bucket_words;
    if (fr.key.batch_slots > 0) os << "/p" << fr.key.batch_slots;
    os << "\": {";
    char buf[512];
    const double analytic = fr.entry.analytic_throughput;
    std::snprintf(buf, sizeof(buf),
                  "\"elements_per_s\": %.6g, \"analytic_elements_per_s\": "
                  "%.6g, \"speedup\": %.6g, \"isa\": \"%s\", \"bs\": %zu, "
                  "\"bp_words\": %zu, \"analytic_isa\": \"%s\", "
                  "\"analytic_bs\": %zu, \"analytic_bp_words\": %zu",
                  fr.entry.throughput, analytic,
                  analytic > 0.0 ? fr.entry.throughput / analytic : 1.0,
                  core::kernel_isa_name(fr.entry.isa).c_str(),
                  fr.entry.tiling.bs, fr.entry.tiling.bp_words,
                  core::kernel_isa_name(fr.entry.analytic_isa).c_str(),
                  fr.entry.analytic_tiling.bs,
                  fr.entry.analytic_tiling.bp_words);
    os << buf << "}";
  }
  os << "\n}\n";
  return os.str();
}

}  // namespace trigen::tune
