#pragma once
/// \file profile.hpp
/// \brief Per-host empirical tuning profiles: the TRIGEN-TUNE file format.
///
/// A tuning profile records, for one host, the measured-fastest
/// (ISA, tiling) per kernel family, interaction order, sample-size bucket
/// and batch-slot bucket — the output of the microbench grid
/// (microbench.hpp) and the input of the ConfigResolver seam the scans
/// consult (core/kernel_config.hpp).  Entries also carry what the analytic
/// model (best_kernel_isa + autotune_tiling) would have picked and how
/// fast that measured, so reports and the bench gate can show the win.
///
/// File format, versioned and strict like the TRIGEN-SHARD formats
/// (parse-or-reject with precise messages, no partial reads):
///
///   TRIGEN-TUNE v1
///   host <fingerprint-hex16>
///   cpu <brand string to end of line>
///   features <hex feature mask>
///   l1 <size_bytes> <ways>
///   numa <node count>
///   entries <N>
///   entry <family> <order> <bucket_words> <batch_slots>
///         <isa> <bs> <bp_words> <throughput-hexfloat>
///         <analytic_isa> <analytic_bs> <analytic_bp> <analytic-hexfloat>
///   ...                             (N entry lines; one line each — the
///                                    three rows above wrap for this doc)
///   end
///
/// Throughputs are C99 hex floats ("%a"): exact round-trips, no locale.
/// Writes are crash-durable: rendered in memory, fsynced into a temp file
/// alongside the target, renamed over it, parent directory synced.
///
/// Staleness is structural, not timestamped: the host fingerprint (CPU
/// brand + feature mask + L1 geometry + NUMA node count) gates the whole
/// file — `load_profile_for_this_host` rejects a foreign profile — and the
/// per-entry size buckets gate lookups, so a profile tuned at one dataset
/// scale simply misses (falls back to the analytic model) at another.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "trigen/core/kernel_config.hpp"

namespace trigen::tune {

/// What makes a tuning measurement transferable: same CPU, same compiled
/// feature set, same L1 geometry, same node count.
struct HostFingerprint {
  std::string cpu_brand;
  std::uint32_t feature_mask = 0;  ///< CpuFeatures bits, see host.cpp
  std::size_t l1_size_bytes = 0;
  unsigned l1_ways = 0;
  unsigned numa_nodes = 1;

  bool operator==(const HostFingerprint&) const = default;

  /// FNV-1a 64 over every field — the `host` line of the file format.
  std::uint64_t digest() const;
};

/// Fingerprint of the executing host (cached after the first call).
const HostFingerprint& this_host_fingerprint();

/// Power-of-two bucket (in padded sample words, >= 16) that `n_samples`
/// falls into.  Lookup and measurement both key by this, so a profile
/// tuned for one dataset scale never configures a very different one.
std::uint64_t sample_bucket_words(std::size_t n_samples);

/// Batch-slot bucket: 0 for unbatched, else the next power of two clamped
/// to [8, 64] (the marginal cost per slot flattens past a vector register
/// of label lanes, so coarse buckets suffice).
std::uint64_t batch_slot_bucket(std::size_t slots);

/// Lookup key of one measured winner.
struct ProfileKey {
  core::KernelFamily family = core::KernelFamily::kTripleBlock;
  unsigned order = 0;
  std::uint64_t bucket_words = 0;
  std::uint64_t batch_slots = 0;  ///< bucketed; 0 = unbatched

  auto operator<=>(const ProfileKey&) const = default;
};

/// One measured winner plus the analytic baseline it beat (or tied).
struct ProfileEntry {
  core::KernelIsa isa = core::KernelIsa::kScalar;
  core::TilingParams tiling{0, 0};
  double throughput = 0.0;  ///< combination-samples (elements) per second
  core::KernelIsa analytic_isa = core::KernelIsa::kScalar;
  core::TilingParams analytic_tiling{0, 0};
  double analytic_throughput = 0.0;
};

struct TuningProfile {
  HostFingerprint host;
  std::map<ProfileKey, ProfileEntry> entries;

  /// Entry for `key`, or nullptr (→ analytic fallback).
  const ProfileEntry* find(const ProfileKey& key) const;

  /// Inserts or overwrites `other`'s entries (same-key wins for `other`);
  /// used by `trigen tune` to extend an existing profile bucket by bucket.
  void merge_from(const TuningProfile& other);
};

/// Renders the TRIGEN-TUNE v1 text form.
std::string serialize_profile(const TuningProfile& profile);

/// Strict parse of the text form; throws std::runtime_error with a
/// "tune-profile: ..." message on any malformation (bad magic, version
/// skew, truncation, unknown names, implausible values, count mismatch).
TuningProfile parse_profile(const std::string& text);

/// Reads and parses `path` (throws on I/O errors and malformations alike).
TuningProfile read_profile_file(const std::string& path);

/// Crash-durable write: temp file + fsync + rename + directory sync.
/// Parent directories are created when missing.
void write_profile_file(const std::string& path, const TuningProfile& profile);

/// read_profile_file + host gate: throws when the profile's fingerprint
/// differs from this host's (the foreign-profile rejection).
TuningProfile load_profile_for_this_host(const std::string& path);

/// ConfigResolver over `profile` for ScanOptionsBase::config: buckets the
/// request and looks it up; misses return nullopt (analytic fallback).
core::ConfigResolver make_resolver(
    std::shared_ptr<const TuningProfile> profile);

/// Where scans look for a profile when none is named explicitly:
/// $TRIGEN_TUNE_PROFILE if set, else $XDG_CACHE_HOME/trigen/tune-v1.profile
/// (falling back through $HOME/.cache to ./trigen-tune.profile).
std::string default_profile_path();

}  // namespace trigen::tune
