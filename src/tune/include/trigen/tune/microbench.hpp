#pragma once
/// \file microbench.hpp
/// \brief The empirical tuning grid: measure, don't model.
///
/// The analytic model (best_kernel_isa + autotune_tiling) picks a kernel
/// configuration from CPUID bits and L1 geometry.  It is usually right —
/// but "usually" is a modeling claim, and hosts exist where it loses
/// (downclocking AVX-512 parts, hybrid cores, odd cache partitions).
/// `run_tuning_grid` settles the question the ATLAS way: run each kernel
/// family on synthetic bitplanes sized like the real dataset, once per
/// compiled ISA and per tiling candidate in a neighborhood around the
/// analytic point, and record what actually won.  The winners go into a
/// TuningProfile (profile.hpp) that scans consult forever after; the
/// analytic candidate is always part of the grid, so the profile can never
/// be slower than the model it replaces (up to measurement noise).
///
/// Measurements run through the real detector paths — `BasicDetector::run`
/// with the ISA and tiling pinned — not through synthetic kernel loops, so
/// the numbers include exactly the streaming, blocking and reduction the
/// production scan pays.  The one exception is `pair_plane_build`, which
/// has no standalone detector path and is timed against the raw kernel
/// (it rides inside the V5 numbers too; the standalone entry exists for
/// bench comparability).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "trigen/tune/profile.hpp"

namespace trigen::tune {

/// Grid parameters.  The defaults measure the common scan shapes; `quick`
/// cuts repeats and the tiling neighborhood for smoke tests and CI.
struct TuneOptions {
  /// Sample count to size the synthetic bitplanes for — pass the real
  /// dataset's n_samples so the measurement lands in the same bucket the
  /// scans will look up.
  std::size_t n_samples = 4096;
  /// Interaction orders to measure.  2 covers the pair engine, 3 the
  /// triple engines (both V4 and V5) plus the batched finalize, >= 4 the
  /// order-generic tuple/ladder engines.
  std::vector<unsigned> orders = {2, 3, 4};
  /// Batch width for the finalize_batched measurement (0 skips it).
  std::size_t batch_slots = 8;
  /// Fewer repeats, smaller SNP panels, tighter tiling neighborhood.
  bool quick = false;
  std::uint64_t seed = 42;
  /// Optional progress sink (one line per measured family).
  std::function<void(const std::string&)> log{};
};

/// One measured (ISA, tiling) point of the grid.
struct TuneCandidate {
  core::KernelIsa isa = core::KernelIsa::kScalar;
  core::TilingParams tiling{0, 0};
  double throughput = 0.0;  ///< elements (combinations x samples) per second
  bool analytic = false;    ///< the model's own pick, always in the grid
};

/// Grid outcome for one profile key: the winner, the analytic baseline,
/// and every point measured (for reports and the bench fold).
struct FamilyResult {
  ProfileKey key;
  ProfileEntry entry;  ///< winner + analytic baseline, profile-ready
  std::vector<TuneCandidate> candidates;
};

struct TuneReport {
  HostFingerprint host;
  std::vector<FamilyResult> results;

  /// The persistable distillation: winners keyed for resolver lookup.
  TuningProfile to_profile() const;
};

/// Runs the measurement grid.  Deterministic inputs (synthetic data from
/// `seed`); timings are of course not.  Throws std::invalid_argument for
/// out-of-range orders.
TuneReport run_tuning_grid(const TuneOptions& options);

/// JSON rendering of the report for `trigen tune --json` and the bench
/// fold: {"tune/<family>/order<K>/w<bucket>[/p<slots>]": {"elements_per_s":
/// ..., "speedup": winner/analytic, "isa": ..., ...}, ...}.  `speedup` >=
/// 1.0 means the measured pick is no worse than the analytic model's.
std::string tune_report_json(const TuneReport& report);

}  // namespace trigen::tune
