#include "trigen/common/cpuid.hpp"

#include <array>
#include <cstdint>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <cpuid.h>
#define TRIGEN_HAVE_CPUID 1
#endif

namespace trigen {
namespace {

struct Regs {
  std::uint32_t eax = 0, ebx = 0, ecx = 0, edx = 0;
};

Regs cpuid(std::uint32_t leaf, std::uint32_t subleaf) {
  Regs r;
#ifdef TRIGEN_HAVE_CPUID
  __cpuid_count(leaf, subleaf, r.eax, r.ebx, r.ecx, r.edx);
#else
  (void)leaf;
  (void)subleaf;
#endif
  return r;
}

CpuFeatures detect() {
  CpuFeatures f;
#ifdef TRIGEN_HAVE_CPUID
  const Regs l1 = cpuid(1, 0);
  f.sse42 = (l1.ecx >> 20) & 1u;  // SSE4.2 implies scalar POPCNT
  const Regs l7 = cpuid(7, 0);
  f.avx2 = (l7.ebx >> 5) & 1u;
  f.avx512f = (l7.ebx >> 16) & 1u;
  f.avx512bw = (l7.ebx >> 30) & 1u;
  f.avx512vl = (l7.ebx >> 31) & 1u;
  f.avx512vpopcntdq = (l7.ecx >> 14) & 1u;
#endif
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = detect();
  return f;
}

std::string CpuFeatures::to_string() const {
  std::string s;
  auto add = [&s](bool on, const char* name) {
    if (on) {
      if (!s.empty()) s += ' ';
      s += name;
    }
  };
  add(sse42, "sse4.2");
  add(avx2, "avx2");
  add(avx512f, "avx512f");
  add(avx512bw, "avx512bw");
  add(avx512vl, "avx512vl");
  add(avx512vpopcntdq, "avx512vpopcntdq");
  if (s.empty()) s = "scalar-only";
  return s;
}

std::string cpu_brand_string() {
#ifdef TRIGEN_HAVE_CPUID
  const Regs ext = cpuid(0x80000000u, 0);
  if (ext.eax >= 0x80000004u) {
    std::array<char, 49> brand{};
    for (std::uint32_t i = 0; i < 3; ++i) {
      const Regs r = cpuid(0x80000002u + i, 0);
      std::memcpy(brand.data() + 16 * i + 0, &r.eax, 4);
      std::memcpy(brand.data() + 16 * i + 4, &r.ebx, 4);
      std::memcpy(brand.data() + 16 * i + 8, &r.ecx, 4);
      std::memcpy(brand.data() + 16 * i + 12, &r.edx, 4);
    }
    return std::string(brand.data());
  }
#endif
  return "unknown-cpu";
}

}  // namespace trigen
