#include "trigen/common/cpuid.hpp"

#include <array>
#include <cstdint>
#include <cstring>

#if defined(_MSC_VER) && (defined(_M_X64) || defined(_M_IX86))
#include <intrin.h>
#define TRIGEN_HAVE_CPUID 1
#define TRIGEN_CPUID_MSVC 1
#elif defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define TRIGEN_HAVE_CPUID 1
#endif

namespace trigen {
namespace {

struct Regs {
  std::uint32_t eax = 0, ebx = 0, ecx = 0, edx = 0;
};

Regs cpuid(std::uint32_t leaf, std::uint32_t subleaf) {
  Regs r;
#if defined(TRIGEN_CPUID_MSVC)
  int regs[4];
  __cpuidex(regs, static_cast<int>(leaf), static_cast<int>(subleaf));
  r.eax = static_cast<std::uint32_t>(regs[0]);
  r.ebx = static_cast<std::uint32_t>(regs[1]);
  r.ecx = static_cast<std::uint32_t>(regs[2]);
  r.edx = static_cast<std::uint32_t>(regs[3]);
#elif defined(TRIGEN_HAVE_CPUID)
  __cpuid_count(leaf, subleaf, r.eax, r.ebx, r.ecx, r.edx);
#else
  (void)leaf;
  (void)subleaf;
#endif
  return r;
}

#ifdef TRIGEN_HAVE_CPUID
/// XGETBV(XCR0): which register states the OS saves/restores on context
/// switch.  Only callable when CPUID.1:ECX.OSXSAVE[27] is set.
std::uint64_t xgetbv_xcr0() {
#if defined(TRIGEN_CPUID_MSVC)
  return _xgetbv(0);
#else
  std::uint32_t eax = 0, edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0u));
  return (static_cast<std::uint64_t>(edx) << 32) | eax;
#endif
}
#endif  // TRIGEN_HAVE_CPUID

CpuFeatures detect() {
  CpuFeatures f;
#ifdef TRIGEN_HAVE_CPUID
  const std::uint32_t max_leaf = cpuid(0, 0).eax;
  if (max_leaf < 1) return f;

  const Regs l1 = cpuid(1, 0);
  f.sse42 = (l1.ecx >> 20) & 1u;  // SSE4.2 implies scalar POPCNT

  // CPUID feature bits alone are not enough for AVX: the OS must have
  // enabled XSAVE (OSXSAVE) and be saving the YMM/ZMM state, otherwise
  // executing a VEX/EVEX instruction raises #UD (SIGILL) — e.g. on a
  // hypervisor with AVX state disabled.  XCR0 bits: 1 = SSE (XMM),
  // 2 = AVX (YMM high halves), 5 = opmask, 6 = ZMM0-15 high halves,
  // 7 = ZMM16-31.
  const bool osxsave = (l1.ecx >> 27) & 1u;
  bool os_ymm = false;
  bool os_zmm = false;
  if (osxsave) {
    const std::uint64_t xcr0 = xgetbv_xcr0();
    os_ymm = (xcr0 & 0x6u) == 0x6u;      // XMM + YMM
    os_zmm = (xcr0 & 0xe6u) == 0xe6u;    // XMM + YMM + opmask + ZMM
  }

  // Leaf 7 must be gated on max_leaf: pre-2010 CPUs echo the highest
  // supported leaf for out-of-range queries, yielding garbage feature bits.
  if (max_leaf >= 7 && os_ymm) {
    const Regs l7 = cpuid(7, 0);
    f.avx2 = (l7.ebx >> 5) & 1u;
    if (os_zmm) {
      f.avx512f = (l7.ebx >> 16) & 1u;
      f.avx512bw = (l7.ebx >> 30) & 1u;
      f.avx512vl = (l7.ebx >> 31) & 1u;
      f.avx512vpopcntdq = (l7.ecx >> 14) & 1u;
    }
  }
#endif
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = detect();
  return f;
}

std::string CpuFeatures::to_string() const {
  std::string s;
  auto add = [&s](bool on, const char* name) {
    if (on) {
      if (!s.empty()) s += ' ';
      s += name;
    }
  };
  add(sse42, "sse4.2");
  add(avx2, "avx2");
  add(avx512f, "avx512f");
  add(avx512bw, "avx512bw");
  add(avx512vl, "avx512vl");
  add(avx512vpopcntdq, "avx512vpopcntdq");
  if (s.empty()) s = "scalar-only";
  return s;
}

std::string cpu_brand_string() {
#ifdef TRIGEN_HAVE_CPUID
  const Regs ext = cpuid(0x80000000u, 0);
  if (ext.eax >= 0x80000004u) {
    std::array<char, 49> brand{};
    for (std::uint32_t i = 0; i < 3; ++i) {
      const Regs r = cpuid(0x80000002u + i, 0);
      std::memcpy(brand.data() + 16 * i + 0, &r.eax, 4);
      std::memcpy(brand.data() + 16 * i + 4, &r.ebx, 4);
      std::memcpy(brand.data() + 16 * i + 8, &r.ecx, 4);
      std::memcpy(brand.data() + 16 * i + 12, &r.edx, 4);
    }
    return std::string(brand.data());
  }
#endif
  return "unknown-cpu";
}

}  // namespace trigen
