#include "trigen/common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace trigen {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TextTable requires at least one column");
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::to_ascii() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto hline = [&] {
    os << '+';
    for (const auto w : width) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  hline();
  emit(headers_);
  hline();
  for (const auto& row : rows_) emit(row);
  hline();
  return os.str();
}

std::string TextTable::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << quote(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.to_ascii();
}

std::string si_format(double v, int precision) {
  static constexpr const char* suffix[] = {"", "k", "M", "G", "T", "P"};
  int idx = 0;
  double mag = v < 0 ? -v : v;
  while (mag >= 1000.0 && idx < 5) {
    mag /= 1000.0;
    v /= 1000.0;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f %s", precision, v, suffix[idx]);
  return buf;
}

}  // namespace trigen
