#include "trigen/common/numa.hpp"

#include <fstream>

#if defined(__linux__)
#include <sched.h>
#endif

namespace trigen {

namespace {

std::string read_line(const std::string& path) {
  std::ifstream is(path);
  std::string line;
  if (is) std::getline(is, line);
  return line;
}

}  // namespace

std::vector<int> parse_cpu_list(const std::string& list) {
  std::vector<int> cpus;
  std::size_t i = 0;
  const auto parse_int = [&](int& out) -> bool {
    if (i >= list.size() || list[i] < '0' || list[i] > '9') return false;
    long v = 0;
    while (i < list.size() && list[i] >= '0' && list[i] <= '9') {
      v = v * 10 + (list[i] - '0');
      if (v > 1 << 20) return false;  // implausible CPU id
      ++i;
    }
    out = static_cast<int>(v);
    return true;
  };
  while (i < list.size()) {
    int first = 0;
    if (!parse_int(first)) break;
    int last = first;
    if (i < list.size() && list[i] == '-') {
      ++i;
      if (!parse_int(last) || last < first) break;
    }
    for (int c = first; c <= last; ++c) cpus.push_back(c);
    if (i < list.size() && list[i] == ',') ++i;
  }
  return cpus;
}

NumaTopology read_numa_topology(const std::string& sysfs_node_root) {
  NumaTopology topo;
  // The `online` file ("0" or "0-1,4") names the live nodes; probing
  // node<N> directories directly would miss sparse numbering.
  const std::vector<int> nodes =
      parse_cpu_list(read_line(sysfs_node_root + "/online"));
  for (const int n : nodes) {
    topo.node_cpus.push_back(parse_cpu_list(
        read_line(sysfs_node_root + "/node" + std::to_string(n) + "/cpulist")));
  }
  if (topo.node_cpus.empty()) topo.node_cpus.emplace_back();
  return topo;
}

const NumaTopology& numa_topology() {
  static const NumaTopology topo =
      read_numa_topology("/sys/devices/system/node");
  return topo;
}

int bind_thread_round_robin(const NumaTopology& topo, unsigned tid) {
#if defined(__linux__)
  if (topo.nodes() < 2) return -1;
  const std::size_t node = tid % topo.node_cpus.size();
  const std::vector<int>& cpus = topo.node_cpus[node];
  if (cpus.empty()) return -1;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (const int c : cpus) {
    if (c >= 0 && c < CPU_SETSIZE) CPU_SET(c, &set);
  }
  if (CPU_COUNT(&set) == 0) return -1;
  if (sched_setaffinity(0, sizeof(set), &set) != 0) return -1;
  return static_cast<int>(node);
#else
  (void)topo;
  (void)tid;
  return -1;
#endif
}

}  // namespace trigen
