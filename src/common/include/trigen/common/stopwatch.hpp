#pragma once
/// \file stopwatch.hpp
/// \brief Wall-clock timing utilities shared by benches and the CARM probes.

#include <chrono>
#include <cstdint>

namespace trigen {

/// Monotonic stopwatch.  Construction starts it.
class Stopwatch {
 public:
  using clock = std::chrono::steady_clock;

  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  clock::time_point start_;
};

/// Calls f() repeatedly until at least `min_seconds` have elapsed and
/// returns the best (minimum) per-call time in seconds.  Used by the CARM
/// micro-benchmarks where the minimum is the noise-free estimate.
template <typename F>
double time_best_of(F&& f, int min_reps = 3, double min_seconds = 0.01) {
  double best = 1e300;
  double total = 0.0;
  int reps = 0;
  while (reps < min_reps || total < min_seconds) {
    Stopwatch sw;
    f();
    const double t = sw.seconds();
    if (t < best) best = t;
    total += t;
    ++reps;
  }
  return best;
}

}  // namespace trigen
