#pragma once
/// \file table.hpp
/// \brief ASCII / CSV table rendering for the benchmark harnesses.
///
/// Every bench binary prints the same rows/series the paper reports; this
/// helper keeps that output aligned and machine-parsable (CSV mode).

#include <iosfwd>
#include <string>
#include <vector>

namespace trigen {

/// Column-aligned text table with an optional CSV rendering.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Append a full row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with `fmt_double` precision.
  static std::string fmt(double v, int precision = 3);

  std::size_t rows() const { return rows_.size(); }

  /// Render with box-drawing separators.
  std::string to_ascii() const;
  /// Render as RFC-4180-ish CSV (quotes only when needed).
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const TextTable& t);

/// Format `v` with an SI suffix, e.g. 2.5e9 -> "2.50 G".
std::string si_format(double v, int precision = 2);

}  // namespace trigen
