#pragma once
/// \file numa.hpp
/// \brief NUMA node topology from sysfs, and worker-thread node spreading.
///
/// Biobank-scale bitplanes span multiple NUMA nodes; a scan thread running
/// on node 1 against scratch pages first-touched on node 0 pays remote
/// latency on every table update.  Two pieces avoid that:
///
///   * the detectors construct per-thread scratch *inside* the worker
///     thread, so the zero-fill (the first touch) places the pages on the
///     worker's node (detector.cpp);
///   * `bind_thread_round_robin` spreads workers across nodes so the
///     first-touch placement is actually diverse — a no-op on the
///     single-node hosts that dominate CI.
///
/// The sysfs root is injectable so the parser is unit-testable against a
/// fake `sys/devices/system/node` tree; the node count also feeds the
/// autotuner's host fingerprint (a profile measured on a 1-node VM must
/// not configure the 2-socket production box).

#include <string>
#include <vector>

namespace trigen {

/// Online NUMA node topology: one CPU list per node.
struct NumaTopology {
  /// `node_cpus[i]` holds the CPU ids of the i-th online node, in the
  /// order sysfs lists them.  Always at least one node: hosts without
  /// NUMA sysfs entries report a single node with an empty CPU list.
  std::vector<std::vector<int>> node_cpus;

  unsigned nodes() const {
    return static_cast<unsigned>(node_cpus.empty() ? 1 : node_cpus.size());
  }
};

/// Reads the host topology from /sys/devices/system/node (cached after the
/// first call; topology does not change at runtime).
const NumaTopology& numa_topology();

/// Injectable form for unit tests: `sysfs_node_root` replaces
/// "/sys/devices/system/node" (the directory holding node<N>/cpulist).
/// Not cached.
NumaTopology read_numa_topology(const std::string& sysfs_node_root);

/// Parses a sysfs CPU list ("0-3,8,10-11") into explicit CPU ids.
/// Malformed input yields the CPUs parsed up to the error.
std::vector<int> parse_cpu_list(const std::string& list);

/// Pins the calling thread to the CPUs of node `tid % topo.nodes()` when
/// the host has more than one node with known CPUs; otherwise a no-op.
/// Returns the node index the thread was bound to, or -1 when unbound.
int bind_thread_round_robin(const NumaTopology& topo, unsigned tid);

}  // namespace trigen
