#pragma once
/// \file cpuid.hpp
/// \brief Runtime x86 ISA feature detection used by the kernel dispatcher.
///
/// The paper's CPU V4 kernel has three vectorization strategies whose
/// availability depends on the micro-architecture (AVX with scalar POPCNT,
/// AVX-512 with scalar POPCNT + extracts, AVX-512 with VPOPCNTDQ).  The
/// dispatcher in trigen::core consults this module to pick the widest
/// strategy the host supports.

#include <string>

namespace trigen {

/// ISA capability snapshot of the executing CPU, taken once at startup.
struct CpuFeatures {
  bool sse42 = false;        ///< scalar 64-bit POPCNT available
  bool avx2 = false;         ///< 256-bit integer vectors
  bool avx512f = false;      ///< 512-bit foundation
  bool avx512bw = false;     ///< 512-bit byte/word ops
  bool avx512vl = false;     ///< 128/256-bit encodings of AVX-512 ops
  bool avx512vpopcntdq = false;  ///< vector POPCNT (Ice Lake SP and later)

  /// Human-readable one-line summary, e.g. "sse4.2 avx2 avx512f ...".
  std::string to_string() const;
};

/// Detect the host CPU's features via the CPUID instruction.  The result is
/// computed once and cached; calls are cheap afterwards.
const CpuFeatures& cpu_features();

/// Vendor/brand string of the executing CPU ("GenuineIntel", model name).
std::string cpu_brand_string();

}  // namespace trigen
