#pragma once
/// \file rng.hpp
/// \brief Deterministic, fast pseudo-random generators for synthetic data.
///
/// All synthetic datasets and property tests use these generators so that
/// every experiment in EXPERIMENTS.md is reproducible from its seed.

#include <cstdint>

namespace trigen {

/// SplitMix64: used to seed the main generator and for cheap one-off draws.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: main generator.  Satisfies UniformRandomBitGenerator so it
/// can drive <random> distributions where needed.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) {
    if (bound == 0) return 0;
    // 128-bit multiply keeps the draw unbiased for any bound.
    unsigned __int128 m =
        static_cast<unsigned __int128>((*this)()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>((*this)()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli draw with probability p.
  bool bernoulli(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

}  // namespace trigen
