#pragma once
/// \file log.hpp
/// \brief Minimal leveled logging for the library and tools.

#include <sstream>
#include <string>

namespace trigen {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line to stderr with a level prefix (thread-safe).
void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_message(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace trigen
