#pragma once
/// \file args.hpp
/// \brief Tiny `--key value` / positional command-line parser for the tools.
///
/// Lives in a header (rather than inside the CLI binary) so its parsing
/// rules are unit-testable.  The one subtle rule: a `--key` consumes the
/// following token as its value whenever one is present and that token is
/// not itself a `--flag` — so values that start with a single `-` (negative
/// numbers like `--seed -5`, the conventional bare `-` for stdin/stdout)
/// parse as values, not as switches.  Flags that never take a value
/// (`--help`, `--progress`, ...) must be declared in `switches`, otherwise
/// a following positional argument would be swallowed as their value.

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace trigen {

/// Parsed command line: `--key value` pairs plus positional arguments.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  /// Parses argv[first..argc).  `switches` lists the flag names (without
  /// the leading `--`) that never consume a value; they and any `--key`
  /// with no usable value are stored as "1".
  static Args parse(int argc, const char* const* argv, int first,
                    const std::set<std::string>& switches = {}) {
    Args a;
    for (int i = first; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        a.positional.push_back(arg);
        continue;
      }
      const std::string key = arg.substr(2);
      const bool next_is_flag =
          i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) == 0;
      if (switches.count(key) != 0 || i + 1 >= argc || next_is_flag) {
        a.flags[key] = "1";
      } else {
        a.flags[key] = argv[++i];
      }
    }
    return a;
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  long get_int(const std::string& key, long fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atol(it->second.c_str());
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
  /// Strict parse for count-like flags (ranks, shard indices, intervals):
  /// the full unsigned range is accepted, but a negative, non-numeric or
  /// overflowing value throws std::invalid_argument naming the flag — a
  /// `--stop-after -1` must fail loudly, not silently become ~2^64 via a
  /// signed-to-unsigned cast.
  std::uint64_t get_uint(const std::string& key, std::uint64_t fallback) const {
    const auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    const std::string& v = it->second;
    if (v.empty() || v[0] == '-') {
      throw std::invalid_argument("--" + key +
                                  " expects a non-negative integer, got '" +
                                  v + "'");
    }
    const char* begin = v.c_str();
    char* end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(begin, &end, 10);
    if (end == begin || *end != '\0' || errno == ERANGE) {
      throw std::invalid_argument("--" + key +
                                  " expects a non-negative integer in [0, "
                                  "2^64), got '" + v + "'");
    }
    return parsed;
  }
  bool has(const std::string& key) const { return flags.count(key) != 0; }
};

}  // namespace trigen
