#pragma once
/// \file aligned.hpp
/// \brief Cache-line / vector-register aligned storage.
///
/// Every bit-plane the kernels stream through must be aligned to the widest
/// vector register in play (64 B for AVX-512) so that aligned vector loads
/// are always legal and no plane straddles a cache line boundary

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <memory>
#include <new>
#include <vector>

namespace trigen {

/// Alignment used for all kernel-visible buffers: one AVX-512 register,
/// which is also exactly one cache line on every x86 micro-architecture
/// the paper evaluates.
inline constexpr std::size_t kVectorAlign = 64;

/// Minimal C++17 aligned allocator. Used through `aligned_vector`.
template <typename T, std::size_t Align = kVectorAlign>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Align >= alignof(T), "alignment must not weaken T");
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of two");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    // Round the byte size up to a multiple of the alignment as required by
    // std::aligned_alloc.
    const std::size_t bytes = (n * sizeof(T) + Align - 1) / Align * Align;
#if defined(_MSC_VER)
    // MSVC's CRT never gained C11 aligned_alloc (its free() cannot handle
    // such pointers); use the _aligned_malloc/_aligned_free pair instead.
    void* p = _aligned_malloc(bytes, Align);
#else
    void* p = std::aligned_alloc(Align, bytes);
#endif
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept {
#if defined(_MSC_VER)
    _aligned_free(p);
#else
    std::free(p);
#endif
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// Contiguous vector whose data() is 64-byte aligned.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace trigen
