#pragma once
/// \file block_partition.hpp
/// \brief Combinatorics of the block-combination spaces (any order) and the
/// mapping from a combination rank range onto them.
///
/// The cache-blocked engines (paper Algorithm 1, V3/V4/V5) walk multiset
/// block tuples — b0 <= b1 <= ... <= b_{K-1} — instead of individual SNP
/// combinations.  To let the blocked versions participate in rank-range
/// partitioning (heterogeneous CPU+GPU splits, sharded scans, permutation
/// shards), this header provides the block-tuple rank math for every order
/// plus `partition_block_tuples<K>`, which converts a combination rank
/// range into a contiguous run of block-tuple ranks with clip bounds.  The
/// `BlockPair`/`BlockTriple` types remain as the named k=2/k=3 views,
/// implemented on the generic machinery.
///
/// Key monotonicity fact: ordering block tuples by colex block rank also
/// orders both the smallest and the largest combination rank each nonempty
/// block tuple contains.  (Sketch, per level i > 0: within fixed higher
/// levels, raising b_i pushes the extremal c_i past the previous block's
/// maximum, and C(c+1, i+1) - C(c, i+1) = C(c, i) exceeds any contribution
/// the levels below can make.)  Hence the block tuples intersecting a
/// contiguous rank range form a contiguous run of block ranks, blocks
/// fully inside the range form its middle, and per-combination filtering
/// is only needed at the run's two ends.

#include <algorithm>
#include <cstdint>

#include "trigen/combinatorics/combinations.hpp"
#include "trigen/combinatorics/scheduler.hpp"

namespace trigen::combinatorics {

/// Ordered multiset block tuple b0 <= b1 <= ... <= b_{K-1} (blocks may
/// repeat: the diagonal tuples contain the within-block combinations).
template <unsigned K>
using BlockTuple = std::array<std::uint32_t, K>;

/// Number of block tuples for `nb` blocks: C(nb + K - 1, K) (multiset
/// count).
template <unsigned K>
std::uint64_t num_block_tuples(std::uint64_t nb) {
  return n_choose_k(nb + K - 1, K);
}

/// Colex rank of a multiset tuple: sum_i C(b_i + i, i + 1)
/// (overflow-checked like rank_combination).
template <unsigned K>
std::uint64_t rank_block_tuple(const BlockTuple<K>& t) {
  static_assert(K >= 1);
  detail::u128 acc = 0;
  for (unsigned i = 0; i < K; ++i) {
    acc += detail::binom_saturating(std::uint64_t{t[i]} + i, i + 1);
  }
  if (acc > static_cast<detail::u128>(~std::uint64_t{0})) {
    detail::throw_rank_overflow("rank_block_tuple");
  }
  return static_cast<std::uint64_t>(acc);
}

/// Inverse of rank_block_tuple.
template <unsigned K>
BlockTuple<K> unrank_block_tuple(std::uint64_t rank) {
  static_assert(K >= 1);
  BlockTuple<K> t{};
  std::uint64_t rem = rank;
  for (unsigned i = K; i-- > 0;) {
    // b_i = max { b : C(b + i, i+1) <= rem }.
    const std::uint64_t n = detail::max_n_with_binom_le(rem, i + 1);
    const std::uint64_t b = n > i ? n - i : 0;
    t[i] = static_cast<std::uint32_t>(b);
    rem -= static_cast<std::uint64_t>(detail::binom_saturating(b + i, i + 1));
  }
  return t;
}

/// Geometry of a block decomposition: `m` SNPs cut into blocks of `bs`.
struct BlockGrid {
  std::uint64_t m = 0;   ///< number of SNPs
  std::uint64_t bs = 1;  ///< SNPs per block (B_S)
  std::uint64_t num_blocks() const { return bs == 0 ? 0 : (m + bs - 1) / bs; }
};

/// Combination rank span [lowest, highest + 1) covered by block tuple `bt`
/// on grid `g`.  The contained ranks are generally *not* contiguous within
/// the span (spans of adjacent block tuples overlap); the span only
/// brackets them.  Empty when the block tuple contains no valid
/// combination (degenerate diagonal blocks for small bs, tail blocks
/// clipped by m).
template <unsigned K>
RankRange block_tuple_span(const BlockGrid& g, const BlockTuple<K>& bt) {
  static_assert(K >= 1);
  const std::uint64_t bs = g.bs;
  std::uint64_t end[K];
  Combination<K> lo{};
  // Colex-minimum combination: per level the smallest index inside the
  // block extent that stays strictly above the level below.
  for (unsigned i = 0; i < K; ++i) {
    const std::uint64_t base = std::uint64_t{bt[i]} * bs;
    end[i] = std::min(base + bs, g.m);
    const std::uint64_t v = i == 0 ? base : std::max(base, std::uint64_t{lo[i - 1]} + 1);
    if (v >= end[i]) return {};
    lo[i] = static_cast<std::uint32_t>(v);
  }
  // Colex-maximum combination: per level the largest index that stays
  // strictly below the level above.  The min combination being valid
  // guarantees these clamps stay ordered.
  Combination<K> hi{};
  for (unsigned i = K; i-- > 0;) {
    const std::uint64_t v =
        i + 1 == K ? end[i] - 1
                   : std::min(end[i] - 1, std::uint64_t{hi[i + 1]} - 1);
    hi[i] = static_cast<std::uint32_t>(v);
  }
  return {rank_combination<K>(lo), rank_combination<K>(hi) + 1};
}

/// A combination rank range mapped onto a block-tuple space (any order).
struct BlockPartition {
  /// Contiguous run of block-tuple ranks covering every block tuple whose
  /// span intersects `clip`.  The run is minimal up to top-layer
  /// granularity; blocks inside it whose span misses `clip` are cheap
  /// span-test skips.
  RankRange block_ranks;
  /// The combination rank range being covered (clip bounds for the boundary
  /// blocks; interior blocks need no per-combination filtering).
  RankRange clip;
};

/// Maps combination rank range `range` (half-open, within [0, C(g.m, K)))
/// onto the block-tuple space of `g`.  An empty `range` yields an empty
/// run.
template <unsigned K>
BlockPartition partition_block_tuples(const BlockGrid& g, RankRange range) {
  static_assert(K >= 1);
  BlockPartition part;
  part.clip = range;
  if (range.empty() || g.m < K || g.bs == 0) return part;

  // Block tuples whose top layer lies below block(top_first) contain only
  // combinations with top index < top_first, i.e. ranks < range.first:
  // skip the whole prefix.  Tuples above block(top_last) contain only
  // ranks > range.last - 1: skip the whole suffix.  Within the two
  // boundary top layers individual blocks may still miss the range;
  // callers skip those with a span test.
  const std::uint64_t top_first = unrank_combination<K>(range.first)[K - 1];
  const std::uint64_t top_last = unrank_combination<K>(range.last - 1)[K - 1];
  const std::uint64_t lo = num_block_tuples<K>(top_first / g.bs);
  const std::uint64_t hi = num_block_tuples<K>(top_last / g.bs + 1);
  part.block_ranks = {lo, std::min(hi, num_block_tuples<K>(g.num_blocks()))};
  return part;
}

// ---------------------------------------------------------------------------
// Named k=3 / k=2 views (the orders the engine grew up with)
// ---------------------------------------------------------------------------

/// Ordered block triple b0 <= b1 <= b2.
struct BlockTriple {
  std::uint32_t b0, b1, b2;
  friend bool operator==(const BlockTriple&, const BlockTriple&) = default;
};

/// Number of block triples for `nb` blocks: C(nb + 2, 3).
std::uint64_t num_block_triples(std::uint64_t nb);

/// Colex rank of a multiset triple: C(b2+2,3) + C(b1+1,2) + C(b0,1).
std::uint64_t rank_block_triple(const BlockTriple& t);

/// Inverse of rank_block_triple.
BlockTriple unrank_block_triple(std::uint64_t rank);

/// Triplet rank span covered by block triple `bt` on grid `g`.
RankRange block_triplet_span(const BlockGrid& g, const BlockTriple& bt);

/// Maps triplet rank range `range` onto the block-triple space of `g`.
BlockPartition partition_block_triples(const BlockGrid& g, RankRange range);

/// Ordered block pair b0 <= b1.
struct BlockPair {
  std::uint32_t b0, b1;
  friend bool operator==(const BlockPair&, const BlockPair&) = default;
};

/// Number of block pairs for `nb` blocks: C(nb + 1, 2).
std::uint64_t num_block_pairs(std::uint64_t nb);

/// Colex rank of a multiset pair: C(b1+1,2) + C(b0,1).
std::uint64_t rank_block_pair(const BlockPair& p);

/// Inverse of rank_block_pair.
BlockPair unrank_block_pair(std::uint64_t rank);

/// Pair rank span covered by block pair `bp` on grid `g`.
RankRange block_pair_span(const BlockGrid& g, const BlockPair& bp);

/// Maps pair rank range `range` onto the block-pair space of `g`.
BlockPartition partition_block_pairs(const BlockGrid& g, RankRange range);

}  // namespace trigen::combinatorics
