#pragma once
/// \file block_partition.hpp
/// \brief Combinatorics of the block-combination spaces (pairs and triples)
/// and the mapping from a combination rank range onto them.
///
/// The cache-blocked engines (paper Algorithm 1, V3/V4/V5) walk multiset block
/// tuples — b0 <= b1 for the 2-way scan, b0 <= b1 <= b2 for the 3-way scan
/// — instead of individual SNP combinations.  To let the blocked versions
/// participate in rank-range partitioning (heterogeneous CPU+GPU splits,
/// sharded scans, permutation shards), this header provides the block-tuple
/// rank math for both orders plus `partition_block_pairs` /
/// `partition_block_triples`, which convert a combination rank range into a
/// contiguous run of block-tuple ranks with clip bounds.
///
/// Key monotonicity fact: ordering block tuples by colex block rank also
/// orders both the smallest and the largest combination rank each nonempty
/// block tuple contains.  (Sketch for triples: within fixed b2, raising b1
/// pushes the extremal y past the previous block's maximum, and
/// C(y+1,2) - C(y,2) = y exceeds any in-block x contribution; raising b2
/// similarly dominates via C(z+1,3) - C(z,3) = C(z,2).  For pairs the same
/// argument with one fewer level: raising b1 dominates via
/// C(y+1,2) - C(y,2) = y.)  Hence the block tuples intersecting a
/// contiguous rank range form a contiguous run of block ranks, blocks fully
/// inside the range form its middle, and per-combination filtering is only
/// needed at the run's two ends.

#include <cstdint>

#include "trigen/combinatorics/combinations.hpp"
#include "trigen/combinatorics/scheduler.hpp"

namespace trigen::combinatorics {

/// Ordered block triple b0 <= b1 <= b2 (blocks may repeat: the diagonal
/// block triples contain the within-block SNP triplets).
struct BlockTriple {
  std::uint32_t b0, b1, b2;
  friend bool operator==(const BlockTriple&, const BlockTriple&) = default;
};

/// Number of block triples for `nb` blocks: C(nb + 2, 3) (multiset count).
std::uint64_t num_block_triples(std::uint64_t nb);

/// Colex rank of a multiset triple: C(b2+2,3) + C(b1+1,2) + C(b0,1).
std::uint64_t rank_block_triple(const BlockTriple& t);

/// Inverse of rank_block_triple.
BlockTriple unrank_block_triple(std::uint64_t rank);

/// Geometry of a block decomposition: `m` SNPs cut into blocks of `bs`.
struct BlockGrid {
  std::uint64_t m = 0;   ///< number of SNPs
  std::uint64_t bs = 1;  ///< SNPs per block (B_S)
  std::uint64_t num_blocks() const { return bs == 0 ? 0 : (m + bs - 1) / bs; }
};

/// Triplet rank span [lowest, highest + 1) covered by block triple `bt` on
/// grid `g`.  The contained ranks are generally *not* contiguous within the
/// span (spans of adjacent block triples overlap); the span only brackets
/// them.  Empty when the block triple contains no valid triplet (degenerate
/// diagonal blocks for small bs, tail blocks clipped by m).
RankRange block_triplet_span(const BlockGrid& g, const BlockTriple& bt);

/// A combination rank range mapped onto a block-tuple space (either order).
struct BlockPartition {
  /// Contiguous run of block-tuple ranks covering every block tuple whose
  /// span intersects `clip`.  The run is minimal up to top-layer
  /// granularity; blocks inside it whose span misses `clip` are cheap
  /// span-test skips.
  RankRange block_ranks;
  /// The combination rank range being covered (clip bounds for the boundary
  /// blocks; interior blocks need no per-combination filtering).
  RankRange clip;
};

/// Maps triplet rank range `range` (half-open, within [0, C(g.m, 3))) onto
/// the block-triple space of `g`.  An empty `range` yields an empty run.
BlockPartition partition_block_triples(const BlockGrid& g, RankRange range);

// ---------------------------------------------------------------------------
// Second order: block pairs (the k=2 instantiation of the same scheme)
// ---------------------------------------------------------------------------

/// Ordered block pair b0 <= b1 (blocks may repeat: the diagonal block pairs
/// contain the within-block SNP pairs).
struct BlockPair {
  std::uint32_t b0, b1;
  friend bool operator==(const BlockPair&, const BlockPair&) = default;
};

/// Number of block pairs for `nb` blocks: C(nb + 1, 2) (multiset count).
std::uint64_t num_block_pairs(std::uint64_t nb);

/// Colex rank of a multiset pair: C(b1+1,2) + C(b0,1).
std::uint64_t rank_block_pair(const BlockPair& p);

/// Inverse of rank_block_pair.
BlockPair unrank_block_pair(std::uint64_t rank);

/// Pair rank span [lowest, highest + 1) covered by block pair `bp` on grid
/// `g`; same bracketing semantics as block_triplet_span.
RankRange block_pair_span(const BlockGrid& g, const BlockPair& bp);

/// Maps pair rank range `range` (half-open, within [0, C(g.m, 2))) onto the
/// block-pair space of `g`.  An empty `range` yields an empty run.
BlockPartition partition_block_pairs(const BlockGrid& g, RankRange range);

}  // namespace trigen::combinatorics
