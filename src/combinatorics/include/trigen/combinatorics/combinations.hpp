#pragma once
/// \file combinations.hpp
/// \brief k-combination counting and 2-/3-combination ranking/unranking.
///
/// The search space of k-way epistasis over M SNPs is the set of strictly
/// increasing k-tuples — C(M,k) of them.  The detectors and the GPU
/// simulator address this space through a *colexicographic rank*: an
/// integer in [0, C(M,k)) that every engine can partition into contiguous
/// work chunks without materializing the combinations.  Both supported
/// interaction orders (pairs for the BOOST-class 2-way scans, triplets for
/// the paper's headline 3-way scans) get the same rank/unrank/iterate
/// toolkit so higher layers treat the order as a parameter.

#include <array>
#include <cstdint>

namespace trigen::combinatorics {

/// C(n, k) in unsigned 64-bit arithmetic.  Throws std::overflow_error when
/// the true value exceeds 2^64-1; returns 0 when k > n.
std::uint64_t n_choose_k(std::uint64_t n, unsigned k);

/// Number of SNP triplets for M SNPs: C(M, 3).
inline std::uint64_t num_triplets(std::uint64_t m) { return n_choose_k(m, 3); }

/// "Elements" metric the paper reports: nCr(M,k) * N (processed
/// combinations times samples, §V).
inline std::uint64_t num_elements(std::uint64_t m, unsigned k,
                                  std::uint64_t n) {
  return n_choose_k(m, k) * n;
}

/// Strictly increasing SNP triplet.
struct Triplet {
  std::uint32_t x, y, z;
  friend bool operator==(const Triplet&, const Triplet&) = default;
};

/// Colex rank of (x < y < z): C(z,3) + C(y,2) + C(x,1).
std::uint64_t rank_triplet(const Triplet& t);

/// Inverse of rank_triplet; valid for any rank < C(2^32, 3) representable
/// in 64 bits.  O(1) via cube-root seeded search.
Triplet unrank_triplet(std::uint64_t rank);

/// Strictly increasing SNP pair (the second-order search space).
struct Pair {
  std::uint32_t x, y;
  friend bool operator==(const Pair&, const Pair&) = default;
};

/// Number of SNP pairs for M SNPs: C(M, 2).
inline std::uint64_t num_pairs(std::uint64_t m) { return n_choose_k(m, 2); }

/// Colex rank of (x < y): C(y,2) + C(x,1).
std::uint64_t rank_pair(const Pair& p);

/// Inverse of rank_pair.  O(1) via square-root seeded search.
Pair unrank_pair(std::uint64_t rank);

/// Calls `fn(Pair)` for every pair with rank in [first, last), in rank
/// order, without per-pair unranking cost (one unrank + rolling
/// increments).
template <typename Fn>
void for_each_pair(std::uint64_t first, std::uint64_t last, Fn&& fn) {
  if (first >= last) return;
  Pair p = unrank_pair(first);
  for (std::uint64_t r = first; r < last; ++r) {
    fn(p);
    // Colex successor: increment x; on carry advance y.
    if (p.x + 1 < p.y) {
      ++p.x;
    } else {
      ++p.y;
      p.x = 0;
    }
  }
}

/// Calls `fn(Triplet)` for every triplet with rank in [first, last), in
/// rank order, without per-triplet unranking cost (one unrank + rolling
/// increments).
template <typename Fn>
void for_each_triplet(std::uint64_t first, std::uint64_t last, Fn&& fn) {
  if (first >= last) return;
  Triplet t = unrank_triplet(first);
  for (std::uint64_t r = first; r < last; ++r) {
    fn(t);
    // Colex successor: increment x; on carry advance y, then z.
    if (t.x + 1 < t.y) {
      ++t.x;
    } else if (t.y + 1 < t.z) {
      ++t.y;
      t.x = 0;
    } else {
      ++t.z;
      t.y = 1;
      t.x = 0;
    }
  }
}

}  // namespace trigen::combinatorics
