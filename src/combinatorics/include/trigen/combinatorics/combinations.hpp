#pragma once
/// \file combinations.hpp
/// \brief k-combination counting and ranking/unranking for arbitrary order.
///
/// The search space of k-way epistasis over M SNPs is the set of strictly
/// increasing k-tuples — C(M,k) of them.  The detectors and the GPU
/// simulator address this space through a *colexicographic rank*: an
/// integer in [0, C(M,k)) that every engine can partition into contiguous
/// work chunks without materializing the combinations.  Every interaction
/// order k in [2, kMaxOrder] gets the same rank/unrank/iterate toolkit
/// through `Combination<K>`; the historical `Pair`/`Triplet` types remain
/// as the named k=2/k=3 views the second- and third-order layers grew up
/// with, implemented on the generic machinery.
///
/// All rank accumulation is overflow-checked: C(n,k) grows past 2^64 for
/// modest n once k >= 4 (C(2.6e5, 4) already exceeds it), so the generic
/// rank/unrank functions carry the sums in __int128 and throw a precise
/// std::overflow_error instead of silently wrapping.

#include <array>
#include <cstdint>

namespace trigen::combinatorics {

/// Highest interaction order the order-generic stack is instantiated for.
/// A compile-time ceiling: the per-order code (kernels, shard IO, CLI
/// dispatch) is stamped out for every k in [2, kMaxOrder].
inline constexpr unsigned kMaxOrder = 6;

/// C(n, k) in unsigned 64-bit arithmetic.  Throws std::overflow_error when
/// the true value exceeds 2^64-1; returns 0 when k > n.
std::uint64_t n_choose_k(std::uint64_t n, unsigned k);

/// Number of SNP triplets for M SNPs: C(M, 3).
inline std::uint64_t num_triplets(std::uint64_t m) { return n_choose_k(m, 3); }

/// "Elements" metric the paper reports: nCr(M,k) * N (processed
/// combinations times samples, §V).
inline std::uint64_t num_elements(std::uint64_t m, unsigned k,
                                  std::uint64_t n) {
  return n_choose_k(m, k) * n;
}

/// Strictly increasing k-tuple of SNP indices, c[0] < c[1] < ... < c[K-1].
template <unsigned K>
using Combination = std::array<std::uint32_t, K>;

namespace detail {

using u128 = unsigned __int128;

/// Saturation ceiling for binom_saturating: far above any representable
/// rank (2^64) yet low enough that one more multiply by a 32-bit factor
/// cannot overflow the 128-bit carrier.
inline constexpr u128 kBinomSat = u128{1} << 70;

/// C(n, k) exact up to kBinomSat, clamped to kBinomSat above it — the
/// comparison-safe form the rank searches need (every genuine rank is
/// < 2^64 < kBinomSat, so clamped values compare correctly).
u128 binom_saturating(std::uint64_t n, unsigned k) noexcept;

/// max { n : C(n, k) <= rank }; rank-space searches never overflow thanks
/// to the saturating binomial.  k >= 1.
std::uint64_t max_n_with_binom_le(std::uint64_t rank, unsigned k) noexcept;

[[noreturn]] void throw_rank_overflow(const char* fn);

}  // namespace detail

/// Colex rank of a strictly increasing combination:
/// sum_i C(c[i], i+1).  Overflow-checked: throws std::overflow_error
/// ("rank space exceeds 2^64") instead of wrapping.
template <unsigned K>
std::uint64_t rank_combination(const Combination<K>& c) {
  static_assert(K >= 1);
  detail::u128 acc = 0;
  for (unsigned i = 0; i < K; ++i) {
    acc += detail::binom_saturating(c[i], i + 1);
  }
  if (acc > static_cast<detail::u128>(~std::uint64_t{0})) {
    detail::throw_rank_overflow("rank_combination");
  }
  return static_cast<std::uint64_t>(acc);
}

/// Inverse of rank_combination: greedy per-level maximum search from the
/// top level down.  Valid for any rank whose combination fits in 32-bit
/// SNP indices.
template <unsigned K>
Combination<K> unrank_combination(std::uint64_t rank) {
  static_assert(K >= 1);
  Combination<K> c{};
  std::uint64_t rem = rank;
  for (unsigned i = K; i-- > 0;) {
    const std::uint64_t v = detail::max_n_with_binom_le(rem, i + 1);
    c[i] = static_cast<std::uint32_t>(v);
    rem -= static_cast<std::uint64_t>(detail::binom_saturating(v, i + 1));
  }
  return c;
}

/// Calls `fn(const Combination<K>&)` for every combination with rank in
/// [first, last), in rank order, without per-combination unranking cost
/// (one unrank + rolling colex successors).
template <unsigned K, typename Fn>
void for_each_combination(std::uint64_t first, std::uint64_t last, Fn&& fn) {
  if (first >= last) return;
  Combination<K> c = unrank_combination<K>(first);
  for (std::uint64_t r = first; r < last; ++r) {
    fn(static_cast<const Combination<K>&>(c));
    // Colex successor: bump the lowest level with headroom, reset the
    // levels below it to their minimal staircase 0,1,...,i-1.
    unsigned i = 0;
    while (i + 1 < K && c[i] + 1 == c[i + 1]) ++i;
    ++c[i];
    for (unsigned j = 0; j < i; ++j) c[j] = j;
  }
}

/// Strictly increasing SNP triplet.
struct Triplet {
  std::uint32_t x, y, z;
  friend bool operator==(const Triplet&, const Triplet&) = default;
};

/// Colex rank of (x < y < z): C(z,3) + C(y,2) + C(x,1) (overflow-checked).
std::uint64_t rank_triplet(const Triplet& t);

/// Inverse of rank_triplet; valid for any rank < C(2^32, 3) representable
/// in 64 bits.
Triplet unrank_triplet(std::uint64_t rank);

/// Strictly increasing SNP pair (the second-order search space).
struct Pair {
  std::uint32_t x, y;
  friend bool operator==(const Pair&, const Pair&) = default;
};

/// Number of SNP pairs for M SNPs: C(M, 2).
inline std::uint64_t num_pairs(std::uint64_t m) { return n_choose_k(m, 2); }

/// Colex rank of (x < y): C(y,2) + C(x,1).
std::uint64_t rank_pair(const Pair& p);

/// Inverse of rank_pair.
Pair unrank_pair(std::uint64_t rank);

/// Calls `fn(Pair)` for every pair with rank in [first, last), in rank
/// order, without per-pair unranking cost.
template <typename Fn>
void for_each_pair(std::uint64_t first, std::uint64_t last, Fn&& fn) {
  for_each_combination<2>(first, last, [&fn](const Combination<2>& c) {
    fn(Pair{c[0], c[1]});
  });
}

/// Calls `fn(Triplet)` for every triplet with rank in [first, last), in
/// rank order, without per-triplet unranking cost.
template <typename Fn>
void for_each_triplet(std::uint64_t first, std::uint64_t last, Fn&& fn) {
  for_each_combination<3>(first, last, [&fn](const Combination<3>& c) {
    fn(Triplet{c[0], c[1], c[2]});
  });
}

}  // namespace trigen::combinatorics
