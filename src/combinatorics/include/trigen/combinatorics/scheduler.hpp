#pragma once
/// \file scheduler.hpp
/// \brief Dynamic work distribution over the triplet rank space (§IV-A).
///
/// "To parallelize this algorithm, each core fetches a task from a thread
/// pool.  Each thread performs a set of combinations, which can be defined
/// dynamically in order to improve load balancing.  To avoid synchronization
/// barriers between tasks, the scores are kept locally to each thread and a
/// final reduction is performed" — this header implements exactly that
/// scheme: an atomic chunk dispenser plus a fork/join driver with
/// per-thread state and a user-supplied reduction.

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace trigen::combinatorics {

/// Half-open range of combination ranks.
struct RankRange {
  std::uint64_t first = 0;
  std::uint64_t last = 0;
  std::uint64_t size() const { return last - first; }
  bool empty() const { return first >= last; }
};

/// Lock-free dynamic chunk dispenser: threads call next() until it returns
/// an empty range.  Chunks are contiguous and cover [0, total) exactly once.
class ChunkScheduler {
 public:
  ChunkScheduler(std::uint64_t total, std::uint64_t chunk_size);

  /// Next chunk, or an empty range when the space is exhausted.
  RankRange next();

  std::uint64_t total() const { return total_; }
  std::uint64_t chunk_size() const { return chunk_; }

 private:
  std::uint64_t total_;
  std::uint64_t chunk_;
  std::atomic<std::uint64_t> cursor_{0};
};

/// Fork/join driver: runs `worker(thread_index, scheduler)` on `threads`
/// std::threads (0 means hardware_concurrency).  The worker is expected to
/// drain the scheduler.  Returns after all workers joined.
void run_workers(ChunkScheduler& sched, unsigned threads,
                 const std::function<void(unsigned, ChunkScheduler&)>& worker);

/// Default chunk size heuristic: aim for ~64 chunks per thread so dynamic
/// scheduling can absorb imbalance without contention on the cursor.
std::uint64_t default_chunk_size(std::uint64_t total, unsigned threads);

}  // namespace trigen::combinatorics
