#include "trigen/combinatorics/combinations.hpp"

#include <stdexcept>
#include <string>

namespace trigen::combinatorics {

std::uint64_t n_choose_k(std::uint64_t n, unsigned k) {
  if (k > n) return 0;
  if (k == 0 || k == n) return 1;
  if (k > n - k) k = static_cast<unsigned>(n - k);
  unsigned __int128 acc = 1;
  for (unsigned i = 1; i <= k; ++i) {
    acc = acc * (n - k + i) / i;  // exact: product of i consecutive ints is divisible by i!
    if (acc > static_cast<unsigned __int128>(~std::uint64_t{0})) {
      detail::throw_rank_overflow("n_choose_k");
    }
  }
  return static_cast<std::uint64_t>(acc);
}

namespace detail {

u128 binom_saturating(std::uint64_t n, unsigned k) noexcept {
  if (k > n) return 0;
  if (k == 0 || k == n) return 1;
  if (k > n - k) k = static_cast<unsigned>(n - k);
  u128 acc = 1;
  for (unsigned i = 1; i <= k; ++i) {
    acc = acc * (n - k + i) / i;
    if (acc >= kBinomSat) return kBinomSat;  // clamp before the next multiply
  }
  return acc;
}

std::uint64_t max_n_with_binom_le(std::uint64_t rank, unsigned k) noexcept {
  // Invariant: C(lo, k) <= rank < C(hi, k).  C(k-1, k) = 0 establishes it;
  // galloping doubles hi until the saturating binomial exceeds rank (it
  // always does: kBinomSat > 2^64 > rank).
  std::uint64_t lo = k - 1;
  std::uint64_t hi = k;
  while (binom_saturating(hi, k) <= rank) {
    lo = hi;
    hi *= 2;
  }
  while (hi - lo > 1) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (binom_saturating(mid, k) <= rank) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void throw_rank_overflow(const char* fn) {
  throw std::overflow_error(std::string(fn) + ": rank space exceeds 2^64");
}

}  // namespace detail

std::uint64_t rank_pair(const Pair& p) {
  return rank_combination<2>({p.x, p.y});
}

Pair unrank_pair(std::uint64_t rank) {
  const Combination<2> c = unrank_combination<2>(rank);
  return Pair{c[0], c[1]};
}

std::uint64_t rank_triplet(const Triplet& t) {
  return rank_combination<3>({t.x, t.y, t.z});
}

Triplet unrank_triplet(std::uint64_t rank) {
  const Combination<3> c = unrank_combination<3>(rank);
  return Triplet{c[0], c[1], c[2]};
}

}  // namespace trigen::combinatorics
