#include "trigen/combinatorics/combinations.hpp"

#include <cmath>
#include <stdexcept>

namespace trigen::combinatorics {

std::uint64_t n_choose_k(std::uint64_t n, unsigned k) {
  if (k > n) return 0;
  if (k == 0 || k == n) return 1;
  if (k > n - k) k = static_cast<unsigned>(n - k);
  unsigned __int128 acc = 1;
  for (unsigned i = 1; i <= k; ++i) {
    acc = acc * (n - k + i) / i;  // exact: product of i consecutive ints is divisible by i!
    if (acc > static_cast<unsigned __int128>(~std::uint64_t{0})) {
      throw std::overflow_error("n_choose_k: result exceeds 64 bits");
    }
  }
  return static_cast<std::uint64_t>(acc);
}

std::uint64_t rank_pair(const Pair& p) {
  return n_choose_k(p.y, 2) + p.x;
}

Pair unrank_pair(std::uint64_t rank) {
  // y = max { b : C(b,2) <= rank }: C(b,2) ~ b^2/2.
  std::uint64_t y = static_cast<std::uint64_t>(
      std::sqrt(2.0 * static_cast<double>(rank) + 0.25) + 0.5);
  if (y < 1) y = 1;
  while (n_choose_k(y + 1, 2) <= rank) ++y;
  while (n_choose_k(y, 2) > rank) --y;
  return Pair{static_cast<std::uint32_t>(rank - n_choose_k(y, 2)),
              static_cast<std::uint32_t>(y)};
}

std::uint64_t rank_triplet(const Triplet& t) {
  return n_choose_k(t.z, 3) + n_choose_k(t.y, 2) + t.x;
}

Triplet unrank_triplet(std::uint64_t rank) {
  // Find z = max { c : C(c,3) <= rank } starting from a cube-root estimate.
  // C(c,3) ~ c^3/6, so c0 = floor(cbrt(6*rank)) is within a couple of steps.
  std::uint64_t z = static_cast<std::uint64_t>(
      std::cbrt(6.0 * static_cast<double>(rank) + 1.0));
  if (z < 2) z = 2;
  while (n_choose_k(z + 1, 3) <= rank) ++z;
  while (n_choose_k(z, 3) > rank) --z;
  std::uint64_t rem = rank - n_choose_k(z, 3);

  // y = max { b : C(b,2) <= rem }: C(b,2) ~ b^2/2.
  std::uint64_t y = static_cast<std::uint64_t>(
      std::sqrt(2.0 * static_cast<double>(rem) + 0.25) + 0.5);
  if (y < 1) y = 1;
  while (n_choose_k(y + 1, 2) <= rem) ++y;
  while (n_choose_k(y, 2) > rem) --y;
  rem -= n_choose_k(y, 2);

  return Triplet{static_cast<std::uint32_t>(rem), static_cast<std::uint32_t>(y),
                 static_cast<std::uint32_t>(z)};
}

}  // namespace trigen::combinatorics
