#include "trigen/combinatorics/block_partition.hpp"

#include <algorithm>
#include <cmath>

namespace trigen::combinatorics {

std::uint64_t num_block_triples(std::uint64_t nb) {
  return n_choose_k(nb + 2, 3);
}

std::uint64_t rank_block_triple(const BlockTriple& t) {
  return n_choose_k(std::uint64_t{t.b2} + 2, 3) +
         n_choose_k(std::uint64_t{t.b1} + 1, 2) + t.b0;
}

BlockTriple unrank_block_triple(std::uint64_t rank) {
  // b2 = max { c : C(c+2,3) <= rank }.
  std::uint64_t c = static_cast<std::uint64_t>(
      std::cbrt(6.0 * static_cast<double>(rank) + 1.0));
  c = c > 2 ? c - 2 : 0;
  while (n_choose_k(c + 3, 3) <= rank) ++c;
  while (c > 0 && n_choose_k(c + 2, 3) > rank) --c;
  std::uint64_t rem = rank - n_choose_k(c + 2, 3);

  // b1 = max { b : C(b+1,2) <= rem }.
  std::uint64_t b = static_cast<std::uint64_t>(
      std::sqrt(2.0 * static_cast<double>(rem) + 0.25));
  b = b > 1 ? b - 1 : 0;
  while (n_choose_k(b + 2, 2) <= rem) ++b;
  while (b > 0 && n_choose_k(b + 1, 2) > rem) --b;
  rem -= n_choose_k(b + 1, 2);

  return BlockTriple{static_cast<std::uint32_t>(rem),
                     static_cast<std::uint32_t>(b),
                     static_cast<std::uint32_t>(c)};
}

RankRange block_triplet_span(const BlockGrid& g, const BlockTriple& bt) {
  const std::uint64_t bs = g.bs;
  const std::uint64_t base0 = bt.b0 * bs;
  const std::uint64_t base1 = bt.b1 * bs;
  const std::uint64_t base2 = bt.b2 * bs;
  const std::uint64_t end0 = std::min(base0 + bs, g.m);
  const std::uint64_t end1 = std::min(base1 + bs, g.m);
  const std::uint64_t end2 = std::min(base2 + bs, g.m);

  // Colex-minimum triplet: smallest z, then smallest y, then smallest x
  // satisfying x < y < z within the three block extents.
  const std::uint64_t x_min = base0;
  const std::uint64_t y_min = std::max(base1, x_min + 1);
  const std::uint64_t z_min = std::max(base2, y_min + 1);
  if (x_min >= end0 || y_min >= end1 || z_min >= end2) return {};

  // Colex-maximum triplet: largest z, then largest y, then largest x.  The
  // min triplet being valid guarantees these clamps stay ordered.
  const std::uint64_t z_max = end2 - 1;
  const std::uint64_t y_max = std::min(end1 - 1, z_max - 1);
  const std::uint64_t x_max = std::min(end0 - 1, y_max - 1);

  const Triplet lo{static_cast<std::uint32_t>(x_min),
                   static_cast<std::uint32_t>(y_min),
                   static_cast<std::uint32_t>(z_min)};
  const Triplet hi{static_cast<std::uint32_t>(x_max),
                   static_cast<std::uint32_t>(y_max),
                   static_cast<std::uint32_t>(z_max)};
  return {rank_triplet(lo), rank_triplet(hi) + 1};
}

BlockPartition partition_block_triples(const BlockGrid& g, RankRange range) {
  BlockPartition part;
  part.clip = range;
  if (range.empty() || g.m < 3 || g.bs == 0) return part;

  // Blocks with b2 < block(z_first) contain only triplets with z < z_first,
  // i.e. ranks < C(z_first, 3) <= range.first: skip the whole prefix.
  // Blocks with b2 > block(z_last) contain only triplets with z > z_last,
  // i.e. ranks > range.last - 1: skip the whole suffix.  Within the two
  // boundary b2 layers individual blocks may still miss the range; callers
  // skip those with a span test.
  const std::uint64_t z_first = unrank_triplet(range.first).z;
  const std::uint64_t z_last = unrank_triplet(range.last - 1).z;
  const std::uint64_t lo = num_block_triples(z_first / g.bs);
  const std::uint64_t hi = num_block_triples(z_last / g.bs + 1);
  part.block_ranks = {lo, std::min(hi, num_block_triples(g.num_blocks()))};
  return part;
}

std::uint64_t num_block_pairs(std::uint64_t nb) {
  return n_choose_k(nb + 1, 2);
}

std::uint64_t rank_block_pair(const BlockPair& p) {
  return n_choose_k(std::uint64_t{p.b1} + 1, 2) + p.b0;
}

BlockPair unrank_block_pair(std::uint64_t rank) {
  // b1 = max { b : C(b+1,2) <= rank }.
  std::uint64_t b = static_cast<std::uint64_t>(
      std::sqrt(2.0 * static_cast<double>(rank) + 0.25));
  b = b > 1 ? b - 1 : 0;
  while (n_choose_k(b + 2, 2) <= rank) ++b;
  while (b > 0 && n_choose_k(b + 1, 2) > rank) --b;
  return BlockPair{static_cast<std::uint32_t>(rank - n_choose_k(b + 1, 2)),
                   static_cast<std::uint32_t>(b)};
}

RankRange block_pair_span(const BlockGrid& g, const BlockPair& bp) {
  const std::uint64_t bs = g.bs;
  const std::uint64_t base0 = bp.b0 * bs;
  const std::uint64_t base1 = bp.b1 * bs;
  const std::uint64_t end0 = std::min(base0 + bs, g.m);
  const std::uint64_t end1 = std::min(base1 + bs, g.m);

  // Colex-minimum pair: smallest y, then smallest x with x < y.
  const std::uint64_t x_min = base0;
  const std::uint64_t y_min = std::max(base1, x_min + 1);
  if (x_min >= end0 || y_min >= end1) return {};

  // Colex-maximum pair: largest y, then largest x.  The min pair being
  // valid guarantees the clamps stay ordered.
  const std::uint64_t y_max = end1 - 1;
  const std::uint64_t x_max = std::min(end0 - 1, y_max - 1);

  const Pair lo{static_cast<std::uint32_t>(x_min),
                static_cast<std::uint32_t>(y_min)};
  const Pair hi{static_cast<std::uint32_t>(x_max),
                static_cast<std::uint32_t>(y_max)};
  return {rank_pair(lo), rank_pair(hi) + 1};
}

BlockPartition partition_block_pairs(const BlockGrid& g, RankRange range) {
  BlockPartition part;
  part.clip = range;
  if (range.empty() || g.m < 2 || g.bs == 0) return part;

  // Same prefix/suffix argument as the triple version, one level down:
  // b1 layers below block(y_first) or above block(y_last) cannot intersect
  // the range; the two boundary layers are trimmed per-block by span tests.
  const std::uint64_t y_first = unrank_pair(range.first).y;
  const std::uint64_t y_last = unrank_pair(range.last - 1).y;
  const std::uint64_t lo = num_block_pairs(y_first / g.bs);
  const std::uint64_t hi = num_block_pairs(y_last / g.bs + 1);
  part.block_ranks = {lo, std::min(hi, num_block_pairs(g.num_blocks()))};
  return part;
}

}  // namespace trigen::combinatorics
