#include "trigen/combinatorics/block_partition.hpp"

namespace trigen::combinatorics {

std::uint64_t num_block_triples(std::uint64_t nb) {
  return num_block_tuples<3>(nb);
}

std::uint64_t rank_block_triple(const BlockTriple& t) {
  return rank_block_tuple<3>({t.b0, t.b1, t.b2});
}

BlockTriple unrank_block_triple(std::uint64_t rank) {
  const BlockTuple<3> t = unrank_block_tuple<3>(rank);
  return BlockTriple{t[0], t[1], t[2]};
}

RankRange block_triplet_span(const BlockGrid& g, const BlockTriple& bt) {
  return block_tuple_span<3>(g, {bt.b0, bt.b1, bt.b2});
}

BlockPartition partition_block_triples(const BlockGrid& g, RankRange range) {
  return partition_block_tuples<3>(g, range);
}

std::uint64_t num_block_pairs(std::uint64_t nb) {
  return num_block_tuples<2>(nb);
}

std::uint64_t rank_block_pair(const BlockPair& p) {
  return rank_block_tuple<2>({p.b0, p.b1});
}

BlockPair unrank_block_pair(std::uint64_t rank) {
  const BlockTuple<2> t = unrank_block_tuple<2>(rank);
  return BlockPair{t[0], t[1]};
}

RankRange block_pair_span(const BlockGrid& g, const BlockPair& bp) {
  return block_tuple_span<2>(g, {bp.b0, bp.b1});
}

BlockPartition partition_block_pairs(const BlockGrid& g, RankRange range) {
  return partition_block_tuples<2>(g, range);
}

}  // namespace trigen::combinatorics
