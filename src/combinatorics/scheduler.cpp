#include "trigen/combinatorics/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace trigen::combinatorics {

ChunkScheduler::ChunkScheduler(std::uint64_t total, std::uint64_t chunk_size)
    : total_(total), chunk_(chunk_size) {
  if (chunk_size == 0) {
    throw std::invalid_argument("ChunkScheduler: chunk size must be non-zero");
  }
}

RankRange ChunkScheduler::next() {
  // CAS loop instead of a blind fetch_add: the cursor never moves past
  // `total_`, so draining threads cannot wrap it around 2^64 (a blind add
  // of a huge chunk — e.g. chunk > total on a zero/tiny space — would
  // otherwise re-issue ranges after ~2^64/chunk exhausted polls).
  std::uint64_t first = cursor_.load(std::memory_order_relaxed);
  while (first < total_) {
    const std::uint64_t last =
        chunk_ >= total_ - first ? total_ : first + chunk_;
    if (cursor_.compare_exchange_weak(first, last,
                                      std::memory_order_relaxed)) {
      return {first, last};
    }
  }
  return {};
}

void run_workers(ChunkScheduler& sched, unsigned threads,
                 const std::function<void(unsigned, ChunkScheduler&)>& worker) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  if (threads == 1) {
    worker(0, sched);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([t, &sched, &worker] { worker(t, sched); });
  }
  for (auto& th : pool) th.join();
}

std::uint64_t default_chunk_size(std::uint64_t total, unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  const std::uint64_t target_chunks = std::uint64_t{64} * threads;
  return std::max<std::uint64_t>(1, total / std::max<std::uint64_t>(1, target_chunks));
}

}  // namespace trigen::combinatorics
