#include "trigen/baseline/mpi3snp.hpp"

#include <bit>
#include <stdexcept>
#include <thread>

#include "trigen/common/aligned.hpp"
#include "trigen/common/stopwatch.hpp"
#include "trigen/core/detector.hpp"

namespace trigen::baseline {

using dataset::GenotypeMatrix;
using scoring::ContingencyTable;

namespace {

/// MPI3SNP packs 64 samples per word, one plane per genotype value and
/// phenotype class — no inference, no padding tricks.
struct BaselinePlanes {
  std::size_t num_snps = 0;
  std::array<std::size_t, 2> samples{};
  std::array<std::size_t, 2> words{};
  std::array<trigen::aligned_vector<std::uint64_t>, 2> planes;  // [snp][g][word]

  const std::uint64_t* plane(int c, std::size_t snp, int g) const {
    const auto cs = static_cast<std::size_t>(c);
    return planes[cs].data() +
           (snp * 3 + static_cast<std::size_t>(g)) * words[cs];
  }

  static BaselinePlanes build(const GenotypeMatrix& d) {
    BaselinePlanes out;
    out.num_snps = d.num_snps();
    std::array<std::vector<std::size_t>, 2> members;
    for (std::size_t j = 0; j < d.num_samples(); ++j) {
      members[d.phenotype(j)].push_back(j);
    }
    for (int c = 0; c < 2; ++c) {
      const auto cs = static_cast<std::size_t>(c);
      out.samples[cs] = members[cs].size();
      out.words[cs] = (members[cs].size() + 63) / 64;
      out.planes[cs].assign(out.num_snps * 3 * out.words[cs], 0);
    }
    for (std::size_t m = 0; m < d.num_snps(); ++m) {
      for (int c = 0; c < 2; ++c) {
        const auto cs = static_cast<std::size_t>(c);
        for (std::size_t p = 0; p < members[cs].size(); ++p) {
          const auto g = static_cast<std::size_t>(d.at(m, members[cs][p]));
          out.planes[cs][(m * 3 + g) * out.words[cs] + p / 64] |=
              std::uint64_t{1} << (p % 64);
        }
      }
    }
    return out;
  }
};

ContingencyTable contingency_baseline(const BaselinePlanes& p, std::size_t x,
                                      std::size_t y, std::size_t z) {
  ContingencyTable t;
  for (int c = 0; c < 2; ++c) {
    auto& row = t.counts[static_cast<std::size_t>(c)];
    const std::size_t words = p.words[static_cast<std::size_t>(c)];
    for (int gx = 0; gx < 3; ++gx) {
      const std::uint64_t* px = p.plane(c, x, gx);
      for (int gy = 0; gy < 3; ++gy) {
        const std::uint64_t* py = p.plane(c, y, gy);
        for (int gz = 0; gz < 3; ++gz) {
          const std::uint64_t* pz = p.plane(c, z, gz);
          std::uint32_t acc = 0;
          for (std::size_t w = 0; w < words; ++w) {
            acc += static_cast<std::uint32_t>(
                std::popcount(px[w] & py[w] & pz[w]));
          }
          row[static_cast<std::size_t>(scoring::cell_index(gx, gy, gz))] = acc;
        }
      }
    }
  }
  return t;
}

}  // namespace

struct Mpi3SnpEngine::Impl {
  std::size_t num_snps;
  std::size_t num_samples;
  BaselinePlanes planes;
};

Mpi3SnpEngine::Mpi3SnpEngine(const GenotypeMatrix& d)
    : impl_(std::make_unique<Impl>(
          Impl{d.num_snps(), d.num_samples(), BaselinePlanes::build(d)})) {
  if (d.num_snps() < 3) {
    throw std::invalid_argument("Mpi3SnpEngine: need at least 3 SNPs");
  }
}

Mpi3SnpEngine::~Mpi3SnpEngine() = default;

std::size_t Mpi3SnpEngine::num_snps() const { return impl_->num_snps; }
std::size_t Mpi3SnpEngine::num_samples() const { return impl_->num_samples; }

ContingencyTable Mpi3SnpEngine::contingency(std::size_t x, std::size_t y,
                                            std::size_t z) const {
  if (x >= impl_->num_snps || y >= impl_->num_snps || z >= impl_->num_snps) {
    throw std::out_of_range("Mpi3SnpEngine::contingency: SNP out of range");
  }
  return contingency_baseline(impl_->planes, x, y, z);
}

BaselineResult Mpi3SnpEngine::run(unsigned threads, std::size_t top_k) const {
  if (top_k == 0) {
    throw std::invalid_argument("Mpi3SnpEngine::run: top_k must be >= 1");
  }
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  const std::size_t m = impl_->num_snps;

  BaselineResult result;
  result.threads_used = threads;
  result.triplets_evaluated = combinatorics::num_triplets(m);
  result.elements = result.triplets_evaluated * impl_->num_samples;

  const auto scorer = core::make_normalized_scorer(
      core::Objective::kMutualInformation,
      static_cast<std::uint32_t>(impl_->num_samples));

  std::vector<core::TopK> per_thread(threads, core::TopK(top_k));

  // Static triangular distribution: (x, y) pairs are dealt round-robin to
  // workers (the MPI3SNP rank distribution); each worker runs all z > y.
  auto worker = [&](unsigned tid) {
    core::TopK& top = per_thread[tid];
    std::uint64_t pair_index = 0;
    for (std::size_t x = 0; x + 2 < m; ++x) {
      for (std::size_t y = x + 1; y + 1 < m; ++y, ++pair_index) {
        if (pair_index % threads != tid) continue;
        for (std::size_t z = y + 1; z < m; ++z) {
          const ContingencyTable t =
              contingency_baseline(impl_->planes, x, y, z);
          top.push(core::ScoredTriplet{
              combinatorics::Triplet{static_cast<std::uint32_t>(x),
                                     static_cast<std::uint32_t>(y),
                                     static_cast<std::uint32_t>(z)},
              scorer(t)});
        }
      }
    }
  };

  Stopwatch sw;
  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (auto& th : pool) th.join();
  }
  result.seconds = sw.seconds();

  core::TopK merged(top_k);
  for (const auto& t : per_thread) merged.merge(t);
  result.best = merged.sorted();
  return result;
}

}  // namespace trigen::baseline
