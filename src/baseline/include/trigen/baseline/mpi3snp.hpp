#pragma once
/// \file mpi3snp.hpp
/// \brief MPI3SNP-style baseline engine (Ponte-Fernandez et al., IJHPCA'20).
///
/// Strategy-faithful reimplementation of the reference third-order tool the
/// paper compares against in Table III.  What it shares with trigen:
/// binary encoding and bitwise AND + POPCNT table construction.  What it
/// deliberately lacks (the paper's contributions):
///
///  * no genotype-2 inference — all three genotype planes are stored and
///    loaded (1.5x the memory traffic);
///  * no cache blocking — each triplet streams its planes end-to-end;
///  * no vectorization — scalar 64-bit words and scalar POPCNT;
///  * static triangular distribution of (x, y) pairs over workers
///    (MPI-rank style), not dynamic chunk scheduling;
///  * mutual-information objective (MPI3SNP's score).
///
/// Table III's CPU rows measure exactly the gap these absences open.

#include <cstdint>
#include <memory>
#include <vector>

#include "trigen/core/topk.hpp"
#include "trigen/dataset/genotype_matrix.hpp"
#include "trigen/scoring/contingency.hpp"

namespace trigen::baseline {

/// Result of a baseline run (same shape as core::DetectionResult).
struct BaselineResult {
  std::vector<core::ScoredTriplet> best;  ///< normalized (lower = better)
  std::uint64_t triplets_evaluated = 0;
  std::uint64_t elements = 0;
  double seconds = 0.0;
  unsigned threads_used = 1;

  double elements_per_second() const {
    return seconds > 0.0 ? static_cast<double>(elements) / seconds : 0.0;
  }
};

/// MPI3SNP-style engine bound to one dataset.
class Mpi3SnpEngine {
 public:
  explicit Mpi3SnpEngine(const dataset::GenotypeMatrix& d);
  ~Mpi3SnpEngine();

  Mpi3SnpEngine(const Mpi3SnpEngine&) = delete;
  Mpi3SnpEngine& operator=(const Mpi3SnpEngine&) = delete;

  /// Exhaustive scan with MI scoring and static pair distribution.
  BaselineResult run(unsigned threads = 1, std::size_t top_k = 1) const;

  /// Contingency table for one triplet (tests cross-check this against the
  /// trigen kernels and the brute-force reference).
  scoring::ContingencyTable contingency(std::size_t x, std::size_t y,
                                        std::size_t z) const;

  std::size_t num_snps() const;
  std::size_t num_samples() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace trigen::baseline
