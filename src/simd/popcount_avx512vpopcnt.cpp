/// \file popcount_avx512vpopcnt.cpp
/// \brief AVX-512 VPOPCNTDQ whole-buffer popcount (Ice Lake SP strategy).
///
/// Compiled with -mavx512f -mavx512bw -mavx512vpopcntdq regardless of the
/// global architecture flags; only executed after the runtime dispatcher
/// confirms support.

#include "popcount_detail.hpp"

#if defined(TRIGEN_KERNEL_AVX512VPOPCNT)
#include <immintrin.h>

namespace trigen::simd::detail {

std::uint64_t popcount_avx512_vpopcnt(const std::uint32_t* words,
                                      std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i v =
        _mm512_load_si512(reinterpret_cast<const void*>(words + i));
    acc = _mm512_add_epi32(acc, _mm512_popcnt_epi32(v));
  }
  std::uint64_t total =
      static_cast<std::uint64_t>(_mm512_reduce_add_epi32(acc));
  return total + popcount_scalar64(words + i, n - i);
}

}  // namespace trigen::simd::detail

#endif  // TRIGEN_KERNEL_AVX512VPOPCNT
