#pragma once
/// \file popcount_detail.hpp
/// \brief Internal declarations of the per-ISA whole-buffer popcount
/// implementations.
///
/// Mirrors src/core/kernels_detail.hpp: each vector implementation lives in
/// its own translation unit compiled with exactly the ISA flags it needs,
/// while the dispatcher in popcount.cpp stays portable and consults
/// cpu_features() before handing control to vector code.  Availability of a
/// compiled-in variant is signalled by the TRIGEN_KERNEL_* compile
/// definitions set by the build system.

#include <cstddef>
#include <cstdint>

namespace trigen::simd::detail {

// Defined in popcount.cpp; always present.  Scalar 64-bit tail loop shared
// by every vector strategy.
std::uint64_t popcount_scalar64(const std::uint32_t* words, std::size_t n);

#if defined(TRIGEN_KERNEL_AVX2)
// Defined in popcount_avx2.cpp (compiled with -mavx2).
std::uint64_t popcount_avx2_extract(const std::uint32_t* words, std::size_t n);
std::uint64_t popcount_avx2_harley_seal(const std::uint32_t* words,
                                        std::size_t n);
#endif

#if defined(TRIGEN_KERNEL_AVX512)
// Defined in popcount_avx512.cpp (compiled with -mavx512f -mavx512bw).
std::uint64_t popcount_avx512_extract(const std::uint32_t* words,
                                      std::size_t n);
#endif

#if defined(TRIGEN_KERNEL_AVX512VPOPCNT)
// Defined in popcount_avx512vpopcnt.cpp (compiled with -mavx512vpopcntdq).
std::uint64_t popcount_avx512_vpopcnt(const std::uint32_t* words,
                                      std::size_t n);
#endif

}  // namespace trigen::simd::detail
