#pragma once
/// \file popcount.hpp
/// \brief Population-count strategies per micro-architecture (paper §IV-A).
///
/// POPCNT is "one of the main instructions in epistasis detection"; the
/// paper's CPU V4 kernel picks a different strategy per ISA:
///
///  * AVX CPUs (Skylake, Zen, Zen2): 256-bit loads/ANDs, then per-64-bit
///    extract + scalar POPCNT (`kAvx2Extract`).
///  * AVX-512 without VPOPCNTDQ (Skylake SP): 512-bit loads/ANDs, two
///    extract steps per scalar POPCNT (`kAvx512Extract`) — the overhead the
///    paper blames for SKX being the *slowest* CPU per core.
///  * AVX-512 with VPOPCNTDQ (Ice Lake SP): vector POPCNT + reduction
///    (`kAvx512Vpopcnt`) — the fastest configuration in Fig. 3.
///
/// `kAvx2HarleySeal` (vpshufb nibble LUT) is included as an ablation: it is
/// the classic alternative to extract+scalar-POPCNT on AVX2 machines.
///
/// Each strategy is exposed as a whole-buffer popcount so it can be
/// unit-tested against the scalar reference and benchmarked in isolation;
/// the V4 kernels inline the same instruction sequences.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace trigen::simd {

enum class PopcountStrategy {
  kScalar32,       ///< per-32-bit-word builtin popcount (V1-V3 kernels)
  kScalar64,       ///< per-64-bit-word builtin popcount
  kAvx2Extract,    ///< 256-bit vectors, 4x extract + scalar POPCNT
  kAvx2HarleySeal, ///< 256-bit vpshufb nibble-LUT + horizontal add (ablation)
  kAvx512Extract,  ///< 512-bit vectors, extracti64x4 + extracts + scalar POPCNT
  kAvx512Vpopcnt,  ///< 512-bit _mm512_popcnt_epi32 + reduce (Ice Lake SP)
  kAuto,           ///< widest strategy the host supports
};

/// All concrete strategies (excludes kAuto), in ascending preference order.
const std::vector<PopcountStrategy>& all_strategies();

/// True when the host CPU can execute `s`.
bool strategy_available(PopcountStrategy s);

/// Widest available strategy on this host.
PopcountStrategy best_available();

/// Resolves kAuto to a concrete strategy; identity otherwise.
PopcountStrategy resolve(PopcountStrategy s);

/// Human-readable name, e.g. "avx512-vpopcnt".
std::string strategy_name(PopcountStrategy s);

/// Total set bits in `words[0..n)` using strategy `s`.
///
/// Preconditions: for the vector strategies, `words` must be 64-byte
/// aligned (all trigen bit-planes are); any `n` is accepted — the tail is
/// handled with the scalar path.  Throws std::runtime_error when `s` is not
/// available on the host.
std::uint64_t popcount_words(const std::uint32_t* words, std::size_t n,
                             PopcountStrategy s);

/// Scalar reference used by the tests (bit-by-bit, no builtins).
std::uint64_t popcount_reference(const std::uint32_t* words, std::size_t n);

}  // namespace trigen::simd
