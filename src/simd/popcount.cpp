#include "trigen/simd/popcount.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "trigen/common/cpuid.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace trigen::simd {
namespace {

std::uint64_t popcount_scalar32(const std::uint32_t* words, std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += std::popcount(words[i]);
  return acc;
}

std::uint64_t popcount_scalar64(const std::uint32_t* words, std::size_t n) {
  std::uint64_t acc = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    std::uint64_t w;
    std::memcpy(&w, words + i, 8);
    acc += std::popcount(w);
  }
  if (i < n) acc += std::popcount(words[i]);
  return acc;
}

#if defined(__AVX2__)
std::uint64_t popcount_avx2_extract(const std::uint32_t* words, std::size_t n) {
  std::uint64_t acc = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(words + i));
    acc += static_cast<std::uint64_t>(
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(v, 0))) +
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(v, 1))) +
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(v, 2))) +
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(v, 3))));
  }
  return acc + popcount_scalar64(words + i, n - i);
}

/// Harley-Seal style nibble-LUT popcount (Mula's algorithm): two vpshufb
/// lookups per 256-bit lane and a sad-against-zero horizontal sum.
std::uint64_t popcount_avx2_harley_seal(const std::uint32_t* words,
                                        std::size_t n) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(words + i));
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
    const __m256i cnt =
        _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
  }
  std::uint64_t total =
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 0)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 1)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 2)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 3));
  return total + popcount_scalar64(words + i, n - i);
}
#endif  // __AVX2__

#if defined(__AVX512F__) && defined(__AVX512BW__)
std::uint64_t popcount_avx512_extract(const std::uint32_t* words,
                                      std::size_t n) {
  std::uint64_t acc = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i v =
        _mm512_load_si512(reinterpret_cast<const void*>(words + i));
    // Skylake-SP path: two extract levels per 64-bit lane, then scalar
    // POPCNT — the overhead the paper identifies on CI2.
    const __m256i lo = _mm512_extracti64x4_epi64(v, 0);
    const __m256i hi = _mm512_extracti64x4_epi64(v, 1);
    acc += static_cast<std::uint64_t>(
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(lo, 0))) +
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(lo, 1))) +
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(lo, 2))) +
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(lo, 3))) +
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(hi, 0))) +
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(hi, 1))) +
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(hi, 2))) +
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(hi, 3))));
  }
  return acc + popcount_scalar64(words + i, n - i);
}
#endif  // AVX512F && AVX512BW

#if defined(__AVX512VPOPCNTDQ__)
std::uint64_t popcount_avx512_vpopcnt(const std::uint32_t* words,
                                      std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i v =
        _mm512_load_si512(reinterpret_cast<const void*>(words + i));
    acc = _mm512_add_epi32(acc, _mm512_popcnt_epi32(v));
  }
  std::uint64_t total =
      static_cast<std::uint64_t>(_mm512_reduce_add_epi32(acc));
  return total + popcount_scalar64(words + i, n - i);
}
#endif  // __AVX512VPOPCNTDQ__

}  // namespace

const std::vector<PopcountStrategy>& all_strategies() {
  static const std::vector<PopcountStrategy> v = {
      PopcountStrategy::kScalar32,      PopcountStrategy::kScalar64,
      PopcountStrategy::kAvx2Extract,   PopcountStrategy::kAvx2HarleySeal,
      PopcountStrategy::kAvx512Extract, PopcountStrategy::kAvx512Vpopcnt,
  };
  return v;
}

bool strategy_available(PopcountStrategy s) {
  const auto& f = cpu_features();
  switch (s) {
    case PopcountStrategy::kScalar32:
    case PopcountStrategy::kScalar64:
      return true;
    case PopcountStrategy::kAvx2Extract:
    case PopcountStrategy::kAvx2HarleySeal:
#if defined(__AVX2__)
      return f.avx2;
#else
      return false;
#endif
    case PopcountStrategy::kAvx512Extract:
#if defined(__AVX512F__) && defined(__AVX512BW__)
      return f.avx512f && f.avx512bw;
#else
      return false;
#endif
    case PopcountStrategy::kAvx512Vpopcnt:
#if defined(__AVX512VPOPCNTDQ__)
      return f.avx512vpopcntdq;
#else
      return false;
#endif
    case PopcountStrategy::kAuto:
      return true;
  }
  return false;
}

PopcountStrategy best_available() {
  const auto& all = all_strategies();
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    if (*it == PopcountStrategy::kAvx2HarleySeal) continue;  // ablation only
    if (strategy_available(*it)) return *it;
  }
  return PopcountStrategy::kScalar32;
}

PopcountStrategy resolve(PopcountStrategy s) {
  return s == PopcountStrategy::kAuto ? best_available() : s;
}

std::string strategy_name(PopcountStrategy s) {
  switch (s) {
    case PopcountStrategy::kScalar32: return "scalar32";
    case PopcountStrategy::kScalar64: return "scalar64";
    case PopcountStrategy::kAvx2Extract: return "avx2-extract";
    case PopcountStrategy::kAvx2HarleySeal: return "avx2-harley-seal";
    case PopcountStrategy::kAvx512Extract: return "avx512-extract";
    case PopcountStrategy::kAvx512Vpopcnt: return "avx512-vpopcnt";
    case PopcountStrategy::kAuto: return "auto";
  }
  return "unknown";
}

std::uint64_t popcount_words(const std::uint32_t* words, std::size_t n,
                             PopcountStrategy s) {
  s = resolve(s);
  if (!strategy_available(s)) {
    throw std::runtime_error("popcount strategy '" + strategy_name(s) +
                             "' not available on this host");
  }
  switch (s) {
    case PopcountStrategy::kScalar32:
      return popcount_scalar32(words, n);
    case PopcountStrategy::kScalar64:
      return popcount_scalar64(words, n);
#if defined(__AVX2__)
    case PopcountStrategy::kAvx2Extract:
      return popcount_avx2_extract(words, n);
    case PopcountStrategy::kAvx2HarleySeal:
      return popcount_avx2_harley_seal(words, n);
#endif
#if defined(__AVX512F__) && defined(__AVX512BW__)
    case PopcountStrategy::kAvx512Extract:
      return popcount_avx512_extract(words, n);
#endif
#if defined(__AVX512VPOPCNTDQ__)
    case PopcountStrategy::kAvx512Vpopcnt:
      return popcount_avx512_vpopcnt(words, n);
#endif
    default:
      throw std::runtime_error("popcount strategy not compiled in");
  }
}

std::uint64_t popcount_reference(const std::uint32_t* words, std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t w = words[i];
    while (w != 0) {
      acc += w & 1u;
      w >>= 1;
    }
  }
  return acc;
}

}  // namespace trigen::simd
