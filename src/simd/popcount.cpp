/// \file popcount.cpp
/// \brief Scalar popcount strategies and the runtime strategy dispatcher.
///
/// Compiled WITHOUT any ISA-specific flags — this translation unit must run
/// on any host, because it decides at runtime (via cpu_features()) whether
/// the per-ISA translation units (popcount_avx2.cpp, popcount_avx512.cpp,
/// popcount_avx512vpopcnt.cpp) may be entered.  The TRIGEN_KERNEL_* compile
/// definitions report which of those the build compiled in.

#include "trigen/simd/popcount.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "popcount_detail.hpp"
#include "trigen/common/cpuid.hpp"

namespace trigen::simd {

namespace detail {

std::uint64_t popcount_scalar64(const std::uint32_t* words, std::size_t n) {
  std::uint64_t acc = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    std::uint64_t w;
    std::memcpy(&w, words + i, 8);
    acc += std::popcount(w);
  }
  if (i < n) acc += std::popcount(words[i]);
  return acc;
}

}  // namespace detail

namespace {

std::uint64_t popcount_scalar32(const std::uint32_t* words, std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += std::popcount(words[i]);
  return acc;
}

}  // namespace

const std::vector<PopcountStrategy>& all_strategies() {
  static const std::vector<PopcountStrategy> v = {
      PopcountStrategy::kScalar32,      PopcountStrategy::kScalar64,
      PopcountStrategy::kAvx2Extract,   PopcountStrategy::kAvx2HarleySeal,
      PopcountStrategy::kAvx512Extract, PopcountStrategy::kAvx512Vpopcnt,
  };
  return v;
}

bool strategy_available(PopcountStrategy s) {
  const auto& f = cpu_features();
  switch (s) {
    case PopcountStrategy::kScalar32:
    case PopcountStrategy::kScalar64:
      return true;
    case PopcountStrategy::kAvx2Extract:
    case PopcountStrategy::kAvx2HarleySeal:
#if defined(TRIGEN_KERNEL_AVX2)
      return f.avx2;
#else
      return false;
#endif
    case PopcountStrategy::kAvx512Extract:
#if defined(TRIGEN_KERNEL_AVX512)
      return f.avx512f && f.avx512bw;
#else
      return false;
#endif
    case PopcountStrategy::kAvx512Vpopcnt:
#if defined(TRIGEN_KERNEL_AVX512VPOPCNT)
      return f.avx512f && f.avx512bw && f.avx512vpopcntdq;
#else
      return false;
#endif
    case PopcountStrategy::kAuto:
      return true;
  }
  return false;
}

PopcountStrategy best_available() {
  const auto& all = all_strategies();
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    if (*it == PopcountStrategy::kAvx2HarleySeal) continue;  // ablation only
    if (strategy_available(*it)) return *it;
  }
  return PopcountStrategy::kScalar32;
}

PopcountStrategy resolve(PopcountStrategy s) {
  return s == PopcountStrategy::kAuto ? best_available() : s;
}

std::string strategy_name(PopcountStrategy s) {
  switch (s) {
    case PopcountStrategy::kScalar32: return "scalar32";
    case PopcountStrategy::kScalar64: return "scalar64";
    case PopcountStrategy::kAvx2Extract: return "avx2-extract";
    case PopcountStrategy::kAvx2HarleySeal: return "avx2-harley-seal";
    case PopcountStrategy::kAvx512Extract: return "avx512-extract";
    case PopcountStrategy::kAvx512Vpopcnt: return "avx512-vpopcnt";
    case PopcountStrategy::kAuto: return "auto";
  }
  return "unknown";
}

std::uint64_t popcount_words(const std::uint32_t* words, std::size_t n,
                             PopcountStrategy s) {
  s = resolve(s);
  if (!strategy_available(s)) {
    throw std::runtime_error("popcount strategy '" + strategy_name(s) +
                             "' not available on this host");
  }
  switch (s) {
    case PopcountStrategy::kScalar32:
      return popcount_scalar32(words, n);
    case PopcountStrategy::kScalar64:
      return detail::popcount_scalar64(words, n);
#if defined(TRIGEN_KERNEL_AVX2)
    case PopcountStrategy::kAvx2Extract:
      return detail::popcount_avx2_extract(words, n);
    case PopcountStrategy::kAvx2HarleySeal:
      return detail::popcount_avx2_harley_seal(words, n);
#endif
#if defined(TRIGEN_KERNEL_AVX512)
    case PopcountStrategy::kAvx512Extract:
      return detail::popcount_avx512_extract(words, n);
#endif
#if defined(TRIGEN_KERNEL_AVX512VPOPCNT)
    case PopcountStrategy::kAvx512Vpopcnt:
      return detail::popcount_avx512_vpopcnt(words, n);
#endif
    default:
      throw std::runtime_error("popcount strategy not compiled in");
  }
}

std::uint64_t popcount_reference(const std::uint32_t* words, std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t w = words[i];
    while (w != 0) {
      acc += w & 1u;
      w >>= 1;
    }
  }
  return acc;
}

}  // namespace trigen::simd
