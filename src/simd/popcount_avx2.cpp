/// \file popcount_avx2.cpp
/// \brief AVX2 whole-buffer popcount strategies (extract and Harley-Seal).
///
/// Compiled with -mavx2 regardless of the global architecture flags; only
/// executed after the runtime dispatcher confirms AVX2 support.

#include "popcount_detail.hpp"

#include <bit>

#if defined(TRIGEN_KERNEL_AVX2)
#include <immintrin.h>

namespace trigen::simd::detail {

std::uint64_t popcount_avx2_extract(const std::uint32_t* words, std::size_t n) {
  std::uint64_t acc = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(words + i));
    acc += static_cast<std::uint64_t>(
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(v, 0))) +
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(v, 1))) +
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(v, 2))) +
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(v, 3))));
  }
  return acc + popcount_scalar64(words + i, n - i);
}

/// Harley-Seal style nibble-LUT popcount (Mula's algorithm): two vpshufb
/// lookups per 256-bit lane and a sad-against-zero horizontal sum.
std::uint64_t popcount_avx2_harley_seal(const std::uint32_t* words,
                                        std::size_t n) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(words + i));
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
    const __m256i cnt =
        _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
  }
  std::uint64_t total =
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 0)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 1)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 2)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 3));
  return total + popcount_scalar64(words + i, n - i);
}

}  // namespace trigen::simd::detail

#endif  // TRIGEN_KERNEL_AVX2
