/// \file popcount_avx512.cpp
/// \brief AVX-512 + extract whole-buffer popcount (Skylake-SP strategy).
///
/// Compiled with -mavx512f -mavx512bw regardless of the global architecture
/// flags; only executed after the runtime dispatcher confirms support.

#include "popcount_detail.hpp"

#include <bit>

#if defined(TRIGEN_KERNEL_AVX512)
#include <immintrin.h>

namespace trigen::simd::detail {

std::uint64_t popcount_avx512_extract(const std::uint32_t* words,
                                      std::size_t n) {
  std::uint64_t acc = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i v =
        _mm512_load_si512(reinterpret_cast<const void*>(words + i));
    // Skylake-SP path: two extract levels per 64-bit lane, then scalar
    // POPCNT — the overhead the paper identifies on CI2.
    const __m256i lo = _mm512_extracti64x4_epi64(v, 0);
    const __m256i hi = _mm512_extracti64x4_epi64(v, 1);
    acc += static_cast<std::uint64_t>(
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(lo, 0))) +
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(lo, 1))) +
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(lo, 2))) +
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(lo, 3))) +
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(hi, 0))) +
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(hi, 1))) +
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(hi, 2))) +
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(hi, 3))));
  }
  return acc + popcount_scalar64(words + i, n - i);
}

}  // namespace trigen::simd::detail

#endif  // TRIGEN_KERNEL_AVX512
