# TrigenSimd.cmake — per-ISA compiler flag detection for the SIMD kernels.
#
# The kernel translation units (src/core/kernels_avx2.cpp, ..., and the
# src/simd/popcount_*.cpp mirrors) are compiled with per-file ISA flags so
# that a portable build (no -march=native) still carries every vector
# variant the compiler can emit.  Runtime dispatch via trigen::cpu_features()
# remains the single authority on what actually executes.
#
# Defines, for each ISA tier the compiler supports:
#   TRIGEN_HAVE_AVX2            / TRIGEN_AVX2_FLAGS            (-mavx2)
#   TRIGEN_HAVE_AVX512          / TRIGEN_AVX512_FLAGS          (-mavx512f -mavx512bw)
#   TRIGEN_HAVE_AVX512VPOPCNT   / TRIGEN_AVX512VPOPCNT_FLAGS   (+ -mavx512vpopcntdq)
#
# The *_FLAGS variables are CMake lists suitable for COMPILE_OPTIONS.
# Detection compiles a real intrinsic snippet (not just flag acceptance) so
# it also works with MSVC's /arch: model and catches broken toolchains.

include(CheckCXXSourceCompiles)

function(_trigen_check_isa out_var flags source)
  string(REPLACE ";" " " _flags_str "${flags}")
  set(CMAKE_REQUIRED_FLAGS "${_flags_str}")
  check_cxx_source_compiles("${source}" ${out_var})
endfunction()

if(MSVC)
  set(_trigen_avx2_flags "/arch:AVX2")
  set(_trigen_avx512_flags "/arch:AVX512")
  set(_trigen_avx512vp_flags "/arch:AVX512")
else()
  set(_trigen_avx2_flags "-mavx2")
  set(_trigen_avx512_flags "-mavx512f;-mavx512bw")
  set(_trigen_avx512vp_flags "-mavx512f;-mavx512bw;-mavx512vpopcntdq")
endif()

_trigen_check_isa(TRIGEN_HAVE_AVX2 "${_trigen_avx2_flags}" "
#include <immintrin.h>
int main() {
  __m256i v = _mm256_set1_epi8(1);
  v = _mm256_sad_epu8(v, _mm256_setzero_si256());
  return static_cast<int>(_mm256_extract_epi64(v, 0) == 8);
}")

_trigen_check_isa(TRIGEN_HAVE_AVX512 "${_trigen_avx512_flags}" "
#include <immintrin.h>
int main() {
  __m512i v = _mm512_set1_epi32(1);
  v = _mm512_and_si512(v, v);
  __m256i lo = _mm512_extracti64x4_epi64(v, 0);
  return static_cast<int>(_mm256_extract_epi64(lo, 0) != 0);
}")

_trigen_check_isa(TRIGEN_HAVE_AVX512VPOPCNT "${_trigen_avx512vp_flags}" "
#include <immintrin.h>
int main() {
  __m512i v = _mm512_set1_epi32(7);
  v = _mm512_popcnt_epi32(v);
  return _mm512_reduce_add_epi32(v) == 48 ? 0 : 1;
}")

if(TRIGEN_HAVE_AVX2)
  set(TRIGEN_AVX2_FLAGS "${_trigen_avx2_flags}")
endif()
if(TRIGEN_HAVE_AVX512)
  set(TRIGEN_AVX512_FLAGS "${_trigen_avx512_flags}")
endif()
if(TRIGEN_HAVE_AVX512VPOPCNT)
  set(TRIGEN_AVX512VPOPCNT_FLAGS "${_trigen_avx512vp_flags}")
endif()

message(STATUS "trigen SIMD variants: avx2=${TRIGEN_HAVE_AVX2} "
               "avx512=${TRIGEN_HAVE_AVX512} "
               "avx512vpopcnt=${TRIGEN_HAVE_AVX512VPOPCNT}")

# trigen_add_isa_source(<target> <tier> <source>)
#
# Adds <source> to <target> compiled with the flags of ISA <tier> (one of
# AVX2, AVX512, AVX512VPOPCNT), and defines TRIGEN_KERNEL_<tier>=1 on the
# whole target so the portable dispatch TU knows the variant exists.  No-op
# when the compiler does not support the tier.  Per-ISA TUs guard their
# bodies on TRIGEN_KERNEL_<tier> (not on compiler macros like __AVX2__,
# which MSVC's /arch model does not always define).
function(trigen_add_isa_source target tier source)
  if(NOT TRIGEN_HAVE_${tier})
    return()
  endif()
  target_sources(${target} PRIVATE ${source})
  set_source_files_properties(${source}
    PROPERTIES COMPILE_OPTIONS "${TRIGEN_${tier}_FLAGS}")
  target_compile_definitions(${target} PRIVATE TRIGEN_KERNEL_${tier}=1)
endfunction()
