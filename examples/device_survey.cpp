/// \file device_survey.cpp
/// \brief Runs the same workload on every engine and device model in the
/// repository — the "which device should my lab buy" question §V-D answers.
///
/// For one dataset: host CPU ladder (measured), the MPI3SNP-style baseline
/// (measured), and all nine Table-II GPU models (functional run + modelled
/// throughput), ranked by elements/s.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "trigen/baseline/mpi3snp.hpp"
#include "trigen/common/table.hpp"
#include "trigen/core/detector.hpp"
#include "trigen/dataset/synthetic.hpp"
#include "trigen/gpusim/simulator.hpp"

int main() {
  using namespace trigen;

  const auto data = dataset::generate_balanced(96, 2048, 31337);
  std::printf("workload: %zu SNPs x %zu samples (%llu triplets)\n",
              data.num_snps(), data.num_samples(),
              static_cast<unsigned long long>(
                  combinatorics::num_triplets(data.num_snps())));

  struct Entry {
    std::string device;
    std::string engine;
    double gel_s;
    std::string kind;
  };
  std::vector<Entry> entries;

  // Host CPU: full ladder, measured.
  const core::Detector det(data);
  for (const auto v :
       {core::CpuVersion::kV1Naive, core::CpuVersion::kV2Split,
        core::CpuVersion::kV3Blocked, core::CpuVersion::kV4Vector,
        core::CpuVersion::kV5PairCache}) {
    core::DetectorOptions opt;
    opt.version = v;
    const auto r = det.run(opt);
    entries.push_back({"host CPU (1 core)", core::cpu_version_name(v),
                       r.elements_per_second() / 1e9, "measured"});
  }

  // MPI3SNP-style baseline, measured.
  const baseline::Mpi3SnpEngine base(data);
  entries.push_back({"host CPU (1 core)", "MPI3SNP-style baseline",
                     base.run(1).elements_per_second() / 1e9, "measured"});

  // Every GPU model: functional execution + modelled device throughput.
  combinatorics::Triplet best{0, 0, 0};
  for (const auto& spec : gpusim::gpu_device_db()) {
    const gpusim::GpuSimulator sim(spec, data);
    const auto r = sim.run({});
    best = r.best[0].triplet;
    entries.push_back({spec.id + " " + spec.name, "GPU V4 (model)",
                       r.cost.elements_per_second / 1e9, "modelled"});
  }

  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.gel_s > b.gel_s; });

  TextTable t({"rank", "device", "engine", "Gel/s", "source"});
  for (std::size_t i = 0; i < entries.size(); ++i) {
    t.add_row({std::to_string(i + 1), entries[i].device, entries[i].engine,
               TextTable::fmt(entries[i].gel_s, 2), entries[i].kind});
  }
  std::printf("%s", t.to_ascii().c_str());
  std::printf("\nall engines agree on the best triplet: (%u, %u, %u)\n",
              best.x, best.y, best.z);
  return 0;
}
