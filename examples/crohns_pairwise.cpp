/// \file crohns_pairwise.cpp
/// \brief Second-order scenario from the paper's introduction: "some
/// diseases, such as Crohn's disease, are related to an interaction
/// between two SNPs" (§I, ref [3]).
///
/// Simulates a Crohn's-like study with a planted *pairwise* interaction,
/// runs the pairwise detector, then shows why order matters: the 3-way
/// detector also flags triplets containing the causal pair, but the 2-way
/// scan finds the signal with C(M,2) ~ M/3 x fewer evaluations.

#include <cstdio>

#include "trigen/core/detector.hpp"
#include "trigen/dataset/synthetic.hpp"
#include "trigen/pairwise/pair_detector.hpp"

int main() {
  using namespace trigen;

  // Crohn's-like candidate panel: a pair (9, 33) drives risk.
  dataset::SyntheticSpec spec;
  spec.num_snps = 64;
  spec.num_samples = 3000;
  spec.seed = 3407;
  spec.maf_min = 0.2;
  spec.maf_max = 0.5;
  spec.prevalence = 0.12;
  dataset::PlantedInteraction planted;
  planted.snps = {9, 33, 63};  // third index unused by the pairwise table
  planted.penetrance = dataset::make_penetrance_pairwise(
      dataset::InteractionModel::kThreshold, 0.06, 0.5);
  spec.interaction = planted;
  const auto data = dataset::generate(spec);
  std::printf("study: %zu SNPs x %zu samples, planted pair (9, 33)\n\n",
              data.num_snps(), data.num_samples());

  // Pairwise scan.
  pairwise::PairDetector pairs(data);
  pairwise::PairDetectorOptions popt;
  popt.top_k = 5;
  const auto pr = pairs.run(popt);
  std::printf("2-way scan: %llu pairs in %.3f s\n",
              static_cast<unsigned long long>(pr.combinations_evaluated), pr.seconds);
  for (std::size_t i = 0; i < pr.best.size(); ++i) {
    std::printf("  #%zu (%2u, %2u)  K2 = %.3f%s\n", i + 1, pr.best[i].x,
                pr.best[i].y, pr.best[i].score,
                pr.best[i].x == 9 && pr.best[i].y == 33 ? "  <-- planted" : "");
  }

  // 3-way scan on the same data: triplets containing (9, 33) dominate.
  core::Detector triples(data);
  core::DetectorOptions topt;
  topt.top_k = 5;
  const auto tr = triples.run(topt);
  std::printf("\n3-way scan: %llu triplets in %.3f s\n",
              static_cast<unsigned long long>(tr.combinations_evaluated),
              tr.seconds);
  int containing = 0;
  for (std::size_t i = 0; i < tr.best.size(); ++i) {
    const auto& t = tr.best[i].triplet;
    const bool has_pair = (t.x == 9 && t.y == 33) || (t.x == 9 && t.z == 33) ||
                          (t.y == 9 && t.z == 33);
    containing += has_pair ? 1 : 0;
    std::printf("  #%zu (%2u, %2u, %2u)  K2 = %.3f%s\n", i + 1, t.x, t.y, t.z,
                tr.best[i].score, has_pair ? "  <-- contains the pair" : "");
  }
  std::printf("\n%d of the top-5 triplets contain the causal pair; the "
              "pairwise scan needed %.1fx\nfewer combination evaluations.\n",
              containing,
              static_cast<double>(tr.combinations_evaluated) /
                  static_cast<double>(pr.combinations_evaluated));
  return 0;
}
