/// \file quickstart.cpp
/// \brief Smallest possible end-to-end use of the trigen public API:
/// generate a case-control dataset with a planted three-way interaction,
/// run the detector, and print the top hits.
///
///   $ ./quickstart
///
/// Everything fits in ~30 lines: the library defaults (V4 kernel, widest
/// host ISA, K2 score, L1-derived tiling) are production settings.

#include <cstdio>

#include "trigen/core/detector.hpp"
#include "trigen/dataset/synthetic.hpp"

int main() {
  using namespace trigen;

  // 1. A synthetic GWAS: 64 SNPs x 2000 samples with SNPs (7, 21, 40)
  //    interacting epistatically (XOR-like penetrance).
  dataset::SyntheticSpec spec;
  spec.num_snps = 64;
  spec.num_samples = 2000;
  spec.seed = 1234;
  spec.prevalence = 0.2;
  dataset::PlantedInteraction planted;
  planted.snps = {7, 21, 40};
  planted.penetrance =
      dataset::make_penetrance(dataset::InteractionModel::kXor3, 0.05, 0.8);
  spec.interaction = planted;
  const dataset::GenotypeMatrix data = dataset::generate(spec);

  // 2. Exhaustive three-way detection with library defaults.
  core::Detector detector(data);
  core::DetectorOptions options;
  options.top_k = 5;
  const core::DetectionResult result = detector.run(options);

  // 3. Report.
  std::printf("scanned %llu triplets (%llu elements) in %.3f s — %.2f Giga "
              "elements/s\nkernel: %s, tiling <BS=%zu, BP=%zu>\n\n",
              static_cast<unsigned long long>(result.combinations_evaluated),
              static_cast<unsigned long long>(result.elements), result.seconds,
              result.elements_per_second() / 1e9,
              core::kernel_isa_name(result.isa_used).c_str(),
              result.tiling_used.bs, result.tiling_used.bp_words);
  std::printf("top %zu triplets by K2 score (lower = more likely epistatic):\n",
              result.best.size());
  for (const auto& hit : result.best) {
    std::printf("  (%2u, %2u, %2u)  K2 = %.3f%s\n", hit.triplet.x,
                hit.triplet.y, hit.triplet.z, hit.score,
                hit.triplet.x == 7 && hit.triplet.y == 21 && hit.triplet.z == 40
                    ? "   <-- planted interaction"
                    : "");
  }
  return 0;
}
