/// \file hetero_screening.cpp
/// \brief Heterogeneous screening scenario (§V-D): a clinic box pairing the
/// host CPU with an accelerator splits one exhaustive scan between them.
///
/// Shows calibration (small probe on each side), the derived static split,
/// the overlapped co-run, and the §V-D conclusion that pairing only pays
/// when the CPU is within a small factor of the GPU.

#include <cstdio>

#include "trigen/common/table.hpp"
#include "trigen/dataset/synthetic.hpp"
#include "trigen/gpusim/device_spec.hpp"
#include "trigen/hetero/coordinator.hpp"

int main() {
  using namespace trigen;

  const auto data = dataset::generate_balanced(96, 2048, 777);
  std::printf("screening workload: %zu SNPs x %zu samples\n\n",
              data.num_snps(), data.num_samples());

  TextTable t({"paired GPU model", "CPU share", "cpu time [s]",
               "gpu time [s] (model)", "overlap [s]", "best triplet"});
  for (const char* id : {"GI2", "GN1", "GN4"}) {
    const hetero::HeteroCoordinator coord(data, gpusim::gpu_device(id));
    const auto r = coord.run({});
    char triplet[48];
    std::snprintf(triplet, sizeof triplet, "(%u,%u,%u)", r.best[0].triplet.x,
                  r.best[0].triplet.y, r.best[0].triplet.z);
    t.add_row({id, TextTable::fmt(r.cpu_share, 4),
               TextTable::fmt(r.cpu_seconds, 3),
               TextTable::fmt(r.gpu_sim_seconds, 4),
               TextTable::fmt(r.overlap_seconds, 3), triplet});
  }
  std::printf("%s", t.to_ascii().c_str());

  std::printf("\n§V-D projections for datacenter pairings:\n");
  const double ci3 =
      gpusim::project_cpu_elements_per_sec(gpusim::cpu_device("CI3"), true);
  const auto est = hetero::estimate_hetero(ci3, 2200e9);
  std::printf("CI3 (+AVX512 VPOPCNT, %.0f Gel/s) + Titan RTX (2200 Gel/s) "
              "=> %.0f Gel/s combined (%.2fx)\n",
              ci3 / 1e9, est.combined_eps / 1e9, est.speedup_vs_gpu);
  return 0;
}
