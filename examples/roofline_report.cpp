/// \file roofline_report.cpp
/// \brief Produces a CARM report for this machine: measured roofs plus the
/// CPU detection ladder plotted on them — a self-service version of the
/// paper's Fig. 2a methodology for any host.

#include <cstdio>

#include "trigen/carm/characterize.hpp"
#include "trigen/carm/roofs.hpp"
#include "trigen/common/cpuid.hpp"
#include "trigen/common/table.hpp"
#include "trigen/dataset/synthetic.hpp"

int main() {
  using namespace trigen;

  std::printf("CARM report for: %s\nISA: %s\n\n", cpu_brand_string().c_str(),
              cpu_features().to_string().c_str());

  std::printf("measuring roofs (~1 s)...\n");
  const carm::CarmRoofs roofs = carm::measure_roofs();
  TextTable rt({"roof", "value"});
  for (const auto& r : roofs.memory) {
    rt.add_row({r.level + "->core", si_format(r.bytes_per_s) + "B/s"});
  }
  for (const auto& r : roofs.compute) {
    rt.add_row({r.name, si_format(r.intops_per_s) + "INTOP/s"});
  }
  std::printf("%s", rt.to_ascii().c_str());

  std::printf("\ncharacterizing the detection ladder (V1..V4, 1 core)...\n");
  const auto data = dataset::generate_balanced(160, 4096, 99);
  const auto points = carm::characterize_cpu_ladder(data, 1);
  std::printf("%s", carm::roofline_chart(roofs, points).c_str());
  std::printf("\n%s", carm::points_csv(points).c_str());
  return 0;
}
