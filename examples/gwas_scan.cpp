/// \file gwas_scan.cpp
/// \brief Realistic GWAS workflow: load a dataset from disk (or generate a
/// demo one), run exhaustive three-way detection with a chosen objective,
/// and write ranked results as CSV.
///
///   $ ./gwas_scan [dataset.tg] [--objective k2|mi|chi2] [--top N]
///                 [--threads T] [--csv out.csv]
///
/// Without a dataset argument, a demo study (simulating the paper's intro
/// scenario: a disease driven by a third-order interaction among
/// candidate-gene SNPs) is generated, scanned and verified.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "trigen/core/detector.hpp"
#include "trigen/dataset/io.hpp"
#include "trigen/dataset/synthetic.hpp"

namespace {

using namespace trigen;

const char* arg_value(int argc, char** argv, const char* flag,
                      const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

core::Objective parse_objective(const std::string& name) {
  if (name == "k2") return core::Objective::kK2;
  if (name == "mi") return core::Objective::kMutualInformation;
  if (name == "chi2") return core::Objective::kChiSquared;
  std::fprintf(stderr, "unknown objective '%s', using k2\n", name.c_str());
  return core::Objective::kK2;
}

dataset::GenotypeMatrix demo_study() {
  // Candidate-gene panel: 128 SNPs, 4000 patients, balanced-ish, one
  // planted third-order risk interaction at (12, 57, 99).
  dataset::SyntheticSpec spec;
  spec.num_snps = 128;
  spec.num_samples = 4000;
  spec.seed = 20220126;  // the paper's arXiv date
  spec.maf_min = 0.1;
  spec.maf_max = 0.5;
  spec.prevalence = 0.15;
  dataset::PlantedInteraction planted;
  planted.snps = {12, 57, 99};
  planted.penetrance = dataset::make_penetrance(
      dataset::InteractionModel::kThreshold, 0.08, 0.55);
  spec.interaction = planted;
  return dataset::generate(spec);
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1 && argv[1][0] != '-') path = argv[1];
  const core::Objective objective =
      parse_objective(arg_value(argc, argv, "--objective", "k2"));
  const std::size_t top_k =
      static_cast<std::size_t>(std::atoi(arg_value(argc, argv, "--top", "10")));
  const unsigned threads =
      static_cast<unsigned>(std::atoi(arg_value(argc, argv, "--threads", "1")));
  const std::string csv_path = arg_value(argc, argv, "--csv", "");

  const dataset::GenotypeMatrix data =
      path.empty() ? demo_study() : dataset::read_text_file(path);
  std::printf("dataset: %zu SNPs x %zu samples (%zu controls / %zu cases)\n",
              data.num_snps(), data.num_samples(), data.class_count(0),
              data.class_count(1));

  core::Detector detector(data);
  core::DetectorOptions options;
  options.objective = objective;
  options.top_k = top_k == 0 ? 10 : top_k;
  options.threads = threads == 0 ? 1 : threads;
  const core::DetectionResult result = detector.run(options);

  std::printf("scan: %llu triplets in %.3f s (%.2f Gel/s) using %s / %u "
              "thread(s)\n\nrank, snp_x, snp_y, snp_z, score\n",
              static_cast<unsigned long long>(result.combinations_evaluated),
              result.seconds, result.elements_per_second() / 1e9,
              core::kernel_isa_name(result.isa_used).c_str(),
              result.threads_used);
  for (std::size_t i = 0; i < result.best.size(); ++i) {
    const auto& hit = result.best[i];
    std::printf("%4zu, %5u, %5u, %5u, %.4f\n", i + 1, hit.triplet.x,
                hit.triplet.y, hit.triplet.z, hit.score);
  }

  if (!csv_path.empty()) {
    std::ofstream os(csv_path);
    os << "rank,snp_x,snp_y,snp_z,score\n";
    for (std::size_t i = 0; i < result.best.size(); ++i) {
      const auto& hit = result.best[i];
      os << i + 1 << ',' << hit.triplet.x << ',' << hit.triplet.y << ','
         << hit.triplet.z << ',' << hit.score << '\n';
    }
    std::printf("\nwrote %s\n", csv_path.c_str());
  }

  if (path.empty()) {
    const auto& top = result.best.front().triplet;
    std::printf("\ndemo verification: planted interaction (12, 57, 99) %s\n",
                top.x == 12 && top.y == 57 && top.z == 99
                    ? "recovered at rank 1"
                    : "NOT at rank 1 (unexpected)");
  }
  return 0;
}
