/// \file trigen_cli.cpp
/// \brief `trigen` — command-line front end for the library.
///
/// Subcommands:
///   generate   synthesize a case-control dataset (optional planted triple)
///   info       print dataset statistics
///   convert    text <-> binary dataset conversion
///   scan       exhaustive detection at any interaction order (--order k,
///              default 3): whole space, a rank range, or one checkpointed
///              shard of a W-way plan
///   scan2      exhaustive 2-way detection (= scan --order 2; same flags,
///              over the pair rank space)
///   merge      fold shard result files (any one order) into the full-scan
///              answer
///   baseline   MPI3SNP-style engine on the same dataset (for comparison)
///   significance  permutation test: empirical p-value of the best order-k
///              combination (--order k, default 3)
///   serve      resident scan server (one loaded dataset, async job queue)
///   coordinate fault-tolerant fleet control plane: lease shards to
///              workers, survive their crashes, merge exactly
///   work       one fleet worker against a `trigen coordinate` socket
///   devices    list the Table-I/II device models
///
/// Run `trigen <subcommand> --help` for flags.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "trigen/baseline/mpi3snp.hpp"
#include "trigen/common/args.hpp"
#include "trigen/common/table.hpp"
#include "trigen/core/detector.hpp"
#include "trigen/core/scan_csv.hpp"
#include "trigen/dataset/io.hpp"
#include "trigen/dataset/synthetic.hpp"
#include "trigen/fleet/coordinator.hpp"
#include "trigen/fleet/worker.hpp"
#include "trigen/gpusim/device_spec.hpp"
#include "trigen/pairwise/pair_detector.hpp"
#include "trigen/serve/endpoint.hpp"
#include "trigen/serve/server.hpp"
#include "trigen/shard/merge.hpp"
#include "trigen/shard/plan.hpp"
#include "trigen/shard/runner.hpp"
#include "trigen/stats/permutation.hpp"
#include "trigen/stats/report.hpp"
#include "trigen/tune/microbench.hpp"
#include "trigen/tune/profile.hpp"

#include <sys/stat.h>
#ifndef _WIN32
#include <unistd.h>
#endif

namespace {

using namespace trigen;

/// Flags that never take a value (see Args::parse) — shared across all
/// subcommands so e.g. `trigen scan --progress data.tg` keeps its
/// positional.
const std::set<std::string>& cli_switches() {
  static const std::set<std::string> s = {"help", "partial", "progress",
                                          "quick", "no-tune", "json"};
  return s;
}

/// Exit code of a cleanly interrupted (checkpointed, resumable) shard scan.
constexpr int kExitInterrupted = 3;

/// Flipped by the SIGINT/SIGTERM handler.  The orchestrated scan path and
/// the resident server poll it so a real Ctrl-C takes the same "drain to
/// the next checkpoint boundary, exit 3, resumable" path as --stop-after.
std::atomic<bool> g_interrupted{false};

void on_interrupt(int) {
  // Second signal: the user is past waiting for a graceful drain.
  if (g_interrupted.exchange(true)) std::_Exit(130);
}

void install_interrupt_handler() {
#ifndef _WIN32
  struct sigaction sa {};
  sa.sa_handler = on_interrupt;
  sigemptyset(&sa.sa_mask);
  // No SA_RESTART: blocked reads/polls must return EINTR so their loops
  // see the flag promptly.
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
#else
  std::signal(SIGINT, on_interrupt);
#endif
}

/// --KEY with strict non-negative parsing; a negative or garbage value is
/// a usage error (exit 2), not a silent two's-complement wrap into ~2^64.
std::uint64_t get_uint_or_die(const Args& a, const std::string& key,
                              std::uint64_t fallback) {
  try {
    return a.get_uint(key, fallback);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
}

dataset::GenotypeMatrix load(const std::string& path) {
  if (path.size() > 4 && path.substr(path.size() - 4) == ".tgb") {
    return dataset::read_binary_file(path);
  }
  return dataset::read_text_file(path);
}

void save(const std::string& path, const dataset::GenotypeMatrix& d) {
  if (path.size() > 4 && path.substr(path.size() - 4) == ".tgb") {
    dataset::write_binary_file(path, d);
  } else {
    dataset::write_text_file(path, d);
  }
}

/// Percent progress meter on stderr for the scan drivers' callbacks.
core::ProgressFn make_progress_printer(std::string label) {
  return [label = std::move(label), last_pct = -1](std::uint64_t done,
                                                   std::uint64_t total) mutable {
    const int pct = total == 0
                        ? 100
                        : static_cast<int>(100.0 * static_cast<double>(done) /
                                           static_cast<double>(total));
    if (pct == last_pct) return;
    last_pct = pct;
    std::fprintf(stderr, "\r%s: %3d%%", label.c_str(), pct);
    if (pct >= 100) std::fputc('\n', stderr);
  };
}

core::Objective parse_objective(const std::string& s) {
  if (s == "k2") return core::Objective::kK2;
  if (s == "mi") return core::Objective::kMutualInformation;
  if (s == "chi2") return core::Objective::kChiSquared;
  std::fprintf(stderr, "unknown objective '%s' (k2|mi|chi2)\n", s.c_str());
  std::exit(2);
}

/// Parse-time --version validation: rejects anything outside 1..5 with a
/// message naming the ladder rungs and the vector ISAs this binary carries
/// (and whether this host can run them), instead of failing deep inside
/// the detector.
core::CpuVersion parse_version(const Args& a) {
  const long v = a.get_int("version", 4);
  switch (v) {
    case 1: return core::CpuVersion::kV1Naive;
    case 2: return core::CpuVersion::kV2Split;
    case 3: return core::CpuVersion::kV3Blocked;
    case 4: return core::CpuVersion::kV4Vector;
    case 5: return core::CpuVersion::kV5PairCache;
    default: break;
  }
  std::string isas;
  for (const core::KernelIsa isa : core::all_kernel_isas()) {
    if (!isas.empty()) isas += ", ";
    isas += core::kernel_isa_name(isa);
    if (!core::kernel_available(isa)) isas += " (not on this host)";
  }
  std::fprintf(stderr,
               "--version expects 1..5: 1 naive planes, 2 split planes, "
               "3 + L1 blocking, 4 + vector kernels, 5 + pair-plane cache "
               "(got %ld)\nvector ISAs in this binary: %s\n",
               v, isas.c_str());
  std::exit(2);
}

/// Parse-time --isa / $TRIGEN_ISA validation, mirroring parse_version:
/// rejects unknown names with the list of ISAs this binary carries (and
/// whether this host can run them) instead of failing inside the detector.
/// Returns nullopt for the default ("auto" or unset): keep auto-dispatch.
std::optional<core::KernelIsa> parse_isa_flag(const Args& a) {
  std::string name = a.get("isa", "");
  if (name.empty()) {
    if (const char* env = std::getenv("TRIGEN_ISA"); env != nullptr && *env) {
      name = env;
    }
  }
  if (name.empty() || name == "auto") return std::nullopt;
  const auto isa = core::parse_kernel_isa(name);
  std::string isas;
  for (const core::KernelIsa i : core::all_kernel_isas()) {
    if (!isas.empty()) isas += ", ";
    isas += core::kernel_isa_name(i);
    if (!core::kernel_available(i)) isas += " (not on this host)";
  }
  if (!isa) {
    std::fprintf(stderr,
                 "--isa/TRIGEN_ISA expects a vector ISA name or 'auto' "
                 "(got '%s')\nvector ISAs in this binary: %s\n",
                 name.c_str(), isas.c_str());
    std::exit(2);
  }
  if (!core::kernel_available(*isa)) {
    std::fprintf(stderr,
                 "--isa %s: compiled in but this host cannot execute it\n"
                 "vector ISAs in this binary: %s\n",
                 name.c_str(), isas.c_str());
    std::exit(2);
  }
  return isa;
}

/// Resolves the tuning profile for scan/significance/serve: --no-tune
/// disables lookup, --profile PATH must load (hard error otherwise), and
/// with neither flag the default profile path is used when a file is
/// there — a missing default is normal (analytic model), a corrupt or
/// foreign one warns and falls back rather than failing the scan.
core::ConfigResolver load_tuning_resolver(const Args& a) {
  if (a.has("no-tune")) return {};
  const bool explicit_profile = a.has("profile");
  const std::string path =
      explicit_profile ? a.get("profile", "") : tune::default_profile_path();
  if (!explicit_profile) {
    struct stat st {};
    if (::stat(path.c_str(), &st) != 0) return {};
  }
  try {
    auto profile = std::make_shared<const tune::TuningProfile>(
        tune::load_profile_for_this_host(path));
    return tune::make_resolver(std::move(profile));
  } catch (const std::exception& e) {
    if (explicit_profile) {
      std::fprintf(stderr, "--profile %s: %s\n", path.c_str(), e.what());
      std::exit(1);
    }
    std::fprintf(stderr,
                 "warning: ignoring tuning profile %s (%s); using the "
                 "analytic model\n",
                 path.c_str(), e.what());
    return {};
  }
}

int cmd_generate(const Args& a) {
  if (a.positional.empty() || a.has("help")) {
    std::puts("usage: trigen generate OUT.tg[b] --snps M --samples N [--seed S]\n"
              "  [--maf-min 0.05] [--maf-max 0.5] [--prevalence 0.5]\n"
              "  [--plant x,y,z --model threshold|xor3|mult --baseline 0.05 --effect 0.8]");
    return a.has("help") ? 0 : 2;
  }
  dataset::SyntheticSpec spec;
  spec.num_snps = static_cast<std::size_t>(a.get_int("snps", 100));
  spec.num_samples = static_cast<std::size_t>(a.get_int("samples", 1000));
  spec.seed = static_cast<std::uint64_t>(a.get_int("seed", 42));
  spec.maf_min = a.get_double("maf-min", 0.05);
  spec.maf_max = a.get_double("maf-max", 0.5);
  spec.prevalence = a.get_double("prevalence", 0.5);
  if (a.has("plant")) {
    dataset::PlantedInteraction planted;
    unsigned x = 0, y = 0, z = 0;
    if (std::sscanf(a.get("plant", "").c_str(), "%u,%u,%u", &x, &y, &z) != 3) {
      std::fprintf(stderr, "--plant expects x,y,z\n");
      return 2;
    }
    planted.snps = {x, y, z};
    const std::string model = a.get("model", "threshold");
    const auto kind = model == "xor3" ? dataset::InteractionModel::kXor3
                      : model == "mult"
                          ? dataset::InteractionModel::kMultiplicative
                          : dataset::InteractionModel::kThreshold;
    planted.penetrance = dataset::make_penetrance(
        kind, a.get_double("baseline", 0.05), a.get_double("effect", 0.8));
    spec.interaction = planted;
  }
  const auto d = dataset::generate(spec);
  save(a.positional[0], d);
  std::printf("wrote %s: %zu SNPs x %zu samples (%zu controls, %zu cases)\n",
              a.positional[0].c_str(), d.num_snps(), d.num_samples(),
              d.class_count(0), d.class_count(1));
  return 0;
}

int cmd_info(const Args& a) {
  if (a.positional.empty()) {
    std::puts("usage: trigen info DATASET.tg[b]");
    return 2;
  }
  const auto d = load(a.positional[0]);
  std::printf("snps: %zu\nsamples: %zu\ncontrols: %zu\ncases: %zu\n",
              d.num_snps(), d.num_samples(), d.class_count(0),
              d.class_count(1));
  std::printf("3-way combinations: %llu\n2-way combinations: %llu\n",
              static_cast<unsigned long long>(
                  combinatorics::num_triplets(d.num_snps())),
              static_cast<unsigned long long>(
                  pairwise::num_pairs(d.num_snps())));
  // Genotype distribution.
  std::size_t counts[3] = {};
  for (std::size_t m = 0; m < d.num_snps(); ++m) {
    for (const auto g : d.snp_row(m)) ++counts[g];
  }
  const double total = static_cast<double>(d.num_snps() * d.num_samples());
  std::printf("genotype distribution: 0: %.1f%%, 1: %.1f%%, 2: %.1f%%\n",
              100.0 * counts[0] / total, 100.0 * counts[1] / total,
              100.0 * counts[2] / total);
  return 0;
}

int cmd_convert(const Args& a) {
  if (a.positional.size() != 2) {
    std::puts("usage: trigen convert IN.tg[b] OUT.tg[b]");
    return 2;
  }
  save(a.positional[1], load(a.positional[0]));
  std::printf("converted %s -> %s\n", a.positional[0].c_str(),
              a.positional[1].c_str());
  return 0;
}

/// Everything order-specific the scan/merge/significance subcommands
/// touch, stamped out once per interaction order K: `scan` (order 3, or
/// any order via --order), `scan2` (order 2) and `merge` run the same
/// flag set through the same drivers below.
template <unsigned K>
struct OrderCli {
  static constexpr unsigned kOrder = K;
  using Scored = core::ScoredOf<K>;
  using Detector = core::BasicDetector<K>;
  using DetectorOptions = core::BasicDetectorOptions<K>;
  using ShardRunOptions = shard::BasicShardRunOptions<DetectorOptions>;
  using ShardResult = shard::BasicShardResult<Scored>;

  /// The command spelling that reproduces this order (usage + progress).
  static std::string label() {
    if constexpr (K == 2) {
      return "scan2";
    } else if constexpr (K == 3) {
      return "scan";
    } else {
      return "scan --order " + std::to_string(K);
    }
  }
  static std::string noun() {
    if constexpr (K == 2) {
      return "pairs";
    } else if constexpr (K == 3) {
      return "triplets";
    } else {
      return std::to_string(K) + "-tuples";
    }
  }
  static std::uint64_t space(std::uint64_t m) {
    return combinatorics::n_choose_k(m, K);
  }
  template <typename Discard>
  static shard::BasicShardRunReport<Scored> run_shard(
      const Detector& det, std::uint64_t fp, const ShardRunOptions& o,
      Discard&& discard) {
    return shard::run_shard_of<K>(det, fp, o, discard);
  }
  static ShardResult read_shard_file(const std::string& path) {
    return shard::read_shard_result_file_as<Scored>(path);
  }
  static shard::MergedScanOf<K> merge(const std::vector<ShardResult>& shards,
                                      shard::MergeCoverage coverage) {
    return shard::merge_shards_of<K>(shards, coverage);
  }
  static std::uint64_t evaluated(const core::BasicDetectionResult<K>& r) {
    return r.combinations_evaluated;
  }
  /// The CSV section shared by `scan` (full or shard), `merge` and the
  /// resident server's scan-job payload, so shell pipelines can diff any
  /// two of them byte-for-byte (the rendering lives in core/scan_csv.hpp).
  static void print_csv(const std::vector<Scored>& best) {
    for (const std::string& line : core::scan_csv_lines<K>(best)) {
      std::printf("%s\n", line.c_str());
    }
  }
};

template <typename Cli>
void print_scan_usage() {
  std::printf(
      "usage: trigen %s DATASET.tg[b] [--objective k2|mi|chi2]\n"
      "  [--top K] [--threads T] [--version 1|2|3|4|5]\n"
      "  [--isa NAME|auto] [--profile FILE] [--no-tune]\n"
      "  [--range FIRST:LAST] [--progress]\n"
      "  [--shards W --shard I [--split even|block]]\n"
      "  [--out FILE.shard] [--checkpoint FILE.ckpt]\n"
      "  [--checkpoint-every RANKS] [--stop-after RANKS]\n"
      "`trigen scan --order k` scans at any interaction order k in\n"
      "[2, %u] (--order 3 is the default `scan`; `scan2` = --order 2);\n"
      "--version picks the optimization-ladder rung (1 naive planes,\n"
      "2 split planes, 3 + L1 blocking, 4 + vector kernels, 5 + prefix-\n"
      "plane cache; default 4);\n"
      "--range scans only %s ranks [FIRST, LAST) — any version,\n"
      "including the blocked V3/V4/V5 (shard results merge exactly);\n"
      "--progress reports percent scanned on stderr.\n"
      "--shards/--shard scans shard I (0-based) of a W-way plan;\n"
      "--out writes a portable shard result file for `trigen merge`;\n"
      "--checkpoint persists progress after every chunk and resumes\n"
      "from it when the file already exists; --stop-after stops\n"
      "cleanly once RANKS ranks are done (exit code 3, resumable).\n",
      Cli::label().c_str(), combinatorics::kMaxOrder, Cli::noun().c_str());
}

/// Order-generic scan subcommand: full space, rank range, or one shard of
/// a W-way plan, optionally orchestrated (checkpoint/resume, portable
/// result files) through the shard runner.
template <typename Cli>
int cmd_scan_generic(const Args& a) {
  if (a.positional.empty() || a.has("help")) {
    print_scan_usage<Cli>();
    return a.has("help") ? 0 : 2;
  }
  // Validate cheap flags before touching the dataset, so a typo'd
  // `--version` fails instantly even on a multi-gigabyte input.
  typename Cli::DetectorOptions opt;
  opt.objective = parse_objective(a.get("objective", "k2"));
  opt.top_k = static_cast<std::size_t>(a.get_int("top", 10));
  opt.threads = static_cast<unsigned>(a.get_int("threads", 0));
  opt.version = parse_version(a);
  if (const auto isa = parse_isa_flag(a)) {
    opt.isa = *isa;
    opt.isa_auto = false;
  } else {
    opt.config = load_tuning_resolver(a);
  }
  const auto d = load(a.positional[0]);
  typename Cli::Detector det(d);
  const std::uint64_t total = Cli::space(d.num_snps());

  if (a.has("shards") || a.has("shard")) {
    if (a.has("range")) {
      std::fprintf(stderr, "--range and --shards are mutually exclusive\n");
      return 2;
    }
    const std::uint64_t w = get_uint_or_die(a, "shards", 0);
    const std::uint64_t i =
        a.has("shard") ? get_uint_or_die(a, "shard", 0)
                       : std::numeric_limits<std::uint64_t>::max();
    if (w < 1 || i >= w) {
      std::fprintf(stderr,
                   "--shards W --shard I needs W >= 1 and 0 <= I < W\n");
      return 2;
    }
    const std::string split = a.get("split", "even");
    shard::SplitStrategy strategy = shard::SplitStrategy::kEvenRanks;
    std::uint64_t bs = 0;
    if (split == "block") {
      strategy = shard::SplitStrategy::kBlockAligned;
      bs = core::autotune_tiling(core::detect_l1_config(),
                                 core::kernel_vector_words(
                                     core::best_kernel_isa()))
               .bs;
    } else if (split != "even") {
      std::fprintf(stderr, "--split expects even|block\n");
      return 2;
    }
    const auto plan = shard::plan_shards(d.num_snps(),
                                         static_cast<unsigned>(w), strategy,
                                         bs, Cli::kOrder);
    opt.range = plan[static_cast<std::size_t>(i)];
  } else if (a.has("range")) {
    unsigned long long first = 0, last = 0;
    if (std::sscanf(a.get("range", "").c_str(), "%llu:%llu", &first, &last) !=
            2 ||
        first >= last || last > total) {
      std::fprintf(stderr,
                   "--range expects FIRST:LAST with FIRST < LAST <= %llu\n",
                   static_cast<unsigned long long>(total));
      return 2;
    }
    opt.range = {first, last};
  }
  const combinatorics::RankRange eff =
      opt.range.empty() ? combinatorics::RankRange{0, total} : opt.range;

  // Orchestrated path: any of --out / --checkpoint / --stop-after routes
  // through the checkpointing shard runner instead of a bare run().
  if (a.has("out") || a.has("checkpoint") || a.has("stop-after")) {
    typename Cli::ShardRunOptions ropt;
    ropt.detector = opt;
    ropt.range = eff;
    ropt.checkpoint_path = a.get("checkpoint", "");
    ropt.checkpoint_every = get_uint_or_die(a, "checkpoint-every", 0);
    // keep_going is polled after every checkpoint write, so both a
    // --stop-after budget and a real SIGINT/SIGTERM drain to the next
    // checkpoint boundary and take the exit-3 resumable path below.
    const std::uint64_t stop_after =
        a.has("stop-after")
            ? get_uint_or_die(a, "stop-after", 0)
            : std::numeric_limits<std::uint64_t>::max();
    install_interrupt_handler();
    ropt.keep_going = [stop_after](std::uint64_t done, std::uint64_t) {
      return !g_interrupted.load() && done < stop_after;
    };
    if (a.has("progress")) ropt.progress = make_progress_printer(Cli::label());
    const std::uint64_t fp = shard::dataset_fingerprint(d);
    const auto report = Cli::run_shard(
        det, fp, ropt, [](const std::string& reason) {
          std::fprintf(stderr,
                       "warning: discarding unusable checkpoint (%s); "
                       "rescanning the shard from its start\n",
                       reason.c_str());
        });
    if (report.resumed) {
      std::printf("# resumed from checkpoint at rank %llu\n",
                  static_cast<unsigned long long>(report.resumed_from));
    }
    if (!report.completed) {
      std::printf("# interrupted: shard [%llu, %llu) is checkpointed in "
                  "'%s'; rerun the same command to resume\n",
                  static_cast<unsigned long long>(eff.first),
                  static_cast<unsigned long long>(eff.last),
                  ropt.checkpoint_path.empty() ? "(no checkpoint!)"
                                               : ropt.checkpoint_path.c_str());
      return kExitInterrupted;
    }
    if (a.has("out")) {
      shard::write_shard_result_file(a.get("out", ""), report.result);
      std::printf("# wrote shard result %s\n", a.get("out", "").c_str());
    }
    const double eps =
        report.result.seconds > 0.0
            ? static_cast<double>(report.result.range.size() *
                                  d.num_samples()) /
                  report.result.seconds
            : 0.0;
    std::printf(
        "# %llu %s, %.3f s, %.2f Gel/s, shard ranks [%llu, %llu) of "
        "%llu, fingerprint %016llx\n",
        static_cast<unsigned long long>(report.result.range.size()),
        Cli::noun().c_str(), report.result.seconds, eps / 1e9,
        static_cast<unsigned long long>(eff.first),
        static_cast<unsigned long long>(eff.last),
        static_cast<unsigned long long>(total),
        static_cast<unsigned long long>(fp));
    Cli::print_csv(report.result.entries);
    return 0;
  }

  if (a.has("progress")) opt.progress = make_progress_printer(Cli::label());
  const auto r = det.run(opt);
  std::printf("# %llu %s, %.3f s, %.2f Gel/s, kernel %s, %u thread(s)\n",
              static_cast<unsigned long long>(Cli::evaluated(r)), Cli::noun().c_str(),
              r.seconds, r.elements_per_second() / 1e9,
              core::kernel_isa_name(r.isa_used).c_str(), r.threads_used);
  std::printf("# partition: ranks [%llu, %llu) of %llu (%.1f%% of the space)\n",
              static_cast<unsigned long long>(eff.first),
              static_cast<unsigned long long>(eff.last),
              static_cast<unsigned long long>(total),
              total == 0 ? 100.0
                         : 100.0 * static_cast<double>(eff.size()) /
                               static_cast<double>(total));
  Cli::print_csv(r.best);
  return 0;
}

/// `scan` dispatches on --order (default 3: the classic triplet scan);
/// `scan2` is the historical spelling of --order 2.  The runtime order
/// picks the compile-time instantiation of the one generic engine.
int cmd_scan(const Args& a) {
  switch (a.get_int("order", 3)) {
    case 2: return cmd_scan_generic<OrderCli<2>>(a);
    case 3: return cmd_scan_generic<OrderCli<3>>(a);
    case 4: return cmd_scan_generic<OrderCli<4>>(a);
    case 5: return cmd_scan_generic<OrderCli<5>>(a);
    case 6: return cmd_scan_generic<OrderCli<6>>(a);
    default: break;
  }
  std::fprintf(stderr, "--order expects an interaction order in [2, %u]\n",
               combinatorics::kMaxOrder);
  return 2;
}

int cmd_scan2(const Args& a) { return cmd_scan_generic<OrderCli<2>>(a); }

template <typename Cli>
int cmd_merge_generic(const Args& a) {
  std::vector<typename Cli::ShardResult> shards;
  shards.reserve(a.positional.size());
  for (const auto& path : a.positional) {
    shards.push_back(Cli::read_shard_file(path));
  }
  const auto m = Cli::merge(shards, a.has("partial")
                                        ? shard::MergeCoverage::kContiguous
                                        : shard::MergeCoverage::kFullScan);
  if (a.has("out")) {
    shard::write_shard_result_file(a.get("out", ""), shard::to_shard_result(m));
    std::printf("# wrote merged result %s\n", a.get("out", "").c_str());
  }
  const double aggregate_eps =
      m.max_shard_seconds > 0.0
          ? static_cast<double>(m.result.elements) / m.max_shard_seconds
          : 0.0;
  std::printf(
      "# merged %llu shards: %llu %s, %.3f s compute (slowest shard "
      "%.3f s), %.2f Gel/s aggregate, objective %s, fingerprint %016llx\n",
      static_cast<unsigned long long>(m.num_shards),
      static_cast<unsigned long long>(Cli::evaluated(m.result)), Cli::noun().c_str(),
      m.result.seconds, m.max_shard_seconds, aggregate_eps / 1e9,
      m.objective.c_str(), static_cast<unsigned long long>(m.fingerprint));
  Cli::print_csv(m.result.best);
  return 0;
}

int cmd_merge(const Args& a) {
  if (a.positional.empty() || a.has("help")) {
    std::puts("usage: trigen merge SHARD_FILE... [--partial] [--out FILE.shard]\n"
              "Folds shard result files written by `trigen scan --out` or\n"
              "`trigen scan2 --out` into the exact full-scan answer.  The\n"
              "interaction order is read from the first file; every shard\n"
              "must share it (and one dataset fingerprint, objective and\n"
              "top_k), and together they must cover the combination rank\n"
              "space exactly once (any order).  --partial relaxes that to\n"
              "any contiguous sub-range — an intermediate merge (e.g. one\n"
              "per rack) whose --out file feeds the next merge level.\n"
              "--out writes the merged result as a shard file over the\n"
              "covered range.");
    return a.has("help") ? 0 : 2;
  }
  // The first file picks the order; a mixed set fails inside the readers
  // with a precise order-mismatch error.
  switch (shard::probe_shard_order(a.positional[0])) {
    case 2: return cmd_merge_generic<OrderCli<2>>(a);
    case 3: return cmd_merge_generic<OrderCli<3>>(a);
    case 4: return cmd_merge_generic<OrderCli<4>>(a);
    case 5: return cmd_merge_generic<OrderCli<5>>(a);
    case 6: return cmd_merge_generic<OrderCli<6>>(a);
    default: break;
  }
  // Out-of-range orders fall through to the reader for its precise
  // "unsupported order" message.
  return cmd_merge_generic<OrderCli<3>>(a);
}

int cmd_baseline(const Args& a) {
  if (a.positional.empty()) {
    std::puts("usage: trigen baseline DATASET.tg[b] [--top K] [--threads T]");
    return 2;
  }
  const auto d = load(a.positional[0]);
  baseline::Mpi3SnpEngine engine(d);
  const auto r = engine.run(static_cast<unsigned>(a.get_int("threads", 1)),
                            static_cast<std::size_t>(a.get_int("top", 10)));
  std::printf("# %llu triplets, %.3f s, %.2f Gel/s (MPI3SNP-style, MI)\n",
              static_cast<unsigned long long>(r.triplets_evaluated), r.seconds,
              r.elements_per_second() / 1e9);
  std::printf("rank,snp_x,snp_y,snp_z,score\n");
  for (std::size_t i = 0; i < r.best.size(); ++i) {
    std::printf("%zu,%u,%u,%u,%.6f\n", i + 1, r.best[i].triplet.x,
                r.best[i].triplet.y, r.best[i].triplet.z, r.best[i].score);
  }
  return 0;
}

/// The order-K permutation test body behind `significance --order K`.
/// The report rendering is shared with the resident server's
/// significance-job payload (stats/report.hpp), so the two are diffable.
template <unsigned K>
int cmd_significance_of(const dataset::GenotypeMatrix& d,
                        unsigned permutations, std::uint64_t seed,
                        core::Objective objective, unsigned threads,
                        unsigned batch, bool progress,
                        std::optional<core::KernelIsa> isa,
                        core::ConfigResolver config) {
  stats::BasicPermutationTestOptions<K> opt;
  opt.permutations = permutations;
  opt.seed = seed;
  opt.batch = batch;
  opt.detector.objective = objective;
  opt.detector.threads = threads;
  if (isa) {
    opt.detector.isa = *isa;
    opt.detector.isa_auto = false;
  } else {
    opt.detector.config = std::move(config);
  }
  if (progress) opt.detector.progress = make_progress_printer("significance");
  const auto r = stats::permutation_test_of<K>(d, opt);
  for (const std::string& line :
       stats::significance_report<K>(r, opt.permutations)) {
    std::printf("%s\n", line.c_str());
  }
  return 0;
}

int cmd_significance(const Args& a) {
  if (a.positional.empty() || a.has("help")) {
    std::printf("usage: trigen significance DATASET.tg[b] [--permutations N]\n"
                "  [--seed S] [--objective k2|mi|chi2] [--threads T]\n"
                "  [--order k] [--batch P] [--progress]\n"
                "--order k (default 3) tests the best order-k combination —\n"
                "any interaction order in [2, %u]; every null scan reuses\n"
                "the pinned ISA, tiling and scorer of the observed scan.\n"
                "--batch P controls the batched multi-phenotype engine: 0\n"
                "(default) scores observed + all nulls in one pass, 1 runs\n"
                "the legacy one-scan-per-permutation path, P >= 2 chunks the\n"
                "batch.  Every setting reports bit-identical results.\n",
                combinatorics::kMaxOrder);
    return a.has("help") ? 0 : 2;
  }
  const auto d = load(a.positional[0]);
  const auto permutations =
      static_cast<unsigned>(a.get_int("permutations", 19));
  const auto seed = static_cast<std::uint64_t>(a.get_int("seed", 7));
  const auto objective = parse_objective(a.get("objective", "k2"));
  const auto threads = static_cast<unsigned>(a.get_int("threads", 0));
  const auto batch = static_cast<unsigned>(a.get_int("batch", 0));
  const bool progress = a.has("progress");
  const auto isa = parse_isa_flag(a);
  core::ConfigResolver config = isa ? core::ConfigResolver{}
                                    : load_tuning_resolver(a);
  switch (a.get_int("order", 3)) {
    case 2: return cmd_significance_of<2>(d, permutations, seed, objective, threads, batch, progress, isa, std::move(config));
    case 3: return cmd_significance_of<3>(d, permutations, seed, objective, threads, batch, progress, isa, std::move(config));
    case 4: return cmd_significance_of<4>(d, permutations, seed, objective, threads, batch, progress, isa, std::move(config));
    case 5: return cmd_significance_of<5>(d, permutations, seed, objective, threads, batch, progress, isa, std::move(config));
    case 6: return cmd_significance_of<6>(d, permutations, seed, objective, threads, batch, progress, isa, std::move(config));
    default: break;
  }
  std::fprintf(stderr, "--order expects an interaction order in [2, %u]\n",
               combinatorics::kMaxOrder);
  return 2;
}

/// `trigen serve`: load the dataset once, service an async job queue.
int cmd_serve(const Args& a) {
  if (a.positional.empty() || a.has("help")) {
    std::puts(
        "usage: trigen serve DATASET.tg[b] [--threads T] [--chunk RANKS]\n"
        "  [--socket PATH] [--checkpoint-dir DIR]\n"
        "Loads the dataset (and per-order bitplanes) once and services a\n"
        "line-delimited job queue — scan/top-k at any order in [2, 6] and\n"
        "batched multi-phenotype significance tests — concurrently on one\n"
        "shared worker pool.  Results are bit-identical to the standalone\n"
        "scan/significance subcommands.  Default transport is\n"
        "stdin/stdout; --socket serves a Unix-domain socket instead.\n"
        "Requests (one per line):\n"
        "  scan <id> [order=K] [objective=k2|mi|chi2] [top=N]\n"
        "            [version=1..5] [range=FIRST:LAST]\n"
        "  significance <id> [order=K] [objective=k2|mi|chi2]\n"
        "            [permutations=N] [seed=S]\n"
        "  cancel <id> | status | ping | shutdown\n"
        "`shutdown` (and SIGINT/SIGTERM) drains in-flight work and writes\n"
        "one resumable checkpoint per incomplete scan job into\n"
        "--checkpoint-dir (serve-<id>.ckpt; resume with `trigen scan\n"
        "--checkpoint`), then exits 3; a session whose jobs all completed\n"
        "exits 0.");
    return a.has("help") ? 0 : 2;
  }
  serve::ServeOptions so;
  so.threads = static_cast<unsigned>(get_uint_or_die(a, "threads", 0));
  so.chunk = get_uint_or_die(a, "chunk", 0);
  so.checkpoint_dir = a.get("checkpoint-dir", ".");
  so.config = load_tuning_resolver(a);
  serve::ScanServer server(load(a.positional[0]), so);
  install_interrupt_handler();
#ifndef _WIN32
  // A client that disconnects mid-stream must not kill the server.
  std::signal(SIGPIPE, SIG_IGN);
#endif
  if (a.has("socket")) {
    return serve::run_socket_endpoint(server, a.get("socket", ""),
                                      g_interrupted);
  }
  return serve::run_pipe_endpoint(server, 0, 1, g_interrupted);
}

/// `trigen coordinate`: the fleet control plane — plan shards, lease them
/// to `trigen work` processes, survive their deaths, merge their results.
int cmd_coordinate(const Args& a) {
  if (a.positional.empty() || a.has("help")) {
    std::puts(
        "usage: trigen coordinate DATASET.tg[b] --out FILE.csv\n"
        "  [--socket PATH] [--spool DIR] [--order K] [--objective\n"
        "  k2|mi|chi2] [--top N] [--shards W] [--split even|block]\n"
        "  [--block-size B] [--lease-ms MS] [--checkpoint-every RANKS]\n"
        "  [--max-failures N] [--backoff-ms MS] [--backoff-cap-ms MS]\n"
        "Plans the order-K rank space into shards and leases them to\n"
        "`trigen work` processes (over --socket, or stdin/stdout for a\n"
        "single piped worker).  Workers heartbeat by renewing their lease\n"
        "after every durable checkpoint; a crashed or hung worker's lease\n"
        "expires, its checkpointed prefix is harvested, and only the\n"
        "remainder is re-leased (with capped exponential backoff; after\n"
        "--max-failures the range is quarantined as poison and the\n"
        "coordinator exits 3 instead of spinning).  Completed shards fold\n"
        "into a rolling merge tree in --spool; the final CSV is\n"
        "bit-identical to a single-process `trigen scan`.  The lease table\n"
        "persists atomically in --spool/fleet.state: rerunning the same\n"
        "command over the same spool resumes without double-counting.\n"
        "Exits 0 complete, 3 interrupted/stalled (resumable).");
    return a.has("help") ? 0 : 2;
  }
  fleet::CoordinatorOptions co;
  co.order = static_cast<unsigned>(get_uint_or_die(a, "order", 3));
  co.objective = parse_objective(a.get("objective", "k2"));
  co.top_k = get_uint_or_die(a, "top", 10);
  co.shards = static_cast<unsigned>(get_uint_or_die(a, "shards", 16));
  if (a.get("split", "even") == "block") {
    co.split = shard::SplitStrategy::kBlockAligned;
    co.block_size = get_uint_or_die(
        a, "block-size",
        core::autotune_tiling(core::detect_l1_config(),
                              core::kernel_vector_words(
                                  core::best_kernel_isa()))
            .bs);
  }
  co.spool = a.get("spool", ".");
  co.out = a.get("out", "");
  if (co.out.empty()) {
    std::fprintf(stderr, "coordinate: --out FILE.csv is required\n");
    return 2;
  }
  co.lease_ms = get_uint_or_die(a, "lease-ms", 10000);
  co.checkpoint_every = get_uint_or_die(a, "checkpoint-every", 0);
  co.max_failures =
      static_cast<std::uint32_t>(get_uint_or_die(a, "max-failures", 5));
  co.backoff_base_ms = get_uint_or_die(a, "backoff-ms", 250);
  co.backoff_cap_ms = get_uint_or_die(a, "backoff-cap-ms", 8000);
  co.log = [](const std::string& line) {
    std::fprintf(stderr, "coordinate: %s\n", line.c_str());
  };
  fleet::FleetCoordinator coordinator(load(a.positional[0]), co);
  install_interrupt_handler();
  if (a.has("socket")) {
    return serve::run_socket_endpoint(coordinator, a.get("socket", ""),
                                      g_interrupted);
  }
  return serve::run_pipe_endpoint(coordinator, 0, 1, g_interrupted);
}

/// `trigen work`: one fleet worker — lease, scan, renew, complete, repeat.
int cmd_work(const Args& a) {
  if (a.positional.empty() || a.has("help") || !a.has("socket")) {
    std::puts(
        "usage: trigen work DATASET.tg[b] --socket PATH [--id NAME]\n"
        "  [--threads T] [--version 1|2|3|4|5] [--isa NAME|auto]\n"
        "  [--profile FILE] [--no-tune] [--poll-ms MS] [--reconnect-ms MS]\n"
        "Joins the fleet at the `trigen coordinate` socket and scans\n"
        "leased shards until the fleet is drained (exit 0).  The dataset\n"
        "must be the one the coordinator planned (fingerprint-checked).\n"
        "Checkpoints after every chunk the coordinator sized, renewing the\n"
        "lease as a heartbeat; SIGINT/SIGTERM stops at the next checkpoint\n"
        "and hands the shard back (exit 3).  Exits 0 when the coordinator\n"
        "stays unreachable past --reconnect-ms (durable state carries on\n"
        "without this worker), 4 when only poison shards remain.");
    return a.has("help") ? 0 : 2;
  }
  fleet::WorkerOptions wo;
#ifndef _WIN32
  wo.id = a.get("id", "w" + std::to_string(static_cast<long>(::getpid())));
#else
  wo.id = a.get("id", "worker");
#endif
  wo.threads = static_cast<unsigned>(get_uint_or_die(a, "threads", 0));
  wo.version = parse_version(a);
  if (const auto isa = parse_isa_flag(a)) {
    wo.isa = *isa;
  } else {
    wo.config = load_tuning_resolver(a);
  }
  wo.poll_ms = get_uint_or_die(a, "poll-ms", 200);
  wo.reconnect_ms = get_uint_or_die(a, "reconnect-ms", 15000);
  wo.log = [&wo](const std::string& line) {
    std::fprintf(stderr, "work[%s]: %s\n", wo.id.c_str(), line.c_str());
  };
  wo.interrupted = &g_interrupted;
  install_interrupt_handler();
  const auto d = load(a.positional[0]);
  return fleet::run_worker(d, a.get("socket", ""), wo);
}

/// `trigen tune`: run the microbench grid, persist the per-host profile.
int cmd_tune(const Args& a) {
  if (a.has("help")) {
    std::puts(
        "usage: trigen tune [DATASET.tg[b]] [--out FILE] [--profile FILE]\n"
        "  [--samples N] [--orders 2,3,4] [--batch P] [--seed S]\n"
        "  [--quick] [--json]\n"
        "Measures every compiled kernel ISA and a tiling neighborhood\n"
        "around the analytic point on synthetic bitplanes, then writes the\n"
        "measured-fastest (ISA, tiling) per kernel family and order to a\n"
        "per-host profile that scan/scan2/significance/serve pick up\n"
        "automatically (or via --profile).  Passing a dataset sizes the\n"
        "measurement for its sample count (otherwise --samples, default\n"
        "4096).  --quick cuts repeats and the tiling neighborhood (smoke\n"
        "tests); --json prints the measured grid as JSON for the bench\n"
        "fold.  An existing same-host profile is extended, not replaced;\n"
        "results are bit-identical with or without a profile — only speed\n"
        "differs.");
    return 0;
  }
  tune::TuneOptions topt;
  topt.n_samples = get_uint_or_die(a, "samples", 4096);
  if (!a.positional.empty()) {
    topt.n_samples = load(a.positional[0]).num_samples();
  }
  topt.quick = a.has("quick");
  topt.seed = get_uint_or_die(a, "seed", 42);
  topt.batch_slots = get_uint_or_die(a, "batch", 8);
  if (a.has("orders")) {
    topt.orders.clear();
    const std::string spec = a.get("orders", "");
    std::size_t pos = 0;
    while (pos < spec.size()) {
      const std::size_t comma = spec.find(',', pos);
      const std::string tok = spec.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      char* end = nullptr;
      const long k = std::strtol(tok.c_str(), &end, 10);
      if (tok.empty() || end != tok.c_str() + tok.size() || k < 2 || k > 6) {
        std::fprintf(stderr,
                     "--orders expects a comma list of orders in [2, 6] "
                     "(got '%s')\n",
                     spec.c_str());
        return 2;
      }
      topt.orders.push_back(static_cast<unsigned>(k));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  topt.log = [](const std::string& line) {
    std::fprintf(stderr, "tune: %s\n", line.c_str());
  };

  const std::string out =
      a.has("out") ? a.get("out", "")
                   : a.has("profile") ? a.get("profile", "")
                                      : tune::default_profile_path();
  const tune::TuneReport report = tune::run_tuning_grid(topt);
  tune::TuningProfile profile = report.to_profile();
  // Extend an existing same-host profile (other buckets/orders keep their
  // entries); a foreign or unreadable file is simply replaced.
  struct stat st {};
  if (::stat(out.c_str(), &st) == 0) {
    try {
      tune::TuningProfile existing = tune::load_profile_for_this_host(out);
      existing.merge_from(profile);
      profile = std::move(existing);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "tune: replacing %s (%s)\n", out.c_str(),
                   e.what());
    }
  }
  tune::write_profile_file(out, profile);
  std::fprintf(stderr, "tune: wrote %s (%zu entries)\n", out.c_str(),
               profile.entries.size());
  if (a.has("json")) {
    std::printf("%s", tune::tune_report_json(report).c_str());
  }
  return 0;
}

int cmd_devices(const Args&) {
  TextTable cpu({"id", "device", "arch", "GHz", "cores", "vector", "vpopcnt"});
  for (const auto& d : gpusim::cpu_device_db()) {
    cpu.add_row({d.id, d.name, d.arch, TextTable::fmt(d.base_ghz, 1),
                 std::to_string(d.cores), std::to_string(d.vector_bits),
                 d.vector_popcnt ? "yes" : "no"});
  }
  std::printf("%s", cpu.to_ascii().c_str());
  TextTable gpu({"id", "device", "arch", "GHz", "CUs", "cores", "popcnt/CU"});
  for (const auto& d : gpusim::gpu_device_db()) {
    gpu.add_row({d.id, d.name, d.arch, TextTable::fmt(d.boost_ghz, 3),
                 std::to_string(d.compute_units),
                 std::to_string(d.stream_cores),
                 TextTable::fmt(d.popcnt_per_cu_cycle, 0)});
  }
  std::printf("%s", gpu.to_ascii().c_str());
  return 0;
}

int usage() {
  std::puts(
      "trigen — exhaustive gene interaction detection (IPDPS'22 reproduction)\n"
      "usage: trigen <generate|info|convert|scan|scan2|merge|baseline|significance|serve|coordinate|work|tune|devices> ...\n"
      "  generate OUT.tg[b] --snps M --samples N [--seed S] [--maf-min F]\n"
      "    [--maf-max F] [--prevalence F] [--plant x,y,z --model M\n"
      "    --baseline F --effect F]\n"
      "  info DATASET.tg[b]\n"
      "  convert IN.tg[b] OUT.tg[b]\n"
      "  scan|scan2 DATASET.tg[b] [--order k] [--objective k2|mi|chi2]\n"
      "    [--top K] [--threads T] [--version 1|2|3|4|5]\n"
      "    [--range FIRST:LAST] [--progress]\n"
      "    [--shards W --shard I [--split even|block]]\n"
      "    [--out FILE.shard] [--checkpoint FILE.ckpt]\n"
      "    [--checkpoint-every RANKS] [--stop-after RANKS]\n"
      "  merge SHARD_FILE... [--partial] [--out FILE.shard]\n"
      "  baseline DATASET.tg[b] [--top K] [--threads T]\n"
      "  significance DATASET.tg[b] [--permutations N] [--seed S]\n"
      "    [--objective k2|mi|chi2] [--threads T] [--order k]\n"
      "    [--batch P] [--progress]\n"
      "  serve DATASET.tg[b] [--threads T] [--chunk RANKS] [--socket PATH]\n"
      "    [--checkpoint-dir DIR]\n"
      "  coordinate DATASET.tg[b] --out FILE.csv [--socket PATH]\n"
      "    [--spool DIR] [--order k] [--shards W] [--lease-ms MS] ...\n"
      "  work DATASET.tg[b] --socket PATH [--id NAME] [--threads T] ...\n"
      "  tune [DATASET.tg[b]] [--out FILE] [--samples N] [--orders 2,3,4]\n"
      "    [--quick] [--json]\n"
      "  devices\n"
      "scan/scan2/significance/serve also take --isa NAME|auto (or\n"
      "$TRIGEN_ISA), --profile FILE and --no-tune: a `trigen tune` profile\n"
      "picks the measured-fastest kernel configuration per host (results\n"
      "are bit-identical; only speed differs).\n"
      "Run `trigen <subcommand> --help` for details.");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args args = Args::parse(argc, argv, 2, cli_switches());
  try {
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "info") return cmd_info(args);
    if (cmd == "convert") return cmd_convert(args);
    if (cmd == "scan") return cmd_scan(args);
    if (cmd == "scan2") return cmd_scan2(args);
    if (cmd == "merge") return cmd_merge(args);
    if (cmd == "baseline") return cmd_baseline(args);
    if (cmd == "significance") return cmd_significance(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "coordinate") return cmd_coordinate(args);
    if (cmd == "work") return cmd_work(args);
    if (cmd == "tune") return cmd_tune(args);
    if (cmd == "devices") return cmd_devices(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trigen %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  return usage();
}
