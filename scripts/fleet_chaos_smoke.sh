#!/usr/bin/env bash
# Chaos smoke of the fleet orchestration layer (`trigen coordinate` +
# `trigen work`) through the CLI binary, Unix-socket transport:
#
#   1. a coordinator plans 12 shards; four single-thread workers join and
#      scan on the deliberately slow naive kernel (--version 1);
#   2. two workers are SIGKILLed mid-shard — their leases expire, their
#      durable checkpoint prefixes are harvested, and only the remainders
#      are re-leased;
#   3. a third worker is SIGSTOPped into a straggler; its lease expires
#      and is reassigned, and on SIGCONT its renewal is fenced with
#      `lease-lost` (the straggler stops cleanly and re-leases);
#   4. the coordinator itself is SIGKILLed and relaunched over the same
#      spool; it resumes from the fsync-atomic lease table without
#      double-counting and the surviving workers reconnect;
#   5. the final CSV must be byte-identical to a single-process scan.
#
# usage: scripts/fleet_chaos_smoke.sh path/to/trigen
set -euo pipefail

TRIGEN=${1:?usage: fleet_chaos_smoke.sh path/to/trigen}
TRIGEN=$(realpath "$TRIGEN")
workdir=$(mktemp -d)
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do
    kill -CONT "$p" 2>/dev/null || true
    kill -KILL "$p" 2>/dev/null || true
  done
  rm -rf "$workdir"
}
trap cleanup EXIT
cd "$workdir"

"$TRIGEN" generate d.tg --snps 200 --samples 1536 --seed 21 \
  --plant 5,19,37 --model xor3 --effect 0.8
"$TRIGEN" scan d.tg --top 16 | grep -v '^#' > ref.csv

coordinate() { # $1 = log file
  # lease-ms is sized for a loaded CI box: a checkpoint chunk is ~10ms of
  # scanning on an idle machine, so even a 100x-oversubscribed worker
  # renews well inside the lease.  max-failures stays far above anything
  # spurious expiries could reach — quarantine must never fire here, or
  # workers exit 4 and the fleet stalls instead of converging.
  "$TRIGEN" coordinate d.tg --out fleet.csv --socket fleet.sock \
    --spool spool --shards 12 --top 16 --lease-ms 2000 \
    --checkpoint-every 1000 --max-failures 50 \
    --backoff-ms 50 --backoff-cap-ms 200 \
    2>> "$1" &
}

work() { # $1 = worker name
  # reconnect-ms must cover the coordinator kill->relaunch gap below
  # (well under a second) but also bounds the benign tail where a worker
  # sleeping on a `wait` hint outlives the finished coordinator.
  "$TRIGEN" work d.tg --socket fleet.sock --id "$1" --threads 1 \
    --version 1 --reconnect-ms 5000 2>> "$1.log" &
}

wait_for() { # $1 = min count, $2 = grep pattern, $3 = file
  for _ in $(seq 600); do
    [ "$(grep -c "$2" "$3" 2>/dev/null || true)" -ge "$1" ] && return 0
    sleep 0.05
  done
  echo "timed out waiting for $1 x '$2' in $3" >&2
  cat "$3" >&2 || true
  return 1
}

# --- 1: coordinator + four workers --------------------------------------
coordinate coord1.log
coord_pid=$!; pids+=("$coord_pid")
work wa; wa_pid=$!; pids+=("$wa_pid")
work wb; wb_pid=$!; pids+=("$wb_pid")
work wc; wc_pid=$!; pids+=("$wc_pid")
work wd; wd_pid=$!; pids+=("$wd_pid")
wait_for 4 'lease granted' coord1.log

# --- 2+3: kill two workers mid-shard, stall a third ---------------------
sleep 0.3   # well past the first checkpoints, well short of a shard
# A worker may straddle two shards at kill time; the chaos only needs the
# signal delivered, not a particular victim state.
kill -KILL "$wa_pid" "$wb_pid" 2>/dev/null || true
kill -STOP "$wc_pid" 2>/dev/null || true
wait_for 3 'lease expired' coord1.log
grep -q 'harvested checkpoint prefix' coord1.log \
  || { echo "no checkpoint prefix was harvested from the dead workers" >&2
       cat coord1.log >&2; exit 1; }
kill -CONT "$wc_pid" 2>/dev/null || true
wait_for 1 'lease lost' wc.log

# --- 4: kill the coordinator and resume from the durable lease table ----
kill -KILL "$coord_pid" 2>/dev/null || true
wait "$coord_pid" 2>/dev/null || true
coordinate coord2.log
coord_pid=$!; pids+=("$coord_pid")
wait_for 1 'resume:' coord2.log

# --- 5: the fleet drains and the answer is exact ------------------------
rc=0; wait "$wc_pid" || rc=$?
[ "$rc" -eq 0 ] || { echo "straggler worker wc exited $rc" >&2
                     cat wc.log >&2; exit 1; }
rc=0; wait "$wd_pid" || rc=$?
[ "$rc" -eq 0 ] || { echo "surviving worker wd exited $rc" >&2
                     cat wd.log >&2; exit 1; }
rc=0; wait "$coord_pid" || rc=$?
[ "$rc" -eq 0 ] || { echo "resumed coordinator exited $rc" >&2
                     cat coord2.log >&2; exit 1; }

[ -s fleet.csv ] || { echo "coordinator wrote no fleet.csv" >&2; exit 1; }
diff fleet.csv ref.csv \
  || { echo "fleet CSV differs from the single-process scan" >&2; exit 1; }

echo "fleet chaos smoke: 2 kills, 1 straggler, 1 coordinator restart — final CSV bit-identical"
