#!/usr/bin/env bash
# End-to-end smoke of the sharded scan workflow through the trigen binary:
# generate -> 4x `scan --shard` (one worker killed partway and resumed from
# its checkpoint) -> `merge` -> diff against the unsharded scan.  The CSV
# sections (everything but the '#' comment lines, which carry timings) must
# be byte-identical.
#
# usage: scripts/shard_smoke.sh path/to/trigen
set -euo pipefail

TRIGEN=${1:?usage: shard_smoke.sh path/to/trigen}
TRIGEN=$(realpath "$TRIGEN")   # survive the cd below when given a relative path
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cd "$workdir"

"$TRIGEN" generate d.tg --snps 64 --samples 256 --seed 9 \
  --plant 3,17,41 --model xor3 --effect 0.8

# Reference: one unsharded scan.
"$TRIGEN" scan d.tg --top 12 --threads 2 > full.txt

# 4-shard plan; worker 2 is killed after ~1000 of its ~10k ranks...
for i in 0 1 3; do
  "$TRIGEN" scan d.tg --shards 4 --shard "$i" --top 12 --threads 2 \
    --out "s$i.shard" > /dev/null
done
rc=0
"$TRIGEN" scan d.tg --shards 4 --shard 2 --top 12 --threads 2 \
  --out s2.shard --checkpoint s2.ckpt --checkpoint-every 500 \
  --stop-after 1000 > /dev/null || rc=$?
if [ "$rc" -ne 3 ]; then
  echo "expected the killed shard to exit with code 3, got $rc" >&2
  exit 1
fi
if [ -e s2.shard ]; then
  echo "killed shard must not leave a result file" >&2
  exit 1
fi

# ...and a fresh invocation resumes from the checkpoint instead of
# rescanning.
"$TRIGEN" scan d.tg --shards 4 --shard 2 --top 12 --threads 2 \
  --out s2.shard --checkpoint s2.ckpt --checkpoint-every 500 \
  | grep -q '^# resumed from checkpoint' \
  || { echo "resume did not use the checkpoint" >&2; exit 1; }

"$TRIGEN" merge s0.shard s1.shard s2.shard s3.shard > merged.txt

if ! diff <(grep -v '^#' full.txt) <(grep -v '^#' merged.txt); then
  echo "merged shard results differ from the unsharded scan" >&2
  exit 1
fi

# Two-level tree merge: two contiguous intermediate merges, then the
# final full-coverage merge — must equal the single-level merge.
"$TRIGEN" merge --partial s0.shard s1.shard --out left.shard > /dev/null
"$TRIGEN" merge --partial s2.shard s3.shard --out right.shard > /dev/null
"$TRIGEN" merge left.shard right.shard > tree.txt
if ! diff <(grep -v '^#' merged.txt) <(grep -v '^#' tree.txt); then
  echo "tree merge differs from the single-level merge" >&2
  exit 1
fi

# A deliberately gapped merge must be refused.
if "$TRIGEN" merge s0.shard s2.shard s3.shard > /dev/null 2> err.txt; then
  echo "gapped merge unexpectedly succeeded" >&2
  exit 1
fi
grep -q 'coverage gap' err.txt \
  || { echo "gapped merge failed without naming the gap" >&2; exit 1; }

# --- real-signal leg: a SIGINT (not --stop-after) must take the same
# "drain to the next checkpoint boundary, exit 3, resumable" path.  The
# interrupted run pins the slow naive single-thread rung so the signal
# reliably lands mid-scan; the resume may use the fast default rung — the
# checkpoint is version-agnostic and the merged output must still be
# byte-identical to a fresh full scan.
"$TRIGEN" generate slow.tg --snps 160 --samples 512 --seed 11 \
  --plant 9,75,140 --model xor3 --effect 0.8
"$TRIGEN" scan slow.tg --top 12 > slow_full.txt

"$TRIGEN" scan slow.tg --version 1 --threads 1 --top 12 \
  --checkpoint int.ckpt --checkpoint-every 20000 > int.txt 2>&1 &
scan_pid=$!
# Interrupt as soon as the first checkpoint proves the scan is mid-flight.
for _ in $(seq 600); do
  [ -e int.ckpt ] && break
  sleep 0.05
done
[ -e int.ckpt ] || { echo "no checkpoint appeared before the interrupt" >&2; exit 1; }
kill -INT "$scan_pid"
rc=0
wait "$scan_pid" || rc=$?
if [ "$rc" -ne 3 ]; then
  echo "expected SIGINT to exit with code 3, got $rc" >&2
  exit 1
fi
grep -q '^# interrupted:' int.txt \
  || { echo "interrupted scan did not report its checkpoint" >&2; exit 1; }

"$TRIGEN" scan slow.tg --top 12 --checkpoint int.ckpt > int_resumed.txt
grep -q '^# resumed from checkpoint' int_resumed.txt \
  || { echo "post-SIGINT resume did not use the checkpoint" >&2; exit 1; }
if ! diff <(grep -v '^#' slow_full.txt) <(grep -v '^#' int_resumed.txt); then
  echo "post-SIGINT resume differs from the uninterrupted scan" >&2
  exit 1
fi

echo "shard smoke: kill/resume/merge reproduces the full scan exactly"
