#!/usr/bin/env bash
# End-to-end smoke of the order-generic sharded scan workflow through the
# trigen binary, at every CLI-reachable rung of the order ladder: for each
# interaction order k in {2, 3, 4}: generate -> 4x `scan --shard` (one
# worker killed partway and resumed from its checkpoint) -> `merge` ->
# diff against the unsharded scan.  The CSV sections (everything but the
# '#' comment lines, which carry timings) must be byte-identical.  Also
# checks that `merge` refuses to mix interaction orders.
#
# usage: scripts/order_smoke.sh path/to/trigen
set -euo pipefail

TRIGEN=${1:?usage: order_smoke.sh path/to/trigen}
TRIGEN=$(realpath "$TRIGEN")   # survive the cd below when given a relative path
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cd "$workdir"

# One dataset for every order.  C(48,2) = 1128, C(48,3) = 17296,
# C(48,4) = 194580; each of 4 shards covers a quarter of that space.
"$TRIGEN" generate d.tg --snps 48 --samples 256 --seed 11 \
  --plant 9,33,47 --model xor3 --effect 0.8

# smoke_order ORDER SCAN_ARGS STOP_AFTER CKPT_EVERY
#   Runs the kill/resume/merge battery at one interaction order.  The
#   shard files are left behind (s<ORDER>_*.shard) for the mixed-order
#   check below.
smoke_order() {
  local k=$1 scan=$2 stop=$3 every=$4

  # Reference: one unsharded scan.
  # shellcheck disable=SC2086  # $scan is intentionally word-split
  "$TRIGEN" $scan d.tg --top 12 --threads 2 > "full$k.txt"

  # 4-shard plan; worker 2 is killed partway through its range...
  for i in 0 1 3; do
    "$TRIGEN" $scan d.tg --shards 4 --shard "$i" --top 12 --threads 2 \
      --out "s${k}_$i.shard" > /dev/null
  done
  local rc=0
  "$TRIGEN" $scan d.tg --shards 4 --shard 2 --top 12 --threads 2 \
    --out "s${k}_2.shard" --checkpoint "s${k}_2.ckpt" \
    --checkpoint-every "$every" --stop-after "$stop" > /dev/null || rc=$?
  if [ "$rc" -ne 3 ]; then
    echo "order $k: expected the killed shard to exit with code 3, got $rc" >&2
    exit 1
  fi
  if [ -e "s${k}_2.shard" ]; then
    echo "order $k: killed shard must not leave a result file" >&2
    exit 1
  fi

  # ...and a fresh invocation resumes from the checkpoint instead of
  # rescanning.
  "$TRIGEN" $scan d.tg --shards 4 --shard 2 --top 12 --threads 2 \
    --out "s${k}_2.shard" --checkpoint "s${k}_2.ckpt" \
    --checkpoint-every "$every" \
    | grep -q '^# resumed from checkpoint' \
    || { echo "order $k: resume did not use the checkpoint" >&2; exit 1; }

  "$TRIGEN" merge "s${k}_0.shard" "s${k}_1.shard" "s${k}_2.shard" \
    "s${k}_3.shard" > "merged$k.txt"
  if ! diff <(grep -v '^#' "full$k.txt") <(grep -v '^#' "merged$k.txt"); then
    echo "order $k: merged shard results differ from the unsharded scan" >&2
    exit 1
  fi

  # Two-level tree merge: two contiguous intermediate merges, then the
  # final full-coverage merge — must equal the single-level merge.
  "$TRIGEN" merge --partial "s${k}_0.shard" "s${k}_1.shard" \
    --out "left$k.shard" > /dev/null
  "$TRIGEN" merge --partial "s${k}_2.shard" "s${k}_3.shard" \
    --out "right$k.shard" > /dev/null
  "$TRIGEN" merge "left$k.shard" "right$k.shard" > "tree$k.txt"
  if ! diff <(grep -v '^#' "merged$k.txt") <(grep -v '^#' "tree$k.txt"); then
    echo "order $k: tree merge differs from the single-level merge" >&2
    exit 1
  fi

  echo "order $k: kill/resume/merge reproduces the full scan exactly"
}

smoke_order 2 "scan2"          150   75
smoke_order 3 "scan"           2000  1000
smoke_order 4 "scan --order 4" 20000 10000

# Mixing interaction orders must be refused with a precise error, for
# every ordered pair of orders.
for a in 2 3 4; do
  for b in 2 3 4; do
    [ "$a" = "$b" ] && continue
    if "$TRIGEN" merge "s${a}_0.shard" "s${b}_1.shard" \
        > /dev/null 2> err.txt; then
      echo "order $a+$b: mixed-order merge unexpectedly succeeded" >&2
      exit 1
    fi
    grep -q 'order mismatch' err.txt \
      || { echo "order $a+$b: mixed-order merge failed without naming the order" >&2
           exit 1; }
  done
done

echo "order smoke: orders 2, 3 and 4 shard, resume and merge exactly"
