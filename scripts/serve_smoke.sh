#!/usr/bin/env bash
# End-to-end smoke of the resident scan server (`trigen serve`) through the
# CLI binary, pipe mode:
#
#   1. one session runs an order-3 scan, a batched order-2 significance
#      test and an order-2 scan CONCURRENTLY; each job's `data` payload
#      must be byte-identical to the standalone scan/significance run;
#   2. a malformed-request battery gets one `error` line each and must not
#      disturb the jobs running alongside it;
#   3. `shutdown` mid-job exits 3 and leaves a resumable checkpoint that
#      `trigen scan --checkpoint` completes to the exact full-scan result;
#   4. a real SIGINT mid-job takes the same checkpoint path.
#
# usage: scripts/serve_smoke.sh path/to/trigen
set -euo pipefail

TRIGEN=${1:?usage: serve_smoke.sh path/to/trigen}
TRIGEN=$(realpath "$TRIGEN")
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cd "$workdir"

"$TRIGEN" generate d.tg --snps 48 --samples 256 --seed 21 \
  --plant 5,19,37 --model xor3 --effect 0.8

# --- 1+2: concurrent jobs + malformed battery in one session ------------
{
  echo 'ping'
  echo 'scan j1 order=3 top=8'
  echo 'significance j2 order=2 permutations=9 seed=5'
  echo 'bogus request'
  echo 'scan j1 order=2'                 # duplicate live id
  echo 'scan j4 order=9'                 # bad order
  echo 'scan j5 top=0'                   # bad top
  echo 'significance j6 permutations=-2' # negative count
  echo 'cancel ghost'                    # unknown job
  echo 'scan j3 order=2 top=8'
} | "$TRIGEN" serve d.tg --threads 4 > session.out || rc=$?
rc=${rc:-0}
if [ "$rc" -ne 0 ]; then
  echo "clean serve session expected exit 0, got $rc" >&2
  exit 1
fi

errors=$(grep -c '^error ' session.out)
if [ "$errors" -ne 6 ]; then
  echo "expected 6 error lines for the malformed battery, got $errors" >&2
  grep '^error ' session.out >&2
  exit 1
fi
for id in j1 j2 j3; do
  grep -q "^done $id " session.out \
    || { echo "job $id did not complete" >&2; exit 1; }
done

sed -n 's/^data j1 //p' session.out > j1.csv
sed -n 's/^data j2 //p' session.out > j2.txt
sed -n 's/^data j3 //p' session.out > j3.csv

"$TRIGEN" scan d.tg --top 8 | grep -v '^#' > ref1.csv
"$TRIGEN" significance d.tg --order 2 --permutations 9 --seed 5 > ref2.txt
"$TRIGEN" scan2 d.tg --top 8 | grep -v '^#' > ref3.csv

diff j1.csv ref1.csv \
  || { echo "serve order-3 scan differs from standalone scan" >&2; exit 1; }
diff j2.txt ref2.txt \
  || { echo "serve significance differs from standalone run" >&2; exit 1; }
diff j3.csv ref3.csv \
  || { echo "serve order-2 scan differs from standalone scan2" >&2; exit 1; }

# --- 3: shutdown mid-job checkpoints and resumes exactly ----------------
"$TRIGEN" generate slow.tg --snps 200 --samples 512 --seed 31 \
  --plant 9,75,140 --model xor3 --effect 0.8
"$TRIGEN" scan slow.tg > slow_full.txt

# The job pins the slow naive rung on a single worker (several seconds of
# work); shutdown arrives while it is mid-scan.
rc=0
{
  echo 'scan s1 order=3 version=1'
  sleep 1
  echo 'shutdown'
} | "$TRIGEN" serve slow.tg --threads 1 > shut.out || rc=$?
if [ "$rc" -ne 3 ]; then
  echo "shutdown mid-job expected exit 3, got $rc" >&2
  cat shut.out >&2
  exit 1
fi
grep -q '^event s1 checkpoint ' shut.out \
  || { echo "shutdown did not checkpoint the incomplete job" >&2; exit 1; }
[ -e serve-s1.ckpt ] \
  || { echo "checkpoint file serve-s1.ckpt missing" >&2; exit 1; }

"$TRIGEN" scan slow.tg --checkpoint serve-s1.ckpt > resumed.txt
grep -q '^# resumed from checkpoint' resumed.txt \
  || { echo "resume did not use the serve checkpoint" >&2; exit 1; }
diff <(grep -v '^#' slow_full.txt) <(grep -v '^#' resumed.txt) \
  || { echo "resumed serve checkpoint differs from the full scan" >&2; exit 1; }

# --- 4: a real SIGINT takes the same checkpoint path --------------------
rm -f serve-s2.ckpt
mkfifo ctl
"$TRIGEN" serve slow.tg --threads 2 < ctl > int.out 2>&1 &
serve_pid=$!
exec 9> ctl   # hold the fifo open so EOF never arrives
echo 'scan s2 order=3 version=1' >&9
# Interrupt once the job is demonstrably running.
for _ in $(seq 600); do
  grep -q '^event s2 progress ' int.out 2>/dev/null && break
  sleep 0.05
done
grep -q '^event s2 progress ' int.out \
  || { echo "serve job never reported progress" >&2; exit 1; }
kill -INT "$serve_pid"
rc=0
wait "$serve_pid" || rc=$?
exec 9>&-
if [ "$rc" -ne 3 ]; then
  echo "SIGINT on serve expected exit 3, got $rc" >&2
  cat int.out >&2
  exit 1
fi
[ -e serve-s2.ckpt ] \
  || { echo "SIGINT did not leave serve-s2.ckpt" >&2; exit 1; }
"$TRIGEN" scan slow.tg --checkpoint serve-s2.ckpt > int_resumed.txt
diff <(grep -v '^#' slow_full.txt) <(grep -v '^#' int_resumed.txt) \
  || { echo "post-SIGINT serve resume differs from the full scan" >&2; exit 1; }

echo "serve smoke: concurrent jobs bit-identical, shutdown and SIGINT resumable"
