#!/usr/bin/env bash
# run_benches.sh — populate the repo's CPU performance trajectory.
#
# Runs the fig3 harness (V4 + V5 per ISA, with the V5-vs-V4 speedup) and,
# when built, the google-benchmark kernel ablation with
# --benchmark_format=json, and folds everything into one JSON file keyed
# by bench name with ns/op and triplets/s (kernel-level entries carry
# words/s and elements/s instead):
#
#   usage: scripts/run_benches.sh [BUILD_DIR] [OUT.json] [--quick]
#
# Defaults: BUILD_DIR=build, OUT=BENCH_cpu.json (repo root).  --quick
# shrinks the dataset grid for CI; the checked-in BENCH_cpu.json is the CI
# Release job's quick run.
set -euo pipefail

BUILD_DIR=build
OUT=BENCH_cpu.json
QUICK=""
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK="--quick" ;;
    *) if [ "$BUILD_DIR" = build ] && [ -d "$arg" ]; then BUILD_DIR="$arg"
       else OUT="$arg"; fi ;;
  esac
done

FIG3="$BUILD_DIR/bench/bench_fig3_cpu"
ABL="$BUILD_DIR/bench/bench_ablation_kernels"
if [ ! -x "$FIG3" ]; then
  echo "error: $FIG3 not built (configure with -DTRIGEN_BUILD_BENCH=ON)" >&2
  exit 1
fi

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

echo "== fig3 CPU bench ($( [ -n "$QUICK" ] && echo quick || echo full ) mode)"
"$FIG3" $QUICK --json "$tmpdir/fig3.json"

have_abl=0
if [ -x "$ABL" ]; then
  echo "== kernel ablation bench (google-benchmark)"
  # 0.05s min time keeps the quick CI run short; the counters are rates,
  # unaffected by the shortened measurement window.
  min_time=""
  [ -n "$QUICK" ] && min_time="--benchmark_min_time=0.05"
  if "$ABL" $min_time --benchmark_format=json > "$tmpdir/abl.json"; then
    have_abl=1
  else
    echo "warning: ablation bench failed; continuing with fig3 only" >&2
  fi
fi

if command -v python3 > /dev/null; then
  python3 - "$tmpdir/fig3.json" "$tmpdir/abl.json" "$have_abl" "$OUT" <<'PYEOF'
import json, sys
fig3_path, abl_path, have_abl, out_path = sys.argv[1:5]
merged = json.load(open(fig3_path))
if have_abl == "1":
    for b in json.load(open(abl_path)).get("benchmarks", []):
        name = "ablation_kernels/" + b["name"]
        entry = {"ns_per_op": round(float(b.get("real_time", 0.0)), 3)}
        for counter in ("words/s", "elements/s"):
            if counter in b:
                entry[counter.replace("/s", "_per_s")] = round(float(b[counter]), 1)
        merged[name] = entry
json.dump(merged, open(out_path, "w"), indent=1, sort_keys=True)
open(out_path, "a").write("\n")
print(f"wrote {out_path} ({len(merged)} entries)")
PYEOF
else
  # No python3: ship the fig3 measurements unmerged.
  cp "$tmpdir/fig3.json" "$OUT"
  echo "wrote $OUT (fig3 only; python3 unavailable for the ablation merge)"
fi
