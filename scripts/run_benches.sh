#!/usr/bin/env bash
# run_benches.sh — populate and regression-gate the repo's CPU performance
# trajectory.
#
# Runs the fig3 harness (V4 + V5 per ISA at k=3 and k=4, with the V5-vs-V4
# speedups) and, when built, the google-benchmark kernel ablation with
# --benchmark_format=json, and folds everything into one JSON file keyed
# by bench name with ns/op and triplets/s (kernel-level entries carry
# words/s and elements/s instead):
#
#   usage: scripts/run_benches.sh [BUILD_DIR] [OUT.json] [--quick] [--update]
#
# Defaults: BUILD_DIR=build, OUT=BENCH_cpu.json (repo root).  --quick
# shrinks the dataset grid for CI; the checked-in BENCH_cpu.json is the CI
# Release job's quick run.
#
# Regression gate: when OUT already exists, fresh throughput is compared
# per entry against it before anything is written.  An entry regressing by
# more than 15% fails the run in non-quick mode (quick mode only warns —
# CI machines are too noisy for a hard gate).  --update skips the gate and
# re-baselines: the fresh results overwrite OUT unconditionally.
set -euo pipefail

BUILD_DIR=build
OUT=BENCH_cpu.json
QUICK=""
UPDATE=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK="--quick" ;;
    --update) UPDATE=1 ;;
    *) if [ "$BUILD_DIR" = build ] && [ -d "$arg" ]; then BUILD_DIR="$arg"
       else OUT="$arg"; fi ;;
  esac
done

FIG3="$BUILD_DIR/bench/bench_fig3_cpu"
ABL="$BUILD_DIR/bench/bench_ablation_kernels"
if [ ! -x "$FIG3" ]; then
  echo "error: $FIG3 not built (configure with -DTRIGEN_BUILD_BENCH=ON)" >&2
  exit 1
fi

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

echo "== fig3 CPU bench ($( [ -n "$QUICK" ] && echo quick || echo full ) mode)"
"$FIG3" $QUICK --json "$tmpdir/fig3.json"

# Autotuner fold: run the measurement grid through the CLI and keep the
# tuner-chosen vs analytic-chosen throughput per kernel family in the
# trajectory ("tune/<family>/order<K>/w<bucket>" entries; their
# elements_per_s and speedup fall under the same regression gate as every
# other rate).  speedup >= 1.0 certifies the measured pick is no slower
# than the analytic model's.
TRIGEN_BIN="$BUILD_DIR/tools/trigen"
have_tune=0
if [ -x "$TRIGEN_BIN" ]; then
  echo "== autotuner grid (trigen tune)"
  tune_args="--samples 1024 --orders 2,3,4"
  [ -n "$QUICK" ] && tune_args="--quick --samples 512 --orders 2,3"
  # shellcheck disable=SC2086  # $tune_args is intentionally word-split
  if "$TRIGEN_BIN" tune $tune_args --out "$tmpdir/tune.profile" --json \
      > "$tmpdir/tune.json" 2> /dev/null; then
    have_tune=1
  else
    echo "warning: trigen tune failed; continuing without the tune fold" >&2
  fi
else
  echo "note: $TRIGEN_BIN not built; skipping the tune fold" >&2
fi

have_abl=0
if [ -x "$ABL" ]; then
  echo "== kernel ablation bench (google-benchmark)"
  # 0.05s min time keeps the quick CI run short; the counters are rates,
  # unaffected by the shortened measurement window.
  min_time=""
  [ -n "$QUICK" ] && min_time="--benchmark_min_time=0.05"
  if "$ABL" $min_time --benchmark_format=json > "$tmpdir/abl.json"; then
    have_abl=1
  else
    echo "warning: ablation bench failed; continuing with fig3 only" >&2
  fi
fi

if ! command -v python3 > /dev/null; then
  # No python3: ship the fig3 measurements unmerged, no gate.
  cp "$tmpdir/fig3.json" "$OUT"
  echo "wrote $OUT (fig3 only; python3 unavailable for merge and gate)"
  exit 0
fi

# Merge fig3 + ablation into one trajectory file, then gate it against the
# previous baseline (if any) before replacing it.
baseline=""
if [ -f "$OUT" ] && [ "$UPDATE" -eq 0 ]; then
  baseline="$OUT"
fi
strict=1
[ -n "$QUICK" ] && strict=0
python3 - "$tmpdir/fig3.json" "$tmpdir/abl.json" "$have_abl" "$OUT" \
    "$baseline" "$strict" "$tmpdir/tune.json" "$have_tune" <<'PYEOF'
import json, sys
(fig3_path, abl_path, have_abl, out_path, baseline_path, strict,
 tune_path, have_tune) = sys.argv[1:9]
merged = json.load(open(fig3_path))
if have_abl == "1":
    for b in json.load(open(abl_path)).get("benchmarks", []):
        name = "ablation_kernels/" + b["name"]
        entry = {"ns_per_op": round(float(b.get("real_time", 0.0)), 3)}
        for counter in ("words/s", "elements/s"):
            if counter in b:
                entry[counter.replace("/s", "_per_s")] = round(float(b[counter]), 1)
        merged[name] = entry
if have_tune == "1":
    # Already keyed "tune/<family>/order<K>/w<bucket>" with elements_per_s
    # and speedup (tuner-best over analytic-model pick) — merge verbatim.
    merged.update(json.load(open(tune_path)))

# Regression gate: any throughput-like counter (higher is better) that
# dropped more than 15% against the baseline is a regression.  Speedup
# entries are ratios of two fresh measurements and gate the V5-vs-V4 win
# itself.  Entries present in only one of the two files never gate — the
# bench set is allowed to grow and shrink.
THRESHOLD = 0.85
RATE_KEYS = ("triplets_per_s", "elements_per_s", "words_per_s", "speedup")
regressions = []
if baseline_path:
    baseline = json.load(open(baseline_path))
    for name, fresh in sorted(merged.items()):
        base = baseline.get(name)
        if base is None:
            continue
        for key in RATE_KEYS:
            b, f = base.get(key), fresh.get(key)
            if b and f and f < b * THRESHOLD:
                regressions.append(f"{name} [{key}]: {b:.4g} -> {f:.4g} "
                                   f"({100 * (1 - f / b):.1f}% slower)")
for r in regressions:
    print(f"PERF REGRESSION: {r}", file=sys.stderr)
if regressions and strict == "1":
    print(f"error: {len(regressions)} entr{'y' if len(regressions) == 1 else 'ies'} "
          f"regressed >15% vs {baseline_path}; rerun with --update to "
          "re-baseline if intentional", file=sys.stderr)
    sys.exit(1)
if regressions:
    print(f"warning: {len(regressions)} regression(s) ignored in quick mode",
          file=sys.stderr)

json.dump(merged, open(out_path, "w"), indent=1, sort_keys=True)
open(out_path, "a").write("\n")
print(f"wrote {out_path} ({len(merged)} entries)")
PYEOF
