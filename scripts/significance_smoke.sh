#!/usr/bin/env bash
# End-to-end smoke of the batched permutation test through the trigen
# binary: on a small fixed-seed dataset, `significance` must report the
# SAME observed best, null range and empirical p-value from the batched
# path (--batch 0, the default), the legacy sequential path (--batch 1)
# and a chunked batch (--batch 5) — at orders 2 and 3.  The batched engine
# is bit-identical to sequential by construction; this checks the claim
# end to end through the CLI, dataset IO and the report formatting.
#
# usage: scripts/significance_smoke.sh path/to/trigen
set -euo pipefail

TRIGEN=${1:?usage: significance_smoke.sh path/to/trigen}
TRIGEN=$(realpath "$TRIGEN")
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cd "$workdir"

"$TRIGEN" generate d.tg --snps 24 --samples 300 --seed 13 \
  --plant 3,11,19 --model xor3 --effect 0.8

for k in 2 3; do
  "$TRIGEN" significance d.tg --order "$k" --permutations 16 --seed 21 \
    --threads 2 > "batched$k.txt"
  "$TRIGEN" significance d.tg --order "$k" --permutations 16 --seed 21 \
    --threads 2 --batch 1 > "sequential$k.txt"
  "$TRIGEN" significance d.tg --order "$k" --permutations 16 --seed 21 \
    --threads 2 --batch 5 > "chunked$k.txt"

  if ! diff "batched$k.txt" "sequential$k.txt"; then
    echo "order $k: batched and sequential significance reports differ" >&2
    exit 1
  fi
  if ! diff "batched$k.txt" "chunked$k.txt"; then
    echo "order $k: chunked-batch significance report differs" >&2
    exit 1
  fi
  grep -q '^empirical p-value: ' "batched$k.txt" \
    || { echo "order $k: report is missing the p-value line" >&2; exit 1; }
  echo "order $k: batched, chunked and sequential permutation tests agree"
done

echo "significance smoke: every --batch setting reports identical p-values"
