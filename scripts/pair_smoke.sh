#!/usr/bin/env bash
# End-to-end smoke of the *pairwise* sharded scan workflow through the
# trigen binary, mirroring shard_smoke.sh one interaction order down:
# generate -> 4x `scan2 --shard` (one worker killed partway and resumed from
# its checkpoint) -> `merge` -> diff against the unsharded pairwise scan.
# The CSV sections (everything but the '#' comment lines, which carry
# timings) must be byte-identical.  Also checks that `merge` refuses to mix
# interaction orders.
#
# usage: scripts/pair_smoke.sh path/to/trigen
set -euo pipefail

TRIGEN=${1:?usage: pair_smoke.sh path/to/trigen}
TRIGEN=$(realpath "$TRIGEN")   # survive the cd below when given a relative path
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cd "$workdir"

# C(96,2) = 4560 pairs; each of 4 shards covers ~1140 ranks.
"$TRIGEN" generate d.tg --snps 96 --samples 256 --seed 11 \
  --plant 9,33,95 --model xor3 --effect 0.8

# Reference: one unsharded pairwise scan.
"$TRIGEN" scan2 d.tg --top 12 --threads 2 > full.txt

# 4-shard plan; worker 2 is killed after ~800 of its ~1140 ranks...
for i in 0 1 3; do
  "$TRIGEN" scan2 d.tg --shards 4 --shard "$i" --top 12 --threads 2 \
    --out "p$i.shard" > /dev/null
done
rc=0
"$TRIGEN" scan2 d.tg --shards 4 --shard 2 --top 12 --threads 2 \
  --out p2.shard --checkpoint p2.ckpt --checkpoint-every 400 \
  --stop-after 800 > /dev/null || rc=$?
if [ "$rc" -ne 3 ]; then
  echo "expected the killed shard to exit with code 3, got $rc" >&2
  exit 1
fi
if [ -e p2.shard ]; then
  echo "killed shard must not leave a result file" >&2
  exit 1
fi

# ...and a fresh invocation resumes from the checkpoint instead of
# rescanning.
"$TRIGEN" scan2 d.tg --shards 4 --shard 2 --top 12 --threads 2 \
  --out p2.shard --checkpoint p2.ckpt --checkpoint-every 400 \
  | grep -q '^# resumed from checkpoint' \
  || { echo "resume did not use the checkpoint" >&2; exit 1; }

"$TRIGEN" merge p0.shard p1.shard p2.shard p3.shard > merged.txt

if ! diff <(grep -v '^#' full.txt) <(grep -v '^#' merged.txt); then
  echo "merged pair shard results differ from the unsharded scan2" >&2
  exit 1
fi

# Two-level tree merge: two contiguous intermediate merges, then the
# final full-coverage merge — must equal the single-level merge.
"$TRIGEN" merge --partial p0.shard p1.shard --out left.shard > /dev/null
"$TRIGEN" merge --partial p2.shard p3.shard --out right.shard > /dev/null
"$TRIGEN" merge left.shard right.shard > tree.txt
if ! diff <(grep -v '^#' merged.txt) <(grep -v '^#' tree.txt); then
  echo "tree merge differs from the single-level merge" >&2
  exit 1
fi

# Mixing interaction orders must be refused with a precise error: scan one
# 3-way shard of the same dataset and try to merge it with the pair shards.
"$TRIGEN" scan d.tg --shards 4 --shard 0 --top 12 --threads 2 \
  --out t0.shard > /dev/null
if "$TRIGEN" merge p0.shard t0.shard > /dev/null 2> err.txt; then
  echo "mixed-order merge unexpectedly succeeded" >&2
  exit 1
fi
grep -q 'order mismatch' err.txt \
  || { echo "mixed-order merge failed without naming the order" >&2; exit 1; }

echo "pair smoke: order-2 kill/resume/merge reproduces the full scan2 exactly"
