#!/usr/bin/env bash
# End-to-end smoke of the empirical autotuner through the trigen binary:
# `tune --quick` must persist a valid per-host profile, a profile-resolved
# scan must be byte-identical to the analytic (--no-tune) scan at both V4
# and V5, a corrupt profile given explicitly must hard-fail while the
# implicit default degrades to a warning, and --isa/TRIGEN_ISA must
# validate at parse time.
#
# usage: scripts/tune_smoke.sh path/to/trigen
set -euo pipefail

TRIGEN=${1:?usage: tune_smoke.sh path/to/trigen}
TRIGEN=$(realpath "$TRIGEN")   # survive the cd below when given a relative path
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cd "$workdir"

"$TRIGEN" generate d.tg --snps 40 --samples 300 --seed 11 \
  --plant 3,17,29 --model xor3 --effect 0.8

# 1. The tuner writes a valid profile sized for the dataset, and --json
#    emits the measured grid.
"$TRIGEN" tune d.tg --quick --out tune.profile --orders 3 --batch 4 \
  --json > tune.json 2> tune.log
head -1 tune.profile | grep -q '^TRIGEN-TUNE v1$' \
  || { echo "tune: profile missing the TRIGEN-TUNE v1 magic" >&2; exit 1; }
grep -q '^end$' tune.profile \
  || { echo "tune: profile missing the end trailer" >&2; exit 1; }
grep -q '^entry triple_block_cached 3 ' tune.profile \
  || { echo "tune: profile lacks the V5 triple entry" >&2; exit 1; }
grep -q '"tune/triple_block/order3/' tune.json \
  || { echo "tune: --json lacks the measured grid keys" >&2; exit 1; }

# 2. Profile-resolved scans are byte-identical to analytic scans (the CSV
#    section; '#' lines carry timings).  Both engines, both lookups
#    (explicit --profile and $TRIGEN_TUNE_PROFILE).
for v in 4 5; do
  "$TRIGEN" scan d.tg --version "$v" --top 10 --no-tune > "analytic$v.txt"
  "$TRIGEN" scan d.tg --version "$v" --top 10 --profile tune.profile \
    > "tuned$v.txt"
  TRIGEN_TUNE_PROFILE=tune.profile "$TRIGEN" scan d.tg --version "$v" \
    --top 10 > "tuned_env$v.txt"
  diff <(grep -v '^#' "analytic$v.txt") <(grep -v '^#' "tuned$v.txt") \
    || { echo "tune: V$v --profile scan differs from --no-tune" >&2; exit 1; }
  diff <(grep -v '^#' "analytic$v.txt") <(grep -v '^#' "tuned_env$v.txt") \
    || { echo "tune: V$v env-profile scan differs from --no-tune" >&2; exit 1; }
done

# 3. significance resolves through the profile too, bit-identically.
"$TRIGEN" significance d.tg --permutations 9 --no-tune > sig_analytic.txt
"$TRIGEN" significance d.tg --permutations 9 --profile tune.profile \
  > sig_tuned.txt
diff sig_analytic.txt sig_tuned.txt \
  || { echo "tune: significance differs with a profile" >&2; exit 1; }

# 4. A corrupt profile: hard error when named explicitly, warning +
#    analytic fallback when only the default path is poisoned.
sed 's/^entries .*/entries 99/' tune.profile > corrupt.profile
if "$TRIGEN" scan d.tg --top 3 --profile corrupt.profile \
    > /dev/null 2> err.txt; then
  echo "tune: corrupt --profile scan unexpectedly succeeded" >&2; exit 1
fi
grep -q 'tune-profile' err.txt \
  || { echo "tune: corrupt-profile error lacks the tune-profile prefix" >&2
       exit 1; }
TRIGEN_TUNE_PROFILE=corrupt.profile "$TRIGEN" scan d.tg --top 10 \
  > fallback.txt 2> warn.txt \
  || { echo "tune: corrupt default profile must warn, not fail" >&2; exit 1; }
grep -q 'warning: ignoring tuning profile' warn.txt \
  || { echo "tune: corrupt default profile fell back without warning" >&2
       exit 1; }
diff <(grep -v '^#' analytic4.txt) <(grep -v '^#' fallback.txt) \
  || { echo "tune: fallback scan differs from the analytic scan" >&2; exit 1; }

# 5. --isa pins (bit-identical results) and validates at parse time.
"$TRIGEN" scan d.tg --top 10 --isa scalar > isa_scalar.txt
grep -q 'kernel scalar' isa_scalar.txt \
  || { echo "tune: --isa scalar did not pin the scalar kernel" >&2; exit 1; }
diff <(grep -v '^#' analytic4.txt) <(grep -v '^#' isa_scalar.txt) \
  || { echo "tune: --isa scalar scan differs from auto" >&2; exit 1; }
rc=0
"$TRIGEN" scan d.tg --isa no-such-isa > /dev/null 2> err.txt || rc=$?
[ "$rc" -eq 2 ] \
  || { echo "tune: bad --isa must exit 2 (got $rc)" >&2; exit 1; }
grep -q 'vector ISAs in this binary' err.txt \
  || { echo "tune: bad --isa error lacks the compiled-ISA list" >&2; exit 1; }
rc=0
TRIGEN_ISA=no-such-isa "$TRIGEN" scan d.tg > /dev/null 2> err.txt || rc=$?
[ "$rc" -eq 2 ] \
  || { echo "tune: bad TRIGEN_ISA must exit 2 (got $rc)" >&2; exit 1; }

# 6. Re-tuning extends the same-host profile instead of clobbering it:
#    a second run at another order keeps the order-3 entries.
"$TRIGEN" tune d.tg --quick --out tune.profile --orders 2 --batch 0 \
  2>> tune.log
grep -q '^entry triple_block_cached 3 ' tune.profile \
  || { echo "tune: re-tune dropped the previous order-3 entries" >&2; exit 1; }
grep -q '^entry pair_count 2 ' tune.profile \
  || { echo "tune: re-tune did not add the order-2 entry" >&2; exit 1; }

echo "tune smoke: profile persists, resolves, and scans bit-identically"
