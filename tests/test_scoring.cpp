#include <gtest/gtest.h>

#include <cmath>

#include "test_util.hpp"
#include "trigen/common/rng.hpp"
#include "trigen/scoring/chi_squared.hpp"
#include "trigen/scoring/contingency.hpp"
#include "trigen/scoring/k2.hpp"
#include "trigen/scoring/mutual_information.hpp"

namespace trigen::scoring {
namespace {

using trigen::test::random_dataset;
using trigen::test::small_shapes;

ContingencyTable random_table(std::uint64_t seed, std::uint32_t max_count) {
  Xoshiro256 rng(seed);
  ContingencyTable t;
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < kCells; ++i) {
      t.counts[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)] =
          static_cast<std::uint32_t>(rng.bounded(max_count + 1));
    }
  }
  return t;
}

// --------------------------------------------------------------------------
// ContingencyTable basics
// --------------------------------------------------------------------------

TEST(Contingency, CellIndexBijective) {
  bool seen[27] = {};
  for (int gx = 0; gx < 3; ++gx) {
    for (int gy = 0; gy < 3; ++gy) {
      for (int gz = 0; gz < 3; ++gz) {
        const int i = cell_index(gx, gy, gz);
        ASSERT_GE(i, 0);
        ASSERT_LT(i, 27);
        ASSERT_FALSE(seen[i]);
        seen[i] = true;
      }
    }
  }
}

TEST(Contingency, TotalsSum) {
  ContingencyTable t;
  t.counts[0][0] = 5;
  t.counts[1][26] = 7;
  EXPECT_EQ(t.class_total(0), 5u);
  EXPECT_EQ(t.class_total(1), 7u);
  EXPECT_EQ(t.total(), 12u);
}

TEST(Contingency, ReferenceCountsEverySampleOnce) {
  for (const auto& shape : small_shapes()) {
    const auto d = random_dataset(shape);
    if (d.num_snps() < 3) continue;
    const ContingencyTable t = reference_contingency(d, 0, 1, 2);
    EXPECT_EQ(t.total(), d.num_samples());
    EXPECT_EQ(t.class_total(0), d.class_count(0));
    EXPECT_EQ(t.class_total(1), d.class_count(1));
  }
}

TEST(Contingency, ReferenceMatchesHandComputedExample) {
  // 4 samples: genotypes chosen so each lands in a known cell.
  dataset::GenotypeMatrix d(3, 4);
  // sample 0: (0,1,2) control; sample 1: (0,1,2) case;
  // sample 2: (2,2,2) case; sample 3: (1,0,0) control.
  d.set(0, 0, 0); d.set(1, 0, 1); d.set(2, 0, 2);
  d.set(0, 1, 0); d.set(1, 1, 1); d.set(2, 1, 2);
  d.set(0, 2, 2); d.set(1, 2, 2); d.set(2, 2, 2);
  d.set(0, 3, 1); d.set(1, 3, 0); d.set(2, 3, 0);
  d.set_phenotype(1, 1);
  d.set_phenotype(2, 1);
  const ContingencyTable t = reference_contingency(d, 0, 1, 2);
  EXPECT_EQ(t.at(0, 1, 2, 0), 1u);
  EXPECT_EQ(t.at(0, 1, 2, 1), 1u);
  EXPECT_EQ(t.at(2, 2, 2, 1), 1u);
  EXPECT_EQ(t.at(1, 0, 0, 0), 1u);
  EXPECT_EQ(t.total(), 4u);
}

TEST(Contingency, ReferenceOutOfRangeThrows) {
  const auto d = random_dataset({4, 10, 1});
  EXPECT_THROW(reference_contingency(d, 0, 1, 4), std::out_of_range);
}

// --------------------------------------------------------------------------
// Log-factorial table
// --------------------------------------------------------------------------

TEST(LogFactorial, MatchesLgamma) {
  const LogFactorialTable t(1000);
  for (std::uint32_t n : {0u, 1u, 2u, 5u, 10u, 100u, 999u, 1000u}) {
    EXPECT_NEAR(t(n), std::lgamma(static_cast<double>(n) + 1.0), 1e-9 * (n + 1))
        << n;
  }
}

TEST(LogFactorial, SmallValuesExact) {
  const LogFactorialTable t(10);
  EXPECT_DOUBLE_EQ(t(0), 0.0);
  EXPECT_DOUBLE_EQ(t(1), 0.0);
  EXPECT_NEAR(t(2), std::log(2.0), 1e-12);
  EXPECT_NEAR(t(3), std::log(6.0), 1e-12);
  EXPECT_NEAR(t(4), std::log(24.0), 1e-12);
}

TEST(LogFactorial, FallbackBeyondTable) {
  const LogFactorialTable t(10);
  EXPECT_NEAR(t(50), std::lgamma(51.0), 1e-8);
}

TEST(LogFactorial, Monotone) {
  const LogFactorialTable t(500);
  for (std::uint32_t n = 2; n <= 500; ++n) {
    ASSERT_GT(t(n), t(n - 1));
  }
}

// --------------------------------------------------------------------------
// K2 score
// --------------------------------------------------------------------------

double k2_direct(const ContingencyTable& t) {
  // Literal evaluation of Eq. 1 with lgamma.
  double score = 0.0;
  for (int i = 0; i < kCells; ++i) {
    const double r0 = t.counts[0][static_cast<std::size_t>(i)];
    const double r1 = t.counts[1][static_cast<std::size_t>(i)];
    score += std::lgamma(r0 + r1 + 2.0) - std::lgamma(r0 + 1.0) -
             std::lgamma(r1 + 1.0);
  }
  return score;
}

TEST(K2, MatchesDirectFormula) {
  const K2Score k2(4096);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const ContingencyTable t = random_table(seed, 150);
    EXPECT_NEAR(k2(t), k2_direct(t), 1e-7) << "seed=" << seed;
  }
}

TEST(K2, EmptyTableScoresZero) {
  const K2Score k2(16);
  EXPECT_NEAR(k2(ContingencyTable{}), 0.0, 1e-12);
}

TEST(K2, LowerIsBetterTrait) { EXPECT_TRUE(K2Score::kLowerIsBetter); }

TEST(K2, SeparatedClassesScoreLowerThanMixed) {
  // A cell with (10, 10) costs more than cells with (20, 0): separation
  // (association) lowers K2.
  ContingencyTable mixed, separated;
  mixed.counts[0][0] = 10;
  mixed.counts[1][0] = 10;
  separated.counts[0][0] = 20;
  separated.counts[1][0] = 0;
  const K2Score k2(64);
  EXPECT_LT(k2(separated), k2(mixed));
}

TEST(K2, PermutationInvariantAcrossCells) {
  // K2 sums per-cell terms, so shuffling which cell holds which counts
  // does not change the score.
  ContingencyTable a, b;
  a.counts[0][0] = 8; a.counts[1][0] = 3;
  a.counts[0][5] = 1; a.counts[1][5] = 9;
  b.counts[0][20] = 8; b.counts[1][20] = 3;
  b.counts[0][13] = 1; b.counts[1][13] = 9;
  const K2Score k2(32);
  EXPECT_DOUBLE_EQ(k2(a), k2(b));
}

// --------------------------------------------------------------------------
// Mutual information
// --------------------------------------------------------------------------

TEST(MutualInformation, EmptyTableIsZero) {
  const MutualInformation mi;
  EXPECT_DOUBLE_EQ(mi(ContingencyTable{}), 0.0);
}

TEST(MutualInformation, IndependentIsZero) {
  // Identical class distributions across cells => MI == 0.
  ContingencyTable t;
  for (int i = 0; i < 4; ++i) {
    t.counts[0][static_cast<std::size_t>(i)] = 10;
    t.counts[1][static_cast<std::size_t>(i)] = 10;
  }
  const MutualInformation mi;
  EXPECT_NEAR(mi(t), 0.0, 1e-12);
}

TEST(MutualInformation, PerfectlyPredictiveEqualsClassEntropy) {
  // Cell 0 holds all controls, cell 1 all cases, balanced.
  ContingencyTable t;
  t.counts[0][0] = 50;
  t.counts[1][1] = 50;
  const MutualInformation mi;
  EXPECT_NEAR(mi(t), std::log(2.0), 1e-12);
}

TEST(MutualInformation, NonNegativeAndBounded) {
  const MutualInformation mi;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const ContingencyTable t = random_table(seed, 60);
    const double v = mi(t);
    ASSERT_GE(v, -1e-12) << seed;
    ASSERT_LE(v, std::log(2.0) + 1e-12) << seed;  // <= H(C) <= ln 2
  }
}

TEST(MutualInformation, HigherIsBetterTrait) {
  EXPECT_FALSE(MutualInformation::kLowerIsBetter);
}

// --------------------------------------------------------------------------
// Chi-squared
// --------------------------------------------------------------------------

TEST(ChiSquared, EmptyTableIsZero) {
  const ChiSquared chi;
  EXPECT_DOUBLE_EQ(chi(ContingencyTable{}), 0.0);
}

TEST(ChiSquared, NoAssociationIsZero) {
  ContingencyTable t;
  for (int i = 0; i < 6; ++i) {
    t.counts[0][static_cast<std::size_t>(i)] = 7;
    t.counts[1][static_cast<std::size_t>(i)] = 7;
  }
  const ChiSquared chi;
  EXPECT_NEAR(chi(t), 0.0, 1e-12);
}

TEST(ChiSquared, KnownTwoByTwoValue) {
  // Cells 0 and 1 only: [[30, 10], [10, 30]] has X^2 = 20 * 80^2 / ...
  // Compute directly: n=80, rows 40/40, cols 40/40; expected 20 each;
  // X^2 = 4 * (10^2 / 20) = 20.
  ContingencyTable t;
  t.counts[0][0] = 30;
  t.counts[1][0] = 10;
  t.counts[0][1] = 10;
  t.counts[1][1] = 30;
  const ChiSquared chi;
  EXPECT_NEAR(chi(t), 20.0, 1e-9);
}

TEST(ChiSquared, NonNegative) {
  const ChiSquared chi;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    ASSERT_GE(chi(random_table(seed, 40)), -1e-12);
  }
}

TEST(ChiSquared, StrongerAssociationScoresHigher) {
  ContingencyTable weak, strong;
  weak.counts[0][0] = 25; weak.counts[1][0] = 15;
  weak.counts[0][1] = 15; weak.counts[1][1] = 25;
  strong.counts[0][0] = 35; strong.counts[1][0] = 5;
  strong.counts[0][1] = 5;  strong.counts[1][1] = 35;
  const ChiSquared chi;
  EXPECT_GT(chi(strong), chi(weak));
}

// --------------------------------------------------------------------------
// Cross-score sanity on real tables
// --------------------------------------------------------------------------

TEST(Scores, AgreeOnPlantedSignalDirection) {
  // On a dataset with a strong planted interaction, the planted triple must
  // beat a random triple under all three objectives.
  const auto d = trigen::test::planted_dataset(8, 2000, 3);
  const ContingencyTable planted = reference_contingency(d, 1, 3, 5);
  const ContingencyTable random = reference_contingency(d, 0, 2, 6);

  const K2Score k2(2000);
  const MutualInformation mi;
  const ChiSquared chi;
  EXPECT_LT(k2(planted), k2(random));
  EXPECT_GT(mi(planted), mi(random));
  EXPECT_GT(chi(planted), chi(random));
}

}  // namespace
}  // namespace trigen::scoring
