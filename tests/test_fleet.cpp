/// Fleet orchestration tests: the durable lease table, the checkpoint
/// clip/merge exactness property behind straggler harvesting, and the
/// coordinator's full failure matrix (expiry, harvest, backoff,
/// quarantine, restart/resume, stale-lease fencing) driven in-process with
/// a fake clock — plus a real socket fleet of run_worker threads whose
/// final CSV must be bit-identical to the single-process scan.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "test_util.hpp"
#include "trigen/combinatorics/combinations.hpp"
#include "trigen/core/detector.hpp"
#include "trigen/core/scan_csv.hpp"
#include "trigen/fleet/coordinator.hpp"
#include "trigen/fleet/state.hpp"
#include "trigen/fleet/worker.hpp"
#include "trigen/serve/endpoint.hpp"
#include "trigen/serve/protocol.hpp"
#include "trigen/shard/merge.hpp"
#include "trigen/shard/plan.hpp"
#include "trigen/shard/result_io.hpp"
#include "trigen/shard/runner.hpp"

namespace trigen::fleet {
namespace {

using combinatorics::RankRange;

bool same_bits(double a, double b) {
  std::uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof a);
  std::memcpy(&ub, &b, sizeof b);
  return ua == ub;
}

template <typename Fn>
std::string error_of(Fn&& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected an exception";
  return {};
}

void expect_error_contains(const std::string& msg, const std::string& needle) {
  EXPECT_NE(msg.find(needle), std::string::npos)
      << "message '" << msg << "' lacks '" << needle << "'";
}

/// Per-test scratch directory, wiped at entry (TempDir survives runs).
std::string fresh_dir(const std::string& tag) {
  const auto dir =
      std::filesystem::path(::testing::TempDir()) / ("trigen_fleet_" + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// --------------------------------------------------------------------------
// TRIGEN-FLEET state file
// --------------------------------------------------------------------------

FleetState sample_state() {
  FleetState s;
  s.order = 3;
  s.fingerprint = 0xfeedfacecafef00dull;
  s.num_snps = 10;
  s.num_samples = 64;
  s.objective = "k2";
  s.top_k = 8;
  s.next_shard = 7;
  ShardEntry pending;
  pending.id = 4;
  pending.range = {30, 60};
  pending.failures = 1;
  ShardEntry quarantined;
  quarantined.id = 6;
  quarantined.range = {90, 120};
  quarantined.state = ShardState::kQuarantined;
  quarantined.failures = 5;
  s.shards = {pending, quarantined};
  s.done = {{{0, 30}, "fleet-m3.shard"}, {{60, 90}, "fleet-s2.shard"}};
  return s;
}

TEST(FleetState, RoundTripsThroughFile) {
  const std::string path = fresh_dir("state_rt") + "/fleet.state";
  const FleetState s = sample_state();
  write_fleet_state_file(path, s);
  const FleetState r = read_fleet_state_file(path);
  EXPECT_EQ(r.order, s.order);
  EXPECT_EQ(r.fingerprint, s.fingerprint);
  EXPECT_EQ(r.num_snps, s.num_snps);
  EXPECT_EQ(r.num_samples, s.num_samples);
  EXPECT_EQ(r.objective, s.objective);
  EXPECT_EQ(r.top_k, s.top_k);
  EXPECT_EQ(r.next_shard, s.next_shard);
  ASSERT_EQ(r.shards.size(), 2u);
  EXPECT_EQ(r.shards[0].id, 4u);
  EXPECT_EQ(r.shards[0].range.first, 30u);
  EXPECT_EQ(r.shards[0].range.last, 60u);
  EXPECT_EQ(r.shards[0].state, ShardState::kPending);
  EXPECT_EQ(r.shards[0].failures, 1u);
  EXPECT_EQ(r.shards[1].state, ShardState::kQuarantined);
  EXPECT_EQ(r.shards[1].failures, 5u);
  ASSERT_EQ(r.done.size(), 2u);
  EXPECT_EQ(r.done[0].file, "fleet-m3.shard");
  EXPECT_EQ(r.done[1].range.first, 60u);
}

TEST(FleetState, LeasedPersistsAsPending) {
  // A lease is a promise the writing process made; a restarted coordinator
  // cannot honor it, so the durable form must already say pending.
  const std::string path = fresh_dir("state_lease") + "/fleet.state";
  FleetState s = sample_state();
  s.shards[0].state = ShardState::kLeased;
  s.shards[0].worker = "w1";
  s.shards[0].lease_deadline_ms = 999;
  write_fleet_state_file(path, s);
  const FleetState r = read_fleet_state_file(path);
  EXPECT_EQ(r.shards[0].state, ShardState::kPending);
  EXPECT_TRUE(r.shards[0].worker.empty());
}

TEST(FleetState, RejectsUnrepresentableSpoolNames) {
  const std::string path = fresh_dir("state_badname") + "/fleet.state";
  FleetState s = sample_state();
  s.done[0].file = "has space.shard";
  EXPECT_THROW(write_fleet_state_file(path, s), std::invalid_argument);
  s.done[0].file = "";
  EXPECT_THROW(write_fleet_state_file(path, s), std::invalid_argument);
}

TEST(FleetState, ReaderRejectsCorruptFiles) {
  const std::string dir = fresh_dir("state_corrupt");
  const std::string path = dir + "/fleet.state";
  const auto write_raw = [&](const std::string& body) {
    std::ofstream(path) << body;
  };
  const auto render = [&] {
    write_fleet_state_file(path, sample_state());
    std::ifstream is(path);
    std::stringstream ss;
    ss << is.rdbuf();
    return ss.str();
  };
  const std::string good = render();

  expect_error_contains(
      error_of([&] { read_fleet_state_file(dir + "/nope"); }),
      "cannot open");
  write_raw("TRIGEN-WRONG v1\n");
  expect_error_contains(error_of([&] { read_fleet_state_file(path); }),
                        "bad magic");
  write_raw("TRIGEN-FLEET v9\n");
  expect_error_contains(error_of([&] { read_fleet_state_file(path); }),
                        "version");
  // Truncation anywhere is caught by the end trailer or an earlier field.
  write_raw(good.substr(0, good.size() / 2));
  EXPECT_THROW(read_fleet_state_file(path), std::runtime_error);
  write_raw(good + "tail\n");
  expect_error_contains(error_of([&] { read_fleet_state_file(path); }),
                        "trailing");
  // A shard whose id escaped the allocator.
  std::string bad = good;
  const auto at = bad.find("s 4 ");
  bad.replace(at, 4, "s 9 ");
  write_raw(bad);
  expect_error_contains(error_of([&] { read_fleet_state_file(path); }),
                        "next_shard");
  // Overlapping done ranges.
  bad = good;
  const auto d = bad.find("d 60 90");
  bad.replace(d, 7, "d 20 50");
  write_raw(bad);
  expect_error_contains(error_of([&] { read_fleet_state_file(path); }),
                        "overlap");
}

// --------------------------------------------------------------------------
// clip-at-the-kill-point exactness (the harvest property)
// --------------------------------------------------------------------------

/// For a random kill point: checkpoint a shard up to (at least) the kill
/// point, clip the checkpoint into a prefix result, scan only the
/// remainder, and the contiguous merge of the two must equal the
/// uninterrupted full scan bit for bit.  This is the property that makes
/// the coordinator's harvest-and-re-lease path exact rather than merely
/// approximately right.
template <unsigned K>
void check_clip_merge_exactness(std::uint64_t seed) {
  const auto d = test::random_dataset({12, 100, seed});
  const core::BasicDetector<K> det(d);
  const std::uint64_t fp = shard::dataset_fingerprint(d);
  const std::uint64_t total = combinatorics::n_choose_k(d.num_snps(), K);
  const std::string dir = fresh_dir("clip_k" + std::to_string(K));

  shard::BasicShardRunOptions<core::BasicDetectorOptions<K>> base;
  base.detector.top_k = 9;
  base.range = {0, total};
  const auto full = shard::run_shard_of<K>(det, fp, base);
  ASSERT_TRUE(full.completed);

  std::mt19937_64 rng(7919 * K + seed);
  for (int trial = 0; trial < 4; ++trial) {
    // Strictly inside the range, with headroom: the run stops at the first
    // checkpoint boundary >= kill, which must stay < total or the "killed"
    // worker would in fact finish.
    const std::uint64_t kill = 1 + rng() % (total - 9);
    auto ro = base;
    ro.checkpoint_path =
        dir + "/t" + std::to_string(trial) + ".ckpt";
    ro.checkpoint_every = 1 + kill % 7;
    ro.keep_going = [kill](std::uint64_t done, std::uint64_t) {
      return done < kill;
    };
    const auto partial = shard::run_shard_of<K>(det, fp, ro);
    ASSERT_FALSE(partial.completed);

    const auto ckpt = shard::read_checkpoint_file_as<core::ScoredOf<K>>(
        ro.checkpoint_path);
    ASSERT_GE(ckpt.watermark, kill);
    ASSERT_LT(ckpt.watermark, total);

    auto rest = base;
    rest.range = shard::remaining_range(ckpt);
    const auto remainder = shard::run_shard_of<K>(det, fp, rest);
    ASSERT_TRUE(remainder.completed);

    const auto merged = shard::merge_shards_of<K>(
        {shard::clip_to_prefix(ckpt), remainder.result},
        shard::MergeCoverage::kFullScan);
    const auto& got = merged.result.best;
    const auto& want = full.result.entries;
    ASSERT_EQ(got.size(), want.size()) << "kill=" << kill;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(core::snps_of<K>(got[i]), core::snps_of<K>(want[i]))
          << "kill=" << kill << " entry " << i;
      EXPECT_TRUE(same_bits(got[i].score, want[i].score))
          << "kill=" << kill << " entry " << i;
    }
  }
}

TEST(FleetClip, KillPointMergesExactlyOrder2) {
  check_clip_merge_exactness<2>(21);
}
TEST(FleetClip, KillPointMergesExactlyOrder3) {
  check_clip_merge_exactness<3>(22);
}
TEST(FleetClip, KillPointMergesExactlyOrder4) {
  check_clip_merge_exactness<4>(23);
}

// --------------------------------------------------------------------------
// coordinator (in-process, fake clock)
// --------------------------------------------------------------------------

/// One parsed coordinator reply line.
struct Reply {
  std::string kind;
  std::string who;
  std::string verb;
  std::map<std::string, std::string> params;
  std::string raw;
};

/// Harness: a coordinator on a fake clock plus a scripted worker that
/// scans granted shards in-process (the real shard runner, no transport).
struct Rig {
  dataset::GenotypeMatrix data;
  std::uint64_t clock = 1000;
  std::string spool;
  std::unique_ptr<FleetCoordinator> coord;
  core::Detector det;
  std::uint64_t fp;

  /// Builds the dataset and spool only; tests call reopen() to construct
  /// the coordinator (and again to simulate a coordinator restart).
  explicit Rig(const std::string& tag)
      : data(test::planted_dataset(10, 64, 5)),
        spool(fresh_dir(tag)),
        det(data),
        fp(shard::dataset_fingerprint(data)) {}

  CoordinatorOptions base_options() {
    CoordinatorOptions co;
    co.top_k = 8;
    co.shards = 4;
    co.lease_ms = 1000;
    co.backoff_base_ms = 100;
    co.backoff_cap_ms = 400;
    return co;
  }

  void reopen(CoordinatorOptions co) {
    co.spool = spool;
    co.now_ms = [this] { return clock; };
    coord = std::make_unique<FleetCoordinator>(data, std::move(co));
  }

  Reply submit(const std::string& line) {
    std::vector<std::string> out;
    coord->submit_line(line,
                       [&](const std::string& l) { out.push_back(l); });
    EXPECT_EQ(out.size(), 1u) << "for request: " << line;
    Reply r;
    if (out.empty()) return r;
    r.raw = out[0];
    std::istringstream is(out[0]);
    is >> r.kind >> r.who >> r.verb;
    std::string tok;
    while (is >> tok) {
      const auto eq = tok.find('=');
      if (eq != std::string::npos) {
        r.params[tok.substr(0, eq)] = tok.substr(eq + 1);
      }
    }
    return r;
  }

  static std::uint64_t num(const Reply& r, const std::string& key) {
    const auto it = r.params.find(key);
    EXPECT_NE(it, r.params.end()) << key << " missing in: " << r.raw;
    return it == r.params.end() ? 0 : std::strtoull(it->second.c_str(),
                                                    nullptr, 10);
  }

  static RankRange range_of(const Reply& r) {
    const std::string spec = r.params.at("range");
    const auto colon = spec.find(':');
    return {std::strtoull(spec.c_str(), nullptr, 10),
            std::strtoull(spec.c_str() + colon + 1, nullptr, 10)};
  }

  /// Scans a granted shard like a worker would — optionally only until
  /// `stop_after` ranks are done (leaving a durable checkpoint behind) —
  /// and writes the result file iff the scan completed.
  bool scan_grant(const Reply& grant, std::uint64_t stop_after = 0) {
    shard::ShardRunOptions ro;
    ro.detector.top_k = static_cast<std::size_t>(num(grant, "top"));
    ro.range = range_of(grant);
    ro.checkpoint_path = grant.params.at("ckpt");
    ro.checkpoint_every = num(grant, "checkpoint_every");
    if (stop_after != 0) {
      ro.keep_going = [stop_after](std::uint64_t done, std::uint64_t) {
        return done < stop_after;
      };
    }
    const auto rep = shard::run_shard(det, fp, ro);
    if (rep.completed) {
      shard::write_shard_result_file(grant.params.at("out"), rep.result);
    }
    return rep.completed;
  }

  /// Lease + scan + complete until the fleet reports drained.
  void drain_as(const std::string& worker) {
    for (int guard = 0; guard < 64; ++guard) {
      const Reply r = submit("lease " + worker);
      ASSERT_EQ(r.kind, "ok") << r.raw;
      if (r.verb == "drained") return;
      if (r.verb == "wait") {
        clock += num(r, "ms");
        continue;
      }
      ASSERT_EQ(r.verb, "lease") << r.raw;
      ASSERT_TRUE(scan_grant(r));
      const Reply done = submit("complete " + worker + " shard=" +
                                std::to_string(num(r, "shard")));
      ASSERT_EQ(done.kind, "ok") << done.raw;
    }
    FAIL() << "fleet did not drain";
  }

  std::vector<std::string> reference_csv() {
    core::DetectorOptions opt;
    opt.top_k = 8;
    return core::scan_csv_lines<3>(det.run(opt).best);
  }
};

TEST(FleetCoordinator, HappyPathIsBitIdenticalToSingleScan) {
  Rig rig("happy");
  rig.reopen(rig.base_options());
  rig.drain_as("w1");
  EXPECT_TRUE(rig.coord->finished());
  EXPECT_EQ(rig.coord->jobs_interrupted(), 0u);
  EXPECT_EQ(rig.coord->final_csv(), rig.reference_csv());
  // Completion is durable: a fresh coordinator over the same spool comes
  // up already finished and serves the same CSV.
  rig.reopen(rig.base_options());
  EXPECT_TRUE(rig.coord->finished());
  EXPECT_EQ(rig.coord->final_csv(), rig.reference_csv());
}

TEST(FleetCoordinator, GrantCarriesTheScanContract) {
  Rig rig("grant");
  rig.reopen(rig.base_options());
  const Reply r = rig.submit("lease w1");
  ASSERT_EQ(r.verb, "lease");
  EXPECT_EQ(Rig::num(r, "order"), 3u);
  EXPECT_EQ(r.params.at("objective"), "k2");
  EXPECT_EQ(Rig::num(r, "top"), 8u);
  EXPECT_EQ(Rig::num(r, "lease_ms"), 1000u);
  EXPECT_GT(Rig::num(r, "checkpoint_every"), 0u);
  EXPECT_EQ(r.params.at("fingerprint").size(), 16u);
  EXPECT_EQ(rig.coord->shards_leased(), 1u);
  // Same worker asking again stacks a second lease (elastic workers may
  // run several processes); ranges never overlap.
  const Reply r2 = rig.submit("lease w1");
  ASSERT_EQ(r2.verb, "lease");
  EXPECT_EQ(Rig::range_of(r).last, Rig::range_of(r2).first);
}

TEST(FleetCoordinator, ExpiredLeaseIsReassignedWithBackoff) {
  Rig rig("expiry");
  rig.reopen(rig.base_options());
  const Reply r = rig.submit("lease w1");
  const RankRange granted = Rig::range_of(r);
  // No renewals arrive; the deadline passes.
  rig.clock += 1001;
  rig.coord->tick();
  EXPECT_EQ(rig.coord->shards_leased(), 0u);
  EXPECT_EQ(rig.coord->reassignments(), 1u);
  // The range is under failure backoff: other shards are granted first,
  // and once they are gone the worker is told to wait...
  std::vector<Reply> grants;
  for (int i = 0; i < 3; ++i) grants.push_back(rig.submit("lease w2"));
  const Reply wait = rig.submit("lease w2");
  ASSERT_EQ(wait.verb, "wait") << wait.raw;
  // ...until the backoff passes and the dead worker's range comes back
  // under a fresh shard id (stale-lease fencing).
  rig.clock += Rig::num(wait, "ms");
  const Reply again = rig.submit("lease w2");
  ASSERT_EQ(again.verb, "lease") << again.raw;
  EXPECT_EQ(Rig::range_of(again).first, granted.first);
  EXPECT_EQ(Rig::range_of(again).last, granted.last);
  EXPECT_NE(Rig::num(again, "shard"), Rig::num(r, "shard"));
}

TEST(FleetCoordinator, RenewalsKeepALeaseAliveAndFenceStaleHolders) {
  Rig rig("renew");
  rig.reopen(rig.base_options());
  const Reply r = rig.submit("lease w1");
  const std::uint64_t id = Rig::num(r, "shard");
  for (int i = 0; i < 5; ++i) {
    rig.clock += 900;  // just inside the deadline each time
    rig.coord->tick();
    const Reply renewed = rig.submit(
        "renew w1 shard=" + std::to_string(id) +
        " watermark=" + std::to_string(Rig::range_of(r).first + i));
    ASSERT_EQ(renewed.kind, "ok") << renewed.raw;
  }
  EXPECT_EQ(rig.coord->reassignments(), 0u);
  // Another worker cannot renew or complete someone else's lease.
  EXPECT_EQ(rig.submit("renew w2 shard=" + std::to_string(id) +
                       " watermark=0").raw,
            "error w2 lease-lost shard=" + std::to_string(id));
  EXPECT_EQ(rig.submit("complete w2 shard=" + std::to_string(id)).verb,
            "lease-lost");
  // After expiry the original holder is fenced too.
  rig.clock += 1001;
  rig.coord->tick();
  EXPECT_EQ(rig.submit("renew w1 shard=" + std::to_string(id) +
                       " watermark=0").verb,
            "lease-lost");
}

TEST(FleetCoordinator, HarvestsCheckpointPrefixAndReLeasesOnlyTheRemainder) {
  Rig rig("harvest");
  auto co = rig.base_options();
  co.checkpoint_every = 5;
  rig.reopen(co);
  const Reply r = rig.submit("lease w1");
  const RankRange granted = Rig::range_of(r);
  // The worker checkpoints partway, then dies (no result, no renewals).
  ASSERT_FALSE(rig.scan_grant(r, /*stop_after=*/7));
  rig.clock += 1001;
  rig.coord->tick();
  // Its durable prefix was folded into the merge tree; only the remainder
  // is waiting for a lease.
  const Reply st = rig.submit("status");
  EXPECT_GE(Rig::num(st, "done_ranks"), 7u);
  rig.clock += 400;  // past backoff
  const Reply rest = rig.submit("lease w2");
  ASSERT_EQ(rest.verb, "lease");
  EXPECT_GT(Rig::range_of(rest).first, granted.first);
  EXPECT_EQ(Rig::range_of(rest).last, granted.last);
  // And the fleet still converges exactly.
  ASSERT_TRUE(rig.scan_grant(rest));
  ASSERT_EQ(rig.submit("complete w2 shard=" +
                       std::to_string(Rig::num(rest, "shard"))).kind,
            "ok");
  rig.drain_as("w2");
  EXPECT_EQ(rig.coord->final_csv(), rig.reference_csv());
}

TEST(FleetCoordinator, AbandonHandsBackWithoutAFailureCharge) {
  Rig rig("abandon");
  rig.reopen(rig.base_options());
  const Reply r = rig.submit("lease w1");
  const Reply ab = rig.submit(
      "abandon w1 shard=" + std::to_string(Rig::num(r, "shard")) +
      " reason=interrupted");
  EXPECT_EQ(ab.kind, "ok") << ab.raw;
  // Immediately leasable again (no backoff), full range, fresh id.
  const Reply again = rig.submit("lease w2");
  ASSERT_EQ(again.verb, "lease");
  EXPECT_EQ(Rig::range_of(again).first, Rig::range_of(r).first);
}

TEST(FleetCoordinator, PoisonShardIsQuarantinedAndReportedAsAStall) {
  Rig rig("poison");
  auto co = rig.base_options();
  co.shards = 1;       // one shard, so its death stalls the fleet
  co.max_failures = 2;
  rig.reopen(co);
  for (int i = 0; i < 2; ++i) {
    Reply r = rig.submit("lease w1");
    if (r.verb == "wait") {  // round 2 starts inside the failure backoff
      rig.clock += Rig::num(r, "ms");
      r = rig.submit("lease w1");
    }
    ASSERT_EQ(r.verb, "lease") << "round " << i << ": " << r.raw;
    rig.clock += 2000;  // let it die
    rig.coord->tick();
  }
  EXPECT_EQ(rig.coord->shards_quarantined(), 1u);
  EXPECT_EQ(rig.submit("lease w1").verb, "abort");
  // finished-but-stalled: the endpoint winds down and exits 3 (resumable).
  EXPECT_TRUE(rig.coord->finished());
  EXPECT_GT(rig.coord->jobs_interrupted(), 0u);
}

TEST(FleetCoordinator, BadResultFileIsRejectedAndRescanned) {
  Rig rig("badresult");
  rig.reopen(rig.base_options());
  const Reply r = rig.submit("lease w1");
  const std::uint64_t id = Rig::num(r, "shard");
  // Worker claims completion without writing the result file.
  const Reply bad =
      rig.submit("complete w1 shard=" + std::to_string(id));
  EXPECT_EQ(bad.kind, "error");
  EXPECT_EQ(bad.verb, "bad-result");
  // The shard is requeued (fresh id, failure charged), not lost; the
  // fleet still converges once honest workers take over.
  rig.clock += 500;
  rig.drain_as("w2");
  EXPECT_EQ(rig.coord->final_csv(), rig.reference_csv());
}

TEST(FleetCoordinator, RestartResumesWithoutDoubleCounting) {
  Rig rig("restart");
  rig.reopen(rig.base_options());
  // Complete one shard, checkpoint another partway, then kill the
  // coordinator (drop it on the floor; the state file is the survivor).
  const Reply a = rig.submit("lease w1");
  ASSERT_TRUE(rig.scan_grant(a));
  ASSERT_EQ(rig.submit("complete w1 shard=" +
                       std::to_string(Rig::num(a, "shard"))).kind,
            "ok");
  const Reply b = rig.submit("lease w1");
  ASSERT_FALSE(rig.scan_grant(b, /*stop_after=*/3));

  rig.reopen(rig.base_options());
  // The completed shard stays done; the leased one came back as pending
  // with its checkpoint intact, so the next worker resumes mid-shard
  // rather than rescanning.
  const Reply st = rig.submit("status");
  EXPECT_GT(Rig::num(st, "done_ranks"), 0u);
  EXPECT_EQ(Rig::num(st, "leased"), 0u);
  rig.drain_as("w2");
  EXPECT_EQ(rig.coord->final_csv(), rig.reference_csv());
}

TEST(FleetCoordinator, RefusesAForeignSpool) {
  Rig rig("foreign");
  rig.reopen(rig.base_options());
  auto other = rig.base_options();
  other.top_k = 99;
  expect_error_contains(error_of([&] { rig.reopen(other); }),
                        "refusing to resume");
}

TEST(FleetCoordinator, RejectsScanJobsAndScanServersRejectFleetVerbs) {
  Rig rig("crossed");
  rig.reopen(rig.base_options());
  const Reply r = rig.submit("scan j1 top=4");
  EXPECT_EQ(r.kind, "error");
  expect_error_contains(r.raw, "fleet coordinator");
  EXPECT_EQ(rig.submit("ping").verb, "pong");
  const Reply st = rig.submit("status");
  EXPECT_EQ(st.verb, "fleet");
  EXPECT_EQ(Rig::num(st, "reassignments"), 0u);
}

TEST(FleetProtocol, ParsesFleetVerbs) {
  const auto lease = serve::parse_request("lease w-1");
  EXPECT_EQ(lease.kind, serve::RequestKind::kLease);
  EXPECT_EQ(lease.id, "w-1");
  const auto renew =
      serve::parse_request("renew w1 shard=4 watermark=900");
  EXPECT_EQ(renew.kind, serve::RequestKind::kRenew);
  EXPECT_EQ(renew.params.at("shard"), "4");
  EXPECT_EQ(renew.params.at("watermark"), "900");
  const auto complete = serve::parse_request("complete w1 shard=4");
  EXPECT_EQ(complete.kind, serve::RequestKind::kComplete);
  const auto abandon =
      serve::parse_request("abandon w1 shard=4 reason=interrupted");
  EXPECT_EQ(abandon.kind, serve::RequestKind::kAbandon);
  EXPECT_EQ(abandon.params.at("reason"), "interrupted");

  EXPECT_THROW(serve::parse_request("lease"), std::invalid_argument);
  EXPECT_THROW(serve::parse_request("lease bad/worker"),
               std::invalid_argument);
  EXPECT_THROW(serve::parse_request("renew w1 nope=1"),
               std::invalid_argument);
  EXPECT_THROW(serve::parse_request("complete w1 shard=1 shard=2"),
               std::invalid_argument);
}

// --------------------------------------------------------------------------
// socket fleet (real workers, real transport)
// --------------------------------------------------------------------------

#ifndef _WIN32

TEST(FleetSocket, TwoWorkersDrainTheFleetBitIdentically) {
  Rig rig("socket");  // only borrowing the dataset/reference helpers
  auto co = rig.base_options();
  co.shards = 6;
  co.lease_ms = 30000;  // real clock from here on; no fake expiries
  co.now_ms = {};
  co.spool = rig.spool;
  co.out = rig.spool + "/fleet.csv";
  FleetCoordinator coordinator(rig.data, std::move(co));

  const std::string sock = rig.spool + "/coord.sock";
  std::atomic<bool> interrupted{false};
  int endpoint_rc = -1;
  std::thread endpoint([&] {
    endpoint_rc =
        serve::run_socket_endpoint(coordinator, sock, interrupted);
  });

  auto worker = [&](const std::string& id, int& rc) {
    WorkerOptions wo;
    wo.id = id;
    wo.threads = 1;
    wo.reconnect_ms = 10000;
    wo.interrupted = &interrupted;
    rc = run_worker(rig.data, sock, wo);
  };
  int rc1 = -1, rc2 = -1;
  std::thread w1(worker, "w1", std::ref(rc1));
  std::thread w2(worker, "w2", std::ref(rc2));
  w1.join();
  w2.join();
  endpoint.join();

  EXPECT_EQ(endpoint_rc, 0);
  EXPECT_EQ(rc1, 0);
  EXPECT_EQ(rc2, 0);
  EXPECT_EQ(coordinator.final_csv(), rig.reference_csv());
  // And the CSV file the coordinator wrote matches line for line.
  std::ifstream csv(rig.spool + "/fleet.csv");
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(csv, line)) lines.push_back(line);
  EXPECT_EQ(lines, rig.reference_csv());
}

#endif  // !_WIN32

}  // namespace
}  // namespace trigen::fleet
